/**
 * @file
 * Tests for the quantization library: parameter math, packing orders, the
 * lop3 fast-dequant path (bit-exact), MX formats and repack baselines.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "gpusim/arch.h"
#include "quant/fast_dequant.h"
#include "quant/int_quant.h"
#include "quant/mx_format.h"
#include "quant/packing.h"
#include "quant/quant_params.h"
#include "quant/repack_baselines.h"

namespace bitdec::quant {
namespace {

// ------------------------------------------------------------ int quant ----

TEST(IntQuant, ParamsSpanTheRange)
{
    const QuantParams p = computeParams(-1.0f, 1.0f, 4);
    EXPECT_NEAR(p.scale.toFloat(), 2.0f / 15.0f, 1e-3f);
    // min maps near code 0, max near code 15.
    EXPECT_EQ(quantizeValue(-1.0f, p, 4), 0);
    EXPECT_EQ(quantizeValue(1.0f, p, 4), 15);
}

TEST(IntQuant, DegenerateConstantGroup)
{
    const QuantParams p = computeParams(3.0f, 3.0f, 4);
    const auto q = quantizeValue(3.0f, p, 4);
    EXPECT_NEAR(dequantizeValue(q, p), 3.0f, 2e-3f);
}

TEST(IntQuant, RoundTripErrorBoundedByHalfStep)
{
    Rng rng(5);
    for (int bits : {2, 4, 8}) {
        for (int trial = 0; trial < 200; trial++) {
            const float lo = rng.uniformRange(-8.f, -0.05f);
            const float hi = rng.uniformRange(0.05f, 8.f);
            const QuantParams p = computeParams(lo, hi, bits);
            const float x = rng.uniformRange(lo, hi);
            const float y = dequantizeValue(quantizeValue(x, p, bits), p);
            // Half-step plus half-precision parameter rounding slack.
            // Half-step plus half-precision scale/zero storage rounding.
            const float bound = 0.75f * p.scale.toFloat() +
                                0.05f * std::fabs(x) + 1e-2f;
            EXPECT_LE(std::fabs(y - x), bound)
                << "bits=" << bits << " x=" << x;
        }
    }
}

TEST(IntQuant, CodesStayInRange)
{
    Rng rng(6);
    for (int bits : {2, 4}) {
        const QuantParams p = computeParams(-1.f, 1.f, bits);
        for (int i = 0; i < 100; i++) {
            const float x = rng.uniformRange(-4.f, 4.f); // beyond the range
            const auto q = quantizeValue(x, p, bits);
            EXPECT_LT(q, 1 << bits);
        }
    }
}

struct GranCase
{
    Granularity gran;
    int bits;
    int group;
};

class QuantizeMatrixP : public ::testing::TestWithParam<GranCase>
{
};

TEST_P(QuantizeMatrixP, GroupedRoundTripWithinBound)
{
    const auto [gran, bits, group] = GetParam();
    Rng rng(7);
    Tensor<Half> x({64, 128});
    for (std::size_t i = 0; i < x.numel(); i++)
        x[i] = Half(rng.normal(0.f, 1.f));
    const QuantizedMatrix q = quantizeMatrix(x, bits, gran, group);
    // Params tensor shape follows the paper's Kp convention.
    if (gran == Granularity::TensorWise) {
        EXPECT_EQ(q.params.dim(0), 64u);
        EXPECT_EQ(q.params.dim(1), static_cast<std::size_t>(128 / group));
    } else {
        EXPECT_EQ(q.params.dim(0), static_cast<std::size_t>(64 / group));
        EXPECT_EQ(q.params.dim(1), 128u);
    }
    const float err = maxAbsError(x, q);
    // Normal data, range about [-4, 4]: step = range / (2^bits - 1).
    const float step = 8.5f / static_cast<float>((1 << bits) - 1);
    EXPECT_LE(err, step) << "granularity/bits/group case";
    EXPECT_GT(err, 0.f); // quantization is lossy
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantizeMatrixP,
    ::testing::Values(GranCase{Granularity::TensorWise, 4, 32},
                      GranCase{Granularity::TensorWise, 4, 128},
                      GranCase{Granularity::TensorWise, 2, 32},
                      GranCase{Granularity::ChannelWise, 4, 32},
                      GranCase{Granularity::ChannelWise, 4, 64},
                      GranCase{Granularity::ChannelWise, 2, 32},
                      GranCase{Granularity::TensorWise, 8, 32},
                      GranCase{Granularity::ChannelWise, 8, 32}));

TEST(QuantizeMatrix, MoreBitsNeverWorse)
{
    Rng rng(8);
    Tensor<Half> x({32, 64});
    for (std::size_t i = 0; i < x.numel(); i++)
        x[i] = Half(rng.normal(0.f, 2.f));
    float prev = 1e9f;
    for (int bits : {2, 4, 8}) {
        const QuantizedMatrix q =
            quantizeMatrix(x, bits, Granularity::ChannelWise, 32);
        const float err = maxAbsError(x, q);
        EXPECT_LT(err, prev);
        prev = err;
    }
}

TEST(QuantConfig, LabelsAndRatios)
{
    QuantConfig c;
    c.bits = 4;
    c.key_granularity = Granularity::ChannelWise;
    EXPECT_EQ(c.label(), "KC-4");
    EXPECT_EQ(c.packingRatio(), 4);
    c.bits = 2;
    c.key_granularity = Granularity::TensorWise;
    EXPECT_EQ(c.label(), "KT-2");
    EXPECT_EQ(c.packingRatio(), 8);
}

// -------------------------------------------------------------- packing ----

TEST(Packing, FieldIndexIsPermutation)
{
    for (int bits : {2, 4}) {
        for (PackOrder order : {PackOrder::Linear, PackOrder::Interleaved}) {
            const int n = codesPerWord(bits);
            std::vector<bool> used(static_cast<std::size_t>(n), false);
            for (int i = 0; i < n; i++) {
                const int f = packFieldIndex(i, bits, order);
                EXPECT_GE(f, 0);
                EXPECT_LT(f, n);
                EXPECT_FALSE(used[static_cast<std::size_t>(f)]);
                used[static_cast<std::size_t>(f)] = true;
            }
        }
    }
}

TEST(Packing, Interleaved75316420PatternForInt4)
{
    // Reading nibble positions MSB->LSB of logical codes must spell
    // 7,5,3,1,6,4,2,0 (the paper's pattern).
    std::vector<int> logical_at_field(8);
    for (int i = 0; i < 8; i++)
        logical_at_field[static_cast<std::size_t>(
            packFieldIndex(i, 4, PackOrder::Interleaved))] = i;
    const std::vector<int> msb_to_lsb(logical_at_field.rbegin(),
                                      logical_at_field.rend());
    EXPECT_EQ(msb_to_lsb, (std::vector<int>{7, 5, 3, 1, 6, 4, 2, 0}));
}

TEST(Packing, RoundTripBothOrders)
{
    Rng rng(9);
    for (int bits : {2, 4}) {
        for (PackOrder order : {PackOrder::Linear, PackOrder::Interleaved}) {
            const int n = codesPerWord(bits);
            std::vector<std::uint8_t> codes(static_cast<std::size_t>(n));
            for (auto& c : codes)
                c = static_cast<std::uint8_t>(rng.uniformInt(1u << bits));
            const std::uint32_t w = packWord(codes.data(), bits, order);
            std::uint8_t out[16];
            unpackWord(w, bits, order, out);
            for (int i = 0; i < n; i++)
                EXPECT_EQ(out[i], codes[static_cast<std::size_t>(i)]);
        }
    }
}

TEST(Packing, StreamRoundTrip)
{
    Rng rng(10);
    std::vector<std::uint8_t> codes(256);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniformInt(16));
    const auto words = packStream(codes, 4, PackOrder::Interleaved);
    EXPECT_EQ(words.size(), codes.size() / 8);
    EXPECT_EQ(unpackStream(words, 4, PackOrder::Interleaved), codes);
}

TEST(Packing, OrdersProduceDifferentWords)
{
    std::uint8_t codes[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_NE(packWord(codes, 4, PackOrder::Linear),
              packWord(codes, 4, PackOrder::Interleaved));
}

// --------------------------------------------------------- fast dequant ----

TEST(FastDequant, MagicPairYieldsBiasedHalves)
{
    // Pack codes 0..7 interleaved; pair j must surface (1024 + code_2j,
    // 1024 + code_2j+1).
    std::uint8_t codes[8] = {3, 14, 7, 0, 9, 5, 12, 1};
    const std::uint32_t w = packWord(codes, 4, PackOrder::Interleaved);
    for (int j = 0; j < 4; j++) {
        const std::uint32_t h2 = extractMagicPair(w, j, 4);
        const Half lo = Half::fromBits(static_cast<std::uint16_t>(h2 & 0xFFFF));
        const Half hi = Half::fromBits(static_cast<std::uint16_t>(h2 >> 16));
        EXPECT_EQ(lo.toFloat(), 1024.0f + codes[2 * j]);
        EXPECT_EQ(hi.toFloat(), 1024.0f + codes[2 * j + 1]);
    }
}

TEST(FastDequant, BitExactAgainstReferenceInt4)
{
    Rng rng(21);
    for (int trial = 0; trial < 300; trial++) {
        std::uint8_t codes[8];
        for (auto& c : codes)
            c = static_cast<std::uint8_t>(rng.uniformInt(16));
        const std::uint32_t w = packWord(codes, 4, PackOrder::Interleaved);
        const QuantParams p =
            computeParams(rng.uniformRange(-4.f, 0.f),
                          rng.uniformRange(0.1f, 4.f), 4);
        Half fast[8], ref[8];
        fastDequantWord(w, 4, p, fast);
        referenceDequantWord(w, 4, PackOrder::Interleaved, p, ref);
        for (int i = 0; i < 8; i++)
            EXPECT_EQ(fast[i].bits(), ref[i].bits()) << "i=" << i;
    }
}

TEST(FastDequant, BitExactAgainstReferenceInt2)
{
    Rng rng(22);
    for (int trial = 0; trial < 300; trial++) {
        std::uint8_t codes[16];
        for (auto& c : codes)
            c = static_cast<std::uint8_t>(rng.uniformInt(4));
        const std::uint32_t w = packWord(codes, 2, PackOrder::Interleaved);
        const QuantParams p =
            computeParams(rng.uniformRange(-2.f, 0.f),
                          rng.uniformRange(0.1f, 2.f), 2);
        Half fast[16], ref[16];
        fastDequantWord(w, 2, p, fast);
        referenceDequantWord(w, 2, PackOrder::Interleaved, p, ref);
        for (int i = 0; i < 16; i++)
            EXPECT_EQ(fast[i].bits(), ref[i].bits()) << "i=" << i;
    }
}

TEST(FastDequant, RecoversQuantizedValues)
{
    // End to end: quantize -> pack -> fast dequant == plain dequant.
    const QuantParams p = computeParams(-1.f, 1.f, 4);
    std::uint8_t codes[8];
    float vals[8] = {-1.f, -0.6f, -0.2f, 0.f, 0.2f, 0.5f, 0.8f, 1.f};
    for (int i = 0; i < 8; i++)
        codes[i] = quantizeValue(vals[i], p, 4);
    const std::uint32_t w = packWord(codes, 4, PackOrder::Interleaved);
    Half out[8];
    fastDequantWord(w, 4, p, out);
    for (int i = 0; i < 8; i++)
        EXPECT_NEAR(out[i].toFloat(), vals[i], 0.15f);
}

TEST(FastDequant, CostModelFavorsFastPath)
{
    for (int bits : {2, 4}) {
        const DequantCost fast = dequantWordCost(bits, true);
        const DequantCost slow = dequantWordCost(bits, false);
        EXPECT_LT(fast.alu + fast.fma, slow.alu + slow.fma);
    }
}

// ------------------------------------------------------------ MX formats ----

TEST(MxFormat, E2m1ValueSet)
{
    const float want[8] = {0, 0.5f, 1, 1.5f, 2, 3, 4, 6};
    for (int i = 0; i < 8; i++) {
        EXPECT_EQ(e2m1Decode(static_cast<std::uint8_t>(i)), want[i]);
        EXPECT_EQ(e2m1Decode(static_cast<std::uint8_t>(i | 0x8)), -want[i]);
    }
}

TEST(MxFormat, E2m1EncodeRoundsToNearestEven)
{
    EXPECT_EQ(e2m1Decode(e2m1Encode(2.4f)), 2.0f);
    EXPECT_EQ(e2m1Decode(e2m1Encode(2.6f)), 3.0f);
    EXPECT_EQ(e2m1Decode(e2m1Encode(2.5f)), 2.0f); // tie -> even mantissa
    EXPECT_EQ(e2m1Decode(e2m1Encode(-5.9f)), -6.0f);
    EXPECT_EQ(e2m1Decode(e2m1Encode(100.f)), 6.0f); // saturates
}

TEST(MxFormat, E8m0PowersOfTwo)
{
    EXPECT_EQ(e8m0Decode(127), 1.0f);
    EXPECT_EQ(e8m0Decode(128), 2.0f);
    EXPECT_EQ(e8m0Decode(126), 0.5f);
    EXPECT_EQ(e8m0Encode(4.0f), 129);
    EXPECT_EQ(e8m0Encode(5.0f), 129); // floor(log2(5)) = 2
    EXPECT_TRUE(std::isnan(e8m0Decode(0xFF)));
}

TEST(MxFormat, E4m3RoundTripOnRepresentables)
{
    for (float v : {0.0f, 0.25f, 1.0f, 1.125f, 448.0f, -3.5f}) {
        EXPECT_EQ(e4m3Decode(e4m3Encode(v)), v);
    }
    EXPECT_EQ(e4m3Decode(e4m3Encode(1000.f)), 448.0f); // saturation
    EXPECT_TRUE(std::isnan(e4m3Decode(0x7F)));
}

TEST(MxFormat, VectorEncodeBoundsError)
{
    Rng rng(31);
    for (MxKind kind : {MxKind::MXFP4, MxKind::NVFP4}) {
        std::vector<float> x(128);
        for (auto& v : x)
            v = rng.normal(0.f, 1.f);
        const MxVector enc = mxEncode(x, kind);
        EXPECT_EQ(enc.scales.size(),
                  x.size() / static_cast<std::size_t>(mxBlockSize(kind)));
        for (std::size_t b = 0; b < enc.scales.size(); b++) {
            float amax = 0, err = 0;
            const std::size_t bs =
                static_cast<std::size_t>(mxBlockSize(kind));
            for (std::size_t i = b * bs; i < (b + 1) * bs; i++) {
                amax = std::max(amax, std::fabs(x[i]));
                err = std::max(err, std::fabs(enc.valueAt(i) - x[i]));
            }
            // E2M1 relative step near the top of a block is ~1/4 amax.
            EXPECT_LE(err, amax * 0.3f + 1e-3f);
        }
    }
}

TEST(MxFormat, MatrixRoundTripShapes)
{
    Rng rng(32);
    Tensor<Half> x({8, 64});
    for (std::size_t i = 0; i < x.numel(); i++)
        x[i] = Half(rng.normal(0.f, 1.f));
    const MxMatrix m = mxEncodeMatrix(x, MxKind::MXFP4);
    EXPECT_EQ(m.scales.dim(1), 2u); // 64 / 32 blocks per row
    const Tensor<Half> back = mxDecodeMatrix(m);
    float err = 0;
    for (std::size_t i = 0; i < x.numel(); i++)
        err = std::max(err, std::fabs(back[i].toFloat() - x[i].toFloat()));
    EXPECT_LT(err, 1.5f);
    EXPECT_GT(err, 0.f);
}

TEST(MxFormat, Nvfp4FinerScalesBeatMxfp4)
{
    Rng rng(33);
    std::vector<float> x(256);
    for (auto& v : x)
        v = rng.normal(0.f, 1.f) * (1.f + 5.f * static_cast<float>(
                                              rng.uniform() < 0.1));
    double err_mx = 0, err_nv = 0;
    const MxVector mx = mxEncode(x, MxKind::MXFP4);
    const MxVector nv = mxEncode(x, MxKind::NVFP4);
    for (std::size_t i = 0; i < x.size(); i++) {
        err_mx += std::fabs(mx.valueAt(i) - x[i]);
        err_nv += std::fabs(nv.valueAt(i) - x[i]);
    }
    EXPECT_LE(err_nv, err_mx * 1.05);
}

// ------------------------------------------------------ repack baselines ----

TEST(Repack, MarlinRoundTrip)
{
    Rng rng(41);
    Tensor<std::uint8_t> codes({32, 128});
    for (std::size_t i = 0; i < codes.numel(); i++)
        codes[i] = static_cast<std::uint8_t>(rng.uniformInt(16));
    const auto words = marlinRepack(codes, 4);
    const Tensor<std::uint8_t> back = marlinUnpack(words, 4, 32, 128);
    for (std::size_t i = 0; i < codes.numel(); i++)
        EXPECT_EQ(back[i], codes[i]);
}

TEST(Repack, MarlinPermutesWithinTiles)
{
    Tensor<std::uint8_t> codes({16, 64});
    for (std::size_t i = 0; i < codes.numel(); i++)
        codes[i] = static_cast<std::uint8_t>(i % 16);
    const auto permuted = marlinRepack(codes, 4);
    const auto linear = packStream(
        std::vector<std::uint8_t>(codes.data(),
                                  codes.data() + codes.numel()),
        4, PackOrder::Linear);
    EXPECT_NE(permuted, linear);
}

TEST(Repack, TableIIOrdering)
{
    const auto& a100 = sim::archA100();
    const double marlin_p = quantPackLatencyMs(a100, RepackSystem::Marlin,
                                               true, 131072, 32, 128, 4);
    const double ladder_p = quantPackLatencyMs(a100, RepackSystem::Ladder,
                                               true, 131072, 32, 128, 4);
    const double bit_p = quantPackLatencyMs(a100, RepackSystem::BitDecoding,
                                            true, 131072, 32, 128, 4);
    EXPECT_GT(marlin_p, ladder_p);
    EXPECT_GT(ladder_p, bit_p);

    const double marlin_d = quantPackLatencyMs(a100, RepackSystem::Marlin,
                                               false, 131072, 32, 128, 4);
    const double bit_d = quantPackLatencyMs(a100, RepackSystem::BitDecoding,
                                            false, 131072, 32, 128, 4);
    EXPECT_GT(marlin_d, bit_d * 5.0);
}

} // namespace
} // namespace bitdec::quant
