/**
 * @file
 * Tests for the fault-injection subsystem and the serving stack's
 * defenses: schedule parsing and windowing, deterministic injector
 * decisions, backoff shaping, page checksums catching injected
 * corruption, retry-until-success on transient fetch failures, spike
 * timeouts — and the headline chaos contract: an engine run under a
 * fault storm produces byte-identical output digests to a fault-free
 * run of the same trace, across multiple fault seeds.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fault/fault.h"
#include "gpusim/arch.h"
#include "kvcache/paged_cache.h"
#include "kvcache/tiered_cache.h"
#include "model/model_config.h"
#include "serving/engine.h"
#include "serving/request.h"
#include "serving/trace.h"

namespace bitdec {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSchedule;
using kv::CacheStatus;
using kv::PagedHeadCache;
using kv::TieredConfig;
using kv::TieredPagePool;
using kv::TierSpec;
using serving::Engine;
using serving::EngineConfig;
using serving::Request;
using serving::RequestState;
using serving::ServingMetrics;

// ------------------------------------------------------- schedule ----

TEST(FaultSchedule, EmptyInjectsNothing)
{
    FaultSchedule s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.rateAt(FaultKind::FetchFailure, 0.0), 0.0);
    FaultInjector inj(s, 1234);
    for (int i = 0; i < 100; i++)
        EXPECT_FALSE(inj.roll(FaultKind::FetchFailure, 1.0, i));
    EXPECT_EQ(inj.stats().total(), 0);
}

TEST(FaultSchedule, WindowGatesTheRate)
{
    FaultSchedule s;
    s.add(FaultKind::FetchFailure, 0.5, 1.0, 2.0);
    EXPECT_EQ(s.rateAt(FaultKind::FetchFailure, 0.5), 0.0);
    EXPECT_EQ(s.rateAt(FaultKind::FetchFailure, 1.0), 0.5); // inclusive
    EXPECT_EQ(s.rateAt(FaultKind::FetchFailure, 1.999), 0.5);
    EXPECT_EQ(s.rateAt(FaultKind::FetchFailure, 2.0), 0.0); // exclusive
    // Other kinds are untouched.
    EXPECT_EQ(s.rateAt(FaultKind::PageCorruption, 1.5), 0.0);
}

TEST(FaultSchedule, OverlappingWindowsComposeAsIndependentSources)
{
    FaultSchedule s;
    s.add(FaultKind::FetchFailure, 0.5);
    s.add(FaultKind::FetchFailure, 0.5);
    // Survive both coins: 1 - 0.5 * 0.5.
    EXPECT_DOUBLE_EQ(s.rateAt(FaultKind::FetchFailure, 0.0), 0.75);
}

TEST(FaultSchedule, ParseRoundTripsEveryKey)
{
    const FaultSchedule s = FaultSchedule::parse(
        "fetch=0.02,spike=0.03,corrupt=0.01,alloc=0.04,mult=50,"
        "from=1,until=9");
    // rateAt round-trips through 1 - prod(1 - r): a few ulps of slack.
    EXPECT_NEAR(s.rateAt(FaultKind::FetchFailure, 5.0), 0.02, 1e-12);
    EXPECT_NEAR(s.rateAt(FaultKind::LatencySpike, 5.0), 0.03, 1e-12);
    EXPECT_NEAR(s.rateAt(FaultKind::PageCorruption, 5.0), 0.01, 1e-12);
    EXPECT_NEAR(s.rateAt(FaultKind::HotAllocFailure, 5.0), 0.04, 1e-12);
    EXPECT_DOUBLE_EQ(s.spike_mult, 50.0);
    EXPECT_EQ(s.rateAt(FaultKind::FetchFailure, 0.5), 0.0);
    EXPECT_EQ(s.rateAt(FaultKind::FetchFailure, 9.0), 0.0);
    EXPECT_TRUE(FaultSchedule::parse("").empty());
}

TEST(FaultScheduleDeathTest, ParseRejectsBadSpecs)
{
    EXPECT_DEATH(FaultSchedule::parse("fetch"), "key=value");
    EXPECT_DEATH(FaultSchedule::parse("fetch=abc"), "bad fault spec value");
    EXPECT_DEATH(FaultSchedule::parse("warp=0.1"), "unknown fault spec key");
    EXPECT_DEATH(FaultSchedule::parse("fetch=1.5"), "rates must be in");
    EXPECT_DEATH(FaultSchedule::parse("mult=0.5"), "mult must be >= 1");
}

// ------------------------------------------------------- injector ----

TEST(FaultInjector, DecisionsAreDeterministicInSeedAndCoordinates)
{
    FaultSchedule s;
    s.add(FaultKind::FetchFailure, 0.3);
    FaultInjector a(s, 42), b(s, 42), c(s, 43);
    int fired = 0, diverged = 0;
    for (std::uint64_t i = 0; i < 500; i++) {
        const bool ra = a.roll(FaultKind::FetchFailure, 1.0, i, 7);
        EXPECT_EQ(ra, b.roll(FaultKind::FetchFailure, 1.0, i, 7));
        fired += ra;
        diverged += ra != c.roll(FaultKind::FetchFailure, 1.0, i, 7);
    }
    // Rate is honored loosely (hash quality, not statistics, is on test).
    EXPECT_GT(fired, 500 * 0.3 / 2);
    EXPECT_LT(fired, 500 * 0.3 * 2);
    EXPECT_GT(diverged, 0); // a different seed is a different storm
    EXPECT_EQ(a.stats().fetch_failures, fired);
    EXPECT_EQ(a.stats().total(), fired);
}

TEST(FaultInjector, RateOneAlwaysFiresRateZeroNever)
{
    FaultSchedule s;
    s.add(FaultKind::PageCorruption, 1.0);
    FaultInjector inj(s, 7);
    for (std::uint64_t i = 0; i < 20; i++) {
        EXPECT_TRUE(inj.roll(FaultKind::PageCorruption, 0.0, i));
        EXPECT_FALSE(inj.roll(FaultKind::FetchFailure, 0.0, i));
    }
    EXPECT_EQ(inj.stats().corrupted_pages, 20);
    EXPECT_EQ(inj.stats().fetch_failures, 0);
}

TEST(FaultInjector, AttemptCoordinateRerollsADeterministicFailure)
{
    // The same operation must be able to succeed on retry when the
    // attempt counter is part of the coordinates — otherwise backoff
    // would spin forever on a fixed hash.
    FaultSchedule s;
    s.add(FaultKind::FetchFailure, 0.5);
    FaultInjector inj(s, 11);
    bool saw_fail = false, saw_pass = false;
    for (std::uint64_t attempt = 0; attempt < 64; attempt++) {
        if (inj.roll(FaultKind::FetchFailure, 1.0, attempt, /*page=*/3))
            saw_fail = true;
        else
            saw_pass = true;
    }
    EXPECT_TRUE(saw_fail);
    EXPECT_TRUE(saw_pass);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps)
{
    fault::RetryPolicy p;
    p.backoff_base_s = 0.002;
    p.backoff_mult = 2.0;
    p.backoff_max_s = 0.01;
    EXPECT_DOUBLE_EQ(fault::backoffDelay(p, 1), 0.002);
    EXPECT_DOUBLE_EQ(fault::backoffDelay(p, 2), 0.004);
    EXPECT_DOUBLE_EQ(fault::backoffDelay(p, 3), 0.008);
    EXPECT_DOUBLE_EQ(fault::backoffDelay(p, 4), 0.01); // capped
    EXPECT_DOUBLE_EQ(fault::backoffDelay(p, 10), 0.01);
}

// ------------------------------------------- pool-level defenses ----

std::vector<Half>
tokenVec(int d, float value)
{
    return std::vector<Half>(static_cast<std::size_t>(d), Half(value));
}

void
fillSeq(PagedHeadCache& cache, int seq, int tokens)
{
    for (int t = 0; t < tokens; t++)
        ASSERT_TRUE(cache.append(seq, tokenVec(cache.headDim(), t * 1.0f),
                                 tokenVec(cache.headDim(), t + 0.5f)));
}

TieredConfig
oneHostTier(double fetch_timeout_s =
                std::numeric_limits<double>::infinity())
{
    TieredConfig cfg;
    cfg.bytes_per_page = 1e9; // 1 page == 1 GB: capacity_gb counts pages
    cfg.fetch_timeout_s = fetch_timeout_s;
    TierSpec host;
    host.name = "host";
    host.capacity_gb = 8;
    cfg.tiers.push_back(host);
    return cfg;
}

TEST(FaultDefense, ChecksumRoundTripHasNoFalsePositives)
{
    // An armed injector whose schedule never corrupts must not turn
    // checksums into a source of spurious recomputes.
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, oneHostTier());
    FaultSchedule s; // empty: nothing fires, checksums still verified
    FaultInjector inj(s, 5);
    pool.setFaultInjector(&inj);
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8);
    const auto before = cache.gatherKeys(seq);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);
    const kv::FetchResult fr = pool.fetchRange(seq, 0, 7, 2.0);
    EXPECT_EQ(fr.restored, 4);
    EXPECT_EQ(fr.status, CacheStatus::Ok);
    EXPECT_EQ(pool.stats().checksum_failures, 0);
    const auto after = cache.gatherKeys(seq);
    for (std::size_t t = 0; t < after.dim(0); t++)
        EXPECT_EQ(after.at(t, 0).bits(), before.at(t, 0).bits());
}

TEST(FaultDefense, SingleBitRotIsRepairedInPlace)
{
    // Single-bit rot is the common case, and the ECC syndrome must fix
    // it without ever surfacing to the caller: status Ok, payload
    // byte-identical, no checksum failure, nothing lost.
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, oneHostTier());
    FaultSchedule s;
    s.add(FaultKind::PageCorruption, 1.0); // rot every offloaded page
    FaultInjector inj(s, 99);
    pool.setFaultInjector(&inj);
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8);
    const auto before = cache.gatherKeys(seq);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);
    EXPECT_EQ(inj.stats().corrupted_pages, 4);

    const kv::FetchResult fr = pool.fetchRange(seq, 0, 7, 2.0);
    EXPECT_EQ(fr.status, CacheStatus::Ok);
    EXPECT_EQ(fr.restored, 4);
    EXPECT_EQ(pool.stats().repaired_pages, 4);
    EXPECT_EQ(pool.stats().checksum_failures, 0);
    EXPECT_FALSE(pool.contentLost(seq));
    EXPECT_EQ(pool.coldPages(seq), 0);
    const auto after = cache.gatherKeys(seq);
    for (std::size_t t = 0; t < after.dim(0); t++)
        EXPECT_EQ(after.at(t, 0).bits(), before.at(t, 0).bits());
}

TEST(FaultDefense, ChecksumCatchesUncorrectableCorruption)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, oneHostTier());
    FaultSchedule s;
    s.add(FaultKind::PageCorruption, 1.0); // rot every offloaded page
    s.multibit = 1.0; // always two flipped bit positions: beyond the ECC
    FaultInjector inj(s, 99);
    pool.setFaultInjector(&inj);
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);
    EXPECT_EQ(inj.stats().corrupted_pages, 4);

    // The fetch re-checksums, fails to repair the double flips and
    // drops each rotten page individually: what remains is a hole per
    // page — never restored poison — that the caller rebuilds from
    // seeds.
    const kv::FetchResult fr = pool.fetchRange(seq, 0, 7, 2.0);
    EXPECT_EQ(fr.status, CacheStatus::CorruptionDetected);
    EXPECT_EQ(fr.restored, 0);
    EXPECT_EQ(pool.stats().checksum_failures, 4);
    EXPECT_EQ(pool.stats().repaired_pages, 0);
    EXPECT_EQ(pool.coldPages(seq), 0);
    EXPECT_EQ(pool.tierUsedPages(0), 0); // accounting returned the pages
    // The payload is gone page-by-page, not whole-sequence: the record
    // is not content-lost, the pages are holes awaiting a rebuild.
    EXPECT_FALSE(pool.contentLost(seq));
    EXPECT_FALSE(pool.fullyResident(seq));
    for (int i = 0; i < 4; i++)
        EXPECT_FALSE(pool.coldHas(seq, i));
    // With nothing cold left, a further fetch has nothing to move.
    EXPECT_EQ(pool.fetchRange(seq, 0, 7, 3.0).status, CacheStatus::Ok);
}

TEST(FaultDefense, TransientFetchFailuresSucceedOnRetry)
{
    // At a 50% failure rate a retried fetch must still finish: every
    // fetchRange call re-rolls with a fresh attempt counter.
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, oneHostTier());
    FaultSchedule s;
    s.add(FaultKind::FetchFailure, 0.5);
    FaultInjector inj(s, 21);
    pool.setFaultInjector(&inj);
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8);
    const auto before = cache.gatherKeys(seq);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);

    int attempts = 0;
    double now = 2.0;
    while (!pool.fullyResident(seq)) {
        ASSERT_LT(attempts, 200) << "retries are not making progress";
        pool.fetchRange(seq, 0, 7, now += 0.01);
        attempts++;
    }
    EXPECT_GT(inj.stats().fetch_failures, 0);
    EXPECT_GT(pool.stats().transfer_failures, 0);
    EXPECT_EQ(pool.stats().checksum_failures, 0);
    const auto after = cache.gatherKeys(seq);
    for (std::size_t t = 0; t < after.dim(0); t++)
        EXPECT_EQ(after.at(t, 0).bits(), before.at(t, 0).bits());
}

TEST(FaultDefense, PathologicalSpikeTimesOutInsteadOfStalling)
{
    // Timeout small enough that a 1e6x spike trips it but the base cost
    // (~page/bandwidth) does not.
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, oneHostTier(/*fetch_timeout_s=*/10.0));
    FaultSchedule s;
    s.add(FaultKind::LatencySpike, 1.0);
    s.spike_mult = 1e6;
    FaultInjector inj(s, 3);
    pool.setFaultInjector(&inj);
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);

    const kv::FetchResult fr = pool.fetchRange(seq, 0, 7, 2.0);
    EXPECT_EQ(fr.status, CacheStatus::TransientFault);
    EXPECT_EQ(fr.restored, 0);
    EXPECT_GT(pool.stats().transfer_failures, 0);
    // The payload is intact: a later unspiked fetch could still restore
    // it (the spike was latency, not loss).
    EXPECT_FALSE(pool.contentLost(seq));
    EXPECT_EQ(pool.coldPages(seq), 4);
}

TEST(FaultDefense, AbsorbedSpikeChargesExtraLatency)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, oneHostTier()); // no timeout
    FaultSchedule s;
    s.add(FaultKind::LatencySpike, 1.0);
    s.spike_mult = 10.0;
    FaultInjector inj(s, 3);
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);
    const kv::FetchResult clean = pool.fetchRange(seq, 0, 7, 2.0);
    ASSERT_EQ(clean.restored, 4);

    // Same pool content, injector armed: the spiked fetch restores the
    // same pages but costs ~10x the clean latency.
    ASSERT_EQ(pool.offloadSequence(seq, 3.0, {}).moved, 4);
    pool.setFaultInjector(&inj);
    const kv::FetchResult spiked = pool.fetchRange(seq, 4.0, 7, 4.0);
    EXPECT_EQ(spiked.status, CacheStatus::Ok);
    EXPECT_GT(spiked.latency_s, clean.latency_s);
    EXPECT_EQ(inj.stats().latency_spikes, 4);
}

TEST(FaultDefense, HedgedReadDodgesTheSpike)
{
    // Tail-at-scale: a spiked transfer is re-issued after a short wait
    // and completes at whichever request finishes first, so a 1e4x
    // spike costs ~hedge_after_mult x the modeled cost instead.
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, oneHostTier()); // no timeout, hedging on
    FaultSchedule s;
    s.add(FaultKind::LatencySpike, 0.5);
    s.spike_mult = 1e4;
    FaultInjector inj(s, 2);
    pool.setFaultInjector(&inj);
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);

    const kv::FetchResult fr = pool.fetchRange(seq, 0, 7, 2.0);
    EXPECT_EQ(fr.status, CacheStatus::Ok);
    EXPECT_EQ(fr.restored, 4);
    EXPECT_GT(inj.stats().latency_spikes, 0);
    EXPECT_GT(pool.stats().hedged_fetches, 0);
    // Every spike this seed throws is rescued by an unspiked hedge: the
    // whole fetch stays far below the cost of even one absorbed spike
    // (base ~0.031 s/page, one full 1e4x spike ~313 s).
    EXPECT_LT(fr.latency_s, 10.0);
}

// ------------------------------------------------ engine chaos ----

EngineConfig
chaosEngineConfig(int num_pages)
{
    EngineConfig cfg;
    cfg.system = model::SystemKind::BitDecoding;
    cfg.bits = 4;
    cfg.page_size = 8;
    cfg.num_pages = num_pages;
    cfg.cache_head_dim = 4;
    cfg.sched.max_batch = 8;
    cfg.sched.prefill_chunk_tokens = 16;
    cfg.backend = "reference";
    kv::TierSpec host;
    host.name = "host";
    host.capacity_gb = 1.0;
    cfg.tiered.tiers.push_back(host);
    cfg.tiered.prefetch_pages = 4;
    return cfg;
}

/** Chaos seeds the suite always sweeps; BITDEC_FAULT_SEED adds one more
 *  (CI rotates it so the sanitize job explores distinct storms). */
std::vector<std::uint64_t>
chaosSeeds()
{
    std::vector<std::uint64_t> seeds{1337, 4242, 9001};
    if (const char* env = std::getenv("BITDEC_FAULT_SEED"))
        seeds.push_back(std::strtoull(env, nullptr, 0));
    return seeds;
}

TEST(EngineChaos, FaultStormDigestsMatchFaultFreeRunAcrossSeeds)
{
    // The headline robustness contract: a pressured tiered run under a
    // multi-kind fault storm finishes every request with output and
    // attention digests byte-identical to the fault-free run — for every
    // fault seed, i.e. regardless of which transfers fail, which pages
    // rot and which allocations hiccup.
    auto clean_trace = serving::smokeTrace();
    Engine clean(sim::archA100(), model::llama2_7b(), chaosEngineConfig(28));
    const ServingMetrics mc = clean.run(clean_trace);
    ASSERT_GT(mc.tier.offloaded_pages, 0); // pressure reached the tiers
    ASSERT_EQ(mc.faults_injected.total(), 0);

    for (const std::uint64_t seed : chaosSeeds()) {
        EngineConfig cfg = chaosEngineConfig(28);
        cfg.faults = fault::FaultSchedule::parse(
            "fetch=0.05,corrupt=0.04,spike=0.05,alloc=0.03,mult=50,multibit=0.35");
        cfg.fault_seed = seed;
        auto trace = serving::smokeTrace();
        Engine chaos(sim::archA100(), model::llama2_7b(), cfg);
        const ServingMetrics m = chaos.run(trace);

        EXPECT_GT(m.faults_injected.total(), 0)
            << "storm never fired under seed " << seed;
        EXPECT_EQ(m.num_requests, mc.num_requests) << "seed " << seed;
        for (std::size_t i = 0; i < trace.size(); i++) {
            EXPECT_EQ(trace[i].state, RequestState::Finished);
            EXPECT_EQ(trace[i].output_hash, clean_trace[i].output_hash)
                << "request " << i << " under seed " << seed;
            EXPECT_EQ(trace[i].attn_hash, clean_trace[i].attn_hash)
                << "request " << i << " under seed " << seed;
        }
        EXPECT_EQ(m.outputs_digest, mc.outputs_digest) << "seed " << seed;
        // Every detected fault was handled by a retry or a recompute.
        EXPECT_GT(m.fetch_retries + m.recompute_recoveries, 0)
            << "seed " << seed;
        EXPECT_EQ(m.shed_requests, 0);
        EXPECT_EQ(m.deadline_cancels, 0);
    }
}

TEST(EngineChaos, SameSeedReplaysTheSameStorm)
{
    EngineConfig cfg = chaosEngineConfig(28);
    cfg.faults = fault::FaultSchedule::parse(
        "fetch=0.05,corrupt=0.04,spike=0.05,alloc=0.03,mult=50,multibit=0.35");
    cfg.fault_seed = 1337;
    auto ta = serving::smokeTrace();
    auto tb = serving::smokeTrace();
    Engine ea(sim::archA100(), model::llama2_7b(), cfg);
    Engine eb(sim::archA100(), model::llama2_7b(), cfg);
    const ServingMetrics ma = ea.run(ta);
    const ServingMetrics mb = eb.run(tb);
    EXPECT_EQ(ma.faults_injected.total(), mb.faults_injected.total());
    EXPECT_EQ(ma.fetch_retries, mb.fetch_retries);
    EXPECT_EQ(ma.recompute_recoveries, mb.recompute_recoveries);
    EXPECT_EQ(ma.outputs_digest, mb.outputs_digest);
    EXPECT_DOUBLE_EQ(ma.makespan_s, mb.makespan_s);
}

// ------------------------------------------ graceful degradation ----

TEST(EngineDegradation, DeadlinedRequestsAreCanceledCleanly)
{
    auto trace = serving::smokeTrace();
    // Two requests get deadlines they cannot possibly meet; the rest
    // must finish normally with the pool fully reclaimed.
    trace[1].deadline_s = trace[1].arrival_s + 1e-4;
    trace[4].deadline_s = trace[4].arrival_s + 1e-4;
    EngineConfig cfg = chaosEngineConfig(512);
    Engine engine(sim::archA100(), model::llama2_7b(), cfg);
    const ServingMetrics m = engine.run(trace);
    EXPECT_EQ(m.deadline_cancels, 2);
    EXPECT_EQ(m.num_requests, static_cast<int>(trace.size()) - 2);
    for (std::size_t i = 0; i < trace.size(); i++) {
        if (i == 1 || i == 4) {
            EXPECT_EQ(trace[i].state, RequestState::Canceled);
            EXPECT_EQ(trace[i].cancel_cause, serving::CancelCause::Deadline);
            EXPECT_GE(trace[i].finish_s, trace[i].deadline_s);
        } else {
            EXPECT_EQ(trace[i].state, RequestState::Finished);
        }
    }
    // Cancellation released every page the canceled requests held.
    EXPECT_EQ(engine.cache().freePages(), engine.cache().totalPages());
}

TEST(EngineDegradation, CanceledRequestsNeverFoldIntoTheDigest)
{
    // A run where request 1 is canceled must carry exactly the digest of
    // the surviving requests — cancellation sheds load without
    // corrupting the determinism contract for everything that finished.
    auto full = serving::smokeTrace();
    auto degraded = serving::smokeTrace();
    degraded[1].deadline_s = degraded[1].arrival_s + 1e-4;
    EngineConfig cfg = chaosEngineConfig(512);
    Engine ef(sim::archA100(), model::llama2_7b(), cfg);
    Engine ed(sim::archA100(), model::llama2_7b(), cfg);
    const ServingMetrics mf = ef.run(full);
    const ServingMetrics md = ed.run(degraded);
    ASSERT_EQ(md.deadline_cancels, 1);
    // XOR-fold is commutative: removing one request's hash from the full
    // digest must equal the degraded run's digest.
    EXPECT_EQ(md.outputs_digest, mf.outputs_digest ^ full[1].output_hash);
    for (std::size_t i = 0; i < full.size(); i++) {
        if (i == 1)
            continue;
        EXPECT_EQ(degraded[i].output_hash, full[i].output_hash);
    }
}

TEST(EngineDegradation, AdmissionTtlShedsOnlyNeverAdmittedWaiters)
{
    // One-at-a-time admission: request 0 occupies the engine well past
    // the TTL, so the simultaneous arrivals behind it are shed; nothing
    // that ever ran is touched.
    std::vector<Request> trace;
    for (int i = 0; i < 4; i++) {
        Request r;
        r.id = i;
        r.arrival_s = 0.0;
        r.prompt_tokens = 32;
        r.output_tokens = 16;
        trace.push_back(r);
    }
    EngineConfig cfg = chaosEngineConfig(512);
    cfg.sched.max_batch = 1;
    cfg.sched.shed_after_s = 0.05;
    Engine engine(sim::archA100(), model::llama2_7b(), cfg);
    const ServingMetrics m = engine.run(trace);
    EXPECT_EQ(trace[0].state, RequestState::Finished);
    EXPECT_GT(m.shed_requests, 0);
    EXPECT_EQ(m.num_requests + m.shed_requests,
              static_cast<int>(trace.size()));
    for (const Request& r : trace) {
        if (r.state == RequestState::Canceled) {
            EXPECT_EQ(r.cancel_cause, serving::CancelCause::Shed);
            EXPECT_EQ(r.generated, 0); // never produced a token
            EXPECT_EQ(r.preemptions, 0); // never admitted
        }
    }
    EXPECT_EQ(engine.cache().freePages(), engine.cache().totalPages());
}

} // namespace
} // namespace bitdec
