/**
 * @file
 * Unit tests for common utilities: Half arithmetic, Tensor, Rng.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/half.h"
#include "common/rng.h"
#include "common/tensor.h"

namespace bitdec {
namespace {

// ---------------------------------------------------------------- Half ----

TEST(Half, ZeroAndSignedZero)
{
    EXPECT_EQ(Half(0.0f).bits(), 0x0000);
    EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
    EXPECT_EQ(Half(0.0f), Half(-0.0f));
}

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(Half(1.0f).bits(), 0x3C00);
    EXPECT_EQ(Half(-2.0f).bits(), 0xC000);
    EXPECT_EQ(Half(1024.0f).bits(), 0x6400);  // the lop3 magic constant
    EXPECT_EQ(Half(1025.0f).bits(), 0x6401);  // magic | code 1
    EXPECT_EQ(Half(1039.0f).bits(), 0x640F);  // magic | code 15
    EXPECT_EQ(Half(65504.0f).bits(), 0x7BFF); // max finite
}

TEST(Half, RoundTripAllFiniteBitPatterns)
{
    // Every finite half converts to float and back without change.
    for (std::uint32_t b = 0; b <= 0xFFFF; b++) {
        const Half h = Half::fromBits(static_cast<std::uint16_t>(b));
        if (h.isNan() || h.isInf())
            continue;
        const Half rt(h.toFloat());
        EXPECT_EQ(rt.bits(), h.bits()) << "bits=" << b;
    }
}

TEST(Half, RoundToNearestEvenTies)
{
    // 2048 + 1 is exactly between 2048 and 2050 (ulp = 2 there): ties to
    // even mantissa -> 2048.
    EXPECT_EQ(Half(2049.0f).toFloat(), 2048.0f);
    // 2051 is between 2050 and 2052 -> even mantissa is 2052.
    EXPECT_EQ(Half(2051.0f).toFloat(), 2052.0f);
}

TEST(Half, SubnormalsConvertExactly)
{
    const float smallest = std::ldexp(1.0f, -24); // 2^-24, smallest subnormal
    EXPECT_EQ(Half(smallest).bits(), 0x0001);
    EXPECT_FLOAT_EQ(Half::fromBits(0x0001).toFloat(), smallest);
    const float sub = std::ldexp(3.0f, -24);
    EXPECT_EQ(Half(sub).bits(), 0x0003);
}

TEST(Half, OverflowToInfinity)
{
    EXPECT_TRUE(Half(1e6f).isInf());
    EXPECT_TRUE(Half(-1e6f).isInf());
    EXPECT_FALSE(Half(65504.0f).isInf());
}

TEST(Half, NanPropagation)
{
    const Half nan(std::nanf(""));
    EXPECT_TRUE(nan.isNan());
    EXPECT_FALSE(nan == nan);
    EXPECT_TRUE(nan != nan);
}

TEST(Half, ArithmeticMatchesFloatThenRound)
{
    const Half a(1.5f), b(2.25f);
    EXPECT_EQ((a + b).toFloat(), 3.75f);
    EXPECT_EQ((a * b).toFloat(), Half(1.5f * 2.25f).toFloat());
    EXPECT_EQ((-a).toFloat(), -1.5f);
    Half c(1.0f);
    c += Half(0.5f);
    EXPECT_EQ(c.toFloat(), 1.5f);
}

TEST(Half, ComparisonOperators)
{
    EXPECT_LT(Half(1.0f), Half(2.0f));
    EXPECT_GT(Half(-1.0f), Half(-2.0f));
    EXPECT_LE(Half(1.0f), Half(1.0f));
    EXPECT_GE(Half(3.0f), Half(2.0f));
}

TEST(Half2, WordPackingLayout)
{
    const Half2 h2(Half(1.0f), Half(-2.0f));
    const std::uint32_t w = h2.toWord();
    EXPECT_EQ(w & 0xFFFF, 0x3C00u);       // x in the low lane
    EXPECT_EQ(w >> 16, 0xC000u);          // y in the high lane
    const Half2 back = Half2::fromWord(w);
    EXPECT_EQ(back.x.bits(), h2.x.bits());
    EXPECT_EQ(back.y.bits(), h2.y.bits());
}

// -------------------------------------------------------------- Tensor ----

TEST(Tensor, ShapeAndNumel)
{
    Tensor<float> t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.dim(0), 2u);
    EXPECT_EQ(t.dim(2), 4u);
    EXPECT_EQ(t.numel(), 24u);
}

TEST(Tensor, RowMajorLayout)
{
    Tensor<int> t({2, 3});
    t.at(1, 2) = 42;
    EXPECT_EQ(t[5], 42); // row-major: offset = 1*3 + 2
    t.at(0, 1) = 7;
    EXPECT_EQ(t[1], 7);
}

TEST(Tensor, FillAndReset)
{
    Tensor<float> t({4});
    t.fill(2.5f);
    for (std::size_t i = 0; i < t.numel(); i++)
        EXPECT_EQ(t[i], 2.5f);
    t.reset({2, 2});
    EXPECT_EQ(t.numel(), 4u);
    EXPECT_EQ(t[0], 0.0f); // value-initialized after reset
}

TEST(Tensor, FourDimensionalIndexing)
{
    Tensor<int> t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 9;
    EXPECT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 9);
}

TEST(TensorDeath, OutOfBoundsPanics)
{
    Tensor<int> t({2, 2});
    EXPECT_DEATH(t.at(2, 0), "out of bounds");
}

// ----------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntUnbiasedRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; i++) {
        const std::uint64_t v = r.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, NormalMomentsApproximate)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ScaledNormal)
{
    Rng r(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++)
        sum += r.normal(5.0f, 2.0f);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

} // namespace
} // namespace bitdec
