/**
 * @file
 * Unified AttentionBackend API tests: registry listing/self-registration,
 * fail-fast resolution (unknown names, duplicate registration, capability
 * mismatches), the cross-backend digest parity sweep, and the engine's
 * backend-by-name configuration.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "attention/reference.h"
#include "backend/harness.h"
#include "backend/registry.h"
#include "exec/fused_attention.h"
#include "exec/simd/dispatch.h"
#include "exec/thread_pool.h"
#include "gpusim/arch.h"
#include "model/model_config.h"
#include "serving/engine.h"
#include "serving/trace.h"

namespace bitdec {
namespace {

using backend::AttentionBackend;
using backend::BackendRegistry;
using backend::CacheKind;
using backend::DecodeBatch;
using backend::DecodeFixture;
using backend::FixtureConfig;
using backend::QuantFormat;
using backend::ResolveQuery;

// --------------------------------------------------------- registry -----

TEST(BackendRegistry, ListsEveryBuiltinSorted)
{
    // names() lists every registered backend — SIMD siblings register
    // unconditionally (availability is a separate, host-dependent axis).
    const std::vector<std::string> names = BackendRegistry::instance().names();
    const std::vector<std::string> want = {
        "flash",
        "fused-fp16",
        "fused-fp16-avx2",
        "fused-fp16-avx512",
        "fused-packed",
        "fused-packed-avx2",
        "fused-packed-avx512",
        "fused-paged",
        "fused-paged-avx2",
        "fused-paged-avx512",
        "kivi",
        "mx",
        "qserve",
        "reference"};
    EXPECT_EQ(names, want);

    // fusedNames() is the CI perf-gate set: the scalar hot paths always,
    // plus exactly the SIMD siblings this host can execute.
    std::vector<std::string> want_fused;
    for (const char* base : {"fused-fp16", "fused-packed", "fused-paged"}) {
        want_fused.push_back(base);
        if (exec::simd::levelEnabled(exec::simd::Level::Avx2))
            want_fused.push_back(std::string(base) + "-avx2");
        if (exec::simd::levelEnabled(exec::simd::Level::Avx512))
            want_fused.push_back(std::string(base) + "-avx512");
    }
    EXPECT_EQ(BackendRegistry::instance().fusedNames(), want_fused);
}

TEST(BackendRegistry, AvailableNamesHideUnsupportedSimdSiblings)
{
    auto& reg = BackendRegistry::instance();
    for (const std::string& name : reg.availableNames()) {
        const AttentionBackend* be = reg.find(name);
        ASSERT_NE(be, nullptr) << name;
        EXPECT_TRUE(be->available()) << name;
        EXPECT_TRUE(be->unavailableReason().empty()) << name;
    }
    // Every name missing from availableNames() must explain itself.
    const std::vector<std::string> avail = reg.availableNames();
    for (const std::string& name : reg.names()) {
        if (std::find(avail.begin(), avail.end(), name) != avail.end())
            continue;
        const AttentionBackend* be = reg.find(name);
        ASSERT_NE(be, nullptr) << name;
        EXPECT_FALSE(be->unavailableReason().empty()) << name;
    }
}

TEST(BackendRegistry, UnknownNameDiesListingRegistered)
{
    EXPECT_DEATH(BackendRegistry::instance().resolve("warp-speed"),
                 "unknown attention backend 'warp-speed'.*fused-paged");
}

TEST(BackendRegistry, FindReturnsNullForUnknown)
{
    EXPECT_EQ(BackendRegistry::instance().find("warp-speed"), nullptr);
    EXPECT_NE(BackendRegistry::instance().find("reference"), nullptr);
}

/** Minimal backend used to probe duplicate registration. */
class ShadowReference : public AttentionBackend
{
  public:
    const char* name() const override { return "reference"; }
    backend::BackendCapabilities capabilities() const override { return {}; }
    std::vector<Tensor<float>> decodeStep(const DecodeBatch&) const override
    {
        return {};
    }
};

TEST(BackendRegistry, DuplicateNameRegistrationDies)
{
    EXPECT_DEATH(BackendRegistry::instance().add(
                     std::make_unique<ShadowReference>()),
                 "'reference' is already registered");
}

// ----------------------------------------------- capability resolution --

TEST(BackendResolution, PrefersFusedHotPathsDeterministically)
{
    auto& reg = BackendRegistry::instance();
    ResolveQuery q;
    q.cache = CacheKind::Paged;
    q.format = QuantFormat::Fp16;
    q.scenario = attn::Scenario::Serving;
    // Both reference and fused-paged match; the fused hot path wins.
    EXPECT_STREQ(reg.resolveCapable(q).name(), "fused-paged");

    q.cache = CacheKind::Contiguous;
    q.scenario = attn::Scenario::Single;
    EXPECT_STREQ(reg.resolveCapable(q).name(), "fused-fp16");

    q.format = QuantFormat::Int2; // QServe is 4-bit-only; KIVI isn't fused
    EXPECT_STREQ(reg.resolveCapable(q).name(), "fused-packed");

    q.format = QuantFormat::Mx;
    EXPECT_STREQ(reg.resolveCapable(q).name(), "mx");
}

TEST(BackendResolution, CapabilityMismatchDiesWithMatrix)
{
    ResolveQuery q;
    q.cache = CacheKind::Paged;
    q.format = QuantFormat::Int2;
    q.scenario = attn::Scenario::Serving;
    EXPECT_DEATH(BackendRegistry::instance().resolveCapable(q),
                 "no registered backend supports.*capability matrix");
}

TEST(BackendResolution, BindingMismatchDiesWithClearError)
{
    // A paged cache handed to the contiguous-only fused-packed backend
    // must fail with the backend's name and capability line, not crash.
    auto& reg = BackendRegistry::instance();
    const AttentionBackend& packed = reg.resolve("fused-packed");
    FixtureConfig fc;
    fc.context = 64;
    fc.head_dim = 16;
    fc.gq = 2;
    const DecodeFixture paged_fx(reg.resolve("fused-paged"), fc);
    EXPECT_DEATH(packed.decodeStep(paged_fx.batch()),
                 "backend 'fused-packed' cannot consume a paged-fp16 item");
}

// ------------------------------------------------------------- plans ----

TEST(BackendPlan, ReportsChunkingAndRejectsWrongScenarios)
{
    auto& reg = BackendRegistry::instance();
    attn::DecodeShape shape;
    shape.seq_len = 1000;
    shape.page_size = 64;
    shape.scenario = attn::Scenario::Serving;

    const backend::DecodePlan paged =
        reg.resolve("fused-paged").plan(shape);
    ASSERT_TRUE(paged.supported);
    EXPECT_EQ(paged.kv_chunk, 64);
    EXPECT_EQ(paged.splits, 16); // ceil(1000 / 64)

    const backend::DecodePlan flash = reg.resolve("flash").plan(shape);
    EXPECT_FALSE(flash.supported);
    EXPECT_FALSE(flash.reason.empty());

    shape.scenario = attn::Scenario::Single;
    const backend::DecodePlan flash1 = reg.resolve("flash").plan(shape);
    ASSERT_TRUE(flash1.supported);
    EXPECT_EQ(flash1.splits, 4);

    const backend::DecodePlan f16 = reg.resolve("fused-fp16").plan(shape);
    ASSERT_TRUE(f16.supported);
    EXPECT_EQ(f16.kv_chunk, exec::kChunkTokens);

    // fused-packed chunks by residual blocks, never "one pass".
    const backend::DecodePlan pk = reg.resolve("fused-packed").plan(shape);
    ASSERT_TRUE(pk.supported);
    EXPECT_GT(pk.kv_chunk, 0);
    EXPECT_GT(pk.splits, 1);
}

// ------------------------------------------------ digest parity sweep ---

/**
 * Every backend with a flat-tensor reference must match it to 1e-3 over
 * the same content stream. The sweep enumerates the registry instead of
 * hard-coding names, so a newly registered backend (e.g. a SIMD sibling)
 * is covered the moment it registers; only `mx` opts out (its cache is
 * built from a different content stream than the flat fixture's).
 */
TEST(BackendParity, AllBackendsMatchReferenceAt1e3)
{
    auto& reg = BackendRegistry::instance();
    FixtureConfig fc;
    // 288 tokens: divisible by the quantization group size (32), but a
    // partial last page (288 % 13 != 0) and a partial fused chunk
    // (288 % 128 != 0), so every path's tail handling is in the sweep.
    fc.context = 288;
    fc.head_dim = 32;
    fc.gq = 4;
    fc.page_size = 13;
    const float scale = 1.0f / std::sqrt(32.0f);

    int swept = 0;
    for (const std::string& name : reg.availableNames()) {
        if (name == "mx")
            continue;
        const AttentionBackend& be = reg.resolve(name);
        const DecodeFixture fx(be, fc);
        DecodeBatch b = fx.batch();
        b.scale = scale;
        const Tensor<float> got = be.decodeStep(b)[0];
        const Tensor<float> want = fx.referenceOutput(scale);
        EXPECT_LT(attn::maxAbsDiff(got, want), 1e-3f) << name;
        swept++;
    }
    EXPECT_GE(swept, 7); // at minimum the scalar builtins
}

/** The scalar twin of a SIMD sibling name; empty for non-siblings. */
std::string
scalarTwinOf(const std::string& name)
{
    if (name.ends_with("-avx2"))
        return name.substr(0, name.size() - 5);
    if (name.ends_with("-avx512"))
        return name.substr(0, name.size() - 7);
    return {};
}

/**
 * The SIMD contract: every available sibling digests bitwise identically
 * to its scalar twin over identical cache content — same chunking, same
 * merge order, bit-equal arithmetic. Covers partial pages, partial
 * chunks, and the packed path's residual tail.
 */
TEST(BackendParity, SimdSiblingsDigestIdenticalToScalarTwins)
{
    auto& reg = BackendRegistry::instance();
    FixtureConfig fc;
    fc.context = 288;
    fc.head_dim = 32;
    fc.gq = 4;
    fc.page_size = 13;
    for (const std::string& name : reg.availableNames()) {
        const std::string twin = scalarTwinOf(name);
        if (twin.empty())
            continue;
        const AttentionBackend& be = reg.resolve(name);
        const AttentionBackend& sc = reg.resolve(twin);
        // Equal fixture configs bind bitwise-equal cache content.
        const DecodeFixture fx(be, fc);
        const DecodeFixture fxs(sc, fc);
        DecodeBatch b = fx.batch();
        DecodeBatch bs = fxs.batch();
        b.scale = bs.scale = 0.125f;
        EXPECT_EQ(be.digest(b), sc.digest(bs)) << name << " vs " << twin;
    }
}

/**
 * Equal chunking must mean equal bytes: at page_size == kChunkTokens the
 * paged and contiguous fused paths partition the KV identically, so
 * their digests over identical content must match bitwise.
 */
TEST(BackendParity, EqualChunkingDigestsAreBitwiseIdentical)
{
    auto& reg = BackendRegistry::instance();
    FixtureConfig fc;
    fc.context = 300; // 2 full chunks + a 44-token partial
    fc.head_dim = 32;
    fc.gq = 4;
    fc.page_size = exec::kChunkTokens;
    const AttentionBackend& fp16 = reg.resolve("fused-fp16");
    const AttentionBackend& paged = reg.resolve("fused-paged");
    const DecodeFixture fx16(fp16, fc);
    const DecodeFixture fxp(paged, fc);

    DecodeBatch b16 = fx16.batch();
    DecodeBatch bp = fxp.batch();
    b16.scale = bp.scale = 0.125f;
    EXPECT_EQ(fp16.digest(b16), paged.digest(bp));
}

TEST(BackendParity, DigestsAreThreadCountInvariant)
{
    auto& reg = BackendRegistry::instance();
    FixtureConfig fc;
    fc.context = 520;
    fc.head_dim = 32;
    fc.gq = 4;
    exec::ThreadPool pool8(8);
    for (const std::string& name : reg.fusedNames()) {
        const AttentionBackend& be = reg.resolve(name);
        const DecodeFixture fx(be, fc);
        DecodeBatch serial = fx.batch();
        serial.scale = 0.125f;
        DecodeBatch parallel = serial;
        parallel.pool = &pool8;
        EXPECT_EQ(be.digest(serial), be.digest(parallel)) << name;
    }
}

// ----------------------------------------------------- engine wiring ----

TEST(EngineBackend, UnknownNameFailsFastAtConstruction)
{
    serving::EngineConfig cfg;
    cfg.num_pages = 64;
    cfg.page_size = 16;
    cfg.backend = "definitely-not-a-backend";
    EXPECT_DEATH(serving::Engine(sim::archA100(), model::llama31_8b(), cfg),
                 "unknown attention backend.*fused-paged");
}

TEST(EngineBackend, NonPagedBackendIsRejectedWithCapabilities)
{
    serving::EngineConfig cfg;
    cfg.num_pages = 64;
    cfg.page_size = 16;
    cfg.backend = "kivi";
    EXPECT_DEATH(serving::Engine(sim::archA100(), model::llama31_8b(), cfg),
                 "backend 'kivi' cannot serve the engine's paged FP16");
}

/** The reference backend also serves pages (gather path): digests agree
 *  with fused-paged runs to the extent the hashes certify content, and
 *  every request gets a nonzero attention hash. */
TEST(EngineBackend, ReferenceBackendServesAsOracle)
{
    serving::EngineConfig cfg;
    cfg.num_pages = 64;
    cfg.page_size = 16;
    cfg.backend = "reference";
    cfg.sched.max_batch = 4;
    serving::TraceConfig tc;
    tc.num_requests = 4;
    tc.arrival_rate_qps = 100.0;
    tc.prompt_median = 20;
    tc.prompt_max = 40;
    tc.output_median = 8;
    tc.output_max = 12;
    std::vector<serving::Request> reqs = serving::generateTrace(tc);
    serving::Engine engine(sim::archA100(), model::llama31_8b(), cfg);
    engine.run(reqs);
    for (const auto& r : reqs)
        EXPECT_NE(r.attn_hash, 0u) << "request " << r.id;
}

/** Serving with a SIMD paged backend must be byte-identical to serving
 *  with the scalar fused-paged backend: same trace, same per-request
 *  attention hashes. */
TEST(EngineBackend, SimdPagedBackendServesByteIdentically)
{
    auto& reg = BackendRegistry::instance();
    serving::TraceConfig tc;
    tc.num_requests = 4;
    tc.arrival_rate_qps = 100.0;
    tc.prompt_median = 20;
    tc.prompt_max = 40;
    tc.output_median = 8;
    tc.output_max = 12;
    const std::vector<serving::Request> trace = serving::generateTrace(tc);

    const auto hashesWith = [&trace](const std::string& be) {
        serving::EngineConfig cfg;
        cfg.num_pages = 64;
        cfg.page_size = 16;
        cfg.backend = be;
        cfg.sched.max_batch = 4;
        std::vector<serving::Request> reqs = trace;
        serving::Engine engine(sim::archA100(), model::llama31_8b(), cfg);
        engine.run(reqs);
        std::vector<std::uint64_t> hashes;
        for (const auto& r : reqs)
            hashes.push_back(r.attn_hash);
        return hashes;
    };

    const std::vector<std::uint64_t> scalar = hashesWith("fused-paged");
    int compared = 0;
    for (const char* sibling : {"fused-paged-avx2", "fused-paged-avx512"}) {
        const AttentionBackend* be = reg.find(sibling);
        ASSERT_NE(be, nullptr);
        if (!be->available())
            continue;
        EXPECT_EQ(hashesWith(sibling), scalar) << sibling;
        compared++;
    }
    if (compared == 0)
        GTEST_SKIP() << "host runs no SIMD paged sibling: "
                     << exec::simd::describeCpuFeatures();
}

} // namespace
} // namespace bitdec
