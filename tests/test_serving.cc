/**
 * @file
 * Tests for the paged allocator/cache under churn and for the
 * continuous-batching serving engine: admission, preempt-and-recompute,
 * determinism and metrics.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gpusim/arch.h"
#include "kvcache/paged_cache.h"
#include "model/model_config.h"
#include "serving/client.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/request.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

namespace bitdec {
namespace {

using serving::Engine;
using serving::EngineConfig;
using serving::Request;
using serving::RequestState;
using serving::ServingMetrics;

/**
 * One serving run through the narrow ServingClient seam — how every
 * end-to-end test drives the engine (white-box tests that inspect
 * engine.cache() still construct an Engine directly). Results are read
 * back per request via result(id).
 */
struct ClientRun
{
    std::unique_ptr<serving::ServingClient> client;
    ServingMetrics metrics;

    const Request& result(int id) const
    {
        const Request* r = client->poll(id);
        EXPECT_NE(r, nullptr);
        return *r;
    }
};

ClientRun
runClient(const EngineConfig& cfg, const std::vector<Request>& trace,
          int shards = 1)
{
    ClientRun run;
    run.client = serving::makeServingClient(sim::archA100(),
                                            model::llama2_7b(), cfg, shards);
    for (const Request& r : trace)
        run.client->submit(r);
    run.metrics = run.client->drain();
    return run;
}

std::vector<Half>
tokenVec(int d, float value)
{
    return std::vector<Half>(static_cast<std::size_t>(d), Half(value));
}

// ------------------------------------------------- paged cache churn ----

TEST(PagedCacheChurn, PagesRecycleAcrossSequenceGenerations)
{
    kv::PagedHeadCache cache(4, 2, 8); // d=4, 2 tokens/page, 8 pages
    // Three generations of sequences that each consume the whole pool.
    for (int gen = 0; gen < 3; gen++) {
        std::vector<int> seqs;
        for (int i = 0; i < 4; i++)
            seqs.push_back(cache.addSequence());
        for (int i = 0; i < 4; i++)
            for (int t = 0; t < 4; t++)
                ASSERT_TRUE(cache.append(seqs[static_cast<std::size_t>(i)],
                                         tokenVec(4, 1.0f), tokenVec(4, 2.0f)));
        EXPECT_EQ(cache.freePages(), 0);
        for (int s : seqs)
            cache.removeSequence(s);
        EXPECT_EQ(cache.freePages(), 8);
    }
}

TEST(PagedCacheChurn, OomMidSequenceThenRecoversAfterRelease)
{
    kv::PagedHeadCache cache(4, 2, 4);
    const int hog = cache.addSequence();
    for (int t = 0; t < 6; t++)
        ASSERT_TRUE(cache.append(hog, tokenVec(4, 0.5f), tokenVec(4, 0.5f)));
    const int starved = cache.addSequence();
    ASSERT_TRUE(cache.append(starved, tokenVec(4, 1.0f), tokenVec(4, 1.0f)));
    ASSERT_TRUE(cache.append(starved, tokenVec(4, 2.0f), tokenVec(4, 2.0f)));
    // Third token needs a new page; pool is dry mid-sequence.
    EXPECT_FALSE(cache.append(starved, tokenVec(4, 3.0f), tokenVec(4, 3.0f)));
    EXPECT_EQ(cache.length(starved), 2);
    // Freeing the hog unblocks the append and the data is intact.
    cache.removeSequence(hog);
    EXPECT_TRUE(cache.append(starved, tokenVec(4, 3.0f), tokenVec(4, 3.0f)));
    const auto keys = cache.gatherKeys(starved);
    EXPECT_EQ(keys.dim(0), 3u);
    EXPECT_EQ(keys.at(0, 0).toFloat(), 1.0f);
    EXPECT_EQ(keys.at(2, 0).toFloat(), 3.0f);
}

TEST(PagedCacheChurn, DoubleReleaseOfRecycledPagePanics)
{
    kv::PageAllocator alloc(3);
    const auto a = alloc.allocate();
    const auto b = alloc.allocate();
    alloc.release(*a);
    alloc.release(*b);
    EXPECT_DEATH(alloc.release(*b), "double free");
}

TEST(PagedCacheChurn, GatherCrossesPageBoundaries)
{
    kv::PagedHeadCache cache(2, 3, 8); // 3 tokens/page: boundaries at 3, 6
    const int s = cache.addSequence();
    for (int t = 0; t < 8; t++)
        ASSERT_TRUE(cache.append(s, tokenVec(2, static_cast<float>(t)),
                                 tokenVec(2, static_cast<float>(-t))));
    EXPECT_EQ(cache.pageTable(s).size(), 3u);
    const auto keys = cache.gatherKeys(s);
    const auto vals = cache.gatherValues(s);
    for (int t = 0; t < 8; t++) {
        EXPECT_EQ(keys.at(static_cast<std::size_t>(t), 1).toFloat(),
                  static_cast<float>(t));
        EXPECT_EQ(vals.at(static_cast<std::size_t>(t), 0).toFloat(),
                  static_cast<float>(-t));
    }
}

TEST(PagedCacheChurn, EmptySequenceGathersZeroRows)
{
    kv::PagedHeadCache cache(16, 4, 4);
    const int s = cache.addSequence();
    const auto keys = cache.gatherKeys(s);
    const auto vals = cache.gatherValues(s);
    EXPECT_EQ(keys.dim(0), 0u);
    EXPECT_EQ(keys.dim(1), 16u);
    EXPECT_EQ(keys.numel(), 0u);
    EXPECT_EQ(vals.dim(0), 0u);
}

TEST(PagedCache, HeadroomQueries)
{
    kv::PagedHeadCache cache(4, 4, 4); // 16 token capacity
    EXPECT_EQ(cache.pagesFor(0), 0);
    EXPECT_EQ(cache.pagesFor(1), 1);
    EXPECT_EQ(cache.pagesFor(4), 1);
    EXPECT_EQ(cache.pagesFor(5), 2);
    EXPECT_TRUE(cache.hasHeadroom(0, 16));
    EXPECT_FALSE(cache.hasHeadroom(0, 17));
    const int s = cache.addSequence();
    for (int t = 0; t < 3; t++)
        ASSERT_TRUE(cache.append(s, tokenVec(4, 0.f), tokenVec(4, 0.f)));
    // 3 tokens sit in one page with one slot spare: growing by one token
    // needs no new page, so headroom holds even with 3 free pages left.
    EXPECT_TRUE(cache.hasHeadroom(3, 1));
    EXPECT_TRUE(cache.hasHeadroom(3, 13));
    EXPECT_FALSE(cache.hasHeadroom(3, 14));
}

TEST(PagedCache, LiveSequenceIteration)
{
    kv::PagedHeadCache cache(4, 4, 8);
    const int a = cache.addSequence();
    const int b = cache.addSequence();
    const int c = cache.addSequence();
    cache.removeSequence(b);
    EXPECT_EQ(cache.numLive(), 2);
    EXPECT_EQ(cache.liveSequences(), (std::vector<int>{a, c}));
    // Slot reuse keeps ids dense.
    const int d = cache.addSequence();
    EXPECT_EQ(d, b);
    EXPECT_EQ(cache.numLive(), 3);
}

// ------------------------------------------- prefix sharing and CoW ----

TEST(PageAllocatorRefcount, PageFreesOnlyOnLastRelease)
{
    kv::PageAllocator alloc(2);
    const int p = *alloc.allocate();
    EXPECT_EQ(alloc.refCount(p), 1);
    alloc.retain(p);
    alloc.retain(p);
    EXPECT_EQ(alloc.refCount(p), 3);
    alloc.release(p);
    alloc.release(p);
    EXPECT_EQ(alloc.freePages(), 1); // still held once
    EXPECT_EQ(alloc.refCount(p), 1);
    alloc.release(p);
    EXPECT_EQ(alloc.freePages(), 2);
    EXPECT_EQ(alloc.refCount(p), 0);
}

TEST(PagedCachePrefix, MappedSequenceSharesPagesAndContent)
{
    kv::PagedHeadCache cache(4, 4, 16);
    const int pub = cache.addSequence();
    for (int t = 0; t < 10; t++)
        ASSERT_TRUE(cache.append(pub, tokenVec(4, static_cast<float>(t)),
                                 tokenVec(4, static_cast<float>(-t))));
    ASSERT_TRUE(cache.publishPrefix(77, pub, 8)); // 2 full pages
    EXPECT_EQ(cache.prefixTokens(77), 8);
    EXPECT_EQ(cache.prefixPages(77), 2);
    EXPECT_FALSE(cache.publishPrefix(77, pub, 8)); // first publisher wins

    const int free_before = cache.freePages();
    const int sub = cache.addSequenceWithPrefix(77);
    EXPECT_EQ(cache.freePages(), free_before); // mapping allocates nothing
    EXPECT_EQ(cache.length(sub), 8);
    EXPECT_EQ(cache.pageTable(sub)[0], cache.pageTable(pub)[0]);
    EXPECT_EQ(cache.pageTable(sub)[1], cache.pageTable(pub)[1]);
    const auto keys = cache.gatherKeys(sub);
    for (int t = 0; t < 8; t++)
        EXPECT_EQ(keys.at(static_cast<std::size_t>(t), 0).toFloat(),
                  static_cast<float>(t));

    // The prefix outlives its publisher: the index pins the pages.
    cache.removeSequence(pub);
    EXPECT_EQ(cache.prefixTokens(77), 8);
    EXPECT_EQ(cache.tokenKey(sub, 3)[0].toFloat(), 3.0f);
}

TEST(PagedCachePrefix, CopyOnWriteIsolatesDivergence)
{
    kv::PagedHeadCache cache(2, 4, 16);
    const int pub = cache.addSequence();
    for (int t = 0; t < 6; t++) // 1 full page + 2 slots in the second
        ASSERT_TRUE(cache.append(pub, tokenVec(2, static_cast<float>(t)),
                                 tokenVec(2, 0.f)));
    ASSERT_TRUE(cache.publishPrefix(5, pub, 6)); // shares the partial page

    const int a = cache.addSequenceWithPrefix(5);
    const int b = cache.addSequenceWithPrefix(5);
    ASSERT_EQ(cache.cowCopies(), 0);

    // a diverges into the shared partial page: CoW copies slots [0, 2).
    ASSERT_TRUE(cache.append(a, tokenVec(2, 100.f), tokenVec(2, 0.f)));
    EXPECT_EQ(cache.cowCopies(), 1);
    EXPECT_NE(cache.pageTable(a)[1], cache.pageTable(pub)[1]);
    EXPECT_EQ(cache.pageTable(a)[0], cache.pageTable(pub)[0]);

    // b then diverges too, with different content.
    ASSERT_TRUE(cache.append(b, tokenVec(2, 200.f), tokenVec(2, 0.f)));
    EXPECT_EQ(cache.cowCopies(), 2);

    // All three views agree on the prefix and disagree after it.
    EXPECT_EQ(cache.tokenKey(pub, 5)[0].toFloat(), 5.0f);
    EXPECT_EQ(cache.tokenKey(a, 5)[0].toFloat(), 5.0f);
    EXPECT_EQ(cache.tokenKey(b, 5)[0].toFloat(), 5.0f);
    EXPECT_EQ(cache.tokenKey(a, 6)[0].toFloat(), 100.0f);
    EXPECT_EQ(cache.tokenKey(b, 6)[0].toFloat(), 200.0f);
    EXPECT_EQ(cache.length(pub), 6);

    // The publisher's own append into its (still shared with the index)
    // partial page also goes through CoW.
    ASSERT_TRUE(cache.append(pub, tokenVec(2, 300.f), tokenVec(2, 0.f)));
    EXPECT_EQ(cache.cowCopies(), 3);
}

TEST(PagedCachePrefix, ReclaimableAndUnusedPrefixRelease)
{
    kv::PagedHeadCache cache(2, 4, 16);
    const int pub = cache.addSequence();
    for (int t = 0; t < 8; t++)
        ASSERT_TRUE(cache.append(pub, tokenVec(2, 1.f), tokenVec(2, 1.f)));
    ASSERT_TRUE(cache.publishPrefix(9, pub, 8));
    // Both pages are pinned by the index: freeing pub reclaims nothing.
    EXPECT_EQ(cache.reclaimablePages(pub), 0);

    const int sub = cache.addSequenceWithPrefix(9);
    for (int t = 0; t < 4; t++)
        ASSERT_TRUE(cache.append(sub, tokenVec(2, 2.f), tokenVec(2, 2.f)));
    EXPECT_EQ(cache.reclaimablePages(sub), 1); // only its private page

    // A mapped prefix is not evictable; an unmapped one is.
    EXPECT_EQ(cache.releaseUnusedPrefixes(), 0);
    cache.removeSequence(pub);
    cache.removeSequence(sub);
    EXPECT_EQ(cache.numPrefixes(), 1);
    EXPECT_EQ(cache.freePages(), 16 - 2); // index still pins two pages
    EXPECT_EQ(cache.releaseUnusedPrefixes(), 2);
    EXPECT_EQ(cache.numPrefixes(), 0);
    EXPECT_EQ(cache.freePages(), 16);
}

TEST(PagedCachePrefix, PagesNeededForAppendCountsCow)
{
    kv::PagedHeadCache cache(2, 4, 16);
    const int pub = cache.addSequence();
    for (int t = 0; t < 6; t++)
        ASSERT_TRUE(cache.append(pub, tokenVec(2, 1.f), tokenVec(2, 1.f)));
    ASSERT_TRUE(cache.publishPrefix(3, pub, 6));
    const int sub = cache.addSequenceWithPrefix(3);
    // One token into the shared partial page: zero boundary pages, but a
    // CoW copy is due.
    EXPECT_EQ(cache.pagesNeededForAppend(sub, 1), 1);
    // Three tokens: the CoW page absorbs slots 2..3, token 3 opens page 3.
    EXPECT_EQ(cache.pagesNeededForAppend(sub, 3), 2);
    ASSERT_TRUE(cache.append(sub, tokenVec(2, 2.f), tokenVec(2, 2.f)));
    // After the CoW the last page is private: appends are cheap again.
    EXPECT_EQ(cache.pagesNeededForAppend(sub, 1), 0);
}

// ------------------------------------------------------------ traces ----

TEST(Trace, SameSeedSameTrace)
{
    serving::TraceConfig cfg;
    cfg.seed = 42;
    cfg.num_requests = 32;
    cfg.arrival_rate_qps = 4.0;
    const auto a = serving::generateTrace(cfg);
    const auto b = serving::generateTrace(cfg);
    ASSERT_EQ(a.size(), 32u);
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
    }
    cfg.seed = 43;
    const auto c = serving::generateTrace(cfg);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); i++)
        differs |= a[i].prompt_tokens != c[i].prompt_tokens ||
                   a[i].arrival_s != c[i].arrival_s;
    EXPECT_TRUE(differs);
}

TEST(Trace, ArrivalsSortedAndLengthsClamped)
{
    serving::TraceConfig cfg;
    cfg.num_requests = 200;
    cfg.arrival_rate_qps = 10.0;
    cfg.prompt_min = 64;
    cfg.prompt_max = 256;
    const auto t = serving::generateTrace(cfg);
    for (std::size_t i = 1; i < t.size(); i++)
        EXPECT_GE(t[i].arrival_s, t[i - 1].arrival_s);
    for (const auto& r : t) {
        EXPECT_GE(r.prompt_tokens, 64);
        EXPECT_LE(r.prompt_tokens, 256);
        EXPECT_GE(r.output_tokens, cfg.output_min);
    }
}

TEST(Trace, SmokeTraceIsFixed)
{
    const auto a = serving::smokeTrace();
    const auto b = serving::smokeTrace();
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
    }
}

// --------------------------------------------------------- scheduler ----

TEST(Scheduler, FcfsAdmissionRespectsBatchAndHeadroom)
{
    kv::PagedHeadCache cache(4, 4, 8); // 32 tokens
    serving::SchedulerConfig cfg;
    cfg.max_batch = 2;
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(3);
    for (int i = 0; i < 3; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 8;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    sched.admit(cache);
    // max_batch caps admission at two despite page headroom for a third.
    ASSERT_EQ(sched.running().size(), 2u);
    EXPECT_EQ(sched.running()[0]->id, 0);
    EXPECT_EQ(sched.running()[1]->id, 1);
    EXPECT_EQ(reqs[0].state, RequestState::Prefill);
    EXPECT_EQ(reqs[2].state, RequestState::Queued);
    EXPECT_EQ(sched.waitingCount(), 1);
}

TEST(Scheduler, PreemptionTakesNewestAndResumesFirst)
{
    kv::PagedHeadCache cache(4, 4, 16);
    serving::SchedulerConfig cfg;
    cfg.max_batch = 4;
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(3);
    for (int i = 0; i < 3; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 4;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 3u);
    // Give each sequence a page: only page-holding requests are victims.
    for (const Request* r : sched.running())
        ASSERT_TRUE(cache.append(r->seq, tokenVec(4, 1.f), tokenVec(4, 1.f)));

    Request* victim = sched.preemptVictim(cache);
    ASSERT_EQ(victim, &reqs[2]); // newest admitted
    sched.preempt(victim, cache);
    EXPECT_EQ(reqs[2].state, RequestState::Preempted);
    EXPECT_EQ(reqs[2].seq, -1);
    EXPECT_EQ(reqs[2].preemptions, 1);
    EXPECT_EQ(sched.preemptionCount(), 1);

    // The victim re-admits ahead of any later arrival.
    Request late;
    late.id = 99;
    late.prompt_tokens = 4;
    late.output_tokens = 2;
    sched.enqueue(&late);
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 4u);
    EXPECT_EQ(sched.running()[2]->id, 2);
    EXPECT_EQ(sched.running()[3]->id, 99);
}

TEST(Scheduler, PriorityPolicyAdmitsUrgentFirst)
{
    kv::PagedHeadCache cache(4, 4, 64);
    serving::SchedulerConfig cfg;
    cfg.max_batch = 2;
    cfg.policy = serving::SchedPolicy::Priority;
    cfg.aging_rate = 0; // pure static priority
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(4);
    for (int i = 0; i < 4; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 8;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        reqs[static_cast<std::size_t>(i)].priority = i; // 3 most urgent
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    sched.admit(cache, 0.0);
    ASSERT_EQ(sched.running().size(), 2u);
    EXPECT_EQ(sched.running()[0]->id, 3);
    EXPECT_EQ(sched.running()[1]->id, 2);
    EXPECT_EQ(reqs[0].state, RequestState::Queued);
}

TEST(Scheduler, AgingPreventsStarvation)
{
    kv::PagedHeadCache cache(4, 4, 64);
    serving::SchedulerConfig cfg;
    cfg.max_batch = 1;
    cfg.policy = serving::SchedPolicy::Priority;
    cfg.aging_rate = 0.1; // +1 effective priority per 10 s waited
    serving::Scheduler sched(cfg);

    Request old_low;
    old_low.id = 0;
    old_low.arrival_s = 0;
    old_low.priority = 0;
    old_low.prompt_tokens = 8;
    old_low.output_tokens = 4;
    Request new_high;
    new_high.id = 1;
    new_high.arrival_s = 100;
    new_high.priority = 3;
    new_high.prompt_tokens = 8;
    new_high.output_tokens = 4;
    sched.enqueue(&old_low);
    sched.enqueue(&new_high);

    // At t=100 the old request has a +10 aging credit vs +0: 10 > 3.
    EXPECT_GT(sched.effectivePriority(old_low, 100),
              sched.effectivePriority(new_high, 100));
    sched.admit(cache, 100.0);
    ASSERT_EQ(sched.running().size(), 1u);
    EXPECT_EQ(sched.running()[0]->id, 0); // the starving request won

    // Without aging the fresher high-priority request wins.
    serving::SchedulerConfig no_age = cfg;
    no_age.aging_rate = 0;
    serving::Scheduler sched2(no_age);
    Request a = old_low, b = new_high;
    a.state = RequestState::Queued;
    b.state = RequestState::Queued;
    sched2.enqueue(&a);
    sched2.enqueue(&b);
    sched2.admit(cache, 100.0);
    ASSERT_EQ(sched2.running().size(), 1u);
    EXPECT_EQ(sched2.running()[0]->id, 1);
}

TEST(Scheduler, PriorityPreemptionPicksLowestWithReclaimablePages)
{
    kv::PagedHeadCache cache(4, 4, 64);
    serving::SchedulerConfig cfg;
    cfg.max_batch = 4;
    cfg.policy = serving::SchedPolicy::Priority;
    cfg.aging_rate = 0;
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(3);
    for (int i = 0; i < 3; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 4;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    reqs[0].priority = 1;
    reqs[1].priority = 0; // lowest: preferred victim
    reqs[2].priority = 2;
    sched.admit(cache, 0.0);
    ASSERT_EQ(sched.running().size(), 3u);
    for (const Request* r : sched.running())
        ASSERT_TRUE(cache.append(r->seq, tokenVec(4, 1.f), tokenVec(4, 1.f)));
    EXPECT_EQ(sched.preemptVictim(cache), &reqs[1]);

    // If the lowest-priority request holds only shared pages, it frees
    // nothing and the next-lowest is picked instead.
    ASSERT_TRUE(cache.publishPrefix(11, reqs[1].seq, 1));
    EXPECT_EQ(cache.reclaimablePages(reqs[1].seq), 0);
    EXPECT_EQ(sched.preemptVictim(cache), &reqs[0]);
}

TEST(Scheduler, PrefixGateHoldsFollowersUntilPublished)
{
    kv::PagedHeadCache cache(4, 4, 64);
    serving::SchedulerConfig cfg;
    cfg.max_batch = 8;
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(3);
    for (int i = 0; i < 3; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 12;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        reqs[static_cast<std::size_t>(i)].prefix_id = 42;
        reqs[static_cast<std::size_t>(i)].prefix_tokens = 8;
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    sched.admit(cache);
    // Only the publisher-to-be runs; followers wait for its prefix pages.
    ASSERT_EQ(sched.running().size(), 1u);
    EXPECT_EQ(sched.running()[0]->id, 0);
    EXPECT_EQ(sched.waitingCount(), 2);

    // The publisher prefills past the prefix and publishes; the gate opens
    // and followers admit with the shared tokens already in cache.
    for (int t = 0; t < 8; t++)
        ASSERT_TRUE(cache.append(reqs[0].seq, tokenVec(4, 1.f),
                                 tokenVec(4, 1.f)));
    ASSERT_TRUE(cache.publishPrefix(42, reqs[0].seq, 8));
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 3u);
    EXPECT_EQ(reqs[1].prefilled, 8);
    EXPECT_EQ(reqs[2].prefilled, 8);
    EXPECT_EQ(reqs[1].prefix_hit_tokens, 8);
    EXPECT_EQ(cache.length(reqs[1].seq), 8);
}

TEST(Scheduler, PrefixGateIgnoresDecodingRunners)
{
    // After a hard index eviction the prefix can be unpublished while a
    // past hit-admitted request is still decoding. That runner will never
    // republish, so it must not gate admission.
    kv::PagedHeadCache cache(4, 4, 64);
    serving::SchedulerConfig cfg;
    serving::Scheduler sched(cfg);

    Request decoding;
    decoding.id = 0;
    decoding.prompt_tokens = 8;
    decoding.output_tokens = 4;
    decoding.prefix_id = 42;
    decoding.prefix_tokens = 8;
    sched.enqueue(&decoding);
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 1u);
    decoding.state = RequestState::Decode; // prefill done, index empty

    Request follower = decoding;
    follower.id = 1;
    follower.state = RequestState::Queued;
    follower.seq = -1;
    sched.enqueue(&follower);
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 2u); // not gated: cold prefill
    EXPECT_EQ(follower.prefilled, 0);
}

// ------------------------------------------------------------ engine ----

EngineConfig
tinyEngineConfig(int num_pages)
{
    EngineConfig cfg;
    cfg.system = model::SystemKind::BitDecoding;
    cfg.bits = 4;
    cfg.page_size = 8;
    cfg.num_pages = num_pages;
    cfg.cache_head_dim = 4;
    cfg.sched.max_batch = 8;
    cfg.sched.prefill_chunk_tokens = 16;
    return cfg;
}

TEST(Engine, SmokeTraceCompletesEveryRequest)
{
    const auto trace = serving::smokeTrace();
    const ClientRun run = runClient(tinyEngineConfig(512), trace);
    const ServingMetrics& m = run.metrics;
    EXPECT_EQ(m.num_requests, 8);
    EXPECT_EQ(m.preemptions, 0); // ample pool: no pressure
    for (const auto& q : trace) {
        const Request& r = run.result(q.id);
        EXPECT_EQ(r.state, RequestState::Finished);
        EXPECT_EQ(r.generated, r.output_tokens);
        EXPECT_GE(r.first_token_s, r.arrival_s);
        EXPECT_GE(r.finish_s, r.first_token_s);
    }
    EXPECT_GT(m.sustained_tokens_per_s, 0);
    EXPECT_GT(m.ttft_p99_s, 0);
    EXPECT_GE(m.latency_p99_s, m.latency_p50_s);
}

TEST(Engine, SurvivesPageExhaustionWithZeroDrops)
{
    // 28 pages x 8 tokens = 224 tokens; the smoke trace needs 596 token
    // slots across overlapping requests, so the pool is exhausted
    // repeatedly and the scheduler must preempt to make progress.
    const auto trace = serving::smokeTrace();
    const ClientRun run = runClient(tinyEngineConfig(28), trace);
    const ServingMetrics& m = run.metrics;
    EXPECT_EQ(m.num_requests, 8); // zero dropped requests
    EXPECT_GT(m.preemptions, 0);
    for (const auto& q : trace)
        EXPECT_EQ(run.result(q.id).state, RequestState::Finished);
    EXPECT_GT(m.peak_page_utilization, 0.9);
}

TEST(Engine, DeterministicAcrossRuns)
{
    const auto trace = serving::smokeTrace();
    const ClientRun a = runClient(tinyEngineConfig(28), trace);
    const ClientRun b = runClient(tinyEngineConfig(28), trace);
    EXPECT_EQ(a.metrics.outputs_digest, b.metrics.outputs_digest);
    EXPECT_EQ(a.metrics.preemptions, b.metrics.preemptions);
    EXPECT_DOUBLE_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
    EXPECT_DOUBLE_EQ(a.metrics.ttft_p99_s, b.metrics.ttft_p99_s);
    for (const auto& q : trace) {
        EXPECT_EQ(a.result(q.id).output_hash, b.result(q.id).output_hash);
        EXPECT_EQ(a.result(q.id).preemptions, b.result(q.id).preemptions);
    }
}

TEST(Engine, PreemptionPreservesOutputs)
{
    // The same trace through a pressured pool (preempting) and a large
    // pool (never preempting) must produce identical token streams:
    // recompute restored the exact cache content every decode step read.
    const auto trace = serving::smokeTrace();
    const ClientRun small = runClient(tinyEngineConfig(28), trace);
    const ClientRun large = runClient(tinyEngineConfig(512), trace);
    ASSERT_GT(small.metrics.preemptions, 0);
    ASSERT_EQ(large.metrics.preemptions, 0);
    EXPECT_EQ(small.metrics.outputs_digest, large.metrics.outputs_digest);
    for (const auto& q : trace)
        EXPECT_EQ(small.result(q.id).output_hash,
                  large.result(q.id).output_hash);
}

TEST(Engine, GeneratedTraceUnderPressure)
{
    serving::TraceConfig tc;
    tc.seed = 7;
    tc.num_requests = 24;
    tc.arrival_rate_qps = 50.0;
    tc.prompt_median = 48;
    tc.prompt_min = 16;
    tc.prompt_max = 128;
    tc.output_median = 16;
    tc.output_min = 4;
    tc.output_max = 32;
    const auto trace = serving::generateTrace(tc);
    const ClientRun run = runClient(tinyEngineConfig(32), trace);
    EXPECT_EQ(run.metrics.num_requests, 24);
    for (const auto& q : trace)
        EXPECT_EQ(run.result(q.id).generated, q.output_tokens);
}

/** Four requests sharing a 20-token prefix (not page-aligned: page_size 8,
 *  so the third prefix page is partial and exercises CoW). */
std::vector<Request>
prefixTrace()
{
    std::vector<Request> trace;
    for (int i = 0; i < 4; i++) {
        Request r;
        r.id = i;
        r.arrival_s = 0.005 * i;
        r.prompt_tokens = 30;
        r.output_tokens = 8;
        r.prefix_id = 0xABCDull;
        r.prefix_tokens = 20;
        trace.push_back(r);
    }
    return trace;
}

TEST(Engine, PrefixHitDigestEqualsColdPrefillDigest)
{
    auto cold_trace = prefixTrace();
    auto hit_trace = prefixTrace();
    EngineConfig cold_cfg = tinyEngineConfig(64);
    cold_cfg.sched.prefix_reuse = false;
    EngineConfig hit_cfg = tinyEngineConfig(64);
    Engine cold(sim::archA100(), model::llama2_7b(), cold_cfg);
    Engine hit(sim::archA100(), model::llama2_7b(), hit_cfg);
    const ServingMetrics mc = cold.run(cold_trace);
    const ServingMetrics mh = hit.run(hit_trace);

    // Identical token content, so identical digests...
    EXPECT_EQ(mc.outputs_digest, mh.outputs_digest);
    for (std::size_t i = 0; i < cold_trace.size(); i++)
        EXPECT_EQ(cold_trace[i].output_hash, hit_trace[i].output_hash);
    // ...but the reuse run skipped most of the shared prefill work.
    EXPECT_EQ(mc.prefix_hit_tokens, 0);
    EXPECT_EQ(mh.prefix_hit_tokens, 3 * 20);
    EXPECT_EQ(mh.prefill_tokens, mc.prefill_tokens - 3 * 20);
    EXPECT_GT(mh.prefix_hit_rate, 0.3);
    // The 20-token prefix ends mid-page: each follower's first private
    // append copies the partial page.
    EXPECT_GT(mh.cow_copies, 0);
    EXPECT_EQ(mc.cow_copies, 0);
    EXPECT_EQ(hit.cache().numPrefixes(), 1);
    EXPECT_EQ(cold.cache().numPrefixes(), 0);
}

TEST(Engine, PrefixReuseSurvivesPreemptionPressure)
{
    // A pool tight enough to force preemptions while four requests share
    // a prefix: refcounted pages + recompute must still reproduce the
    // relaxed run's content exactly, and every page reference must
    // balance out at the end.
    auto pressured = prefixTrace();
    auto relaxed = prefixTrace();
    Engine small(sim::archA100(), model::llama2_7b(), tinyEngineConfig(10));
    Engine large(sim::archA100(), model::llama2_7b(), tinyEngineConfig(64));
    const ServingMetrics ms = small.run(pressured);
    const ServingMetrics ml = large.run(relaxed);
    ASSERT_GT(ms.preemptions, 0);
    ASSERT_EQ(ml.preemptions, 0);
    EXPECT_EQ(ms.outputs_digest, ml.outputs_digest);
    for (std::size_t i = 0; i < pressured.size(); i++)
        EXPECT_EQ(pressured[i].output_hash, relaxed[i].output_hash);
    // After the run only the prefix index may pin pages.
    EXPECT_EQ(small.cache().numLive(), 0);
    EXPECT_EQ(small.cache().freePages() +
                  small.cache().prefixPages(0xABCDull),
              small.cache().totalPages());
}

TEST(Engine, ExactFitPoolSurvivesCowOrphanedPrefixPage)
{
    // The pool exactly fits one request (pagesFor(30+8) = 10 pages of 4
    // tokens), but the published 18-token prefix ends mid-page: the
    // publisher's own divergence CoWs that partial page, leaving the
    // original pinned by the index. The engine must hard-evict the index
    // to reclaim the orphan instead of aborting, and digests must still
    // match a relaxed cold run.
    auto tight_trace = prefixTrace();
    auto cold_trace = prefixTrace();
    for (auto& r : tight_trace)
        r.prefix_tokens = 18; // 18 % 4 != 0: partial third page
    for (auto& r : cold_trace)
        r.prefix_tokens = 18;

    EngineConfig tight = tinyEngineConfig(10);
    tight.page_size = 4;
    EngineConfig cold_cfg = tinyEngineConfig(64);
    cold_cfg.page_size = 4;
    cold_cfg.sched.prefix_reuse = false;
    Engine engine(sim::archA100(), model::llama2_7b(), tight);
    Engine cold(sim::archA100(), model::llama2_7b(), cold_cfg);
    const ServingMetrics mt = engine.run(tight_trace);
    const ServingMetrics mc = cold.run(cold_trace);
    EXPECT_EQ(mt.num_requests, 4);
    EXPECT_GT(mt.cow_copies, 0);
    EXPECT_EQ(mt.outputs_digest, mc.outputs_digest);
    EXPECT_EQ(engine.cache().numLive(), 0);
}

TEST(Engine, PerPriorityTtftIsReported)
{
    serving::TraceConfig tc;
    tc.seed = 11;
    tc.num_requests = 12;
    tc.arrival_rate_qps = 40.0;
    tc.prompt_median = 48;
    tc.prompt_min = 16;
    tc.prompt_max = 96;
    tc.output_median = 8;
    tc.output_min = 4;
    tc.output_max = 16;
    tc.num_priority_levels = 3;
    const auto trace = serving::generateTrace(tc);
    EngineConfig cfg = tinyEngineConfig(256);
    cfg.sched.policy = serving::SchedPolicy::Priority;
    cfg.sched.max_batch = 2; // force a queue so priorities matter
    const ServingMetrics m = runClient(cfg, trace).metrics;
    ASSERT_EQ(m.ttft_by_priority.size(), 3u);
    int total = 0;
    for (std::size_t i = 0; i < 3; i++) {
        EXPECT_EQ(m.ttft_by_priority[i].priority, static_cast<int>(i));
        EXPECT_EQ(m.ttft_by_priority[i].count, 4);
        EXPECT_GT(m.ttft_by_priority[i].mean_s, 0);
        EXPECT_GE(m.ttft_by_priority[i].p95_s,
                  m.ttft_by_priority[i].mean_s * 0.5);
        total += m.ttft_by_priority[i].count;
    }
    EXPECT_EQ(total, m.num_requests);
}

// ------------------------------------------------- chunked prefill ----

TEST(PagedCache, PagesToGrowIsAlignmentAware)
{
    kv::PagedHeadCache cache(4, 4, 16);
    EXPECT_EQ(cache.pagesToGrow(0, 0), 0);
    EXPECT_EQ(cache.pagesToGrow(0, 9), 3);
    EXPECT_EQ(cache.pagesToGrow(3, 4), 0);  // partial page absorbs it
    EXPECT_EQ(cache.pagesToGrow(4, 5), 1);  // next token opens a page
    EXPECT_EQ(cache.pagesToGrow(5, 13), 2); // 2 pages -> 4 pages
}

TEST(Scheduler, PlanTickReservesDecodeAndFairSharesPrefill)
{
    kv::PagedHeadCache cache(4, 4, 64);
    serving::SchedulerConfig cfg;
    cfg.max_batch = 8;
    cfg.prefill_chunk_tokens = 10;
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(3);
    for (int i = 0; i < 3; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 8;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 3u);

    // Three prefills split the 10-token budget evenly; the first request
    // takes the remainder token.
    serving::TickPlan plan = sched.planTick();
    EXPECT_EQ(plan.decode_batch, 0);
    EXPECT_EQ(plan.prefill_tokens, 10);
    EXPECT_EQ(plan.tokens, (std::vector<int>{4, 3, 3}));

    // A decoding request is reserved its token off the top; the two
    // remaining prefills fair-share the other 9.
    reqs[0].prefilled = 8;
    reqs[0].state = RequestState::Decode;
    plan = sched.planTick();
    EXPECT_EQ(plan.decode_batch, 1);
    EXPECT_EQ(plan.prefill_tokens, 9);
    EXPECT_EQ(plan.tokens, (std::vector<int>{1, 5, 4}));

    // Budget a nearly-done prefill cannot use cascades to hungry ones.
    reqs[1].prefilled = 6; // 2 tokens to go
    plan = sched.planTick();
    EXPECT_EQ(plan.tokens, (std::vector<int>{1, 2, 7}));
    EXPECT_EQ(plan.prefill_tokens, 9);
}

TEST(Scheduler, MonolithicPlanLoadsWholeTargetInOneTick)
{
    kv::PagedHeadCache cache(4, 4, 64);
    serving::SchedulerConfig cfg;
    cfg.prefill_chunk_tokens = 0; // monolithic
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(2);
    for (int i = 0; i < 2; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 30 + i;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 2u);
    const serving::TickPlan plan = sched.planTick();
    EXPECT_EQ(plan.tokens, (std::vector<int>{30, 31}));
    EXPECT_EQ(plan.prefill_tokens, 61);
}

TEST(Scheduler, ChunkedAdmissionBudgetsOnlyFirstChunk)
{
    // 4 pages x 4 tokens: a 64-token prompt can never be budgeted whole.
    Request r;
    r.id = 0;
    r.prompt_tokens = 64;
    r.output_tokens = 4;

    kv::PagedHeadCache mono_cache(4, 4, 4);
    serving::SchedulerConfig mono_cfg;
    mono_cfg.prefill_chunk_tokens = 0;
    serving::Scheduler mono(mono_cfg);
    mono.enqueue(&r);
    mono.admit(mono_cache);
    EXPECT_EQ(mono.running().size(), 0u); // blocks: 16 pages needed
    EXPECT_EQ(mono.waitingCount(), 1);

    Request rc = r;
    rc.state = RequestState::Queued;
    kv::PagedHeadCache chunk_cache(4, 4, 4);
    serving::SchedulerConfig chunk_cfg;
    chunk_cfg.prefill_chunk_tokens = 8; // first chunk = 2 pages
    serving::Scheduler chunked(chunk_cfg);
    chunked.enqueue(&rc);
    chunked.admit(chunk_cache);
    ASSERT_EQ(chunked.running().size(), 1u);
    EXPECT_EQ(rc.state, RequestState::Prefill);
}

TEST(Engine, ChunkedMatchesMonolithicDigestUnderPreemption)
{
    // The same trace through chunked prefill on a pressured pool and
    // monolithic prefill on pressured and relaxed pools: scheduling
    // changes completely, token content must not.
    const auto trace = serving::smokeTrace();
    EngineConfig mono_cfg = tinyEngineConfig(28);
    mono_cfg.sched.prefill_chunk_tokens = 0;
    EngineConfig relaxed_cfg = tinyEngineConfig(512);
    relaxed_cfg.sched.prefill_chunk_tokens = 0;
    const ClientRun chunked = runClient(tinyEngineConfig(28), trace);
    const ClientRun mono = runClient(mono_cfg, trace);
    const ClientRun relaxed = runClient(relaxed_cfg, trace);
    ASSERT_GT(chunked.metrics.preemptions, 0);
    ASSERT_EQ(relaxed.metrics.preemptions, 0);
    EXPECT_EQ(chunked.metrics.outputs_digest, mono.metrics.outputs_digest);
    EXPECT_EQ(chunked.metrics.outputs_digest, relaxed.metrics.outputs_digest);
    for (const auto& q : trace) {
        EXPECT_EQ(chunked.result(q.id).output_hash,
                  mono.result(q.id).output_hash);
        EXPECT_EQ(chunked.result(q.id).output_hash,
                  relaxed.result(q.id).output_hash);
    }
}

TEST(Engine, ChunkBoundaryCowIntoSharedPartialPage)
{
    // The 20-token prefix ends at slot 4 of page 2 (page_size 8), so a
    // follower's very first 4-token chunk lands inside the shared partial
    // page: the chunk-granular page plan must budget the CoW copy and the
    // divergence must stay private to each follower.
    auto hit_trace = prefixTrace();
    auto cold_trace = prefixTrace();
    EngineConfig hit_cfg = tinyEngineConfig(64);
    hit_cfg.sched.prefill_chunk_tokens = 4;
    EngineConfig cold_cfg = tinyEngineConfig(64);
    cold_cfg.sched.prefix_reuse = false;
    Engine hit(sim::archA100(), model::llama2_7b(), hit_cfg);
    Engine cold(sim::archA100(), model::llama2_7b(), cold_cfg);
    const ServingMetrics mh = hit.run(hit_trace);
    const ServingMetrics mc = cold.run(cold_trace);
    EXPECT_EQ(mh.prefix_hit_tokens, 3 * 20);
    EXPECT_GE(mh.cow_copies, 3); // one CoW per follower divergence
    EXPECT_EQ(mh.outputs_digest, mc.outputs_digest);
    for (std::size_t i = 0; i < hit_trace.size(); i++)
        EXPECT_EQ(hit_trace[i].output_hash, cold_trace[i].output_hash);
}

TEST(Engine, PrefixPublishesMidPrefillOnNonChunkAlignedBoundary)
{
    // The publisher's 200-token prompt prefills 16 tokens per tick, so
    // the 20-token prefix boundary is crossed mid-chunk (prefilled 16 ->
    // 32). Chunk-aware publication must publish right then: followers
    // map the prefix, fair-share the budget to load their short tails
    // alongside the still-prefilling publisher, and finish their decode
    // before the publisher produces its first token.
    std::vector<Request> trace;
    for (int i = 0; i < 4; i++) {
        Request r;
        r.id = i;
        r.arrival_s = 0.001 * i;
        r.prompt_tokens = i == 0 ? 200 : 30;
        r.output_tokens = 4;
        r.prefix_id = 0xF00Dull;
        r.prefix_tokens = 20;
        trace.push_back(r);
    }
    EngineConfig cfg = tinyEngineConfig(512);
    // 20 % 16 != 0: the boundary never coincides with a chunk boundary.
    ASSERT_EQ(cfg.sched.prefill_chunk_tokens, 16);
    const ClientRun run = runClient(cfg, trace);
    EXPECT_EQ(run.metrics.prefix_hit_tokens, 3 * 20);
    for (int i = 1; i < 4; i++)
        EXPECT_LT(run.result(i).finish_s, run.result(0).first_token_s)
            << "follower " << i << " should finish while the publisher "
            << "is still prefilling";
}

TEST(Engine, DecodeStallMetricsReported)
{
    const ServingMetrics m =
        runClient(tinyEngineConfig(512), serving::smokeTrace()).metrics;
    EXPECT_GT(m.decode_stall_p50_s, 0);
    EXPECT_GE(m.decode_stall_p99_s, m.decode_stall_p50_s);
    EXPECT_GE(m.decode_stall_max_s, m.decode_stall_p99_s);
    EXPECT_GT(m.decode_stall_mean_s, 0);
    // Stalls are inter-token gaps: bounded below by the fastest step.
    EXPECT_LE(m.decode_stall_p50_s, m.makespan_s);
}

TEST(Trace, LongPromptStragglersOverrideOnlyTheirDraw)
{
    serving::TraceConfig base;
    base.seed = 5;
    base.num_requests = 12;
    base.prompt_min = 16;
    base.prompt_max = 256;
    serving::TraceConfig straggler = base;
    straggler.long_prompt_every = 3;
    straggler.long_prompt_tokens = 5000;
    const auto a = serving::generateTrace(base);
    const auto b = serving::generateTrace(straggler);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
        if ((i + 1) % 3 == 0)
            EXPECT_EQ(b[i].prompt_tokens, 5000);
        else
            EXPECT_EQ(b[i].prompt_tokens, a[i].prompt_tokens);
    }
}

TEST(Engine, DerivedPoolScalesWithBitWidth)
{
    EngineConfig fp16;
    fp16.system = model::SystemKind::FlashDecodingFp16;
    EngineConfig bd4;
    bd4.system = model::SystemKind::BitDecoding;
    bd4.bits = 4;
    const auto& arch = sim::archA100();
    const auto& m = model::llama31_8b();
    const int fp16_pages = Engine::derivePoolPages(arch, m, fp16);
    const int bd4_pages = Engine::derivePoolPages(arch, m, bd4);
    EXPECT_GT(fp16_pages, 0);
    // The 4-bit cache holds ~4x the pages of FP16 on the same device.
    EXPECT_GT(bd4_pages, 3 * fp16_pages);
    EXPECT_LT(bd4_pages, 5 * fp16_pages);
}

// ------------------------------------------------- tiered offload ----

/** tinyEngineConfig plus one ample host tier (preempt offloads, never
 *  drops) and the reference attention backend so attn_hash is live. */
EngineConfig
tieredTinyConfig(int num_pages)
{
    EngineConfig cfg = tinyEngineConfig(num_pages);
    cfg.backend = "reference";
    kv::TierSpec host;
    host.name = "host";
    host.capacity_gb = 1.0;
    cfg.tiered.tiers.push_back(host);
    cfg.tiered.prefetch_pages = 4;
    return cfg;
}

TEST(Engine, TieredPreemptOffloadResumePreservesDigests)
{
    // Preempt -> offload -> demand-fetch -> resume must read back the
    // exact bytes the preempted sequence held: both the token stream
    // (output_hash) and every decode step's attention output (attn_hash)
    // match a run that never came under pressure.
    const auto trace = serving::smokeTrace();
    EngineConfig big = tinyEngineConfig(512);
    big.backend = "reference";
    const ClientRun small = runClient(tieredTinyConfig(28), trace);
    const ClientRun large = runClient(big, trace);
    const ServingMetrics& ms = small.metrics;
    ASSERT_GT(ms.preemptions, 0);
    ASSERT_GT(ms.tier.offloaded_pages, 0); // preemption crossed tiers
    EXPECT_GT(ms.tier.fetched_pages, 0);
    EXPECT_GT(ms.cold_resumes, 0);
    EXPECT_EQ(ms.recompute_resumes, 0); // ample cold tier: nothing lost
    EXPECT_DOUBLE_EQ(ms.tier_hit_rate, 1.0);
    EXPECT_GT(ms.fetch_stall_total_s, 0);
    EXPECT_EQ(ms.outputs_digest, large.metrics.outputs_digest);
    for (const auto& q : trace) {
        EXPECT_EQ(small.result(q.id).output_hash,
                  large.result(q.id).output_hash);
        ASSERT_NE(small.result(q.id).attn_hash, 0u);
        EXPECT_EQ(small.result(q.id).attn_hash, large.result(q.id).attn_hash);
    }
}

TEST(Engine, TieredPreemptOffloadResumeUnderPriorityPolicy)
{
    serving::TraceConfig tc;
    tc.seed = 23;
    tc.num_requests = 16;
    tc.arrival_rate_qps = 60.0;
    tc.prompt_median = 48;
    tc.prompt_min = 16;
    tc.prompt_max = 96;
    tc.output_median = 12;
    tc.output_min = 4;
    tc.output_max = 24;
    tc.num_priority_levels = 3;
    const auto trace = serving::generateTrace(tc);
    EngineConfig small_cfg = tieredTinyConfig(28);
    small_cfg.sched.policy = serving::SchedPolicy::Priority;
    EngineConfig big_cfg = tinyEngineConfig(512);
    big_cfg.backend = "reference";
    big_cfg.sched.policy = serving::SchedPolicy::Priority;
    const ClientRun small = runClient(small_cfg, trace);
    const ClientRun large = runClient(big_cfg, trace);
    ASSERT_GT(small.metrics.preemptions, 0);
    ASSERT_GT(small.metrics.tier.offloaded_pages, 0);
    EXPECT_EQ(small.metrics.outputs_digest, large.metrics.outputs_digest);
    for (const auto& q : trace) {
        EXPECT_EQ(small.result(q.id).output_hash,
                  large.result(q.id).output_hash);
        EXPECT_EQ(small.result(q.id).attn_hash, large.result(q.id).attn_hash);
    }
}

TEST(Engine, IdleSessionsParkOffloadAndWakeDigestIdentical)
{
    // Idle sessions prefill, park, and their pages go cold; wakes fetch
    // them back. The tiered run and an untiered run (which must recompute
    // evicted idle sessions from seeds) agree on every token.
    serving::TraceConfig tc;
    tc.seed = 5;
    tc.num_requests = 8;
    tc.arrival_rate_qps = 50.0;
    tc.prompt_median = 32;
    tc.prompt_min = 16;
    tc.prompt_max = 64;
    tc.output_median = 8;
    tc.output_min = 4;
    tc.output_max = 16;
    tc.num_idle_sessions = 6;
    tc.idle_prompt_tokens = 64; // 8 pages each under page_size 8
    tc.idle_output_tokens = 4;
    tc.idle_wake_s = 2.0;
    tc.idle_wake_stagger_s = 0.1;
    const auto trace = serving::generateTrace(tc);
    ASSERT_EQ(trace.size(), 14u);
    // 6 idle sessions hold 48 pages; the pool fits ~half of that on top
    // of the live traffic, so parked sessions must be evicted.
    EngineConfig plain_cfg = tinyEngineConfig(40);
    plain_cfg.backend = "reference";
    const ClientRun tiered = runClient(tieredTinyConfig(40), trace);
    const ClientRun plain = runClient(plain_cfg, trace);
    const ServingMetrics& mt = tiered.metrics;
    const ServingMetrics& mp = plain.metrics;
    for (const auto& q : trace)
        EXPECT_EQ(tiered.result(q.id).state, RequestState::Finished);
    ASSERT_GT(mt.tier.offloaded_pages, 0);
    EXPECT_GT(mt.cold_resumes, 0);
    // The untiered engine had to recompute what the tiered one fetched.
    EXPECT_GT(mp.recompute_resumes, 0);
    EXPECT_EQ(mp.tier.offloaded_pages, 0);
    EXPECT_EQ(mt.outputs_digest, mp.outputs_digest);
    for (const auto& q : trace) {
        EXPECT_EQ(tiered.result(q.id).output_hash,
                  plain.result(q.id).output_hash);
        EXPECT_EQ(tiered.result(q.id).attn_hash,
                  plain.result(q.id).attn_hash);
    }
    // Tier occupancy reporting is wired through the metrics.
    ASSERT_EQ(mt.tiers.size(), 1u);
    EXPECT_EQ(mt.tiers[0].name, "host");
    EXPECT_GT(mt.tiers[0].peak_used_pages, 0);
    EXPECT_GT(mt.tiers[0].capacity_pages, 0);
    EXPECT_GE(mt.peak_resident_seqs, mp.peak_resident_seqs);
}

TEST(Trace, IdleSessionsExtendWithoutDisturbingTheMainTrace)
{
    serving::TraceConfig base;
    base.seed = 9;
    base.num_requests = 6;
    serving::TraceConfig with_idle = base;
    with_idle.num_idle_sessions = 3;
    with_idle.idle_prompt_tokens = 128;
    with_idle.idle_output_tokens = 4;
    with_idle.idle_wake_s = 10.0;
    const auto plain = serving::generateTrace(base);
    const auto extended = serving::generateTrace(with_idle);
    ASSERT_EQ(extended.size(), plain.size() + 3);
    // The main requests are byte-identical: idle sessions draw no RNG.
    std::vector<const Request*> main_reqs;
    int idle_count = 0;
    for (const auto& r : extended) {
        if (r.idle_after_tokens > 0) {
            idle_count++;
            EXPECT_EQ(r.prompt_tokens, 128);
            EXPECT_EQ(r.idle_after_tokens, 1);
            EXPECT_GE(r.idle_wake_s, 10.0);
        } else {
            main_reqs.push_back(&r);
        }
    }
    ASSERT_EQ(idle_count, 3);
    for (std::size_t i = 0; i < plain.size(); i++) {
        EXPECT_EQ(main_reqs[i]->id, plain[i].id);
        EXPECT_EQ(main_reqs[i]->prompt_tokens, plain[i].prompt_tokens);
        EXPECT_EQ(main_reqs[i]->output_tokens, plain[i].output_tokens);
        EXPECT_DOUBLE_EQ(main_reqs[i]->arrival_s, plain[i].arrival_s);
    }
}

} // namespace
} // namespace bitdec
