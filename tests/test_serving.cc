/**
 * @file
 * Tests for the paged allocator/cache under churn and for the
 * continuous-batching serving engine: admission, preempt-and-recompute,
 * determinism and metrics.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gpusim/arch.h"
#include "kvcache/paged_cache.h"
#include "model/model_config.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/request.h"
#include "serving/scheduler.h"
#include "serving/trace.h"

namespace bitdec {
namespace {

using serving::Engine;
using serving::EngineConfig;
using serving::Request;
using serving::RequestState;
using serving::ServingMetrics;

std::vector<Half>
tokenVec(int d, float value)
{
    return std::vector<Half>(static_cast<std::size_t>(d), Half(value));
}

// ------------------------------------------------- paged cache churn ----

TEST(PagedCacheChurn, PagesRecycleAcrossSequenceGenerations)
{
    kv::PagedHeadCache cache(4, 2, 8); // d=4, 2 tokens/page, 8 pages
    // Three generations of sequences that each consume the whole pool.
    for (int gen = 0; gen < 3; gen++) {
        std::vector<int> seqs;
        for (int i = 0; i < 4; i++)
            seqs.push_back(cache.addSequence());
        for (int i = 0; i < 4; i++)
            for (int t = 0; t < 4; t++)
                ASSERT_TRUE(cache.append(seqs[static_cast<std::size_t>(i)],
                                         tokenVec(4, 1.0f), tokenVec(4, 2.0f)));
        EXPECT_EQ(cache.freePages(), 0);
        for (int s : seqs)
            cache.removeSequence(s);
        EXPECT_EQ(cache.freePages(), 8);
    }
}

TEST(PagedCacheChurn, OomMidSequenceThenRecoversAfterRelease)
{
    kv::PagedHeadCache cache(4, 2, 4);
    const int hog = cache.addSequence();
    for (int t = 0; t < 6; t++)
        ASSERT_TRUE(cache.append(hog, tokenVec(4, 0.5f), tokenVec(4, 0.5f)));
    const int starved = cache.addSequence();
    ASSERT_TRUE(cache.append(starved, tokenVec(4, 1.0f), tokenVec(4, 1.0f)));
    ASSERT_TRUE(cache.append(starved, tokenVec(4, 2.0f), tokenVec(4, 2.0f)));
    // Third token needs a new page; pool is dry mid-sequence.
    EXPECT_FALSE(cache.append(starved, tokenVec(4, 3.0f), tokenVec(4, 3.0f)));
    EXPECT_EQ(cache.length(starved), 2);
    // Freeing the hog unblocks the append and the data is intact.
    cache.removeSequence(hog);
    EXPECT_TRUE(cache.append(starved, tokenVec(4, 3.0f), tokenVec(4, 3.0f)));
    const auto keys = cache.gatherKeys(starved);
    EXPECT_EQ(keys.dim(0), 3u);
    EXPECT_EQ(keys.at(0, 0).toFloat(), 1.0f);
    EXPECT_EQ(keys.at(2, 0).toFloat(), 3.0f);
}

TEST(PagedCacheChurn, DoubleReleaseOfRecycledPagePanics)
{
    kv::PageAllocator alloc(3);
    const auto a = alloc.allocate();
    const auto b = alloc.allocate();
    alloc.release(*a);
    alloc.release(*b);
    EXPECT_DEATH(alloc.release(*b), "double free");
}

TEST(PagedCacheChurn, GatherCrossesPageBoundaries)
{
    kv::PagedHeadCache cache(2, 3, 8); // 3 tokens/page: boundaries at 3, 6
    const int s = cache.addSequence();
    for (int t = 0; t < 8; t++)
        ASSERT_TRUE(cache.append(s, tokenVec(2, static_cast<float>(t)),
                                 tokenVec(2, static_cast<float>(-t))));
    EXPECT_EQ(cache.pageTable(s).size(), 3u);
    const auto keys = cache.gatherKeys(s);
    const auto vals = cache.gatherValues(s);
    for (int t = 0; t < 8; t++) {
        EXPECT_EQ(keys.at(static_cast<std::size_t>(t), 1).toFloat(),
                  static_cast<float>(t));
        EXPECT_EQ(vals.at(static_cast<std::size_t>(t), 0).toFloat(),
                  static_cast<float>(-t));
    }
}

TEST(PagedCacheChurn, EmptySequenceGathersZeroRows)
{
    kv::PagedHeadCache cache(16, 4, 4);
    const int s = cache.addSequence();
    const auto keys = cache.gatherKeys(s);
    const auto vals = cache.gatherValues(s);
    EXPECT_EQ(keys.dim(0), 0u);
    EXPECT_EQ(keys.dim(1), 16u);
    EXPECT_EQ(keys.numel(), 0u);
    EXPECT_EQ(vals.dim(0), 0u);
}

TEST(PagedCache, HeadroomQueries)
{
    kv::PagedHeadCache cache(4, 4, 4); // 16 token capacity
    EXPECT_EQ(cache.pagesFor(0), 0);
    EXPECT_EQ(cache.pagesFor(1), 1);
    EXPECT_EQ(cache.pagesFor(4), 1);
    EXPECT_EQ(cache.pagesFor(5), 2);
    EXPECT_TRUE(cache.hasHeadroom(0, 16));
    EXPECT_FALSE(cache.hasHeadroom(0, 17));
    const int s = cache.addSequence();
    for (int t = 0; t < 3; t++)
        ASSERT_TRUE(cache.append(s, tokenVec(4, 0.f), tokenVec(4, 0.f)));
    // 3 tokens sit in one page with one slot spare: growing by one token
    // needs no new page, so headroom holds even with 3 free pages left.
    EXPECT_TRUE(cache.hasHeadroom(3, 1));
    EXPECT_TRUE(cache.hasHeadroom(3, 13));
    EXPECT_FALSE(cache.hasHeadroom(3, 14));
}

TEST(PagedCache, LiveSequenceIteration)
{
    kv::PagedHeadCache cache(4, 4, 8);
    const int a = cache.addSequence();
    const int b = cache.addSequence();
    const int c = cache.addSequence();
    cache.removeSequence(b);
    EXPECT_EQ(cache.numLive(), 2);
    EXPECT_EQ(cache.liveSequences(), (std::vector<int>{a, c}));
    // Slot reuse keeps ids dense.
    const int d = cache.addSequence();
    EXPECT_EQ(d, b);
    EXPECT_EQ(cache.numLive(), 3);
}

// ------------------------------------------------------------ traces ----

TEST(Trace, SameSeedSameTrace)
{
    serving::TraceConfig cfg;
    cfg.seed = 42;
    cfg.num_requests = 32;
    cfg.arrival_rate_qps = 4.0;
    const auto a = serving::generateTrace(cfg);
    const auto b = serving::generateTrace(cfg);
    ASSERT_EQ(a.size(), 32u);
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
    }
    cfg.seed = 43;
    const auto c = serving::generateTrace(cfg);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); i++)
        differs |= a[i].prompt_tokens != c[i].prompt_tokens ||
                   a[i].arrival_s != c[i].arrival_s;
    EXPECT_TRUE(differs);
}

TEST(Trace, ArrivalsSortedAndLengthsClamped)
{
    serving::TraceConfig cfg;
    cfg.num_requests = 200;
    cfg.arrival_rate_qps = 10.0;
    cfg.prompt_min = 64;
    cfg.prompt_max = 256;
    const auto t = serving::generateTrace(cfg);
    for (std::size_t i = 1; i < t.size(); i++)
        EXPECT_GE(t[i].arrival_s, t[i - 1].arrival_s);
    for (const auto& r : t) {
        EXPECT_GE(r.prompt_tokens, 64);
        EXPECT_LE(r.prompt_tokens, 256);
        EXPECT_GE(r.output_tokens, cfg.output_min);
    }
}

TEST(Trace, SmokeTraceIsFixed)
{
    const auto a = serving::smokeTrace();
    const auto b = serving::smokeTrace();
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
    }
}

// --------------------------------------------------------- scheduler ----

TEST(Scheduler, FcfsAdmissionRespectsBatchAndHeadroom)
{
    kv::PagedHeadCache cache(4, 4, 8); // 32 tokens
    serving::SchedulerConfig cfg;
    cfg.max_batch = 2;
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(3);
    for (int i = 0; i < 3; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 8;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    sched.admit(cache);
    // max_batch caps admission at two despite page headroom for a third.
    ASSERT_EQ(sched.running().size(), 2u);
    EXPECT_EQ(sched.running()[0]->id, 0);
    EXPECT_EQ(sched.running()[1]->id, 1);
    EXPECT_EQ(reqs[0].state, RequestState::Prefill);
    EXPECT_EQ(reqs[2].state, RequestState::Queued);
    EXPECT_EQ(sched.waitingCount(), 1);
}

TEST(Scheduler, PreemptionTakesNewestAndResumesFirst)
{
    kv::PagedHeadCache cache(4, 4, 16);
    serving::SchedulerConfig cfg;
    cfg.max_batch = 4;
    serving::Scheduler sched(cfg);

    std::vector<Request> reqs(3);
    for (int i = 0; i < 3; i++) {
        reqs[static_cast<std::size_t>(i)].id = i;
        reqs[static_cast<std::size_t>(i)].prompt_tokens = 4;
        reqs[static_cast<std::size_t>(i)].output_tokens = 4;
        sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
    }
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 3u);

    Request* victim = sched.preemptVictim();
    ASSERT_EQ(victim, &reqs[2]); // newest admitted
    sched.preempt(victim, cache);
    EXPECT_EQ(reqs[2].state, RequestState::Preempted);
    EXPECT_EQ(reqs[2].seq, -1);
    EXPECT_EQ(reqs[2].preemptions, 1);
    EXPECT_EQ(sched.preemptionCount(), 1);

    // The victim re-admits ahead of any later arrival.
    Request late;
    late.id = 99;
    late.prompt_tokens = 4;
    late.output_tokens = 2;
    sched.enqueue(&late);
    sched.admit(cache);
    ASSERT_EQ(sched.running().size(), 4u);
    EXPECT_EQ(sched.running()[2]->id, 2);
    EXPECT_EQ(sched.running()[3]->id, 99);
}

// ------------------------------------------------------------ engine ----

EngineConfig
tinyEngineConfig(int num_pages)
{
    EngineConfig cfg;
    cfg.system = model::SystemKind::BitDecoding;
    cfg.bits = 4;
    cfg.page_size = 8;
    cfg.num_pages = num_pages;
    cfg.cache_head_dim = 4;
    cfg.sched.max_batch = 8;
    cfg.sched.prefill_chunk = 16;
    return cfg;
}

TEST(Engine, SmokeTraceCompletesEveryRequest)
{
    auto trace = serving::smokeTrace();
    Engine engine(sim::archA100(), model::llama2_7b(), tinyEngineConfig(512));
    const ServingMetrics m = engine.run(trace);
    EXPECT_EQ(m.num_requests, 8);
    EXPECT_EQ(m.preemptions, 0); // ample pool: no pressure
    for (const auto& r : trace) {
        EXPECT_EQ(r.state, RequestState::Finished);
        EXPECT_EQ(r.generated, r.output_tokens);
        EXPECT_GE(r.first_token_s, r.arrival_s);
        EXPECT_GE(r.finish_s, r.first_token_s);
    }
    EXPECT_GT(m.sustained_tokens_per_s, 0);
    EXPECT_GT(m.ttft_p99_s, 0);
    EXPECT_GE(m.latency_p99_s, m.latency_p50_s);
}

TEST(Engine, SurvivesPageExhaustionWithZeroDrops)
{
    // 28 pages x 8 tokens = 224 tokens; the smoke trace needs 596 token
    // slots across overlapping requests, so the pool is exhausted
    // repeatedly and the scheduler must preempt to make progress.
    auto trace = serving::smokeTrace();
    Engine engine(sim::archA100(), model::llama2_7b(), tinyEngineConfig(28));
    const ServingMetrics m = engine.run(trace);
    EXPECT_EQ(m.num_requests, 8); // zero dropped requests
    EXPECT_GT(m.preemptions, 0);
    for (const auto& r : trace)
        EXPECT_EQ(r.state, RequestState::Finished);
    EXPECT_GT(m.peak_page_utilization, 0.9);
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto trace_a = serving::smokeTrace();
    auto trace_b = serving::smokeTrace();
    Engine ea(sim::archA100(), model::llama2_7b(), tinyEngineConfig(28));
    Engine eb(sim::archA100(), model::llama2_7b(), tinyEngineConfig(28));
    const ServingMetrics ma = ea.run(trace_a);
    const ServingMetrics mb = eb.run(trace_b);
    EXPECT_EQ(ma.outputs_digest, mb.outputs_digest);
    EXPECT_EQ(ma.preemptions, mb.preemptions);
    EXPECT_DOUBLE_EQ(ma.makespan_s, mb.makespan_s);
    EXPECT_DOUBLE_EQ(ma.ttft_p99_s, mb.ttft_p99_s);
    for (std::size_t i = 0; i < trace_a.size(); i++) {
        EXPECT_EQ(trace_a[i].output_hash, trace_b[i].output_hash);
        EXPECT_EQ(trace_a[i].preemptions, trace_b[i].preemptions);
    }
}

TEST(Engine, PreemptionPreservesOutputs)
{
    // The same trace through a pressured pool (preempting) and a large
    // pool (never preempting) must produce identical token streams:
    // recompute restored the exact cache content every decode step read.
    auto pressured = serving::smokeTrace();
    auto relaxed = serving::smokeTrace();
    Engine small(sim::archA100(), model::llama2_7b(), tinyEngineConfig(28));
    Engine large(sim::archA100(), model::llama2_7b(), tinyEngineConfig(512));
    const ServingMetrics ms = small.run(pressured);
    const ServingMetrics ml = large.run(relaxed);
    ASSERT_GT(ms.preemptions, 0);
    ASSERT_EQ(ml.preemptions, 0);
    EXPECT_EQ(ms.outputs_digest, ml.outputs_digest);
    for (std::size_t i = 0; i < pressured.size(); i++)
        EXPECT_EQ(pressured[i].output_hash, relaxed[i].output_hash);
}

TEST(Engine, GeneratedTraceUnderPressure)
{
    serving::TraceConfig tc;
    tc.seed = 7;
    tc.num_requests = 24;
    tc.arrival_rate_qps = 50.0;
    tc.prompt_median = 48;
    tc.prompt_min = 16;
    tc.prompt_max = 128;
    tc.output_median = 16;
    tc.output_min = 4;
    tc.output_max = 32;
    auto trace = serving::generateTrace(tc);
    Engine engine(sim::archA100(), model::llama2_7b(), tinyEngineConfig(32));
    const ServingMetrics m = engine.run(trace);
    EXPECT_EQ(m.num_requests, 24);
    for (const auto& r : trace)
        EXPECT_EQ(r.generated, r.output_tokens);
}

TEST(Engine, DerivedPoolScalesWithBitWidth)
{
    EngineConfig fp16;
    fp16.system = model::SystemKind::FlashDecodingFp16;
    EngineConfig bd4;
    bd4.system = model::SystemKind::BitDecoding;
    bd4.bits = 4;
    const auto& arch = sim::archA100();
    const auto& m = model::llama31_8b();
    const int fp16_pages = Engine::derivePoolPages(arch, m, fp16);
    const int bd4_pages = Engine::derivePoolPages(arch, m, bd4);
    EXPECT_GT(fp16_pages, 0);
    // The 4-bit cache holds ~4x the pages of FP16 on the same device.
    EXPECT_GT(bd4_pages, 3 * fp16_pages);
    EXPECT_LT(bd4_pages, 5 * fp16_pages);
}

} // namespace
} // namespace bitdec
