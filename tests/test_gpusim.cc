/**
 * @file
 * Unit + property tests for the GPU simulator substrate: PTX bit ops,
 * fragment layouts, warp primitives, shared-memory banks and the timing
 * model.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"
#include "gpusim/arch.h"
#include "gpusim/bitops.h"
#include "gpusim/fragment.h"
#include "gpusim/shared_memory.h"
#include "gpusim/timing.h"
#include "gpusim/warp.h"

namespace bitdec::sim {
namespace {

// -------------------------------------------------------------- bitops ----

TEST(Lop3, ImplementsArbitraryTruthTables)
{
    Rng rng(3);
    for (int trial = 0; trial < 50; trial++) {
        const auto a = static_cast<std::uint32_t>(rng.next());
        const auto b = static_cast<std::uint32_t>(rng.next());
        const auto c = static_cast<std::uint32_t>(rng.next());
        EXPECT_EQ(lop3(a, b, c, kLop3A & kLop3B & kLop3C), a & b & c);
        EXPECT_EQ(lop3(a, b, c, kLop3A | kLop3B | kLop3C), a | b | c);
        EXPECT_EQ(lop3(a, b, c, kLop3A ^ kLop3B ^ kLop3C), a ^ b ^ c);
        EXPECT_EQ(lop3(a, b, c, kLutAndOr), (a & b) | c);
    }
}

TEST(Lop3, ConstantTables)
{
    EXPECT_EQ(lop3(0xDEADBEEF, 0x12345678, 0x0F0F0F0F, 0x00), 0u);
    EXPECT_EQ(lop3(0xDEADBEEF, 0x12345678, 0x0F0F0F0F, 0xFF), 0xFFFFFFFFu);
}

TEST(Prmt, SelectsBytes)
{
    const std::uint32_t a = 0x33221100; // bytes 0..3
    const std::uint32_t b = 0x77665544; // bytes 4..7
    EXPECT_EQ(prmt(a, b, 0x3210), a);
    EXPECT_EQ(prmt(a, b, 0x7654), b);
    EXPECT_EQ(prmt(a, b, 0x0246), 0x00224466u); // descending picks
}

TEST(Prmt, SignReplication)
{
    const std::uint32_t a = 0x00008000; // byte 1 has the sign bit set
    // Selector nibble i picks output byte i; 0x8 | k sign-extends byte k.
    EXPECT_EQ(prmt(a, 0, 0x0009) & 0x000000FFu, 0x000000FFu);
    EXPECT_EQ(prmt(a, 0, 0x0008) & 0x000000FFu, 0x00000000u);
}

TEST(FunnelShift, CombinesWords)
{
    EXPECT_EQ(funnelShiftR(0xFFFF0000u, 0x12345678u, 16), 0x5678FFFFu);
    EXPECT_EQ(funnelShiftR(0xAAAAAAAAu, 0xBBBBBBBBu, 0), 0xAAAAAAAAu);
    EXPECT_EQ(funnelShiftR(0xAAAAAAAAu, 0xBBBBBBBBu, 32), 0xBBBBBBBBu);
}

// ----------------------------------------------------------- fragments ----

struct LayoutCase
{
    MmaShape shape;
    Operand op;
};

class FragmentLayoutP : public ::testing::TestWithParam<LayoutCase>
{
};

TEST_P(FragmentLayoutP, CoversEveryCoordinateExactlyOnce)
{
    const FragmentLayout lay(GetParam().shape, GetParam().op);
    std::map<std::pair<int, int>, int> hits;
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int e = 0; e < lay.eltsPerLane(); e++) {
            const Coord c = lay.coordOf(lane, e);
            EXPECT_GE(c.row, 0);
            EXPECT_LT(c.row, lay.rows());
            EXPECT_GE(c.col, 0);
            EXPECT_LT(c.col, lay.cols());
            hits[{c.row, c.col}]++;
        }
    }
    EXPECT_EQ(hits.size(),
              static_cast<std::size_t>(lay.rows() * lay.cols()));
    for (const auto& [coord, n] : hits)
        EXPECT_EQ(n, 1);
}

TEST_P(FragmentLayoutP, LaneOfInvertsCoordOf)
{
    const FragmentLayout lay(GetParam().shape, GetParam().op);
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int e = 0; e < lay.eltsPerLane(); e++) {
            const Coord c = lay.coordOf(lane, e);
            const auto [l2, e2] = lay.laneOf(c.row, c.col);
            EXPECT_EQ(l2, lane);
            EXPECT_EQ(e2, e);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, FragmentLayoutP,
    ::testing::Values(LayoutCase{MmaShape::M16N8K16, Operand::A},
                      LayoutCase{MmaShape::M16N8K16, Operand::B},
                      LayoutCase{MmaShape::M16N8K16, Operand::C},
                      LayoutCase{MmaShape::M16N8K8, Operand::A},
                      LayoutCase{MmaShape::M16N8K8, Operand::B},
                      LayoutCase{MmaShape::M16N8K8, Operand::C}));

TEST(FragmentLayout, PtxDocumentedSpotChecksM16N8K16B)
{
    // PTX ISA: B fragment of m16n8k16, thread i holds rows
    // {2*(i%4), 2*(i%4)+1, 2*(i%4)+8, 2*(i%4)+9} of column i/4.
    const FragmentLayout lb(MmaShape::M16N8K16, Operand::B);
    EXPECT_EQ(lb.coordOf(0, 0), (Coord{0, 0}));
    EXPECT_EQ(lb.coordOf(0, 1), (Coord{1, 0}));
    EXPECT_EQ(lb.coordOf(0, 2), (Coord{8, 0}));
    EXPECT_EQ(lb.coordOf(0, 3), (Coord{9, 0}));
    EXPECT_EQ(lb.coordOf(5, 0), (Coord{2, 1}));  // lane 5: t=1, g=1
    EXPECT_EQ(lb.coordOf(31, 3), (Coord{15, 7})); // last lane, last elt
}

TEST(FragmentLayout, PtxDocumentedSpotChecksM16N8K16AC)
{
    const FragmentLayout la(MmaShape::M16N8K16, Operand::A);
    EXPECT_EQ(la.coordOf(0, 0), (Coord{0, 0}));
    EXPECT_EQ(la.coordOf(0, 1), (Coord{0, 1}));
    EXPECT_EQ(la.coordOf(0, 2), (Coord{8, 0}));
    EXPECT_EQ(la.coordOf(0, 4), (Coord{0, 8}));
    EXPECT_EQ(la.coordOf(0, 7), (Coord{8, 9}));
    const FragmentLayout lc(MmaShape::M16N8K16, Operand::C);
    EXPECT_EQ(lc.coordOf(0, 0), (Coord{0, 0}));
    EXPECT_EQ(lc.coordOf(0, 2), (Coord{8, 0}));
    EXPECT_EQ(lc.coordOf(7, 1), (Coord{1, 7})); // lane 7: group 1, t 3
}

TEST(Ldmatrix, MatchesAccumulator8x8SubTile)
{
    // ldmatrix's 8x8 mapping is the C fragment's first 8 rows: lane i
    // holds (i/4, 2*(i%4) + e).
    Tensor<Half> src({8, 8});
    for (std::size_t r = 0; r < 8; r++)
        for (std::size_t c = 0; c < 8; c++)
            src.at(r, c) = Half(static_cast<float>(r * 8 + c));
    std::array<std::array<Half, 2>, kWarpSize> vals;
    ldmatrix8x8(src, 0, 0, false, vals);
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int e = 0; e < 2; e++) {
            const float want =
                static_cast<float>((lane / 4) * 8 + (lane % 4) * 2 + e);
            EXPECT_EQ(vals[lane][e].toFloat(), want);
        }
    }
}

TEST(Ldmatrix, TransposeSwapsCoordinates)
{
    Tensor<Half> src({8, 8});
    for (std::size_t r = 0; r < 8; r++)
        for (std::size_t c = 0; c < 8; c++)
            src.at(r, c) = Half(static_cast<float>(r * 8 + c));
    std::array<std::array<Half, 2>, kWarpSize> vals;
    ldmatrix8x8(src, 0, 0, true, vals);
    // Lane 1 element 0 maps to (row 0, col 2) transposed -> src(2, 0).
    EXPECT_EQ(vals[1][0].toFloat(), 16.0f);
}

TEST(MmaSync, MatchesDirectMatrixProduct)
{
    Rng rng(11);
    Tensor<Half> a({16, 16}), b({16, 8});
    for (std::size_t i = 0; i < a.numel(); i++)
        a[i] = Half(rng.uniformRange(-2.f, 2.f));
    for (std::size_t i = 0; i < b.numel(); i++)
        b[i] = Half(rng.uniformRange(-2.f, 2.f));

    const FragmentLayout la(MmaShape::M16N8K16, Operand::A);
    const FragmentLayout lb(MmaShape::M16N8K16, Operand::B);
    const FragmentLayout lc(MmaShape::M16N8K16, Operand::C);
    const auto fa = loadFragment(la, a, 0, 0);
    const auto fb = loadFragment(lb, b, 0, 0);
    auto fc = makeFragment<float>();
    const auto fd = mmaSync(MmaShape::M16N8K16, fa, fb, fc);

    Tensor<float> d({16, 8});
    storeAccumFragment(lc, fd, d, 0, 0);
    for (std::size_t r = 0; r < 16; r++) {
        for (std::size_t c = 0; c < 8; c++) {
            float want = 0;
            for (std::size_t k = 0; k < 16; k++)
                want += a.at(r, k).toFloat() * b.at(k, c).toFloat();
            EXPECT_NEAR(d.at(r, c), want, 1e-3f);
        }
    }
}

TEST(MmaSync, MisalignedRegistersProduceWrongResults)
{
    // The Fig. 3b failure: registers filled in linear (wrong) order make
    // the MMA compute the product of a permuted operand.
    Rng rng(12);
    Tensor<Half> a({16, 16}), b({16, 8});
    for (std::size_t i = 0; i < a.numel(); i++)
        a[i] = Half(rng.uniformRange(-2.f, 2.f));
    for (std::size_t i = 0; i < b.numel(); i++)
        b[i] = Half(rng.uniformRange(-2.f, 2.f));

    const FragmentLayout la(MmaShape::M16N8K16, Operand::A);
    const FragmentLayout lb(MmaShape::M16N8K16, Operand::B);
    const auto fa = loadFragment(la, a, 0, 0);

    // Wrong: assign B values linearly by lane (as a naive unpack would).
    auto fb_bad = makeFragment<Half>();
    int idx = 0;
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int e = 0; e < lb.eltsPerLane(); e++) {
            fb_bad[lane][e] = b[static_cast<std::size_t>(idx++)];
        }
    }
    const auto fd_bad =
        mmaSync(MmaShape::M16N8K16, fa, fb_bad, makeFragment<float>());
    const auto fd_good = mmaSync(MmaShape::M16N8K16, fa,
                                 loadFragment(lb, b, 0, 0),
                                 makeFragment<float>());
    float max_diff = 0;
    for (int lane = 0; lane < kWarpSize; lane++)
        for (int e = 0; e < 4; e++)
            max_diff = std::max(
                max_diff, std::fabs(fd_bad[lane][e] - fd_good[lane][e]));
    EXPECT_GT(max_diff, 0.1f); // materially wrong, not a rounding blip
}

// ----------------------------------------------------------------- warp ----

TEST(Warp, ShflXorExchanges)
{
    WarpVar<float> v{};
    for (int lane = 0; lane < kWarpSize; lane++)
        v[lane] = static_cast<float>(lane);
    const auto out = shflXor(v, 1);
    for (int lane = 0; lane < kWarpSize; lane++)
        EXPECT_EQ(out[lane], static_cast<float>(lane ^ 1));
}

TEST(Warp, ButterflyReduceMaxOverGroups)
{
    WarpVar<float> v{};
    for (int lane = 0; lane < kWarpSize; lane++)
        v[lane] = static_cast<float>((lane * 7) % 31);
    const auto out =
        butterflyReduce(v, 8, [](float a, float b) { return std::max(a, b); });
    for (int group = 0; group < 4; group++) {
        float want = 0;
        for (int i = 0; i < 8; i++)
            want = std::max(want, v[group * 8 + i]);
        for (int i = 0; i < 8; i++)
            EXPECT_EQ(out[group * 8 + i], want);
    }
}

TEST(Warp, BallotBitsMatchPredicates)
{
    WarpVar<bool> p{};
    for (int lane = 0; lane < kWarpSize; lane++)
        p[lane] = lane % 3 == 0;
    const std::uint32_t mask = ballot(p);
    for (int lane = 0; lane < kWarpSize; lane++)
        EXPECT_EQ((mask >> lane) & 1u, lane % 3 == 0 ? 1u : 0u);
}

// -------------------------------------------------------- shared memory ----

TEST(SharedMemory, ConflictFreeWhenDistinctBanks)
{
    std::vector<std::uint32_t> addrs;
    for (int lane = 0; lane < 32; lane++)
        addrs.push_back(static_cast<std::uint32_t>(lane * 4));
    EXPECT_EQ(smemConflictPhases(addrs), 1);
}

TEST(SharedMemory, BroadcastIsFree)
{
    std::vector<std::uint32_t> addrs(32, 64u);
    EXPECT_EQ(smemConflictPhases(addrs), 1);
}

TEST(SharedMemory, StridedAccessConflicts)
{
    // Stride of 128 bytes: every lane hits bank 0 with distinct words.
    std::vector<std::uint32_t> addrs;
    for (int lane = 0; lane < 32; lane++)
        addrs.push_back(static_cast<std::uint32_t>(lane * 128));
    EXPECT_EQ(smemConflictPhases(addrs), 32);
}

TEST(SharedMemory, XorSwizzleRemovesLdmatrixConflicts)
{
    // The canonical 128-byte tile row (64 halves): without swizzling all
    // rows of a chunk column land in the same bank.
    const int conflicted = ldmatrixConflictPhases(128, false);
    const int swizzled = ldmatrixConflictPhases(128, true);
    EXPECT_GE(conflicted, 4);
    EXPECT_EQ(swizzled, 1);
}

TEST(SharedMemory, SwizzleIsAPermutationPerRow)
{
    for (int row = 0; row < 8; row++) {
        std::set<int> cols;
        for (int col = 0; col < 8; col++)
            cols.insert(xorSwizzleCol(row, col, 8));
        EXPECT_EQ(cols.size(), 8u);
    }
}

// ----------------------------------------------------------------- arch ----

TEST(Arch, PresetsAreConsistent)
{
    for (const auto* a : {&archA100(), &archRTX4090(), &archH100(),
                          &archRTX5090(), &archRTXPro6000()}) {
        EXPECT_GT(a->num_sms, 0);
        EXPECT_GT(a->dram_gbs, 0);
        EXPECT_GT(a->tc_fp16_tflops, a->cuda_fp32_tflops);
        EXPECT_GT(a->dramBytesPerSec(), 0);
        EXPECT_GT(a->tcFlops(16), a->cudaOps());
    }
}

TEST(Arch, GenerationFeatures)
{
    EXPECT_FALSE(archA100().has_wgmma);
    EXPECT_TRUE(archH100().has_wgmma);
    EXPECT_TRUE(archH100().has_tma);
    EXPECT_TRUE(archRTX5090().has_mxfp4_mma);
    EXPECT_FALSE(archRTX4090().has_mxfp4_mma);
    EXPECT_GT(archRTX5090().tcFlops(4), archRTX5090().tcFlops(16));
}

TEST(Arch, LookupByName)
{
    EXPECT_EQ(archByName("H100").name, "H100");
    EXPECT_DEATH(archByName("TPU"), "unknown GPU architecture");
}

// --------------------------------------------------------------- timing ----

TEST(Timing, DramTimeScalesLinearly)
{
    KernelWorkload w;
    w.dram_read_bytes = 1e9;
    w.ctas = 1024;
    const auto t1 = resolveKernel(archA100(), w);
    w.dram_read_bytes = 2e9;
    const auto t2 = resolveKernel(archA100(), w);
    EXPECT_NEAR(t2.t_dram_s / t1.t_dram_s, 2.0, 1e-9);
    EXPECT_GT(t2.total_s, t1.total_s);
}

TEST(Timing, OccupancyPenalizesSmallLaunches)
{
    KernelWorkload w;
    w.tc_flops_fp16 = 1e12;
    w.warps_per_cta = 4;
    w.ctas = archA100().num_sms;
    const auto full = resolveKernel(archA100(), w);
    w.ctas = archA100().num_sms / 4;
    const auto quarter = resolveKernel(archA100(), w);
    EXPECT_GT(quarter.total_s, full.total_s * 3.0);
}

TEST(Timing, WarpOverlapEfficiency)
{
    EXPECT_EQ(warpOverlapEfficiency(1), 0.0);
    EXPECT_NEAR(warpOverlapEfficiency(4), 0.75, 1e-12);
    EXPECT_GT(warpOverlapEfficiency(8), warpOverlapEfficiency(4));
    EXPECT_LT(warpOverlapEfficiency(32), 1.0);
}

TEST(Timing, WideWarpsHideCudaWork)
{
    KernelWorkload w;
    w.dram_read_bytes = 4e8;
    w.cuda.alu = 5e9;
    w.ctas = 1024;
    w.wn = 1;
    w.warps_per_cta = 4;
    const auto serial = resolveKernel(archA100(), w);
    w.wn = 4;
    const auto parallel = resolveKernel(archA100(), w);
    EXPECT_LT(parallel.total_s, serial.total_s);
    EXPECT_GT(parallel.tc_utilization, serial.tc_utilization - 1e-12);
}

TEST(Timing, SerializedPipesPayTheSum)
{
    KernelWorkload w;
    w.dram_read_bytes = 2e9;
    w.tc_flops_fp16 = 2.5e11; // ~balanced against the DRAM time
    w.ctas = 1024;
    const auto overlapped = resolveKernel(archA100(), w);
    w.serialize_pipes = true;
    const auto serial = resolveKernel(archA100(), w);
    EXPECT_GT(serial.total_s, overlapped.total_s * 1.3);
}

TEST(Timing, SequenceAddsLaunchOverheads)
{
    KernelWorkload w;
    w.dram_read_bytes = 1e6;
    w.ctas = 1024;
    const auto one = resolveSequence(archA100(), {w});
    const auto five = resolveSequence(archA100(), {w, w, w, w, w});
    EXPECT_NEAR(five.launch_overhead_s, 5 * one.launch_overhead_s, 1e-12);
    EXPECT_GT(five.total_s, 5 * (one.total_s - one.launch_overhead_s));
}

TEST(Timing, UtilizationFractionsBounded)
{
    KernelWorkload w;
    w.dram_read_bytes = 1e9;
    w.tc_flops_fp16 = 1e12;
    w.cuda.fma = 1e9;
    w.cuda.sfu = 1e8;
    w.ctas = 256;
    const auto t = resolveKernel(archH100(), w);
    EXPECT_GE(t.tc_utilization, 0.0);
    EXPECT_LE(t.tc_utilization, 1.0);
    EXPECT_GE(t.mem_bw_utilization, 0.0);
    EXPECT_LE(t.mem_bw_utilization, 1.0 + 1e-9);
    EXPECT_GE(t.mem_stall_frac, 0.0);
}

} // namespace
} // namespace bitdec::sim
