/**
 * @file
 * Tests for the network front end: wire-protocol round trips and
 * malformed-frame rejection, the incremental stream API's byte-equality
 * with batch drains (engine and cluster), and loopback integration —
 * concurrent clients whose streamed digests match an in-process run,
 * slow-reader backpressure with bounded server buffering, mid-stream
 * CANCEL, typed error frames, busy shedding at the admission cap and
 * graceful drain under load.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"

#include "gpusim/arch.h"
#include "model/model_config.h"
#include "serving/client.h"
#include "serving/engine.h"
#include "serving/request.h"

namespace bitdec {
namespace {

using serving::EngineConfig;
using serving::Request;
using serving::RequestState;
using serving::ServingMetrics;
using serving::TokenEvent;

/** Tiny engine with the reference backend so both output_hash and
 *  attn_hash are live in every digest comparison. */
EngineConfig
netTinyConfig(int num_pages = 64)
{
    EngineConfig cfg;
    cfg.system = model::SystemKind::BitDecoding;
    cfg.bits = 4;
    cfg.page_size = 8;
    cfg.num_pages = num_pages;
    cfg.cache_head_dim = 4;
    cfg.sched.max_batch = 8;
    cfg.sched.prefill_chunk_tokens = 16;
    cfg.backend = "reference";
    return cfg;
}

/** Workload request; ids start at 1 (0 is the wire sentinel). */
Request
workload(int id, int prompt, int output, std::uint64_t prefix = 0,
         int prefix_tokens = 0)
{
    Request r;
    r.id = id;
    r.arrival_s = 0.01 * id;
    r.prompt_tokens = prompt;
    r.output_tokens = output;
    r.prefix_id = prefix;
    r.prefix_tokens = prefix_tokens;
    return r;
}

net::SubmitMsg
toSubmit(const Request& r)
{
    net::SubmitMsg m;
    m.id = r.id;
    m.arrival_s = r.arrival_s;
    m.prompt_tokens = r.prompt_tokens;
    m.output_tokens = r.output_tokens;
    m.prefix_id = r.prefix_id;
    m.prefix_tokens = r.prefix_tokens;
    m.priority = r.priority;
    m.idle_after_tokens = r.idle_after_tokens;
    m.idle_wake_s = r.idle_wake_s;
    m.deadline_s = r.deadline_s;
    return m;
}

// ---------------------------------------------------------- protocol ----

/** Strips the 5-byte frame header (u32 length + u8 type). */
std::string
payloadOf(const std::string& frame)
{
    EXPECT_GE(frame.size(), 5u);
    return frame.substr(5);
}

TEST(NetProtocol, SubmitRoundTripsEveryField)
{
    net::SubmitMsg m;
    m.id = 42;
    m.arrival_s = 1.25;
    m.prompt_tokens = 100;
    m.output_tokens = 16;
    m.prefix_id = 0xDEADBEEFCAFEull;
    m.prefix_tokens = 32;
    m.priority = -3;
    m.idle_after_tokens = 5;
    m.idle_wake_s = 2.5;
    m.deadline_s = 9.75;
    m.backend = "fused-paged";

    net::SubmitMsg out;
    ASSERT_TRUE(net::decodeSubmit(payloadOf(net::encodeSubmit(m)), out));
    EXPECT_EQ(out.id, 42);
    EXPECT_DOUBLE_EQ(out.arrival_s, 1.25);
    EXPECT_EQ(out.prompt_tokens, 100);
    EXPECT_EQ(out.output_tokens, 16);
    EXPECT_EQ(out.prefix_id, 0xDEADBEEFCAFEull);
    EXPECT_EQ(out.prefix_tokens, 32);
    EXPECT_EQ(out.priority, -3);
    EXPECT_EQ(out.idle_after_tokens, 5);
    EXPECT_DOUBLE_EQ(out.idle_wake_s, 2.5);
    EXPECT_DOUBLE_EQ(out.deadline_s, 9.75);
    EXPECT_EQ(out.backend, "fused-paged");
}

TEST(NetProtocol, ServerFramesRoundTrip)
{
    net::HelloMsg h;
    h.backend = "reference";
    h.page_size = 8;
    h.cache_head_dim = 4;
    h.shards = 4;
    net::HelloMsg h2;
    ASSERT_TRUE(net::decodeHello(payloadOf(net::encodeHello(h)), h2));
    EXPECT_EQ(h2.version, net::kProtocolVersion);
    EXPECT_EQ(h2.backend, "reference");
    EXPECT_EQ(h2.page_size, 8);
    EXPECT_EQ(h2.cache_head_dim, 4);
    EXPECT_EQ(h2.shards, 4);

    net::TokenMsg t;
    t.request_id = 7;
    t.index = 3;
    t.fold = 0x1234567890ABCDEFull;
    t.output_hash = 0xFEDCBA0987654321ull;
    t.clock_s = 0.625;
    net::TokenMsg t2;
    ASSERT_TRUE(net::decodeToken(payloadOf(net::encodeToken(t)), t2));
    EXPECT_EQ(t2.request_id, 7);
    EXPECT_EQ(t2.index, 3);
    EXPECT_EQ(t2.fold, 0x1234567890ABCDEFull);
    EXPECT_EQ(t2.output_hash, 0xFEDCBA0987654321ull);
    EXPECT_DOUBLE_EQ(t2.clock_s, 0.625);

    net::DoneMsg d;
    d.request_id = 9;
    d.finished = 1;
    d.cancel_cause = 0;
    d.generated = 12;
    d.output_hash = 0xAAull;
    d.attn_hash = 0xBBull;
    d.first_token_s = 0.5;
    d.finish_s = 1.5;
    net::DoneMsg d2;
    ASSERT_TRUE(net::decodeDone(payloadOf(net::encodeDone(d)), d2));
    EXPECT_EQ(d2.request_id, 9);
    EXPECT_EQ(d2.finished, 1);
    EXPECT_EQ(d2.generated, 12);
    EXPECT_EQ(d2.output_hash, 0xAAull);
    EXPECT_EQ(d2.attn_hash, 0xBBull);

    net::ErrorMsg e;
    e.request_id = 5;
    e.code = net::ErrorCode::OverCapacity;
    e.message = "can never fit";
    net::ErrorMsg e2;
    ASSERT_TRUE(net::decodeError(payloadOf(net::encodeError(e)), e2));
    EXPECT_EQ(e2.request_id, 5);
    EXPECT_EQ(e2.code, net::ErrorCode::OverCapacity);
    EXPECT_EQ(e2.message, "can never fit");

    std::int32_t id = 0;
    ASSERT_TRUE(
        net::decodeSubmitOk(payloadOf(net::encodeSubmitOk(31)), id));
    EXPECT_EQ(id, 31);
    ASSERT_TRUE(net::decodeCancel(payloadOf(net::encodeCancel(17)), id));
    EXPECT_EQ(id, 17);
}

TEST(NetProtocol, DecodersRejectTruncatedAndTrailingBytes)
{
    net::SubmitMsg m;
    m.id = 1;
    m.prompt_tokens = 8;
    m.output_tokens = 4;
    m.backend = "reference";
    const std::string good = payloadOf(net::encodeSubmit(m));

    net::SubmitMsg out;
    ASSERT_TRUE(net::decodeSubmit(good, out));
    // Every truncation point must be rejected, not mis-parsed.
    for (std::size_t cut = 0; cut < good.size(); cut++)
        EXPECT_FALSE(net::decodeSubmit(good.substr(0, cut), out))
            << "truncated at " << cut;
    // Trailing garbage is rejected too (complete() catches it).
    EXPECT_FALSE(net::decodeSubmit(good + "x", out));

    // A string length that lies about the remaining bytes fails safely.
    net::WireWriter w;
    w.i32(1);
    w.u32(0xFFFFFF); // claims a 16 MiB string with no bytes behind it
    net::ErrorMsg e;
    EXPECT_FALSE(net::decodeError(w.bytes(), e));
}

TEST(NetProtocol, AssemblerReassemblesSplitFramesAndRejectsOversized)
{
    const std::string frame =
        net::encodeFrame(net::FrameType::Stats, "");
    const std::string frame2 = net::encodeSubmitOk(3);

    // Byte-by-byte delivery: nothing pops until the last byte lands.
    net::FrameAssembler as;
    net::FrameType type;
    std::string payload;
    const std::string both = frame + frame2;
    for (std::size_t i = 0; i + 1 < frame.size(); i++) {
        as.feed(both.data() + i, 1);
        EXPECT_FALSE(as.next(type, payload));
    }
    as.feed(both.data() + frame.size() - 1, both.size() - frame.size() + 1);
    ASSERT_TRUE(as.next(type, payload));
    EXPECT_EQ(type, net::FrameType::Stats);
    EXPECT_TRUE(payload.empty());
    ASSERT_TRUE(as.next(type, payload));
    EXPECT_EQ(type, net::FrameType::SubmitOk);
    EXPECT_FALSE(as.next(type, payload));
    EXPECT_FALSE(as.bad());

    // A length prefix over the cap poisons the stream permanently: the
    // peer must drop the connection, not allocate.
    net::FrameAssembler poisoned;
    net::WireWriter w;
    w.u32(net::kMaxFrameBytes + 1);
    w.u8(static_cast<std::uint8_t>(net::FrameType::Submit));
    poisoned.feed(w.bytes().data(), w.bytes().size());
    EXPECT_FALSE(poisoned.next(type, payload));
    EXPECT_TRUE(poisoned.bad());
    poisoned.feed(frame.data(), frame.size());
    EXPECT_FALSE(poisoned.next(type, payload));
    EXPECT_TRUE(poisoned.bad());
}

// -------------------------------------------------------- stream api ----

/** Pumps a trace through the stream API by hand and folds every
 *  TokenEvent, per request, exactly as a wire client would. */
ServingMetrics
streamRun(serving::ServingClient& client, const std::vector<Request>& trace,
          std::map<int, std::uint64_t>& folded,
          std::map<int, int>& token_counts)
{
    client.streamBegin([&](const TokenEvent& ev) {
        folded[ev.request_id] =
            net::foldOutputHash(folded[ev.request_id], ev.fold);
        EXPECT_EQ(folded[ev.request_id], ev.output_hash);
        EXPECT_EQ(token_counts[ev.request_id]++, ev.index);
    });
    for (const Request& r : trace)
        client.streamSubmit(r);
    while (client.streamTick()) {
    }
    return client.streamEnd();
}

TEST(NetStream, EngineStreamMatchesBatchByteForByte)
{
    // The batch path is now implemented on top of the stream API; this
    // pins the equivalence from the outside: same trace, same digests,
    // same serialized metrics — and the TokenEvent folds reproduce each
    // request's final output_hash, which is what TOKEN frames carry.
    std::vector<Request> trace;
    for (int i = 1; i <= 8; i++)
        trace.push_back(workload(i, 24 + 8 * (i % 3), 6 + i % 4,
                                 0xF00ull + i % 2, 8));

    serving::EngineClient batch(sim::archA100(), model::llama2_7b(),
                                netTinyConfig());
    for (const Request& r : trace)
        batch.submit(r);
    const ServingMetrics mb = batch.drain();

    serving::EngineClient stream(sim::archA100(), model::llama2_7b(),
                                 netTinyConfig());
    std::map<int, std::uint64_t> folded;
    std::map<int, int> token_counts;
    const ServingMetrics ms = streamRun(stream, trace, folded,
                                        token_counts);

    EXPECT_EQ(mb.outputs_digest, ms.outputs_digest);
    EXPECT_EQ(mb.toJson(), ms.toJson());
    for (const Request& q : trace) {
        const Request* a = batch.poll(q.id);
        const Request* b = stream.poll(q.id);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(a->output_hash, b->output_hash);
        ASSERT_NE(a->attn_hash, 0u);
        EXPECT_EQ(a->attn_hash, b->attn_hash);
        EXPECT_EQ(folded[q.id], b->output_hash);
        EXPECT_EQ(token_counts[q.id], b->generated);
    }
}

TEST(NetStream, ClusterStreamMatchesBatchAcrossShards)
{
    std::vector<Request> trace;
    for (int i = 1; i <= 10; i++)
        trace.push_back(workload(i, 32, 8,
                                 0xD15C0ull + static_cast<std::uint64_t>(
                                                  i % 3),
                                 16));

    auto batch = serving::makeServingClient(
        sim::archA100(), model::llama2_7b(), netTinyConfig(), 4);
    for (const Request& r : trace)
        batch->submit(r);
    const ServingMetrics mb = batch->drain();

    auto stream = serving::makeServingClient(
        sim::archA100(), model::llama2_7b(), netTinyConfig(), 4);
    std::map<int, std::uint64_t> folded;
    std::map<int, int> token_counts;
    const ServingMetrics ms = streamRun(*stream, trace, folded,
                                        token_counts);

    EXPECT_EQ(mb.outputs_digest, ms.outputs_digest);
    EXPECT_EQ(mb.toJson(), ms.toJson());
    for (const Request& q : trace) {
        const Request* a = batch->poll(q.id);
        const Request* b = stream->poll(q.id);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(a->output_hash, b->output_hash);
        EXPECT_EQ(a->attn_hash, b->attn_hash);
        EXPECT_EQ(folded[q.id], b->output_hash);
    }
}

// ---------------------------------------------------------- loopback ----

/** A Server on an ephemeral loopback port, pumped by its own thread. */
class LoopbackServer
{
  public:
    explicit LoopbackServer(const EngineConfig& cfg, int shards = 1,
                            net::ServerConfig sc = {})
    {
        sc.port = 0;
        sc.honor_signal_drain = false; // tests drain explicitly
        client_ = serving::makeServingClient(sim::archA100(),
                                             model::llama2_7b(), cfg,
                                             shards);
        net::ServerInfo info;
        info.backend = cfg.backend;
        info.page_size = cfg.page_size;
        info.cache_head_dim = cfg.cache_head_dim;
        info.shards = shards;
        server_ = std::make_unique<net::Server>(*client_, sc, info);
        thread_ = std::thread([this] { metrics_ = server_->run(); });
    }

    ~LoopbackServer() { stop(); }

    /** Drains the server and returns its final metrics. */
    ServingMetrics stop()
    {
        if (thread_.joinable()) {
            server_->requestDrain();
            thread_.join();
        }
        return metrics_;
    }

    int port() const { return server_->port(); }
    const net::Server& server() const { return *server_; }
    void requestDrain() { server_->requestDrain(); }

  private:
    std::unique_ptr<serving::ServingClient> client_;
    std::unique_ptr<net::Server> server_;
    std::thread thread_;
    ServingMetrics metrics_;
};

TEST(NetLoopback, ConcurrentClientsDigestMatchInProcess)
{
    // Acceptance: N concurrent wire clients over a sharded server see
    // per-request digests byte-identical to the same trace run through
    // an in-process ServingClient — the socket layer adds no entropy.
    std::vector<Request> trace;
    for (int i = 1; i <= 12; i++)
        trace.push_back(workload(i, 40, 6 + i % 5,
                                 0xFACEull + static_cast<std::uint64_t>(
                                                 i % 3),
                                 16));

    LoopbackServer lb(netTinyConfig(), 2);

    constexpr int kClients = 4;
    std::mutex mu;
    std::map<int, net::DoneMsg> done;
    bool stream_bad = false;
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; c++)
        threads.emplace_back([&, c] {
            net::NetClient nc;
            ASSERT_TRUE(nc.connect("127.0.0.1", lb.port()));
            std::vector<int> mine;
            for (std::size_t i = static_cast<std::size_t>(c);
                 i < trace.size(); i += kClients) {
                ASSERT_TRUE(nc.submit(toSubmit(trace[i])));
                mine.push_back(trace[i].id);
            }
            std::size_t remaining = mine.size();
            net::NetEvent ev;
            while (remaining > 0) {
                ASSERT_TRUE(nc.readEvent(ev));
                ASSERT_NE(ev.type, net::FrameType::Error)
                    << ev.error.message;
                if (ev.type != net::FrameType::Done)
                    continue;
                std::lock_guard<std::mutex> lock(mu);
                done[ev.request_id] = ev.done;
                if (!nc.streamDigestOk(ev.request_id))
                    stream_bad = true;
                remaining--;
            }
            // STATS works mid-session and returns the metrics JSON.
            if (c == 0) {
                ASSERT_TRUE(nc.requestStats());
                while (nc.readEvent(ev))
                    if (ev.type == net::FrameType::StatsJson)
                        break;
                ASSERT_EQ(ev.type, net::FrameType::StatsJson);
                EXPECT_NE(ev.stats_json.find("\"num_requests\""),
                          std::string::npos);
            }
        });
    for (std::thread& t : threads)
        t.join();

    EXPECT_FALSE(stream_bad) << "lost or reordered TOKEN frames";
    ASSERT_EQ(done.size(), trace.size());

    // The in-process twin, same engine shape and shard count.
    auto local = serving::makeServingClient(
        sim::archA100(), model::llama2_7b(), netTinyConfig(), 2);
    for (const Request& r : trace)
        local->submit(r);
    local->drain();
    for (const Request& r : trace) {
        const net::DoneMsg& d = done.at(r.id);
        const Request* l = local->poll(r.id);
        ASSERT_NE(l, nullptr);
        EXPECT_EQ(l->state, RequestState::Finished);
        EXPECT_EQ(d.finished, 1);
        EXPECT_EQ(d.generated, l->generated);
        EXPECT_EQ(d.output_hash, l->output_hash) << "request " << r.id;
        ASSERT_NE(l->attn_hash, 0u);
        EXPECT_EQ(d.attn_hash, l->attn_hash) << "request " << r.id;
    }

    const ServingMetrics m = lb.stop();
    EXPECT_EQ(m.num_requests, static_cast<int>(trace.size()));
}

TEST(NetLoopback, SlowReaderBackpressureBoundsServerBuffering)
{
    // A reader that naps between frames must not grow the server's
    // write queue without bound: the pump pauses at the watermark and
    // resumes as the reader drains, so the high-water mark stays within
    // the limit plus at most one tick's worth of frames.
    constexpr std::size_t kLimit = 1024;
    net::ServerConfig sc;
    sc.write_buffer_limit = kLimit;
    LoopbackServer lb(netTinyConfig(), 1, sc);

    std::vector<Request> trace;
    for (int i = 1; i <= 4; i++)
        trace.push_back(workload(i, 16, 64));

    net::NetClient nc;
    ASSERT_TRUE(nc.connect("127.0.0.1", lb.port()));
    for (const Request& r : trace)
        ASSERT_TRUE(nc.submit(toSubmit(r)));

    std::size_t remaining = trace.size();
    net::NetEvent ev;
    while (remaining > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_TRUE(nc.readEvent(ev));
        ASSERT_NE(ev.type, net::FrameType::Error) << ev.error.message;
        if (ev.type == net::FrameType::Done)
            remaining--;
    }
    for (const Request& r : trace) {
        EXPECT_TRUE(nc.streamDigestOk(r.id)) << "request " << r.id;
        EXPECT_EQ(nc.tokensReceived(r.id), 64);
    }
    nc.close();

    const ServingMetrics m = lb.stop();
    EXPECT_EQ(m.num_requests, 4);
    // 4 x 64 tokens ~ 12 KiB of TOKEN frames went through a 1 KiB
    // window; unbounded buffering would have peaked near the total.
    EXPECT_LE(lb.server().peakWriteBuffer(), kLimit + kLimit);
}

TEST(NetLoopback, DrainUnderLoadFinishesInFlightAndShedsNew)
{
    LoopbackServer lb(netTinyConfig(), 2);

    net::NetClient nc;
    ASSERT_TRUE(nc.connect("127.0.0.1", lb.port()));
    // Long outputs: the drain must provably overlap live decoding, not
    // win a race against work that finished in the first pump round.
    constexpr int kInFlight = 6;
    for (int i = 1; i <= kInFlight; i++)
        ASSERT_TRUE(nc.submit(toSubmit(workload(i, 24, 250))));

    // Wait for every admission so the drain provably races real work.
    // A fast request may even finish before the last SubmitOk arrives —
    // count DONEs here too so none is silently swallowed.
    int oks = 0, dones = 0;
    net::NetEvent ev;
    while (oks < kInFlight) {
        ASSERT_TRUE(nc.readEvent(ev));
        ASSERT_NE(ev.type, net::FrameType::Error) << ev.error.message;
        if (ev.type == net::FrameType::SubmitOk)
            oks++;
        else if (ev.type == net::FrameType::Done)
            dones++;
    }

    lb.requestDrain();
    ASSERT_TRUE(nc.submit(toSubmit(workload(99, 24, 8))));

    bool shed = false;
    while (dones < kInFlight || !shed) {
        ASSERT_TRUE(nc.readEvent(ev));
        if (ev.type == net::FrameType::Done) {
            EXPECT_EQ(ev.done.finished, 1) << "request " << ev.request_id;
            dones++;
        } else if (ev.type == net::FrameType::Error) {
            EXPECT_EQ(ev.error.code, net::ErrorCode::Draining);
            EXPECT_EQ(ev.request_id, 99);
            shed = true;
        }
    }
    nc.close();

    const ServingMetrics m = lb.stop();
    EXPECT_EQ(m.num_requests, kInFlight); // all in-flight work finished
}

// ------------------------------------------------- raw-socket drivers ----

/** A bare TCP connection for byte-level protocol abuse. */
class RawConn
{
  public:
    explicit RawConn(int port, int rcvbuf = 0)
    {
        fd_ = socket(AF_INET, SOCK_STREAM, 0);
        if (rcvbuf > 0) // before connect(), so the TCP window honors it
            setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                       sizeof(rcvbuf));
        sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                               sizeof(addr)) == 0;
    }
    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    bool sendBytes(const std::string& bytes)
    {
        return send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(bytes.size());
    }

    /** Blocks for the next frame; false on EOF or poisoned stream. */
    bool readFrame(net::FrameType& type, std::string& payload)
    {
        while (!in_.next(type, payload)) {
            if (in_.bad())
                return false;
            char buf[4096];
            const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return false;
            in_.feed(buf, static_cast<std::size_t>(n));
        }
        return true;
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
    net::FrameAssembler in_;
};

TEST(NetLoopback, MidStreamCancelStopsTheStream)
{
    // Flow control makes the cancel provably land mid-stream: tiny
    // kernel buffers on both ends plus a small write watermark keep the
    // server from running more than a few hundred tokens ahead of what
    // the client has read, and the request wants 2000.
    net::ServerConfig sc;
    sc.write_buffer_limit = 1024;
    sc.so_sndbuf = 4096;
    LoopbackServer lb(netTinyConfig(320), 1, sc);

    RawConn rc(lb.port(), /*rcvbuf=*/4096);
    ASSERT_TRUE(rc.connected());
    net::FrameType type;
    std::string payload;
    ASSERT_TRUE(rc.readFrame(type, payload));
    EXPECT_EQ(type, net::FrameType::Hello);

    constexpr int kOutput = 2000;
    ASSERT_TRUE(rc.sendBytes(
        net::encodeSubmit(toSubmit(workload(1, 32, kOutput)))));

    std::uint64_t folded = 0;
    int tokens = 0;
    bool cancel_sent = false;
    net::DoneMsg done;
    for (;;) {
        ASSERT_TRUE(rc.readFrame(type, payload));
        if (type == net::FrameType::SubmitOk)
            continue;
        if (type == net::FrameType::Token) {
            net::TokenMsg t;
            ASSERT_TRUE(net::decodeToken(payload, t));
            EXPECT_EQ(t.index, tokens);
            folded = net::foldOutputHash(folded, t.fold);
            EXPECT_EQ(folded, t.output_hash);
            tokens++;
            if (!cancel_sent && tokens >= 5) {
                ASSERT_TRUE(rc.sendBytes(net::encodeCancel(1)));
                cancel_sent = true;
            }
            continue;
        }
        ASSERT_EQ(type, net::FrameType::Done);
        ASSERT_TRUE(net::decodeDone(payload, done));
        break;
    }
    ASSERT_TRUE(cancel_sent);
    EXPECT_EQ(done.finished, 0);
    EXPECT_EQ(done.cancel_cause,
              static_cast<std::uint8_t>(serving::CancelCause::Client));
    EXPECT_GE(done.generated, 5);
    EXPECT_LT(done.generated, kOutput);
    // Every generated token arrived before the DONE, and the partial
    // fold reproduces the canceled request's digest.
    EXPECT_EQ(tokens, done.generated);
    EXPECT_EQ(folded, done.output_hash);

    // Canceled requests are excluded from the serving aggregate.
    const ServingMetrics m = lb.stop();
    EXPECT_EQ(m.num_requests, 0);
}

TEST(NetLoopback, MalformedFramesGetTypedErrorThenClose)
{
    LoopbackServer lb(netTinyConfig());
    net::FrameType type;
    std::string payload;

    {
        // A well-framed SUBMIT whose payload is garbage: typed BAD_FRAME
        // error, then the server closes the connection.
        RawConn rc(lb.port());
        ASSERT_TRUE(rc.connected());
        ASSERT_TRUE(rc.readFrame(type, payload));
        EXPECT_EQ(type, net::FrameType::Hello);
        ASSERT_TRUE(rc.sendBytes(
            net::encodeFrame(net::FrameType::Submit, "garbage")));
        ASSERT_TRUE(rc.readFrame(type, payload));
        ASSERT_EQ(type, net::FrameType::Error);
        net::ErrorMsg e;
        ASSERT_TRUE(net::decodeError(payload, e));
        EXPECT_EQ(e.code, net::ErrorCode::BadFrame);
        EXPECT_NE(e.message.find("malformed SUBMIT"), std::string::npos);
        EXPECT_FALSE(rc.readFrame(type, payload)); // EOF: conn dropped
    }
    {
        // An oversized length prefix: the server must reject without
        // allocating and drop the connection.
        RawConn rc(lb.port());
        ASSERT_TRUE(rc.connected());
        ASSERT_TRUE(rc.readFrame(type, payload));
        EXPECT_EQ(type, net::FrameType::Hello);
        net::WireWriter w;
        w.u32(net::kMaxFrameBytes + 1);
        w.u8(static_cast<std::uint8_t>(net::FrameType::Submit));
        ASSERT_TRUE(rc.sendBytes(w.bytes()));
        ASSERT_TRUE(rc.readFrame(type, payload));
        ASSERT_EQ(type, net::FrameType::Error);
        net::ErrorMsg e;
        ASSERT_TRUE(net::decodeError(payload, e));
        EXPECT_EQ(e.code, net::ErrorCode::BadFrame);
        EXPECT_NE(e.message.find("oversized"), std::string::npos);
        EXPECT_FALSE(rc.readFrame(type, payload));
    }
    {
        // An unknown client frame type is equally fatal for the conn.
        RawConn rc(lb.port());
        ASSERT_TRUE(rc.connected());
        ASSERT_TRUE(rc.readFrame(type, payload));
        ASSERT_TRUE(rc.sendBytes(
            net::encodeFrame(static_cast<net::FrameType>(42), "")));
        ASSERT_TRUE(rc.readFrame(type, payload));
        ASSERT_EQ(type, net::FrameType::Error);
        net::ErrorMsg e;
        ASSERT_TRUE(net::decodeError(payload, e));
        EXPECT_EQ(e.code, net::ErrorCode::BadFrame);
        EXPECT_FALSE(rc.readFrame(type, payload));
    }

    const ServingMetrics m = lb.stop();
    EXPECT_EQ(m.num_requests, 0);
}

TEST(NetLoopback, BusySheddingAtTheAdmissionCap)
{
    net::ServerConfig sc;
    sc.max_inflight = 1;
    LoopbackServer lb(netTinyConfig(), 1, sc);

    // Both SUBMITs in one send() so they land in one read round —
    // the second is shed before the first can possibly finish.
    RawConn rc(lb.port());
    ASSERT_TRUE(rc.connected());
    net::FrameType type;
    std::string payload;
    ASSERT_TRUE(rc.readFrame(type, payload));
    EXPECT_EQ(type, net::FrameType::Hello);
    ASSERT_TRUE(
        rc.sendBytes(net::encodeSubmit(toSubmit(workload(1, 16, 200))) +
                     net::encodeSubmit(toSubmit(workload(2, 16, 8)))));

    ASSERT_TRUE(rc.readFrame(type, payload));
    ASSERT_EQ(type, net::FrameType::SubmitOk);
    std::int32_t id = 0;
    ASSERT_TRUE(net::decodeSubmitOk(payload, id));
    EXPECT_EQ(id, 1);

    ASSERT_TRUE(rc.readFrame(type, payload));
    ASSERT_EQ(type, net::FrameType::Error);
    net::ErrorMsg e;
    ASSERT_TRUE(net::decodeError(payload, e));
    EXPECT_EQ(e.code, net::ErrorCode::Busy);
    EXPECT_EQ(e.request_id, 2);
    EXPECT_NE(e.message.find("admission cap"), std::string::npos);

    // Free the slot; the canceled request still gets its DONE.
    ASSERT_TRUE(rc.sendBytes(net::encodeCancel(1)));
    do {
        ASSERT_TRUE(rc.readFrame(type, payload));
    } while (type == net::FrameType::Token);
    ASSERT_EQ(type, net::FrameType::Done);

    lb.stop();
    EXPECT_EQ(lb.server().busyRejections(), 1);
}

TEST(NetLoopback, TypedErrorFramesForBadSubmitsAndCancels)
{
    LoopbackServer lb(netTinyConfig()); // pool: 64 pages of 8 tokens

    net::NetClient nc;
    ASSERT_TRUE(nc.connect("127.0.0.1", lb.port()));

    net::SubmitMsg bad_backend = toSubmit(workload(1, 16, 4));
    bad_backend.backend = "definitely-not-a-backend";
    ASSERT_TRUE(nc.submit(bad_backend));

    net::SubmitMsg wrong_backend = toSubmit(workload(2, 16, 4));
    wrong_backend.backend = "fused-paged"; // registered, not this server's
    ASSERT_TRUE(nc.submit(wrong_backend));

    ASSERT_TRUE(nc.submit(toSubmit(workload(3, 0, 4))));      // no prompt
    ASSERT_TRUE(nc.submit(toSubmit(workload(4, 100000, 4)))); // never fits
    ASSERT_TRUE(nc.submit(toSubmit(workload(7, 16, 4))));     // admitted
    ASSERT_TRUE(nc.submit(toSubmit(workload(7, 16, 4))));     // duplicate
    ASSERT_TRUE(nc.cancel(99)); // never submitted on this connection

    std::map<std::int32_t, net::ErrorMsg> errors;
    bool done7 = false;
    net::NetEvent ev;
    while (errors.size() < 5 || !done7) {
        ASSERT_TRUE(nc.readEvent(ev));
        if (ev.type == net::FrameType::Error)
            errors[ev.request_id] = ev.error;
        else if (ev.type == net::FrameType::Done && ev.request_id == 7)
            done7 = true;
    }

    EXPECT_EQ(errors.at(1).code, net::ErrorCode::UnknownBackend);
    EXPECT_NE(errors.at(1).message.find(
                  "unknown attention backend 'definitely-not-a-backend'"),
              std::string::npos);
    EXPECT_EQ(errors.at(2).code, net::ErrorCode::InvalidRequest);
    EXPECT_NE(errors.at(2).message.find("cannot serve a request for"),
              std::string::npos);
    EXPECT_EQ(errors.at(3).code, net::ErrorCode::InvalidRequest);
    EXPECT_NE(errors.at(3).message.find("non-empty prompt"),
              std::string::npos);
    EXPECT_EQ(errors.at(4).code, net::ErrorCode::OverCapacity);
    EXPECT_NE(errors.at(4).message.find("can never fit"),
              std::string::npos);
    EXPECT_EQ(errors.at(7).code, net::ErrorCode::DuplicateId);
    EXPECT_NE(errors.at(7).message.find("duplicate request id 7"),
              std::string::npos);
    EXPECT_EQ(errors.at(99).code, net::ErrorCode::UnknownId);
    EXPECT_NE(errors.at(99).message.find("never submitted"),
              std::string::npos);

    const ServingMetrics m = lb.stop();
    EXPECT_EQ(m.num_requests, 1); // only request 7 ran
}

} // namespace
} // namespace bitdec
