/**
 * @file
 * Tests for the BitDecoding core: query transformation, the Packing
 * Kernel (fused dequant + Tensor-Core attention), cooperative softmax
 * validity, the MX path, and the timing model's headline behaviours.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "attention/flash_decoding.h"
#include "attention/qserve_baseline.h"
#include "attention/reference.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "core/packing_kernel.h"
#include "core/query_transform.h"
#include "core/residual_kernel.h"
#include "gpusim/arch.h"

namespace bitdec::core {
namespace {

void
randomize(Tensor<Half>& t, Rng& rng, float stddev = 1.0f)
{
    for (std::size_t i = 0; i < t.numel(); i++)
        t[i] = Half(rng.normal(0.f, stddev));
}

/** Builds a random [len x d] pair of K/V tensors. */
void
makeKv(Rng& rng, int len, int d, Tensor<Half>& k, Tensor<Half>& v)
{
    k.reset({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    v.reset({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    randomize(k, rng);
    randomize(v, rng);
}

// ------------------------------------------------------ query transform ----

TEST(QueryTransform, GathersGroupRows)
{
    Tensor<Half> q({8, 4}); // hq = 8
    for (std::size_t h = 0; h < 8; h++)
        for (std::size_t c = 0; c < 4; c++)
            q.at(h, c) = Half(static_cast<float>(h));
    const Tensor<Half> tile = queryGroupTile(q, 1, 2); // hkv = 2, gq = 4
    ASSERT_EQ(tile.dim(0), 4u);
    for (std::size_t g = 0; g < 4; g++)
        EXPECT_EQ(tile.at(g, 0).toFloat(), static_cast<float>(4 + g));
}

TEST(QueryTransform, ScatterInvertsGather)
{
    Rng rng(91);
    Tensor<Half> q({16, 8});
    randomize(q, rng);
    Tensor<float> o_full({16, 8});
    for (int kvh = 0; kvh < 4; kvh++) {
        const Tensor<Half> tile = queryGroupTile(q, kvh, 4);
        Tensor<float> o_tile({4, 8});
        for (std::size_t g = 0; g < 4; g++)
            for (std::size_t c = 0; c < 8; c++)
                o_tile.at(g, c) = tile.at(g, c).toFloat();
        scatterGroupOutput(o_tile, kvh, 4, o_full);
    }
    for (std::size_t h = 0; h < 16; h++)
        for (std::size_t c = 0; c < 8; c++)
            EXPECT_EQ(o_full.at(h, c), q.at(h, c).toFloat());
}

TEST(QueryTransform, PadFillsWithZeros)
{
    Tensor<Half> tile({3, 4});
    tile.fill(Half(2.0f));
    const Tensor<Half> padded = padQueryTile(tile, 16);
    EXPECT_EQ(padded.dim(0), 16u);
    EXPECT_EQ(padded.at(2, 3).toFloat(), 2.0f);
    EXPECT_EQ(padded.at(3, 0).toFloat(), 0.0f);
    EXPECT_EQ(padded.at(15, 3).toFloat(), 0.0f);
}

TEST(QueryTransform, MhaAndMqaShapes)
{
    Tensor<Half> q({4, 8});
    // MHA: gq = 1.
    EXPECT_EQ(queryGroupTile(q, 2, 4).dim(0), 1u);
    // MQA: hkv = 1, gq = hq.
    EXPECT_EQ(queryGroupTile(q, 0, 1).dim(0), 4u);
}

// ------------------------------------------------------- packing kernel ----

struct PkCase
{
    int bits;
    quant::Granularity gran;
    int extra_tokens; //!< residual tail beyond full blocks
    int gq;
};

class PackingKernelP : public ::testing::TestWithParam<PkCase>
{
};

TEST_P(PackingKernelP, MatchesReferenceWithinQuantBound)
{
    const auto [bits, gran, extra, gq] = GetParam();
    BitDecodingConfig cfg;
    cfg.quant.bits = bits;
    cfg.quant.key_granularity = gran;
    cfg.quant.group_size = 32;

    const int d = 64;
    HeadDecoder dec(d, cfg);
    const int nr = dec.cache().residualBlockSize();
    const int len = 2 * nr + extra;

    Rng rng(101);
    Tensor<Half> k, v;
    makeKv(rng, len, d, k, v);
    dec.prefill(k, v);
    ASSERT_EQ(dec.cache().length(), len);

    Tensor<Half> q({static_cast<std::size_t>(gq),
                    static_cast<std::size_t>(d)});
    randomize(q, rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    const PackingKernelResult res = dec.decodeStep(q, scale);
    EXPECT_TRUE(res.valid);

    // Reference over the *dequantized* cache isolates layout/kernel bugs
    // from inherent quantization error.
    Tensor<Half> kd, vd;
    dec.cache().dequantizeAll(kd, vd);
    const Tensor<float> want = attn::referenceAttention(q, kd, vd, scale);
    for (int g = 0; g < gq; g++) {
        for (int c = 0; c < d; c++) {
            EXPECT_NEAR(res.out.at(static_cast<std::size_t>(g),
                                   static_cast<std::size_t>(c)),
                        want.at(static_cast<std::size_t>(g),
                                static_cast<std::size_t>(c)),
                        2e-2f)
                << "g=" << g << " c=" << c;
        }
    }
    // And against the FP16 ground truth the gap is the quantization error.
    const Tensor<float> truth = attn::referenceAttention(q, k, v, scale);
    float err = 0;
    for (int g = 0; g < gq; g++)
        for (int c = 0; c < d; c++)
            err = std::max(err, std::fabs(res.out.at(
                                     static_cast<std::size_t>(g),
                                     static_cast<std::size_t>(c)) -
                                 truth.at(static_cast<std::size_t>(g),
                                          static_cast<std::size_t>(c))));
    EXPECT_LT(err, bits == 2 ? 1.0f : 0.4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackingKernelP,
    ::testing::Values(
        PkCase{4, quant::Granularity::ChannelWise, 0, 16},
        PkCase{4, quant::Granularity::ChannelWise, 37, 8},
        PkCase{4, quant::Granularity::TensorWise, 5, 16},
        PkCase{2, quant::Granularity::ChannelWise, 0, 16},
        PkCase{2, quant::Granularity::TensorWise, 64, 4},
        PkCase{4, quant::Granularity::ChannelWise, 1, 1}));

TEST(PackingKernel, ResidualOnlyCache)
{
    // Fewer tokens than one block: everything stays FP16.
    BitDecodingConfig cfg;
    const int d = 64;
    HeadDecoder dec(d, cfg);
    Rng rng(102);
    Tensor<Half> k, v;
    makeKv(rng, 40, d, k, v);
    dec.prefill(k, v);
    EXPECT_EQ(dec.cache().packedTokens(), 0);

    Tensor<Half> q({4, static_cast<std::size_t>(d)});
    randomize(q, rng);
    const auto res = dec.decodeStep(q, 0.125f);
    const auto want = attn::referenceAttention(q, k, v, 0.125f);
    for (std::size_t g = 0; g < 4; g++)
        for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++)
            EXPECT_NEAR(res.out.at(g, c), want.at(g, c), 1e-3f);
}

TEST(PackingKernel, HopperSmemPathIdentical)
{
    // Routing dequantized B through shared memory (STSM + wgmma_SS) must
    // not change results — and must keep the layout valid.
    BitDecodingConfig cfg;
    const int d = 64;
    HeadDecoder dec(d, cfg);
    Rng rng(103);
    Tensor<Half> k, v;
    makeKv(rng, dec.cache().residualBlockSize(), d, k, v);
    dec.prefill(k, v);
    Tensor<Half> q({8, static_cast<std::size_t>(d)});
    randomize(q, rng);

    PackingKernelOptions base, hopper;
    hopper.hopper_smem_path = true;
    const auto r1 = packingKernelAttention(q, dec.cache(), 0.125f, base);
    const auto r2 = packingKernelAttention(q, dec.cache(), 0.125f, hopper);
    EXPECT_TRUE(r2.valid);
    EXPECT_LT(attn::maxAbsDiff(r1.out, r2.out), 1e-6f);
}

TEST(CoopSoftmax, DisabledWithMultipleWarpsIsInvalid)
{
    // Table III row 2: wn = 4 without cooperative softmax is fast but
    // wrong. The functional model must flag it and produce different
    // output than the cooperative path.
    BitDecodingConfig cfg; // wn = 4 default
    const int d = 64;
    HeadDecoder dec(d, cfg);
    Rng rng(104);
    Tensor<Half> k, v;
    makeKv(rng, dec.cache().residualBlockSize(), d, k, v);
    dec.prefill(k, v);
    Tensor<Half> q({8, static_cast<std::size_t>(d)});
    randomize(q, rng, 2.0f); // spread logits so warp maxima differ

    PackingKernelOptions coop, broken;
    broken.coop_softmax = false;
    const auto good = packingKernelAttention(q, dec.cache(), 0.5f, coop);
    const auto bad = packingKernelAttention(q, dec.cache(), 0.5f, broken);
    EXPECT_TRUE(good.valid);
    EXPECT_FALSE(bad.valid);
    EXPECT_GT(attn::maxAbsDiff(good.out, bad.out), 1e-3f);
}

TEST(CoopSoftmax, SingleWarpNeedsNoCooperation)
{
    // Table III row 1: wn = 1 stays correct without cooperation.
    BitDecodingConfig cfg;
    cfg.tiling.wn = 1;
    cfg.coop_softmax = false;
    const int d = 64;
    HeadDecoder dec(d, cfg);
    Rng rng(105);
    Tensor<Half> k, v;
    makeKv(rng, dec.cache().residualBlockSize(), d, k, v);
    dec.prefill(k, v);
    Tensor<Half> q({8, static_cast<std::size_t>(d)});
    randomize(q, rng);
    const auto res = dec.decodeStep(q, 0.125f);
    EXPECT_TRUE(res.valid);

    Tensor<Half> kd, vd;
    dec.cache().dequantizeAll(kd, vd);
    const auto want = attn::referenceAttention(q, kd, vd, 0.125f);
    for (std::size_t g = 0; g < 8; g++)
        for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++)
            EXPECT_NEAR(res.out.at(g, c), want.at(g, c), 2e-2f);
}

TEST(HeadDecoder, StreamingAppendMatchesPrefill)
{
    BitDecodingConfig cfg;
    const int d = 64;
    HeadDecoder a(d, cfg), b(d, cfg);
    Rng rng(106);
    const int len = a.cache().residualBlockSize() + 13;
    Tensor<Half> k, v;
    makeKv(rng, len, d, k, v);
    a.prefill(k, v);
    for (int t = 0; t < len; t++) {
        std::vector<Half> kt(static_cast<std::size_t>(d)),
            vt(static_cast<std::size_t>(d));
        for (int c = 0; c < d; c++) {
            kt[static_cast<std::size_t>(c)] =
                k.at(static_cast<std::size_t>(t), static_cast<std::size_t>(c));
            vt[static_cast<std::size_t>(c)] =
                v.at(static_cast<std::size_t>(t), static_cast<std::size_t>(c));
        }
        b.appendToken(kt, vt);
    }
    Tensor<Half> q({4, static_cast<std::size_t>(d)});
    randomize(q, rng);
    const auto ra = a.decodeStep(q, 0.125f);
    const auto rb = b.decodeStep(q, 0.125f);
    EXPECT_LT(attn::maxAbsDiff(ra.out, rb.out), 1e-6f);
}

// ------------------------------------------------------------- MX path ----

TEST(MxPath, AttentionWithinFp4Bound)
{
    Rng rng(107);
    const int len = 128, d = 64;
    Tensor<Half> k, v;
    makeKv(rng, len, d, k, v);
    Tensor<Half> q({4, static_cast<std::size_t>(d)});
    randomize(q, rng);
    const float scale = 0.125f;
    const auto want = attn::referenceAttention(q, k, v, scale);
    for (quant::MxKind kind : {quant::MxKind::MXFP4, quant::MxKind::NVFP4}) {
        const auto got = mxAttention(q, k, v, kind, scale, true);
        EXPECT_LT(attn::maxAbsDiff(got, want), 0.6f);
        EXPECT_GT(attn::maxAbsDiff(got, want), 0.0f); // fp4 is lossy
    }
}

TEST(MxPath, PRequantizationAddsError)
{
    Rng rng(108);
    const int len = 64, d = 32;
    Tensor<Half> k, v;
    makeKv(rng, len, d, k, v);
    Tensor<Half> q({2, static_cast<std::size_t>(d)});
    randomize(q, rng);
    const auto want = attn::referenceAttention(q, k, v, 0.2f);
    const auto no_requant =
        mxAttention(q, k, v, quant::MxKind::NVFP4, 0.2f, false);
    const auto requant =
        mxAttention(q, k, v, quant::MxKind::NVFP4, 0.2f, true);
    EXPECT_GE(attn::maxAbsDiff(requant, want),
              attn::maxAbsDiff(no_requant, want) * 0.99f);
}

// --------------------------------------------------------- timing model ----

TEST(BitDecodingTiming, BeatsFp16AtLongContext)
{
    attn::DecodeShape s;
    s.batch = 1;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 131072;
    const auto& a100 = sim::archA100();
    BitDecodingConfig cfg;
    const double fd = attn::flashDecodingTime(a100, s, 2).total_s;
    const double bd4 = bitDecodingTime(a100, s, cfg).total_s;
    cfg.quant.bits = 2;
    const double bd2 = bitDecodingTime(a100, s, cfg).total_s;
    EXPECT_GT(fd / bd4, 2.0); // ~4x bytes saved, some overhead
    EXPECT_LT(fd / bd4, 4.5);
    EXPECT_GT(bd4 / bd2, 1.2); // 2-bit is faster still
}

TEST(BitDecodingTiming, AblationLadderMonotone)
{
    // Fig. 16: each optimization must add speedup on every architecture.
    attn::DecodeShape s;
    s.batch = 8;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 32768;
    BitDecodingConfig cfg;
    for (const auto* arch : {&sim::archA100(), &sim::archH100(),
                             &sim::archRTX5090()}) {
        cfg.version = arch->has_wgmma ? 3 : 2;
        cfg.use_mx = arch->has_mxfp4_mma;
        BitDecodingAblation none{false, false, false};
        BitDecodingAblation layout{true, false, false};
        BitDecodingAblation warps{true, true, false};
        BitDecodingAblation full{true, true, true};
        const double t0 = bitDecodingTime(*arch, s, cfg, none).total_s;
        const double t1 = bitDecodingTime(*arch, s, cfg, layout).total_s;
        const double t2 = bitDecodingTime(*arch, s, cfg, warps).total_s;
        const double t3 = bitDecodingTime(*arch, s, cfg, full).total_s;
        EXPECT_GT(t0, t1) << arch->name;
        EXPECT_GT(t1, t2) << arch->name;
        EXPECT_GT(t2, t3) << arch->name;
    }
}

TEST(BitDecodingTiming, QueryTransformKeepsGqaFast)
{
    // BitDecoding reads KV once per kv head; the advantage over the
    // CUDA-core GEMV systems grows with the group size.
    attn::DecodeShape gqa;
    gqa.batch = 4;
    gqa.num_q_heads = 32;
    gqa.num_kv_heads = 8;
    gqa.seq_len = 32768;
    const auto& a100 = sim::archA100();
    BitDecodingConfig cfg;
    const double bd = bitDecodingTime(a100, gqa, cfg).total_s;
    const double qs = attn::cudaCoreFusedTime(
                          a100, gqa, attn::CudaCoreSystem::QServe, 4)
                          .total_s;
    EXPECT_GT(qs / bd, 2.0);
}

TEST(BitDecodingTiming, MxPathFastestOnBlackwell)
{
    attn::DecodeShape s;
    s.batch = 32;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 8192;
    const auto& b = sim::archRTX5090();
    BitDecodingConfig int4;
    BitDecodingConfig mx;
    mx.use_mx = true;
    const double t_int4 = bitDecodingTime(b, s, int4).total_s;
    const double t_mx = bitDecodingTime(b, s, mx).total_s;
    EXPECT_LT(t_mx, t_int4 * 1.05);
}

TEST(BitDecodingTiming, BreakdownSane)
{
    attn::DecodeShape s;
    s.batch = 8;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 32768;
    BitDecodingConfig cfg;
    const KernelBreakdown b = bitDecodingBreakdown(sim::archA100(), s, cfg);
    EXPECT_GT(b.total_s, 0);
    EXPECT_GT(b.dequant_s, 0);
    EXPECT_LT(b.dequant_s / b.total_s, 0.5); // Fig. 15a: < 50 %
    EXPECT_GT(b.tc_utilization, 0);
    EXPECT_LE(b.fma_share + b.alu_share, 1.0 + 1e-9);
}

TEST(BitDecodingTiming, ResidualKernelOverheadSmall)
{
    // Fig. 14: the extra residual launch costs little and shrinks
    // relative to the total as the context grows.
    attn::DecodeShape s;
    s.batch = 1;
    s.num_q_heads = 32;
    s.num_kv_heads = 32;
    s.head_dim = 128;
    BitDecodingConfig cfg;
    double prev_ratio = 1e9;
    for (int len : {4096, 16384, 65536, 131072}) {
        s.seq_len = len;
        const double with_res = bitDecodingTime(sim::archA100(), s, cfg).total_s;
        const double res_part =
            residualKernelTime(sim::archA100(), s, cfg.quant, 64, false)
                .total_s;
        const double ratio = res_part / with_res;
        EXPECT_LT(ratio, prev_ratio * 1.001);
        prev_ratio = ratio;
    }
    EXPECT_LT(prev_ratio, 0.08); // negligible at 128K
}

TEST(BitDecodingConfig, Labels)
{
    BitDecodingConfig c;
    EXPECT_EQ(c.label(), "BitDecoding-KC-4");
    c.quant.bits = 2;
    c.version = 3;
    EXPECT_EQ(c.label(), "BitDecoding-KC-2 (v3)");
    c.use_mx = true;
    EXPECT_EQ(c.label(), "BitDecoding-mxfp4");
}

} // namespace
} // namespace bitdec::core
