/**
 * @file
 * Tests for layout induction (the paper's core claim) and the KV caches.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/residual_kernel.h"
#include "kvcache/kv_cache.h"
#include "kvcache/paged_cache.h"
#include "layout/induced_layout.h"
#include "layout/tile.h"
#include "quant/int_quant.h"

namespace bitdec {
namespace {

using layout::InducedLayout;
using layout::residualBlockSize;
using layout::UnitId;
using layout::WarpTiling;

// ------------------------------------------------------------ Eq. 1 -------

TEST(Tile, ResidualBlockSizeEq1)
{
    WarpTiling t;
    t.wn = 4;
    EXPECT_EQ(residualBlockSize(t, 4), 8 * 4 * 4);  // Pn*Wn*R = 128
    EXPECT_EQ(residualBlockSize(t, 2), 8 * 4 * 8);  // 256
    t.wn = 2;
    EXPECT_EQ(residualBlockSize(t, 4), 64);
    t.wn = 1;
    EXPECT_EQ(residualBlockSize(t, 8), 16); // 8*1*2
}

TEST(Tile, WarpTilingExtents)
{
    WarpTiling t;
    EXPECT_EQ(t.pn(), 8);
    EXPECT_EQ(t.pk(), 16);
    EXPECT_EQ(t.pm(), 16);
    t.mma = sim::MmaShape::M16N8K8;
    EXPECT_EQ(t.pk(), 8);
    EXPECT_EQ(t.warps(), 4);
}

// ------------------------------------------------------ induced layout ----

struct LayoutParam
{
    int bits;
    int k_rows;
    int n_cols;
};

class InducedLayoutP : public ::testing::TestWithParam<LayoutParam>
{
  protected:
    WarpTiling tiling_;
};

TEST_P(InducedLayoutP, SlotsAreBijective)
{
    const auto [bits, k_rows, n_cols] = GetParam();
    const InducedLayout lay(tiling_, bits, k_rows, n_cols);
    std::set<std::size_t> slots;
    for (int kt = 0; kt < lay.numKTiles(); kt++)
        for (int ng = 0; ng < lay.numNGroups(); ng++)
            for (int lane = 0; lane < sim::kWarpSize; lane++)
                for (int pr = 0; pr < lay.pairsPerLane(); pr++)
                    slots.insert(lay.unitSlot({kt, ng, lane, pr}));
    EXPECT_EQ(slots.size(), lay.numUnits());
    EXPECT_EQ(*slots.rbegin(), lay.numUnits() - 1);
}

TEST_P(InducedLayoutP, CodeCoordsCoverTheMatrixOnce)
{
    const auto [bits, k_rows, n_cols] = GetParam();
    const InducedLayout lay(tiling_, bits, k_rows, n_cols);
    Tensor<int> hits({static_cast<std::size_t>(k_rows),
                      static_cast<std::size_t>(n_cols)});
    for (int kt = 0; kt < lay.numKTiles(); kt++) {
        for (int ng = 0; ng < lay.numNGroups(); ng++) {
            for (int lane = 0; lane < sim::kWarpSize; lane++) {
                for (int pr = 0; pr < lay.pairsPerLane(); pr++) {
                    for (int i = 0; i < lay.codesPerUnit(); i++) {
                        const auto c = lay.codeCoord({kt, ng, lane, pr}, i);
                        hits.at(static_cast<std::size_t>(c.row),
                                static_cast<std::size_t>(c.col))++;
                    }
                }
            }
        }
    }
    for (std::size_t i = 0; i < hits.numel(); i++)
        EXPECT_EQ(hits[i], 1);
}

TEST_P(InducedLayoutP, LocateInvertsCodeCoord)
{
    const auto [bits, k_rows, n_cols] = GetParam();
    const InducedLayout lay(tiling_, bits, k_rows, n_cols);
    Rng rng(51);
    for (int trial = 0; trial < 200; trial++) {
        const int row = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(k_rows)));
        const int col = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(n_cols)));
        UnitId id;
        int code;
        lay.locate(row, col, id, code);
        const auto c = lay.codeCoord(id, code);
        EXPECT_EQ(c.row, row);
        EXPECT_EQ(c.col, col);
    }
}

TEST_P(InducedLayoutP, PackUnpackIdentity)
{
    const auto [bits, k_rows, n_cols] = GetParam();
    const InducedLayout lay(tiling_, bits, k_rows, n_cols);
    Rng rng(52);
    Tensor<std::uint8_t> codes({static_cast<std::size_t>(k_rows),
                                static_cast<std::size_t>(n_cols)});
    for (std::size_t i = 0; i < codes.numel(); i++)
        codes[i] = static_cast<std::uint8_t>(rng.uniformInt(1u << bits));
    const auto units = packInduced(lay, codes);
    EXPECT_EQ(units.size(), lay.numUnits());
    const Tensor<std::uint8_t> back = unpackInduced(lay, units);
    for (std::size_t i = 0; i < codes.numel(); i++)
        EXPECT_EQ(back[i], codes[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InducedLayoutP,
    ::testing::Values(LayoutParam{4, 128, 128}, LayoutParam{4, 64, 256},
                      LayoutParam{2, 128, 256}, LayoutParam{2, 32, 64},
                      LayoutParam{4, 16, 32}));

TEST(InducedLayout, ContinuousPackingMisaligns)
{
    // Fig. 3b as a property: codes packed in naive row-major order, when
    // read back through the induced-layout reader, land at the wrong
    // coordinates.
    WarpTiling tiling;
    const InducedLayout lay(tiling, 4, 32, 32);
    Rng rng(53);
    Tensor<std::uint8_t> codes({32, 32});
    for (std::size_t i = 0; i < codes.numel(); i++)
        codes[i] = static_cast<std::uint8_t>(rng.uniformInt(16));
    const auto naive = layout::packContinuous(4, codes);
    ASSERT_EQ(naive.size(), lay.numUnits()); // same storage budget
    const Tensor<std::uint8_t> misread = unpackInduced(lay, naive);
    int mismatches = 0;
    for (std::size_t i = 0; i < codes.numel(); i++)
        mismatches += misread[i] != codes[i];
    EXPECT_GT(mismatches, static_cast<int>(codes.numel()) / 2);
}

TEST(InducedLayout, RejectsMisalignedShapes)
{
    WarpTiling tiling;
    EXPECT_DEATH(InducedLayout(tiling, 4, 100, 128), "multiple");
    EXPECT_DEATH(InducedLayout(tiling, 4, 128, 100), "multiple");
}

// -------------------------------------------------- fp16 / packed caches ----

TEST(Fp16Cache, AppendAndGrow)
{
    kv::Fp16HeadCache cache(8);
    for (int t = 0; t < 200; t++) {
        std::vector<Half> k(8, Half(static_cast<float>(t)));
        std::vector<Half> v(8, Half(static_cast<float>(-t)));
        cache.append(k, v);
    }
    EXPECT_EQ(cache.length(), 200);
    EXPECT_EQ(cache.keys().at(150, 0).toFloat(), 150.0f);
    EXPECT_EQ(cache.values().at(199, 7).toFloat(), -199.0f);
    EXPECT_EQ(cache.deviceBytes(), 2.0 * 200 * 8 * 2);
}

class PackedCacheP
    : public ::testing::TestWithParam<std::pair<int, quant::Granularity>>
{
};

TEST_P(PackedCacheP, PartitionInvariants)
{
    const auto [bits, gran] = GetParam();
    quant::QuantConfig qc;
    qc.bits = bits;
    qc.key_granularity = gran;
    qc.group_size = 32;
    WarpTiling tiling;
    kv::PackedHeadCache cache(64, qc, tiling);
    const int nr = cache.residualBlockSize();
    EXPECT_EQ(nr, residualBlockSize(tiling, bits));

    Rng rng(61);
    const int total = nr * 2 + nr / 2; // two full blocks and a tail
    for (int t = 0; t < total; t++) {
        std::vector<Half> k(64), v(64);
        for (int d = 0; d < 64; d++) {
            k[static_cast<std::size_t>(d)] = Half(rng.normal());
            v[static_cast<std::size_t>(d)] = Half(rng.normal());
        }
        cache.append(k, v);
        // Invariant: len = packed + residual, residual < Nr.
        EXPECT_EQ(cache.length(), t + 1);
        EXPECT_LT(cache.residualLength(), nr);
        EXPECT_EQ(cache.packedTokens() % nr, 0);
    }
    EXPECT_EQ(cache.packedTokens(), nr * 2);
    EXPECT_EQ(cache.residualLength(), nr / 2);
    EXPECT_EQ(cache.keyBlocks().size(), 2u);
}

TEST_P(PackedCacheP, DequantizeAllWithinQuantBound)
{
    const auto [bits, gran] = GetParam();
    quant::QuantConfig qc;
    qc.bits = bits;
    qc.key_granularity = gran;
    qc.group_size = 32;
    WarpTiling tiling;
    kv::PackedHeadCache cache(64, qc, tiling);
    const int nr = cache.residualBlockSize();

    Rng rng(62);
    Tensor<Half> k({static_cast<std::size_t>(nr + 16), 64});
    Tensor<Half> v({static_cast<std::size_t>(nr + 16), 64});
    for (std::size_t i = 0; i < k.numel(); i++) {
        k[i] = Half(rng.normal());
        v[i] = Half(rng.normal());
    }
    cache.prefill(k, v);

    Tensor<Half> kd, vd;
    cache.dequantizeAll(kd, vd);
    ASSERT_EQ(kd.dim(0), k.dim(0));
    const float step = 9.0f / static_cast<float>((1 << bits) - 1);
    for (std::size_t t = 0; t < k.dim(0); t++) {
        for (std::size_t d = 0; d < 64; d++) {
            EXPECT_NEAR(kd.at(t, d).toFloat(), k.at(t, d).toFloat(), step);
            EXPECT_NEAR(vd.at(t, d).toFloat(), v.at(t, d).toFloat(), step);
        }
    }
    // Residual rows are stored losslessly.
    for (std::size_t t = static_cast<std::size_t>(nr); t < k.dim(0); t++)
        for (std::size_t d = 0; d < 64; d++)
            EXPECT_EQ(kd.at(t, d).bits(), k.at(t, d).bits());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedCacheP,
    ::testing::Values(std::pair{4, quant::Granularity::ChannelWise},
                      std::pair{4, quant::Granularity::TensorWise},
                      std::pair{2, quant::Granularity::ChannelWise},
                      std::pair{2, quant::Granularity::TensorWise}));

TEST(PackedCache, MemorySmallerThanFp16)
{
    quant::QuantConfig qc;
    qc.bits = 4;
    qc.group_size = 32;
    WarpTiling tiling;
    kv::PackedHeadCache packed(128, qc, tiling);
    kv::Fp16HeadCache fp16(128);
    Rng rng(63);
    for (int t = 0; t < 1024; t++) {
        std::vector<Half> k(128), v(128);
        for (int d = 0; d < 128; d++) {
            k[static_cast<std::size_t>(d)] = Half(rng.normal());
            v[static_cast<std::size_t>(d)] = Half(rng.normal());
        }
        packed.append(k, v);
        fp16.append(k, v);
    }
    EXPECT_LT(packed.deviceBytes(), fp16.deviceBytes() * 0.5);
    EXPECT_GT(packed.metadataBytes(), 0.0);
}

// -------------------------------------------- residual kernel induction ----

TEST(ResidualKernel, WarpPackMatchesCanonicalPackBytesKC4)
{
    // THE layout-induction theorem, executable: per-lane fragment packing
    // produces byte-identical units to the canonical induced pack.
    quant::QuantConfig qc;
    qc.bits = 4;
    qc.key_granularity = quant::Granularity::ChannelWise;
    qc.group_size = 32;
    WarpTiling tiling;
    const int nr = residualBlockSize(tiling, qc.bits);
    const int d = 64;
    layout::InducedLayout klay(tiling, qc.bits, d, nr);
    layout::InducedLayout vlay(tiling, qc.bits, nr, d);

    Rng rng(71);
    Tensor<Half> kb({static_cast<std::size_t>(nr), static_cast<std::size_t>(d)});
    Tensor<Half> vb({static_cast<std::size_t>(nr), static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < kb.numel(); i++) {
        kb[i] = Half(rng.normal());
        vb[i] = Half(rng.normal());
    }

    kv::PackedBlock canon_k, canon_v;
    kv::packBlock(kb, vb, qc, klay, vlay, canon_k, canon_v);

    const kv::PackedBlock warp_k =
        core::residualKernelPackKeys(kb, qc, klay);
    const kv::PackedBlock warp_v =
        core::residualKernelPackValues(vb, qc, vlay);

    ASSERT_EQ(warp_k.units.size(), canon_k.units.size());
    EXPECT_EQ(warp_k.units, canon_k.units);
    EXPECT_EQ(warp_v.units, canon_v.units);
    for (std::size_t i = 0; i < canon_k.params.numel(); i++)
        EXPECT_EQ(warp_k.params[i].toWord(), canon_k.params[i].toWord());
}

TEST(ResidualKernel, WarpPackMatchesCanonicalPackBytesKT2)
{
    quant::QuantConfig qc;
    qc.bits = 2;
    qc.key_granularity = quant::Granularity::TensorWise;
    qc.group_size = 32;
    WarpTiling tiling;
    const int nr = residualBlockSize(tiling, qc.bits);
    const int d = 64;
    layout::InducedLayout klay(tiling, qc.bits, d, nr);
    layout::InducedLayout vlay(tiling, qc.bits, nr, d);

    Rng rng(72);
    Tensor<Half> kb({static_cast<std::size_t>(nr), static_cast<std::size_t>(d)});
    Tensor<Half> vb({static_cast<std::size_t>(nr), static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < kb.numel(); i++) {
        kb[i] = Half(rng.normal());
        vb[i] = Half(rng.normal());
    }
    kv::PackedBlock canon_k, canon_v;
    kv::packBlock(kb, vb, qc, klay, vlay, canon_k, canon_v);
    EXPECT_EQ(core::residualKernelPackKeys(kb, qc, klay).units,
              canon_k.units);
    EXPECT_EQ(core::residualKernelPackValues(vb, qc, vlay).units,
              canon_v.units);
}

TEST(ResidualKernel, WarpMinMaxMatchesDirect)
{
    sim::WarpVar<float> mn{}, mx{};
    Rng rng(73);
    for (int lane = 0; lane < sim::kWarpSize; lane++) {
        mn[static_cast<std::size_t>(lane)] = rng.normal();
        mx[static_cast<std::size_t>(lane)] =
            mn[static_cast<std::size_t>(lane)];
    }
    sim::WarpVar<float> rmin{}, rmax{};
    core::warpGroupMinMax(mn, mx, {4, 8, 16}, rmin, rmax);
    // Masks {4, 8, 16} reduce across the ldmatrix column groups: lanes
    // sharing (lane % 4) end with the group's min/max.
    for (int t = 0; t < 4; t++) {
        float want_min = 1e30f, want_max = -1e30f;
        for (int g = 0; g < 8; g++) {
            want_min = std::min(want_min,
                                mn[static_cast<std::size_t>(g * 4 + t)]);
            want_max = std::max(want_max,
                                mx[static_cast<std::size_t>(g * 4 + t)]);
        }
        for (int g = 0; g < 8; g++) {
            EXPECT_EQ(rmin[static_cast<std::size_t>(g * 4 + t)], want_min);
            EXPECT_EQ(rmax[static_cast<std::size_t>(g * 4 + t)], want_max);
        }
    }
}

// -------------------------------------------------------------- paging ----

TEST(PageAllocator, AllocateReleaseCycle)
{
    kv::PageAllocator alloc(4);
    EXPECT_EQ(alloc.freePages(), 4);
    const auto p0 = alloc.allocate();
    ASSERT_TRUE(p0.has_value());
    EXPECT_EQ(alloc.freePages(), 3);
    alloc.release(*p0);
    EXPECT_EQ(alloc.freePages(), 4);
}

TEST(PageAllocator, ExhaustionReturnsNullopt)
{
    kv::PageAllocator alloc(2);
    EXPECT_TRUE(alloc.allocate().has_value());
    EXPECT_TRUE(alloc.allocate().has_value());
    EXPECT_FALSE(alloc.allocate().has_value());
}

TEST(PageAllocator, DoubleFreePanics)
{
    kv::PageAllocator alloc(2);
    const auto p = alloc.allocate();
    alloc.release(*p);
    EXPECT_DEATH(alloc.release(*p), "double free");
}

TEST(PagedCache, GatherReconstructsSequences)
{
    kv::PagedHeadCache cache(8, 4, 16); // d=8, 4 tokens/page, 16 pages
    const int s0 = cache.addSequence();
    const int s1 = cache.addSequence();
    for (int t = 0; t < 10; t++) {
        std::vector<Half> k(8, Half(static_cast<float>(t)));
        std::vector<Half> v(8, Half(static_cast<float>(t) * 2));
        ASSERT_TRUE(cache.append(s0, k, v));
        if (t < 5) {
            std::vector<Half> k1(8, Half(static_cast<float>(100 + t)));
            ASSERT_TRUE(cache.append(s1, k1, v));
        }
    }
    EXPECT_EQ(cache.length(s0), 10);
    EXPECT_EQ(cache.length(s1), 5);
    EXPECT_EQ(cache.pageTable(s0).size(), 3u); // ceil(10/4)
    const Tensor<Half> k0 = cache.gatherKeys(s0);
    for (int t = 0; t < 10; t++)
        EXPECT_EQ(k0.at(static_cast<std::size_t>(t), 0).toFloat(),
                  static_cast<float>(t));
    const Tensor<Half> k1 = cache.gatherKeys(s1);
    EXPECT_EQ(k1.at(4, 0).toFloat(), 104.0f);
}

TEST(PagedCache, OomWhenPoolExhausted)
{
    kv::PagedHeadCache cache(4, 2, 2); // only 4 tokens total
    const int s = cache.addSequence();
    std::vector<Half> k(4), v(4);
    EXPECT_TRUE(cache.append(s, k, v));
    EXPECT_TRUE(cache.append(s, k, v));
    EXPECT_TRUE(cache.append(s, k, v));
    EXPECT_TRUE(cache.append(s, k, v));
    EXPECT_FALSE(cache.append(s, k, v)); // fifth token needs a third page
}

TEST(PagedCache, RemoveSequenceRecyclesPages)
{
    kv::PagedHeadCache cache(4, 2, 2);
    const int s = cache.addSequence();
    std::vector<Half> k(4), v(4);
    cache.append(s, k, v);
    cache.append(s, k, v);
    cache.append(s, k, v);
    EXPECT_EQ(cache.freePages(), 0);
    cache.removeSequence(s);
    EXPECT_EQ(cache.freePages(), 2);
    const int s2 = cache.addSequence();
    EXPECT_EQ(s2, s); // slot reuse
    EXPECT_TRUE(cache.append(s2, k, v));
}

} // namespace
} // namespace bitdec
