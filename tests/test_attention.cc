/**
 * @file
 * Tests for the attention baselines: reference, FlashDecoding, KIVI,
 * QServe/Atom — functional correctness and timing-model behaviour.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "attention/flash_decoding.h"
#include "attention/kivi_baseline.h"
#include "attention/qserve_baseline.h"
#include "attention/reference.h"
#include "attention/workloads.h"
#include "common/rng.h"
#include "gpusim/arch.h"

namespace bitdec::attn {
namespace {

/** Fills a tensor with unit-ish normal values. */
void
randomize(Tensor<Half>& t, Rng& rng, float stddev = 1.0f)
{
    for (std::size_t i = 0; i < t.numel(); i++)
        t[i] = Half(rng.normal(0.f, stddev));
}

// ----------------------------------------------------------- reference ----

TEST(Reference, UniformKeysGiveMeanOfValues)
{
    // Identical keys -> uniform attention -> output = mean of values.
    Tensor<Half> q({1, 4}), k({8, 4}), v({8, 4});
    q.fill(Half(1.0f));
    k.fill(Half(0.5f));
    for (std::size_t t = 0; t < 8; t++)
        for (std::size_t c = 0; c < 4; c++)
            v.at(t, c) = Half(static_cast<float>(t));
    const Tensor<float> out = referenceAttention(q, k, v, 0.5f);
    for (std::size_t c = 0; c < 4; c++)
        EXPECT_NEAR(out.at(0, c), 3.5f, 1e-4f);
}

TEST(Reference, SharpKeyRetrievesItsValue)
{
    // One key matches the query strongly -> output ~= its value row.
    Tensor<Half> q({1, 8}), k({16, 8}), v({16, 8});
    Rng rng(81);
    randomize(k, rng, 0.05f);
    for (std::size_t c = 0; c < 8; c++) {
        q.at(0, c) = Half(1.0f);
        k.at(5, c) = Half(4.0f); // the needle
    }
    for (std::size_t t = 0; t < 16; t++)
        for (std::size_t c = 0; c < 8; c++)
            v.at(t, c) = Half(t == 5 ? 1.0f : 0.0f);
    const Tensor<float> out = referenceAttention(q, k, v, 1.0f);
    for (std::size_t c = 0; c < 8; c++)
        EXPECT_GT(out.at(0, c), 0.99f);
}

TEST(OnlineSoftmax, IncrementalMatchesOneShot)
{
    Rng rng(82);
    const int len = 64, d = 8;
    Tensor<Half> q({1, static_cast<std::size_t>(d)});
    Tensor<Half> k({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> v({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    randomize(q, rng);
    randomize(k, rng);
    randomize(v, rng);

    const Tensor<float> want = referenceAttention(q, k, v, 0.3f);

    OnlineSoftmaxRow row(d);
    for (int b0 = 0; b0 < len; b0 += 16) {
        std::vector<float> scores(16);
        for (int t = b0; t < b0 + 16; t++) {
            float s = 0;
            for (int c = 0; c < d; c++)
                s += q.at(0, static_cast<std::size_t>(c)).toFloat() *
                     k.at(static_cast<std::size_t>(t),
                          static_cast<std::size_t>(c))
                         .toFloat();
            scores[static_cast<std::size_t>(t - b0)] = s * 0.3f;
        }
        row.update(scores, v, b0);
    }
    const auto got = row.finalize();
    for (int c = 0; c < d; c++)
        EXPECT_NEAR(got[static_cast<std::size_t>(c)],
                    want.at(0, static_cast<std::size_t>(c)), 1e-4f);
}

TEST(OnlineSoftmax, MergeIsOrderInvariant)
{
    Rng rng(83);
    const int d = 4;
    OnlineSoftmaxRow a(d), b(d);
    Tensor<Half> v({8, static_cast<std::size_t>(d)});
    randomize(v, rng);
    a.update({1.f, 2.f, 0.5f}, v, 0);
    b.update({3.f, -1.f}, v, 3);
    const auto ab = mergeSoftmaxRows(a, b).finalize();
    const auto ba = mergeSoftmaxRows(b, a).finalize();
    for (int c = 0; c < d; c++)
        EXPECT_NEAR(ab[static_cast<std::size_t>(c)],
                    ba[static_cast<std::size_t>(c)], 1e-6f);
}

// ------------------------------------------------------- flash decoding ----

class FlashSplitsP : public ::testing::TestWithParam<int>
{
};

TEST_P(FlashSplitsP, MatchesReferenceForAnySplitCount)
{
    const int splits = GetParam();
    Rng rng(84);
    const int len = 300, d = 32, gq = 4; // non-multiple of split size
    kv::Fp16HeadCache cache(d);
    Tensor<Half> k({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> v({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    randomize(k, rng);
    randomize(v, rng);
    for (int t = 0; t < len; t++) {
        std::vector<Half> kt(static_cast<std::size_t>(d)),
            vt(static_cast<std::size_t>(d));
        for (int c = 0; c < d; c++) {
            kt[static_cast<std::size_t>(c)] =
                k.at(static_cast<std::size_t>(t), static_cast<std::size_t>(c));
            vt[static_cast<std::size_t>(c)] =
                v.at(static_cast<std::size_t>(t), static_cast<std::size_t>(c));
        }
        cache.append(kt, vt);
    }
    Tensor<Half> q({static_cast<std::size_t>(gq), static_cast<std::size_t>(d)});
    randomize(q, rng);

    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const Tensor<float> want = referenceAttention(q, k, v, scale);
    const Tensor<float> got = flashDecodingAttention(q, cache, scale, splits);
    EXPECT_LT(maxAbsDiff(got, want), 1e-3f) << "splits=" << splits;
}

INSTANTIATE_TEST_SUITE_P(Splits, FlashSplitsP, ::testing::Values(1, 2, 3, 8));

// ----------------------------------------------------- KIVI functional ----

TEST(Kivi, AttentionWithinQuantizationBound)
{
    Rng rng(85);
    const int len = 128, d = 64, gq = 2;
    Tensor<Half> k({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> v({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> q({static_cast<std::size_t>(gq), static_cast<std::size_t>(d)});
    randomize(k, rng);
    randomize(v, rng);
    randomize(q, rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    const auto kq =
        quant::quantizeMatrix(k, 4, quant::Granularity::ChannelWise, 32);
    const auto vq =
        quant::quantizeMatrix(v, 4, quant::Granularity::TensorWise, 32);
    const Tensor<float> got = kiviAttention(q, kq, vq, scale);
    const Tensor<float> want = referenceAttention(q, k, v, scale);
    EXPECT_LT(maxAbsDiff(got, want), 0.35f); // 4-bit error bound
    EXPECT_GT(maxAbsDiff(got, want), 0.0f);
}

TEST(QServe, FusedMatchesNonFusedMath)
{
    // The fused CUDA-core kernel computes the same function as KIVI's
    // separated kernels — fusion changes performance, not semantics.
    Rng rng(86);
    const int len = 96, d = 32;
    Tensor<Half> k({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> v({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> q({1, static_cast<std::size_t>(d)});
    randomize(k, rng);
    randomize(v, rng);
    randomize(q, rng);
    const auto kq =
        quant::quantizeMatrix(k, 4, quant::Granularity::TensorWise, 32);
    const auto vq =
        quant::quantizeMatrix(v, 4, quant::Granularity::TensorWise, 32);
    const Tensor<float> fused = cudaCoreFusedAttention(q, kq, vq, 0.2f);
    const Tensor<float> separated = kiviAttention(q, kq, vq, 0.2f);
    EXPECT_LT(maxAbsDiff(fused, separated), 1e-3f);
}

TEST(Atom, RejectsGqa)
{
    DecodeShape mha;
    mha.num_q_heads = 32;
    mha.num_kv_heads = 32;
    EXPECT_TRUE(cudaCoreSystemSupports(CudaCoreSystem::Atom, mha));
    DecodeShape gqa;
    gqa.num_q_heads = 32;
    gqa.num_kv_heads = 8;
    EXPECT_FALSE(cudaCoreSystemSupports(CudaCoreSystem::Atom, gqa));
    EXPECT_TRUE(cudaCoreSystemSupports(CudaCoreSystem::QServe, gqa));
}

// ------------------------------------------------------------ workloads ----

TEST(Workloads, ByteAccounting)
{
    DecodeShape s;
    s.batch = 2;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.head_dim = 128;
    s.seq_len = 1024;
    EXPECT_EQ(s.groupSize(), 4);
    EXPECT_EQ(s.fp16KvBytes(), 2.0 * 2 * 8 * 1024 * 128 * 2);
    EXPECT_EQ(s.packedKvBytes(4), s.fp16KvBytes() / 4);
    EXPECT_EQ(s.packedKvBytes(2), s.fp16KvBytes() / 8);
    quant::QuantConfig qc;
    qc.bits = 4;
    qc.group_size = 32;
    EXPECT_GT(s.metadataBytes(qc), 0.0);
    EXPECT_LT(s.metadataBytes(qc), s.packedKvBytes(4));
}

TEST(Workloads, SplitsFillTheGpu)
{
    DecodeShape s;
    s.batch = 1;
    s.num_kv_heads = 8;
    s.seq_len = 131072;
    const int splits = chooseNumSplits(sim::archA100(), s);
    EXPECT_GE(splits * s.batch * s.num_kv_heads, sim::archA100().num_sms / 2);
    s.batch = 64;
    EXPECT_EQ(chooseNumSplits(sim::archA100(), s), 1);
}

TEST(Workloads, RereadFactorBehaviour)
{
    const auto& a100 = sim::archA100();
    // Tiny working set: L2 absorbs re-reads.
    EXPECT_NEAR(l2RereadFactor(a100, 1e6, 4), 1.0, 1e-9);
    // Huge working set: every pass hits DRAM.
    EXPECT_NEAR(l2RereadFactor(a100, 1e12, 4), 4.0, 0.01);
    // MHA never re-reads.
    EXPECT_EQ(l2RereadFactor(a100, 1e12, 1), 1.0);
}

TEST(Workloads, TcFlopsPadToM16)
{
    DecodeShape mha;
    mha.num_q_heads = 32;
    mha.num_kv_heads = 32; // gq = 1: tiles mostly padding
    DecodeShape gqa = mha;
    gqa.num_kv_heads = 8;  // gq = 4
    // Same issued FLOPs per kv head; MHA has 4x the kv heads.
    EXPECT_NEAR(tcFlopsIssued(mha), 4.0 * tcFlopsIssued(gqa), 1.0);
}

// --------------------------------------------------------- timing model ----

TEST(Timing, FlashDecodingBandwidthBound)
{
    DecodeShape s;
    s.batch = 1;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 131072;
    const auto t = flashDecodingTime(sim::archA100(), s, 2);
    const double ideal = s.fp16KvBytes() / sim::archA100().dramBytesPerSec();
    EXPECT_GT(t.total_s, ideal * 0.9);
    EXPECT_LT(t.total_s, ideal * 2.0); // long-context decode ~ BW bound
}

TEST(Timing, KiviSlowerThanFusedFp16AtShortContext)
{
    // Non-fused launches dominate at short context (Fig. 10 left edges).
    DecodeShape s;
    s.batch = 1;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 1024;
    const auto fd = flashDecodingTime(sim::archA100(), s, 2);
    const auto kivi = kiviTime(sim::archA100(), s, 4);
    EXPECT_GT(kivi.total_s, fd.total_s);
}

TEST(Timing, KiviGqaPenalty)
{
    DecodeShape gqa;
    gqa.batch = 8;
    gqa.num_q_heads = 32;
    gqa.num_kv_heads = 8;
    gqa.seq_len = 32768;
    DecodeShape mha = gqa;
    mha.num_kv_heads = 32;
    const double t_gqa = kiviTime(sim::archA100(), gqa, 4).total_s;
    const double t_mha = kiviTime(sim::archA100(), mha, 4).total_s;
    // MHA moves 4x the KV bytes, yet KIVI's GQA re-reads erase most of
    // the advantage: the ratio stays well below the 4x byte ratio.
    EXPECT_LT(t_mha / t_gqa, 2.5);
}

TEST(Timing, QServeWinsMhaLosesGqa)
{
    const auto& a100 = sim::archA100();
    DecodeShape mha;
    mha.batch = 8;
    mha.num_q_heads = 32;
    mha.num_kv_heads = 32;
    mha.seq_len = 32768;
    mha.scenario = Scenario::Pages;
    const double fd_mha = flashDecodingTime(a100, mha, 2).total_s;
    const double qs_mha =
        cudaCoreFusedTime(a100, mha, CudaCoreSystem::QServe, 4).total_s;
    EXPECT_LT(qs_mha, fd_mha); // 4-bit pays off under MHA

    DecodeShape gqa = mha;
    gqa.num_kv_heads = 8;
    const double fd_gqa = flashDecodingTime(a100, gqa, 2).total_s;
    const double qs_gqa =
        cudaCoreFusedTime(a100, gqa, CudaCoreSystem::QServe, 4).total_s;
    // Under GQA the per-query-head GEMV re-reads kill the advantage.
    EXPECT_GT(qs_gqa / fd_gqa, 0.65);
    EXPECT_GT((fd_mha / qs_mha) / (fd_gqa / qs_gqa), 1.5);
}

TEST(Timing, FlashV3FasterOnHopper)
{
    DecodeShape s;
    s.batch = 16;
    s.num_q_heads = 128;
    s.num_kv_heads = 32;
    s.seq_len = 32768;
    const auto& h100 = sim::archH100();
    const double v2 = flashDecodingTime(h100, s, 2).total_s;
    const double v3 = flashDecodingTime(h100, s, 3).total_s;
    EXPECT_LT(v3, v2);
}

TEST(Timing, PagesAddIndirectionOverhead)
{
    DecodeShape s;
    s.batch = 16;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 8192;
    DecodeShape p = s;
    p.scenario = Scenario::Pages;
    const double contiguous = flashDecodingTime(sim::archA100(), s, 2).total_s;
    const double paged = flashDecodingTime(sim::archA100(), p, 2).total_s;
    EXPECT_GE(paged, contiguous);
    EXPECT_LT(paged, contiguous * 1.2); // small, not catastrophic
}

} // namespace
} // namespace bitdec::attn
