/**
 * @file
 * Tests for the tiered KV-cache pool: residency bitmaps, host/disk
 * offload round-trips, shared-page pinning, prefetch lookahead and
 * tier-capacity accounting (spills, LRU drops) under churn.
 */
#include <gtest/gtest.h>

#include <vector>

#include "kvcache/paged_cache.h"
#include "kvcache/residency.h"
#include "kvcache/tiered_cache.h"

namespace bitdec {
namespace {

using kv::PagedHeadCache;
using kv::ResidencyBitmap;
using kv::TieredConfig;
using kv::TieredPagePool;
using kv::TierSpec;

std::vector<Half>
tokenVec(int d, float value)
{
    return std::vector<Half>(static_cast<std::size_t>(d), Half(value));
}

// ------------------------------------------------- residency bitmap ----

TEST(ResidencyBitmap, SetClearTestAndCompleteness)
{
    ResidencyBitmap bm;
    EXPECT_EQ(bm.sizeInBits(), 0);
    EXPECT_TRUE(bm.isComplete()); // vacuously: nothing tracked

    bm.resizeBits(10);
    EXPECT_FALSE(bm.isComplete()); // fresh pages start non-resident
    for (int i = 0; i < 10; i++)
        EXPECT_FALSE(bm.testBit(i));

    for (int i = 0; i < 10; i++)
        bm.setBit(i);
    EXPECT_TRUE(bm.isComplete());
    EXPECT_EQ(bm.countSet(), 10);

    bm.clearBit(7);
    EXPECT_FALSE(bm.isComplete());
    EXPECT_FALSE(bm.testBit(7));
    EXPECT_TRUE(bm.testBit(6));
    EXPECT_EQ(bm.countSet(), 9);
}

TEST(ResidencyBitmap, RangeQueriesAreInclusive)
{
    ResidencyBitmap bm;
    bm.resizeBits(16);
    for (int i = 4; i <= 11; i++)
        bm.setBit(i);
    EXPECT_FALSE(bm.isAnythingEmptyInRng(4, 11));
    EXPECT_TRUE(bm.isAnythingEmptyInRng(3, 11)); // bit 3 clear
    EXPECT_TRUE(bm.isAnythingEmptyInRng(4, 12)); // bit 12 clear
    EXPECT_EQ(bm.countSetInRng(4, 11), 8);
    EXPECT_EQ(bm.countSetInRng(0, 15), 8);
    EXPECT_EQ(bm.countSetInRng(5, 5), 1);
    EXPECT_EQ(bm.countSetInRng(0, 3), 0);
}

TEST(ResidencyBitmap, RegrowClearsStaleTailBits)
{
    // Shrinking leaves the old bits in the byte buffer; growing back must
    // not resurrect them as "resident".
    ResidencyBitmap bm;
    bm.resizeBits(8);
    for (int i = 0; i < 8; i++)
        bm.setBit(i);
    bm.resizeBits(3);
    EXPECT_EQ(bm.sizeInBits(), 3);
    EXPECT_TRUE(bm.isComplete());
    bm.resizeBits(8);
    EXPECT_EQ(bm.countSet(), 3);
    for (int i = 3; i < 8; i++)
        EXPECT_FALSE(bm.testBit(i)) << "stale bit " << i << " resurrected";
    EXPECT_FALSE(bm.isComplete());
}

TEST(ResidencyBitmap, TouchBookkeeping)
{
    ResidencyBitmap bm;
    EXPECT_EQ(bm.accessCount(), 0);
    EXPECT_EQ(bm.accessTime(), 0.0);
    bm.touch(1.5);
    bm.touch(4.25);
    EXPECT_EQ(bm.accessCount(), 2);
    EXPECT_EQ(bm.accessTime(), 4.25);
}

// ---------------------------------------------------- tiered pool ------

/** One tier of exactly @p pages pages (1 GB "pages" make the math exact). */
TieredConfig
tinyTiers(int t0_pages, int t1_pages = 0, int prefetch = 0)
{
    TieredConfig cfg;
    cfg.bytes_per_page = 1e9; // 1 page == 1 GB: capacity_gb counts pages
    cfg.prefetch_pages = prefetch;
    TierSpec host;
    host.name = "host";
    host.capacity_gb = t0_pages;
    cfg.tiers.push_back(host);
    if (t1_pages > 0) {
        TierSpec disk;
        disk.name = "disk";
        disk.capacity_gb = t1_pages;
        disk.bandwidth_gbps = 4.0;
        disk.latency_s = 100e-6;
        cfg.tiers.push_back(disk);
    }
    return cfg;
}

/** Appends @p tokens tokens with per-position key values to @p seq. */
void
fillSeq(PagedHeadCache& cache, int seq, int tokens, float base = 0.0f)
{
    for (int t = 0; t < tokens; t++)
        ASSERT_TRUE(cache.append(seq, tokenVec(cache.headDim(), base + t),
                                 tokenVec(cache.headDim(), base + t + 0.5f)));
}

TEST(TieredPool, DisabledWithNoTiers)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, TieredConfig{});
    EXPECT_FALSE(pool.enabled());
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 4);
    EXPECT_EQ(pool.offloadSequence(seq, 0.0, {}).moved, 0);
    EXPECT_FALSE(pool.tracked(seq));
    EXPECT_TRUE(pool.fullyResident(seq));
}

TEST(TieredPool, OffloadRestoreRoundTripPreservesPayload)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, tinyTiers(8));
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8); // 4 pages, every token distinct
    const auto before = cache.gatherKeys(seq);
    ASSERT_EQ(cache.freePages(), 4);

    const kv::OffloadResult off = pool.offloadSequence(seq, 1.0, {});
    EXPECT_EQ(off.moved, 4);
    EXPECT_EQ(off.dropped, 0);
    EXPECT_GT(off.writeback_s, 0);
    EXPECT_EQ(off.status, kv::CacheStatus::Ok);
    EXPECT_EQ(cache.freePages(), 8); // hot pages all returned
    EXPECT_EQ(cache.missingPages(seq), 4);
    EXPECT_EQ(cache.length(seq), 8); // the sequence itself stays live
    EXPECT_EQ(pool.coldPages(seq), 4);
    EXPECT_EQ(pool.tierUsedPages(0), 4);
    EXPECT_FALSE(pool.fullyResident(seq));
    EXPECT_TRUE(pool.isAnythingEmptyInRng(seq, 0, 3));
    EXPECT_EQ(pool.stats().offloaded_pages, 4);

    const kv::FetchResult fr = pool.fetchRange(seq, 0, 7, 2.0);
    EXPECT_EQ(fr.restored, 4);
    EXPECT_GT(fr.latency_s, 0);
    EXPECT_EQ(fr.status, kv::CacheStatus::Ok);
    EXPECT_EQ(cache.missingPages(seq), 0);
    EXPECT_EQ(pool.tierUsedPages(0), 0);
    EXPECT_TRUE(pool.fullyResident(seq));
    EXPECT_FALSE(pool.isAnythingEmptyInRng(seq, 0, 3));
    EXPECT_EQ(pool.stats().fetched_pages, 4);

    // Byte-identical payload after the round trip.
    const auto after = cache.gatherKeys(seq);
    ASSERT_EQ(after.dim(0), before.dim(0));
    for (std::size_t t = 0; t < after.dim(0); t++)
        for (std::size_t d = 0; d < after.dim(1); d++)
            EXPECT_EQ(after.at(t, d).bits(), before.at(t, d).bits());
}

TEST(TieredPool, SharedPrefixPagesPinnedHot)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, tinyTiers(8));
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 6); // 3 pages
    ASSERT_TRUE(cache.publishPrefix(0xF00Dull, seq, 4)); // pins pages 0, 1

    // Only the exclusively-owned page 2 may cross tiers.
    EXPECT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 1);
    EXPECT_EQ(cache.missingPages(seq), 1);
    EXPECT_TRUE(cache.pageResident(seq, 0));
    EXPECT_TRUE(cache.pageResident(seq, 1));
    EXPECT_FALSE(cache.pageResident(seq, 2));
    // The prefix is still mappable by a new consumer.
    const int consumer = cache.addSequenceWithPrefix(0xF00Dull);
    EXPECT_EQ(cache.length(consumer), 4);
}

TEST(TieredPool, CowPartialPagePinnedUntilDivergence)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, tinyTiers(8));
    const int pub = cache.addSequence();
    fillSeq(cache, pub, 3); // pages [full, partial]
    ASSERT_TRUE(cache.publishPrefix(0xBEEFull, pub, 3));
    const int consumer = cache.addSequenceWithPrefix(0xBEEFull);

    // Every consumer page is shared (prefix index + publisher): nothing
    // to offload, the partial page in particular is never torn.
    EXPECT_EQ(pool.offloadSequence(consumer, 1.0, {}).moved, 0);
    EXPECT_EQ(cache.missingPages(consumer), 0);

    // Divergence copies the partial page; the private copy may offload,
    // the still-shared full page stays hot.
    ASSERT_TRUE(cache.append(consumer, tokenVec(4, 9.0f), tokenVec(4, 9.5f)));
    ASSERT_GT(cache.cowCopies(), 0);
    EXPECT_EQ(pool.offloadSequence(consumer, 2.0, {}).moved, 1);
    EXPECT_TRUE(cache.pageResident(consumer, 0));
    EXPECT_FALSE(cache.pageResident(consumer, 1));
    // The publisher's view of the shared partial page is untouched.
    EXPECT_EQ(cache.tokenKey(pub, 2)[0].toFloat(), 2.0f);
}

TEST(TieredPool, PrefetchRestoresNearestColdPagesOnce)
{
    PagedHeadCache cache(4, 2, 16);
    TieredPagePool pool(cache, tinyTiers(8, 0, /*prefetch=*/2));
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 16); // 8 pages
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 8);

    // Demand = page 0 (tokens 0..1); lookahead fetches the 2 nearest
    // cold pages beyond the range.
    EXPECT_EQ(pool.fetchRange(seq, 0, 1, 2.0).restored, 3);
    EXPECT_TRUE(cache.pageResident(seq, 0));
    EXPECT_TRUE(cache.pageResident(seq, 1));
    EXPECT_TRUE(cache.pageResident(seq, 2));
    EXPECT_FALSE(cache.pageResident(seq, 3));
    EXPECT_EQ(pool.stats().fetched_pages, 1);
    EXPECT_EQ(pool.stats().prefetched_pages, 2);

    // First real read of the prefetched pages counts a hit — once.
    pool.touchRange(seq, 0, 5, 3.0); // pages 0..2
    EXPECT_EQ(pool.stats().prefetch_hits, 2);
    pool.touchRange(seq, 0, 5, 4.0);
    EXPECT_EQ(pool.stats().prefetch_hits, 2);

    // The next demand fetch prefetches past the already-hot window.
    EXPECT_EQ(pool.fetchRange(seq, 6, 7, 5.0).restored, 3); // page 3 + pages 4, 5...
    EXPECT_TRUE(cache.pageResident(seq, 3));
}

TEST(TieredPool, PrefetchLooksBehindAResumedAppendPoint)
{
    // A resumed prefill demands only the partial page it appends into;
    // the cold pages BEHIND it must still be prefetched.
    PagedHeadCache cache(4, 2, 16);
    TieredPagePool pool(cache, tinyTiers(8, 0, /*prefetch=*/2));
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 12); // 6 pages
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 6);

    // Demand the last page only: lookahead has nothing ahead, so it
    // walks backwards from the range.
    EXPECT_EQ(pool.fetchRange(seq, 10, 11, 2.0).restored, 3);
    EXPECT_TRUE(cache.pageResident(seq, 5));
    EXPECT_TRUE(cache.pageResident(seq, 4));
    EXPECT_TRUE(cache.pageResident(seq, 3));
    EXPECT_FALSE(cache.pageResident(seq, 2));
}

TEST(TieredPool, FetchStopsOnHotOomAndResumesAfterFree)
{
    PagedHeadCache cache(4, 2, 4);
    TieredPagePool pool(cache, tinyTiers(8));
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8); // whole pool
    const auto before = cache.gatherKeys(seq);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);

    // A hog takes 3 of the 4 freed pages: only one restore fits.
    const int hog = cache.addSequence();
    fillSeq(cache, hog, 6, 100.0f);
    EXPECT_EQ(pool.fetchRange(seq, 0, 7, 2.0).restored, 1);
    EXPECT_EQ(cache.missingPages(seq), 3);

    cache.removeSequence(hog);
    EXPECT_EQ(pool.fetchRange(seq, 0, 7, 3.0).restored, 3);
    EXPECT_EQ(cache.missingPages(seq), 0);
    const auto after = cache.gatherKeys(seq);
    for (std::size_t t = 0; t < after.dim(0); t++)
        EXPECT_EQ(after.at(t, 0).bits(), before.at(t, 0).bits());
}

TEST(TieredPool, SpillsHostToDiskWhenFastTierFills)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, tinyTiers(2, 2));
    EXPECT_EQ(pool.numTiers(), 2);
    EXPECT_EQ(pool.tierCapacityPages(0), 2);
    EXPECT_EQ(pool.tierCapacityPages(1), 2);

    const int a = cache.addSequence();
    fillSeq(cache, a, 4); // 2 pages
    const int b = cache.addSequence();
    fillSeq(cache, b, 4, 10.0f);

    ASSERT_EQ(pool.offloadSequence(a, 1.0, {}).moved, 2);
    EXPECT_EQ(pool.tierUsedPages(0), 2); // host full
    ASSERT_EQ(pool.offloadSequence(b, 2.0, {}).moved, 2);
    // The colder sequence's pages spilled down; the hotter landed on host.
    EXPECT_GT(pool.stats().spilled_pages, 0);
    EXPECT_EQ(pool.tierUsedPages(0) + pool.tierUsedPages(1), 4);
    EXPECT_LE(pool.tierUsedPages(0), pool.tierCapacityPages(0));
    EXPECT_LE(pool.tierUsedPages(1), pool.tierCapacityPages(1));
    EXPECT_EQ(pool.stats().lru_drops, 0); // capacity sufficed: no drops

    // Both survive the shuffle byte-identically.
    EXPECT_EQ(pool.fetchRange(b, 0, 3, 3.0).restored, 2);
    EXPECT_EQ(cache.tokenKey(b, 0)[0].toFloat(), 10.0f);
    EXPECT_EQ(pool.fetchRange(a, 0, 3, 4.0).restored, 2);
    EXPECT_EQ(cache.tokenKey(a, 3)[0].toFloat(), 3.0f);
    EXPECT_EQ(pool.tierUsedPages(0) + pool.tierUsedPages(1), 0);
}

TEST(TieredPool, LruDropWhenEveryTierIsFull)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, tinyTiers(2, 2));
    const int a = cache.addSequence();
    fillSeq(cache, a, 4);
    const int b = cache.addSequence();
    fillSeq(cache, b, 4, 10.0f);
    const int c = cache.addSequence();
    fillSeq(cache, c, 4, 20.0f);

    ASSERT_EQ(pool.offloadSequence(a, 1.0, {}).moved, 2);
    ASSERT_EQ(pool.offloadSequence(b, 2.0, {}).moved, 2);
    // Both tiers full: offloading c must drop the LRU victim (a).
    ASSERT_EQ(pool.offloadSequence(c, 3.0, {}).moved, 2);
    EXPECT_TRUE(pool.contentLost(a));
    EXPECT_FALSE(pool.contentLost(b));
    EXPECT_FALSE(pool.contentLost(c));
    EXPECT_EQ(pool.stats().lru_drops, 1);
    EXPECT_EQ(pool.stats().dropped_pages, 2);
    EXPECT_EQ(pool.coldPages(a), 0);
    // A lost sequence cannot fetch: the engine recomputes it instead,
    // told so by the ContentLost status (not a silent zero).
    const kv::FetchResult lost = pool.fetchRange(a, 0, 3, 4.0);
    EXPECT_EQ(lost.restored, 0);
    EXPECT_EQ(lost.status, kv::CacheStatus::ContentLost);
    // Accounting stays exact: survivors' pages fill the tiers.
    EXPECT_EQ(pool.tierUsedPages(0) + pool.tierUsedPages(1),
              pool.coldPages(b) + pool.coldPages(c));
    EXPECT_LE(pool.tierUsedPages(0), pool.tierCapacityPages(0));
    EXPECT_LE(pool.tierUsedPages(1), pool.tierCapacityPages(1));
}

TEST(TieredPool, ProtectedSequencesAreNeverLruDropped)
{
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, tinyTiers(2, 2));
    const int a = cache.addSequence();
    fillSeq(cache, a, 4);
    const int b = cache.addSequence();
    fillSeq(cache, b, 4, 10.0f);
    const int c = cache.addSequence();
    fillSeq(cache, c, 4, 20.0f);

    ASSERT_EQ(pool.offloadSequence(a, 1.0, {}).moved, 2);
    ASSERT_EQ(pool.offloadSequence(b, 2.0, {}).moved, 2);
    // a (the LRU) is protected, so the drop falls on b.
    ASSERT_EQ(pool.offloadSequence(c, 3.0, {a}).moved, 2);
    EXPECT_FALSE(pool.contentLost(a));
    EXPECT_TRUE(pool.contentLost(b));
}

TEST(TieredPool, CapacityAccountingUnderChurn)
{
    PagedHeadCache cache(4, 2, 16);
    TieredPagePool pool(cache, tinyTiers(3, 3));
    // Park/resume generations against tiny tiers: used counters must
    // track cold pages exactly and never exceed capacity.
    for (int gen = 0; gen < 4; gen++) {
        std::vector<int> seqs;
        for (int i = 0; i < 3; i++) {
            const int s = cache.addSequence();
            fillSeq(cache, s, 4, static_cast<float>(10 * gen + i));
            seqs.push_back(s);
        }
        double now = gen * 10.0;
        int cold = 0;
        for (int s : seqs)
            cold += pool.offloadSequence(s, now += 1.0, seqs).moved;
        EXPECT_EQ(cold, 6);
        EXPECT_LE(pool.tierUsedPages(0), pool.tierCapacityPages(0));
        EXPECT_LE(pool.tierUsedPages(1), pool.tierCapacityPages(1));
        int held = 0;
        for (int s : seqs)
            held += pool.coldPages(s);
        EXPECT_EQ(pool.tierUsedPages(0) + pool.tierUsedPages(1), held);
        for (int s : seqs) {
            EXPECT_FALSE(pool.contentLost(s)); // capacity fit: no drops
            EXPECT_EQ(pool.fetchRange(s, 0, 3, now += 1.0).restored, 2);
            pool.forgetSequence(s);
            cache.removeSequence(s);
        }
        // forget/finish returns every cold page to the tiers.
        EXPECT_EQ(pool.tierUsedPages(0), 0);
        EXPECT_EQ(pool.tierUsedPages(1), 0);
        EXPECT_EQ(cache.freePages(), cache.totalPages());
    }
    EXPECT_EQ(pool.stats().offloaded_pages, 24);
}

TEST(TieredPool, FetchAfterSequenceGrewSinceOffload)
{
    // The record's residency view is sized at offload time; a sequence
    // that appended more (hot) pages since must still fetch its cold
    // prefix cleanly and end fully resident.
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, tinyTiers(8));
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8); // 4 pages
    const auto before = cache.gatherKeys(seq);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);

    // Grow while cold: two more tokens land on a fresh hot page 4.
    ASSERT_TRUE(cache.append(seq, tokenVec(4, 50.0f), tokenVec(4, 50.5f)));
    ASSERT_TRUE(cache.append(seq, tokenVec(4, 51.0f), tokenVec(4, 51.5f)));
    EXPECT_EQ(cache.length(seq), 10);
    EXPECT_TRUE(cache.pageResident(seq, 4));
    EXPECT_FALSE(pool.fullyResident(seq));

    // Fetch over the grown range: only the 4 cold pages move.
    const kv::FetchResult fr = pool.fetchRange(seq, 0, 9, 2.0);
    EXPECT_EQ(fr.restored, 4);
    EXPECT_EQ(fr.status, kv::CacheStatus::Ok);
    EXPECT_TRUE(pool.fullyResident(seq));
    EXPECT_EQ(pool.tierUsedPages(0), 0);
    // Old payload byte-identical, the growth untouched.
    const auto after = cache.gatherKeys(seq);
    for (std::size_t t = 0; t < before.dim(0); t++)
        EXPECT_EQ(after.at(t, 0).bits(), before.at(t, 0).bits());
    EXPECT_EQ(cache.tokenKey(seq, 9)[0].toFloat(), 51.0f);
}

TEST(TieredPool, OffloadDuringPrefetchWindowForgetsPendingHits)
{
    // Offloading a page whose prefetch was never read must retire its
    // pending-hit marker: the page's next restore is a demand fetch and
    // a later read of it is NOT a prefetch hit.
    PagedHeadCache cache(4, 2, 16);
    TieredPagePool pool(cache, tinyTiers(8, 0, /*prefetch=*/2));
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 16); // 8 pages
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 8);

    // Demand page 0; pages 1, 2 ride along as unread prefetches.
    ASSERT_EQ(pool.fetchRange(seq, 0, 1, 2.0).restored, 3);
    EXPECT_EQ(pool.stats().prefetched_pages, 2);
    EXPECT_EQ(pool.stats().prefetch_hits, 0);

    // Offload inside the prefetch window (before any read).
    ASSERT_EQ(pool.offloadSequence(seq, 3.0, {}).moved, 3);

    // Restore pages 0..2 as *demand* this time (pages 3, 4 prefetch).
    ASSERT_EQ(pool.fetchRange(seq, 0, 5, 4.0).restored, 5);
    // Reading 0..2 scores no hit: their prefetch never served a read.
    pool.touchRange(seq, 0, 5, 5.0);
    EXPECT_EQ(pool.stats().prefetch_hits, 0);
    // The live prefetched pages 3, 4 still score exactly once.
    pool.touchRange(seq, 6, 9, 6.0);
    EXPECT_EQ(pool.stats().prefetch_hits, 2);
}

TEST(TieredPool, DoubleOffloadOfColdSequenceIsNoop)
{
    // Re-offloading an already-cold sequence (the engine can race an
    // idle-eviction sweep against a preemption) must move nothing,
    // charge nothing and corrupt nothing.
    PagedHeadCache cache(4, 2, 8);
    TieredPagePool pool(cache, tinyTiers(8));
    const int seq = cache.addSequence();
    fillSeq(cache, seq, 8); // 4 pages
    const auto before = cache.gatherKeys(seq);
    ASSERT_EQ(pool.offloadSequence(seq, 1.0, {}).moved, 4);
    ASSERT_EQ(pool.tierUsedPages(0), 4);

    const kv::OffloadResult again = pool.offloadSequence(seq, 2.0, {});
    EXPECT_EQ(again.moved, 0);
    EXPECT_EQ(again.dropped, 0);
    EXPECT_EQ(again.writeback_s, 0);
    EXPECT_EQ(again.status, kv::CacheStatus::Ok);
    EXPECT_EQ(pool.tierUsedPages(0), 4); // no double accounting
    EXPECT_EQ(pool.stats().offloaded_pages, 4);
    EXPECT_FALSE(pool.contentLost(seq));

    // The round trip still restores byte-identical payload.
    ASSERT_EQ(pool.fetchRange(seq, 0, 7, 3.0).restored, 4);
    const auto after = cache.gatherKeys(seq);
    for (std::size_t t = 0; t < after.dim(0); t++)
        EXPECT_EQ(after.at(t, 0).bits(), before.at(t, 0).bits());
}

} // namespace
} // namespace bitdec
