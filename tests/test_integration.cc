/**
 * @file
 * Integration tests: multi-head decode loops combining query
 * transformation, the packed cache, both kernels and the baselines; plus
 * cross-architecture sanity of the benchmark harness outputs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "attention/flash_decoding.h"
#include "attention/kivi_baseline.h"
#include "attention/qserve_baseline.h"
#include "attention/reference.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "core/query_transform.h"
#include "gpusim/arch.h"
#include "model/decode_sim.h"
#include "model/model_config.h"

namespace bitdec {
namespace {

/**
 * Full attention layer: hq query heads over hkv packed per-head caches,
 * via query transformation — the shape BitDecoding actually serves.
 */
Tensor<float>
fullLayerAttention(const Tensor<Half>& q, // [hq x d]
                   std::vector<core::HeadDecoder>& heads, float scale)
{
    const int hkv = static_cast<int>(heads.size());
    const int hq = static_cast<int>(q.dim(0));
    const int gq = hq / hkv;
    Tensor<float> out({static_cast<std::size_t>(hq), q.dim(1)});
    for (int h = 0; h < hkv; h++) {
        const Tensor<Half> tile = core::queryGroupTile(q, h, hkv);
        const auto res = heads[static_cast<std::size_t>(h)].decodeStep(
            tile, scale);
        EXPECT_TRUE(res.valid);
        Tensor<float> o_tile({static_cast<std::size_t>(gq), q.dim(1)});
        for (int g = 0; g < gq; g++)
            for (std::size_t c = 0; c < q.dim(1); c++)
                o_tile.at(static_cast<std::size_t>(g), c) =
                    res.out.at(static_cast<std::size_t>(g), c);
        core::scatterGroupOutput(o_tile, h, hkv, out);
    }
    return out;
}

TEST(Integration, GqaLayerMatchesPerHeadReference)
{
    const int hq = 8, hkv = 2, d = 64, len = 160;
    Rng rng(201);
    core::BitDecodingConfig cfg;
    cfg.quant.bits = 4;
    cfg.quant.key_granularity = quant::Granularity::ChannelWise;

    std::vector<core::HeadDecoder> heads;
    std::vector<Tensor<Half>> ks, vs;
    for (int h = 0; h < hkv; h++) {
        heads.emplace_back(d, cfg);
        Tensor<Half> k({static_cast<std::size_t>(len),
                        static_cast<std::size_t>(d)});
        Tensor<Half> v({static_cast<std::size_t>(len),
                        static_cast<std::size_t>(d)});
        for (std::size_t i = 0; i < k.numel(); i++) {
            k[i] = Half(rng.normal());
            v[i] = Half(rng.normal());
        }
        heads.back().prefill(k, v);
        ks.push_back(std::move(k));
        vs.push_back(std::move(v));
    }
    Tensor<Half> q({static_cast<std::size_t>(hq), static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < q.numel(); i++)
        q[i] = Half(rng.normal());

    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const Tensor<float> out = fullLayerAttention(q, heads, scale);

    // Per query head, compare against the FP16 reference on its group's
    // cache; the gap is bounded by 4-bit quantization error.
    for (int h = 0; h < hq; h++) {
        Tensor<Half> qrow({1, static_cast<std::size_t>(d)});
        for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++)
            qrow.at(0, c) = q.at(static_cast<std::size_t>(h), c);
        const int kvh = h / (hq / hkv);
        const Tensor<float> want = attn::referenceAttention(
            qrow, ks[static_cast<std::size_t>(kvh)],
            vs[static_cast<std::size_t>(kvh)], scale);
        for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++) {
            EXPECT_NEAR(out.at(static_cast<std::size_t>(h), c),
                        want.at(0, c), 0.35f)
                << "head " << h;
        }
    }
}

TEST(Integration, AutoregressiveLoopStaysAccurate)
{
    // Decode 40 tokens autoregressively; each step appends K/V and the
    // packed path must track the FP16 baseline throughout (including
    // across a residual-block packing event).
    const int d = 64;
    Rng rng(202);
    core::BitDecodingConfig cfg;
    core::HeadDecoder dec(d, cfg);
    kv::Fp16HeadCache fp16(d);

    const int nr = dec.cache().residualBlockSize();
    const int prefill_len = nr - 20; // packing event lands mid-loop
    Tensor<Half> k0({static_cast<std::size_t>(prefill_len),
                     static_cast<std::size_t>(d)});
    Tensor<Half> v0({static_cast<std::size_t>(prefill_len),
                     static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < k0.numel(); i++) {
        k0[i] = Half(rng.normal());
        v0[i] = Half(rng.normal());
    }
    dec.prefill(k0, v0);
    for (int t = 0; t < prefill_len; t++) {
        std::vector<Half> kt(static_cast<std::size_t>(d)),
            vt(static_cast<std::size_t>(d));
        for (int c = 0; c < d; c++) {
            kt[static_cast<std::size_t>(c)] = k0.at(
                static_cast<std::size_t>(t), static_cast<std::size_t>(c));
            vt[static_cast<std::size_t>(c)] = v0.at(
                static_cast<std::size_t>(t), static_cast<std::size_t>(c));
        }
        fp16.append(kt, vt);
    }

    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    bool packed_event = false;
    for (int step = 0; step < 40; step++) {
        Tensor<Half> q({4, static_cast<std::size_t>(d)});
        for (std::size_t i = 0; i < q.numel(); i++)
            q[i] = Half(rng.normal());

        const auto got = dec.decodeStep(q, scale);
        const auto want = attn::flashDecodingAttention(q, fp16, scale, 2);
        for (std::size_t g = 0; g < 4; g++)
            for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++)
                EXPECT_NEAR(got.out.at(g, c), want.at(g, c), 0.4f)
                    << "step " << step;

        std::vector<Half> kt(static_cast<std::size_t>(d)),
            vt(static_cast<std::size_t>(d));
        for (int c = 0; c < d; c++) {
            kt[static_cast<std::size_t>(c)] = Half(rng.normal());
            vt[static_cast<std::size_t>(c)] = Half(rng.normal());
        }
        dec.appendToken(kt, vt);
        fp16.append(kt, vt);
        if (dec.cache().residualLength() == 0)
            packed_event = true;
    }
    EXPECT_TRUE(packed_event); // the loop crossed a block boundary
}

TEST(Integration, AllSystemsAgreeFunctionally)
{
    // KIVI, QServe and BitDecoding all compute attention over the same
    // quantized values; their functional outputs must agree closely (the
    // systems differ in performance, not math).
    const int d = 64, len = 256;
    Rng rng(203);
    Tensor<Half> k({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> v({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < k.numel(); i++) {
        k[i] = Half(rng.normal());
        v[i] = Half(rng.normal());
    }
    Tensor<Half> q({1, static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < q.numel(); i++)
        q[i] = Half(rng.normal());
    const float scale = 0.125f;

    const auto kq =
        quant::quantizeMatrix(k, 4, quant::Granularity::ChannelWise, 32);
    const auto vq =
        quant::quantizeMatrix(v, 4, quant::Granularity::TensorWise, 32);
    const auto kivi = attn::kiviAttention(q, kq, vq, scale);
    const auto qserve = attn::cudaCoreFusedAttention(q, kq, vq, scale);
    EXPECT_LT(attn::maxAbsDiff(kivi, qserve), 1e-3f);

    core::BitDecodingConfig cfg; // same quant settings
    core::HeadDecoder dec(d, cfg);
    dec.prefill(k, v);
    const auto bd = dec.decodeStep(q, scale);
    // BitDecoding quantizes block-wise (vs whole-tensor groups above), so
    // allow the quantization-granularity difference.
    for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++)
        EXPECT_NEAR(bd.out.at(0, c), kivi.at(0, c), 0.3f);
}

TEST(Integration, KernelBenchSanityAcrossArchitectures)
{
    // Every (arch, scenario) cell the figures plot must produce a finite,
    // positive speedup, and low-bit BitDecoding must never lose to FP16
    // FlashDecoding at 32K+ contexts.
    attn::DecodeShape s;
    s.batch = 1;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 32768;
    core::BitDecodingConfig cfg;
    for (const auto* arch :
         {&sim::archA100(), &sim::archRTX4090(), &sim::archH100(),
          &sim::archRTX5090(), &sim::archRTXPro6000()}) {
        cfg.version = arch->has_wgmma ? 3 : 2;
        cfg.use_mx = arch->has_mxfp4_mma;
        const double fd = attn::flashDecodingTime(*arch, s, 2).total_s;
        const double bd = core::bitDecodingTime(*arch, s, cfg).total_s;
        EXPECT_GT(fd, 0) << arch->name;
        EXPECT_GT(bd, 0) << arch->name;
        EXPECT_GT(fd / bd, 1.2) << arch->name;
        EXPECT_LT(fd / bd, 10.0) << arch->name;
    }
}

TEST(Integration, SpeedupGrowsWithContext)
{
    // The Single-scenario figures all share this shape: the BitDecoding
    // advantage grows with sequence length as KV loading dominates.
    attn::DecodeShape s;
    s.batch = 1;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    core::BitDecodingConfig cfg;
    double prev = 0;
    for (int len : {1024, 8192, 65536, 262144}) {
        s.seq_len = len;
        const double fd = attn::flashDecodingTime(sim::archRTX4090(), s, 2)
                              .total_s;
        const double bd =
            core::bitDecodingTime(sim::archRTX4090(), s, cfg).total_s;
        const double speedup = fd / bd;
        EXPECT_GE(speedup, prev * 0.95);
        prev = speedup;
    }
    EXPECT_GT(prev, 2.5); // approaches the byte ratio at long context
}

TEST(Integration, EndToEndSystemsRankAsInPaper)
{
    // Fig. 12/13 compressed into one property: at 32K GQA serving,
    // BitDecoding > FP16 and BitDecoding > KIVI and > QServe.
    const auto& a100 = sim::archA100();
    const auto& m = model::llama31_8b();
    model::E2EConfig fd, kivi, qs, bd;
    fd.system = model::SystemKind::FlashDecodingFp16;
    kivi.system = model::SystemKind::Kivi;
    qs.system = model::SystemKind::QServe;
    bd.system = model::SystemKind::BitDecoding;
    const auto run = [&](const model::E2EConfig& c) {
        return model::maxBatchThroughput(a100, m, 32768, c).tokens_per_s;
    };
    const double t_fd = run(fd), t_kivi = run(kivi), t_qs = run(qs),
                 t_bd = run(bd);
    EXPECT_GT(t_bd, t_fd * 2.0);
    EXPECT_GT(t_bd, t_kivi * 1.2);
    EXPECT_GT(t_bd, t_qs * 2.0);
}

} // namespace
} // namespace bitdec
