/**
 * @file
 * Tests for the sharded serving cluster: router placement (sticky
 * prefix homes, least-loaded fallback, rebalancing under skew),
 * Cluster(shards=1) byte-equivalence with a bare Engine through the
 * ServingClient seam, shard-count invariance of per-request digests,
 * client cancellation, EngineConfig validation and the shared
 * ServingOptions CLI grammar.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/router.h"
#include "gpusim/arch.h"
#include "model/model_config.h"
#include "serving/client.h"
#include "serving/engine.h"
#include "serving/options.h"
#include "serving/request.h"
#include "serving/trace.h"

namespace bitdec {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::RoutePolicy;
using cluster::Router;
using cluster::RouterConfig;
using serving::EngineConfig;
using serving::Request;
using serving::RequestState;
using serving::ServingMetrics;
using serving::ServingOptions;

/** Workload-only request; arrivals are spaced so ordering is stable. */
Request
workload(int id, int prompt, int output, std::uint64_t prefix = 0,
         int prefix_tokens = 0)
{
    Request r;
    r.id = id;
    r.arrival_s = 0.01 * id;
    r.prompt_tokens = prompt;
    r.output_tokens = output;
    r.prefix_id = prefix;
    r.prefix_tokens = prefix_tokens;
    return r;
}

/** Tiny per-shard engine with the reference attention backend, so both
 *  output_hash and attn_hash are live in every digest comparison. */
EngineConfig
clusterTinyConfig(int num_pages)
{
    EngineConfig cfg;
    cfg.system = model::SystemKind::BitDecoding;
    cfg.bits = 4;
    cfg.page_size = 8;
    cfg.num_pages = num_pages;
    cfg.cache_head_dim = 4;
    cfg.sched.max_batch = 8;
    cfg.sched.prefill_chunk_tokens = 16;
    cfg.backend = "reference";
    return cfg;
}

// ------------------------------------------------------------ router ----

TEST(Router, StickyColdPlacesOnLeastLoadedThenKeepsFamilyTogether)
{
    RouterConfig rc;
    rc.num_shards = 4;
    Router router(rc);

    // Prefix-free load lands on shard 0 (all-empty tie breaks low).
    EXPECT_EQ(router.route(workload(0, 1000, 0)), 0);
    // First request of family F: least-loaded shard becomes its home.
    const int home = router.route(workload(1, 100, 8, 0xF00Dull, 16));
    EXPECT_EQ(home, 1);
    EXPECT_EQ(router.prefixHome(0xF00Dull), home);
    // Follow-ups stick to the home even when other shards are emptier.
    EXPECT_EQ(router.route(workload(2, 100, 8, 0xF00Dull, 16)), home);
    EXPECT_EQ(router.route(workload(3, 100, 8, 0xF00Dull, 16)), home);

    const cluster::RouterStats& s = router.stats();
    EXPECT_EQ(s.routed, 4);
    EXPECT_EQ(s.least_loaded, 1);
    EXPECT_EQ(s.cold_placements, 1);
    EXPECT_EQ(s.sticky_hits, 2);
    EXPECT_EQ(s.rebalances, 0);
    EXPECT_EQ(s.per_shard_requests[1], 3);
    EXPECT_EQ(router.shardLoad(1), 3 * 108);
}

TEST(Router, PrefixFreeRequestsFallBackToLeastLoaded)
{
    RouterConfig rc;
    rc.num_shards = 3;
    Router router(rc);
    EXPECT_EQ(router.route(workload(0, 500, 0)), 0);
    EXPECT_EQ(router.route(workload(1, 300, 0)), 1);
    EXPECT_EQ(router.route(workload(2, 100, 0)), 2);
    // Loads now 500/300/100: the lightest shard keeps winning.
    EXPECT_EQ(router.route(workload(3, 100, 0)), 2);
    EXPECT_EQ(router.route(workload(4, 100, 0)), 2);
    // 500/300/300: tie breaks toward the lowest index, deterministically.
    EXPECT_EQ(router.route(workload(5, 10, 0)), 1);
    EXPECT_EQ(router.stats().least_loaded, 6);
}

TEST(Router, RebalancesSkewedFamilyHomeToLighterShard)
{
    RouterConfig rc;
    rc.num_shards = 2;
    rc.rebalance_factor = 1.25;
    Router router(rc);

    // Pin 1000 tokens of prefix-free load on shard 0, then home family
    // F on shard 1 and grow it until shard 1 carries > 1.25x the mean.
    EXPECT_EQ(router.route(workload(0, 1000, 0)), 0);
    EXPECT_EQ(router.route(workload(1, 100, 0, 0xABCull, 16)), 1);
    for (int i = 2; i <= 5; i++)
        EXPECT_EQ(router.route(workload(i, 400, 0, 0xABCull, 16)), 1)
            << "request " << i << " should still stick to shard 1";
    // Loads 1000 vs 1700, mean 1350: 1700 > 1.25 * 1350 and shard 0 is
    // lighter, so the family's home moves there.
    EXPECT_EQ(router.route(workload(6, 400, 0, 0xABCull, 16)), 0);
    EXPECT_EQ(router.prefixHome(0xABCull), 0);

    const cluster::RouterStats& s = router.stats();
    EXPECT_EQ(s.rebalances, 1);
    EXPECT_EQ(s.sticky_hits, 4);
    EXPECT_EQ(s.cold_placements, 1);
    // Stickiness resumes at the new home.
    EXPECT_EQ(router.route(workload(7, 100, 0, 0xABCull, 16)), 0);
    EXPECT_EQ(s.rebalances, 1);
}

TEST(Router, RoundRobinCyclesIgnoringLoad)
{
    RouterConfig rc;
    rc.num_shards = 3;
    rc.policy = RoutePolicy::RoundRobin;
    Router router(rc);
    for (int i = 0; i < 6; i++)
        EXPECT_EQ(router.route(workload(i, 100 * (i + 1), 0)), i % 3);
}

TEST(Router, LeastLoadedPolicyIgnoresPrefixes)
{
    RouterConfig rc;
    rc.num_shards = 2;
    rc.policy = RoutePolicy::LeastLoaded;
    Router router(rc);
    // The same family spreads: no stickiness under this policy.
    EXPECT_EQ(router.route(workload(0, 100, 0, 0xFEEDull, 16)), 0);
    EXPECT_EQ(router.route(workload(1, 100, 0, 0xFEEDull, 16)), 1);
    EXPECT_EQ(router.prefixHome(0xFEEDull), -1);
}

// ----------------------------------------------------------- cluster ----

TEST(Cluster, OneShardMatchesBareEngineByteForByte)
{
    // The mock-client replay: the same short trace through a bare
    // EngineClient and a Cluster with a single shard. The cluster's
    // aggregate must be that shard's metrics verbatim — every
    // serialized field and every per-request digest identical.
    const auto trace = serving::smokeTrace();

    serving::EngineClient engine(sim::archA100(), model::llama2_7b(),
                                 clusterTinyConfig(64));
    ClusterConfig cc;
    cc.num_shards = 1;
    cc.engine = clusterTinyConfig(64);
    Cluster one(sim::archA100(), model::llama2_7b(), cc);

    for (const Request& r : trace) {
        engine.submit(r);
        one.submit(r);
    }
    const ServingMetrics me = engine.drain();
    const ServingMetrics mc = one.drain();

    EXPECT_EQ(me.outputs_digest, mc.outputs_digest);
    EXPECT_EQ(me.toJson(), mc.toJson()); // byte-for-byte, all fields
    for (const Request& q : trace) {
        const Request* a = engine.poll(q.id);
        const Request* b = one.poll(q.id);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(a->output_hash, b->output_hash);
        ASSERT_NE(a->attn_hash, 0u);
        EXPECT_EQ(a->attn_hash, b->attn_hash);
        EXPECT_DOUBLE_EQ(a->finish_s, b->finish_s);
    }
}

/** Twelve requests in three prefix-disjoint families: sticky routing
 *  keeps each family on one shard at any shard count. */
std::vector<Request>
familyTrace()
{
    std::vector<Request> trace;
    for (int i = 0; i < 12; i++)
        trace.push_back(workload(i, 48, 8,
                                 0xD15C0ull + static_cast<std::uint64_t>(
                                                  i % 3),
                                 16));
    return trace;
}

TEST(Cluster, DigestsAreShardCountInvariant)
{
    // The tentpole invariant: per-request output_hash and attn_hash are
    // byte-identical at 1, 2 and 4 shards for prefix-disjoint traffic —
    // content never depends on placement. The single-shard pool (64
    // pages for ~84 pages of demand) preempts while the 4-shard pools
    // never do, so the invariance also spans scheduling regimes.
    const auto trace = familyTrace();
    std::vector<std::unique_ptr<serving::ServingClient>> clients;
    std::vector<ServingMetrics> metrics;
    for (const int shards : {1, 2, 4}) {
        clients.push_back(serving::makeServingClient(
            sim::archA100(), model::llama2_7b(), clusterTinyConfig(64),
            shards));
        for (const Request& r : trace)
            clients.back()->submit(r);
        metrics.push_back(clients.back()->drain());
    }
    for (std::size_t k = 1; k < clients.size(); k++) {
        EXPECT_EQ(metrics[0].outputs_digest, metrics[k].outputs_digest);
        EXPECT_EQ(metrics[0].num_requests, metrics[k].num_requests);
        for (const Request& q : trace) {
            const Request* a = clients[0]->poll(q.id);
            const Request* b = clients[k]->poll(q.id);
            ASSERT_NE(a, nullptr);
            ASSERT_NE(b, nullptr);
            EXPECT_EQ(a->output_hash, b->output_hash)
                << "request " << q.id << " at " << k;
            ASSERT_NE(a->attn_hash, 0u);
            EXPECT_EQ(a->attn_hash, b->attn_hash)
                << "request " << q.id << " at " << k;
        }
    }
    // The 4-shard client really spread the work.
    const auto* four = dynamic_cast<const Cluster*>(clients.back().get());
    ASSERT_NE(four, nullptr);
    int used = 0;
    for (const long n : four->clusterMetrics().router.per_shard_requests)
        used += n > 0 ? 1 : 0;
    EXPECT_GE(used, 2);
}

TEST(Cluster, StickyRoutingKeepsFamiliesOnOneShard)
{
    ClusterConfig cc;
    cc.num_shards = 4;
    cc.engine = clusterTinyConfig(64);
    Cluster cl(sim::archA100(), model::llama2_7b(), cc);

    // Two heavy prefix-free requests anchor the mean load, then two
    // families of three: each cold-places on an empty shard and sticks
    // there (its home stays well under rebalance_factor x mean).
    std::vector<Request> trace;
    trace.push_back(workload(0, 400, 8));
    trace.push_back(workload(1, 400, 8));
    for (int i = 2; i < 5; i++)
        trace.push_back(workload(i, 40, 8, 0xAAull, 16));
    for (int i = 5; i < 8; i++)
        trace.push_back(workload(i, 40, 8, 0xBBull, 16));
    for (const Request& r : trace)
        cl.submit(r);

    EXPECT_EQ(cl.shardOf(3), cl.shardOf(2));
    EXPECT_EQ(cl.shardOf(4), cl.shardOf(2));
    EXPECT_EQ(cl.shardOf(6), cl.shardOf(5));
    EXPECT_EQ(cl.shardOf(7), cl.shardOf(5));
    EXPECT_NE(cl.shardOf(5), cl.shardOf(2));
    EXPECT_NE(cl.shardOf(2), cl.shardOf(0));
    EXPECT_NE(cl.shardOf(5), cl.shardOf(1));
    EXPECT_EQ(cl.shardOf(99), -1);

    const ServingMetrics m = cl.drain();
    EXPECT_EQ(m.num_requests, 8);
    const cluster::RouterStats& s = cl.clusterMetrics().router;
    EXPECT_EQ(s.routed, 8);
    EXPECT_EQ(s.cold_placements, 2);
    EXPECT_EQ(s.sticky_hits, 4);
    EXPECT_EQ(s.least_loaded, 2);
    // Each family hit its packed prefix on exactly one shard.
    EXPECT_EQ(m.prefix_hit_tokens, 2 * 2 * 16);
}

TEST(Cluster, ClientCancelExcludesRequestFromDrainAndDigest)
{
    const auto trace = serving::smokeTrace();

    // Reference run without request 2.
    auto ref = serving::makeServingClient(sim::archA100(),
                                          model::llama2_7b(),
                                          clusterTinyConfig(64), 2);
    for (const Request& r : trace)
        if (r.id != 2)
            ref->submit(r);
    const ServingMetrics mr = ref->drain();

    auto cl = serving::makeServingClient(sim::archA100(), model::llama2_7b(),
                                         clusterTinyConfig(64), 2);
    for (const Request& r : trace)
        cl->submit(r);
    EXPECT_TRUE(cl->cancel(2));
    EXPECT_FALSE(cl->cancel(2));  // already canceled
    EXPECT_FALSE(cl->cancel(99)); // unknown id
    const Request* canceled = cl->poll(2);
    ASSERT_NE(canceled, nullptr);
    EXPECT_EQ(canceled->state, RequestState::Canceled);
    EXPECT_EQ(canceled->cancel_cause, serving::CancelCause::Client);

    const ServingMetrics m = cl->drain();
    EXPECT_EQ(m.num_requests, static_cast<int>(trace.size()) - 1);
    EXPECT_EQ(m.outputs_digest, mr.outputs_digest);
    EXPECT_FALSE(cl->cancel(1)); // already ran

    const serving::ClientStats cs = cl->stats();
    EXPECT_EQ(cs.submitted, static_cast<int>(trace.size()));
    EXPECT_EQ(cs.finished, static_cast<int>(trace.size()) - 1);
    EXPECT_EQ(cs.canceled, 1);
    EXPECT_EQ(cs.pending, 0);
}

TEST(Cluster, StatsAggregateAcrossShards)
{
    const EngineConfig cfg = clusterTinyConfig(64);
    auto one = serving::makeServingClient(sim::archA100(),
                                          model::llama2_7b(), cfg, 1);
    auto four = serving::makeServingClient(sim::archA100(),
                                           model::llama2_7b(), cfg, 4);
    EXPECT_EQ(one->stats().shards, 1);
    EXPECT_EQ(four->stats().shards, 4);
    EXPECT_EQ(four->stats().total_pool_pages,
              4 * one->stats().total_pool_pages);

    for (int i = 0; i < 6; i++)
        four->submit(workload(i, 40, 8));
    EXPECT_EQ(four->stats().submitted, 6);
    EXPECT_EQ(four->stats().pending, 6);
    four->drain();
    EXPECT_EQ(four->stats().pending, 0);
    EXPECT_EQ(four->stats().finished, 6);
}

// -------------------------------------------------------- validation ----

TEST(EngineConfigValidate, FailsFastNamingTheOffendingField)
{
    EngineConfig ok = clusterTinyConfig(64);
    ok.validate(); // the baseline config is fine

    EngineConfig bad_page = ok;
    bad_page.page_size = 0;
    EXPECT_DEATH(bad_page.validate(), "page_size must be >= 1");

    EngineConfig bad_fp16 = ok;
    bad_fp16.system = model::SystemKind::FlashDecodingFp16;
    bad_fp16.bits = 4;
    EXPECT_DEATH(bad_fp16.validate(), "bits must be 16");

    EngineConfig bad_bits = ok;
    bad_bits.bits = 5;
    EXPECT_DEATH(bad_bits.validate(), "bits must be 2, 4 or 8");

    EngineConfig bad_batch = ok;
    bad_batch.sched.max_batch = 0;
    EXPECT_DEATH(bad_batch.validate(), "max_batch must be >= 1");

    // The contradictory combo: a fault storm with no tiers underneath
    // would silently never inject anything.
    EngineConfig storm_no_tiers = ok;
    storm_no_tiers.faults = fault::FaultSchedule::parse("fetch=0.1");
    EXPECT_DEATH(storm_no_tiers.validate(),
                 "faults fire on tiered transfer paths");
}

// --------------------------------------------------------- cli flags ----

ServingOptions
parseArgs(std::vector<const char*> args)
{
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("test-binary"));
    for (const char* a : args)
        argv.push_back(const_cast<char*>(a));
    return ServingOptions::parse(static_cast<int>(argv.size()),
                                 argv.data());
}

TEST(ServingOptions, ParsesTheSharedFlagGrammar)
{
    const ServingOptions o =
        parseArgs({"--backend=reference", "--shards=4", "--smoke",
                   "--faults=fetch=0.5", "--fault-seed=7", "--tier=host",
                   "--hot-pool-pages=128"});
    EXPECT_EQ(o.backend, "reference");
    EXPECT_EQ(o.shards, 4);
    EXPECT_TRUE(o.smoke);
    EXPECT_EQ(o.fault_spec, "fetch=0.5");
    EXPECT_TRUE(o.fault_seed_given);
    EXPECT_EQ(o.fault_seed, 7u);
    EXPECT_EQ(o.tier, "host");
    EXPECT_EQ(o.hot_pool_pages, 128);
}

TEST(ServingOptions, UnknownArgumentsAreLeftForTheCaller)
{
    const ServingOptions o = parseArgs({"--frobnicate", "positional"});
    EXPECT_EQ(o.backend, "");
    EXPECT_EQ(o.shards, 1);
    EXPECT_FALSE(o.smoke);
    EXPECT_FALSE(o.fault_seed_given);
    EXPECT_EQ(o.tier, "host,disk");
}

TEST(ServingOptions, MalformedValuesDieNamingTheFlag)
{
    EXPECT_DEATH(parseArgs({"--shards=0"}), "needs at least 1");
    EXPECT_DEATH(parseArgs({"--shards=abc"}), "non-negative integer");
    EXPECT_DEATH(parseArgs({"--shards"}), "takes its value with '='");
    EXPECT_DEATH(parseArgs({"--tier=ssd"}), "--tier= must be");
    EXPECT_DEATH(parseArgs({"--backend"}), "takes its value with '='");
}

} // namespace
} // namespace bitdec
