/**
 * @file
 * Cross-cutting property tests: invariants that must hold over swept
 * configuration spaces (warp tilings, bit widths, architectures, shapes)
 * rather than at single points.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "attention/flash_decoding.h"
#include "attention/workloads.h"
#include "backend/harness.h"
#include "backend/registry.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "core/residual_kernel.h"
#include "exec/dequant_plan.h"
#include "exec/simd/dispatch.h"
#include "gpusim/arch.h"
#include "kvcache/kv_cache.h"
#include "layout/induced_layout.h"
#include "model/decode_sim.h"
#include "model/model_config.h"
#include "quant/fast_dequant.h"

namespace bitdec {
namespace {

// ---------------------------------------------- layout induction sweeps ----

struct TilingCase
{
    sim::MmaShape mma;
    int wn;
    int bits;
};

class InductionSweepP : public ::testing::TestWithParam<TilingCase>
{
};

TEST_P(InductionSweepP, ResidualBlockAlignsInducedLayout)
{
    // Eq. 1's purpose as a property: for ANY (mma, wn, bits), a block of
    // Nr tokens yields an induced layout with zero partial units, and the
    // warp-emulated Residual-Kernel pack equals the canonical pack.
    const auto [mma, wn, bits] = GetParam();
    layout::WarpTiling tiling;
    tiling.mma = mma;
    tiling.wn = wn;
    const int nr = layout::residualBlockSize(tiling, bits);
    // d must cover one full packing group along N (pn * R) for V blocks.
    const int d = 64;

    const layout::InducedLayout klay(tiling, bits, d, nr);
    const layout::InducedLayout vlay(tiling, bits, nr, d);
    EXPECT_EQ(static_cast<int>(klay.numUnits()) * klay.codesPerUnit(),
              d * nr);
    EXPECT_EQ(static_cast<int>(vlay.numUnits()) * vlay.codesPerUnit(),
              d * nr);

    quant::QuantConfig qc;
    qc.bits = bits;
    qc.key_granularity = quant::Granularity::ChannelWise;
    qc.group_size = 16;

    Rng rng(GetParam().wn * 100 + bits);
    Tensor<Half> kb({static_cast<std::size_t>(nr), static_cast<std::size_t>(d)});
    Tensor<Half> vb({static_cast<std::size_t>(nr), static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < kb.numel(); i++) {
        kb[i] = Half(rng.normal());
        vb[i] = Half(rng.normal());
    }
    kv::PackedBlock ck, cv;
    kv::packBlock(kb, vb, qc, klay, vlay, ck, cv);
    EXPECT_EQ(core::residualKernelPackKeys(kb, qc, klay).units, ck.units);
    EXPECT_EQ(core::residualKernelPackValues(vb, qc, vlay).units, cv.units);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InductionSweepP,
    ::testing::Values(TilingCase{sim::MmaShape::M16N8K16, 1, 4},
                      TilingCase{sim::MmaShape::M16N8K16, 2, 4},
                      TilingCase{sim::MmaShape::M16N8K16, 8, 4},
                      TilingCase{sim::MmaShape::M16N8K16, 2, 2},
                      TilingCase{sim::MmaShape::M16N8K8, 4, 4},
                      TilingCase{sim::MmaShape::M16N8K8, 2, 2}));

// -------------------------------------------------- fast-dequant sweeps ----

class DequantParamSweepP
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(DequantParamSweepP, FastPathBitExactOverParamGrid)
{
    // Bit-exactness must hold for every (scale magnitude, zero) corner,
    // including subnormal-scale and large-zero regions.
    const auto [bits, scale_exp] = GetParam();
    const float scale = std::ldexp(1.0f, scale_exp);
    for (float zero : {0.f, 1.f, 7.f, 15.f}) {
        quant::QuantParams p{Half(scale), Half(zero)};
        Rng rng(99);
        for (int trial = 0; trial < 50; trial++) {
            std::uint8_t codes[16];
            const int n = quant::codesPerWord(bits);
            for (int i = 0; i < n; i++)
                codes[i] =
                    static_cast<std::uint8_t>(rng.uniformInt(1u << bits));
            const std::uint32_t w =
                quant::packWord(codes, bits, quant::PackOrder::Interleaved);
            Half fast[16], ref[16];
            quant::fastDequantWord(w, bits, p, fast);
            quant::referenceDequantWord(w, bits,
                                        quant::PackOrder::Interleaved, p,
                                        ref);
            for (int i = 0; i < n; i++)
                EXPECT_EQ(fast[i].bits(), ref[i].bits())
                    << "bits=" << bits << " scale=2^" << scale_exp
                    << " zero=" << zero;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DequantParamSweepP,
                         ::testing::Values(std::pair{4, -10}, std::pair{4, -4},
                                           std::pair{4, 0}, std::pair{4, 3},
                                           std::pair{2, -8}, std::pair{2, -2},
                                           std::pair{2, 2}));

// ----------------------------------------------------- timing invariants ----

TEST(TimingProperties, FasterMemoryNeverSlowsAttention)
{
    // Across architectures ordered by bandwidth, the same memory-bound
    // decode never gets slower.
    attn::DecodeShape s;
    s.batch = 16;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 32768;
    const double t4090 =
        attn::flashDecodingTime(sim::archRTX4090(), s, 2).total_s;
    const double t5090 =
        attn::flashDecodingTime(sim::archRTX5090(), s, 2).total_s;
    const double ta100 = attn::flashDecodingTime(sim::archA100(), s, 2).total_s;
    const double th100 = attn::flashDecodingTime(sim::archH100(), s, 2).total_s;
    EXPECT_GT(t4090, t5090); // 1.0 vs 1.8 TB/s
    EXPECT_GT(t5090, ta100); // 1.8 vs 2.0 TB/s
    EXPECT_GT(ta100, th100); // 2.0 vs 3.4 TB/s
}

TEST(TimingProperties, SpeedupMonotoneInBitWidth)
{
    // For every architecture and context length: fewer bits, never slower.
    core::BitDecodingConfig c8, c4, c2;
    c8.quant.bits = 8;
    c4.quant.bits = 4;
    c2.quant.bits = 2;
    for (const auto* arch : {&sim::archA100(), &sim::archRTX4090(),
                             &sim::archH100()}) {
        for (int len : {4096, 65536}) {
            attn::DecodeShape s;
            s.batch = 4;
            s.num_q_heads = 32;
            s.num_kv_heads = 8;
            s.seq_len = len;
            const double t8 = core::bitDecodingTime(*arch, s, c8).total_s;
            const double t4 = core::bitDecodingTime(*arch, s, c4).total_s;
            const double t2 = core::bitDecodingTime(*arch, s, c2).total_s;
            EXPECT_GE(t8, t4) << arch->name << " len=" << len;
            EXPECT_GE(t4, t2) << arch->name << " len=" << len;
        }
    }
}

TEST(TimingProperties, LatencyMonotoneInContextAndBatch)
{
    core::BitDecodingConfig cfg;
    double prev = 0;
    for (int len : {1024, 4096, 16384, 65536}) {
        attn::DecodeShape s;
        s.batch = 4;
        s.num_q_heads = 32;
        s.num_kv_heads = 8;
        s.seq_len = len;
        const double t = core::bitDecodingTime(sim::archA100(), s, cfg).total_s;
        EXPECT_GT(t, prev);
        prev = t;
    }
    prev = 0;
    for (int bs : {1, 4, 16, 64}) {
        attn::DecodeShape s;
        s.batch = bs;
        s.num_q_heads = 32;
        s.num_kv_heads = 8;
        s.seq_len = 8192;
        const double t = core::bitDecodingTime(sim::archA100(), s, cfg).total_s;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(TimingProperties, MetadataOverheadShrinksWithGroupSize)
{
    attn::DecodeShape s;
    s.batch = 4;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 16384;
    quant::QuantConfig a, b;
    a.group_size = 32;
    b.group_size = 128;
    EXPECT_GT(s.metadataBytes(a), s.metadataBytes(b));
}

// ------------------------------------------------- functional invariants ----

TEST(FunctionalProperties, AttentionOutputInConvexHullOfValues)
{
    // Attention output is a convex combination of value rows; this must
    // survive quantization, packing and the fused kernel path.
    core::BitDecodingConfig cfg;
    core::HeadDecoder dec(32, cfg);
    Rng rng(314);
    const int nr = dec.cache().residualBlockSize();
    Tensor<Half> k({static_cast<std::size_t>(nr), 32});
    Tensor<Half> v({static_cast<std::size_t>(nr), 32});
    float vmin = 1e9f, vmax = -1e9f;
    for (std::size_t i = 0; i < k.numel(); i++) {
        k[i] = Half(rng.normal());
        v[i] = Half(rng.normal());
        vmin = std::min(vmin, v[i].toFloat());
        vmax = std::max(vmax, v[i].toFloat());
    }
    dec.prefill(k, v);
    Tensor<Half> q({4, 32});
    for (std::size_t i = 0; i < q.numel(); i++)
        q[i] = Half(rng.normal());
    const auto res = dec.decodeStep(q, 0.18f);
    // Quantization can stretch the hull by its error bound only.
    const float slack = 0.5f;
    for (std::size_t g = 0; g < 4; g++) {
        for (std::size_t c = 0; c < 32; c++) {
            EXPECT_GE(res.out.at(g, c), vmin - slack);
            EXPECT_LE(res.out.at(g, c), vmax + slack);
        }
    }
}

TEST(FunctionalProperties, ScaleInvarianceOfArgmaxRetrieval)
{
    // Scaling all keys by a constant multiplies logits uniformly and must
    // not change which token the (packed, quantized) attention retrieves.
    const int d = 32;
    Rng rng(271);
    core::BitDecodingConfig cfg;
    for (float key_scale : {0.5f, 1.0f, 2.0f}) {
        core::HeadDecoder dec(d, cfg);
        const int nr = dec.cache().residualBlockSize();
        Tensor<Half> k({static_cast<std::size_t>(nr),
                        static_cast<std::size_t>(d)});
        Tensor<Half> v({static_cast<std::size_t>(nr),
                        static_cast<std::size_t>(d)});
        Rng local(99);
        for (std::size_t i = 0; i < k.numel(); i++) {
            k[i] = Half(local.normal() * key_scale);
            v[i] = Half(local.normal());
        }
        // Plant a strong needle at token 7 matching the query direction.
        Tensor<Half> q({1, static_cast<std::size_t>(d)});
        for (int c = 0; c < d; c++) {
            q.at(0, static_cast<std::size_t>(c)) = Half(1.0f);
            k.at(7, static_cast<std::size_t>(c)) = Half(3.0f * key_scale);
            v.at(7, static_cast<std::size_t>(c)) = Half(5.0f);
        }
        dec.prefill(k, v);
        const auto res = dec.decodeStep(q, 2.0f / key_scale);
        // Needle value dominates the output for any key scale.
        EXPECT_GT(res.out.at(0, 0), 4.0f) << "key_scale=" << key_scale;
    }
    (void)rng;
}

// -------------------------------------------------- e2e model invariants ----

TEST(ModelProperties, ThroughputMonotoneInBatchUntilOom)
{
    model::E2EConfig bd;
    bd.system = model::SystemKind::BitDecoding;
    double prev = 0;
    for (int bs = 1; bs <= 32; bs *= 2) {
        const auto r = model::decodeThroughput(
            sim::archA100(), model::llama31_8b(), 8192, bs, bd);
        if (r.oom)
            break;
        EXPECT_GT(r.tokens_per_s, prev);
        prev = r.tokens_per_s;
    }
    EXPECT_GT(prev, 0);
}

TEST(ModelProperties, LongerContextNeverRaisesThroughput)
{
    model::E2EConfig bd;
    bd.system = model::SystemKind::BitDecoding;
    double prev = 1e18;
    for (int len : {4096, 16384, 65536}) {
        const auto r = model::decodeThroughput(
            sim::archA100(), model::llama31_8b(), len, 4, bd);
        ASSERT_FALSE(r.oom);
        EXPECT_LT(r.tokens_per_s, prev);
        prev = r.tokens_per_s;
    }
}

TEST(ModelProperties, EveryModelRunsEverySystemAt4k)
{
    for (const auto* m :
         {&model::llama2_7b(), &model::llama31_8b(), &model::qwen3_8b(),
          &model::qwen3_14b()}) {
        for (auto sys : {model::SystemKind::FlashDecodingFp16,
                         model::SystemKind::Kivi, model::SystemKind::QServe,
                         model::SystemKind::BitDecoding}) {
            model::E2EConfig c;
            c.system = sys;
            const auto t =
                model::decodeStepTime(sim::archA100(), *m, 4096, 1, c);
            EXPECT_GT(t.total_s, 0) << m->name;
            EXPECT_TRUE(std::isfinite(t.total_s)) << m->name;
        }
    }
}

// ------------------------------------------------- SIMD bit-exactness ----

using exec::simd::Level;

/** Supported SIMD kernel tables of this host, with their level names. */
std::vector<std::pair<const exec::simd::KernelTable*, const char*>>
supportedKernelTables()
{
    std::vector<std::pair<const exec::simd::KernelTable*, const char*>> out;
    for (Level l : {Level::Avx2, Level::Avx512})
        if (exec::simd::levelSupported(l))
            out.emplace_back(exec::simd::kernels(l), exec::simd::toString(l));
    return out;
}

/** Float bit patterns match (the definition of "bit-exact"). */
bool
sameBits(float a, float b)
{
    std::uint32_t ba, bb;
    std::memcpy(&ba, &a, 4);
    std::memcpy(&bb, &b, 4);
    return ba == bb;
}

TEST(SimdProperties, ConvertRowsWidensEveryHalfPatternExactly)
{
    // Exhaustive: all 65536 binary16 patterns — normals, denormals,
    // zeros, infinities and NaNs — must widen exactly as the scalar LUT
    // does. NaNs compare as NaN-ness (F16C may quiet a signaling payload
    // differently); no NaN ever reaches the hot path from real caches.
    const auto tables = supportedKernelTables();
    if (tables.empty())
        GTEST_SKIP() << "host has no SIMD level: "
                     << exec::simd::describeCpuFeatures();
    std::vector<Half> src(65536);
    for (std::uint32_t i = 0; i < 65536; i++)
        src[i] = Half::fromBits(static_cast<std::uint16_t>(i));
    const float* lut = halfToFloatLut();
    for (const auto& [kt, name] : tables) {
        std::vector<float> dst(65536, -1.f);
        kt->convert_rows(src.data(), src.size(), dst.data());
        int mismatches = 0;
        for (std::uint32_t i = 0; i < 65536; i++) {
            const bool ok = std::isnan(lut[i])
                                ? std::isnan(dst[i])
                                : sameBits(dst[i], lut[i]);
            if (!ok && ++mismatches < 4)
                ADD_FAILURE() << name << " pattern 0x" << std::hex << i;
        }
        EXPECT_EQ(mismatches, 0) << name;
    }
}

TEST(SimdProperties, ConvertTransposeMatchesLutAtOddShapes)
{
    // The 8x8-block transpose must stay exact across both tail axes:
    // tokens % 8 != 0 and d % 8 != 0, down to a single token.
    const auto tables = supportedKernelTables();
    if (tables.empty())
        GTEST_SKIP();
    Rng rng(4242);
    for (const auto& [kt, name] : tables) {
        for (const auto [tokens, d] : {std::pair{1, 37}, std::pair{13, 24},
                                       std::pair{16, 16}, std::pair{23, 129}}) {
            std::vector<Half> src(static_cast<std::size_t>(tokens) * d);
            for (auto& h : src)
                h = Half(rng.normal());
            std::vector<float> kT(src.size(), -1.f);
            kt->convert_transpose(src.data(), tokens, d, kT.data(), tokens);
            const float* lut = halfToFloatLut();
            for (int t = 0; t < tokens; t++)
                for (int c = 0; c < d; c++)
                    ASSERT_TRUE(sameBits(
                        kT[static_cast<std::size_t>(c) * tokens + t],
                        lut[src[static_cast<std::size_t>(t) * d + c].bits()]))
                        << name << " tokens=" << tokens << " d=" << d;
        }
    }
}

TEST(SimdProperties, LinearDequantBitExactUnderExtremeHalves)
{
    // The gathered linear-plan dequant must reproduce the route-walking
    // scalar dequant bit-for-bit, including blocks quantized from
    // denormal and near-max half content (extreme scales/zeros stress
    // the LUT corners). K additionally checks the channel-major remap.
    const auto tables = supportedKernelTables();
    if (tables.empty())
        GTEST_SKIP();
    for (int bits : {4, 2}) {
        quant::QuantConfig qc;
        qc.bits = bits;
        const int d = 64;
        kv::PackedHeadCache cache(d, qc, layout::WarpTiling{});
        const int nr = cache.residualBlockSize();
        Rng rng(2026 + bits);
        for (int t = 0; t < nr; t++) {
            std::vector<Half> k(static_cast<std::size_t>(d)),
                v(static_cast<std::size_t>(d));
            for (int c = 0; c < d; c++) {
                switch (rng.uniformInt(4)) {
                case 0: // denormal half
                    k[static_cast<std::size_t>(c)] = Half::fromBits(
                        static_cast<std::uint16_t>(1 + rng.uniformInt(0x3FF)));
                    break;
                case 1: // near half-max
                    k[static_cast<std::size_t>(c)] =
                        Half(60000.f * (rng.normal() > 0 ? 1.f : -1.f));
                    break;
                default:
                    k[static_cast<std::size_t>(c)] = Half(rng.normal());
                }
                v[static_cast<std::size_t>(c)] = Half(rng.normal() * 100.f);
            }
            cache.append(k, v);
        }
        ASSERT_EQ(static_cast<int>(cache.keyBlocks().size()), 1);
        const kv::PackedBlock& kb = cache.keyBlocks()[0];
        const kv::PackedBlock& vb = cache.valueBlocks()[0];
        const std::size_t n = static_cast<std::size_t>(nr) * d;
        std::vector<float> k_ref(n), v_ref(n);
        exec::dequantBlock(kb.units, cache.keyRoutes(), kb.dequant_lut, bits,
                           k_ref.data());
        exec::dequantBlock(vb.units, cache.valueRoutes(), vb.dequant_lut,
                           bits, v_ref.data());
        const auto& kp = cache.keyLinearPlan();
        const auto& vp = cache.valueLinearPlan();
        for (const auto& [kt, name] : supportedKernelTables()) {
            std::vector<float> k_simd(n, -1.f), v_simd(n, -1.f);
            kt->dequant_linear(kb.units.data(), kp.unit.data(),
                               kp.shift.data(), kp.param.data(), kp.size(),
                               bits, kb.dequant_lut_f32.data(),
                               k_simd.data());
            kt->dequant_linear(vb.units.data(), vp.unit.data(),
                               vp.shift.data(), vp.param.data(), vp.size(),
                               bits, vb.dequant_lut_f32.data(),
                               v_simd.data());
            for (int t = 0; t < nr; t++)
                for (int c = 0; c < d; c++) {
                    const std::size_t tm =
                        static_cast<std::size_t>(t) * d + c; // token-major
                    const std::size_t cm =
                        static_cast<std::size_t>(c) * nr + t; // channel-major
                    ASSERT_TRUE(sameBits(k_simd[cm], k_ref[tm]))
                        << name << " K bits=" << bits << " t=" << t
                        << " c=" << c;
                    ASSERT_TRUE(sameBits(v_simd[tm], v_ref[tm]))
                        << name << " V bits=" << bits << " t=" << t
                        << " c=" << c;
                }
        }
    }
}

TEST(SimdProperties, TailShapesDigestEqualToScalarTwin)
{
    // End-to-end digest equality between every available SIMD sibling
    // and its scalar twin over shapes chosen to stress the vector tails:
    // contexts not divisible by any vector width, single-token pages,
    // ranges straddling page boundaries, and head dims off the 8-lane
    // grid (fp16/paged only; the packed cache constrains d).
    auto& reg = backend::BackendRegistry::instance();
    struct Shape
    {
        int context, head_dim, gq, page_size;
    };
    const std::vector<Shape> general = {
        {1, 32, 1, 1},     // single token, single-token pages
        {7, 24, 2, 3},     // d % 8 != 0, tiny pages
        {97, 40, 4, 13},   // page-straddling odd context
        {129, 32, 3, 64},  // one token past a 128-chunk boundary
        {333, 128, 8, 31}, // full-width head, odd everything
    };
    const std::vector<Shape> packed_safe = {
        {1, 32, 1, 1},
        {97, 32, 4, 13},
        {129, 64, 3, 64},
        {333, 128, 8, 31},
    };
    int compared = 0;
    for (const std::string& name : reg.availableNames()) {
        std::string twin;
        if (name.ends_with("-avx2"))
            twin = name.substr(0, name.size() - 5);
        else if (name.ends_with("-avx512"))
            twin = name.substr(0, name.size() - 7);
        else
            continue;
        const bool packed = name.find("packed") != std::string::npos;
        for (const Shape& s : packed ? packed_safe : general) {
            backend::FixtureConfig fc;
            fc.context = s.context;
            fc.head_dim = s.head_dim;
            fc.gq = s.gq;
            fc.page_size = s.page_size;
            const backend::AttentionBackend& be = reg.resolve(name);
            const backend::AttentionBackend& sc = reg.resolve(twin);
            const backend::DecodeFixture fx(be, fc);
            const backend::DecodeFixture fxs(sc, fc);
            backend::DecodeBatch b = fx.batch();
            backend::DecodeBatch bs = fxs.batch();
            b.scale = bs.scale = 0.17f;
            EXPECT_EQ(be.digest(b), sc.digest(bs))
                << name << " context=" << s.context << " d=" << s.head_dim
                << " page=" << s.page_size;
            compared++;
        }
    }
    if (compared == 0)
        GTEST_SKIP() << "host runs no SIMD sibling: "
                     << exec::simd::describeCpuFeatures();
}

} // namespace
} // namespace bitdec
