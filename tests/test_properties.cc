/**
 * @file
 * Cross-cutting property tests: invariants that must hold over swept
 * configuration spaces (warp tilings, bit widths, architectures, shapes)
 * rather than at single points.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "attention/flash_decoding.h"
#include "attention/workloads.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "core/residual_kernel.h"
#include "gpusim/arch.h"
#include "layout/induced_layout.h"
#include "model/decode_sim.h"
#include "model/model_config.h"
#include "quant/fast_dequant.h"

namespace bitdec {
namespace {

// ---------------------------------------------- layout induction sweeps ----

struct TilingCase
{
    sim::MmaShape mma;
    int wn;
    int bits;
};

class InductionSweepP : public ::testing::TestWithParam<TilingCase>
{
};

TEST_P(InductionSweepP, ResidualBlockAlignsInducedLayout)
{
    // Eq. 1's purpose as a property: for ANY (mma, wn, bits), a block of
    // Nr tokens yields an induced layout with zero partial units, and the
    // warp-emulated Residual-Kernel pack equals the canonical pack.
    const auto [mma, wn, bits] = GetParam();
    layout::WarpTiling tiling;
    tiling.mma = mma;
    tiling.wn = wn;
    const int nr = layout::residualBlockSize(tiling, bits);
    // d must cover one full packing group along N (pn * R) for V blocks.
    const int d = 64;

    const layout::InducedLayout klay(tiling, bits, d, nr);
    const layout::InducedLayout vlay(tiling, bits, nr, d);
    EXPECT_EQ(static_cast<int>(klay.numUnits()) * klay.codesPerUnit(),
              d * nr);
    EXPECT_EQ(static_cast<int>(vlay.numUnits()) * vlay.codesPerUnit(),
              d * nr);

    quant::QuantConfig qc;
    qc.bits = bits;
    qc.key_granularity = quant::Granularity::ChannelWise;
    qc.group_size = 16;

    Rng rng(GetParam().wn * 100 + bits);
    Tensor<Half> kb({static_cast<std::size_t>(nr), static_cast<std::size_t>(d)});
    Tensor<Half> vb({static_cast<std::size_t>(nr), static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < kb.numel(); i++) {
        kb[i] = Half(rng.normal());
        vb[i] = Half(rng.normal());
    }
    kv::PackedBlock ck, cv;
    kv::packBlock(kb, vb, qc, klay, vlay, ck, cv);
    EXPECT_EQ(core::residualKernelPackKeys(kb, qc, klay).units, ck.units);
    EXPECT_EQ(core::residualKernelPackValues(vb, qc, vlay).units, cv.units);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InductionSweepP,
    ::testing::Values(TilingCase{sim::MmaShape::M16N8K16, 1, 4},
                      TilingCase{sim::MmaShape::M16N8K16, 2, 4},
                      TilingCase{sim::MmaShape::M16N8K16, 8, 4},
                      TilingCase{sim::MmaShape::M16N8K16, 2, 2},
                      TilingCase{sim::MmaShape::M16N8K8, 4, 4},
                      TilingCase{sim::MmaShape::M16N8K8, 2, 2}));

// -------------------------------------------------- fast-dequant sweeps ----

class DequantParamSweepP
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(DequantParamSweepP, FastPathBitExactOverParamGrid)
{
    // Bit-exactness must hold for every (scale magnitude, zero) corner,
    // including subnormal-scale and large-zero regions.
    const auto [bits, scale_exp] = GetParam();
    const float scale = std::ldexp(1.0f, scale_exp);
    for (float zero : {0.f, 1.f, 7.f, 15.f}) {
        quant::QuantParams p{Half(scale), Half(zero)};
        Rng rng(99);
        for (int trial = 0; trial < 50; trial++) {
            std::uint8_t codes[16];
            const int n = quant::codesPerWord(bits);
            for (int i = 0; i < n; i++)
                codes[i] =
                    static_cast<std::uint8_t>(rng.uniformInt(1u << bits));
            const std::uint32_t w =
                quant::packWord(codes, bits, quant::PackOrder::Interleaved);
            Half fast[16], ref[16];
            quant::fastDequantWord(w, bits, p, fast);
            quant::referenceDequantWord(w, bits,
                                        quant::PackOrder::Interleaved, p,
                                        ref);
            for (int i = 0; i < n; i++)
                EXPECT_EQ(fast[i].bits(), ref[i].bits())
                    << "bits=" << bits << " scale=2^" << scale_exp
                    << " zero=" << zero;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DequantParamSweepP,
                         ::testing::Values(std::pair{4, -10}, std::pair{4, -4},
                                           std::pair{4, 0}, std::pair{4, 3},
                                           std::pair{2, -8}, std::pair{2, -2},
                                           std::pair{2, 2}));

// ----------------------------------------------------- timing invariants ----

TEST(TimingProperties, FasterMemoryNeverSlowsAttention)
{
    // Across architectures ordered by bandwidth, the same memory-bound
    // decode never gets slower.
    attn::DecodeShape s;
    s.batch = 16;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 32768;
    const double t4090 =
        attn::flashDecodingTime(sim::archRTX4090(), s, 2).total_s;
    const double t5090 =
        attn::flashDecodingTime(sim::archRTX5090(), s, 2).total_s;
    const double ta100 = attn::flashDecodingTime(sim::archA100(), s, 2).total_s;
    const double th100 = attn::flashDecodingTime(sim::archH100(), s, 2).total_s;
    EXPECT_GT(t4090, t5090); // 1.0 vs 1.8 TB/s
    EXPECT_GT(t5090, ta100); // 1.8 vs 2.0 TB/s
    EXPECT_GT(ta100, th100); // 2.0 vs 3.4 TB/s
}

TEST(TimingProperties, SpeedupMonotoneInBitWidth)
{
    // For every architecture and context length: fewer bits, never slower.
    core::BitDecodingConfig c8, c4, c2;
    c8.quant.bits = 8;
    c4.quant.bits = 4;
    c2.quant.bits = 2;
    for (const auto* arch : {&sim::archA100(), &sim::archRTX4090(),
                             &sim::archH100()}) {
        for (int len : {4096, 65536}) {
            attn::DecodeShape s;
            s.batch = 4;
            s.num_q_heads = 32;
            s.num_kv_heads = 8;
            s.seq_len = len;
            const double t8 = core::bitDecodingTime(*arch, s, c8).total_s;
            const double t4 = core::bitDecodingTime(*arch, s, c4).total_s;
            const double t2 = core::bitDecodingTime(*arch, s, c2).total_s;
            EXPECT_GE(t8, t4) << arch->name << " len=" << len;
            EXPECT_GE(t4, t2) << arch->name << " len=" << len;
        }
    }
}

TEST(TimingProperties, LatencyMonotoneInContextAndBatch)
{
    core::BitDecodingConfig cfg;
    double prev = 0;
    for (int len : {1024, 4096, 16384, 65536}) {
        attn::DecodeShape s;
        s.batch = 4;
        s.num_q_heads = 32;
        s.num_kv_heads = 8;
        s.seq_len = len;
        const double t = core::bitDecodingTime(sim::archA100(), s, cfg).total_s;
        EXPECT_GT(t, prev);
        prev = t;
    }
    prev = 0;
    for (int bs : {1, 4, 16, 64}) {
        attn::DecodeShape s;
        s.batch = bs;
        s.num_q_heads = 32;
        s.num_kv_heads = 8;
        s.seq_len = 8192;
        const double t = core::bitDecodingTime(sim::archA100(), s, cfg).total_s;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(TimingProperties, MetadataOverheadShrinksWithGroupSize)
{
    attn::DecodeShape s;
    s.batch = 4;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 16384;
    quant::QuantConfig a, b;
    a.group_size = 32;
    b.group_size = 128;
    EXPECT_GT(s.metadataBytes(a), s.metadataBytes(b));
}

// ------------------------------------------------- functional invariants ----

TEST(FunctionalProperties, AttentionOutputInConvexHullOfValues)
{
    // Attention output is a convex combination of value rows; this must
    // survive quantization, packing and the fused kernel path.
    core::BitDecodingConfig cfg;
    core::HeadDecoder dec(32, cfg);
    Rng rng(314);
    const int nr = dec.cache().residualBlockSize();
    Tensor<Half> k({static_cast<std::size_t>(nr), 32});
    Tensor<Half> v({static_cast<std::size_t>(nr), 32});
    float vmin = 1e9f, vmax = -1e9f;
    for (std::size_t i = 0; i < k.numel(); i++) {
        k[i] = Half(rng.normal());
        v[i] = Half(rng.normal());
        vmin = std::min(vmin, v[i].toFloat());
        vmax = std::max(vmax, v[i].toFloat());
    }
    dec.prefill(k, v);
    Tensor<Half> q({4, 32});
    for (std::size_t i = 0; i < q.numel(); i++)
        q[i] = Half(rng.normal());
    const auto res = dec.decodeStep(q, 0.18f);
    // Quantization can stretch the hull by its error bound only.
    const float slack = 0.5f;
    for (std::size_t g = 0; g < 4; g++) {
        for (std::size_t c = 0; c < 32; c++) {
            EXPECT_GE(res.out.at(g, c), vmin - slack);
            EXPECT_LE(res.out.at(g, c), vmax + slack);
        }
    }
}

TEST(FunctionalProperties, ScaleInvarianceOfArgmaxRetrieval)
{
    // Scaling all keys by a constant multiplies logits uniformly and must
    // not change which token the (packed, quantized) attention retrieves.
    const int d = 32;
    Rng rng(271);
    core::BitDecodingConfig cfg;
    for (float key_scale : {0.5f, 1.0f, 2.0f}) {
        core::HeadDecoder dec(d, cfg);
        const int nr = dec.cache().residualBlockSize();
        Tensor<Half> k({static_cast<std::size_t>(nr),
                        static_cast<std::size_t>(d)});
        Tensor<Half> v({static_cast<std::size_t>(nr),
                        static_cast<std::size_t>(d)});
        Rng local(99);
        for (std::size_t i = 0; i < k.numel(); i++) {
            k[i] = Half(local.normal() * key_scale);
            v[i] = Half(local.normal());
        }
        // Plant a strong needle at token 7 matching the query direction.
        Tensor<Half> q({1, static_cast<std::size_t>(d)});
        for (int c = 0; c < d; c++) {
            q.at(0, static_cast<std::size_t>(c)) = Half(1.0f);
            k.at(7, static_cast<std::size_t>(c)) = Half(3.0f * key_scale);
            v.at(7, static_cast<std::size_t>(c)) = Half(5.0f);
        }
        dec.prefill(k, v);
        const auto res = dec.decodeStep(q, 2.0f / key_scale);
        // Needle value dominates the output for any key scale.
        EXPECT_GT(res.out.at(0, 0), 4.0f) << "key_scale=" << key_scale;
    }
    (void)rng;
}

// -------------------------------------------------- e2e model invariants ----

TEST(ModelProperties, ThroughputMonotoneInBatchUntilOom)
{
    model::E2EConfig bd;
    bd.system = model::SystemKind::BitDecoding;
    double prev = 0;
    for (int bs = 1; bs <= 32; bs *= 2) {
        const auto r = model::decodeThroughput(
            sim::archA100(), model::llama31_8b(), 8192, bs, bd);
        if (r.oom)
            break;
        EXPECT_GT(r.tokens_per_s, prev);
        prev = r.tokens_per_s;
    }
    EXPECT_GT(prev, 0);
}

TEST(ModelProperties, LongerContextNeverRaisesThroughput)
{
    model::E2EConfig bd;
    bd.system = model::SystemKind::BitDecoding;
    double prev = 1e18;
    for (int len : {4096, 16384, 65536}) {
        const auto r = model::decodeThroughput(
            sim::archA100(), model::llama31_8b(), len, 4, bd);
        ASSERT_FALSE(r.oom);
        EXPECT_LT(r.tokens_per_s, prev);
        prev = r.tokens_per_s;
    }
}

TEST(ModelProperties, EveryModelRunsEverySystemAt4k)
{
    for (const auto* m :
         {&model::llama2_7b(), &model::llama31_8b(), &model::qwen3_8b(),
          &model::qwen3_14b()}) {
        for (auto sys : {model::SystemKind::FlashDecodingFp16,
                         model::SystemKind::Kivi, model::SystemKind::QServe,
                         model::SystemKind::BitDecoding}) {
            model::E2EConfig c;
            c.system = sys;
            const auto t =
                model::decodeStepTime(sim::archA100(), *m, 4096, 1, c);
            EXPECT_GT(t.total_s, 0) << m->name;
            EXPECT_TRUE(std::isfinite(t.total_s)) << m->name;
        }
    }
}

} // namespace
} // namespace bitdec
