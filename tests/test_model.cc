/**
 * @file
 * Tests for the model layer: configs, end-to-end decode simulation,
 * memory/OOM modeling, serving throughput and the accuracy proxy.
 */
#include <gtest/gtest.h>

#include "gpusim/arch.h"
#include "model/accuracy_proxy.h"
#include "model/decode_sim.h"
#include "model/model_config.h"

namespace bitdec::model {
namespace {

// --------------------------------------------------------------- config ----

TEST(ModelConfig, Presets)
{
    EXPECT_TRUE(llama2_7b().isMha());
    EXPECT_FALSE(llama31_8b().isMha());
    EXPECT_EQ(llama31_8b().num_kv_heads, 8);
    EXPECT_EQ(llama31_70b().layers, 80);
    EXPECT_EQ(qwen3_14b().num_q_heads, 40);
    EXPECT_EQ(modelByName("Qwen3-8B").name, "Qwen3-8B");
    EXPECT_DEATH(modelByName("gpt-5"), "unknown model");
}

TEST(ModelConfig, KvBytesScaleWithHeadsAndLength)
{
    // LLaMA-2-7B (32 kv heads) holds 4x the KV of LLaMA-3.1-8B (8).
    EXPECT_NEAR(llama2_7b().kvBytesFp16(4096) /
                    llama31_8b().kvBytesFp16(4096),
                4.0, 1e-9);
    EXPECT_NEAR(llama31_8b().kvBytesFp16(8192) /
                    llama31_8b().kvBytesFp16(4096),
                2.0, 1e-9);
}

TEST(ModelConfig, GemmFlopsReasonable)
{
    // ~2 * params FLOPs per token is the standard decode estimate.
    const double flops = llama31_8b().gemmFlopsPerToken();
    EXPECT_GT(flops, 1.2 * llama31_8b().params);
    EXPECT_LT(flops, 3.0 * llama31_8b().params);
}

// ------------------------------------------------------------ decode sim ----

TEST(DecodeSim, AttentionDominatesAtLongContext)
{
    E2EConfig cfg;
    cfg.system = SystemKind::FlashDecodingFp16;
    const auto t = decodeStepTime(sim::archA100(), llama31_8b(), 131072, 1,
                                  cfg);
    EXPECT_GT(t.attention_s, t.gemm_s);
    const auto t_short =
        decodeStepTime(sim::archA100(), llama31_8b(), 1024, 1, cfg);
    EXPECT_GT(t_short.gemm_s, t_short.attention_s);
}

TEST(DecodeSim, BitDecodingReducesLatency3xAt128K)
{
    // The headline end-to-end claim: ~3x single-batch latency reduction
    // on LLaMA-3.1-8B at 128K.
    E2EConfig fp16;
    fp16.system = SystemKind::FlashDecodingFp16;
    E2EConfig bd;
    bd.system = SystemKind::BitDecoding;
    bd.bits = 4;
    const double t_fp16 =
        decodeStepTime(sim::archA100(), llama31_8b(), 131072, 1, fp16).total_s;
    const double t_bd =
        decodeStepTime(sim::archA100(), llama31_8b(), 131072, 1, bd).total_s;
    // Our weight-GEMM model (full FP16 weight re-read per token) caps the
    // end-to-end gain below the paper's 3x; the attention-side gain is
    // documented per kernel in the Fig. 10/11 benches.
    EXPECT_GT(t_fp16 / t_bd, 1.4);
    EXPECT_LT(t_fp16 / t_bd, 4.5);
}

TEST(DecodeSim, TensorParallelismDividesWork)
{
    E2EConfig cfg;
    cfg.system = SystemKind::BitDecoding;
    const double tp1 =
        decodeStepTime(sim::archA100(), llama31_70b(), 32768, 1, cfg).total_s;
    cfg.tensor_parallel = 8;
    const double tp8 =
        decodeStepTime(sim::archA100(), llama31_70b(), 32768, 1, cfg).total_s;
    EXPECT_GT(tp1 / tp8, 4.0);
}

// -------------------------------------------------------------- memory ----

TEST(Memory, KiviOomAt128kFitsAt64k)
{
    // Fig. 12: KIVI OOMs at 128K on the A100 because its non-tiled
    // kernels keep dequantized FP16 workspaces live for the whole pass.
    E2EConfig kivi;
    kivi.system = SystemKind::Kivi;
    kivi.bits = 4;
    const double cap = sim::archA100().hbm_gb * 1e9;
    EXPECT_GT(peakMemoryBytes(llama31_8b(), 131072, 1, kivi), cap);
    EXPECT_LT(peakMemoryBytes(llama31_8b(), 65536, 1, kivi), cap);
}

TEST(Memory, BitDecodingFitsWhereFp16Struggles)
{
    E2EConfig fp16;
    fp16.system = SystemKind::FlashDecodingFp16;
    E2EConfig bd;
    bd.system = SystemKind::BitDecoding;
    bd.bits = 4;
    const double m_fp16 = peakMemoryBytes(llama31_8b(), 131072, 1, fp16);
    const double m_bd = peakMemoryBytes(llama31_8b(), 131072, 1, bd);
    EXPECT_LT(m_bd, m_fp16);
    EXPECT_LT(peakMemoryBytes(llama31_8b(), 131072, 1, bd),
              sim::archA100().hbm_gb * 1e9);
}

TEST(Memory, LowerBitsAllowLargerBatches)
{
    E2EConfig bd4, bd2, fp16;
    bd4.system = bd2.system = SystemKind::BitDecoding;
    bd2.bits = 2;
    fp16.system = SystemKind::FlashDecodingFp16;
    const auto& a100 = sim::archA100();
    const auto r16 = maxBatchThroughput(a100, llama31_8b(), 32768, fp16);
    const auto r4 = maxBatchThroughput(a100, llama31_8b(), 32768, bd4);
    const auto r2 = maxBatchThroughput(a100, llama31_8b(), 32768, bd2);
    ASSERT_FALSE(r16.oom);
    ASSERT_FALSE(r4.oom);
    ASSERT_FALSE(r2.oom);
    EXPECT_GT(r4.batch, r16.batch);
    EXPECT_GT(r2.batch, r4.batch);
    EXPECT_GT(r4.tokens_per_s, r16.tokens_per_s);
    EXPECT_GT(r2.tokens_per_s, r4.tokens_per_s);
}

// ------------------------------------------------------------ throughput ----

TEST(Throughput, Fig13OrderingQServeVsBitDecoding)
{
    // Pages setting, 32K: QServe beats FP16 only on the MHA model;
    // BitDecoding wins everywhere.
    const auto& a100 = sim::archA100();
    E2EConfig fd;
    fd.system = SystemKind::FlashDecodingFp16;
    fd.scenario = attn::Scenario::Pages;
    E2EConfig qs = fd;
    qs.system = SystemKind::QServe;
    E2EConfig bd = fd;
    bd.system = SystemKind::BitDecoding;

    const auto run = [&](const ModelConfig& m, const E2EConfig& c, int tp) {
        E2EConfig cc = c;
        cc.tensor_parallel = tp;
        return maxBatchThroughput(a100, m, 32768, cc).tokens_per_s;
    };
    // MHA model: QServe > FP16.
    EXPECT_GT(run(llama2_7b(), qs, 1), run(llama2_7b(), fd, 1));
    // GQA model: QServe advantage collapses.
    EXPECT_LT(run(llama31_8b(), qs, 1), run(llama31_8b(), fd, 1) * 1.4);
    // BitDecoding >= 2x QServe on GQA models (the paper reports > 2x).
    EXPECT_GT(run(llama31_8b(), bd, 1), 2.0 * run(llama31_8b(), qs, 1));
    EXPECT_GT(run(qwen3_8b(), bd, 1), 2.0 * run(qwen3_8b(), qs, 1));
    // 70B on 8 GPUs still favors BitDecoding.
    EXPECT_GT(run(llama31_70b(), bd, 8), run(llama31_70b(), qs, 8));
}

TEST(Throughput, ScalesWithBatchUntilBandwidth)
{
    E2EConfig bd;
    bd.system = SystemKind::BitDecoding;
    const auto& a100 = sim::archA100();
    const auto r1 = decodeThroughput(a100, llama31_8b(), 4096, 1, bd);
    const auto r8 = decodeThroughput(a100, llama31_8b(), 4096, 8, bd);
    ASSERT_FALSE(r1.oom);
    ASSERT_FALSE(r8.oom);
    EXPECT_GT(r8.tokens_per_s, r1.tokens_per_s * 4.0);
}

TEST(Throughput, OomReportedAtAbsurdShapes)
{
    E2EConfig fp16;
    fp16.system = SystemKind::FlashDecodingFp16;
    const auto r =
        decodeThroughput(sim::archRTX4090(), llama31_70b(), 131072, 64, fp16);
    EXPECT_TRUE(r.oom);
}

// ---------------------------------------------------------- accuracy -----

TEST(AccuracyProxy, DeterministicAcrossRuns)
{
    ProxyConfig cfg;
    cfg.num_tasks = 50;
    const double a = proxyScoreFp16(cfg).accuracy;
    const double b = proxyScoreFp16(cfg).accuracy;
    EXPECT_EQ(a, b);
}

TEST(AccuracyProxy, TableIOrdering)
{
    ProxyConfig cfg;
    cfg.num_tasks = 200;
    quant::QuantConfig q4;
    q4.bits = 4;
    q4.key_granularity = quant::Granularity::ChannelWise;
    q4.group_size = 32;
    quant::QuantConfig q2 = q4;
    q2.bits = 2;

    const double fp16 = proxyScoreFp16(cfg).accuracy;
    const double int4 = proxyScoreQuantized(cfg, q4).accuracy;
    const double int2 = proxyScoreQuantized(cfg, q2).accuracy;

    // Table I shape: INT4 within ~1.5 points of FP16; INT2 degrades more
    // but stays usable.
    EXPECT_GE(fp16, int4 - 1.5);
    EXPECT_LE(fp16 - int4, 4.0);
    EXPECT_GT(int4, int2 - 0.5);
    EXPECT_LE(fp16 - int2, 25.0);
    // FP16 operates in LongBench's mid-range scoring regime.
    EXPECT_GT(fp16, 30.0);
    EXPECT_LT(fp16, 75.0);
}

TEST(AccuracyProxy, ChannelWiseBeatsTensorWiseForKeys)
{
    // The reason KIVI-style channel-wise keys exist: per-channel outliers.
    ProxyConfig cfg;
    cfg.num_tasks = 150;
    quant::QuantConfig kc, kt;
    kc.bits = kt.bits = 2;
    kc.group_size = kt.group_size = 32;
    kc.key_granularity = quant::Granularity::ChannelWise;
    kt.key_granularity = quant::Granularity::TensorWise;
    const double c = proxyScoreQuantized(cfg, kc).accuracy;
    const double t = proxyScoreQuantized(cfg, kt).accuracy;
    EXPECT_GE(c, t - 3.0); // channel-wise at least comparable
}

} // namespace
} // namespace bitdec::model
