/**
 * @file
 * SIMD dispatch tests: the BITDEC_SIMD override (scalar forcing, bogus
 * values, unsupported-ISA requests failing fast with the detected CPU
 * features), availability gating of the sibling backends, and the
 * level/kernel-table invariants of the runtime detection.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "backend/registry.h"
#include "exec/simd/dispatch.h"

namespace bitdec {
namespace {

using exec::simd::Level;

/** Scoped BITDEC_SIMD value; restores the previous state on exit. */
class ScopedSimdEnv
{
  public:
    explicit ScopedSimdEnv(const char* value)
    {
        const char* prev = std::getenv("BITDEC_SIMD");
        had_prev_ = prev != nullptr;
        if (had_prev_)
            prev_ = prev;
        if (value != nullptr)
            setenv("BITDEC_SIMD", value, 1);
        else
            unsetenv("BITDEC_SIMD");
    }

    ~ScopedSimdEnv()
    {
        if (had_prev_)
            setenv("BITDEC_SIMD", prev_.c_str(), 1);
        else
            unsetenv("BITDEC_SIMD");
    }

  private:
    bool had_prev_ = false;
    std::string prev_;
};

// ------------------------------------------------- level detection ------

TEST(SimdDispatch, SupportedLevelsAreMonotone)
{
    // A supported level implies every lower one; the max is consistent.
    EXPECT_TRUE(exec::simd::levelSupported(Level::Scalar));
    if (exec::simd::levelSupported(Level::Avx512))
        EXPECT_TRUE(exec::simd::levelSupported(Level::Avx2));
    const Level max = exec::simd::maxSupportedLevel();
    EXPECT_TRUE(exec::simd::levelSupported(max));
}

TEST(SimdDispatch, KernelTablesMatchSupport)
{
    // Scalar has no table by design; a supported SIMD level must have
    // one (support includes "compiled in").
    EXPECT_EQ(exec::simd::kernels(Level::Scalar), nullptr);
    if (exec::simd::levelSupported(Level::Avx2))
        EXPECT_NE(exec::simd::kernels(Level::Avx2), nullptr);
    if (exec::simd::levelSupported(Level::Avx512))
        EXPECT_NE(exec::simd::kernels(Level::Avx512), nullptr);
}

TEST(SimdDispatch, DescribesDetectedFeatures)
{
    const std::string features = exec::simd::describeCpuFeatures();
    EXPECT_FALSE(features.empty());
    if (exec::simd::levelSupported(Level::Avx2)) {
        EXPECT_NE(features.find("avx2"), std::string::npos);
        EXPECT_NE(features.find("f16c"), std::string::npos);
    }
}

// ------------------------------------------------- override parsing -----

TEST(SimdDispatch, UnsetOverrideKeepsMaxLevel)
{
    EXPECT_EQ(exec::simd::resolveSimdOverride(nullptr, Level::Avx2, "x"),
              Level::Avx2);
    EXPECT_EQ(exec::simd::resolveSimdOverride("", Level::Avx512, "x"),
              Level::Avx512);
}

TEST(SimdDispatch, ScalarOverrideCapsAnyHost)
{
    EXPECT_EQ(exec::simd::resolveSimdOverride("scalar", Level::Avx512, "x"),
              Level::Scalar);
    EXPECT_EQ(exec::simd::resolveSimdOverride("avx2", Level::Avx512, "x"),
              Level::Avx2);
}

TEST(SimdDispatchDeath, BogusOverrideDiesNamingVocabulary)
{
    EXPECT_DEATH(exec::simd::resolveSimdOverride("avx9000", Level::Avx512,
                                                 "x"),
                 "BITDEC_SIMD='avx9000' is not a SIMD level.*scalar, avx2 or "
                 "avx512");
}

TEST(SimdDispatchDeath, UnsupportedIsaRequestDiesNamingCpuFeatures)
{
    // A scalar-only host asked for AVX-512 must die naming what the CPU
    // actually has — never silently fall back.
    EXPECT_DEATH(exec::simd::resolveSimdOverride("avx512", Level::Scalar,
                                                 "avx fma"),
                 "unsupported ISA.*max usable level: scalar.*detected CPU "
                 "features: avx fma");
}

// ------------------------------------------- env-driven availability ----

TEST(SimdDispatch, ScalarEnvForcesFallback)
{
    ScopedSimdEnv env("scalar");
    EXPECT_EQ(exec::simd::enabledLevelCap(), Level::Scalar);
    EXPECT_FALSE(exec::simd::levelEnabled(Level::Avx2));
    EXPECT_FALSE(exec::simd::levelEnabled(Level::Avx512));
    EXPECT_NE(exec::simd::unavailableReason(Level::Avx2)
                  .find("BITDEC_SIMD"),
              std::string::npos);
}

TEST(SimdDispatch, ScalarEnvHidesSiblingsFromListings)
{
    ScopedSimdEnv env("scalar");
    auto& reg = backend::BackendRegistry::instance();
    for (const std::string& name : reg.availableNames()) {
        EXPECT_EQ(name.find("-avx"), std::string::npos) << name;
    }
    for (const std::string& name : reg.fusedNames()) {
        EXPECT_EQ(name.find("-avx"), std::string::npos) << name;
    }
    // The scalar hot paths stay listed: forcing scalar never empties the
    // perf-gate set.
    EXPECT_EQ(static_cast<int>(reg.fusedNames().size()), 3);
}

TEST(SimdDispatchDeath, ResolvingDisabledSiblingDiesWithReason)
{
    ScopedSimdEnv env("scalar");
    EXPECT_DEATH(
        backend::BackendRegistry::instance().resolve("fused-paged-avx2"),
        "'fused-paged-avx2' is unavailable on this host.*BITDEC_SIMD");
}

TEST(SimdDispatch, SiblingLevelsReportThemselves)
{
    auto& reg = backend::BackendRegistry::instance();
    EXPECT_STREQ(reg.resolve("fused-paged").simdLevel(), "scalar");
    const backend::AttentionBackend* avx2 = reg.find("fused-paged-avx2");
    ASSERT_NE(avx2, nullptr);
    EXPECT_STREQ(avx2->simdLevel(), "avx2");
    const backend::AttentionBackend* avx512 = reg.find("fused-packed-avx512");
    ASSERT_NE(avx512, nullptr);
    EXPECT_STREQ(avx512->simdLevel(), "avx512");
}

} // namespace
} // namespace bitdec
