/**
 * @file
 * Tests for the CPU execution backend: the Half conversion LUT and bulk
 * span helpers, the work-stealing thread pool, dequant routing, and —
 * most importantly — fused-vs-reference parity of the hot-path attention
 * kernels plus bitwise thread-count determinism.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "attention/flash_decoding.h"
#include "attention/reference.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "core/packing_kernel.h"
#include "exec/dequant_plan.h"
#include "exec/fused_attention.h"
#include "exec/thread_pool.h"
#include "gpusim/arch.h"
#include "model/decode_sim.h"
#include "model/model_config.h"
#include "serving/engine.h"
#include "serving/trace.h"

namespace bitdec {
namespace {

void
randomize(Tensor<Half>& t, Rng& rng, float lo = -1.0f, float hi = 1.0f)
{
    for (std::size_t i = 0; i < t.numel(); i++)
        t[i] = Half(rng.uniformRange(lo, hi));
}

// ------------------------------------------------------------- half LUT ----

// Half::toFloat() itself resolves through the LUT, so comparing against it
// would be a tautology; these checks are independent of the table.
TEST(HalfLut, AllFinitePatternsRoundTripThroughFloatToHalfBits)
{
    // binary16 -> float is exact, so converting the table value back with
    // the (independent, bit-level) narrowing conversion must reproduce the
    // original bit pattern — for every non-NaN pattern including
    // subnormals, infinities and signed zeros.
    const float* lut = halfToFloatLut();
    for (std::uint32_t b = 0; b < 65536; b++) {
        const Half h = Half::fromBits(static_cast<std::uint16_t>(b));
        if (h.isNan()) {
            EXPECT_TRUE(std::isnan(lut[b])) << "bits=" << b;
            continue;
        }
        EXPECT_EQ(floatToHalfBits(lut[b]), static_cast<std::uint16_t>(b))
            << "bits=" << b;
    }
}

TEST(HalfLut, KnownValues)
{
    const float* lut = halfToFloatLut();
    EXPECT_EQ(lut[0x0000], 0.0f);
    EXPECT_TRUE(std::signbit(lut[0x8000]));
    EXPECT_EQ(lut[0x3C00], 1.0f);
    EXPECT_EQ(lut[0xC000], -2.0f);
    EXPECT_EQ(lut[0x7BFF], 65504.0f);          // max finite
    EXPECT_EQ(lut[0x0001], std::ldexp(1.0f, -24)); // smallest subnormal
    EXPECT_EQ(lut[0x0400], std::ldexp(1.0f, -14)); // smallest normal
    EXPECT_TRUE(std::isinf(lut[0x7C00]) && lut[0x7C00] > 0);
    EXPECT_TRUE(std::isinf(lut[0xFC00]) && lut[0xFC00] < 0);
}

TEST(HalfLut, BulkConversionsRoundTrip)
{
    Rng rng(7);
    std::vector<Half> src(1000);
    for (auto& h : src)
        h = Half(rng.uniformRange(-100.f, 100.f));
    std::vector<float> mid(src.size());
    std::vector<Half> back(src.size());
    toFloat(src.data(), mid.data(), src.size());
    fromFloat(mid.data(), back.data(), src.size());
    for (std::size_t i = 0; i < src.size(); i++) {
        EXPECT_EQ(mid[i], src[i].toFloat());
        // Half -> float is exact, so the round trip is the identity.
        EXPECT_EQ(back[i].bits(), src[i].bits());
    }
}

TEST(HalfLut, RoundToHalfMatchesHalfConstruction)
{
    Rng rng(8);
    for (int i = 0; i < 1000; i++) {
        const float x = rng.uniformRange(-1000.f, 1000.f);
        EXPECT_EQ(roundToHalf(x), Half(x).toFloat());
    }
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    exec::ThreadPool pool(4);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; i++)
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ThreadPool, SizeOneRunsInline)
{
    exec::ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i)); // safe: inline execution
    });
    ASSERT_EQ(order.size(), 5u);
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolDeathTest, NestedParallelForOnSamePoolPanics)
{
    // Nested use of one pool would deadlock; the guard turns it into a
    // loud panic instead.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            exec::ThreadPool pool(2);
            pool.parallelFor(4, [&](std::size_t) {
                pool.parallelFor(2, [](std::size_t) {});
            });
        },
        "nested parallelFor");
}

TEST(ThreadPool, ReusableAcrossManyParallelFors)
{
    exec::ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 50; round++)
        pool.parallelFor(64, [&](std::size_t i) {
            sum.fetch_add(static_cast<long>(i));
        });
    EXPECT_EQ(sum.load(), 50l * (64 * 63 / 2));
}

// -------------------------------------------------------- dequant plan -----

TEST(DequantPlan, BlockDequantMatchesReferenceBitExactly)
{
    for (int bits : {2, 4}) {
        for (auto gran : {quant::Granularity::ChannelWise,
                          quant::Granularity::TensorWise}) {
            quant::QuantConfig qc;
            qc.bits = bits;
            qc.key_granularity = gran;
            layout::WarpTiling tiling;
            const int d = 64;
            kv::PackedHeadCache cache(d, qc, tiling);
            const int nr = cache.residualBlockSize();

            Rng rng(1234 + bits);
            Tensor<Half> k({static_cast<std::size_t>(2 * nr),
                            static_cast<std::size_t>(d)});
            Tensor<Half> v({static_cast<std::size_t>(2 * nr),
                            static_cast<std::size_t>(d)});
            randomize(k, rng);
            randomize(v, rng);
            cache.prefill(k, v);
            ASSERT_EQ(static_cast<int>(cache.keyBlocks().size()), 2);

            // The reference inverse of the whole cache.
            Tensor<Half> kd, vd;
            cache.dequantizeAll(kd, vd);

            // The fused path's word-level dequant of each block.
            std::vector<float> kt(static_cast<std::size_t>(nr * d));
            std::vector<float> vt(static_cast<std::size_t>(nr * d));
            for (int blk = 0; blk < 2; blk++) {
                const auto& kb =
                    cache.keyBlocks()[static_cast<std::size_t>(blk)];
                const auto& vb =
                    cache.valueBlocks()[static_cast<std::size_t>(blk)];
                exec::dequantBlock(kb.units, cache.keyRoutes(),
                                   kb.dequant_lut, bits, kt.data());
                exec::dequantBlock(vb.units, cache.valueRoutes(),
                                   vb.dequant_lut, bits, vt.data());
                for (int t = 0; t < nr; t++) {
                    const std::size_t tok =
                        static_cast<std::size_t>(blk * nr + t);
                    for (int c = 0; c < d; c++) {
                        EXPECT_EQ(kt[static_cast<std::size_t>(t * d + c)],
                                  kd.at(tok, static_cast<std::size_t>(c))
                                      .toFloat())
                            << "K blk=" << blk << " t=" << t << " c=" << c;
                        EXPECT_EQ(vt[static_cast<std::size_t>(t * d + c)],
                                  vd.at(tok, static_cast<std::size_t>(c))
                                      .toFloat())
                            << "V blk=" << blk << " t=" << t << " c=" << c;
                    }
                }
            }
        }
    }
}

// --------------------------------------------- fused packed attention ------

struct FusedCase
{
    int bits;
    quant::Granularity gran;
    int wn;
    int extra; //!< residual fill beyond full blocks
    int gq;
};

class FusedPackedP : public ::testing::TestWithParam<FusedCase>
{
};

TEST_P(FusedPackedP, MatchesEmulatedKernelAndReference)
{
    const auto [bits, gran, wn, extra, gq] = GetParam();
    core::BitDecodingConfig cfg;
    cfg.quant.bits = bits;
    cfg.quant.key_granularity = gran;
    cfg.tiling.wn = wn;

    const int d = 64;
    core::HeadDecoder dec(d, cfg);
    const int nr = dec.cache().residualBlockSize();
    const int len = 6 * nr + extra; // > 1 chunk of 4 blocks

    Rng rng(4000 + bits + wn + extra + gq);
    Tensor<Half> k({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> v({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    randomize(k, rng);
    randomize(v, rng);
    dec.prefill(k, v);

    Tensor<Half> q({static_cast<std::size_t>(gq), static_cast<std::size_t>(d)});
    randomize(q, rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    const Tensor<float> fused =
        core::fusedPackedAttention(q, dec.cache(), scale);

    // Parity with the warp/register-emulated Packing Kernel.
    const core::PackingKernelResult emu = dec.decodeStep(q, scale);
    ASSERT_TRUE(emu.valid);
    for (int g = 0; g < gq; g++)
        for (int c = 0; c < d; c++)
            EXPECT_NEAR(fused.at(static_cast<std::size_t>(g),
                                 static_cast<std::size_t>(c)),
                        emu.out.at(static_cast<std::size_t>(g),
                                   static_cast<std::size_t>(c)),
                        1e-3f)
                << "emu g=" << g << " c=" << c;

    // Parity with the FP32 reference over the dequantized cache.
    Tensor<Half> kd, vd;
    dec.cache().dequantizeAll(kd, vd);
    const Tensor<float> ref = attn::referenceAttention(q, kd, vd, scale);
    for (int g = 0; g < gq; g++)
        for (int c = 0; c < d; c++)
            EXPECT_NEAR(fused.at(static_cast<std::size_t>(g),
                                 static_cast<std::size_t>(c)),
                        ref.at(static_cast<std::size_t>(g),
                               static_cast<std::size_t>(c)),
                        1e-3f)
                << "ref g=" << g << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusedPackedP,
    ::testing::Values(
        FusedCase{4, quant::Granularity::ChannelWise, 4, 0, 8},
        FusedCase{4, quant::Granularity::ChannelWise, 4, 37, 16},
        FusedCase{4, quant::Granularity::TensorWise, 4, 5, 1},
        FusedCase{4, quant::Granularity::ChannelWise, 2, 11, 8},
        FusedCase{2, quant::Granularity::ChannelWise, 4, 0, 16},
        FusedCase{2, quant::Granularity::TensorWise, 4, 63, 4},
        FusedCase{2, quant::Granularity::TensorWise, 2, 1, 8}));

TEST(FusedPacked, BitwiseIdenticalForAnyThreadCount)
{
    core::BitDecodingConfig cfg;
    const int d = 64;
    core::HeadDecoder dec(d, cfg);
    const int nr = dec.cache().residualBlockSize();
    const int len = 9 * nr + 21;

    Rng rng(77);
    Tensor<Half> k({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    Tensor<Half> v({static_cast<std::size_t>(len), static_cast<std::size_t>(d)});
    randomize(k, rng);
    randomize(v, rng);
    dec.prefill(k, v);
    Tensor<Half> q({8, static_cast<std::size_t>(d)});
    randomize(q, rng);

    exec::ThreadPool pool1(1);
    exec::ThreadPool pool8(8);
    const Tensor<float> serial =
        core::fusedPackedAttention(q, dec.cache(), 0.125f, nullptr);
    const Tensor<float> one =
        core::fusedPackedAttention(q, dec.cache(), 0.125f, &pool1);
    const Tensor<float> eight =
        core::fusedPackedAttention(q, dec.cache(), 0.125f, &pool8);
    for (std::size_t i = 0; i < serial.numel(); i++) {
        EXPECT_EQ(serial[i], one[i]);
        EXPECT_EQ(serial[i], eight[i]);
    }
}

TEST(FusedPacked, EmptyAndResidualOnlyCaches)
{
    core::BitDecodingConfig cfg;
    const int d = 64;
    core::HeadDecoder dec(d, cfg);
    Tensor<Half> q({4, static_cast<std::size_t>(d)});
    Rng rng(5);
    randomize(q, rng);

    // Empty cache: all-zero output.
    const Tensor<float> empty =
        core::fusedPackedAttention(q, dec.cache(), 0.125f);
    for (std::size_t i = 0; i < empty.numel(); i++)
        EXPECT_EQ(empty[i], 0.f);

    // Residual-only (no packed block yet): matches the FP16 reference.
    Tensor<Half> k({40, static_cast<std::size_t>(d)});
    Tensor<Half> v({40, static_cast<std::size_t>(d)});
    randomize(k, rng);
    randomize(v, rng);
    dec.prefill(k, v);
    ASSERT_EQ(dec.cache().packedTokens(), 0);
    const Tensor<float> got =
        core::fusedPackedAttention(q, dec.cache(), 0.125f);
    const Tensor<float> want = attn::referenceAttention(q, k, v, 0.125f);
    EXPECT_LT(attn::maxAbsDiff(got, want), 1e-3f);
}

// ----------------------------------------------- fused paged attention -----

TEST(FusedPaged, MatchesReferenceOverGatheredSequence)
{
    const int d = 32;
    kv::PagedHeadCache cache(d, 16, 64);
    Rng rng(99);

    // Two interleaved sequences so pages are non-contiguous per sequence.
    const int s0 = cache.addSequence();
    const int s1 = cache.addSequence();
    auto push = [&](int seq) {
        std::vector<Half> kr(static_cast<std::size_t>(d));
        std::vector<Half> vr(static_cast<std::size_t>(d));
        for (int i = 0; i < d; i++) {
            kr[static_cast<std::size_t>(i)] = Half(rng.uniformRange(-1, 1));
            vr[static_cast<std::size_t>(i)] = Half(rng.uniformRange(-1, 1));
        }
        ASSERT_TRUE(cache.append(seq, kr, vr));
    };
    for (int t = 0; t < 117; t++) { // partial last page for s0
        push(s0);
        if (t % 2 == 0)
            push(s1);
    }

    Tensor<Half> q({4, static_cast<std::size_t>(d)});
    randomize(q, rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    for (int seq : {s0, s1}) {
        const Tensor<float> fused =
            exec::fusedPagedAttention(q, cache, seq, scale);
        const Tensor<float> ref = attn::referenceAttention(
            q, cache.gatherKeys(seq), cache.gatherValues(seq), scale);
        EXPECT_LT(attn::maxAbsDiff(fused, ref), 1e-3f) << "seq=" << seq;

        exec::ThreadPool pool8(8);
        const Tensor<float> par =
            exec::fusedPagedAttention(q, cache, seq, scale, &pool8);
        for (std::size_t i = 0; i < fused.numel(); i++)
            EXPECT_EQ(fused[i], par[i]);
    }
}

TEST(FusedPaged, EmptySequenceYieldsZeros)
{
    kv::PagedHeadCache cache(8, 16, 4);
    const int s = cache.addSequence();
    Tensor<Half> q({2, 8});
    q.fill(Half(0.5f));
    const Tensor<float> out = exec::fusedPagedAttention(q, cache, s, 0.35f);
    ASSERT_EQ(out.dim(0), 2u);
    for (std::size_t i = 0; i < out.numel(); i++)
        EXPECT_EQ(out[i], 0.f);
}

// ------------------------------------------------ fused fp16 attention -----

TEST(FusedFp16, MatchesFlashDecoding)
{
    const int d = 64;
    kv::Fp16HeadCache cache(d);
    Rng rng(123);
    for (int t = 0; t < 300; t++) {
        std::vector<Half> kr(static_cast<std::size_t>(d));
        std::vector<Half> vr(static_cast<std::size_t>(d));
        for (int i = 0; i < d; i++) {
            kr[static_cast<std::size_t>(i)] = Half(rng.uniformRange(-1, 1));
            vr[static_cast<std::size_t>(i)] = Half(rng.uniformRange(-1, 1));
        }
        cache.append(kr, vr);
    }
    Tensor<Half> q({8, static_cast<std::size_t>(d)});
    randomize(q, rng);
    const float scale = 0.125f;

    const Tensor<float> fused = exec::fusedFp16Attention(q, cache, scale);
    // keys()/values() include capacity padding rows, so the comparison
    // baseline is flashDecodingAttention, which respects length().
    const Tensor<float> flash = attn::flashDecodingAttention(q, cache, scale, 4);
    EXPECT_LT(attn::maxAbsDiff(fused, flash), 1e-3f);

    // Row-parallel flash decoding is bitwise identical to serial.
    exec::ThreadPool pool8(8);
    const Tensor<float> flash_par =
        attn::flashDecodingAttention(q, cache, scale, 4, &pool8);
    for (std::size_t i = 0; i < flash.numel(); i++)
        EXPECT_EQ(flash[i], flash_par[i]);
}

// ------------------------------------------------- batched fused decode ----

TEST(BatchedFusedDecode, MatchesPerItemAndIsThreadCountInvariant)
{
    core::BitDecodingConfig cfg;
    const int d = 64;
    Rng rng(321);
    std::vector<std::unique_ptr<core::HeadDecoder>> decoders;
    std::vector<Tensor<Half>> queries;
    for (int i = 0; i < 6; i++) {
        auto dec = std::make_unique<core::HeadDecoder>(d, cfg);
        const int len = 100 + 60 * i;
        Tensor<Half> k({static_cast<std::size_t>(len),
                        static_cast<std::size_t>(d)});
        Tensor<Half> v({static_cast<std::size_t>(len),
                        static_cast<std::size_t>(d)});
        randomize(k, rng);
        randomize(v, rng);
        dec->prefill(k, v);
        decoders.push_back(std::move(dec));
        Tensor<Half> q({4, static_cast<std::size_t>(d)});
        randomize(q, rng);
        queries.push_back(std::move(q));
    }

    std::vector<model::FusedDecodeItem> items;
    for (int i = 0; i < 6; i++)
        items.push_back({&queries[static_cast<std::size_t>(i)],
                         &decoders[static_cast<std::size_t>(i)]->cache()});

    exec::ThreadPool pool8(8);
    const auto serial = model::batchedFusedDecode(items, 0.125f, nullptr);
    const auto parallel = model::batchedFusedDecode(items, 0.125f, &pool8);
    ASSERT_EQ(serial.size(), items.size());
    for (std::size_t i = 0; i < items.size(); i++) {
        const Tensor<float> direct = core::fusedPackedAttention(
            *items[i].q, *items[i].cache, 0.125f);
        for (std::size_t e = 0; e < direct.numel(); e++) {
            EXPECT_EQ(serial[i][e], direct[e]);
            EXPECT_EQ(parallel[i][e], direct[e]);
        }
    }
}

// ------------------------------------------- engine functional attention ---

TEST(EngineFunctionalAttention, DigestsAreThreadCountInvariant)
{
    const sim::GpuArch& arch = sim::archA100();
    const model::ModelConfig& model = model::llama31_8b();

    auto runWith = [&](exec::ThreadPool* pool) {
        serving::EngineConfig cfg;
        cfg.num_pages = 64;
        cfg.page_size = 16;
        cfg.backend = "fused-paged";
        cfg.pool = pool;
        cfg.sched.max_batch = 4;
        serving::TraceConfig tc;
        tc.num_requests = 8;
        tc.arrival_rate_qps = 100.0;
        tc.prompt_median = 30;
        tc.prompt_max = 64;
        tc.output_median = 10;
        tc.output_max = 16;
        std::vector<serving::Request> reqs = serving::generateTrace(tc);
        serving::Engine engine(arch, model, cfg);
        engine.run(reqs);
        std::vector<std::uint64_t> hashes;
        for (const auto& r : reqs) {
            EXPECT_NE(r.attn_hash, 0u) << "request " << r.id;
            hashes.push_back(r.attn_hash);
        }
        return hashes;
    };

    exec::ThreadPool pool8(8);
    const auto serial = runWith(nullptr);
    const auto parallel = runWith(&pool8);
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace bitdec
