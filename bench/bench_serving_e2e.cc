/**
 * @file
 * End-to-end serving comparison on the continuous-batching engine:
 * FP16 FlashDecoding vs KIVI vs BitDecoding-4 under a Poisson trace of
 * 32K-context requests on A100 / llama-3.1-8B.
 *
 * Four views:
 *  1. Tail latency at a common offered load: TTFT, TPOT, p99 request
 *     latency, sustained tokens/s and preemptions.
 *  2. Saturation sweep: the highest Poisson arrival rate each system
 *     sustains with p99 TTFT under the SLO. The low-bit cache's ~4x page
 *     capacity shows up here as a strictly higher max rate than FP16,
 *     because FP16 runs out of KV pages (queueing for admission) long
 *     before the device runs out of FLOPs.
 *  3. Shared-prefix reuse: a burst of requests sharing a 24K system
 *     prompt, with prefix page reuse off vs on. Reuse maps the packed
 *     prefix pages instead of re-prefilling them, so sustained req/s
 *     jumps while the run digest stays identical (same token content).
 *  4. Scheduling policy: FCFS vs priority-with-aging on a three-class
 *     workload — per-priority TTFT shows urgent requests jumping the
 *     queue without starving the background class.
 *  5. Chunked prefill: 100K-token prompts landing in the middle of an
 *     active decode batch, monolithic prefill vs a sweep of per-tick
 *     token budgets. Chunking bounds the tokens any tick appends, so the
 *     decode-stall p99 (gap between a request's consecutive output
 *     tokens) collapses while throughput and the run digest stay put.
 *
 *  6. Tiered KV cache: 32K-context idle sessions oversubscribe a hot
 *     page pool that fits ~1/6 of them; host/disk tiers hold the parked
 *     packed pages (offload on park, demand-fetch + prefetch on wake)
 *     while the untiered baseline must evict-and-recompute. Reports
 *     req/s, fetch-stall p99, tier hit rate and peak concurrently
 *     resident sequences, and writes BENCH_tiered_kv.json.
 *
 *  7. Fault tolerance: the tiered scenario under a deterministic chaos
 *     storm (fetch failures, latency spikes, page corruption, transient
 *     allocation failures — every kind at >= 1%) across several fault
 *     seeds. Checksums, retry-with-backoff and recompute escalation must
 *     keep every run digest byte-identical to the fault-free run at
 *     >= 0.8x its throughput; writes BENCH_fault_tolerance.json.
 *     `--faults=<spec>` overrides the storm, `--fault-seed=<n>` sweeps
 *     one extra seed.
 *
 *  8. Sharded cluster: 4 engine replicas behind the sticky prefix-aware
 *     router vs one engine absorbing the same 4x offered load (32
 *     requests at 0.8 req/s, eight 8K-prefix families). The cluster must
 *     sustain >= 2x the single engine's req/s with a byte-identical run
 *     digest (placement never changes token content); reports per-shard
 *     request counts and prefix hit rates and writes BENCH_cluster.json.
 *
 * Every run drives the engine exclusively through the narrow
 * ServingClient seam (submit/drain), never the Engine directly, so the
 * same code path covers one replica and a Cluster.
 *
 * `--smoke` runs views 3, 5, 6, 7 and 8 as CI gates: shared-prefix reuse
 * must sustain >= 1.5x the baseline req/s with matching digests, chunked
 * prefill must cut decode-stall p99 >= 3x vs monolithic at equal
 * throughput (within 10%) with a byte-identical run digest, the tiered
 * pool must hold >= 3x the peak resident sequences of the untiered
 * baseline at the same hot-pool size (digests identical), the chaos
 * storm must pass the fault-tolerance gate above, and the 4-shard
 * cluster must pass the >= 2x throughput + digest gate.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "backend/registry.h"
#include "bench_util.h"
#include "cluster/cluster.h"
#include "fault/fault.h"
#include "gpusim/arch.h"
#include "model/decode_sim.h"
#include "model/model_config.h"
#include "serving/client.h"
#include "serving/engine.h"
#include "serving/options.h"
#include "serving/trace.h"

using namespace bitdec;
using namespace bitdec::serving;

namespace {

constexpr double kTtftSloS = 15.0; //!< p99 TTFT budget for "sustained"
constexpr int kNumRequests = 24;
constexpr std::uint64_t kTraceSeed = 2026;

/**
 * Per-step functional attention backend every engine in this bench runs
 * with (--backend=<name>); empty keeps the numeric work off, which is
 * the CI default — run digests then fold only the cache-content hashes
 * and stay byte-comparable across backend-independent refactors.
 */
std::string g_backend;

struct SystemUnderTest
{
    const char* label;
    model::SystemKind system;
    int bits;
};

const SystemUnderTest kSystems[] = {
    {"FD-v2 (fp16)", model::SystemKind::FlashDecodingFp16, 16},
    {"KIVI-4", model::SystemKind::Kivi, 4},
    {"BitDecoding-4", model::SystemKind::BitDecoding, 4},
};

TraceConfig
traceAt(double rate_qps)
{
    TraceConfig tc;
    tc.seed = kTraceSeed;
    tc.num_requests = kNumRequests;
    tc.arrival_rate_qps = rate_qps;
    tc.prompt_median = 32768; // the paper's 32K-context serving regime
    tc.prompt_log_sigma = 0.08;
    tc.prompt_min = 24576;
    tc.prompt_max = 40960;
    tc.output_median = 1024; // long generations keep sequences resident
    tc.output_log_sigma = 0.3;
    tc.output_min = 256;
    tc.output_max = 2048;
    return tc;
}

EngineConfig
engineConfig(const SystemUnderTest& sut)
{
    EngineConfig cfg;
    cfg.system = sut.system;
    cfg.bits = sut.bits;
    cfg.page_size = 64;
    cfg.num_pages = 0; // derive from the A100 HBM budget
    cfg.cache_head_dim = 4;
    cfg.sched.max_batch = 64;
    cfg.sched.prefill_chunk_tokens = 2048;
    cfg.backend = g_backend;
    return cfg;
}

/** Submits a whole trace through the narrow seam and runs it. */
ServingMetrics
runOnClient(ServingClient& client, const std::vector<Request>& trace)
{
    for (const Request& r : trace)
        client.submit(r);
    return client.drain();
}

ServingMetrics
runOnce(const SystemUnderTest& sut, double rate_qps)
{
    auto client = makeServingClient(sim::archA100(), model::llama31_8b(),
                                    engineConfig(sut));
    return runOnClient(*client, generateTrace(traceAt(rate_qps)));
}

// ------------------------------------------------ shared-prefix reuse --

/** 24 bursty requests sharing a 24K system prompt with ~8K unique tails. */
TraceConfig
sharedPrefixTrace()
{
    TraceConfig tc;
    tc.seed = kTraceSeed;
    tc.num_requests = kNumRequests;
    tc.arrival_rate_qps = 2.0; // burst: service rate, not arrivals, binds
    tc.shared_prefix_tokens = 24576;
    tc.prompt_median = 8192; // unique tail after the system prompt
    tc.prompt_log_sigma = 0.2;
    tc.prompt_min = 4096;
    tc.prompt_max = 16384;
    tc.output_median = 256;
    tc.output_log_sigma = 0.3;
    tc.output_min = 64;
    tc.output_max = 512;
    return tc;
}

ServingMetrics
runSharedPrefix(bool reuse, int num_priority_levels = 1,
                serving::SchedPolicy policy = serving::SchedPolicy::Fcfs,
                int max_batch = 64)
{
    TraceConfig tc = sharedPrefixTrace();
    tc.num_priority_levels = num_priority_levels;
    SystemUnderTest bd4{"BitDecoding-4", model::SystemKind::BitDecoding, 4};
    EngineConfig cfg = engineConfig(bd4);
    cfg.sched.prefix_reuse = reuse;
    cfg.sched.policy = policy;
    cfg.sched.max_batch = max_batch;
    auto client = makeServingClient(sim::archA100(), model::llama31_8b(), cfg);
    return runOnClient(*client, generateTrace(tc));
}

/**
 * Runs the shared-prefix scenario both ways and checks the gate:
 * >= @p min_speedup sustained req/s and identical digests.
 * @return true when the gate passes.
 */
bool
sharedPrefixSection(double min_speedup)
{
    bench::section("Shared-prefix reuse: 24K common system prompt, "
                   "~8K unique tails (BitDecoding-4)");
    const ServingMetrics cold = runSharedPrefix(false);
    const ServingMetrics hit = runSharedPrefix(true);

    bench::head("mode", {"req/s", "ttft-p50", "ttft-p99", "cold-tok",
                         "hit-tok", "hit-rate", "cow"});
    bench::row("no reuse (cold prefill)",
               {cold.sustained_qps, cold.ttft_p50_s, cold.ttft_p99_s,
                static_cast<double>(cold.prefill_tokens),
                static_cast<double>(cold.prefix_hit_tokens),
                cold.prefix_hit_rate, static_cast<double>(cold.cow_copies)});
    bench::row("prefix page reuse",
               {hit.sustained_qps, hit.ttft_p50_s, hit.ttft_p99_s,
                static_cast<double>(hit.prefill_tokens),
                static_cast<double>(hit.prefix_hit_tokens),
                hit.prefix_hit_rate, static_cast<double>(hit.cow_copies)});

    const double speedup =
        cold.sustained_qps > 0 ? hit.sustained_qps / cold.sustained_qps : 0;
    const bool digests_match = cold.outputs_digest == hit.outputs_digest;
    std::printf("\nreuse sustains %.2fx req/s; digests %s "
                "(%016llx vs %016llx)\n",
                speedup, digests_match ? "match" : "DIFFER",
                static_cast<unsigned long long>(cold.outputs_digest),
                static_cast<unsigned long long>(hit.outputs_digest));

    const bool pass = speedup >= min_speedup && digests_match;
    if (!pass)
        std::printf("FAIL: expected >= %.2fx speedup with matching "
                    "digests\n",
                    min_speedup);
    return pass;
}

void
policySection()
{
    bench::section("Scheduling policy: per-priority TTFT, three classes "
                   "(0 = background, 2 = interactive), batch cap 4");
    bench::head("policy / priority", {"count", "ttft-mean", "ttft-p95"});
    for (const auto policy :
         {serving::SchedPolicy::Fcfs, serving::SchedPolicy::Priority}) {
        // A tight batch cap forces an admission queue, where the policies
        // actually differ.
        const ServingMetrics m = runSharedPrefix(true, 3, policy, 4);
        for (const auto& p : m.ttft_by_priority) {
            char label[64];
            std::snprintf(label, sizeof(label), "%s / p%d",
                          serving::toString(policy), p.priority);
            bench::row(label,
                       {static_cast<double>(p.count), p.mean_s, p.p95_s});
        }
    }
}

// ---------------------------------------------------- chunked prefill --

/**
 * Interactive decode traffic with 100K-token stragglers: every second
 * request is a fixed 100K prompt landing while the short-prompt requests
 * are mid-decode. Outputs are short so the stragglers' prefill ticks are
 * a visible fraction of every request's inter-token gaps.
 */
TraceConfig
longPromptTrace()
{
    TraceConfig tc;
    tc.seed = kTraceSeed;
    tc.num_requests = 16;
    tc.arrival_rate_qps = 2.0; // burst: stragglers land mid-decode
    tc.prompt_median = 2048;   // short interactive prompts...
    tc.prompt_log_sigma = 0.2;
    tc.prompt_min = 1024;
    tc.prompt_max = 4096;
    tc.output_median = 64;
    tc.output_log_sigma = 0.3;
    tc.output_min = 32;
    tc.output_max = 128;
    tc.long_prompt_every = 2; // ...and a 100K prompt every other request
    tc.long_prompt_tokens = 100 * 1024;
    return tc;
}

/** One long-prompt run at the given per-tick budget (0 = monolithic). */
ServingMetrics
runLongPrompt(int prefill_chunk_tokens)
{
    SystemUnderTest bd4{"BitDecoding-4", model::SystemKind::BitDecoding, 4};
    EngineConfig cfg = engineConfig(bd4);
    cfg.sched.prefill_chunk_tokens = prefill_chunk_tokens;
    auto client = makeServingClient(sim::archA100(), model::llama31_8b(), cfg);
    return runOnClient(*client, generateTrace(longPromptTrace()));
}

/**
 * Sweeps per-tick prefill budgets against monolithic prefill and checks
 * the gate: the 2048-token budget must cut decode-stall p99 by
 * >= @p min_stall_ratio at equal throughput (within 10%) with an
 * identical run digest. @return true when the gate passes.
 */
bool
chunkedPrefillSection(double min_stall_ratio)
{
    bench::section("Chunked prefill: 100K prompts arriving mid-decode "
                   "(BitDecoding-4, decode-stall = inter-token gap)");
    const ServingMetrics mono = runLongPrompt(0);
    bench::head("prefill mode", {"stall-p50", "stall-p99", "stall-max",
                                 "ttft-p99", "tok/s", "preempt"});
    const auto report = [](const char* label, const ServingMetrics& m) {
        bench::row(label, {m.decode_stall_p50_s, m.decode_stall_p99_s,
                           m.decode_stall_max_s, m.ttft_p99_s,
                           m.sustained_tokens_per_s,
                           static_cast<double>(m.preemptions)});
    };
    report("monolithic (chunking off)", mono);

    ServingMetrics gated; // the 2048-budget run the CI gate judges
    for (const int budget : {8192, 2048, 512}) {
        const ServingMetrics m = runLongPrompt(budget);
        char label[48];
        std::snprintf(label, sizeof(label), "chunked, budget %d tok/tick",
                      budget);
        report(label, m);
        if (budget == 2048)
            gated = m;
    }

    const double stall_ratio = gated.decode_stall_p99_s > 0
                                   ? mono.decode_stall_p99_s /
                                         gated.decode_stall_p99_s
                                   : 0;
    const double tput_ratio = mono.sustained_tokens_per_s > 0
                                  ? gated.sustained_tokens_per_s /
                                        mono.sustained_tokens_per_s
                                  : 0;
    const bool digests_match = mono.outputs_digest == gated.outputs_digest;
    std::printf("\nbudget 2048 cuts decode-stall p99 %.1fx at %.2fx "
                "throughput; digests %s (%016llx vs %016llx)\n",
                stall_ratio, tput_ratio,
                digests_match ? "match" : "DIFFER",
                static_cast<unsigned long long>(mono.outputs_digest),
                static_cast<unsigned long long>(gated.outputs_digest));

    const bool pass =
        stall_ratio >= min_stall_ratio && tput_ratio >= 0.9 && digests_match;
    if (!pass)
        std::printf("FAIL: expected >= %.1fx stall-p99 cut at >= 0.9x "
                    "throughput with matching digests\n",
                    min_stall_ratio);
    return pass;
}

// ---------------------------------------------------- tiered KV cache --

/**
 * Interactive traffic plus 24 parked 32K-context idle sessions — the
 * oversubscription workload where cold tiers carry what the hot pool
 * cannot: 24 x 512 pages of parked KV against a 2048-page hot pool.
 */
TraceConfig
tieredTrace()
{
    TraceConfig tc;
    tc.seed = kTraceSeed;
    tc.num_requests = 8;
    tc.arrival_rate_qps = 2.0;
    tc.prompt_median = 8192; // interactive foreground traffic
    tc.prompt_log_sigma = 0.2;
    tc.prompt_min = 4096;
    tc.prompt_max = 16384;
    tc.output_median = 128;
    tc.output_log_sigma = 0.3;
    tc.output_min = 64;
    tc.output_max = 256;
    tc.num_idle_sessions = 24;
    tc.idle_prompt_tokens = 32768; // the paper's 32K-context regime
    tc.idle_output_tokens = 8;
    tc.idle_wake_s = 60.0; // every session is parked before wakes begin
    tc.idle_wake_stagger_s = 2.0;
    return tc;
}

/** Hot pool for the tiered scenario: 4 resident 32K sessions (~1/6 of
 *  the 24-session parked demand plus foreground traffic). */
constexpr int kTieredHotPages = 2048;

ServingMetrics
runTiered(bool tiered, const fault::FaultSchedule& faults = {},
          std::uint64_t fault_seed = 0xB17DEC)
{
    auto trace = generateTrace(tieredTrace());
    SystemUnderTest bd4{"BitDecoding-4", model::SystemKind::BitDecoding, 4};
    EngineConfig cfg = engineConfig(bd4);
    cfg.num_pages = kTieredHotPages;
    cfg.faults = faults;
    cfg.fault_seed = fault_seed;
    if (tiered) {
        kv::TierSpec host;
        host.name = "host";
        host.capacity_gb = 8.0;
        host.bandwidth_gbps = 32.0;
        host.latency_s = 10e-6;
        kv::TierSpec disk;
        disk.name = "disk";
        disk.capacity_gb = 64.0;
        disk.bandwidth_gbps = 4.0;
        disk.latency_s = 100e-6;
        cfg.tiered.tiers = {host, disk};
        cfg.tiered.prefetch_pages = 8;
        // bytes_per_page = 0: derived from the model and bit width, so
        // the 4-bit pages cross tiers packed (4x denser than FP16).
    }
    auto client = makeServingClient(sim::archA100(), model::llama31_8b(), cfg);
    return runOnClient(*client, trace);
}

/**
 * Runs the oversubscription scenario with and without cold tiers at the
 * same hot-pool size and checks the gate: the tiered run must hold
 * >= @p min_capacity_ratio x the peak resident sequences with an
 * identical run digest. Writes BENCH_tiered_kv.json either way.
 * @return true when the gate passes.
 */
bool
tieredKvSection(double min_capacity_ratio, bool smoke)
{
    bench::section("Tiered KV cache: 24 parked 32K sessions vs a "
                   "2048-page hot pool (BitDecoding-4, host+disk tiers)");
    const ServingMetrics cold = runTiered(false);
    const ServingMetrics hot = runTiered(true);

    bench::head("mode", {"req/s", "stall-p99", "hit-rate", "peak-seq",
                         "cold-res", "recomp", "preempt"});
    bench::row("untiered (recompute)",
               {cold.sustained_qps, cold.fetch_stall_p99_s,
                cold.tier_hit_rate,
                static_cast<double>(cold.peak_resident_seqs),
                static_cast<double>(cold.cold_resumes),
                static_cast<double>(cold.recompute_resumes),
                static_cast<double>(cold.preemptions)});
    bench::row("tiered (host+disk)",
               {hot.sustained_qps, hot.fetch_stall_p99_s, hot.tier_hit_rate,
                static_cast<double>(hot.peak_resident_seqs),
                static_cast<double>(hot.cold_resumes),
                static_cast<double>(hot.recompute_resumes),
                static_cast<double>(hot.preemptions)});

    bench::head("tier traffic", {"offload", "fetch", "prefetch", "pf-hit",
                                 "spill", "drop"});
    bench::row("pages",
               {static_cast<double>(hot.tier.offloaded_pages),
                static_cast<double>(hot.tier.fetched_pages),
                static_cast<double>(hot.tier.prefetched_pages),
                static_cast<double>(hot.tier.prefetch_hits),
                static_cast<double>(hot.tier.spilled_pages),
                static_cast<double>(hot.tier.dropped_pages)});
    bench::head("tier occupancy", {"capacity", "avg-used", "peak-used"});
    for (const auto& t : hot.tiers)
        bench::row(t.name, {static_cast<double>(t.capacity_pages),
                            t.avg_used_pages,
                            static_cast<double>(t.peak_used_pages)});

    const double capacity_ratio =
        cold.peak_resident_seqs > 0
            ? static_cast<double>(hot.peak_resident_seqs) /
                  cold.peak_resident_seqs
            : 0;
    const bool digests_match = cold.outputs_digest == hot.outputs_digest;
    std::printf("\ntiering holds %.1fx the peak resident sequences at the "
                "same hot pool; digests %s (%016llx vs %016llx)\n",
                capacity_ratio, digests_match ? "match" : "DIFFER",
                static_cast<unsigned long long>(cold.outputs_digest),
                static_cast<unsigned long long>(hot.outputs_digest));

    FILE* f = std::fopen("BENCH_tiered_kv.json", "w");
    if (f) {
        std::fprintf(f, "{\n  \"bench\": \"tiered_kv\",\n");
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"hot_pages\": %d, \"idle_sessions\": 24, "
                        "\"idle_context\": 32768,\n",
                     kTieredHotPages);
        std::fprintf(f, "  \"untiered\": %s,\n",
                     cold.toJson("  ").c_str());
        std::fprintf(f, "  \"tiered\": %s,\n", hot.toJson("  ").c_str());
        std::fprintf(f, "  \"capacity_ratio\": %.2f, \"digests_match\": %s\n",
                     capacity_ratio, digests_match ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("wrote BENCH_tiered_kv.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_tiered_kv.json\n");
    }

    const bool pass = capacity_ratio >= min_capacity_ratio && digests_match;
    if (!pass)
        std::printf("FAIL: expected >= %.1fx peak resident sequences with "
                    "matching digests\n",
                    min_capacity_ratio);
    return pass;
}

// --------------------------------------------------- fault tolerance --

/** Default chaos storm for the fault-tolerance gate: every fault kind
 *  at >= 1%, layered over the whole run (--faults= overrides it). */
// 20% of corruptions are multi-bit: most rot repairs in place via the
// page ECC, the rest still exercises the drop-and-recompute escalation.
constexpr const char* kDefaultStorm =
    "fetch=0.02,corrupt=0.01,spike=0.02,alloc=0.01,mult=50,multibit=0.2";

/**
 * Runs the tiered oversubscription scenario fault-free, then under the
 * chaos storm across several fault seeds, and checks the gate: every
 * chaos run must finish all requests with a run digest byte-identical
 * to the fault-free run, at >= @p min_tput_ratio of its throughput.
 * Writes BENCH_fault_tolerance.json either way.
 * @return true when the gate passes.
 */
bool
faultToleranceSection(double min_tput_ratio, bool smoke,
                      const ServingOptions& opts)
{
    bench::section("Fault tolerance: chaos storm on the tiered scenario "
                   "(checksums, retry+backoff, recompute escalation)");
    const std::string spec =
        opts.fault_spec.empty() ? kDefaultStorm : opts.fault_spec;
    const fault::FaultSchedule storm = fault::FaultSchedule::parse(spec);
    std::printf("storm: %s\n\n", storm.summary().c_str());

    const ServingMetrics clean = runTiered(true);
    std::vector<std::uint64_t> seeds = {1337, 4242, 9001};
    if (opts.fault_seed_given)
        seeds.push_back(opts.fault_seed);

    bench::head("run", {"req/s", "tput-x", "faults", "retries", "repair",
                        "cksum", "recomp", "digest"});
    bench::row("fault-free",
               {clean.sustained_qps, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0});

    struct SeedResult
    {
        std::uint64_t seed;
        ServingMetrics m;
        double tput_ratio;
        bool digest_match;
    };
    std::vector<SeedResult> results;
    bool all_match = true, all_finished = true, any_fired = false;
    double min_ratio = 1.0;
    for (const std::uint64_t seed : seeds) {
        const ServingMetrics m = runTiered(true, storm, seed);
        const double ratio = clean.sustained_qps > 0
                                 ? m.sustained_qps / clean.sustained_qps
                                 : 0;
        const bool match = m.outputs_digest == clean.outputs_digest;
        char label[32];
        std::snprintf(label, sizeof(label), "seed %llu",
                      static_cast<unsigned long long>(seed));
        bench::row(label,
                   {m.sustained_qps, ratio,
                    static_cast<double>(m.faults_injected.total()),
                    static_cast<double>(m.fetch_retries),
                    static_cast<double>(m.tier.repaired_pages),
                    static_cast<double>(m.tier.checksum_failures),
                    static_cast<double>(m.recompute_recoveries),
                    match ? 1.0 : 0.0});
        all_match &= match;
        all_finished &= m.num_requests == clean.num_requests;
        any_fired |= m.faults_injected.total() > 0;
        min_ratio = std::min(min_ratio, ratio);
        results.push_back({seed, m, ratio, match});
    }

    std::printf("\n%zu chaos seeds: digests %s the fault-free run, worst "
                "throughput %.2fx\n",
                seeds.size(), all_match ? "all match" : "DIFFER from",
                min_ratio);

    FILE* f = std::fopen("BENCH_fault_tolerance.json", "w");
    if (f) {
        std::fprintf(f, "{\n  \"bench\": \"fault_tolerance\",\n");
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"storm\": \"%s\",\n", spec.c_str());
        std::fprintf(f, "  \"fault_free\": %s,\n",
                     clean.toJson("  ").c_str());
        std::fprintf(f, "  \"seeds\": [\n");
        for (std::size_t i = 0; i < results.size(); i++) {
            const SeedResult& r = results[i];
            std::fprintf(f,
                         "    {\"seed\": %llu, \"tput_ratio\": %.4f, "
                         "\"digest_match\": %s,\n"
                         "     \"metrics\": %s}%s\n",
                         static_cast<unsigned long long>(r.seed),
                         r.tput_ratio, r.digest_match ? "true" : "false",
                         r.m.toJson("     ").c_str(),
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f,
                     "  \"min_tput_ratio\": %.4f, \"digests_match\": %s, "
                     "\"all_finished\": %s\n}\n",
                     min_ratio, all_match ? "true" : "false",
                     all_finished ? "true" : "false");
        std::fclose(f);
        std::printf("wrote BENCH_fault_tolerance.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_fault_tolerance.json\n");
    }

    const bool pass = all_match && all_finished && any_fired &&
                      min_ratio >= min_tput_ratio;
    if (!pass)
        std::printf("FAIL: expected matching digests, every request "
                    "finished, faults fired and >= %.2fx throughput "
                    "under the storm\n",
                    min_tput_ratio);
    return pass;
}

// --------------------------------------------------- sharded cluster --

constexpr int kClusterShards = 4;
constexpr int kClusterRequests = 32;       //!< 4x the base 24-ish load
constexpr double kClusterRateQps = 0.80;   //!< 4x the 0.20 base rate
constexpr int kPrefixFamilies = 8;
constexpr int kFamilyPrefixTokens = 8192;  //!< shared head per family

/**
 * 4x the base offered load — 32 requests of ~32K context at 0.8 req/s —
 * grouped round-robin into eight prefix families of 8K shared tokens,
 * the workload the sticky router is built for: families stay on their
 * home shard (prefix pages map instead of re-prefilling) while the
 * round-robin family order spreads load across all shards.
 */
std::vector<Request>
clusterTrace()
{
    TraceConfig tc = traceAt(kClusterRateQps);
    tc.num_requests = kClusterRequests;
    auto trace = generateTrace(tc);
    for (std::size_t i = 0; i < trace.size(); i++) {
        trace[i].prefix_id = 0xC1005EED0000ull + (i % kPrefixFamilies);
        trace[i].prefix_tokens = kFamilyPrefixTokens;
    }
    return trace;
}

/**
 * Runs the 4x-load trace on one engine and on a 4-shard cluster behind
 * the same ServingClient seam and checks the gate: the cluster must
 * sustain >= @p min_qps_ratio x the single engine's req/s with a
 * byte-identical run digest. Writes BENCH_cluster.json either way.
 * @return true when the gate passes.
 */
bool
clusterSection(double min_qps_ratio, bool smoke)
{
    bench::section("Sharded cluster: 4 replicas + sticky prefix router "
                   "vs 1 engine at the same 4x offered load "
                   "(BitDecoding-4, 8 prefix families)");
    const auto trace = clusterTrace();
    SystemUnderTest bd4{"BitDecoding-4", model::SystemKind::BitDecoding, 4};
    const EngineConfig cfg = engineConfig(bd4);

    auto single = makeServingClient(sim::archA100(), model::llama31_8b(),
                                    cfg, 1);
    const ServingMetrics one = runOnClient(*single, trace);

    auto clustered = makeServingClient(sim::archA100(), model::llama31_8b(),
                                       cfg, kClusterShards);
    const ServingMetrics four = runOnClient(*clustered, trace);
    const auto* cl =
        dynamic_cast<const cluster::Cluster*>(clustered.get());

    bench::head("topology", {"req/s", "ttft-p50", "ttft-p99", "p99-lat",
                             "tok/s", "hit-rate", "preempt"});
    const auto report = [](const char* label, const ServingMetrics& m) {
        bench::row(label, {m.sustained_qps, m.ttft_p50_s, m.ttft_p99_s,
                           m.latency_p99_s, m.sustained_tokens_per_s,
                           m.prefix_hit_rate,
                           static_cast<double>(m.preemptions)});
    };
    report("1 engine (4x load)", one);
    report("4-shard cluster", four);

    if (cl != nullptr) {
        const cluster::ClusterMetrics& cm = cl->clusterMetrics();
        bench::head("shard", {"requests", "req/s", "hit-rate", "pool-util",
                              "preempt"});
        for (std::size_t s = 0; s < cm.per_shard.size(); s++) {
            char label[32];
            std::snprintf(label, sizeof(label), "shard %zu", s);
            bench::row(label,
                       {static_cast<double>(
                            cm.router.per_shard_requests[s]),
                        cm.per_shard[s].sustained_qps,
                        cm.per_shard[s].prefix_hit_rate,
                        cm.per_shard[s].avg_page_utilization,
                        static_cast<double>(cm.per_shard[s].preemptions)});
        }
        std::printf("\nrouter: %ld routed = %ld sticky + %ld cold + %ld "
                    "least-loaded, %ld rebalances\n",
                    cm.router.routed, cm.router.sticky_hits,
                    cm.router.cold_placements, cm.router.least_loaded,
                    cm.router.rebalances);
    }

    const double qps_ratio =
        one.sustained_qps > 0 ? four.sustained_qps / one.sustained_qps : 0;
    const bool digests_match = one.outputs_digest == four.outputs_digest;
    std::printf("\n%d shards sustain %.2fx the single engine's req/s; "
                "digests %s (%016llx vs %016llx)\n",
                kClusterShards, qps_ratio,
                digests_match ? "match" : "DIFFER",
                static_cast<unsigned long long>(one.outputs_digest),
                static_cast<unsigned long long>(four.outputs_digest));

    FILE* f = std::fopen("BENCH_cluster.json", "w");
    if (f) {
        std::fprintf(f, "{\n  \"bench\": \"cluster\",\n");
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f,
                     "  \"shards\": %d, \"requests\": %d, "
                     "\"rate_qps\": %.2f, \"prefix_families\": %d, "
                     "\"prefix_tokens\": %d,\n",
                     kClusterShards, kClusterRequests, kClusterRateQps,
                     kPrefixFamilies, kFamilyPrefixTokens);
        std::fprintf(f, "  \"single\": %s,\n", one.toJson("  ").c_str());
        std::fprintf(f, "  \"cluster\": %s,\n", four.toJson("  ").c_str());
        if (cl != nullptr) {
            const cluster::ClusterMetrics& cm = cl->clusterMetrics();
            std::fprintf(f, "  \"per_shard\": [\n");
            for (std::size_t s = 0; s < cm.per_shard.size(); s++)
                std::fprintf(
                    f,
                    "    {\"shard\": %zu, \"requests\": %ld, "
                    "\"req_per_s\": %.4f, \"prefix_hit_rate\": %.4f, "
                    "\"avg_page_utilization\": %.4f, "
                    "\"preemptions\": %d}%s\n",
                    s, cm.router.per_shard_requests[s],
                    cm.per_shard[s].sustained_qps,
                    cm.per_shard[s].prefix_hit_rate,
                    cm.per_shard[s].avg_page_utilization,
                    cm.per_shard[s].preemptions,
                    s + 1 < cm.per_shard.size() ? "," : "");
            std::fprintf(f, "  ],\n");
            std::fprintf(f,
                         "  \"router\": {\"routed\": %ld, "
                         "\"sticky_hits\": %ld, \"cold_placements\": %ld, "
                         "\"least_loaded\": %ld, \"rebalances\": %ld},\n",
                         cm.router.routed, cm.router.sticky_hits,
                         cm.router.cold_placements, cm.router.least_loaded,
                         cm.router.rebalances);
        }
        std::fprintf(f, "  \"qps_ratio\": %.2f, \"digests_match\": %s\n",
                     qps_ratio, digests_match ? "true" : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("wrote BENCH_cluster.json\n");
    } else {
        std::fprintf(stderr, "cannot write BENCH_cluster.json\n");
    }

    const bool pass = qps_ratio >= min_qps_ratio && digests_match;
    if (!pass)
        std::printf("FAIL: expected >= %.1fx req/s over the single engine "
                    "with matching digests\n",
                    min_qps_ratio);
    return pass;
}

} // namespace

int
main(int argc, char** argv)
{
    const ServingOptions opts = ServingOptions::parse(argc, argv);
    if (opts.maybeListBackends())
        return 0;
    const bool smoke = opts.smoke;
    if (!opts.backend.empty()) {
        // Resolve up front: an unknown or paged-incapable name dies here
        // with the registry listing, before any multi-minute sweep runs.
        backend::requireServingCapable(
            backend::BackendRegistry::instance().resolve(opts.backend));
        g_backend = opts.backend;
        std::printf("per-step functional attention backend: %s\n",
                    g_backend.c_str());
    }
    if (smoke) {
        // CI gates: prefix reuse + chunked prefill + tiered KV cache +
        // chaos storm + sharded cluster, hard pass/fail.
        bench::banner("Serving E2E smoke: prefix-reuse, chunked-prefill, "
                      "tiered-KV, fault-tolerance and cluster gates");
        const bool prefix_ok = sharedPrefixSection(1.5);
        const bool chunk_ok = chunkedPrefillSection(3.0);
        const bool tiered_ok = tieredKvSection(3.0, true);
        const bool fault_ok = faultToleranceSection(0.8, true, opts);
        const bool cluster_ok = clusterSection(2.0, true);
        return prefix_ok && chunk_ok && tiered_ok && fault_ok && cluster_ok
                   ? 0
                   : 1;
    }

    bench::banner("Serving E2E: continuous batching, 32K context "
                  "(A100, llama-3.1-8B)");
    std::printf("Poisson arrivals, lognormal prompts (median 32K) and "
                "outputs (median 1K),\n%d requests per run, seed %llu.\n",
                kNumRequests,
                static_cast<unsigned long long>(kTraceSeed));

    // ------------------------------------------------ fixed offered load
    const double base_rate = 0.20;
    bench::section("Tail latency at 0.20 req/s offered load");
    bench::head("system", {"pages", "ttft-p50", "ttft-p99", "tpot-ms",
                           "p99-lat", "tok/s", "preempt"});
    for (const auto& sut : kSystems) {
        auto client = makeServingClient(sim::archA100(), model::llama31_8b(),
                                        engineConfig(sut));
        const int pool_pages = client->stats().total_pool_pages;
        const ServingMetrics m =
            runOnClient(*client, generateTrace(traceAt(base_rate)));
        bench::row(sut.label,
                   {static_cast<double>(pool_pages), m.ttft_p50_s,
                    m.ttft_p99_s, m.tpot_mean_s * 1e3, m.latency_p99_s,
                    m.sustained_tokens_per_s,
                    static_cast<double>(m.preemptions)});
    }

    // ------------------------------------------------- saturation sweep
    bench::section("Saturation sweep: p99 TTFT vs arrival rate "
                   "(SLO 15 s; '-' = violated)");
    const std::vector<double> rates = {0.02, 0.03, 0.04, 0.06, 0.08,
                                       0.10, 0.12, 0.16, 0.20, 0.25};
    std::vector<std::string> rate_cols;
    for (double r : rates) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.2f", r);
        rate_cols.push_back(buf);
    }
    bench::head("system", rate_cols);

    std::vector<double> max_rate(std::size(kSystems), 0.0);
    for (std::size_t i = 0; i < std::size(kSystems); i++) {
        std::printf("%-28s", kSystems[i].label);
        for (double r : rates) {
            const ServingMetrics m = runOnce(kSystems[i], r);
            if (m.ttft_p99_s <= kTtftSloS) {
                std::printf("%10.1f", m.ttft_p99_s);
                max_rate[i] = r;
            } else {
                std::printf("%10s", "-");
            }
        }
        std::printf("\n");
    }

    bench::section("Max sustained arrival rate (req/s)");
    for (std::size_t i = 0; i < std::size(kSystems); i++)
        bench::row(kSystems[i].label, {max_rate[i]}, "%10.2f");

    const double fp16 = max_rate[0], bitdec = max_rate[2];
    if (bitdec > fp16)
        std::printf("\nBitDecoding-4 sustains %.2f req/s vs %.2f for FP16 "
                    "(%.1fx): the 4-bit page pool admits ~4x the "
                    "concurrent 32K sequences.\n",
                    bitdec, fp16, fp16 > 0 ? bitdec / fp16 : 0.0);
    else
        std::printf("\nWARNING: BitDecoding-4 did not beat FP16 "
                    "(%.2f vs %.2f req/s)\n",
                    bitdec, fp16);

    const bool prefix_ok = sharedPrefixSection(1.5);
    policySection();
    const bool chunk_ok = chunkedPrefillSection(3.0);
    const bool tiered_ok = tieredKvSection(3.0, false);
    const bool fault_ok = faultToleranceSection(0.8, false, opts);
    const bool cluster_ok = clusterSection(2.0, false);
    return prefix_ok && chunk_ok && tiered_ok && fault_ok && cluster_ok
               ? 0
               : 1;
}
