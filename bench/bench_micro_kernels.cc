/**
 * @file
 * Host-side micro-benchmarks (google-benchmark) of the functional kernels:
 * quantization, induced packing, fast dequantization and the warp-emulated
 * Packing Kernel. These measure the simulator itself, not GPU latency.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/bitdecoding.h"
#include "layout/induced_layout.h"
#include "quant/fast_dequant.h"
#include "quant/int_quant.h"
#include "quant/mx_format.h"

using namespace bitdec;

namespace {

Tensor<Half>
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor<Half> m({rows, cols});
    for (std::size_t i = 0; i < m.numel(); i++)
        m[i] = Half(rng.normal());
    return m;
}

void
BM_QuantizeMatrix(benchmark::State& state)
{
    const auto x = randomMatrix(128, 128, 1);
    const int bits = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto q = quant::quantizeMatrix(x, bits,
                                       quant::Granularity::ChannelWise, 32);
        benchmark::DoNotOptimize(q.codes.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(x.numel()));
}
BENCHMARK(BM_QuantizeMatrix)->Arg(4)->Arg(2);

void
BM_PackInduced(benchmark::State& state)
{
    layout::WarpTiling tiling;
    const layout::InducedLayout lay(tiling, 4, 128, 128);
    Rng rng(2);
    Tensor<std::uint8_t> codes({128, 128});
    for (std::size_t i = 0; i < codes.numel(); i++)
        codes[i] = static_cast<std::uint8_t>(rng.uniformInt(16));
    for (auto _ : state) {
        auto units = packInduced(lay, codes);
        benchmark::DoNotOptimize(units.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(codes.numel()));
}
BENCHMARK(BM_PackInduced);

void
BM_FastDequantWord(benchmark::State& state)
{
    const int bits = static_cast<int>(state.range(0));
    const quant::QuantParams p = quant::computeParams(-2.f, 2.f, bits);
    Half out[16];
    std::uint32_t word = 0xA5C3F012u;
    for (auto _ : state) {
        quant::fastDequantWord(word, bits, p, out);
        benchmark::DoNotOptimize(out);
        word = word * 1664525u + 1013904223u;
    }
    state.SetItemsProcessed(state.iterations() *
                            quant::codesPerWord(bits));
}
BENCHMARK(BM_FastDequantWord)->Arg(4)->Arg(2);

void
BM_MxEncode(benchmark::State& state)
{
    Rng rng(3);
    std::vector<float> x(4096);
    for (auto& v : x)
        v = rng.normal();
    for (auto _ : state) {
        auto enc = quant::mxEncode(x, quant::MxKind::MXFP4);
        benchmark::DoNotOptimize(enc.codes.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_MxEncode);

void
BM_PackingKernelAttention(benchmark::State& state)
{
    core::BitDecodingConfig cfg;
    core::HeadDecoder dec(64, cfg);
    const auto k = randomMatrix(
        static_cast<std::size_t>(dec.cache().residualBlockSize()), 64, 4);
    const auto v = randomMatrix(
        static_cast<std::size_t>(dec.cache().residualBlockSize()), 64, 5);
    dec.prefill(k, v);
    const auto q = randomMatrix(8, 64, 6);
    for (auto _ : state) {
        auto res = dec.decodeStep(q, 0.125f);
        benchmark::DoNotOptimize(res.out.data());
    }
}
BENCHMARK(BM_PackingKernelAttention)->Unit(benchmark::kMillisecond);

} // namespace
