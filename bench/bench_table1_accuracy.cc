/**
 * @file
 * Table I: efficiency/accuracy trade-off of low-bit KV caches —
 * serving throughput (LLaMA-3.1-8B @32K, max batch) and the synthetic
 * LongBench-proxy accuracy for FP16 / INT4 / INT2.
 */
#include "bench_util.h"
#include "gpusim/arch.h"
#include "model/accuracy_proxy.h"
#include "model/decode_sim.h"
#include "model/model_config.h"

using namespace bitdec;
using namespace bitdec::model;

int
main()
{
    bench::banner("Table I — efficiency and accuracy trade-off "
                  "(LLaMA-3.1-8B, seq len = 32K, A100)");

    const auto& a100 = sim::archA100();
    const auto& m = llama31_8b();
    ProxyConfig pc; // synthetic LongBench proxy (see DESIGN.md)

    E2EConfig fp16;
    fp16.system = SystemKind::FlashDecodingFp16;
    const auto r16 = maxBatchThroughput(a100, m, 32768, fp16);
    const double acc16 = proxyScoreFp16(pc).accuracy;

    bench::head("KV cache", {"tok/s", "speedup", "proxy acc", "delta"});
    bench::row("FP16", {r16.tokens_per_s, 1.0, acc16, 0.0});
    for (int bits : {4, 2}) {
        E2EConfig c;
        c.system = SystemKind::BitDecoding;
        c.bits = bits;
        const auto r = maxBatchThroughput(a100, m, 32768, c);
        quant::QuantConfig qc;
        qc.bits = bits;
        qc.key_granularity = quant::Granularity::ChannelWise;
        qc.group_size = 32;
        const double acc = proxyScoreQuantized(pc, qc).accuracy;
        bench::row("INT" + std::to_string(bits),
                   {r.tokens_per_s, r.tokens_per_s / r16.tokens_per_s, acc,
                    acc - acc16});
    }
    std::printf("\nShape check: INT4 ~3x throughput at near-zero accuracy "
                "cost; INT2 maximizes throughput with a small, visible "
                "drop (proxy benchmark, not LongBench itself).\n");
    return 0;
}
