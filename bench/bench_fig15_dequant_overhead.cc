/**
 * @file
 * Fig. 15: dequantization overhead analysis.
 * (a) dequant share of kernel time: Atom, QServe, BitDecoding KT-4/KC-4/
 *     KC-2 (A100, MHA so Atom participates);
 * (b) micro counters: memory throughput, Tensor-Core, FMA and ALU
 *     utilization for Atom vs BitDecoding.
 */
#include <tuple>

#include "attention/qserve_baseline.h"
#include "bench_util.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"

using namespace bitdec;

int
main()
{
    bench::banner("Fig. 15 — dequantization overhead (A100, 32k, MHA)");
    const auto& a100 = sim::archA100();
    attn::DecodeShape s;
    s.batch = 8;
    s.num_q_heads = 32;
    s.num_kv_heads = 32;
    s.seq_len = 32768;

    bench::section("(a) kernel latency and dequant share");
    bench::head("system", {"total ms", "dequant ms", "share %"});
    for (auto sys : {attn::CudaCoreSystem::Atom, attn::CudaCoreSystem::QServe}) {
        const auto t = attn::cudaCoreFusedTime(a100, s, sys, 4);
        // Dequant ops of the CUDA-core systems: cvt path per streamed elem.
        const double elems = 2.0 * s.batch * s.num_kv_heads *
                             static_cast<double>(s.seq_len) * s.head_dim *
                             s.groupSize();
        const double dq_ops =
            elems * (sys == attn::CudaCoreSystem::QServe ? 6.0 : 7.0);
        const double dq_s = dq_ops / a100.cudaOps();
        bench::row(sys == attn::CudaCoreSystem::Atom ? "Atom" : "QServe",
                   {t.total_s * 1e3, dq_s * 1e3,
                    100.0 * dq_s / t.total_s});
    }
    for (auto [bits, gran, name] :
         {std::tuple{4, quant::Granularity::TensorWise, "B-KT-4"},
          std::tuple{4, quant::Granularity::ChannelWise, "B-KC-4"},
          std::tuple{2, quant::Granularity::ChannelWise, "B-KC-2"}}) {
        core::BitDecodingConfig cfg;
        cfg.quant.bits = bits;
        cfg.quant.key_granularity = gran;
        const auto b = core::bitDecodingBreakdown(a100, s, cfg);
        bench::row(name, {b.total_s * 1e3, b.dequant_s * 1e3,
                          100.0 * b.dequant_s / b.total_s});
    }

    bench::section("(b) micro analysis, % (Atom vs BitDecoding-KC-4)");
    const auto atom = attn::cudaCoreFusedTime(
        a100, s, attn::CudaCoreSystem::Atom, 4);
    core::BitDecodingConfig cfg;
    const auto bd = core::bitDecodingBreakdown(a100, s, cfg);
    bench::head("counter", {"Atom", "BitDec"});
    bench::row("Mem. throughput",
               {100.0 * atom.memUtilization() /
                    (atom.kernels[0].total_s > 0
                         ? std::max(1.0, atom.kernels[0].t_dram_s * 2.0 /
                                             atom.kernels[0].total_s)
                         : 1.0),
                100.0 * bd.mem_utilization});
    bench::row("Tensor Core", {0.0, 100.0 * bd.tc_utilization});
    bench::row("FMA",
               {100.0 * atom.kernels[0].cuda_utilization * 0.45,
                100.0 * bd.fma_share * bd.dequant_s / bd.total_s});
    bench::row("ALU",
               {100.0 * atom.kernels[0].cuda_utilization * 0.55,
                100.0 * bd.alu_share * bd.dequant_s / bd.total_s});
    std::printf("\nShape check: CUDA-core systems burn ~half their time in "
                "dequant; BitDecoding keeps it under ~15%% (4-bit) / ~35%% "
                "(2-bit) and sustains higher memory throughput.\n");
    return 0;
}
