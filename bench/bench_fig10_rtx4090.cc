/**
 * @file
 * Fig. 10: kernel performance on RTX 4090 — 2x3 grid of (MHA, GQA) x
 * (Single, Batches, Pages) against KIVI-4/2, Atom and QServe.
 */
#include "attention/flash_decoding.h"
#include "attention/kivi_baseline.h"
#include "attention/qserve_baseline.h"
#include "bench_util.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"

using namespace bitdec;

namespace {

core::BitDecodingConfig
bd(int bits, quant::Granularity g)
{
    core::BitDecodingConfig c;
    c.quant.bits = bits;
    c.quant.key_granularity = g;
    return c;
}

std::vector<double>
bdSpeedups(const sim::GpuArch& arch, const attn::DecodeShape& s, double fd)
{
    return {fd / core::bitDecodingTime(
                     arch, s, bd(4, quant::Granularity::TensorWise))
                     .total_s,
            fd / core::bitDecodingTime(
                     arch, s, bd(4, quant::Granularity::ChannelWise))
                     .total_s,
            fd / core::bitDecodingTime(
                     arch, s, bd(2, quant::Granularity::ChannelWise))
                     .total_s};
}

void
runVariant(const sim::GpuArch& arch, int hkv, const std::string& name)
{
    bench::section(name + " — Single (bs=1, h_q=32, h_k=" +
                   std::to_string(hkv) + ", d=128)");
    bench::head("seq len", {"FD-v2", "KIVI-4", "KIVI-2", "BD-KT4", "BD-KC4",
                            "BD-KC2"});
    for (int len : {1024, 4096, 16384, 65536, 131072}) {
        attn::DecodeShape s;
        s.batch = 1;
        s.num_q_heads = 32;
        s.num_kv_heads = hkv;
        s.seq_len = len;
        const double fd = attn::flashDecodingTime(arch, s, 2).total_s;
        std::vector<double> cols{1.0, fd / attn::kiviTime(arch, s, 4).total_s,
                                 fd / attn::kiviTime(arch, s, 2).total_s};
        for (double v : bdSpeedups(arch, s, fd))
            cols.push_back(v);
        bench::row(std::to_string(len / 1024) + "k", cols, "%9.2fx");
    }

    bench::section(name + " — Batches (len=4k)");
    bench::head("batch", {"FD-v2", "KIVI-4", "KIVI-2", "BD-KT4", "BD-KC4",
                          "BD-KC2"});
    for (int bs : {8, 32, 64, 128}) {
        attn::DecodeShape s;
        s.batch = bs;
        s.num_q_heads = 32;
        s.num_kv_heads = hkv;
        s.seq_len = 4096;
        const double fd = attn::flashDecodingTime(arch, s, 2).total_s;
        std::vector<double> cols{1.0, fd / attn::kiviTime(arch, s, 4).total_s,
                                 fd / attn::kiviTime(arch, s, 2).total_s};
        for (double v : bdSpeedups(arch, s, fd))
            cols.push_back(v);
        bench::row(std::to_string(bs), cols, "%9.2fx");
    }

    bench::section(name + " — Pages (len=2k)");
    bench::head("batch", {"FD-v2", "Atom", "QServe", "BD-KT4", "BD-KC4",
                          "BD-KC2"});
    for (int bs : {2, 4, 8}) {
        attn::DecodeShape s;
        s.batch = bs;
        s.num_q_heads = 32;
        s.num_kv_heads = hkv;
        s.seq_len = 2048;
        s.scenario = attn::Scenario::Pages;
        const double fd = attn::flashDecodingTime(arch, s, 2).total_s;
        const double atom =
            attn::cudaCoreSystemSupports(attn::CudaCoreSystem::Atom, s)
                ? fd / attn::cudaCoreFusedTime(arch, s,
                                               attn::CudaCoreSystem::Atom, 4)
                          .total_s
                : 0.0; // Atom: no GQA support
        const double qserve =
            fd / attn::cudaCoreFusedTime(arch, s,
                                         attn::CudaCoreSystem::QServe, 4)
                     .total_s;
        std::vector<double> cols{1.0, atom, qserve};
        for (double v : bdSpeedups(arch, s, fd))
            cols.push_back(v);
        bench::row(std::to_string(bs), cols, "%9.2fx");
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 10 — kernel performance on RTX 4090 "
                  "(speedup vs FP16 FlashDecoding-v2; 0 = unsupported)");
    runVariant(sim::archRTX4090(), 32, "MHA (h_q = h_k = 32)");
    runVariant(sim::archRTX4090(), 8, "GQA (h_q = 32, h_k = 8)");
    return 0;
}
