/**
 * @file
 * Fig. 4b: micro-level comparison of the original (single warp along N)
 * FlashAttention partitioning with and without dequantization. Both runs
 * stream the same packed low-bit KV tiles; the "w/ DQ" variant adds the
 * CUDA-core dequantization work, which under wn = 1 cannot hide behind
 * the Tensor-Core MMAs — throughput and TC utilization collapse and
 * memory/dependency stalls rise.
 */
#include "attention/workloads.h"
#include "bench_util.h"
#include "gpusim/arch.h"
#include "gpusim/timing.h"
#include "quant/fast_dequant.h"

using namespace bitdec;

namespace {

sim::KernelWorkload
lowbitKernel(const attn::DecodeShape& s, bool with_dequant)
{
    quant::QuantConfig qc;
    qc.bits = 4;
    qc.group_size = 32;

    sim::KernelWorkload wl;
    wl.label = with_dequant ? "w/ dequant" : "w/o dequant";
    wl.dram_read_bytes = s.packedKvBytes(4) + s.metadataBytes(qc);
    wl.tc_flops_fp16 = attn::tcFlopsIssued(s);
    wl.cuda = attn::softmaxOps(s);
    if (with_dequant) {
        const double elems = 2.0 * s.batch * s.num_kv_heads *
                             static_cast<double>(s.seq_len) * s.head_dim;
        const quant::DequantCost cost = quant::dequantWordCost(4, true);
        wl.cuda.alu += elems / 8.0 * cost.alu;
        wl.cuda.fma += elems / 8.0 * cost.fma;
    }
    wl.smem_bytes = 2.0 * wl.dram_read_bytes;
    wl.ctas = s.batch * s.num_kv_heads;
    // Original FlashAttention partitioning: one warp along N.
    wl.warps_per_cta = 4;
    wl.wn = 1;
    return wl;
}

} // namespace

int
main()
{
    bench::banner("Fig. 4b — micro-level impact of dequantization under "
                  "the original warp layout (A100, 32K GQA, wn = 1)");

    attn::DecodeShape s;
    s.batch = 8;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 32768;
    const auto& arch = sim::archA100();

    const auto without = resolveKernel(arch, lowbitKernel(s, false));
    const auto with = resolveKernel(arch, lowbitKernel(s, true));

    bench::head("metric (%)", {"w/o DQ", "w/ DQ"});
    const double thr_wo =
        100.0 * (without.t_tc_s + without.t_cuda_s) / without.total_s / 2.0;
    const double thr_w =
        100.0 * (with.t_tc_s + with.t_cuda_s) / with.total_s / 2.0;
    bench::row("Compute throughput", {thr_wo, thr_w});
    bench::row("TCs utilization", {100.0 * without.tc_utilization,
                                   100.0 * with.tc_utilization});
    bench::row("Stalls (mem + exposed DQ)",
               {100.0 * without.mem_stall_frac,
                100.0 * (with.mem_stall_frac +
                         with.exposed_cuda_s / with.total_s)});
    std::printf("\nkernel latency: %.3f ms -> %.3f ms (+%.0f%%) when "
                "dequantization serializes behind the single warp\n",
                without.total_s * 1e3, with.total_s * 1e3,
                100.0 * (with.total_s / without.total_s - 1.0));
    return 0;
}
