/**
 * @file
 * Fig. 9: kernel performance on Hopper (H100): FlashAttention-2/3
 * baselines vs BitDecoding v2/v3 in KT-4 / KC-4 / KC-2 configurations.
 */
#include "attention/flash_decoding.h"
#include "bench_util.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"

using namespace bitdec;

namespace {

core::BitDecodingConfig
makeCfg(int bits, quant::Granularity g, int version)
{
    core::BitDecodingConfig c;
    c.quant.bits = bits;
    c.quant.key_granularity = g;
    c.version = version;
    return c;
}

void
printRow(const sim::GpuArch& arch, const attn::DecodeShape& s,
         const std::string& label)
{
    const double fd2 = attn::flashDecodingTime(arch, s, 2).total_s;
    const double fd3 = attn::flashDecodingTime(arch, s, 3).total_s;
    std::vector<double> cols{1.0, fd2 / fd3};
    for (int version : {2, 3}) {
        for (auto [bits, g] : {std::pair{4, quant::Granularity::TensorWise},
                               std::pair{4, quant::Granularity::ChannelWise},
                               std::pair{2, quant::Granularity::ChannelWise}}) {
            cols.push_back(
                fd2 /
                core::bitDecodingTime(arch, s, makeCfg(bits, g, version))
                    .total_s);
        }
    }
    bench::row(label, cols, "%9.2fx");
}

} // namespace

int
main()
{
    bench::banner("Fig. 9 — kernel performance on Hopper H100 "
                  "(speedup vs FP16 FlashAttention-v2 decode)");
    const auto& h100 = sim::archH100();
    const std::vector<std::string> cols{
        "FA-2",     "FA-3",     "KT-4(v2)", "KC-4(v2)", "KC-2(v2)",
        "KT-4(v3)", "KC-4(v3)", "KC-2(v3)"};

    bench::section("Single (bs=1, h_q=128, h_k=32, d=128)");
    bench::head("seq len", cols);
    for (int len : {1024, 10240, 102400}) {
        attn::DecodeShape s;
        s.batch = 1;
        s.num_q_heads = 128;
        s.num_kv_heads = 32;
        s.seq_len = len;
        printRow(h100, s, std::to_string(len / 1024) + "k");
    }

    bench::section("Batches (len=32k, h_q=128, h_k=32, d=128)");
    bench::head("batch", cols);
    for (int bs : {8, 16, 32, 64, 128}) {
        attn::DecodeShape s;
        s.batch = bs;
        s.num_q_heads = 128;
        s.num_kv_heads = 32;
        s.seq_len = 32768;
        printRow(h100, s, std::to_string(bs));
    }
    return 0;
}
