/**
 * @file
 * Table II: latency (ms) of quantization + packing during inference —
 * Marlin- and Ladder-style layout-transform pipelines vs BitDecoding's
 * fused path, at a 128K context (h=32, d=128, 4-bit).
 */
#include "bench_util.h"
#include "gpusim/arch.h"
#include "quant/repack_baselines.h"

using namespace bitdec;
using namespace bitdec::quant;

int
main()
{
    bench::banner("Table II — quantization + packing latency, ms "
                  "(A100, seq len = 128K, h = 32, d = 128, 4-bit)");
    const auto& a100 = sim::archA100();
    bench::head("phase", {"Marlin", "Ladder", "BitDec"});
    for (bool prefill : {true, false}) {
        std::vector<double> cols;
        for (auto sys : {RepackSystem::Marlin, RepackSystem::Ladder,
                         RepackSystem::BitDecoding}) {
            cols.push_back(quantPackLatencyMs(a100, sys, prefill, 131072, 32,
                                              128, 4));
        }
        bench::row(prefill ? "Prefill" : "Decode", cols, "%10.4f");
    }
    std::printf("\nShape check: the static-weight repack pipelines pay "
                "orders of magnitude more than the fused Residual Kernel, "
                "in both phases.\n");
    return 0;
}
