/**
 * @file
 * Fig. 8: kernel speedups with native MXFP4 on Blackwell (RTX 5090 and
 * RTX PRO 6000), Single and Batches scenarios, normalized to FP16
 * FlashDecoding-v2. Baselines: KIVI-4.
 */
#include "attention/flash_decoding.h"
#include "attention/kivi_baseline.h"
#include "bench_util.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"

using namespace bitdec;

namespace {

void
runCard(const sim::GpuArch& arch, int single_hq)
{
    core::BitDecodingConfig mx;
    mx.use_mx = true;

    bench::section(arch.name + " — Single (bs=1, h_q=" +
                   std::to_string(single_hq) + ", h_k=8, d=128)");
    bench::head("seq len", {"FD-v2", "KIVI-4", "BD-mxfp4"});
    for (int len : {8192, 32768, 131072}) {
        attn::DecodeShape s;
        s.batch = 1;
        s.num_q_heads = single_hq;
        s.num_kv_heads = 8;
        s.seq_len = len;
        const double fd = attn::flashDecodingTime(arch, s, 2).total_s;
        const double kivi = attn::kiviTime(arch, s, 4).total_s;
        const double bd = core::bitDecodingTime(arch, s, mx).total_s;
        bench::row(std::to_string(len / 1024) + "k",
                   {1.0, fd / kivi, fd / bd}, "%10.2fx");
    }

    bench::section(arch.name + " — Batches (len=8k, h_q=32, h_k=8, d=128)");
    bench::head("batch", {"FD-v2", "KIVI-4", "BD-mxfp4"});
    for (int bs : {8, 32, 128}) {
        attn::DecodeShape s;
        s.batch = bs;
        s.num_q_heads = 32;
        s.num_kv_heads = 8;
        s.seq_len = 8192;
        const double fd = attn::flashDecodingTime(arch, s, 2).total_s;
        const double kivi = attn::kiviTime(arch, s, 4).total_s;
        const double bd = core::bitDecodingTime(arch, s, mx).total_s;
        bench::row(std::to_string(bs), {1.0, fd / kivi, fd / bd}, "%10.2fx");
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 8 — kernel performance with MXFP4 on Blackwell "
                  "(speedup vs FP16 FlashDecoding-v2)");
    runCard(sim::archRTX5090(), 128);
    runCard(sim::archRTXPro6000(), 32);
    return 0;
}
