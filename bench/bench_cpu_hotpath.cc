/**
 * @file
 * CPU hot-path bench: decode-step latency of a registry-resolved
 * attention backend vs the legacy warp/register-emulated Packing Kernel,
 * across context lengths and thread counts. Writes machine-readable
 * BENCH_cpu_hotpath.json so the perf trajectory is tracked across PRs.
 *
 * Modes:
 *   (default)          full sweep: 4K/32K/128K contexts, 1/4/8 threads
 *   --smoke            4K only, one repetition — the CI perf gate
 *   --backend=<name>   backend to sweep (default fused-packed); CI runs
 *                      the smoke gate once per fused backend
 *   --list-backends    capability matrix; =fused prints the gated names
 *
 * The legacy path at 128K is extrapolated linearly from 32K (it is
 * O(context) and already dominates the full-sweep runtime); the JSON
 * marks it "legacy_estimated": true. The legacy kernel is the same
 * baseline for every backend — the gate is a regression tripwire for
 * the registered hot paths, not a like-for-like bandwidth comparison.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "backend/harness.h"
#include "backend/registry.h"
#include "bench_util.h"
#include "serving/options.h"
#include "core/bitdecoding.h"
#include "core/packing_kernel.h"
#include "exec/simd/dispatch.h"
#include "exec/thread_pool.h"

namespace bitdec {
namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-N wall time of fn, in milliseconds. */
template <typename Fn>
double
timeMs(int reps, Fn&& fn)
{
    double best = 1e300;
    for (int i = 0; i < reps; i++) {
        const double t0 = nowMs();
        fn();
        best = std::min(best, nowMs() - t0);
    }
    return best;
}

struct ContextResult
{
    backend::Binding binding; //!< cache structure the backend consumed
    int context;
    double legacy_ms;
    bool legacy_estimated;
    double fused_ms_t1;
    double fused_ms_t4;
    double fused_ms_t8;
    double paged_gather_ms; //!< reference backend over pages; -1 = skipped
    double paged_fused_ms;  //!< fused-paged backend, in place
    double scalar_twin_ms;  //!< scalar twin of a SIMD backend; -1 = N/A
};

/** The scalar twin of a SIMD sibling name; empty for non-siblings. */
std::string
scalarTwinOf(const std::string& name)
{
    if (name.ends_with("-avx2"))
        return name.substr(0, name.size() - 5);
    if (name.ends_with("-avx512"))
        return name.substr(0, name.size() - 7);
    return {};
}

ContextResult
runContext(const backend::AttentionBackend& be, int context, bool smoke,
           double legacy_32k_ms)
{
    const int d = 128;
    const int gq = 8;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    backend::FixtureConfig fc;
    fc.context = context;
    fc.head_dim = d;
    fc.gq = gq;
    fc.seed = 2026 + static_cast<std::uint64_t>(context);
    const backend::DecodeFixture fx(be, fc);

    ContextResult r{};
    r.binding = fx.binding();
    r.context = context;

    // Legacy: the warp/register-emulated kernel (the pre-backend hot
    // path), over a packed cache holding the fixture's content. Measure
    // up to 32K; extrapolate linearly above (it is O(context)).
    if (context <= 32768) {
        core::BitDecodingConfig cfg; // KC-4, wn = 4
        core::HeadDecoder dec(d, cfg);
        dec.prefill(fx.keys(), fx.values());
        const int legacy_reps = context <= 4096 ? 3 : 1;
        r.legacy_ms = timeMs(legacy_reps, [&] {
            core::packingKernelAttention(fx.query(), dec.cache(), scale, {});
        });
        r.legacy_estimated = false;
    } else {
        r.legacy_ms = legacy_32k_ms * (static_cast<double>(context) / 32768.0);
        r.legacy_estimated = true;
    }

    const int reps = context <= 4096 ? 20 : (context <= 32768 ? 5 : 3);
    backend::DecodeBatch b = fx.batch();
    b.scale = scale;
    r.fused_ms_t1 = timeMs(reps, [&] { be.decodeStep(b); });

    // SIMD siblings also time their scalar twin on the same batch (the
    // capability masks are copies, so the binding fits), recording the
    // vectorization win separately from the vs-legacy speedup.
    r.scalar_twin_ms = -1.0;
    const std::string twin_name = scalarTwinOf(be.name());
    if (!twin_name.empty()) {
        const backend::AttentionBackend& twin =
            backend::BackendRegistry::instance().resolve(twin_name);
        r.scalar_twin_ms = timeMs(reps, [&] { twin.decodeStep(b); });
    }

    {
        exec::ThreadPool pool4(4);
        b.pool = &pool4;
        r.fused_ms_t4 = timeMs(reps, [&] { be.decodeStep(b); });
    }
    {
        exec::ThreadPool pool8(8);
        b.pool = &pool8;
        r.fused_ms_t8 = timeMs(reps, [&] { be.decodeStep(b); });
    }

    // Paged section: the fused-paged backend in place vs the reference
    // backend gathering the sequence, both resolved through the registry.
    {
        auto& reg = backend::BackendRegistry::instance();
        const backend::AttentionBackend& paged = reg.resolve("fused-paged");
        // When the swept backend is fused-paged the main fixture already
        // holds the paged pool — don't build a second 128K one.
        std::optional<backend::DecodeFixture> alt;
        if (std::strcmp(be.name(), "fused-paged") != 0)
            alt.emplace(paged, fc);
        const backend::DecodeFixture& pfx = alt ? *alt : fx;
        backend::DecodeBatch pb = pfx.batch();
        pb.scale = scale;
        r.paged_gather_ms = -1.0; // not measured (smoke / too slow at 128K)
        if (!smoke && context <= 32768) {
            const backend::AttentionBackend& ref = reg.resolve("reference");
            r.paged_gather_ms = timeMs(1, [&] { ref.decodeStep(pb); });
        }
        r.paged_fused_ms = timeMs(reps, [&] { paged.decodeStep(pb); });
    }
    return r;
}

} // namespace
} // namespace bitdec

int
main(int argc, char** argv)
{
    using namespace bitdec;

    const serving::ServingOptions opts =
        serving::ServingOptions::parse(argc, argv);
    if (opts.maybeListBackends())
        return 0;
    const bool smoke = opts.smoke;
    const backend::AttentionBackend& be =
        opts.resolveBackend("fused-packed");

    bench::banner(std::string("CPU hot path: '") + be.name() +
                  "' backend vs legacy kernel" + (smoke ? " [smoke]" : ""));
    std::printf("hardware threads: %u, BITDEC_THREADS default pool: %d\n",
                std::thread::hardware_concurrency(),
                exec::ThreadPool::globalThreadCount());
    std::printf("cpu features: %s\nsimd level: %s\n",
                exec::simd::describeCpuFeatures().c_str(), be.simdLevel());

    std::vector<int> contexts =
        smoke ? std::vector<int>{4096}
              : std::vector<int>{4096, 32768, 131072};

    std::vector<ContextResult> results;
    double legacy_32k = 0;
    for (int ctx : contexts) {
        const ContextResult r = runContext(be, ctx, smoke, legacy_32k);
        if (ctx == 32768)
            legacy_32k = r.legacy_ms;
        results.push_back(r);
    }

    bench::head("context", {"legacy", "be-1t", "be-4t", "be-8t",
                            "speedup", "scale-8t"});
    for (const ContextResult& r : results) {
        bench::row(std::to_string(r.context / 1024) + "K" +
                       (r.legacy_estimated ? " (est.)" : ""),
                   {r.legacy_ms, r.fused_ms_t1, r.fused_ms_t4, r.fused_ms_t8,
                    r.legacy_ms / r.fused_ms_t1,
                    r.fused_ms_t1 / r.fused_ms_t8},
                   "%10.3f");
    }
    if (results[0].scalar_twin_ms >= 0) {
        bench::section("SIMD vs scalar twin (1 thread)");
        bench::head("context", {"scalar", "simd", "speedup"});
        for (const ContextResult& r : results)
            bench::row(std::to_string(r.context / 1024) + "K",
                       {r.scalar_twin_ms, r.fused_ms_t1,
                        r.scalar_twin_ms / r.fused_ms_t1},
                       "%10.3f");
    }
    bench::section("paged: fused-paged in place vs reference gather "
                   "(1 thread)");
    bench::head("context", {"gather", "fused"});
    for (const ContextResult& r : results) {
        if (r.paged_gather_ms < 0)
            std::printf("%-28s%10s%10.3f\n",
                        (std::to_string(r.context / 1024) + "K").c_str(),
                        "-", r.paged_fused_ms);
        else
            bench::row(std::to_string(r.context / 1024) + "K",
                       {r.paged_gather_ms, r.paged_fused_ms}, "%10.3f");
    }

    // Machine-readable trajectory record. Smoke runs write to a separate
    // file so a local CI-gate check never clobbers the tracked full-sweep
    // record.
    const char* json_path =
        smoke ? "BENCH_cpu_hotpath.smoke.json" : "BENCH_cpu_hotpath.json";
    FILE* f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"cpu_hotpath\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"backend\": \"%s\",\n", be.name());
    std::fprintf(f, "  \"cpu_features\": \"%s\",\n  \"simd_level\": \"%s\",\n",
                 exec::simd::describeCpuFeatures().c_str(), be.simdLevel());
    // Honest format labeling: FP16 bindings are not a 4-bit sweep; the
    // packed, quantized and MX(FP4) bindings are.
    const backend::Binding binding = results[0].binding;
    const bool fp16 = binding == backend::Binding::Fp16Contiguous ||
                      binding == backend::Binding::PagedFp16;
    std::fprintf(f, "  \"binding\": \"%s\",\n  \"bits\": %d,\n",
                 backend::toString(binding), fp16 ? 16 : 4);
    std::fprintf(f, "  \"head_dim\": 128,\n  \"gq\": 8,\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); i++) {
        const ContextResult& r = results[i];
        char gather[32];
        if (r.paged_gather_ms < 0)
            std::snprintf(gather, sizeof(gather), "null"); // not measured
        else
            std::snprintf(gather, sizeof(gather), "%.4f", r.paged_gather_ms);
        char twin[64];
        if (r.scalar_twin_ms < 0)
            std::snprintf(twin, sizeof(twin),
                          "\"scalar_twin_ms\": null"); // not a SIMD sibling
        else
            std::snprintf(twin, sizeof(twin),
                          "\"scalar_twin_ms\": %.4f, "
                          "\"simd_speedup_vs_scalar\": %.2f",
                          r.scalar_twin_ms, r.scalar_twin_ms / r.fused_ms_t1);
        std::fprintf(
            f,
            "    {\"context\": %d, \"legacy_ms\": %.4f, "
            "\"legacy_estimated\": %s,\n"
            "     \"fused_ms\": {\"t1\": %.4f, \"t4\": %.4f, \"t8\": %.4f},\n"
            "     \"speedup_vs_legacy_1t\": %.2f, "
            "\"scaling_1t_to_8t\": %.2f,\n"
            "     %s,\n"
            "     \"paged_gather_ms\": %s, \"paged_fused_ms\": %.4f}%s\n",
            r.context, r.legacy_ms, r.legacy_estimated ? "true" : "false",
            r.fused_ms_t1, r.fused_ms_t4, r.fused_ms_t8,
            r.legacy_ms / r.fused_ms_t1, r.fused_ms_t1 / r.fused_ms_t8,
            twin, gather, r.paged_fused_ms,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);

    // Smoke mode is the CI perf gate: the selected backend regressing to
    // within 5x of the legacy kernel fails the job loudly. (Measured
    // margins for the fused hot paths are ~20-30x, so this trips on real
    // regressions, not runner noise.) CI loops this once per
    // --list-backends=fused name, so a backend registered but broken
    // fails the pipeline.
    if (smoke) {
        const double speedup = results[0].legacy_ms / results[0].fused_ms_t1;
        if (speedup < 5.0) {
            std::fprintf(stderr,
                         "PERF REGRESSION: backend '%s' speedup %.2fx < 5x "
                         "floor\n",
                         be.name(), speedup);
            return 2;
        }
        std::printf("perf gate [%s]: %.1fx >= 5x floor — OK\n", be.name(),
                    speedup);
    }
    return 0;
}
