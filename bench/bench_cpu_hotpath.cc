/**
 * @file
 * CPU hot-path bench: decode-step latency of the fused execution backend
 * vs the legacy warp/register-emulated Packing Kernel, across context
 * lengths and thread counts. Writes machine-readable
 * BENCH_cpu_hotpath.json so the perf trajectory is tracked across PRs.
 *
 * Modes:
 *   (default)  full sweep: 4K/32K/128K contexts, 1/4/8 threads
 *   --smoke    4K only, one repetition — the CI perf-regression gate
 *
 * The legacy path at 128K is extrapolated linearly from 32K (it is
 * O(context) and already dominates the full-sweep runtime); the JSON
 * marks it "legacy_estimated": true.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attention/reference.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "core/packing_kernel.h"
#include "exec/fused_attention.h"
#include "exec/thread_pool.h"

namespace bitdec {
namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-N wall time of fn, in milliseconds. */
template <typename Fn>
double
timeMs(int reps, Fn&& fn)
{
    double best = 1e300;
    for (int i = 0; i < reps; i++) {
        const double t0 = nowMs();
        fn();
        best = std::min(best, nowMs() - t0);
    }
    return best;
}

void
randomize(Tensor<Half>& t, Rng& rng)
{
    for (std::size_t i = 0; i < t.numel(); i++)
        t[i] = Half(rng.uniformRange(-1.f, 1.f));
}

struct ContextResult
{
    int context;
    double legacy_ms;
    bool legacy_estimated;
    double fused_ms_t1;
    double fused_ms_t4;
    double fused_ms_t8;
    double paged_gather_ms; //!< gather + reference baseline; -1 = skipped
    double paged_fused_ms;  //!< fused in-place paged kernel
};

ContextResult
runContext(int context, bool smoke, double legacy_32k_ms)
{
    const int d = 128;
    const int gq = 8;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    core::BitDecodingConfig cfg; // KC-4, wn = 4
    core::HeadDecoder dec(d, cfg);
    Rng rng(2026 + context);
    Tensor<Half> k({static_cast<std::size_t>(context),
                    static_cast<std::size_t>(d)});
    Tensor<Half> v({static_cast<std::size_t>(context),
                    static_cast<std::size_t>(d)});
    randomize(k, rng);
    randomize(v, rng);
    dec.prefill(k, v);
    Tensor<Half> q({static_cast<std::size_t>(gq), static_cast<std::size_t>(d)});
    randomize(q, rng);

    ContextResult r{};
    r.context = context;

    // Legacy: the warp/register-emulated kernel (the pre-backend hot path).
    // Measure up to 32K; extrapolate linearly above (it is O(context)).
    if (context <= 32768) {
        const int reps = context <= 4096 ? 3 : 1;
        r.legacy_ms = timeMs(reps, [&] {
            core::packingKernelAttention(q, dec.cache(), scale, {});
        });
        r.legacy_estimated = false;
    } else {
        r.legacy_ms = legacy_32k_ms * (static_cast<double>(context) / 32768.0);
        r.legacy_estimated = true;
    }

    const int reps = context <= 4096 ? 20 : (context <= 32768 ? 5 : 3);
    r.fused_ms_t1 = timeMs(reps, [&] {
        core::fusedPackedAttention(q, dec.cache(), scale, nullptr);
    });
    {
        exec::ThreadPool pool4(4);
        r.fused_ms_t4 = timeMs(reps, [&] {
            core::fusedPackedAttention(q, dec.cache(), scale, &pool4);
        });
    }
    {
        exec::ThreadPool pool8(8);
        r.fused_ms_t8 = timeMs(reps, [&] {
            core::fusedPackedAttention(q, dec.cache(), scale, &pool8);
        });
    }

    // Paged section: fused in-place paged attention vs gather + reference.
    {
        const int page_size = 64;
        kv::PagedHeadCache paged(d, page_size,
                                 context / page_size + 2);
        const int seq = paged.addSequence();
        std::vector<Half> kr(static_cast<std::size_t>(d));
        std::vector<Half> vr(static_cast<std::size_t>(d));
        for (int t = 0; t < context; t++) {
            for (int c = 0; c < d; c++) {
                kr[static_cast<std::size_t>(c)] =
                    k.at(static_cast<std::size_t>(t),
                         static_cast<std::size_t>(c));
                vr[static_cast<std::size_t>(c)] =
                    v.at(static_cast<std::size_t>(t),
                         static_cast<std::size_t>(c));
            }
            paged.append(seq, kr, vr);
        }
        r.paged_gather_ms = -1.0; // not measured (smoke / too slow at 128K)
        if (!smoke && context <= 32768) {
            r.paged_gather_ms = timeMs(1, [&] {
                attn::referenceAttention(q, paged.gatherKeys(seq),
                                         paged.gatherValues(seq), scale);
            });
        }
        r.paged_fused_ms = timeMs(reps, [&] {
            exec::fusedPagedAttention(q, paged, seq, scale, nullptr);
        });
    }
    return r;
}

} // namespace
} // namespace bitdec

int
main(int argc, char** argv)
{
    using namespace bitdec;

    bool smoke = false;
    for (int i = 1; i < argc; i++)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    bench::banner(std::string("CPU hot path: fused execution backend vs "
                              "legacy kernel") +
                  (smoke ? " [smoke]" : ""));
    std::printf("hardware threads: %u, BITDEC_THREADS default pool: %d\n",
                std::thread::hardware_concurrency(),
                exec::ThreadPool::globalThreadCount());

    std::vector<int> contexts =
        smoke ? std::vector<int>{4096}
              : std::vector<int>{4096, 32768, 131072};

    std::vector<ContextResult> results;
    double legacy_32k = 0;
    for (int ctx : contexts) {
        const ContextResult r = runContext(ctx, smoke, legacy_32k);
        if (ctx == 32768)
            legacy_32k = r.legacy_ms;
        results.push_back(r);
    }

    bench::head("context", {"legacy", "fused-1t", "fused-4t", "fused-8t",
                            "speedup", "scale-8t"});
    for (const ContextResult& r : results) {
        bench::row(std::to_string(r.context / 1024) + "K" +
                       (r.legacy_estimated ? " (est.)" : ""),
                   {r.legacy_ms, r.fused_ms_t1, r.fused_ms_t4, r.fused_ms_t8,
                    r.legacy_ms / r.fused_ms_t1,
                    r.fused_ms_t1 / r.fused_ms_t8},
                   "%10.3f");
    }
    bench::section("paged: fused in-place vs gather+reference (1 thread)");
    bench::head("context", {"gather", "fused"});
    for (const ContextResult& r : results) {
        if (r.paged_gather_ms < 0)
            std::printf("%-28s%10s%10.3f\n",
                        (std::to_string(r.context / 1024) + "K").c_str(),
                        "-", r.paged_fused_ms);
        else
            bench::row(std::to_string(r.context / 1024) + "K",
                       {r.paged_gather_ms, r.paged_fused_ms}, "%10.3f");
    }

    // Machine-readable trajectory record. Smoke runs write to a separate
    // file so a local CI-gate check never clobbers the tracked full-sweep
    // record.
    const char* json_path =
        smoke ? "BENCH_cpu_hotpath.smoke.json" : "BENCH_cpu_hotpath.json";
    FILE* f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"cpu_hotpath\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"bits\": 4,\n  \"head_dim\": 128,\n  \"gq\": 8,\n");
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); i++) {
        const ContextResult& r = results[i];
        char gather[32];
        if (r.paged_gather_ms < 0)
            std::snprintf(gather, sizeof(gather), "null"); // not measured
        else
            std::snprintf(gather, sizeof(gather), "%.4f", r.paged_gather_ms);
        std::fprintf(
            f,
            "    {\"context\": %d, \"legacy_ms\": %.4f, "
            "\"legacy_estimated\": %s,\n"
            "     \"fused_ms\": {\"t1\": %.4f, \"t4\": %.4f, \"t8\": %.4f},\n"
            "     \"speedup_vs_legacy_1t\": %.2f, "
            "\"scaling_1t_to_8t\": %.2f,\n"
            "     \"paged_gather_ms\": %s, \"paged_fused_ms\": %.4f}%s\n",
            r.context, r.legacy_ms, r.legacy_estimated ? "true" : "false",
            r.fused_ms_t1, r.fused_ms_t4, r.fused_ms_t8,
            r.legacy_ms / r.fused_ms_t1, r.fused_ms_t1 / r.fused_ms_t8,
            gather, r.paged_fused_ms,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);

    // Smoke mode is the CI perf gate: the fused path regressing to within
    // 5x of the legacy kernel fails the job loudly. (Measured margin is
    // ~25-30x, so this trips on real regressions, not runner noise.)
    if (smoke) {
        const double speedup = results[0].legacy_ms / results[0].fused_ms_t1;
        if (speedup < 5.0) {
            std::fprintf(stderr,
                         "PERF REGRESSION: fused speedup %.2fx < 5x floor\n",
                         speedup);
            return 2;
        }
        std::printf("perf gate: %.1fx >= 5x floor — OK\n", speedup);
    }
    return 0;
}
