/**
 * @file
 * Fig. 16: breakdown of BitDecoding's optimizations across architecture
 * generations: continuous-packing baseline -> +Layout -> +Warps ->
 * +Pipeline, as speedup over FP16 FlashDecoding-v2.
 */
#include "attention/flash_decoding.h"
#include "bench_util.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"

using namespace bitdec;

int
main()
{
    bench::banner("Fig. 16 — optimization breakdown "
                  "(speedup vs FP16 FlashDecoding-v2, 32k GQA decode)");
    attn::DecodeShape s;
    s.batch = 8;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 32768;

    bench::head("arch", {"baseline", "+Layout", "+Warps", "+Pipeline"});
    for (const auto* arch :
         {&sim::archA100(), &sim::archH100(), &sim::archRTX5090()}) {
        core::BitDecodingConfig cfg;
        cfg.version = arch->has_wgmma ? 3 : 2;
        cfg.use_mx = arch->has_mxfp4_mma;
        const double fd = attn::flashDecodingTime(*arch, s, 2).total_s;
        const core::BitDecodingAblation steps[4] = {
            {false, false, false}, // continuous packing
            {true, false, false},  // + induced layout
            {true, true, false},   // + warp parallelism
            {true, true, true},    // + software pipeline
        };
        std::vector<double> cols;
        for (const auto& ab : steps)
            cols.push_back(fd /
                           core::bitDecodingTime(*arch, s, cfg, ab).total_s);
        bench::row(arch->name, cols, "%10.2fx");
    }
    std::printf("\nShape check: every step adds speedup on every "
                "generation; the layout induction contributes the largest "
                "single jump.\n");
    return 0;
}
