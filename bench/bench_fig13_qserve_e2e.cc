/**
 * @file
 * Fig. 13: Pages-setting decode throughput (tokens/s) at 32K across five
 * models: FlashDecoding-v2 vs QServe vs BitDecoding. LLaMA-3.1-70B runs
 * with 8-way tensor parallelism; the rest on a single A100.
 */
#include "bench_util.h"
#include "gpusim/arch.h"
#include "model/decode_sim.h"
#include "model/model_config.h"

using namespace bitdec;
using namespace bitdec::model;

int
main()
{
    bench::banner("Fig. 13 — serving throughput vs QServe "
                  "(Pages, seq len = 32k, max batch in memory)");
    const auto& a100 = sim::archA100();
    bench::head("model", {"FD-v2", "QServe", "BitDec", "BD/QS"});

    const std::vector<const ModelConfig*> models{
        &llama2_7b(), &llama31_8b(), &llama31_70b(), &qwen3_8b(),
        &qwen3_14b()};
    for (const auto* m : models) {
        const int tp = m->params > 3e10 ? 8 : 1;
        const auto run = [&](SystemKind sys) {
            E2EConfig c;
            c.system = sys;
            c.bits = 4;
            c.scenario = attn::Scenario::Pages;
            c.tensor_parallel = tp;
            const auto r = maxBatchThroughput(a100, *m, 32768, c);
            return r.oom ? 0.0 : r.tokens_per_s;
        };
        const double fd = run(SystemKind::FlashDecodingFp16);
        const double qs = run(SystemKind::QServe);
        const double bd = run(SystemKind::BitDecoding);
        bench::row(m->name + (tp > 1 ? " (8xA100)" : ""),
                   {fd, qs, bd, qs > 0 ? bd / qs : 0.0}, "%10.2f");
    }
    std::printf("\nShape check: QServe only beats FP16 on the MHA model "
                "(llama-2-7B); BitDecoding wins everywhere, >2x QServe on "
                "GQA models.\n");
    return 0;
}
