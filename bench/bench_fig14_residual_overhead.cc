/**
 * @file
 * Fig. 14: runtime overhead of the half-precision residual KV cache —
 * per-kernel latency of FP16 FlashDecoding-v2 vs INT4 attention without
 * and with the residual-kernel launch (A100, bs=1, h=32 MHA, d=128).
 */
#include "attention/flash_decoding.h"
#include "bench_util.h"
#include "core/bitdecoding.h"
#include "core/residual_kernel.h"
#include "gpusim/arch.h"

using namespace bitdec;

int
main()
{
    bench::banner("Fig. 14 — residual KV cache runtime overhead "
                  "(A100, bs=1, h=32, d=128; latency in ms)");
    const auto& a100 = sim::archA100();
    bench::head("seq len", {"FP16 FD-v2", "INT4 w/o res", "INT4 w/ res",
                            "overhead%"});
    for (int len : {4096, 16384, 32768, 65536, 131072}) {
        attn::DecodeShape s;
        s.batch = 1;
        s.num_q_heads = 32;
        s.num_kv_heads = 32;
        s.seq_len = len;

        const double fp16 = attn::flashDecodingTime(a100, s, 2).total_s;

        core::BitDecodingConfig cfg;
        const auto with_res = core::bitDecodingTime(a100, s, cfg);
        // Without the residual cache: drop the residual-kernel launch
        // (the continuous-packing alternative would instead pay Fig. 16's
        // packing pass; this isolates the launch itself, as the paper does).
        double without = with_res.total_s;
        for (std::size_t i = 0; i < with_res.kernels.size(); i++) {
            // kernels: [packing, residual, (combine)] — subtract residual.
            if (i == 1) {
                without -= with_res.kernels[i].total_s +
                           a100.launch_overhead_us * 1e-6;
            }
        }
        bench::row(std::to_string(len / 1024) + "K",
                   {fp16 * 1e3, without * 1e3, with_res.total_s * 1e3,
                    100.0 * (with_res.total_s - without) /
                        with_res.total_s},
                   "%12.3f");
    }
    std::printf("\nShape check: the absolute overhead is a near-constant "
                "few microseconds and its share shrinks with context.\n");
    return 0;
}
