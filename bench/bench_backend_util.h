/**
 * @file
 * Shared `--backend=<name>` / `--list-backends` CLI handling for the
 * backend-aware binaries (bench_cpu_hotpath, bench_serving_e2e,
 * examples/serving_throughput). Kept separate from bench_util.h so the
 * figure/table benches that only need the printing helpers never pull
 * in the registry header graph.
 */
#ifndef BITDEC_BENCH_BENCH_BACKEND_UTIL_H
#define BITDEC_BENCH_BENCH_BACKEND_UTIL_H

#include <cstdio>
#include <cstring>
#include <string>

#include "backend/registry.h"
#include "common/logging.h"

namespace bitdec::bench {

/** Parsed backend-selection flags. */
struct BackendArgs
{
    std::string backend; //!< --backend=<name>; empty = caller's default
    bool list = false;   //!< --list-backends[=names|fused] was given
    std::string list_mode; //!< "" (table), "names" or "fused"
};

/**
 * Scans argv for `--backend=<name>` and `--list-backends[=mode]`.
 * Unrelated arguments are left for the caller.
 */
inline BackendArgs
parseBackendArgs(int argc, char** argv)
{
    BackendArgs a;
    for (int i = 1; i < argc; i++) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--backend=", 10) == 0) {
            a.backend = arg + 10;
            if (a.backend.empty())
                BITDEC_FATAL("--backend= needs a name (see "
                             "--list-backends)");
        } else if (std::strcmp(arg, "--backend") == 0) {
            // Space-separated form would silently select the default
            // backend — the exact silent fallback this API forbids.
            BITDEC_FATAL("--backend takes its value with '=', e.g. "
                         "--backend=fused-paged");
        } else if (std::strcmp(arg, "--list-backends") == 0) {
            a.list = true;
        } else if (std::strncmp(arg, "--list-backends=", 16) == 0) {
            a.list = true;
            a.list_mode = arg + 16;
        }
    }
    return a;
}

/**
 * Handles `--list-backends`: the default mode prints the capability
 * matrix; `=names` prints bare registered names one per line and
 * `=fused` only the fused hot-path names (machine-readable — CI loops
 * the perf smoke over exactly this set). Returns true when the caller
 * should exit (the flag was given).
 */
inline bool
maybeListBackends(const BackendArgs& a)
{
    if (!a.list)
        return false;
    if (!a.list_mode.empty() && a.list_mode != "names" &&
        a.list_mode != "fused")
        BITDEC_FATAL("unknown --list-backends mode '", a.list_mode,
                     "' (use --list-backends, =names or =fused)");
    auto& reg = backend::BackendRegistry::instance();
    if (a.list_mode == "names" || a.list_mode == "fused") {
        const auto names =
            a.list_mode == "fused" ? reg.fusedNames() : reg.names();
        for (const std::string& n : names)
            std::printf("%s\n", n.c_str());
        return true;
    }
    std::printf("registered attention backends "
                "(caches | formats | scenarios):\n%s",
                reg.capabilityMatrix().c_str());
    return true;
}

/**
 * Resolves the requested backend (or @p fallback when the flag was
 * absent) through the registry; unknown names die listing every
 * registered backend.
 */
inline backend::AttentionBackend&
resolveBackendArg(const BackendArgs& a, const std::string& fallback)
{
    return backend::BackendRegistry::instance().resolve(
        a.backend.empty() ? fallback : a.backend);
}

/** Parsed fault-injection flags (chaos runs from the command line). */
struct FaultArgs
{
    std::string spec;        //!< --faults=<spec>; empty = no override
    std::uint64_t seed = 0;  //!< --fault-seed=<n>
    bool seed_given = false; //!< --fault-seed was present
};

/**
 * Scans argv for `--faults=<spec>` and `--fault-seed=<n>`. The spec
 * grammar is fault::FaultSchedule::parse (comma-separated key=value:
 * fetch/spike/corrupt/alloc rates, mult, from/until window); callers
 * hand it to parse() so a bad spec dies with the same message
 * everywhere. Unrelated arguments are left for the caller.
 */
inline FaultArgs
parseFaultArgs(int argc, char** argv)
{
    FaultArgs a;
    for (int i = 1; i < argc; i++) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--faults=", 9) == 0) {
            a.spec = arg + 9;
            if (a.spec.empty())
                BITDEC_FATAL("--faults= needs a spec, e.g. "
                             "--faults=fetch=0.02,corrupt=0.01");
        } else if (std::strcmp(arg, "--faults") == 0) {
            BITDEC_FATAL("--faults takes its value with '=', e.g. "
                         "--faults=fetch=0.02,corrupt=0.01");
        } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
            char* end = nullptr;
            a.seed = std::strtoull(arg + 13, &end, 0);
            if (end == arg + 13 || *end != '\0')
                BITDEC_FATAL("--fault-seed= needs an integer, got '",
                             arg + 13, "'");
            a.seed_given = true;
        } else if (std::strcmp(arg, "--fault-seed") == 0) {
            BITDEC_FATAL("--fault-seed takes its value with '=', e.g. "
                         "--fault-seed=1337");
        }
    }
    return a;
}

} // namespace bitdec::bench

#endif // BITDEC_BENCH_BENCH_BACKEND_UTIL_H
