/**
 * @file
 * Table III: impact of the warp layout and multi-warp cooperative softmax
 * — latency, Tensor-Core utilization and functional validity for
 * (Wn=1, no coop), (Wn=4, no coop) and (Wn=4, coop).
 */
#include <cmath>

#include "attention/reference.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"

using namespace bitdec;

namespace {

/** Functional validity check: does the configuration match reference? */
bool
functionallyValid(int wn, bool coop)
{
    core::BitDecodingConfig cfg;
    cfg.tiling.wn = wn;
    cfg.coop_softmax = coop;
    const int d = 64;
    core::HeadDecoder dec(d, cfg);
    Rng rng(7);
    Tensor<Half> k({static_cast<std::size_t>(dec.cache().residualBlockSize()),
                    static_cast<std::size_t>(d)});
    Tensor<Half> v(
        {static_cast<std::size_t>(dec.cache().residualBlockSize()),
         static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < k.numel(); i++) {
        k[i] = Half(rng.normal());
        v[i] = Half(rng.normal());
    }
    dec.prefill(k, v);
    Tensor<Half> q({8, static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < q.numel(); i++)
        q[i] = Half(rng.normal(0.f, 2.f));
    const auto res = dec.decodeStep(q, 0.5f);
    if (!res.valid)
        return false;
    Tensor<Half> kd, vd;
    dec.cache().dequantizeAll(kd, vd);
    const auto want = attn::referenceAttention(q, kd, vd, 0.5f);
    for (std::size_t g = 0; g < 8; g++)
        for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++)
            if (std::fabs(res.out.at(g, c) - want.at(g, c)) > 5e-2f)
                return false;
    return true;
}

} // namespace

int
main()
{
    bench::banner("Table III — cooperative softmax and warp layout "
                  "(A100, 32k GQA decode)");
    const auto& a100 = sim::archA100();
    attn::DecodeShape s;
    s.batch = 8;
    s.num_q_heads = 32;
    s.num_kv_heads = 8;
    s.seq_len = 32768;

    bench::head("config", {"ms", "TC util %", "valid"});
    struct Case
    {
        int wn;
        bool coop;
        const char* name;
    };
    for (const Case& c : {Case{1, false, "Wn=1, no coop"},
                          Case{4, false, "Wn=4, no coop"},
                          Case{4, true, "Wn=4, coop"}}) {
        core::BitDecodingConfig cfg;
        cfg.tiling.wn = c.wn;
        cfg.coop_softmax = c.coop;
        core::BitDecodingAblation ab;
        ab.warps = c.wn > 1;
        const auto t = core::bitDecodingTime(a100, s, cfg, ab);
        const bool valid = functionallyValid(c.wn, c.coop);
        bench::row(c.name, {t.total_s * 1e3, 100.0 * t.tcUtilization(),
                            valid ? 1.0 : 0.0});
    }
    std::printf("\nShape check: widening Wn cuts latency several-fold and "
                "raises TC utilization, but without the cooperative softmax "
                "the result is invalid; cooperation restores correctness "
                "for well under 1%% overhead.\n");
    return 0;
}
