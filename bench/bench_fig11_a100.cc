/**
 * @file
 * Fig. 11: kernel performance on the high-bandwidth A100: Single /
 * Batches / Pages vs KIVI and QServe.
 */
#include "attention/flash_decoding.h"
#include "attention/kivi_baseline.h"
#include "attention/qserve_baseline.h"
#include "bench_util.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"

using namespace bitdec;

namespace {

core::BitDecodingConfig
bd(int bits, quant::Granularity g)
{
    core::BitDecodingConfig c;
    c.quant.bits = bits;
    c.quant.key_granularity = g;
    return c;
}

std::vector<double>
bdCols(const sim::GpuArch& a, const attn::DecodeShape& s, double fd)
{
    return {fd / core::bitDecodingTime(a, s,
                                       bd(4, quant::Granularity::TensorWise))
                     .total_s,
            fd / core::bitDecodingTime(a, s,
                                       bd(4, quant::Granularity::ChannelWise))
                     .total_s,
            fd / core::bitDecodingTime(a, s,
                                       bd(2, quant::Granularity::ChannelWise))
                     .total_s};
}

} // namespace

int
main()
{
    bench::banner("Fig. 11 — kernel performance on A100 "
                  "(speedup vs FP16 FlashAttention-v2 decode)");
    const auto& a100 = sim::archA100();

    bench::section("Single (bs=1, h_q=128, h_k=16, d=128, GQA)");
    bench::head("seq len", {"FA-2", "KIVI-4", "KIVI-2", "BD-KT4", "BD-KC4",
                            "BD-KC2"});
    for (int len : {1024, 4096, 16384, 65536, 102400}) {
        attn::DecodeShape s;
        s.batch = 1;
        s.num_q_heads = 128;
        s.num_kv_heads = 16;
        s.seq_len = len;
        const double fd = attn::flashDecodingTime(a100, s, 2).total_s;
        std::vector<double> cols{1.0, fd / attn::kiviTime(a100, s, 4).total_s,
                                 fd / attn::kiviTime(a100, s, 2).total_s};
        for (double v : bdCols(a100, s, fd))
            cols.push_back(v);
        bench::row(std::to_string(len / 1024) + "k", cols, "%9.2fx");
    }

    bench::section("Batches (len=32k, h_q=128, h_k=16, d=128, GQA)");
    bench::head("batch", {"FA-2", "KIVI-4", "KIVI-2", "BD-KT4", "BD-KC4",
                          "BD-KC2"});
    for (int bs : {8, 32, 64, 128}) {
        attn::DecodeShape s;
        s.batch = bs;
        s.num_q_heads = 128;
        s.num_kv_heads = 16;
        s.seq_len = 32768;
        const double fd = attn::flashDecodingTime(a100, s, 2).total_s;
        std::vector<double> cols{1.0, fd / attn::kiviTime(a100, s, 4).total_s,
                                 fd / attn::kiviTime(a100, s, 2).total_s};
        for (double v : bdCols(a100, s, fd))
            cols.push_back(v);
        bench::row(std::to_string(bs), cols, "%9.2fx");
    }

    bench::section("Pages (len=2k, h_q=32, h_k=8, d=128, GQA)");
    bench::head("batch", {"FA-2", "QServe", "BD-KT4", "BD-KC4", "BD-KC2"});
    for (int bs : {8, 16, 32, 64}) {
        attn::DecodeShape s;
        s.batch = bs;
        s.num_q_heads = 32;
        s.num_kv_heads = 8;
        s.seq_len = 2048;
        s.scenario = attn::Scenario::Pages;
        const double fd = attn::flashDecodingTime(a100, s, 2).total_s;
        std::vector<double> cols{
            1.0, fd / attn::cudaCoreFusedTime(
                          a100, s, attn::CudaCoreSystem::QServe, 4)
                          .total_s};
        for (double v : bdCols(a100, s, fd))
            cols.push_back(v);
        bench::row(std::to_string(bs), cols, "%9.2fx");
    }
    return 0;
}
