/**
 * @file
 * Shared output helpers for the figure/table reproduction benches. The
 * `--backend` / `--list-backends` CLI handling lives in
 * src/serving/options.h (ServingOptions) so these stay dependency-free.
 */
#ifndef BITDEC_BENCH_BENCH_UTIL_H
#define BITDEC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace bitdec::bench {

/** Prints a figure/table banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

/** Prints a section sub-header. */
inline void
section(const std::string& title)
{
    std::printf("\n-- %s --\n", title.c_str());
}

/** Prints one row: a label followed by numeric columns. */
inline void
row(const std::string& label, const std::vector<double>& vals,
    const char* fmt = "%10.2f")
{
    std::printf("%-28s", label.c_str());
    for (double v : vals)
        std::printf(fmt, v);
    std::printf("\n");
}

/** Prints the header row of a table. */
inline void
head(const std::string& label, const std::vector<std::string>& cols)
{
    std::printf("%-28s", label.c_str());
    for (const auto& c : cols)
        std::printf("%10s", c.c_str());
    std::printf("\n");
}

} // namespace bitdec::bench

#endif // BITDEC_BENCH_BENCH_UTIL_H
