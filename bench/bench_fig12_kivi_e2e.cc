/**
 * @file
 * Fig. 12: end-to-end comparison with non-fused attention (KIVI) on
 * LLaMA-3.1-8B / A100: (a) single-batch latency speedup at 32K/64K/128K
 * (KIVI OOMs at 128K), (b) decode throughput vs batch size at 4K.
 */
#include "bench_util.h"
#include "gpusim/arch.h"
#include "model/decode_sim.h"
#include "model/model_config.h"

using namespace bitdec;
using namespace bitdec::model;

int
main()
{
    bench::banner("Fig. 12 — end-to-end vs non-fused KIVI "
                  "(LLaMA-3.1-8B, A100)");
    const auto& a100 = sim::archA100();
    const auto& m = llama31_8b();

    E2EConfig fp16;
    fp16.system = SystemKind::FlashDecodingFp16;

    bench::section("(a) Single-batch latency speedup vs FP16 "
                   "(OOM printed as 0)");
    bench::head("seq len", {"Kivi-4", "Kivi-2", "BD-KC-4", "BD-KC-2"});
    for (int len : {32768, 65536, 131072}) {
        const double base =
            decodeThroughput(a100, m, len, 1, fp16).oom
                ? 0.0
                : decodeStepTime(a100, m, len, 1, fp16).total_s;
        std::vector<double> cols;
        for (auto [system, bits] :
             {std::pair{SystemKind::Kivi, 4}, std::pair{SystemKind::Kivi, 2},
              std::pair{SystemKind::BitDecoding, 4},
              std::pair{SystemKind::BitDecoding, 2}}) {
            E2EConfig c;
            c.system = system;
            c.bits = bits;
            const auto r = decodeThroughput(a100, m, len, 1, c);
            cols.push_back(
                r.oom || base == 0.0
                    ? 0.0
                    : base / decodeStepTime(a100, m, len, 1, c).total_s);
        }
        bench::row(std::to_string(len / 1024) + "K", cols, "%10.2fx");
    }

    bench::section("(b) Decode throughput, tokens/s (seq len = 4k)");
    bench::head("batch", {"FD-v2", "Kivi-4", "Kivi-2", "BD-KC-4", "BD-KC-2"});
    for (int bs : {1, 8, 16, 32, 50}) {
        std::vector<double> cols;
        for (auto [system, bits] :
             {std::pair{SystemKind::FlashDecodingFp16, 16},
              std::pair{SystemKind::Kivi, 4}, std::pair{SystemKind::Kivi, 2},
              std::pair{SystemKind::BitDecoding, 4},
              std::pair{SystemKind::BitDecoding, 2}}) {
            E2EConfig c;
            c.system = system;
            c.bits = bits;
            const auto r = decodeThroughput(a100, m, 4096, bs, c);
            cols.push_back(r.oom ? 0.0 : r.tokens_per_s);
        }
        bench::row(std::to_string(bs), cols, "%10.1f");
    }
    return 0;
}
