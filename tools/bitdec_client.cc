/**
 * @file
 * bitdec_client: drives a bitdec_server over the wire and proves the
 * stream honest.
 *
 * Opens --clients concurrent connections, shards a deterministic trace
 * across them (round-robin), streams every request's tokens back and
 * folds them into the per-request output digest. One client can read
 * deliberately slowly (--slow-client/--slow-ms) to exercise the
 * server's backpressure; one request can be canceled mid-stream
 * (--cancel-after-tokens). With --verify-inprocess the same trace runs
 * through an in-process ServingClient built from the HELLO frame's
 * engine shape, and every request's output_hash AND attn_hash must
 * match the wire run byte for byte — the acceptance proof that the
 * socket layer is a pure driver over the deterministic engine.
 *
 *   bitdec_client --port=9178 --clients=8 --requests=24 \
 *       --slow-client=0 --slow-ms=2 --verify-inprocess
 *
 * Exit codes: 0 = all checks passed, 1 = digest mismatch, lost frames
 * or an unexpected protocol error.
 */
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/arch.h"
#include "model/model_config.h"
#include "net/client.h"
#include "serving/client.h"
#include "serving/options.h"
#include "serving/trace.h"

using namespace bitdec;
using namespace bitdec::serving;

namespace {

struct ClientArgs
{
    std::string host = "127.0.0.1";
    int clients = 4;
    int requests = 16;
    std::uint64_t seed = 7;
    int slow_client = -1; //!< index of the deliberately slow reader
    int slow_ms = 2;      //!< its per-read delay
    int cancel_after_tokens = 0; //!< client 0 cancels its first request
    bool verify_inprocess = false;
    std::string stats_json_path; //!< write a STATS frame here at the end
};

/** Final wire-side record of one request. */
struct WireResult
{
    bool done = false;
    bool finished = false;
    int generated = 0;
    std::uint64_t output_hash = 0;
    std::uint64_t attn_hash = 0;
    bool stream_ok = false; //!< folded TOKEN stream matched DONE digest
    std::string error;      //!< ERROR frame text, if any
};

ClientArgs
parseArgs(int argc, char** argv)
{
    ClientArgs a;
    for (int i = 1; i < argc; i++) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--host=", 7) == 0)
            a.host = arg + 7;
        else if (std::strncmp(arg, "--clients=", 10) == 0)
            a.clients = std::atoi(arg + 10);
        else if (std::strncmp(arg, "--requests=", 11) == 0)
            a.requests = std::atoi(arg + 11);
        else if (std::strncmp(arg, "--seed=", 7) == 0)
            a.seed = std::strtoull(arg + 7, nullptr, 0);
        else if (std::strncmp(arg, "--slow-client=", 14) == 0)
            a.slow_client = std::atoi(arg + 14);
        else if (std::strncmp(arg, "--slow-ms=", 10) == 0)
            a.slow_ms = std::atoi(arg + 10);
        else if (std::strncmp(arg, "--cancel-after-tokens=", 22) == 0)
            a.cancel_after_tokens = std::atoi(arg + 22);
        else if (std::strcmp(arg, "--verify-inprocess") == 0)
            a.verify_inprocess = true;
        else if (std::strncmp(arg, "--stats-json=", 13) == 0)
            a.stats_json_path = arg + 13;
    }
    return a;
}

/** The tool's canonical quick trace: small prompts, fast outputs. */
std::vector<Request>
clientTrace(const ClientArgs& a)
{
    TraceConfig tc;
    tc.seed = a.seed;
    tc.num_requests = a.requests;
    tc.arrival_rate_qps = 4.0;
    tc.prompt_median = 192;
    tc.prompt_min = 64;
    tc.prompt_max = 512;
    tc.output_median = 24;
    tc.output_min = 8;
    tc.output_max = 48;
    std::vector<Request> trace = generateTrace(tc);
    for (Request& r : trace)
        r.id += 1; // id 0 is the protocol's "no request" sentinel
    return trace;
}

net::SubmitMsg
toSubmit(const Request& r)
{
    net::SubmitMsg m;
    m.id = r.id;
    m.arrival_s = r.arrival_s;
    m.prompt_tokens = r.prompt_tokens;
    m.output_tokens = r.output_tokens;
    m.prefix_id = r.prefix_id;
    m.prefix_tokens = r.prefix_tokens;
    m.priority = r.priority;
    m.idle_after_tokens = r.idle_after_tokens;
    m.idle_wake_s = r.idle_wake_s;
    m.deadline_s = r.deadline_s;
    return m;
}

/** One wire client: submit a slice, stream everything back. */
void
runClient(const ClientArgs& a, int index, int port,
          const std::vector<Request>& slice, std::mutex& mu,
          std::map<int, WireResult>& results, net::HelloMsg& hello,
          bool& failed)
{
    net::NetClient nc;
    if (!nc.connect(a.host, port)) {
        std::lock_guard<std::mutex> lock(mu);
        failed = true;
        return;
    }
    if (index == 0) {
        std::lock_guard<std::mutex> lock(mu);
        hello = nc.hello();
    }
    for (const Request& r : slice)
        nc.submit(toSubmit(r));

    const int cancel_id =
        (index == 0 && a.cancel_after_tokens > 0 && !slice.empty())
            ? slice.front().id
            : -1;
    bool cancel_sent = false;

    std::size_t remaining = slice.size();
    net::NetEvent ev;
    while (remaining > 0) {
        if (index == a.slow_client && a.slow_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(a.slow_ms));
        if (!nc.readEvent(ev)) {
            std::lock_guard<std::mutex> lock(mu);
            failed = true; // connection died with requests outstanding
            return;
        }
        switch (ev.type) {
        case net::FrameType::Token:
            if (!cancel_sent && ev.request_id == cancel_id &&
                nc.tokensReceived(cancel_id) >= a.cancel_after_tokens) {
                nc.cancel(cancel_id);
                cancel_sent = true;
            }
            break;
        case net::FrameType::Done: {
            std::lock_guard<std::mutex> lock(mu);
            WireResult& w = results[ev.request_id];
            w.done = true;
            w.finished = ev.done.finished != 0;
            w.generated = ev.done.generated;
            w.output_hash = ev.done.output_hash;
            w.attn_hash = ev.done.attn_hash;
            w.stream_ok = nc.streamDigestOk(ev.request_id);
            remaining--;
            break;
        }
        case net::FrameType::Error: {
            std::lock_guard<std::mutex> lock(mu);
            results[ev.request_id].error = ev.error.message;
            std::fprintf(stderr, "client %d: ERROR %s for request %d: %s\n",
                         index, net::toString(ev.error.code),
                         ev.request_id, ev.error.message.c_str());
            failed = true;
            remaining--;
            break;
        }
        default:
            break; // SubmitOk / StatsJson
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const ServingOptions opts = ServingOptions::parse(argc, argv);
    const ClientArgs a = parseArgs(argc, argv);

    const std::vector<Request> trace = clientTrace(a);
    std::vector<std::vector<Request>> slices(
        static_cast<std::size_t>(a.clients));
    for (std::size_t i = 0; i < trace.size(); i++)
        slices[i % slices.size()].push_back(trace[i]);

    std::mutex mu;
    std::map<int, WireResult> results;
    net::HelloMsg hello;
    bool failed = false;

    std::vector<std::thread> threads;
    for (int c = 0; c < a.clients; c++)
        threads.emplace_back([&, c] {
            runClient(a, c, opts.port, slices[static_cast<std::size_t>(c)],
                      mu, results, hello, failed);
        });
    for (std::thread& t : threads)
        t.join();

    if (failed) {
        std::fprintf(stderr, "bitdec_client: wire run failed\n");
        return 1;
    }

    int finished = 0, canceled = 0, stream_bad = 0;
    std::uint64_t wire_digest = 0;
    for (const auto& [id, w] : results) {
        if (!w.stream_ok)
            stream_bad++;
        if (w.finished) {
            finished++;
            wire_digest ^= w.output_hash;
        } else {
            canceled++;
        }
    }
    std::printf("bitdec_client: %d finished, %d canceled over %d "
                "connections; wire digest %016llx\n",
                finished, canceled, a.clients,
                static_cast<unsigned long long>(wire_digest));
    if (stream_bad > 0) {
        std::fprintf(stderr,
                     "bitdec_client: %d request(s) with lost or "
                     "reordered TOKEN frames\n",
                     stream_bad);
        return 1;
    }

    if (!a.stats_json_path.empty()) {
        net::NetClient nc;
        if (!nc.connect(a.host, opts.port))
            return 1;
        nc.requestStats();
        net::NetEvent ev;
        while (nc.readEvent(ev))
            if (ev.type == net::FrameType::StatsJson)
                break;
        if (ev.type != net::FrameType::StatsJson)
            return 1;
        std::FILE* f = std::fopen(a.stats_json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         a.stats_json_path.c_str());
            return 1;
        }
        std::fprintf(f, "%s\n", ev.stats_json.c_str());
        std::fclose(f);
        std::printf("bitdec_client: wrote server stats to %s\n",
                    a.stats_json_path.c_str());
    }

    if (a.verify_inprocess) {
        // Rebuild the digest-relevant engine shape from HELLO and run
        // the identical trace in-process: every finished request's
        // output_hash and attn_hash must match the wire run.
        EngineConfig cfg;
        cfg.page_size = hello.page_size;
        cfg.cache_head_dim = hello.cache_head_dim;
        cfg.backend = hello.backend;
        auto local = makeServingClient(sim::archA100(),
                                       model::llama2_7b(), cfg,
                                       hello.shards > 0 ? hello.shards : 1);
        for (const Request& r : trace)
            local->submit(r);
        local->drain();

        int mismatches = 0;
        for (const auto& [id, w] : results) {
            if (!w.finished)
                continue; // wire-side cancel has no in-process twin
            const Request* l = local->poll(id);
            if (l == nullptr ||
                l->state != RequestState::Finished ||
                l->output_hash != w.output_hash ||
                l->attn_hash != w.attn_hash) {
                mismatches++;
                std::fprintf(stderr,
                             "request %d: wire (out %016llx attn %016llx)"
                             " != in-process\n",
                             id,
                             static_cast<unsigned long long>(
                                 w.output_hash),
                             static_cast<unsigned long long>(w.attn_hash));
            }
        }
        std::printf("bitdec_client: in-process verify %s (%d finished "
                    "requests compared, %d mismatches)\n",
                    mismatches == 0 ? "MATCHES" : "FAILED", finished,
                    mismatches);
        if (mismatches != 0)
            return 1;
    }
    return 0;
}
