/**
 * @file
 * bitdec_server: the serving engine behind a TCP socket.
 *
 * Builds a ServingClient (one engine or a sharded cluster, per
 * --shards) and serves the framed protocol of docs/NETWORK.md on
 * --port until SIGINT/SIGTERM gracefully drains it: in-flight requests
 * finish, streams flush, the final metrics print, exit 0.
 *
 *   bitdec_server --port=9178 --shards=4 --backend=fused-paged
 *   bitdec_server --port=0                 # ephemeral, prints the port
 *   bitdec_server --faults=fetch=0.02,... # chaos serving (tiers on)
 *
 * Shared flags (src/serving/options.h): --port, --shards, --backend,
 * --faults/--fault-seed, --tier, --hot-pool-pages, --list-backends.
 * Server-only: --max-inflight=<n> (admission cap, default 64),
 * --write-buffer-kb=<n> (per-connection backpressure watermark).
 */
#include <cstdio>
#include <cstring>

#include "backend/registry.h"
#include "gpusim/arch.h"
#include "model/model_config.h"
#include "net/drain.h"
#include "net/server.h"
#include "serving/client.h"
#include "serving/options.h"

using namespace bitdec;
using namespace bitdec::serving;

namespace {

/**
 * The canonical server engine shape. bitdec_client --verify-inprocess
 * rebuilds the digest-relevant part (backend, page_size,
 * cache_head_dim, shards) from the HELLO frame; everything else only
 * moves virtual time, never token content.
 */
EngineConfig
serverEngineConfig(const ServingOptions& opts, const std::string& backend)
{
    EngineConfig cfg;
    cfg.page_size = 64;
    cfg.cache_head_dim = 4;
    cfg.sched.max_batch = 32;
    cfg.sched.prefill_chunk_tokens = 2048;
    cfg.backend = backend;
    if (opts.tier != "none") {
        kv::TierSpec host;
        host.name = "host";
        host.capacity_gb = 8.0;
        cfg.tiered.tiers.push_back(host);
        if (opts.tier == "host,disk") {
            kv::TierSpec disk;
            disk.name = "disk";
            disk.capacity_gb = 64.0;
            disk.bandwidth_gbps = 4.0;
            disk.latency_s = 100e-6;
            cfg.tiered.tiers.push_back(disk);
        }
        cfg.num_pages = opts.hot_pool_pages;
    }
    if (!opts.fault_spec.empty()) {
        cfg.faults = opts.faultsOr("");
        if (opts.fault_seed_given)
            cfg.fault_seed = opts.fault_seed;
    }
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    const ServingOptions opts = ServingOptions::parse(argc, argv);
    if (opts.maybeListBackends())
        return 0;

    net::ServerConfig sc;
    sc.port = opts.port;
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], "--max-inflight=", 15) == 0)
            sc.max_inflight = std::atoi(argv[i] + 15);
        else if (std::strncmp(argv[i], "--write-buffer-kb=", 18) == 0)
            sc.write_buffer_limit =
                static_cast<std::size_t>(std::atoi(argv[i] + 18)) * 1024;
    }

    const backend::AttentionBackend& be =
        opts.resolveBackend("fused-paged");
    backend::requireServingCapable(be);
    if (!opts.fault_spec.empty() && opts.tier == "none")
        BITDEC_FATAL("--faults needs cold tiers to inject into; drop "
                     "--tier=none");

    const EngineConfig cfg = serverEngineConfig(opts, be.name());
    auto client = makeServingClient(sim::archA100(), model::llama2_7b(),
                                    cfg, opts.shards);

    net::ServerInfo info;
    info.backend = be.name();
    info.page_size = cfg.page_size;
    info.cache_head_dim = cfg.cache_head_dim;
    info.shards = opts.shards;

    net::installDrainSignalHandlers();
    net::Server server(*client, sc, info);
    std::printf("bitdec_server listening on %s:%d\n",
                sc.bind_host.c_str(), server.port());
    std::fflush(stdout);

    const ServingMetrics m = server.run();
    std::printf("%s\n", m.report().c_str());
    std::printf("peak write buffer %zu bytes, %ld busy rejections\n",
                server.peakWriteBuffer(), server.busyRejections());
    return 0;
}
