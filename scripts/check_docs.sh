#!/usr/bin/env bash
# Docs guard: keep the handbook from silently rotting.
#
#  1. Every relative markdown link in README.md and docs/*.md must point
#     at a file or directory that exists (anchors and external URLs are
#     ignored).
#  2. Every src/*/ module directory must be mentioned in
#     docs/ARCHITECTURE.md — adding a subsystem without documenting it
#     fails CI.
#  3. docs/ROBUSTNESS.md must exist and cover the fault module — the
#     chaos/recovery contract is load-bearing for the serving stack.
#  4. docs/CLUSTER.md must exist and cover the cluster module — the
#     sharding/invariance contract backs the cluster CI gate.
#  5. docs/BACKENDS.md must cover src/exec/simd/ — the SIMD dispatch
#     layer and its bit-exactness contract back the sibling backends
#     and the forced-scalar CI leg.
#  6. docs/NETWORK.md must exist and cover the net module — the wire
#     protocol and drain semantics back the server smoke CI gate.
#
# Run from the repo root: scripts/check_docs.sh
set -u

fail=0

check_links() {
    local file="$1"
    local dir
    dir=$(dirname "$file")
    # Pull out markdown link targets: [text](target)
    local targets
    targets=$(grep -o '](\([^)]*\))' "$file" | sed 's/^](//; s/)$//')
    local t
    for t in $targets; do
        case "$t" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        local path="${t%%#*}" # strip in-page anchor
        [ -z "$path" ] && continue
        # Markdown links resolve relative to the containing file.
        if [ ! -e "$dir/$path" ]; then
            echo "ERROR: $file links to missing path: $t"
            fail=1
        fi
    done
}

for f in README.md docs/*.md; do
    [ -e "$f" ] || continue
    check_links "$f"
done

arch_doc="docs/ARCHITECTURE.md"
if [ ! -e "$arch_doc" ]; then
    echo "ERROR: $arch_doc is missing"
    fail=1
else
    for d in src/*/; do
        mod=$(basename "$d")
        # Require the explicit `src/<mod>/` form: a bare substring would
        # be satisfied by incidental prose ("timing model", "serving").
        if ! grep -q "src/$mod/" "$arch_doc"; then
            echo "ERROR: module src/$mod/ is not mentioned in $arch_doc"
            fail=1
        fi
    done
fi

robust_doc="docs/ROBUSTNESS.md"
if [ ! -e "$robust_doc" ]; then
    echo "ERROR: $robust_doc is missing"
    fail=1
elif ! grep -q "src/fault/" "$robust_doc"; then
    echo "ERROR: $robust_doc does not cover src/fault/"
    fail=1
fi

cluster_doc="docs/CLUSTER.md"
if [ ! -e "$cluster_doc" ]; then
    echo "ERROR: $cluster_doc is missing"
    fail=1
elif ! grep -q "src/cluster/" "$cluster_doc"; then
    echo "ERROR: $cluster_doc does not cover src/cluster/"
    fail=1
fi

backends_doc="docs/BACKENDS.md"
if [ ! -e "$backends_doc" ]; then
    echo "ERROR: $backends_doc is missing"
    fail=1
elif ! grep -q "src/exec/simd/" "$backends_doc"; then
    echo "ERROR: $backends_doc does not cover src/exec/simd/"
    fail=1
fi

network_doc="docs/NETWORK.md"
if [ ! -e "$network_doc" ]; then
    echo "ERROR: $network_doc is missing"
    fail=1
elif ! grep -q "src/net/" "$network_doc"; then
    echo "ERROR: $network_doc does not cover src/net/"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "docs check FAILED"
    exit 1
fi
echo "docs check passed: links resolve, all modules documented"
