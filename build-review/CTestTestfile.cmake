# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_attention "/root/repo/build-review/test_attention")
set_tests_properties(test_attention PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build-review/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build-review/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_exec "/root/repo/build-review/test_exec")
set_tests_properties(test_exec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_gpusim "/root/repo/build-review/test_gpusim")
set_tests_properties(test_gpusim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build-review/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_layout_kv "/root/repo/build-review/test_layout_kv")
set_tests_properties(test_layout_kv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build-review/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build-review/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_quant "/root/repo/build-review/test_quant")
set_tests_properties(test_quant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_serving "/root/repo/build-review/test_serving")
set_tests_properties(test_serving PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;48;add_test;/root/repo/CMakeLists.txt;0;")
