# Empty compiler generated dependencies file for bench_table3_coop_softmax.
# This may be replaced when dependencies are built.
