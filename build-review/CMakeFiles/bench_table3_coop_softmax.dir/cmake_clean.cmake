file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_coop_softmax.dir/bench/bench_table3_coop_softmax.cc.o"
  "CMakeFiles/bench_table3_coop_softmax.dir/bench/bench_table3_coop_softmax.cc.o.d"
  "bench_table3_coop_softmax"
  "bench_table3_coop_softmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_coop_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
