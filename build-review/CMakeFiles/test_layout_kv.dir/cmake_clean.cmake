file(REMOVE_RECURSE
  "CMakeFiles/test_layout_kv.dir/tests/test_layout_kv.cc.o"
  "CMakeFiles/test_layout_kv.dir/tests/test_layout_kv.cc.o.d"
  "test_layout_kv"
  "test_layout_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
