# Empty dependencies file for test_layout_kv.
# This may be replaced when dependencies are built.
