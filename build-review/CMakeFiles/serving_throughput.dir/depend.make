# Empty dependencies file for serving_throughput.
# This may be replaced when dependencies are built.
