file(REMOVE_RECURSE
  "CMakeFiles/serving_throughput.dir/examples/serving_throughput.cpp.o"
  "CMakeFiles/serving_throughput.dir/examples/serving_throughput.cpp.o.d"
  "serving_throughput"
  "serving_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
