# Empty dependencies file for bench_serving_e2e.
# This may be replaced when dependencies are built.
