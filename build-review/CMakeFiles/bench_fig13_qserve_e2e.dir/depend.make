# Empty dependencies file for bench_fig13_qserve_e2e.
# This may be replaced when dependencies are built.
