# Empty dependencies file for bench_fig16_breakdown.
# This may be replaced when dependencies are built.
