# Empty compiler generated dependencies file for accuracy_explorer.
# This may be replaced when dependencies are built.
