file(REMOVE_RECURSE
  "CMakeFiles/accuracy_explorer.dir/examples/accuracy_explorer.cpp.o"
  "CMakeFiles/accuracy_explorer.dir/examples/accuracy_explorer.cpp.o.d"
  "accuracy_explorer"
  "accuracy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
