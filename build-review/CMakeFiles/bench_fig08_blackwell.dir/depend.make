# Empty dependencies file for bench_fig08_blackwell.
# This may be replaced when dependencies are built.
