file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_blackwell.dir/bench/bench_fig08_blackwell.cc.o"
  "CMakeFiles/bench_fig08_blackwell.dir/bench/bench_fig08_blackwell.cc.o.d"
  "bench_fig08_blackwell"
  "bench_fig08_blackwell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_blackwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
