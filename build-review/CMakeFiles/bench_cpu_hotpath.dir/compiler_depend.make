# Empty compiler generated dependencies file for bench_cpu_hotpath.
# This may be replaced when dependencies are built.
