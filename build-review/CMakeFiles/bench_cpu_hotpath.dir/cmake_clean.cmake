file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_hotpath.dir/bench/bench_cpu_hotpath.cc.o"
  "CMakeFiles/bench_cpu_hotpath.dir/bench/bench_cpu_hotpath.cc.o.d"
  "bench_cpu_hotpath"
  "bench_cpu_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
