# Empty dependencies file for bench_fig14_residual_overhead.
# This may be replaced when dependencies are built.
