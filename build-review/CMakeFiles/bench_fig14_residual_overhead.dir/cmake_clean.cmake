file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_residual_overhead.dir/bench/bench_fig14_residual_overhead.cc.o"
  "CMakeFiles/bench_fig14_residual_overhead.dir/bench/bench_fig14_residual_overhead.cc.o.d"
  "bench_fig14_residual_overhead"
  "bench_fig14_residual_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_residual_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
