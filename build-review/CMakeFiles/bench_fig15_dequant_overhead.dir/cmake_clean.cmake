file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dequant_overhead.dir/bench/bench_fig15_dequant_overhead.cc.o"
  "CMakeFiles/bench_fig15_dequant_overhead.dir/bench/bench_fig15_dequant_overhead.cc.o.d"
  "bench_fig15_dequant_overhead"
  "bench_fig15_dequant_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dequant_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
