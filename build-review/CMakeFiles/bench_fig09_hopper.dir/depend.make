# Empty dependencies file for bench_fig09_hopper.
# This may be replaced when dependencies are built.
