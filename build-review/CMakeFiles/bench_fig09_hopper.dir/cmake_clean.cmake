file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_hopper.dir/bench/bench_fig09_hopper.cc.o"
  "CMakeFiles/bench_fig09_hopper.dir/bench/bench_fig09_hopper.cc.o.d"
  "bench_fig09_hopper"
  "bench_fig09_hopper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_hopper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
