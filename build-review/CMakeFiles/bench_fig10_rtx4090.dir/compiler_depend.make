# Empty compiler generated dependencies file for bench_fig10_rtx4090.
# This may be replaced when dependencies are built.
