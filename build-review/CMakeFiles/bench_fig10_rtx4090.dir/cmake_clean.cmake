file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_rtx4090.dir/bench/bench_fig10_rtx4090.cc.o"
  "CMakeFiles/bench_fig10_rtx4090.dir/bench/bench_fig10_rtx4090.cc.o.d"
  "bench_fig10_rtx4090"
  "bench_fig10_rtx4090.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rtx4090.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
