# Empty dependencies file for bitdec.
# This may be replaced when dependencies are built.
