
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attention/flash_decoding.cc" "CMakeFiles/bitdec.dir/src/attention/flash_decoding.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/attention/flash_decoding.cc.o.d"
  "/root/repo/src/attention/kivi_baseline.cc" "CMakeFiles/bitdec.dir/src/attention/kivi_baseline.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/attention/kivi_baseline.cc.o.d"
  "/root/repo/src/attention/qserve_baseline.cc" "CMakeFiles/bitdec.dir/src/attention/qserve_baseline.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/attention/qserve_baseline.cc.o.d"
  "/root/repo/src/attention/reference.cc" "CMakeFiles/bitdec.dir/src/attention/reference.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/attention/reference.cc.o.d"
  "/root/repo/src/attention/workloads.cc" "CMakeFiles/bitdec.dir/src/attention/workloads.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/attention/workloads.cc.o.d"
  "/root/repo/src/common/half.cc" "CMakeFiles/bitdec.dir/src/common/half.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/common/half.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/bitdec.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/bitdec.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/common/rng.cc.o.d"
  "/root/repo/src/core/bitdecoding.cc" "CMakeFiles/bitdec.dir/src/core/bitdecoding.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/core/bitdecoding.cc.o.d"
  "/root/repo/src/core/packing_kernel.cc" "CMakeFiles/bitdec.dir/src/core/packing_kernel.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/core/packing_kernel.cc.o.d"
  "/root/repo/src/core/query_transform.cc" "CMakeFiles/bitdec.dir/src/core/query_transform.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/core/query_transform.cc.o.d"
  "/root/repo/src/core/residual_kernel.cc" "CMakeFiles/bitdec.dir/src/core/residual_kernel.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/core/residual_kernel.cc.o.d"
  "/root/repo/src/exec/dequant_plan.cc" "CMakeFiles/bitdec.dir/src/exec/dequant_plan.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/exec/dequant_plan.cc.o.d"
  "/root/repo/src/exec/fused_attention.cc" "CMakeFiles/bitdec.dir/src/exec/fused_attention.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/exec/fused_attention.cc.o.d"
  "/root/repo/src/exec/thread_pool.cc" "CMakeFiles/bitdec.dir/src/exec/thread_pool.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/exec/thread_pool.cc.o.d"
  "/root/repo/src/gpusim/arch.cc" "CMakeFiles/bitdec.dir/src/gpusim/arch.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/gpusim/arch.cc.o.d"
  "/root/repo/src/gpusim/bitops.cc" "CMakeFiles/bitdec.dir/src/gpusim/bitops.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/gpusim/bitops.cc.o.d"
  "/root/repo/src/gpusim/fragment.cc" "CMakeFiles/bitdec.dir/src/gpusim/fragment.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/gpusim/fragment.cc.o.d"
  "/root/repo/src/gpusim/shared_memory.cc" "CMakeFiles/bitdec.dir/src/gpusim/shared_memory.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/gpusim/shared_memory.cc.o.d"
  "/root/repo/src/gpusim/timing.cc" "CMakeFiles/bitdec.dir/src/gpusim/timing.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/gpusim/timing.cc.o.d"
  "/root/repo/src/gpusim/warp.cc" "CMakeFiles/bitdec.dir/src/gpusim/warp.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/gpusim/warp.cc.o.d"
  "/root/repo/src/kvcache/kv_cache.cc" "CMakeFiles/bitdec.dir/src/kvcache/kv_cache.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/kvcache/kv_cache.cc.o.d"
  "/root/repo/src/kvcache/paged_cache.cc" "CMakeFiles/bitdec.dir/src/kvcache/paged_cache.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/kvcache/paged_cache.cc.o.d"
  "/root/repo/src/layout/induced_layout.cc" "CMakeFiles/bitdec.dir/src/layout/induced_layout.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/layout/induced_layout.cc.o.d"
  "/root/repo/src/layout/tile.cc" "CMakeFiles/bitdec.dir/src/layout/tile.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/layout/tile.cc.o.d"
  "/root/repo/src/model/accuracy_proxy.cc" "CMakeFiles/bitdec.dir/src/model/accuracy_proxy.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/model/accuracy_proxy.cc.o.d"
  "/root/repo/src/model/decode_sim.cc" "CMakeFiles/bitdec.dir/src/model/decode_sim.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/model/decode_sim.cc.o.d"
  "/root/repo/src/model/model_config.cc" "CMakeFiles/bitdec.dir/src/model/model_config.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/model/model_config.cc.o.d"
  "/root/repo/src/quant/fast_dequant.cc" "CMakeFiles/bitdec.dir/src/quant/fast_dequant.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/quant/fast_dequant.cc.o.d"
  "/root/repo/src/quant/int_quant.cc" "CMakeFiles/bitdec.dir/src/quant/int_quant.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/quant/int_quant.cc.o.d"
  "/root/repo/src/quant/mx_format.cc" "CMakeFiles/bitdec.dir/src/quant/mx_format.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/quant/mx_format.cc.o.d"
  "/root/repo/src/quant/packing.cc" "CMakeFiles/bitdec.dir/src/quant/packing.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/quant/packing.cc.o.d"
  "/root/repo/src/quant/quant_params.cc" "CMakeFiles/bitdec.dir/src/quant/quant_params.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/quant/quant_params.cc.o.d"
  "/root/repo/src/quant/repack_baselines.cc" "CMakeFiles/bitdec.dir/src/quant/repack_baselines.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/quant/repack_baselines.cc.o.d"
  "/root/repo/src/serving/engine.cc" "CMakeFiles/bitdec.dir/src/serving/engine.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/serving/engine.cc.o.d"
  "/root/repo/src/serving/metrics.cc" "CMakeFiles/bitdec.dir/src/serving/metrics.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/serving/metrics.cc.o.d"
  "/root/repo/src/serving/request.cc" "CMakeFiles/bitdec.dir/src/serving/request.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/serving/request.cc.o.d"
  "/root/repo/src/serving/scheduler.cc" "CMakeFiles/bitdec.dir/src/serving/scheduler.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/serving/scheduler.cc.o.d"
  "/root/repo/src/serving/trace.cc" "CMakeFiles/bitdec.dir/src/serving/trace.cc.o" "gcc" "CMakeFiles/bitdec.dir/src/serving/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
