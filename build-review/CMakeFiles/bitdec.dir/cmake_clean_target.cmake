file(REMOVE_RECURSE
  "libbitdec.a"
)
