# Empty compiler generated dependencies file for bench_fig04_warp_stalls.
# This may be replaced when dependencies are built.
