file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_warp_stalls.dir/bench/bench_fig04_warp_stalls.cc.o"
  "CMakeFiles/bench_fig04_warp_stalls.dir/bench/bench_fig04_warp_stalls.cc.o.d"
  "bench_fig04_warp_stalls"
  "bench_fig04_warp_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_warp_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
