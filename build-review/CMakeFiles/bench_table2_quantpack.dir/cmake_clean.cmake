file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_quantpack.dir/bench/bench_table2_quantpack.cc.o"
  "CMakeFiles/bench_table2_quantpack.dir/bench/bench_table2_quantpack.cc.o.d"
  "bench_table2_quantpack"
  "bench_table2_quantpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quantpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
