/**
 * @file
 * Quickstart: pack a prompt's KV cache to 4 bits, run one fused decode
 * step, and compare against the FP16 reference — the five-line workflow
 * of the BitDecoding API.
 */
#include <cmath>
#include <cstdio>

#include "attention/reference.h"
#include "backend/registry.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"

using namespace bitdec;

int
main()
{
    std::printf("BitDecoding quickstart\n======================\n\n");

    // 1. Configure: 4-bit channel-wise keys, 4 warps along KV.
    core::BitDecodingConfig cfg;
    cfg.quant.bits = 4;
    cfg.quant.key_granularity = quant::Granularity::ChannelWise;

    // 2. Create a decoder for one KV head (head_dim = 128).
    const int d = 128;
    core::HeadDecoder decoder(d, cfg);
    std::printf("residual block size Nr = %d tokens (Eq. 1)\n",
                decoder.cache().residualBlockSize());

    // 3. Prefill a 512-token prompt context.
    Rng rng(42);
    Tensor<Half> k({512, static_cast<std::size_t>(d)});
    Tensor<Half> v({512, static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < k.numel(); i++) {
        k[i] = Half(rng.normal());
        v[i] = Half(rng.normal());
    }
    decoder.prefill(k, v);
    std::printf("prefilled %d tokens: %d packed + %d residual (FP16)\n",
                decoder.cache().length(), decoder.cache().packedTokens(),
                decoder.cache().residualLength());
    std::printf("cache bytes: %.0f (FP16 would be %.0f -> %.2fx smaller)\n",
                decoder.cache().deviceBytes(), 2.0 * 512 * d * 2 * 2,
                2.0 * 512 * d * 2 * 2 / decoder.cache().deviceBytes());

    // 4. One decode step for a GQA group of 8 query heads.
    Tensor<Half> q({8, static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < q.numel(); i++)
        q[i] = Half(rng.normal());
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const auto result = decoder.decodeStep(q, scale);
    std::printf("\ndecode step: valid=%s\n", result.valid ? "yes" : "no");

    // 5. Compare with the FP16 reference.
    const auto want = attn::referenceAttention(q, k, v, scale);
    float err = 0;
    for (std::size_t g = 0; g < 8; g++)
        for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++)
            err = std::max(err, std::fabs(result.out.at(g, c) -
                                          want.at(g, c)));
    std::printf("max |output - FP16 reference| = %.4f "
                "(bounded by 4-bit quantization error)\n", err);

    // 5b. The same step through the backend registry — the seam the
    // serving engine and benches use to swap kernels by name.
    const backend::AttentionBackend& be =
        backend::BackendRegistry::instance().resolve("fused-packed");
    backend::DecodeBatch batch;
    batch.scale = scale;
    batch.items.push_back(backend::packedItem(q, decoder.cache()));
    const auto fast = be.decodeStep(batch)[0];
    float dev = 0;
    for (std::size_t g = 0; g < 8; g++)
        for (std::size_t c = 0; c < static_cast<std::size_t>(d); c++)
            dev = std::max(dev, std::fabs(fast.at(g, c) - result.out.at(g, c)));
    std::printf("'%s' backend matches the emulated kernel to %.2e\n",
                be.name(), dev);

    // 6. What would this cost on a real GPU? Ask the timing model.
    attn::DecodeShape shape;
    shape.batch = 1;
    shape.num_q_heads = 32;
    shape.num_kv_heads = 8;
    shape.head_dim = d;
    shape.seq_len = 131072;
    const double bd =
        core::bitDecodingTime(sim::archA100(), shape, cfg).total_s;
    std::printf("\nmodeled A100 latency for a 128K-context decode step: "
                "%.3f ms/layer\n", bd * 1e3);
    return 0;
}
