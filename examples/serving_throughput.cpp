/**
 * @file
 * Serving explorer on the continuous-batching engine (src/serving): runs a
 * Poisson trace of long-context requests through FP16 FlashDecoding,
 * QServe and BitDecoding-4 for several models and reports page capacity,
 * tail latency and sustained throughput — the workload of the paper's
 * Fig. 13 upgraded from a single max-batch probe to latency under load.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "backend/registry.h"
#include "cluster/cluster.h"
#include "fault/fault.h"
#include "gpusim/arch.h"
#include "model/decode_sim.h"
#include "model/model_config.h"
#include "net/drain.h"
#include "serving/client.h"
#include "serving/engine.h"
#include "serving/options.h"
#include "serving/trace.h"

using namespace bitdec;
using namespace bitdec::serving;

namespace {

TraceConfig
exampleTrace()
{
    TraceConfig tc;
    tc.seed = 7;
    tc.num_requests = 16;
    tc.arrival_rate_qps = 0.10;
    tc.prompt_median = 32768;
    tc.prompt_log_sigma = 0.1;
    tc.prompt_min = 16384;
    tc.prompt_max = 49152;
    tc.output_median = 512;
    tc.output_log_sigma = 0.3;
    tc.output_min = 128;
    tc.output_max = 1024;
    return tc;
}

/**
 * Submits a whole trace through the narrow seam and runs it — as a
 * stream pump rather than a batch drain, so Ctrl-C (the net/drain.h
 * SIGINT/SIGTERM flag) stops the run at the next tick, cancels the
 * stragglers and still returns metrics for whatever completed instead
 * of dying mid-run.
 */
ServingMetrics
runOnClient(ServingClient& client, const std::vector<Request>& trace)
{
    client.streamBegin();
    for (const Request& r : trace)
        client.streamSubmit(r);
    while (!net::drainRequested() && client.streamTick()) {
    }
    if (!client.streamIdle()) {
        std::printf("  (interrupted — canceling in-flight requests, "
                    "final metrics below)\n");
        for (const Request& r : trace) {
            const Request* p = client.poll(r.id);
            if (p != nullptr && !p->done())
                client.streamCancel(r.id);
        }
    }
    return client.streamEnd();
}

} // namespace

int
main(int argc, char** argv)
{
    // One shared CLI surface (src/serving/options.h):
    // --list-backends prints the registry's capability matrix;
    // --backend=<name> picks the per-step functional attention backend
    // of the preemption demo below (default fused-paged).
    // --hot-pool-pages=N sizes the tiered demo's hot pool (default 2048);
    // --tier=host | host,disk | none picks the cold tiers layered under
    // it (default host,disk; none = recompute baseline only).
    // --faults=<spec> overrides the chaos demo's storm (see
    // fault::FaultSchedule::parse); --fault-seed=<n> its decision seed.
    // --shards=N sizes the sharded-cluster demo (default 4).
    const ServingOptions opts = ServingOptions::parse(argc, argv);
    if (opts.maybeListBackends())
        return 0;
    // Ctrl-C drains the current demo gracefully (see runOnClient);
    // a second Ctrl-C falls back to the default hard kill.
    net::installDrainSignalHandlers();
    const int hot_pool_pages = opts.hot_pool_pages;
    const std::string& tier_arg = opts.tier;
    const backend::AttentionBackend& demo_backend =
        opts.resolveBackend("fused-paged");
    // Die before the multi-system sweep, not at the demo's engine.
    backend::requireServingCapable(demo_backend);

    std::printf("Continuous-batching serving explorer (A100, 32K)\n");
    std::printf("================================================\n");
    std::printf("16 Poisson arrivals at 0.10 req/s, 32K prompts, "
                "512-token outputs.\n\n");
    const auto& a100 = sim::archA100();

    for (const auto* m : {&model::llama2_7b(), &model::llama31_8b(),
                          &model::qwen3_8b()}) {
        std::printf("%s (%s):\n", m->name.c_str(),
                    m->isMha() ? "MHA" : "GQA");
        std::printf("  %-18s %8s %10s %10s %10s %10s %9s\n", "system",
                    "pages", "ttft-p50", "ttft-p99", "p99-lat", "tok/s",
                    "preempt");
        struct Sut
        {
            model::SystemKind sys;
            int bits;
            const char* name;
        };
        for (const Sut& s :
             {Sut{model::SystemKind::FlashDecodingFp16, 16, "FD-v2 (fp16)"},
              Sut{model::SystemKind::QServe, 4, "QServe (int4)"},
              Sut{model::SystemKind::BitDecoding, 4, "BitDecoding-4"}}) {
            EngineConfig cfg;
            cfg.system = s.sys;
            cfg.bits = s.bits;
            cfg.page_size = 64;
            cfg.cache_head_dim = 4;
            cfg.sched.max_batch = 64;
            cfg.sched.prefill_chunk_tokens = 2048;

            auto client = makeServingClient(a100, *m, cfg);
            const int pool_pages = client->stats().total_pool_pages;
            const ServingMetrics r =
                runOnClient(*client, generateTrace(exampleTrace()));
            std::printf("  %-18s %8d %10.2f %10.2f %10.2f %10.1f %9d\n",
                        s.name, pool_pages, r.ttft_p50_s, r.ttft_p99_s,
                        r.latency_p99_s, r.sustained_tokens_per_s,
                        r.preemptions);
        }
        std::printf("\n");
    }

    // The fixed smoke trace through a deliberately tiny pool: watch the
    // scheduler preempt-and-recompute instead of dropping requests. The
    // engine also runs the registry-resolved attention backend on every
    // decode step, folding each output into the request's attn_hash.
    std::printf("Preemption demo (smoke trace, 28-page pool, "
                "'%s' attention backend):\n",
                demo_backend.name());
    EngineConfig tiny;
    tiny.page_size = 8;
    tiny.num_pages = 28;
    tiny.cache_head_dim = 4;
    tiny.sched.max_batch = 8;
    tiny.sched.prefill_chunk_tokens = 16;
    tiny.backend = demo_backend.name();
    const auto smoke = smokeTrace();
    auto smoke_client = makeServingClient(a100, model::llama2_7b(), tiny);
    const ServingMetrics m = runOnClient(*smoke_client, smoke);
    std::uint64_t attn_digest = 0;
    for (const Request& r : smoke)
        attn_digest ^= smoke_client->poll(r.id)->attn_hash;
    std::printf("  %d/%zu finished, %d preemptions, peak pool use %.0f%%, "
                "digest %016llx, attn digest %016llx\n\n",
                m.num_requests, smoke.size(), m.preemptions,
                100.0 * m.peak_page_utilization,
                static_cast<unsigned long long>(m.outputs_digest),
                static_cast<unsigned long long>(attn_digest));

    // Shared-prefix reuse + priority scheduling: a burst of requests with
    // a common 16K system prompt and three priority classes. The first
    // request publishes the packed prefix pages; everyone else maps them
    // (refcount bump) and skips straight to its unique tail.
    std::printf("Shared-prefix + priority demo (16K system prompt, "
                "3 classes, BitDecoding-4):\n");
    TraceConfig ptc;
    ptc.seed = 21;
    ptc.num_requests = 12;
    ptc.arrival_rate_qps = 1.0;
    ptc.shared_prefix_tokens = 16384;
    ptc.prompt_median = 4096; // unique tail
    ptc.prompt_min = 2048;
    ptc.prompt_max = 8192;
    ptc.output_median = 256;
    ptc.output_min = 64;
    ptc.output_max = 512;
    ptc.num_priority_levels = 3;
    for (bool reuse : {false, true}) {
        EngineConfig cfg;
        cfg.page_size = 64;
        cfg.cache_head_dim = 4;
        cfg.sched.max_batch = 4; // a queue forms: priorities matter
        cfg.sched.prefill_chunk_tokens = 2048;
        cfg.sched.policy = SchedPolicy::Priority;
        cfg.sched.prefix_reuse = reuse;
        auto client = makeServingClient(a100, model::llama31_8b(), cfg);
        const ServingMetrics r = runOnClient(*client, generateTrace(ptc));
        std::printf("  %-26s req/s %.2f, prefix hit-rate %.0f%%, saved "
                    "%ld prefill tokens, digest %016llx\n",
                    reuse ? "prefix reuse on:" : "prefix reuse off:",
                    r.sustained_qps, 100.0 * r.prefix_hit_rate,
                    r.prefix_hit_tokens,
                    static_cast<unsigned long long>(r.outputs_digest));
        for (const auto& p : r.ttft_by_priority)
            std::printf("    priority %d: %d reqs, ttft mean %.2f s, "
                        "p95 %.2f s\n",
                        p.priority, p.count, p.mean_s, p.p95_s);
    }

    // Chunked prefill demo: 100K prompts landing mid-decode. The per-tick
    // token budget bounds how long any tick can run, so the inter-token
    // gap (decode stall) other requests see collapses; 0 = monolithic
    // prefill, the head-of-line-blocking baseline.
    std::printf("\nChunked prefill demo (100K stragglers mid-decode, "
                "BitDecoding-4):\n");
    TraceConfig ltc;
    ltc.seed = 2026;
    ltc.num_requests = 16;
    ltc.arrival_rate_qps = 2.0;
    ltc.prompt_median = 2048;
    ltc.prompt_min = 1024;
    ltc.prompt_max = 4096;
    ltc.output_median = 64;
    ltc.output_min = 32;
    ltc.output_max = 128;
    ltc.long_prompt_every = 2;
    ltc.long_prompt_tokens = 100 * 1024;
    for (int budget : {0, 8192, 2048}) {
        EngineConfig cfg;
        cfg.page_size = 64;
        cfg.cache_head_dim = 4;
        cfg.sched.prefill_chunk_tokens = budget;
        auto client = makeServingClient(a100, model::llama31_8b(), cfg);
        const ServingMetrics r = runOnClient(*client, generateTrace(ltc));
        char label[40];
        if (budget == 0)
            std::snprintf(label, sizeof(label), "monolithic");
        else
            std::snprintf(label, sizeof(label), "budget %d tok/tick",
                          budget);
        std::printf("  %-22s decode-stall p50 %.3f s, p99 %.3f s, "
                    "tok/s %.1f, digest %016llx\n",
                    label, r.decode_stall_p50_s, r.decode_stall_p99_s,
                    r.sustained_tokens_per_s,
                    static_cast<unsigned long long>(r.outputs_digest));
    }

    // Tiered KV demo: 12 idle sessions park 16K contexts against a hot
    // pool that fits only a few of them. Untiered, parked pages are
    // evicted and recomputed on wake; with cold tiers the packed 4-bit
    // pages offload and demand-fetch back (prefetch included), the clock
    // paying the transfer — the digest is identical either way.
    std::printf("\nTiered KV demo (12 parked 16K sessions, %d-page hot "
                "pool, tiers: %s):\n",
                hot_pool_pages, tier_arg.c_str());
    TraceConfig ttc;
    ttc.seed = 31;
    ttc.num_requests = 6;
    ttc.arrival_rate_qps = 1.0;
    ttc.prompt_median = 4096;
    ttc.prompt_min = 2048;
    ttc.prompt_max = 8192;
    ttc.output_median = 64;
    ttc.output_min = 32;
    ttc.output_max = 128;
    ttc.num_idle_sessions = 12;
    ttc.idle_prompt_tokens = 16384;
    ttc.idle_output_tokens = 8;
    ttc.idle_wake_s = 30.0;
    ttc.idle_wake_stagger_s = 1.0;
    const auto tieredDemoConfig = [&] {
        EngineConfig cfg;
        cfg.page_size = 64;
        cfg.cache_head_dim = 4;
        cfg.num_pages = hot_pool_pages;
        cfg.sched.max_batch = 32;
        cfg.sched.prefill_chunk_tokens = 2048;
        kv::TierSpec host;
        host.name = "host";
        host.capacity_gb = 8.0;
        cfg.tiered.tiers.push_back(host);
        if (tier_arg == "host,disk") {
            kv::TierSpec disk;
            disk.name = "disk";
            disk.capacity_gb = 64.0;
            disk.bandwidth_gbps = 4.0;
            disk.latency_s = 100e-6;
            cfg.tiered.tiers.push_back(disk);
        }
        return cfg;
    };
    std::uint64_t tiered_digest = 0;
    for (int pass = 0; pass < 2; pass++) {
        const bool tiered = pass == 1;
        if (tiered && tier_arg == "none")
            break;
        EngineConfig cfg = tieredDemoConfig();
        if (!tiered)
            cfg.tiered.tiers.clear();
        auto client = makeServingClient(a100, model::llama31_8b(), cfg);
        const ServingMetrics r = runOnClient(*client, generateTrace(ttc));
        if (tiered)
            tiered_digest = r.outputs_digest;
        std::printf("  %-22s req/s %.2f, peak resident seqs %d, "
                    "digest %016llx\n",
                    tiered ? "tiered:" : "untiered (recompute):",
                    r.sustained_qps, r.peak_resident_seqs,
                    static_cast<unsigned long long>(r.outputs_digest));
        if (tiered) {
            std::printf("    offloaded %ld pages, fetched %ld, prefetched "
                        "%ld (%ld hits), spilled %ld, dropped %ld\n",
                        r.tier.offloaded_pages, r.tier.fetched_pages,
                        r.tier.prefetched_pages, r.tier.prefetch_hits,
                        r.tier.spilled_pages, r.tier.dropped_pages);
            std::printf("    tier hit-rate %.0f%%, fetch-stall p99 %.3f s; ",
                        100.0 * r.tier_hit_rate, r.fetch_stall_p99_s);
            for (const auto& t : r.tiers)
                std::printf("%s peak %d/%d pages ", t.name.c_str(),
                            t.peak_used_pages, t.capacity_pages);
            std::printf("\n");
        }
    }

    // Chaos demo: the same tiered scenario under a deterministic fault
    // storm (--faults / --fault-seed override the defaults). Cold
    // fetches fail and spike, parked pages rot, hot allocations hiccup —
    // and the checksum+ECC, hedged-read, retry-with-backoff and
    // page-rebuild defenses recover every one of them: the output digest
    // must equal the fault-free tiered run's bit for bit.
    if (tier_arg != "none") {
        const fault::FaultSchedule storm = opts.faultsOr(
            "fetch=0.02,corrupt=0.01,spike=0.02,alloc=0.01,mult=50,"
            "multibit=0.2");
        EngineConfig cfg = tieredDemoConfig();
        cfg.faults = storm;
        if (opts.fault_seed_given)
            cfg.fault_seed = opts.fault_seed;
        std::printf("\nChaos demo (tiered scenario under a fault storm, "
                    "seed %llu):\n  storm: %s\n",
                    static_cast<unsigned long long>(cfg.fault_seed),
                    storm.summary().c_str());
        auto client = makeServingClient(a100, model::llama31_8b(), cfg);
        const ServingMetrics r = runOnClient(*client, generateTrace(ttc));
        std::printf("%s\n", r.report().c_str());
        if (net::drainRequested()) {
            std::printf("  (digest gate skipped: run was interrupted)\n");
        } else {
            std::printf("  digest %s the fault-free tiered run\n",
                        r.outputs_digest == tiered_digest ? "MATCHES"
                                                          : "DIFFERS from");
            if (r.outputs_digest != tiered_digest)
                return 1;
        }
    }

    // Sharded-cluster demo: the same ServingClient driver code, N full
    // engine replicas behind the sticky prefix-aware router. Requests
    // fall into four prefix families; each family sticks to its home
    // shard (prefix pages map instead of re-prefilling) and the run
    // digest must match the single-engine run bit for bit — placement
    // never changes token content.
    const int demo_shards = opts.shards > 1 ? opts.shards : 4;
    std::printf("\nSharded-cluster demo (%d shards, sticky prefix router, "
                "BitDecoding-4):\n",
                demo_shards);
    TraceConfig ctc;
    ctc.seed = 42;
    ctc.num_requests = 16;
    ctc.arrival_rate_qps = 1.0;
    ctc.prompt_median = 8192;
    ctc.prompt_min = 6144;
    ctc.prompt_max = 12288;
    ctc.output_median = 128;
    ctc.output_min = 64;
    ctc.output_max = 256;
    auto ctrace = generateTrace(ctc);
    for (std::size_t i = 0; i < ctrace.size(); i++) {
        ctrace[i].prefix_id = 0xFA417ull + (i % 4); // four prefix families
        ctrace[i].prefix_tokens = 4096;
    }
    EngineConfig ccfg;
    ccfg.page_size = 64;
    ccfg.cache_head_dim = 4;
    ccfg.sched.prefill_chunk_tokens = 2048;
    std::uint64_t single_digest = 0;
    for (const int shards : {1, demo_shards}) {
        auto client =
            makeServingClient(a100, model::llama31_8b(), ccfg, shards);
        const ServingMetrics r = runOnClient(*client, ctrace);
        char label[40];
        std::snprintf(label, sizeof(label), "%d shard%s:", shards,
                      shards == 1 ? "" : "s");
        std::printf("  %-12s req/s %.2f, ttft-p99 %.2f s, hit-rate %.0f%%, "
                    "digest %016llx\n",
                    label, r.sustained_qps, r.ttft_p99_s,
                    100.0 * r.prefix_hit_rate,
                    static_cast<unsigned long long>(r.outputs_digest));
        if (shards == 1) {
            single_digest = r.outputs_digest;
            continue;
        }
        const auto* cl =
            dynamic_cast<const cluster::Cluster*>(client.get());
        if (cl != nullptr) {
            const cluster::ClusterMetrics& cm = cl->clusterMetrics();
            std::printf("    router: %ld sticky, %ld cold, %ld "
                        "least-loaded, %ld rebalances; per-shard reqs:",
                        cm.router.sticky_hits, cm.router.cold_placements,
                        cm.router.least_loaded, cm.router.rebalances);
            for (const long n : cm.router.per_shard_requests)
                std::printf(" %ld", n);
            std::printf("\n");
        }
        if (net::drainRequested()) {
            std::printf("  (digest gate skipped: run was interrupted)\n");
        } else {
            std::printf("  digest %s the single-engine run\n",
                        r.outputs_digest == single_digest ? "MATCHES"
                                                          : "DIFFERS from");
            if (r.outputs_digest != single_digest)
                return 1;
        }
    }
    return 0;
}
