/**
 * @file
 * Serving scenario: paged KV management across models and systems —
 * the workload of the paper's Fig. 13, exposed as an explorable tool.
 * Also demonstrates the functional paged cache allocator under load.
 */
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "gpusim/arch.h"
#include "kvcache/paged_cache.h"
#include "model/decode_sim.h"
#include "model/model_config.h"

using namespace bitdec;
using namespace bitdec::model;

int
main()
{
    std::printf("Paged serving throughput explorer (A100, 32K)\n");
    std::printf("=============================================\n\n");
    const auto& a100 = sim::archA100();

    for (const auto* m : {&llama2_7b(), &llama31_8b(), &qwen3_8b()}) {
        std::printf("%s (%s):\n", m->name.c_str(),
                    m->isMha() ? "MHA" : "GQA");
        std::printf("  %-18s %8s %10s %10s\n", "system", "batch", "tok/s",
                    "ms/step");
        for (auto [sys, name] :
             {std::pair{SystemKind::FlashDecodingFp16, "FD-v2 (fp16)"},
              std::pair{SystemKind::QServe, "QServe (int4)"},
              std::pair{SystemKind::BitDecoding, "BitDecoding-4"}}) {
            E2EConfig c;
            c.system = sys;
            c.bits = 4;
            c.scenario = attn::Scenario::Pages;
            const auto r = maxBatchThroughput(a100, *m, 32768, c);
            if (r.oom)
                std::printf("  %-18s %8s %10s %10s\n", name, "-", "OOM", "-");
            else
                std::printf("  %-18s %8d %10.1f %10.2f\n", name, r.batch,
                            r.tokens_per_s, r.step_latency_s * 1e3);
        }
        std::printf("\n");
    }

    // Functional paged allocator under a mixed arrival/eviction workload.
    std::printf("Functional paged-cache demo (page=16 tokens, pool=64):\n");
    kv::PagedHeadCache cache(32, 16, 64);
    Rng rng(11);
    std::vector<int> seqs;
    int admitted = 0, rejected = 0;
    for (int event = 0; event < 200; event++) {
        if (seqs.empty() || rng.uniform() < 0.3) {
            seqs.push_back(cache.addSequence());
            admitted++;
        }
        const int s = seqs[static_cast<std::size_t>(
            rng.uniformInt(seqs.size()))];
        std::vector<Half> k(32), v(32);
        for (int c = 0; c < 32; c++)
            k[static_cast<std::size_t>(c)] = Half(rng.normal());
        if (!cache.append(s, k, v)) {
            // Pool exhausted: evict the longest sequence (simple policy).
            int victim = seqs[0];
            for (int cand : seqs)
                if (cache.length(cand) > cache.length(victim))
                    victim = cand;
            cache.removeSequence(victim);
            seqs.erase(std::find(seqs.begin(), seqs.end(), victim));
            rejected++;
        }
    }
    std::printf("  %d sequences admitted, %d evictions, %d pages free\n",
                admitted, rejected, cache.freePages());
    return 0;
}
