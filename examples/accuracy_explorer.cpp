/**
 * @file
 * Accuracy explorer: sweeps bit width, key-scaling granularity and group
 * size on the synthetic long-context retrieval proxy, showing how each
 * quantization choice trades accuracy — the decision surface behind
 * Table I and the KT/KC configurations.
 */
#include <cstdio>

#include "model/accuracy_proxy.h"

using namespace bitdec;
using namespace bitdec::model;

int
main()
{
    std::printf("KV-quantization accuracy explorer (synthetic retrieval "
                "proxy)\n");
    std::printf("============================================================"
                "\n\n");
    ProxyConfig pc;
    pc.num_tasks = 300;

    const double fp16 = proxyScoreFp16(pc).accuracy;
    std::printf("FP16 baseline: %.1f%%\n\n", fp16);

    std::printf("%-6s %-14s %-10s %10s %10s\n", "bits", "granularity",
                "group", "accuracy", "delta");
    for (int bits : {8, 4, 2}) {
        for (auto gran : {quant::Granularity::ChannelWise,
                          quant::Granularity::TensorWise}) {
            for (int group : {16, 32}) {
                quant::QuantConfig qc;
                qc.bits = bits;
                qc.key_granularity = gran;
                qc.group_size = group;
                const double acc = proxyScoreQuantized(pc, qc).accuracy;
                std::printf("%-6d %-14s %-10d %9.1f%% %+9.1f\n", bits,
                            gran == quant::Granularity::ChannelWise
                                ? "channel-wise"
                                : "tensor-wise",
                            group, acc, acc - fp16);
            }
        }
    }
    std::printf("\nReading: smaller groups and channel-wise keys cushion "
                "low-bit degradation; INT8/INT4 track FP16 closely while "
                "INT2 pays a visible cost — the Table I trade-off.\n");
    return 0;
}
