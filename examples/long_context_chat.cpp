/**
 * @file
 * Long-context assistant scenario: LLaMA-3.1-8B answering over a 128K
 * document on one A100. Compares FP16, KIVI and BitDecoding end to end
 * (latency, memory, feasibility), then runs a small functional decode
 * loop to show the cache tracking generation.
 */
#include <cmath>
#include <cstdio>
#include <tuple>

#include "attention/reference.h"
#include "backend/registry.h"
#include "common/rng.h"
#include "core/bitdecoding.h"
#include "gpusim/arch.h"
#include "model/decode_sim.h"
#include "model/model_config.h"

using namespace bitdec;
using namespace bitdec::model;

int
main()
{
    std::printf("Long-context chat: LLaMA-3.1-8B @ 128K on A100\n");
    std::printf("===============================================\n\n");
    const auto& a100 = sim::archA100();
    const auto& m = llama31_8b();
    const int len = 131072;

    std::printf("%-22s %10s %12s %10s\n", "system", "ms/token", "memory GB",
                "fits?");
    for (auto [sys, bits, name] :
         {std::tuple{SystemKind::FlashDecodingFp16, 16, "FP16 FD-v2"},
          std::tuple{SystemKind::Kivi, 4, "KIVI-4"},
          std::tuple{SystemKind::BitDecoding, 4, "BitDecoding-KC-4"},
          std::tuple{SystemKind::BitDecoding, 2, "BitDecoding-KC-2"}}) {
        E2EConfig c;
        c.system = sys;
        c.bits = bits;
        const double mem = peakMemoryBytes(m, len, 1, c) / 1e9;
        const bool fits = mem <= a100.hbm_gb;
        const double ms =
            fits ? decodeStepTime(a100, m, len, 1, c).total_s * 1e3 : 0.0;
        std::printf("%-22s %10.2f %12.1f %10s\n", name, ms, mem,
                    fits ? "yes" : "OOM");
    }

    // Functional miniature of the same loop: one head group decoding with
    // a growing packed cache.
    std::printf("\nFunctional decode loop (miniature, d=64):\n");
    core::BitDecodingConfig cfg;
    core::HeadDecoder dec(64, cfg);
    Rng rng(7);
    Tensor<Half> k({256, 64}), v({256, 64});
    for (std::size_t i = 0; i < k.numel(); i++) {
        k[i] = Half(rng.normal());
        v[i] = Half(rng.normal());
    }
    dec.prefill(k, v);
    // The registry-resolved fused backend computes the same step fast.
    const backend::AttentionBackend& fused_be =
        backend::BackendRegistry::instance().resolve("fused-packed");
    for (int step = 0; step < 5; step++) {
        Tensor<Half> q({4, 64});
        for (std::size_t i = 0; i < q.numel(); i++)
            q[i] = Half(rng.normal());
        const auto out = dec.decodeStep(q, 0.125f);
        backend::DecodeBatch fb;
        fb.scale = 0.125f;
        fb.items.push_back(backend::packedItem(q, dec.cache()));
        const auto fused = fused_be.decodeStep(fb)[0];
        std::vector<Half> nk(64), nv(64);
        for (int c = 0; c < 64; c++) {
            nk[static_cast<std::size_t>(c)] = Half(rng.normal());
            nv[static_cast<std::size_t>(c)] = Half(rng.normal());
        }
        dec.appendToken(nk, nv);
        std::printf("  step %d: ctx=%d tokens (%d packed, %d residual), "
                    "out[0][0]=%+.4f (fused %+.4f), valid=%s\n",
                    step, dec.cache().length(), dec.cache().packedTokens(),
                    dec.cache().residualLength(), out.out.at(0, 0),
                    fused.at(0, 0), out.valid ? "yes" : "no");
    }
    return 0;
}
