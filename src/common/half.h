/**
 * @file
 * Software IEEE-754 binary16 ("half") arithmetic.
 *
 * The GPU kernels this library models operate on FP16 registers; every
 * functional data path therefore stores values as Half so that rounding,
 * packing and bit-level tricks behave exactly as they would on device.
 * Conversions implement round-to-nearest-even, matching CUDA's
 * __float2half_rn / __half2float pair.
 */
#ifndef BITDEC_COMMON_HALF_H
#define BITDEC_COMMON_HALF_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace bitdec {

class Half;

/** Converts a float to IEEE binary16 bits with round-to-nearest-even. */
std::uint16_t floatToHalfBits(float f);

/** Converts IEEE binary16 bits to float (exact). */
float halfBitsToFloat(std::uint16_t bits);

/**
 * 65536-entry binary16-bits -> float conversion table, built once on first
 * use. Every bulk conversion and every Half::toFloat() resolves through it,
 * turning the widening conversion into a single indexed load — the CPU
 * analogue of the device's free register-level H2F.
 */
const float* halfToFloatLut();

/**
 * Bulk widening conversion of @p n halves to floats via the LUT. The table
 * pointer is hoisted out of the loop, so this is the preferred form for
 * every tile/row conversion on the hot path.
 */
void toFloat(const Half* src, float* dst, std::size_t n);

/** Bulk narrowing conversion (round-to-nearest-even) of @p n floats. */
void fromFloat(const float* src, Half* dst, std::size_t n);

/**
 * Rounds a float through binary16 and back (the precision a device-side
 * half register imposes); LUT-backed on the widening leg.
 */
float roundToHalf(float x);

/**
 * IEEE-754 binary16 value with explicit bit-level storage.
 *
 * Arithmetic promotes to float and rounds back, which is how FP16 CUDA-core
 * instructions behave for the operations used in this library.
 */
class Half
{
  public:
    /** Zero-initialized half. */
    constexpr Half() : bits_(0) {}

    /** Converting constructor from float (round-to-nearest-even). */
    explicit Half(float f) : bits_(floatToHalfBits(f)) {}

    /** Builds a Half from raw storage bits. */
    static constexpr Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    /** Raw binary16 storage bits. */
    constexpr std::uint16_t bits() const { return bits_; }

    /** Exact widening conversion to float. */
    float toFloat() const { return halfBitsToFloat(bits_); }

    /** Implicit use in float expressions mirrors device promotion rules. */
    operator float() const { return toFloat(); }

    /** True when the value is NaN. */
    bool isNan() const;

    /** True when the value is +/- infinity. */
    bool isInf() const;

    Half& operator+=(Half other);
    Half& operator-=(Half other);
    Half& operator*=(Half other);
    Half& operator/=(Half other);

  private:
    std::uint16_t bits_;
};

inline Half
operator+(Half a, Half b)
{
    return Half(a.toFloat() + b.toFloat());
}

inline Half
operator-(Half a, Half b)
{
    return Half(a.toFloat() - b.toFloat());
}

inline Half
operator*(Half a, Half b)
{
    return Half(a.toFloat() * b.toFloat());
}

inline Half
operator/(Half a, Half b)
{
    return Half(a.toFloat() / b.toFloat());
}

inline Half
operator-(Half a)
{
    return Half::fromBits(static_cast<std::uint16_t>(a.bits() ^ 0x8000u));
}

/** Bit-pattern equality; NaN compares unequal to everything. */
bool operator==(Half a, Half b);
bool operator!=(Half a, Half b);
bool operator<(Half a, Half b);
bool operator<=(Half a, Half b);
bool operator>(Half a, Half b);
bool operator>=(Half a, Half b);

std::ostream& operator<<(std::ostream& os, Half h);

/**
 * Pair of halves packed into 32 bits, mirroring CUDA's half2.
 *
 * BitDecoding stores quantization parameters (scale, zero-point) as half2 so
 * both load in one instruction; the functional model keeps that layout.
 */
struct Half2
{
    Half x; //!< low 16 bits (scale in quantization metadata)
    Half y; //!< high 16 bits (zero-point in quantization metadata)

    Half2() = default;
    Half2(Half x_val, Half y_val) : x(x_val), y(y_val) {}

    /** Packs into one 32-bit word (x in the low half, like the device). */
    std::uint32_t
    toWord() const
    {
        return static_cast<std::uint32_t>(x.bits()) |
               (static_cast<std::uint32_t>(y.bits()) << 16);
    }

    /** Unpacks from one 32-bit word. */
    static Half2
    fromWord(std::uint32_t w)
    {
        return {Half::fromBits(static_cast<std::uint16_t>(w & 0xFFFFu)),
                Half::fromBits(static_cast<std::uint16_t>(w >> 16))};
    }
};

} // namespace bitdec

#endif // BITDEC_COMMON_HALF_H
