/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() terminates on user error (bad
 * configuration, invalid arguments), panic() aborts on internal invariant
 * violations (library bugs), warn()/inform() report without stopping.
 */
#ifndef BITDEC_COMMON_LOGGING_H
#define BITDEC_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace bitdec {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/** Sets the global log level (default: Warn). */
void setLogLevel(LogLevel level);

/** Returns the current global log level. */
LogLevel logLevel();

namespace detail {

/** Emits one formatted log record to stderr. */
void emitLog(LogLevel level, const std::string& tag, const std::string& msg);

/** Terminates the process after reporting a user-caused fatal error. */
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);

/** Aborts the process after reporting an internal invariant violation. */
[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);

/** Builds a string from stream-style arguments. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Reports normal operating status (no connotation of a problem). */
template <typename... Args>
void
inform(Args&&... args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emitLog(LogLevel::Info, "info", detail::concat(args...));
}

/** Reports a condition that may work but deserves user attention. */
template <typename... Args>
void
warn(Args&&... args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emitLog(LogLevel::Warn, "warn", detail::concat(args...));
}

} // namespace bitdec

/** Terminates with an error message; use for user-caused conditions. */
#define BITDEC_FATAL(...) \
    ::bitdec::detail::fatalImpl(__FILE__, __LINE__, \
                                ::bitdec::detail::concat(__VA_ARGS__))

/** Aborts with an error message; use for internal invariant violations. */
#define BITDEC_PANIC(...) \
    ::bitdec::detail::panicImpl(__FILE__, __LINE__, \
                                ::bitdec::detail::concat(__VA_ARGS__))

/** Panics when an internal invariant does not hold. */
#define BITDEC_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            BITDEC_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // BITDEC_COMMON_LOGGING_H
