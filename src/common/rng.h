/**
 * @file
 * Deterministic random number generation for tests, benches and workloads.
 *
 * A single seeded xoshiro256** generator keeps every experiment reproducible
 * across runs and platforms (std::mt19937 distributions are not guaranteed
 * to be portable; we implement our own transforms).
 */
#ifndef BITDEC_COMMON_RNG_H
#define BITDEC_COMMON_RNG_H

#include <cstdint>

namespace bitdec {

/** xoshiro256** pseudo-random generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform float in [lo, hi). */
    float uniformRange(float lo, float hi);

    /** Uniform integer in [0, n) for n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (deterministic pairing). */
    float normal();

    /** Normal with the given mean and standard deviation. */
    float normal(float mean, float stddev);

  private:
    std::uint64_t state_[4];
    bool has_cached_normal_;
    float cached_normal_;
};

} // namespace bitdec

#endif // BITDEC_COMMON_RNG_H
