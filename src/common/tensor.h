/**
 * @file
 * Minimal dense row-major tensor used by the functional kernels.
 *
 * Shapes are dynamic (up to 4 dimensions); storage is a contiguous
 * std::vector. The class intentionally stays small: kernels in this library
 * index explicitly, mirroring how device code addresses global memory.
 */
#ifndef BITDEC_COMMON_TENSOR_H
#define BITDEC_COMMON_TENSOR_H

#include <array>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "common/logging.h"

namespace bitdec {

/**
 * Dense row-major tensor of up to four dimensions.
 *
 * @tparam T element type (float, Half, integer words, ...).
 */
template <typename T>
class Tensor
{
  public:
    static constexpr int kMaxRank = 4;

    /** Empty tensor (rank 0, no storage). */
    Tensor() : rank_(0), dims_{0, 0, 0, 0} {}

    /** Allocates a tensor of the given shape, value-initialized. */
    explicit Tensor(std::initializer_list<std::size_t> shape)
    {
        reset(std::vector<std::size_t>(shape));
    }

    /** Allocates a tensor of the given shape, value-initialized. */
    explicit Tensor(const std::vector<std::size_t>& shape) { reset(shape); }

    /** Re-allocates to a new shape; contents are value-initialized. */
    void
    reset(const std::vector<std::size_t>& shape)
    {
        BITDEC_ASSERT(shape.size() >= 1 &&
                      shape.size() <= static_cast<std::size_t>(kMaxRank),
                      "tensor rank out of range");
        rank_ = static_cast<int>(shape.size());
        dims_ = {1, 1, 1, 1};
        for (int i = 0; i < rank_; i++)
            dims_[i] = shape[static_cast<std::size_t>(i)];
        strides_ = {1, 1, 1, 1};
        for (int i = rank_ - 2; i >= 0; i--)
            strides_[i] = strides_[i + 1] * dims_[i + 1];
        data_.assign(numel(), T{});
    }

    /** Number of dimensions. */
    int rank() const { return rank_; }

    /** Extent of dimension @p i. */
    std::size_t dim(int i) const { return dims_[static_cast<std::size_t>(i)]; }

    /** Total number of elements. */
    std::size_t
    numel() const
    {
        if (rank_ == 0)
            return 0;
        std::size_t n = 1;
        for (int i = 0; i < rank_; i++)
            n *= dims_[static_cast<std::size_t>(i)];
        return n;
    }

    /** Raw storage access. */
    T* data() { return data_.data(); }
    const T* data() const { return data_.data(); }

    /** Flat element access. */
    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }

    /** 1-D indexed access. */
    T& at(std::size_t i0) { return data_[offset(i0)]; }
    const T& at(std::size_t i0) const { return data_[offset(i0)]; }

    /** 2-D indexed access. */
    T& at(std::size_t i0, std::size_t i1) { return data_[offset(i0, i1)]; }
    const T&
    at(std::size_t i0, std::size_t i1) const
    {
        return data_[offset(i0, i1)];
    }

    /** 3-D indexed access. */
    T&
    at(std::size_t i0, std::size_t i1, std::size_t i2)
    {
        return data_[offset(i0, i1, i2)];
    }
    const T&
    at(std::size_t i0, std::size_t i1, std::size_t i2) const
    {
        return data_[offset(i0, i1, i2)];
    }

    /** 4-D indexed access. */
    T&
    at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3)
    {
        return data_[offset(i0, i1, i2, i3)];
    }
    const T&
    at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const
    {
        return data_[offset(i0, i1, i2, i3)];
    }

    /** Fills every element with @p value. */
    void
    fill(const T& value)
    {
        for (auto& v : data_)
            v = value;
    }

  private:
    std::size_t
    offset(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0,
           std::size_t i3 = 0) const
    {
        BITDEC_ASSERT(i0 < dims_[0] && i1 < dims_[1] && i2 < dims_[2] &&
                      i3 < dims_[3],
                      "tensor index out of bounds");
        return i0 * strides_[0] + i1 * strides_[1] + i2 * strides_[2] +
               i3 * strides_[3];
    }

    int rank_;
    std::array<std::size_t, kMaxRank> dims_;
    std::array<std::size_t, kMaxRank> strides_;
    std::vector<T> data_;
};

} // namespace bitdec

#endif // BITDEC_COMMON_TENSOR_H
