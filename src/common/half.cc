#include "common/half.h"

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <ostream>

namespace bitdec {

std::uint16_t
floatToHalfBits(float f)
{
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    const std::int32_t exponent =
        static_cast<std::int32_t>((x >> 23) & 0xFF) - 127 + 15;
    std::uint32_t mantissa = x & 0x7FFFFFu;

    if (((x >> 23) & 0xFF) == 0xFF) {
        // Inf / NaN: keep a non-zero mantissa bit for NaN.
        return static_cast<std::uint16_t>(
            sign | 0x7C00u | (mantissa ? 0x200u | (mantissa >> 13) : 0));
    }
    if (exponent >= 0x1F) {
        // Overflow to infinity.
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    if (exponent <= 0) {
        if (exponent < -10) {
            // Underflows to signed zero even after rounding.
            return static_cast<std::uint16_t>(sign);
        }
        // Subnormal: shift in the implicit leading one, then round to
        // nearest even at the appropriate bit position.
        mantissa |= 0x800000u;
        const int shift = 14 - exponent; // 14..24
        const std::uint32_t q = mantissa >> shift;
        const std::uint32_t rem = mantissa & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        std::uint32_t result = q;
        if (rem > halfway || (rem == halfway && (q & 1)))
            result += 1;
        return static_cast<std::uint16_t>(sign | result);
    }

    // Normal range: round mantissa from 23 to 10 bits, to nearest even.
    std::uint32_t result =
        sign | (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
    const std::uint32_t rem = mantissa & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (result & 1)))
        result += 1; // May carry into the exponent; that is correct rounding.
    return static_cast<std::uint16_t>(result);
}

namespace {

/** Bit-level binary16 -> float conversion; used to build the LUT. */
float
computeHalfBitsToFloat(std::uint16_t bits)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
    const std::uint32_t exponent = (bits >> 10) & 0x1F;
    const std::uint32_t mantissa = bits & 0x3FFu;

    std::uint32_t out;
    if (exponent == 0) {
        if (mantissa == 0) {
            out = sign; // signed zero
        } else {
            // Subnormal: normalize into the float format.
            int e = -1;
            std::uint32_t m = mantissa;
            do {
                e++;
                m <<= 1;
            } while ((m & 0x400u) == 0);
            out = sign | ((127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
        }
    } else if (exponent == 0x1F) {
        out = sign | 0x7F800000u | (mantissa << 13); // inf / NaN
    } else {
        out = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
    }
    return std::bit_cast<float>(out);
}

} // namespace

const float*
halfToFloatLut()
{
    // Function-local static: thread-safe, immune to static-init ordering.
    static const std::array<float, 65536> table = [] {
        std::array<float, 65536> t;
        for (std::uint32_t b = 0; b < 65536; b++)
            t[b] = computeHalfBitsToFloat(static_cast<std::uint16_t>(b));
        return t;
    }();
    return table.data();
}

float
halfBitsToFloat(std::uint16_t bits)
{
    return halfToFloatLut()[bits];
}

void
toFloat(const Half* src, float* dst, std::size_t n)
{
    const float* lut = halfToFloatLut();
    for (std::size_t i = 0; i < n; i++)
        dst[i] = lut[src[i].bits()];
}

void
fromFloat(const float* src, Half* dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++)
        dst[i] = Half::fromBits(floatToHalfBits(src[i]));
}

float
roundToHalf(float x)
{
    return halfToFloatLut()[floatToHalfBits(x)];
}

bool
Half::isNan() const
{
    return ((bits_ & 0x7C00u) == 0x7C00u) && (bits_ & 0x3FFu);
}

bool
Half::isInf() const
{
    return (bits_ & 0x7FFFu) == 0x7C00u;
}

Half&
Half::operator+=(Half other)
{
    *this = *this + other;
    return *this;
}

Half&
Half::operator-=(Half other)
{
    *this = *this - other;
    return *this;
}

Half&
Half::operator*=(Half other)
{
    *this = *this * other;
    return *this;
}

Half&
Half::operator/=(Half other)
{
    *this = *this / other;
    return *this;
}

bool
operator==(Half a, Half b)
{
    if (a.isNan() || b.isNan())
        return false;
    // +0 == -0.
    if (((a.bits() | b.bits()) & 0x7FFFu) == 0)
        return true;
    return a.bits() == b.bits();
}

bool
operator!=(Half a, Half b)
{
    return !(a == b);
}

bool
operator<(Half a, Half b)
{
    return a.toFloat() < b.toFloat();
}

bool
operator<=(Half a, Half b)
{
    return a.toFloat() <= b.toFloat();
}

bool
operator>(Half a, Half b)
{
    return a.toFloat() > b.toFloat();
}

bool
operator>=(Half a, Half b)
{
    return a.toFloat() >= b.toFloat();
}

std::ostream&
operator<<(std::ostream& os, Half h)
{
    return os << h.toFloat();
}

} // namespace bitdec
