#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bitdec {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::Warn};

} // namespace

void
setLogLevel(LogLevel level)
{
    g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_log_level.load(std::memory_order_relaxed);
}

namespace detail {

void
emitLog(LogLevel, const std::string& tag, const std::string& msg)
{
    std::fprintf(stderr, "[bitdec:%s] %s\n", tag.c_str(), msg.c_str());
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[bitdec:fatal] %s (%s:%d)\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[bitdec:panic] %s (%s:%d)\n", msg.c_str(), file,
                 line);
    std::abort();
}

} // namespace detail

} // namespace bitdec
