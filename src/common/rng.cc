#include "common/rng.h"

#include <cmath>

namespace bitdec {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : has_cached_normal_(false), cached_normal_(0.f)
{
    std::uint64_t s = seed;
    for (auto& w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::uniformRange(float lo, float hi)
{
    return lo + static_cast<float>(uniform()) * (hi - lo);
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = n * ((~0ull) / n);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

float
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-12);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = static_cast<float>(r * std::sin(theta));
    has_cached_normal_ = true;
    return static_cast<float>(r * std::cos(theta));
}

float
Rng::normal(float mean, float stddev)
{
    return mean + stddev * normal();
}

} // namespace bitdec
