#include "quant/fast_dequant.h"

#include "common/logging.h"
#include "gpusim/bitops.h"

namespace bitdec::quant {

namespace {

/** Pair mask: one code in each 16-bit lane. */
std::uint32_t
pairMask(int bits)
{
    const std::uint32_t m = (1u << bits) - 1u;
    return m | (m << 16);
}

} // namespace

std::uint32_t
extractMagicPair(std::uint32_t word, int j, int bits)
{
    BITDEC_ASSERT(bits == 2 || bits == 4,
                  "lop3 fast path supports 2- and 4-bit codes");
    const int pairs = codesPerWord(bits) / 2;
    BITDEC_ASSERT(j >= 0 && j < pairs, "pair index out of range");
    const std::uint32_t shifted = word >> (bits * j);
    // Single lop3: (shifted & mask) | magic.
    return sim::lop3(shifted, pairMask(bits), kMagic1024x2, sim::kLutAndOr);
}

void
fastDequantWord(std::uint32_t word, int bits, const QuantParams& p, Half* out)
{
    const int n = codesPerWord(bits);
    const float s = p.scale.toFloat();
    // Folded constant: -(1024 + zero) * scale. On device this lives in a
    // half2 register; we round identically.
    const Half neg_bias(-(1024.0f + p.zero.toFloat()) * s);

    for (int j = 0; j < n / 2; j++) {
        const std::uint32_t h2 = extractMagicPair(word, j, bits);
        const Half lo = Half::fromBits(static_cast<std::uint16_t>(h2 & 0xFFFF));
        const Half hi = Half::fromBits(static_cast<std::uint16_t>(h2 >> 16));
        // One half2 FMA: y = magic_val * s + neg_bias.
        out[2 * j] = Half(lo.toFloat() * s + neg_bias.toFloat());
        out[2 * j + 1] = Half(hi.toFloat() * s + neg_bias.toFloat());
    }
}

float
dequantMagicValue(std::uint8_t code, const QuantParams& p)
{
    const float s = p.scale.toFloat();
    const Half neg_bias(-(1024.0f + p.zero.toFloat()) * s);
    const float magic_val = 1024.0f + static_cast<float>(code);
    return Half(magic_val * s + neg_bias.toFloat()).toFloat();
}

void
referenceDequantWord(std::uint32_t word, int bits, PackOrder order,
                     const QuantParams& p, Half* out)
{
    const int n = codesPerWord(bits);
    std::uint8_t codes[16];
    unpackWord(word, bits, order, codes);
    const float s = p.scale.toFloat();
    const Half neg_bias(-(1024.0f + p.zero.toFloat()) * s);
    for (int i = 0; i < n; i++) {
        // Same arithmetic as the fast path so results agree bit-for-bit:
        // (1024 + q) * s + neg_bias.
        const float magic_val = 1024.0f + static_cast<float>(codes[i]);
        out[i] = Half(magic_val * s + neg_bias.toFloat());
    }
}

DequantCost
dequantWordCost(int bits, bool fast_path)
{
    const int n = codesPerWord(bits);
    if (fast_path) {
        // Per pair: one shift (folded), one lop3, one half2 FMA.
        // Counted per word: n/2 lop3 (alu), n/2 shifts (alu), n/2 half2
        // FMAs = n/2 fma slots.
        return {static_cast<double>(n), static_cast<double>(n) / 2.0};
    }
    // cvt path: per code one shift+mask (2 alu), one I2F convert (~2 slots,
    // alu), one FMA for scale/zero.
    return {static_cast<double>(4 * n), static_cast<double>(n)};
}

} // namespace bitdec::quant
