/**
 * @file
 * Quantization parameter types shared by all low-bit KV-cache code.
 */
#ifndef BITDEC_QUANT_QUANT_PARAMS_H
#define BITDEC_QUANT_QUANT_PARAMS_H

#include <cstdint>
#include <string>

#include "common/half.h"

namespace bitdec::quant {

/**
 * Scaling granularity for the Key tensor, following the paper's taxonomy:
 * tensor-wise groups run along the hidden dimension (KVQuant/Atom style),
 * channel-wise groups run along the sequence dimension (KIVI/GEAR style).
 */
enum class Granularity
{
    TensorWise,  //!< scale per (token, hidden-dim group) — "KT"
    ChannelWise, //!< scale per (token group, channel)    — "KC"
};

/** Returns the paper's short code for a granularity ("KT" / "KC"). */
const char* granularityCode(Granularity g);

/**
 * Asymmetric uniform quantization parameters for one group.
 *
 * Stored as half precision because the kernels keep (scale, zero) packed in
 * one half2 register so a single 32-bit load fetches both (Section V-B).
 */
struct QuantParams
{
    Half scale; //!< step size
    Half zero;  //!< zero-point, in quantized-integer units

    /** Packs as half2 exactly like the device metadata buffers. */
    Half2 asHalf2() const { return {scale, zero}; }

    /** Unpacks from the half2 metadata representation. */
    static QuantParams
    fromHalf2(Half2 h)
    {
        return {h.x, h.y};
    }
};

/** Full low-bit KV-cache quantization configuration. */
struct QuantConfig
{
    int bits = 4;                                  //!< 2, 4 or 8
    Granularity key_granularity = Granularity::ChannelWise;
    int group_size = 32;                           //!< elements per group

    /** Packing ratio R = word bits / element bits for INT16 words. */
    int packingRatio() const { return 16 / bits; }

    /** Number of quantization levels. */
    int levels() const { return 1 << bits; }

    /** Paper-style label, e.g. "KC-4" or "KT-2". */
    std::string label() const;
};

} // namespace bitdec::quant

#endif // BITDEC_QUANT_QUANT_PARAMS_H
