/**
 * @file
 * Low-bit packing into 32-bit register words.
 *
 * The KV cache stores packed INT16 words (word size omega = 16, packing
 * ratio R = 16/beta); the device always manipulates them as 32-bit
 * registers holding 32/beta codes. Two packing orders are modeled:
 *
 *  - Linear: code i sits in bit-field i. This is what a naive "pack
 *    consecutive values" quantizer produces (Fig. 3b) and what the
 *    continuous-packing ablation baseline uses.
 *  - Interleaved ("75316420"): even codes fill the low 16-bit lane's
 *    fields, odd codes the high lane's, so that each lop3 extraction step
 *    yields one half2 of *consecutive* logical values. Reading the int4
 *    nibble indices from MSB to LSB spells 7-5-3-1-6-4-2-0, the pattern
 *    named in Section IV-A(3).
 */
#ifndef BITDEC_QUANT_PACKING_H
#define BITDEC_QUANT_PACKING_H

#include <cstdint>
#include <vector>

namespace bitdec::quant {

/** Packing orders for codes inside a 32-bit register word. */
enum class PackOrder
{
    Linear,      //!< code i in field i (naive packing)
    Interleaved, //!< 75316420-style lop3-friendly ordering
};

/** Number of codes a 32-bit register holds at @p bits per code. */
constexpr int
codesPerWord(int bits)
{
    return 32 / bits;
}

/**
 * Field index (position inside the 32-bit word, in units of @p bits)
 * where logical code @p i lands under @p order.
 */
int packFieldIndex(int i, int bits, PackOrder order);

/**
 * Packs codesPerWord(bits) codes into one 32-bit word.
 *
 * @param codes logical values in order; each must fit in @p bits
 */
std::uint32_t packWord(const std::uint8_t* codes, int bits, PackOrder order);

/** Unpacks a 32-bit word back into logical code order. */
void unpackWord(std::uint32_t word, int bits, PackOrder order,
                std::uint8_t* codes_out);

/**
 * Packs a flat code stream into 32-bit words; the stream length must be a
 * multiple of codesPerWord(bits).
 */
std::vector<std::uint32_t> packStream(const std::vector<std::uint8_t>& codes,
                                      int bits, PackOrder order);

/** Unpacks a word stream back into codes. */
std::vector<std::uint8_t> unpackStream(const std::vector<std::uint32_t>& words,
                                       int bits, PackOrder order);

} // namespace bitdec::quant

#endif // BITDEC_QUANT_PACKING_H
