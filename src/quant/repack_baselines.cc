#include "quant/repack_baselines.h"

#include <algorithm>

#include "common/logging.h"
#include "gpusim/timing.h"
#include "quant/packing.h"

namespace bitdec::quant {

namespace {

constexpr int kTileRows = 16;
constexpr int kTileCols = 64;

/** Marlin's intra-tile permutation: interleave rows by quads. */
std::size_t
permutedIndex(std::size_t r, std::size_t c)
{
    // Row quads interleave (0,4,8,12,1,5,...) and columns pair-swap so a
    // thread's consecutive loads feed alternate fragments.
    const std::size_t rp = (r % 4) * 4 + r / 4;
    const std::size_t cp = (c % 2) * (kTileCols / 2) + c / 2;
    return rp * kTileCols + cp;
}

} // namespace

std::vector<std::uint32_t>
marlinRepack(const Tensor<std::uint8_t>& codes, int bits)
{
    BITDEC_ASSERT(codes.rank() == 2, "repack expects a 2-D code matrix");
    const std::size_t rows = codes.dim(0);
    const std::size_t cols = codes.dim(1);
    BITDEC_ASSERT(rows % kTileRows == 0 && cols % kTileCols == 0,
                  "matrix must tile by 16x64");
    const int per_word = codesPerWord(bits);

    std::vector<std::uint8_t> stream;
    stream.reserve(rows * cols);
    for (std::size_t tr = 0; tr < rows / kTileRows; tr++) {
        for (std::size_t tc = 0; tc < cols / kTileCols; tc++) {
            std::vector<std::uint8_t> tile(kTileRows * kTileCols);
            for (std::size_t r = 0; r < kTileRows; r++) {
                for (std::size_t c = 0; c < kTileCols; c++) {
                    tile[permutedIndex(r, c)] =
                        codes.at(tr * kTileRows + r, tc * kTileCols + c);
                }
            }
            stream.insert(stream.end(), tile.begin(), tile.end());
        }
    }
    BITDEC_ASSERT(stream.size() % static_cast<std::size_t>(per_word) == 0,
                  "tile size must fill whole words");
    return packStream(stream, bits, PackOrder::Linear);
}

Tensor<std::uint8_t>
marlinUnpack(const std::vector<std::uint32_t>& words, int bits,
             std::size_t rows, std::size_t cols)
{
    const std::vector<std::uint8_t> stream =
        unpackStream(words, bits, PackOrder::Linear);
    BITDEC_ASSERT(stream.size() == rows * cols, "word count mismatch");
    Tensor<std::uint8_t> codes({rows, cols});
    std::size_t base = 0;
    for (std::size_t tr = 0; tr < rows / kTileRows; tr++) {
        for (std::size_t tc = 0; tc < cols / kTileCols; tc++) {
            for (std::size_t r = 0; r < kTileRows; r++) {
                for (std::size_t c = 0; c < kTileCols; c++) {
                    codes.at(tr * kTileRows + r, tc * kTileCols + c) =
                        stream[base + permutedIndex(r, c)];
                }
            }
            base += kTileRows * kTileCols;
        }
    }
    return codes;
}

double
quantPackLatencyMs(const sim::GpuArch& arch, RepackSystem system, bool prefill,
                   int seq_len, int heads, int head_dim, int bits)
{
    const double elems =
        2.0 * static_cast<double>(seq_len) * heads * head_dim; // K and V
    const double fp16_bytes = elems * 2.0;
    const double packed_bytes = elems * bits / 8.0;

    std::vector<sim::KernelWorkload> seq;
    switch (system) {
      case RepackSystem::Marlin: {
        // Quantize pass, then the tile-permutation repack whose strided
        // gathers defeat coalescing (Marlin's permute is designed for an
        // offline, one-time weight conversion).
        sim::KernelWorkload quantize;
        quantize.label = "marlin-quantize";
        quantize.dram_read_bytes = prefill ? fp16_bytes : fp16_bytes;
        quantize.dram_write_bytes = packed_bytes;
        quantize.cuda.alu = elems * 3.0;
        quantize.cuda.fma = elems;
        quantize.ctas = arch.num_sms * 4;
        seq.push_back(quantize);

        sim::KernelWorkload repack;
        repack.label = "marlin-repack";
        // Scattered 8-bit accesses: ~1/32 of a coalesced transaction is
        // useful, so charge 32x the packed bytes.
        repack.dram_read_bytes = packed_bytes * 32.0;
        repack.dram_write_bytes = packed_bytes * 32.0;
        repack.cuda.alu = elems * 6.0; // index arithmetic of the permute
        repack.ctas = arch.num_sms * 4;
        seq.push_back(repack);
        if (!prefill) {
            // A decode step rewrites the 16-row tile panel the new token
            // lands in, but the kernel relaunches over the whole tensor to
            // keep the layout consistent.
            seq[0].dram_read_bytes /= 64.0;
            seq[0].dram_write_bytes /= 64.0;
            seq[0].cuda.alu /= 64.0;
            seq[0].cuda.fma /= 64.0;
            seq[1].dram_read_bytes /= 256.0;
            seq[1].dram_write_bytes /= 256.0;
            seq[1].cuda.alu /= 256.0;
        }
        break;
      }
      case RepackSystem::Ladder: {
        // Ladder's searched transform runs as two coalesced tiling passes.
        for (int pass = 0; pass < 2; pass++) {
            sim::KernelWorkload wl;
            wl.label = pass == 0 ? "ladder-quantize" : "ladder-transform";
            wl.dram_read_bytes = pass == 0 ? fp16_bytes : packed_bytes * 2.0;
            wl.dram_write_bytes = packed_bytes * (pass == 0 ? 1.0 : 2.0);
            wl.cuda.alu = elems * (pass == 0 ? 3.0 : 4.0);
            wl.cuda.fma = pass == 0 ? elems : 0.0;
            wl.ctas = arch.num_sms * 2;
            if (!prefill) {
                // Decode transforms the trailing block only, but pays both
                // launches plus a tail of strided fix-ups.
                wl.dram_read_bytes /= 128.0;
                wl.dram_write_bytes /= 128.0;
                wl.cuda.alu /= 128.0;
                wl.cuda.fma /= 128.0;
            }
            seq.push_back(wl);
        }
        break;
      }
      case RepackSystem::BitDecoding: {
        // Fused into the attention kernels: the only standalone cost is
        // the Residual Kernel's quantize+pack of completed blocks.
        sim::KernelWorkload wl;
        wl.label = "bitdecoding-fused-pack";
        const double block_elems =
            prefill ? elems : 2.0 * 128.0 * heads * head_dim / 128.0;
        wl.dram_read_bytes = prefill ? fp16_bytes : block_elems * 2.0;
        wl.dram_write_bytes =
            prefill ? packed_bytes : block_elems * bits / 8.0;
        wl.cuda.alu = (prefill ? elems : block_elems) * 2.0;
        wl.cuda.fma = prefill ? elems : block_elems;
        wl.ctas = arch.num_sms * 4;
        seq.push_back(wl);
        break;
      }
    }
    return resolveSequence(arch, seq).total_s * 1e3;
}

} // namespace bitdec::quant
