/**
 * @file
 * Fast low-bit -> FP16 dequantization using the lop3 magic-number trick.
 *
 * Naively converting INT4/INT2 codes with static_cast (cvt instructions)
 * is slow; the trick (Kim et al., adopted by Marlin/Ladder and BitDecoding)
 * masks each code into the mantissa of the FP16 constant 1024.0 so that the
 * bit pattern 0x6400 | code *is* the half value (1024 + code). One lop3
 * per pair replaces the convert, and scale/zero fold into a single FMA:
 *
 *     y = (1024 + q) * s - (1024 + z) * s  =  s * (q - z)
 *
 * This only works when packing is interleaved (quant::PackOrder::Interleaved)
 * so that each shift+lop3 extracts a half2 of consecutive logical values —
 * which is exactly why BitDecoding's induced layout stores codes in the
 * 75316420 pattern.
 */
#ifndef BITDEC_QUANT_FAST_DEQUANT_H
#define BITDEC_QUANT_FAST_DEQUANT_H

#include <cstdint>

#include "common/half.h"
#include "quant/packing.h"
#include "quant/quant_params.h"

namespace bitdec::quant {

/** FP16 magic constant 1024.0 replicated in both half2 lanes. */
constexpr std::uint32_t kMagic1024x2 = 0x64006400u;

/**
 * Extracts pair @p j of an interleaved word as magic-biased halves.
 *
 * Emulates exactly: lop3(word >> (bits*j), pair_mask, 0x64006400, (a&b)|c).
 * The result's low half lane is (1024 + code_{2j}), the high lane
 * (1024 + code_{2j+1}).
 *
 * @param word interleaved packed register
 * @param j    pair index in [0, codesPerWord(bits)/2)
 * @param bits code width (2 or 4)
 */
std::uint32_t extractMagicPair(std::uint32_t word, int j, int bits);

/**
 * Dequantizes a full interleaved word into logical order via the lop3 path.
 *
 * @param word packed register (PackOrder::Interleaved)
 * @param bits code width (2 or 4)
 * @param p    group quantization parameters
 * @param out  receives codesPerWord(bits) half values
 */
void fastDequantWord(std::uint32_t word, int bits, const QuantParams& p,
                     Half* out);

/**
 * Dequantizes one code with the magic-folded arithmetic the fast path
 * uses: (1024 + q) * s + (-(1024 + z) * s). Differs from the plain
 * s * (q - z) by at most one rounding of the folded bias — exactly the
 * arithmetic deployed kernels produce.
 */
float dequantMagicValue(std::uint8_t code, const QuantParams& p);

/**
 * Reference dequantization: unpack codes (any order) and convert each with
 * the plain arithmetic path. Used to validate the fast path bit-for-bit.
 */
void referenceDequantWord(std::uint32_t word, int bits, PackOrder order,
                          const QuantParams& p, Half* out);

/**
 * CUDA-core cost of dequantizing one packed word, in scalar-op slots, for
 * the timing model.
 *
 * @param bits      code width
 * @param fast_path true for the lop3 path, false for cvt-based casting
 * @return {alu_ops, fma_ops}
 */
struct DequantCost
{
    double alu;
    double fma;
};
DequantCost dequantWordCost(int bits, bool fast_path);

} // namespace bitdec::quant

#endif // BITDEC_QUANT_FAST_DEQUANT_H
