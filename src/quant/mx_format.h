/**
 * @file
 * Micro-scaling (MX) floating-point formats for Blackwell's native
 * low-precision Tensor Cores: MXFP4 (E2M1 elements, E8M0 power-of-two
 * scale per 32 elements) and NVFP4 (E2M1 elements, E4M3 scale per 16
 * elements), per the OCP MX specification and NVIDIA's Blackwell ISA.
 */
#ifndef BITDEC_QUANT_MX_FORMAT_H
#define BITDEC_QUANT_MX_FORMAT_H

#include <cstdint>
#include <vector>

#include "common/half.h"
#include "common/tensor.h"

namespace bitdec::quant {

/** Decodes a 4-bit E2M1 code (sign, 2-bit exp, 1-bit mantissa). */
float e2m1Decode(std::uint8_t code);

/** Encodes a float to the nearest E2M1 code (ties to even mantissa). */
std::uint8_t e2m1Encode(float x);

/** Decodes an 8-bit E8M0 scale (2^(e-127); 0xFF is NaN -> returns NaN). */
float e8m0Decode(std::uint8_t bits);

/** Encodes the largest power of two <= |x| as E8M0 (clamped to range). */
std::uint8_t e8m0Encode(float x);

/** Decodes an 8-bit E4M3 value (bias 7, max 448, 0x7F/0xFF are NaN). */
float e4m3Decode(std::uint8_t bits);

/** Encodes a float to the nearest E4M3 value. */
std::uint8_t e4m3Encode(float x);

/** MX block-scaled format selector. */
enum class MxKind
{
    MXFP4, //!< E2M1 x 32, E8M0 scale
    NVFP4, //!< E2M1 x 16, E4M3 scale
};

/** Elements sharing one scale in the given format. */
constexpr int
mxBlockSize(MxKind kind)
{
    return kind == MxKind::MXFP4 ? 32 : 16;
}

/** A block-scaled low-precision vector. */
struct MxVector
{
    MxKind kind;
    std::vector<std::uint8_t> codes;  //!< one E2M1 code per element
    std::vector<std::uint8_t> scales; //!< one scale per block

    /** Decoded value of element @p i. */
    float valueAt(std::size_t i) const;

    /** Number of elements. */
    std::size_t size() const { return codes.size(); }
};

/**
 * Encodes a float vector into the block-scaled format. The length must be
 * a multiple of the block size. Scale selection follows the hardware rule:
 * MXFP4 uses 2^(floor(log2(amax)) - 2) so the largest magnitude maps into
 * E2M1's range; NVFP4 uses amax/6 rounded to E4M3.
 */
MxVector mxEncode(const std::vector<float>& x, MxKind kind);

/** Decodes back to floats. */
std::vector<float> mxDecode(const MxVector& v);

/**
 * Encodes a row-major matrix row-by-row (blocks run along columns, the K
 * dimension of the MMA, as the hardware requires).
 */
struct MxMatrix
{
    MxKind kind;
    std::size_t rows = 0;
    std::size_t cols = 0;
    Tensor<std::uint8_t> codes;  //!< [rows x cols]
    Tensor<std::uint8_t> scales; //!< [rows x cols/block]

    float valueAt(std::size_t r, std::size_t c) const;
};

/** Encodes a half matrix into MX format with blocks along rows. */
MxMatrix mxEncodeMatrix(const Tensor<Half>& x, MxKind kind);

/** Decodes an MX matrix back to half precision. */
Tensor<Half> mxDecodeMatrix(const MxMatrix& m);

} // namespace bitdec::quant

#endif // BITDEC_QUANT_MX_FORMAT_H
