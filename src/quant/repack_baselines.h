/**
 * @file
 * Static-weight repacking baselines (Marlin, Ladder) applied to the
 * dynamic KV cache, for the Table II comparison.
 *
 * Both systems make mixed-precision GEMMs fast by transforming the
 * quantized operand into a Tensor-Core-friendly layout in a separate
 * pass: affordable offline for static weights, but on a KV cache the
 * transform must rerun as the cache grows. BitDecoding's induced layout
 * removes the pass entirely.
 */
#ifndef BITDEC_QUANT_REPACK_BASELINES_H
#define BITDEC_QUANT_REPACK_BASELINES_H

#include <cstdint>
#include <vector>

#include "common/tensor.h"
#include "gpusim/arch.h"

namespace bitdec::quant {

/**
 * Marlin-style tile-interleaved repack of a code matrix: codes regroup
 * into 16x64 tiles with an interleaved permutation so each thread's
 * 128-bit load feeds its MMA fragments. Functional (and invertible —
 * tests rely on marlinUnpack reversing it).
 */
std::vector<std::uint32_t> marlinRepack(const Tensor<std::uint8_t>& codes,
                                        int bits);

/** Inverse of marlinRepack. */
Tensor<std::uint8_t> marlinUnpack(const std::vector<std::uint32_t>& words,
                                  int bits, std::size_t rows,
                                  std::size_t cols);

/** Which system performs the quantize+pack work (Table II rows). */
enum class RepackSystem { Marlin, Ladder, BitDecoding };

/**
 * Latency of quantization + packing (+ layout transformation) in
 * milliseconds.
 *
 * @param prefill  true for the prefill phase (whole context), false for
 *                 one decode step
 * @param seq_len  context length (tokens)
 * @param heads    KV heads
 * @param head_dim per-head hidden size
 * @param bits     target bit width
 */
double quantPackLatencyMs(const sim::GpuArch& arch, RepackSystem system,
                          bool prefill, int seq_len, int heads, int head_dim,
                          int bits);

} // namespace bitdec::quant

#endif // BITDEC_QUANT_REPACK_BASELINES_H
