#include "quant/packing.h"

#include "common/logging.h"

namespace bitdec::quant {

int
packFieldIndex(int i, int bits, PackOrder order)
{
    const int n = codesPerWord(bits);
    BITDEC_ASSERT(i >= 0 && i < n, "code index out of range");
    if (order == PackOrder::Linear)
        return i;
    // Interleaved: even logical codes occupy the fields of the low 16-bit
    // lane, odd codes the high lane, pairwise: code 2j -> field j,
    // code 2j+1 -> field j + n/2. A shift by j*bits then a 0x000F000F-style
    // mask extracts the half2 (code 2j, code 2j+1) in one lop3.
    const int half_fields = n / 2;
    if ((i & 1) == 0)
        return i / 2;
    return i / 2 + half_fields;
}

std::uint32_t
packWord(const std::uint8_t* codes, int bits, PackOrder order)
{
    const int n = codesPerWord(bits);
    const std::uint32_t mask = (bits == 32) ? ~0u : ((1u << bits) - 1u);
    std::uint32_t word = 0;
    for (int i = 0; i < n; i++) {
        const std::uint32_t c = codes[i] & mask;
        BITDEC_ASSERT(codes[i] == c, "code does not fit in ", bits, " bits");
        const int field = packFieldIndex(i, bits, order);
        word |= c << (field * bits);
    }
    return word;
}

void
unpackWord(std::uint32_t word, int bits, PackOrder order,
           std::uint8_t* codes_out)
{
    const int n = codesPerWord(bits);
    const std::uint32_t mask = (1u << bits) - 1u;
    for (int i = 0; i < n; i++) {
        const int field = packFieldIndex(i, bits, order);
        codes_out[i] =
            static_cast<std::uint8_t>((word >> (field * bits)) & mask);
    }
}

std::vector<std::uint32_t>
packStream(const std::vector<std::uint8_t>& codes, int bits, PackOrder order)
{
    const int n = codesPerWord(bits);
    BITDEC_ASSERT(codes.size() % static_cast<std::size_t>(n) == 0,
                  "code stream not a multiple of the word capacity");
    std::vector<std::uint32_t> words(codes.size() / static_cast<std::size_t>(n));
    for (std::size_t w = 0; w < words.size(); w++)
        words[w] = packWord(&codes[w * static_cast<std::size_t>(n)], bits,
                            order);
    return words;
}

std::vector<std::uint8_t>
unpackStream(const std::vector<std::uint32_t>& words, int bits, PackOrder order)
{
    const int n = codesPerWord(bits);
    std::vector<std::uint8_t> codes(words.size() * static_cast<std::size_t>(n));
    for (std::size_t w = 0; w < words.size(); w++)
        unpackWord(words[w], bits, order,
                   &codes[w * static_cast<std::size_t>(n)]);
    return codes;
}

} // namespace bitdec::quant
