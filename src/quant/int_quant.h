/**
 * @file
 * Asymmetric uniform integer quantization for FP16 tensors.
 *
 * Implements the math every modeled KV-cache quantizer shares:
 *   scale = (max - min) / (2^b - 1),  zero = round(-min / scale)
 *   q = clamp(round(x / scale) + zero, 0, 2^b - 1)
 *   x' = scale * (q - zero)
 * with parameters rounded to half precision exactly as the device stores
 * them (half2 metadata), so functional error matches the real system.
 */
#ifndef BITDEC_QUANT_INT_QUANT_H
#define BITDEC_QUANT_INT_QUANT_H

#include <cstdint>
#include <vector>

#include "common/tensor.h"
#include "quant/quant_params.h"

namespace bitdec::quant {

/** Derives quantization parameters from a group's min/max. */
QuantParams computeParams(float min_val, float max_val, int bits);

/** Quantizes one value; parameters are in half precision. */
std::uint8_t quantizeValue(float x, const QuantParams& p, int bits);

/** Dequantizes one value exactly as the device FMA does. */
float dequantizeValue(std::uint8_t q, const QuantParams& p);

/**
 * Group-quantized matrix: integer codes plus per-group half2 parameters.
 *
 * codes has the same shape as the source; params is indexed by
 * (group row, group col) according to the granularity that produced it.
 */
struct QuantizedMatrix
{
    Tensor<std::uint8_t> codes;  //!< one code per element (pre-packing)
    Tensor<Half2> params;        //!< per-group scale/zero metadata
    Granularity granularity;
    int bits = 4;
    int group_size = 32;

    /** Parameters of the group containing element (row, col). */
    QuantParams paramsFor(std::size_t row, std::size_t col) const;
};

/**
 * Quantizes a row-major [rows x cols] matrix with grouped scaling.
 *
 * TensorWise: groups of @p group_size consecutive elements along a row
 * (per-token groups along the hidden dimension).
 * ChannelWise: groups of @p group_size consecutive rows within a column
 * (per-channel groups along the sequence dimension).
 */
QuantizedMatrix quantizeMatrix(const Tensor<Half>& x, int bits,
                               Granularity granularity, int group_size);

/** Dequantizes back to half precision (reference path). */
Tensor<Half> dequantizeMatrix(const QuantizedMatrix& q);

/** Largest absolute dequantization error over all elements. */
float maxAbsError(const Tensor<Half>& x, const QuantizedMatrix& q);

} // namespace bitdec::quant

#endif // BITDEC_QUANT_INT_QUANT_H
