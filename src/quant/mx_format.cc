#include "quant/mx_format.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace bitdec::quant {

namespace {

/** The eight non-negative E2M1 magnitudes. */
constexpr float kE2m1Values[8] = {0.0f, 0.5f, 1.0f, 1.5f, 2.0f, 3.0f, 4.0f,
                                  6.0f};

} // namespace

float
e2m1Decode(std::uint8_t code)
{
    const float mag = kE2m1Values[code & 0x7];
    return (code & 0x8) ? -mag : mag;
}

std::uint8_t
e2m1Encode(float x)
{
    if (std::isnan(x))
        return 0x7; // saturate NaN to max magnitude, as the hardware does
    const std::uint8_t sign = std::signbit(x) ? 0x8 : 0x0;
    const float a = std::fabs(x);
    // Round to nearest value; ties go to the code with an even mantissa
    // bit, matching round-to-nearest-even on device.
    int best = 0;
    float best_err = std::numeric_limits<float>::infinity();
    for (int i = 0; i < 8; i++) {
        const float err = std::fabs(a - kE2m1Values[i]);
        if (err < best_err) {
            best = i;
            best_err = err;
        } else if (err == best_err && (i & 1) == 0 && (best & 1) == 1) {
            best = i;
        }
    }
    return sign | static_cast<std::uint8_t>(best);
}

float
e8m0Decode(std::uint8_t bits)
{
    if (bits == 0xFF)
        return std::numeric_limits<float>::quiet_NaN();
    return std::ldexp(1.0f, static_cast<int>(bits) - 127);
}

std::uint8_t
e8m0Encode(float x)
{
    if (x <= 0.f || !std::isfinite(x))
        return 127; // scale 1.0 for degenerate inputs
    int e = static_cast<int>(std::floor(std::log2(x)));
    e = std::clamp(e + 127, 0, 254);
    return static_cast<std::uint8_t>(e);
}

float
e4m3Decode(std::uint8_t bits)
{
    const int sign = (bits & 0x80) ? -1 : 1;
    const int exp = (bits >> 3) & 0xF;
    const int man = bits & 0x7;
    if (exp == 0xF && man == 0x7)
        return std::numeric_limits<float>::quiet_NaN();
    float v;
    if (exp == 0) {
        v = std::ldexp(static_cast<float>(man) / 8.0f, -6); // subnormal
    } else {
        v = std::ldexp(1.0f + static_cast<float>(man) / 8.0f, exp - 7);
    }
    return static_cast<float>(sign) * v;
}

std::uint8_t
e4m3Encode(float x)
{
    if (std::isnan(x))
        return 0x7F;
    std::uint8_t sign = 0;
    if (std::signbit(x)) {
        sign = 0x80;
        x = -x;
    }
    if (x >= 448.f)
        return sign | 0x7E; // saturate to max finite (448)
    if (x < std::ldexp(1.0f, -9)) // below half the smallest subnormal
        return sign;
    // Search the 127 finite magnitudes for the nearest; format is tiny.
    std::uint8_t best = 0;
    float best_err = std::numeric_limits<float>::infinity();
    for (std::uint8_t b = 0; b <= 0x7E; b++) {
        const float v = e4m3Decode(b);
        const float err = std::fabs(x - v);
        if (err < best_err) {
            best_err = err;
            best = b;
        }
    }
    return sign | best;
}

float
MxVector::valueAt(std::size_t i) const
{
    const std::size_t block = i / static_cast<std::size_t>(mxBlockSize(kind));
    const float s = kind == MxKind::MXFP4 ? e8m0Decode(scales[block])
                                          : e4m3Decode(scales[block]);
    return s * e2m1Decode(codes[i]);
}

MxVector
mxEncode(const std::vector<float>& x, MxKind kind)
{
    const std::size_t bs = static_cast<std::size_t>(mxBlockSize(kind));
    BITDEC_ASSERT(x.size() % bs == 0,
                  "MX vector length must be a multiple of the block size");
    MxVector v;
    v.kind = kind;
    v.codes.resize(x.size());
    v.scales.resize(x.size() / bs);

    for (std::size_t b = 0; b < v.scales.size(); b++) {
        float amax = 0.f;
        for (std::size_t i = 0; i < bs; i++)
            amax = std::max(amax, std::fabs(x[b * bs + i]));

        float scale;
        if (kind == MxKind::MXFP4) {
            // Hardware rule: 2^(floor(log2(amax)) - emax_elem), emax=2 for
            // E2M1 (largest magnitude 6 = 1.5 * 2^2).
            const std::uint8_t sbits =
                amax > 0.f ? e8m0Encode(amax / 4.0f) : 127;
            v.scales[b] = sbits;
            scale = e8m0Decode(sbits);
        } else {
            const std::uint8_t sbits =
                amax > 0.f ? e4m3Encode(amax / 6.0f) : e4m3Encode(1.0f);
            v.scales[b] = sbits;
            scale = e4m3Decode(sbits);
            if (scale == 0.f)
                scale = 1.f;
        }
        for (std::size_t i = 0; i < bs; i++)
            v.codes[b * bs + i] = e2m1Encode(x[b * bs + i] / scale);
    }
    return v;
}

std::vector<float>
mxDecode(const MxVector& v)
{
    std::vector<float> out(v.size());
    for (std::size_t i = 0; i < v.size(); i++)
        out[i] = v.valueAt(i);
    return out;
}

float
MxMatrix::valueAt(std::size_t r, std::size_t c) const
{
    const std::size_t bs = static_cast<std::size_t>(mxBlockSize(kind));
    const std::uint8_t sbits = scales.at(r, c / bs);
    const float s =
        kind == MxKind::MXFP4 ? e8m0Decode(sbits) : e4m3Decode(sbits);
    return s * e2m1Decode(codes.at(r, c));
}

MxMatrix
mxEncodeMatrix(const Tensor<Half>& x, MxKind kind)
{
    BITDEC_ASSERT(x.rank() == 2, "mxEncodeMatrix expects a 2-D tensor");
    const std::size_t rows = x.dim(0);
    const std::size_t cols = x.dim(1);
    const std::size_t bs = static_cast<std::size_t>(mxBlockSize(kind));
    BITDEC_ASSERT(cols % bs == 0, "columns must be a multiple of block size");

    MxMatrix m;
    m.kind = kind;
    m.rows = rows;
    m.cols = cols;
    m.codes.reset({rows, cols});
    m.scales.reset({rows, cols / bs});

    std::vector<float> row(cols);
    for (std::size_t r = 0; r < rows; r++) {
        // Rows are contiguous: one bulk LUT conversion per row.
        toFloat(x.data() + r * cols, row.data(), cols);
        const MxVector v = mxEncode(row, kind);
        for (std::size_t c = 0; c < cols; c++)
            m.codes.at(r, c) = v.codes[c];
        for (std::size_t b = 0; b < cols / bs; b++)
            m.scales.at(r, b) = v.scales[b];
    }
    return m;
}

Tensor<Half>
mxDecodeMatrix(const MxMatrix& m)
{
    Tensor<Half> out({m.rows, m.cols});
    std::vector<float> row(m.cols);
    for (std::size_t r = 0; r < m.rows; r++) {
        for (std::size_t c = 0; c < m.cols; c++)
            row[c] = m.valueAt(r, c);
        // Rows are contiguous: one bulk narrowing pass per row.
        fromFloat(row.data(), out.data() + r * m.cols, m.cols);
    }
    return out;
}

} // namespace bitdec::quant
