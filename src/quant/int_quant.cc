#include "quant/int_quant.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bitdec::quant {

QuantParams
computeParams(float min_val, float max_val, int bits)
{
    BITDEC_ASSERT(bits >= 1 && bits <= 8, "unsupported bit width ", bits);
    const float qmax = static_cast<float>((1 << bits) - 1);
    float scale = (max_val - min_val) / qmax;
    if (scale <= 0.f || !std::isfinite(scale)) {
        // Constant group: any positive scale round-trips exactly.
        scale = 1.0f;
    }
    // Parameters live in half precision on device; round here so the
    // quantizer and dequantizer agree bit-for-bit with the kernels.
    // The zero-point is NOT clamped to [0, qmax]: ranges that exclude
    // zero (possible for attention keys) put it outside, and clamping
    // would shear the whole group.
    const Half hscale(scale);
    const Half hzero(std::round(-min_val / hscale.toFloat()));
    return {hscale, hzero};
}

std::uint8_t
quantizeValue(float x, const QuantParams& p, int bits)
{
    const float qmax = static_cast<float>((1 << bits) - 1);
    const float q =
        std::round(x / p.scale.toFloat()) + p.zero.toFloat();
    return static_cast<std::uint8_t>(std::clamp(q, 0.0f, qmax));
}

float
dequantizeValue(std::uint8_t q, const QuantParams& p)
{
    // Matches the device FMA: y = scale * q - scale * zero, in fp32
    // intermediate then rounded to half on store.
    const float y = p.scale.toFloat() *
                    (static_cast<float>(q) - p.zero.toFloat());
    return Half(y).toFloat();
}

QuantParams
QuantizedMatrix::paramsFor(std::size_t row, std::size_t col) const
{
    std::size_t gr, gc;
    if (granularity == Granularity::TensorWise) {
        gr = row;
        gc = col / static_cast<std::size_t>(group_size);
    } else {
        gr = row / static_cast<std::size_t>(group_size);
        gc = col;
    }
    return QuantParams::fromHalf2(params.at(gr, gc));
}

QuantizedMatrix
quantizeMatrix(const Tensor<Half>& x, int bits, Granularity granularity,
               int group_size)
{
    BITDEC_ASSERT(x.rank() == 2, "quantizeMatrix expects a 2-D tensor");
    const std::size_t rows = x.dim(0);
    const std::size_t cols = x.dim(1);
    const std::size_t gs = static_cast<std::size_t>(group_size);

    QuantizedMatrix out;
    out.granularity = granularity;
    out.bits = bits;
    out.group_size = group_size;
    out.codes.reset({rows, cols});

    if (granularity == Granularity::TensorWise) {
        BITDEC_ASSERT(cols % gs == 0,
                      "hidden dim ", cols, " not divisible by group size ",
                      group_size);
        out.params.reset({rows, cols / gs});
        for (std::size_t r = 0; r < rows; r++) {
            for (std::size_t g = 0; g < cols / gs; g++) {
                float mn = x.at(r, g * gs).toFloat();
                float mx = mn;
                for (std::size_t i = 1; i < gs; i++) {
                    const float v = x.at(r, g * gs + i).toFloat();
                    mn = std::min(mn, v);
                    mx = std::max(mx, v);
                }
                const QuantParams p = computeParams(mn, mx, bits);
                out.params.at(r, g) = p.asHalf2();
                for (std::size_t i = 0; i < gs; i++) {
                    out.codes.at(r, g * gs + i) =
                        quantizeValue(x.at(r, g * gs + i).toFloat(), p, bits);
                }
            }
        }
    } else {
        BITDEC_ASSERT(rows % gs == 0,
                      "sequence block ", rows, " not divisible by group size ",
                      group_size);
        out.params.reset({rows / gs, cols});
        for (std::size_t g = 0; g < rows / gs; g++) {
            for (std::size_t c = 0; c < cols; c++) {
                float mn = x.at(g * gs, c).toFloat();
                float mx = mn;
                for (std::size_t i = 1; i < gs; i++) {
                    const float v = x.at(g * gs + i, c).toFloat();
                    mn = std::min(mn, v);
                    mx = std::max(mx, v);
                }
                const QuantParams p = computeParams(mn, mx, bits);
                out.params.at(g, c) = p.asHalf2();
                for (std::size_t i = 0; i < gs; i++) {
                    out.codes.at(g * gs + i, c) =
                        quantizeValue(x.at(g * gs + i, c).toFloat(), p, bits);
                }
            }
        }
    }
    return out;
}

Tensor<Half>
dequantizeMatrix(const QuantizedMatrix& q)
{
    const std::size_t rows = q.codes.dim(0);
    const std::size_t cols = q.codes.dim(1);
    Tensor<Half> out({rows, cols});
    for (std::size_t r = 0; r < rows; r++) {
        for (std::size_t c = 0; c < cols; c++) {
            out.at(r, c) =
                Half(dequantizeValue(q.codes.at(r, c), q.paramsFor(r, c)));
        }
    }
    return out;
}

float
maxAbsError(const Tensor<Half>& x, const QuantizedMatrix& q)
{
    float err = 0.f;
    for (std::size_t r = 0; r < x.dim(0); r++) {
        for (std::size_t c = 0; c < x.dim(1); c++) {
            const float y =
                dequantizeValue(q.codes.at(r, c), q.paramsFor(r, c));
            err = std::max(err, std::fabs(y - x.at(r, c).toFloat()));
        }
    }
    return err;
}

} // namespace bitdec::quant
