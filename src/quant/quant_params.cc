#include "quant/quant_params.h"

namespace bitdec::quant {

const char*
granularityCode(Granularity g)
{
    return g == Granularity::TensorWise ? "KT" : "KC";
}

std::string
QuantConfig::label() const
{
    return std::string(granularityCode(key_granularity)) + "-" +
           std::to_string(bits);
}

} // namespace bitdec::quant
