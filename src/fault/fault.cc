#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"
#include "common/rng.h"

namespace bitdec::fault {

namespace {

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

const char*
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::FetchFailure:
        return "fetch-failure";
      case FaultKind::LatencySpike:
        return "latency-spike";
      case FaultKind::PageCorruption:
        return "page-corruption";
      case FaultKind::HotAllocFailure:
        return "hot-alloc-failure";
    }
    return "unknown";
}

FaultSchedule&
FaultSchedule::add(FaultKind kind, double rate, double start_s, double end_s)
{
    BITDEC_ASSERT(rate >= 0 && rate <= 1, "fault rate must be in [0, 1], got ",
                  rate);
    BITDEC_ASSERT(start_s <= end_s, "fault window ends before it starts");
    if (rate > 0)
        windows_.push_back({kind, rate, start_s, end_s});
    return *this;
}

double
FaultSchedule::rateAt(FaultKind kind, double now) const
{
    // Overlapping windows of the same kind act as independent failure
    // sources: survive all of them or fail.
    double survive = 1.0;
    for (const FaultWindow& w : windows_) {
        if (w.kind == kind && now >= w.start_s && now < w.end_s)
            survive *= 1.0 - w.rate;
    }
    return 1.0 - survive;
}

std::string
FaultSchedule::summary() const
{
    if (windows_.empty())
        return "none";
    std::ostringstream oss;
    for (std::size_t i = 0; i < windows_.size(); i++) {
        const FaultWindow& w = windows_[i];
        if (i > 0)
            oss << " ";
        oss << toString(w.kind) << "=" << w.rate;
        if (w.kind == FaultKind::LatencySpike)
            oss << "x" << spike_mult;
        if (w.kind == FaultKind::PageCorruption && multibit > 0)
            oss << "(multibit=" << multibit << ")";
        if (w.start_s > 0 || std::isfinite(w.end_s)) {
            oss << "@[" << w.start_s << ",";
            if (std::isfinite(w.end_s))
                oss << w.end_s;
            else
                oss << "inf";
            oss << ")";
        }
    }
    return oss.str();
}

FaultSchedule
FaultSchedule::parse(const std::string& spec)
{
    FaultSchedule s;
    if (spec.empty())
        return s;
    double fetch = 0, spike = 0, corrupt = 0, alloc = 0;
    double from = 0;
    double until = std::numeric_limits<double>::infinity();
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size())
            BITDEC_FATAL("bad fault spec item '", item,
                         "' (expected key=value, e.g. fetch=0.02)");
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        double num = 0;
        try {
            std::size_t used = 0;
            num = std::stod(val, &used);
            if (used != val.size())
                throw std::invalid_argument(val);
        } catch (const std::exception&) {
            BITDEC_FATAL("bad fault spec value '", val, "' for key '", key,
                         "'");
        }
        if (key == "fetch")
            fetch = num;
        else if (key == "spike")
            spike = num;
        else if (key == "corrupt")
            corrupt = num;
        else if (key == "alloc")
            alloc = num;
        else if (key == "mult")
            s.spike_mult = num;
        else if (key == "multibit")
            s.multibit = num;
        else if (key == "from")
            from = num;
        else if (key == "until")
            until = num;
        else
            BITDEC_FATAL("unknown fault spec key '", key,
                         "' (use fetch/spike/corrupt/alloc/mult/multibit/"
                         "from/until)");
    }
    for (const double r : {fetch, spike, corrupt, alloc})
        if (r < 0 || r > 1)
            BITDEC_FATAL("fault rates must be in [0, 1], got ", r, " in '",
                         spec, "'");
    if (s.spike_mult < 1)
        BITDEC_FATAL("spike mult must be >= 1, got ", s.spike_mult);
    if (s.multibit < 0 || s.multibit > 1)
        BITDEC_FATAL("multibit fraction must be in [0, 1], got ", s.multibit);
    s.add(FaultKind::FetchFailure, fetch, from, until);
    s.add(FaultKind::LatencySpike, spike, from, until);
    s.add(FaultKind::PageCorruption, corrupt, from, until);
    s.add(FaultKind::HotAllocFailure, alloc, from, until);
    return s;
}

std::uint64_t
mixCoords(std::uint64_t seed, FaultKind kind, std::uint64_t a, std::uint64_t b,
          std::uint64_t c)
{
    // Chained splitmix64 finalizers: every coordinate fully avalanches
    // before the next folds in, so (a=1, b=0) and (a=0, b=1) land far
    // apart and per-page decisions are independent.
    std::uint64_t h = mix64(seed ^ 0xFA017EC7ull);
    h = mix64(h ^ static_cast<std::uint64_t>(kind) * 0x9E3779B97F4A7C15ull);
    h = mix64(h ^ a);
    h = mix64(h ^ b);
    h = mix64(h ^ c);
    return h;
}

FaultInjector::FaultInjector(const FaultSchedule& schedule, std::uint64_t seed)
    : schedule_(schedule), seed_(seed)
{
}

bool
FaultInjector::peek(FaultKind kind, double now, std::uint64_t a,
                    std::uint64_t b, std::uint64_t c) const
{
    const double rate = schedule_.rateAt(kind, now);
    if (rate <= 0)
        return false;
    Rng rng(mixCoords(seed_, kind, a, b, c));
    return rng.uniform() < rate;
}

bool
FaultInjector::roll(FaultKind kind, double now, std::uint64_t a,
                    std::uint64_t b, std::uint64_t c)
{
    if (!peek(kind, now, a, b, c))
        return false;
    switch (kind) {
      case FaultKind::FetchFailure:
        stats_.fetch_failures++;
        break;
      case FaultKind::LatencySpike:
        stats_.latency_spikes++;
        break;
      case FaultKind::PageCorruption:
        stats_.corrupted_pages++;
        break;
      case FaultKind::HotAllocFailure:
        stats_.alloc_failures++;
        break;
    }
    return true;
}

double
backoffDelay(const RetryPolicy& policy, int attempt)
{
    BITDEC_ASSERT(attempt >= 1, "backoff attempts are 1-based");
    double delay = policy.backoff_base_s;
    for (int i = 1; i < attempt; i++) {
        delay *= policy.backoff_mult;
        if (delay >= policy.backoff_max_s)
            break;
    }
    return std::min(delay, policy.backoff_max_s);
}

} // namespace bitdec::fault
