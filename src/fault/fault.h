/**
 * @file
 * Deterministic, seeded fault injection for the tiered serving stack.
 *
 * A production system serving long-lived sessions from cold storage will
 * see transfer failures, tail-latency spikes, bit corruption in packed
 * pages and transient allocation failures — and a low-bit cache makes
 * corruption catastrophic (one flipped byte poisons 4-8 dequantized
 * values). This module injects exactly those faults, replayably:
 *
 *  - A FaultSchedule declares *when* and *how often* each FaultKind may
 *    fire: rate windows over the engine's virtual clock. An empty
 *    schedule injects nothing and costs one branch per hook.
 *  - A FaultInjector decides *whether* a specific operation fails. Every
 *    decision is a pure hash of (seed, kind, coordinates): the same seed
 *    and the same operation coordinates give the same answer regardless
 *    of call order, so a chaos run is replayable bit-for-bit and two
 *    engines with the same seed see the same storm.
 *
 * The defenses the injector exercises live next to the code under test:
 * per-page FNV-1a checksums and single-bit ECC repair in TieredPagePool,
 * retry-with-backoff and
 * recompute escalation in the engine (see RetryPolicy / backoffDelay),
 * deadline cancellation and load shedding in the scheduler. The chaos
 * contract — enforced by tests/test_fault.cc and the
 * BENCH_fault_tolerance.json smoke gate — is that every injected fault
 * is detected and recovered with byte-identical output digests.
 */
#ifndef BITDEC_FAULT_FAULT_H
#define BITDEC_FAULT_FAULT_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bitdec::fault {

/** Failure classes the injector can fire. */
enum class FaultKind
{
    FetchFailure,    //!< a cold->hot page transfer fails outright
    LatencySpike,    //!< a transfer takes spike_mult x its modeled cost
    PageCorruption,  //!< a bit flips in an offloaded packed page
    HotAllocFailure, //!< a transient hot-pool allocation failure
};

/** Number of FaultKind values (hash-domain separation). */
constexpr int kNumFaultKinds = 4;

/** Returns a printable fault-kind name. */
const char* toString(FaultKind kind);

/** One injection window: @p kind fires at @p rate in [start_s, end_s). */
struct FaultWindow
{
    FaultKind kind = FaultKind::FetchFailure;
    double rate = 0;    //!< per-operation probability in [0, 1]
    double start_s = 0; //!< window start (virtual clock, inclusive)
    double end_s = std::numeric_limits<double>::infinity(); //!< exclusive
};

/**
 * Declarative fault plan: a set of rate windows plus the spike severity.
 * Windows of the same kind overlap as independent failure sources
 * (combined rate 1 - prod(1 - r_i)), so layered storms compose.
 */
class FaultSchedule
{
  public:
    /** Adds one window; returns *this for chaining. */
    FaultSchedule&
    add(FaultKind kind, double rate, double start_s = 0,
        double end_s = std::numeric_limits<double>::infinity());

    /** Combined rate of @p kind at virtual time @p now. */
    double rateAt(FaultKind kind, double now) const;

    /** True when no window is declared (injection disabled). */
    bool empty() const { return windows_.empty(); }

    /** Declared windows, in add order. */
    const std::vector<FaultWindow>& windows() const { return windows_; }

    /** One-line human summary ("fetch=0.02 spike=0.02x100 ..."). */
    std::string summary() const;

    /**
     * Parses a CLI spec: comma-separated key=value pairs with keys
     * `fetch`, `spike`, `corrupt`, `alloc` (per-operation rates in
     * [0, 1]), `mult` (spike severity multiplier), `multibit` (fraction
     * of corruptions that are uncorrectable multi-bit rot) and `from` /
     * `until` (one window applied to every rate in the spec). Example:
     * "fetch=0.02,corrupt=0.01,spike=0.02,mult=100,from=0". Unknown
     * keys and out-of-range values are fatal (never silently ignored).
     */
    static FaultSchedule parse(const std::string& spec);

    /** Latency multiplier a LatencySpike applies to a transfer. */
    double spike_mult = 100.0;

    /**
     * Fraction of corrupted pages that take a second bit flip at a
     * different bit position — uncorrectable by the single-bit ECC, so
     * they exercise the drop-and-recompute path (spec key `multibit`).
     */
    double multibit = 0.0;

  private:
    std::vector<FaultWindow> windows_;
};

/** Cumulative injection counters, by kind. */
struct FaultStats
{
    long fetch_failures = 0;  //!< FetchFailure faults fired
    long latency_spikes = 0;  //!< LatencySpike faults fired
    long corrupted_pages = 0; //!< PageCorruption faults fired
    long alloc_failures = 0;  //!< HotAllocFailure faults fired

    /** All faults fired, any kind. */
    long total() const
    {
        return fetch_failures + latency_spikes + corrupted_pages +
               alloc_failures;
    }
};

/**
 * Pure hash-coordinate mix for fault decisions: folds the seed, the
 * fault kind and up to three operation coordinates (sequence id, page
 * index, attempt counter, ...) into one 64-bit Rng seed. Exposed so
 * callers needing deterministic *payload* mutations (which bit to flip)
 * can derive them from the same coordinate space.
 */
std::uint64_t mixCoords(std::uint64_t seed, FaultKind kind, std::uint64_t a,
                        std::uint64_t b = 0, std::uint64_t c = 0);

/**
 * Decides fault injection for individual operations.
 *
 * roll() is stateless apart from the stats counters: the decision for a
 * given (kind, now, coordinates) tuple never depends on previous calls.
 * Callers must therefore put *everything that distinguishes two
 * attempts of the same operation* into the coordinates — e.g. a global
 * attempt counter — or a failed operation would fail forever.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultSchedule& schedule, std::uint64_t seed);

    /**
     * True when the operation identified by (@p a, @p b, @p c) suffers
     * a @p kind fault at virtual time @p now. Counts fired faults.
     */
    bool roll(FaultKind kind, double now, std::uint64_t a,
              std::uint64_t b = 0, std::uint64_t c = 0);

    /**
     * roll() without counting: the same deterministic decision, for
     * secondary questions derived from an already-fired fault (e.g.
     * whether a hedged re-read suffers the same spike) that are not
     * themselves new injected faults.
     */
    bool peek(FaultKind kind, double now, std::uint64_t a,
              std::uint64_t b = 0, std::uint64_t c = 0) const;

    /** Latency multiplier a fired LatencySpike applies. */
    double spikeMultiplier() const { return schedule_.spike_mult; }

    /** Fraction of corruptions that are multi-bit (uncorrectable). */
    double multibitFraction() const { return schedule_.multibit; }

    /** The injector's decision seed (chaos-run identity). */
    std::uint64_t seed() const { return seed_; }

    /** Cumulative injection counters. */
    const FaultStats& stats() const { return stats_; }

  private:
    FaultSchedule schedule_;
    std::uint64_t seed_;
    FaultStats stats_;
};

/** Engine recovery policy for failed cold-page fetches. */
struct RetryPolicy
{
    /**
     * Transient-fault retries before a fetch escalates to recompute
     * (dropToRecompute: digest-identical by seeded content).
     */
    int max_fetch_retries = 4;
    double backoff_base_s = 0.002; //!< delay after the first failure
    double backoff_mult = 2.0;     //!< delay growth per further failure
    double backoff_max_s = 0.25;   //!< delay ceiling
};

/**
 * Exponential-backoff delay before retry @p attempt (1-based):
 * base * mult^(attempt-1), capped at backoff_max_s.
 */
double backoffDelay(const RetryPolicy& policy, int attempt);

} // namespace bitdec::fault

#endif // BITDEC_FAULT_FAULT_H
