/**
 * @file
 * Sharded serving cluster: N full Engine replicas on one shared virtual
 * clock behind the narrow ServingClient seam.
 *
 * Each shard is a complete Engine (own page pool, scheduler, tiers,
 * fault injector) wrapped in an EngineClient — the simulator's stand-in
 * for one GPU replica. The Router places every submitted request on a
 * shard (sticky prefix-aware by default, see router.h); drain() runs
 * each shard's batch to completion and aggregates the per-shard metrics
 * into one cluster-wide summary.
 *
 * Shared virtual clock: every shard's run starts from the same t=0
 * arrival timeline and shards never interact mid-run (requests are
 * placed before any shard executes), so draining the shard simulations
 * sequentially is observationally identical to running them
 * concurrently — the cluster makespan is the max over shards of each
 * shard's absolute finish time, exactly as if N devices ran in
 * parallel.
 *
 * Determinism and shard-count invariance: token content derives from
 * (request id, position) and (prefix id, position) seeds only — never
 * from placement — so each request's output_hash and attn_hash are
 * byte-identical whatever shard runs it and however many shards exist,
 * for any prefix-disjoint traffic. The commutative XOR outputs_digest
 * therefore matches a single bare Engine run of the same trace, which
 * is the cluster analogue of the backend thread-count invariance tests.
 */
#ifndef BITDEC_CLUSTER_CLUSTER_H
#define BITDEC_CLUSTER_CLUSTER_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/router.h"
#include "serving/client.h"

namespace bitdec::cluster {

/** Cluster configuration: N identical replicas + routing policy. */
struct ClusterConfig
{
    int num_shards = 1;
    //! Placement policy/knobs; num_shards here is overwritten from the
    //! field above so the two can never disagree.
    RouterConfig router;
    //! Per-replica engine configuration (every shard gets its own full
    //! page pool, tiers and scheduler from this one config).
    serving::EngineConfig engine;
};

/** Cross-shard aggregate of one drain: cluster summary + per-shard
 *  breakdown + routing counters. */
struct ClusterMetrics
{
    serving::ServingMetrics aggregate; //!< cluster-wide summary
    std::vector<serving::ServingMetrics> per_shard; //!< one per shard
    RouterStats router; //!< routing counters (cumulative)
};

/** ServingClient over N Engine replicas behind a prefix-aware Router. */
class Cluster final : public serving::ServingClient
{
  public:
    Cluster(const sim::GpuArch& arch, const model::ModelConfig& model,
            const ClusterConfig& cfg);

    /** Routes the request to its shard (sticky prefix placement) and
     *  submits it there. */
    int submit(const serving::Request& r) override;
    const serving::Request* poll(int id) const override;
    bool cancel(int id) override;

    /**
     * Drains every shard that holds pending requests and aggregates:
     * request-level distributions (TTFT, TPOT, latency, per-priority
     * TTFT) and the outputs digest are re-folded from the individual
     * finished requests, so they are exact cluster-wide; counters are
     * summed; the step-weighted rates (avg decode batch, pool
     * utilization) and the stall percentiles are merged approximately
     * (makespan-weighted means, max for tails). With one shard the
     * aggregate is that shard's metrics verbatim — byte-identical to a
     * bare Engine run. The full breakdown is kept in clusterMetrics().
     */
    serving::ServingMetrics drain() override;
    serving::ClientStats stats() const override;

    /**
     * Streaming surface (see ServingClient): every shard opens a stream
     * on the same shared virtual clock and streamTick() always advances
     * the non-idle shard whose clock is furthest behind, so the merged
     * token-event order is deterministic and each request's digests are
     * byte-identical to a single-engine run of the same trace.
     */
    std::string admissionError(const serving::Request& r) const override;
    void streamBegin(serving::TokenSink sink = {}) override;
    int streamSubmit(const serving::Request& r) override;
    bool streamCancel(int id) override;
    bool streamTick() override;
    bool streamIdle() const override;
    double streamClock() const override;
    serving::ServingMetrics streamSnapshot() const override;
    serving::ServingMetrics streamEnd() override;

    /** Aggregate + per-shard + router view of the most recent drain. */
    const ClusterMetrics& clusterMetrics() const { return last_; }

    /** The shard a submitted request was placed on; -1 when unknown. */
    int shardOf(int id) const;

    int numShards() const { return static_cast<int>(shards_.size()); }

  private:
    /** Folds one round's per-shard metrics + request records into a
     *  cluster-wide ClusterMetrics (the drain() aggregation). */
    ClusterMetrics
    aggregateRound(const std::vector<serving::ServingMetrics>& per_shard,
                   const std::vector<int>& ids) const;

    ClusterConfig cfg_;
    Router router_;
    std::vector<std::unique_ptr<serving::EngineClient>> shards_;
    std::unordered_map<int, int> shard_of_; //!< request id -> shard
    std::vector<int> since_drain_; //!< ids submitted since the last drain
    bool streaming_ = false;
    ClusterMetrics last_;
};

} // namespace bitdec::cluster

#endif // BITDEC_CLUSTER_CLUSTER_H
