#include "cluster/router.h"

#include <numeric>

#include "common/logging.h"

namespace bitdec::cluster {

const char*
toString(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::Sticky:
        return "sticky";
      case RoutePolicy::LeastLoaded:
        return "least-loaded";
      case RoutePolicy::RoundRobin:
        return "round-robin";
    }
    return "unknown";
}

Router::Router(const RouterConfig& cfg) : cfg_(cfg)
{
    BITDEC_ASSERT(cfg_.num_shards >= 1, "Router needs >= 1 shard, got ",
                  cfg_.num_shards);
    BITDEC_ASSERT(cfg_.rebalance_factor > 1.0,
                  "RouterConfig.rebalance_factor must be > 1 (got ",
                  cfg_.rebalance_factor, "): <= 1 thrashes prefix homes");
    load_tokens_.assign(static_cast<std::size_t>(cfg_.num_shards), 0);
    stats_.per_shard_requests.assign(
        static_cast<std::size_t>(cfg_.num_shards), 0);
    stats_.per_shard_tokens.assign(static_cast<std::size_t>(cfg_.num_shards),
                                   0);
}

int
Router::leastLoaded() const
{
    int best = 0;
    for (int s = 1; s < cfg_.num_shards; s++)
        if (load_tokens_[static_cast<std::size_t>(s)] <
            load_tokens_[static_cast<std::size_t>(best)])
            best = s;
    return best;
}

int
Router::route(const serving::Request& r)
{
    // Load unit: the tokens this request will hold in the page pool and
    // feed through the step clock.
    const long tokens = r.prompt_tokens + r.output_tokens;
    int shard;
    switch (cfg_.policy) {
      case RoutePolicy::RoundRobin:
        shard = next_rr_;
        next_rr_ = (next_rr_ + 1) % cfg_.num_shards;
        break;
      case RoutePolicy::LeastLoaded:
        shard = leastLoaded();
        stats_.least_loaded++;
        break;
      case RoutePolicy::Sticky:
      default: {
        if (r.prefix_id == 0 || r.prefix_tokens <= 0) {
            shard = leastLoaded();
            stats_.least_loaded++;
            break;
        }
        const auto it = prefix_home_.find(r.prefix_id);
        if (it == prefix_home_.end()) {
            shard = leastLoaded();
            prefix_home_[r.prefix_id] = shard;
            stats_.cold_placements++;
            break;
        }
        const int home = it->second;
        const long total = std::accumulate(load_tokens_.begin(),
                                           load_tokens_.end(), 0L);
        const double mean =
            static_cast<double>(total) / cfg_.num_shards;
        const int lightest = leastLoaded();
        // Skew escape: pay one cold prefix prefill on a lighter shard
        // rather than queue the whole family behind a hot one.
        if (lightest != home &&
            static_cast<double>(
                load_tokens_[static_cast<std::size_t>(home)]) >
                cfg_.rebalance_factor * mean) {
            shard = lightest;
            prefix_home_[r.prefix_id] = shard;
            stats_.rebalances++;
        } else {
            shard = home;
            stats_.sticky_hits++;
        }
        break;
      }
    }
    load_tokens_[static_cast<std::size_t>(shard)] += tokens;
    stats_.routed++;
    stats_.per_shard_requests[static_cast<std::size_t>(shard)]++;
    stats_.per_shard_tokens[static_cast<std::size_t>(shard)] += tokens;
    return shard;
}

long
Router::shardLoad(int shard) const
{
    BITDEC_ASSERT(shard >= 0 && shard < cfg_.num_shards, "bad shard index ",
                  shard);
    return load_tokens_[static_cast<std::size_t>(shard)];
}

int
Router::prefixHome(std::uint64_t prefix_id) const
{
    const auto it = prefix_home_.find(prefix_id);
    return it == prefix_home_.end() ? -1 : it->second;
}

} // namespace bitdec::cluster
