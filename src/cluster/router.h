/**
 * @file
 * Prefix-aware request router for the sharded serving cluster.
 *
 * Placement policy (Sticky, the default):
 *  - A request naming a shared prefix routes to the shard that already
 *    holds that prefix's pages (its "home"), so the whole family maps
 *    the packed system prompt once instead of cold-prefilling it on
 *    every shard. The first request of a family places the home on the
 *    least-loaded shard.
 *  - Prefix-free requests always go to the least-loaded shard.
 *  - Rebalancing under skew: when a family's home shard carries more
 *    than rebalance_factor x the mean shard load and some other shard
 *    is lighter, the family's home moves there. The family's next
 *    request cold-prefills the prefix once on the new home; after that
 *    stickiness resumes. This trades one prefill for unbounded queueing
 *    behind a hot shard.
 *
 * Load is measured in submitted tokens (prompt + output budget), the
 * unit the page pool and the step clock actually charge, so a shard
 * full of 32K contexts is "loaded" even with few requests. Ties break
 * toward the lowest shard index, which keeps routing deterministic:
 * the same submission sequence always produces the same placement.
 */
#ifndef BITDEC_CLUSTER_ROUTER_H
#define BITDEC_CLUSTER_ROUTER_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "serving/request.h"

namespace bitdec::cluster {

/** Placement policy of the Router. */
enum class RoutePolicy
{
    Sticky,      //!< prefix-sticky with least-loaded fallback (default)
    LeastLoaded, //!< ignore prefixes; always the least-loaded shard
    RoundRobin,  //!< ignore load; baseline for ablations
};

/** Returns a printable policy name. */
const char* toString(RoutePolicy policy);

/** Router configuration. */
struct RouterConfig
{
    int num_shards = 1;
    RoutePolicy policy = RoutePolicy::Sticky;

    /**
     * Skew threshold: a prefix family's home shard is abandoned when
     * its load exceeds this multiple of the mean shard load while a
     * strictly lighter shard exists. <= 1 would thrash; typical ~1.25.
     */
    double rebalance_factor = 1.25;
};

/** Routing counters, cumulative over the router's lifetime. */
struct RouterStats
{
    long routed = 0;          //!< route() calls
    long sticky_hits = 0;     //!< follow-ups sent to their prefix home
    long cold_placements = 0; //!< first placement of a prefix family
    long least_loaded = 0;    //!< prefix-free least-loaded placements
    long rebalances = 0;      //!< prefix homes moved under skew
    std::vector<long> per_shard_requests; //!< requests routed per shard
    std::vector<long> per_shard_tokens;   //!< load tokens routed per shard
};

/** Deterministic sticky prefix-aware shard placement. */
class Router
{
  public:
    explicit Router(const RouterConfig& cfg);

    /**
     * Picks the shard for @p r and accounts its load there.
     * @return shard index in [0, num_shards).
     */
    int route(const serving::Request& r);

    /** Current load (tokens) of one shard. */
    long shardLoad(int shard) const;

    /** Home shard of a prefix family; -1 when never placed. */
    int prefixHome(std::uint64_t prefix_id) const;

    const RouterStats& stats() const { return stats_; }

  private:
    /** Least-loaded shard, lowest index among ties. */
    int leastLoaded() const;

    RouterConfig cfg_;
    std::vector<long> load_tokens_;
    std::unordered_map<std::uint64_t, int> prefix_home_;
    int next_rr_ = 0; //!< RoundRobin cursor
    RouterStats stats_;
};

} // namespace bitdec::cluster

#endif // BITDEC_CLUSTER_ROUTER_H
