#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace bitdec::cluster {

namespace {

/** Field-wise sum of two tier counter blocks. */
kv::TieredStats
operator+(const kv::TieredStats& a, const kv::TieredStats& b)
{
    kv::TieredStats s;
    s.offloaded_pages = a.offloaded_pages + b.offloaded_pages;
    s.fetched_pages = a.fetched_pages + b.fetched_pages;
    s.prefetched_pages = a.prefetched_pages + b.prefetched_pages;
    s.prefetch_hits = a.prefetch_hits + b.prefetch_hits;
    s.spilled_pages = a.spilled_pages + b.spilled_pages;
    s.dropped_pages = a.dropped_pages + b.dropped_pages;
    s.lru_drops = a.lru_drops + b.lru_drops;
    s.transfer_failures = a.transfer_failures + b.transfer_failures;
    s.checksum_failures = a.checksum_failures + b.checksum_failures;
    s.repaired_pages = a.repaired_pages + b.repaired_pages;
    s.hedged_fetches = a.hedged_fetches + b.hedged_fetches;
    return s;
}

/** Field-wise sum of two fault counter blocks. */
fault::FaultStats
operator+(const fault::FaultStats& a, const fault::FaultStats& b)
{
    fault::FaultStats s;
    s.fetch_failures = a.fetch_failures + b.fetch_failures;
    s.latency_spikes = a.latency_spikes + b.latency_spikes;
    s.corrupted_pages = a.corrupted_pages + b.corrupted_pages;
    s.alloc_failures = a.alloc_failures + b.alloc_failures;
    return s;
}

/** Samples behind a (total, mean) pair: total / mean, 0 when empty. */
double
sampleCount(double total, double mean)
{
    return mean > 0 ? total / mean : 0;
}

} // namespace

Cluster::Cluster(const sim::GpuArch& arch, const model::ModelConfig& model,
                 const ClusterConfig& cfg)
    : cfg_(cfg),
      router_([&cfg] {
          RouterConfig rc = cfg.router;
          rc.num_shards = cfg.num_shards; // single source of truth
          return rc;
      }())
{
    BITDEC_ASSERT(cfg_.num_shards >= 1, "Cluster needs >= 1 shard, got ",
                  cfg_.num_shards);
    cfg_.router.num_shards = cfg_.num_shards;
    shards_.reserve(static_cast<std::size_t>(cfg_.num_shards));
    for (int s = 0; s < cfg_.num_shards; s++)
        shards_.push_back(std::make_unique<serving::EngineClient>(
            arch, model, cfg_.engine));
    last_.per_shard.resize(static_cast<std::size_t>(cfg_.num_shards));
}

int
Cluster::submit(const serving::Request& r)
{
    BITDEC_ASSERT(shard_of_.find(r.id) == shard_of_.end(),
                  "duplicate request id ", r.id, " submitted to cluster");
    const int shard = router_.route(r);
    shard_of_[r.id] = shard;
    since_drain_.push_back(r.id);
    return shards_[static_cast<std::size_t>(shard)]->submit(r);
}

const serving::Request*
Cluster::poll(int id) const
{
    const auto it = shard_of_.find(id);
    if (it == shard_of_.end())
        return nullptr;
    return shards_[static_cast<std::size_t>(it->second)]->poll(id);
}

bool
Cluster::cancel(int id)
{
    const auto it = shard_of_.find(id);
    if (it == shard_of_.end())
        return false;
    return shards_[static_cast<std::size_t>(it->second)]->cancel(id);
}

int
Cluster::shardOf(int id) const
{
    const auto it = shard_of_.find(id);
    return it == shard_of_.end() ? -1 : it->second;
}

serving::ServingMetrics
Cluster::drain()
{
    BITDEC_ASSERT(!streaming_, "drain while a stream is open");
    const auto n = shards_.size();

    // Run every shard's batch. The virtual clock is shared: each shard
    // simulates the same arrival timeline independently and shards never
    // interact mid-run, so sequential draining reproduces exactly what N
    // concurrent replicas would do.
    std::vector<serving::ServingMetrics> per_shard(n);
    for (std::size_t s = 0; s < n; s++)
        per_shard[s] = shards_[s]->drain();

    last_ = aggregateRound(per_shard, since_drain_);
    since_drain_.clear();
    return last_.aggregate;
}

ClusterMetrics
Cluster::aggregateRound(const std::vector<serving::ServingMetrics>& per_shard,
                        const std::vector<int>& ids) const
{
    const auto n = shards_.size();
    ClusterMetrics out;
    out.per_shard = per_shard;
    out.router = router_.stats();

    // Per-shard span of this round on the shared clock: the engine's
    // makespan is (final clock - first arrival), so a shard's absolute
    // end is its first non-client-canceled arrival plus its makespan.
    std::vector<double> first_arrival(
        n, std::numeric_limits<double>::infinity());
    std::vector<bool> active(n, false);
    std::vector<const serving::Request*> drained;
    drained.reserve(ids.size());
    for (const int id : ids) {
        const serving::Request* r = poll(id);
        BITDEC_ASSERT(r != nullptr, "drained id ", id, " unknown to shard");
        if (r->cancel_cause == serving::CancelCause::Client)
            continue; // never reached any engine
        const auto s = static_cast<std::size_t>(shard_of_.at(id));
        active[s] = true;
        first_arrival[s] = std::min(first_arrival[s], r->arrival_s);
        drained.push_back(r);
    }

    int num_active = 0;
    int only_active = -1;
    for (std::size_t s = 0; s < n; s++)
        if (active[s]) {
            num_active++;
            only_active = static_cast<int>(s);
        }

    if (num_active == 0) {
        out.aggregate = serving::ServingMetrics{};
        return out;
    }
    if (num_active == 1) {
        // One shard saw the whole batch: its metrics ARE the cluster
        // metrics, bit for bit. This is what makes Cluster(shards=1)
        // indistinguishable from a bare Engine.
        out.aggregate = per_shard[static_cast<std::size_t>(only_active)];
        return out;
    }

    // Cluster makespan on the shared clock: earliest arrival anywhere to
    // the latest shard finish.
    double start = std::numeric_limits<double>::infinity();
    double end = -std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n; s++) {
        if (!active[s])
            continue;
        start = std::min(start, first_arrival[s]);
        end = std::max(end, first_arrival[s] + per_shard[s].makespan_s);
    }
    const double makespan = end - start;

    // Request-level distributions re-fold exactly from the individual
    // finished requests — TTFT/TPOT/latency percentiles, per-priority
    // TTFT, generated tokens and the XOR outputs digest are not
    // mergeable from per-shard summaries, but the requests themselves
    // are all still at hand.
    serving::MetricsCollector mc;
    for (const serving::Request* r : drained)
        if (r->state == serving::RequestState::Finished)
            mc.onFinish(*r);

    int preemptions = 0;
    long cow = 0;
    long prefill_tokens = 0;
    kv::TieredStats tier;
    fault::FaultStats faults;
    int cold = 0, recompute = 0, retries = 0, recoveries = 0;
    int shed = 0, deadline = 0;
    for (std::size_t s = 0; s < n; s++) {
        const serving::ServingMetrics& m = per_shard[s];
        preemptions += m.preemptions;
        cow += m.cow_copies;
        prefill_tokens += m.prefill_tokens;
        tier = tier + m.tier;
        faults = faults + m.faults_injected;
        cold += m.cold_resumes;
        recompute += m.recompute_resumes;
        retries += m.fetch_retries;
        recoveries += m.recompute_recoveries;
        shed += m.shed_requests;
        deadline += m.deadline_cancels;
    }
    mc.setTierStats(tier, cold, recompute);
    mc.setFaultStats(faults, retries, recoveries, shed, deadline);

    serving::ServingMetrics agg = mc.finalize(makespan, preemptions, cow);
    agg.prefill_tokens = prefill_tokens;
    const double demand =
        static_cast<double>(prefill_tokens + agg.prefix_hit_tokens);
    agg.prefix_hit_rate =
        demand > 0 ? agg.prefix_hit_tokens / demand : 0;

    // Step-weighted rates and stall tails cannot be re-derived from
    // request records; merge the per-shard summaries approximately:
    // means weighted by the time (or samples) behind them, maxima for
    // peaks and distribution tails. Exact per-shard values stay
    // available in clusterMetrics().
    double span_sum = 0, batch_w = 0, util_w = 0;
    double stall_n = 0, stall_w = 0;
    double fetch_n = 0;
    for (std::size_t s = 0; s < n; s++) {
        const serving::ServingMetrics& m = per_shard[s];
        if (!active[s])
            continue;
        span_sum += m.makespan_s;
        batch_w += m.makespan_s * m.avg_decode_batch;
        util_w += m.makespan_s * m.avg_page_utilization;
        agg.peak_page_utilization =
            std::max(agg.peak_page_utilization, m.peak_page_utilization);

        // Generated tokens approximate the decode-gap sample count.
        const double gaps = m.sustained_tokens_per_s * m.makespan_s;
        stall_n += gaps;
        stall_w += gaps * m.decode_stall_mean_s;
        agg.decode_stall_p50_s =
            std::max(agg.decode_stall_p50_s, m.decode_stall_p50_s);
        agg.decode_stall_p99_s =
            std::max(agg.decode_stall_p99_s, m.decode_stall_p99_s);
        agg.decode_stall_max_s =
            std::max(agg.decode_stall_max_s, m.decode_stall_max_s);

        agg.fetch_stall_total_s += m.fetch_stall_total_s;
        fetch_n += sampleCount(m.fetch_stall_total_s, m.fetch_stall_mean_s);
        agg.fetch_stall_p99_s =
            std::max(agg.fetch_stall_p99_s, m.fetch_stall_p99_s);
        agg.fetch_stall_max_s =
            std::max(agg.fetch_stall_max_s, m.fetch_stall_max_s);

        // Shards run concurrently on the shared clock, so resident
        // sequences add up (an upper bound: per-shard peaks need not
        // coincide).
        agg.peak_resident_seqs += m.peak_resident_seqs;

        // Identical tier layouts per shard: capacities and occupancy sum.
        if (agg.tiers.empty()) {
            agg.tiers = m.tiers;
        } else if (!m.tiers.empty()) {
            BITDEC_ASSERT(agg.tiers.size() == m.tiers.size(),
                          "shards disagree on tier layout");
            for (std::size_t t = 0; t < agg.tiers.size(); t++) {
                agg.tiers[t].capacity_pages += m.tiers[t].capacity_pages;
                agg.tiers[t].avg_used_pages += m.tiers[t].avg_used_pages;
                agg.tiers[t].peak_used_pages += m.tiers[t].peak_used_pages;
            }
        }
    }
    if (span_sum > 0) {
        agg.avg_decode_batch = batch_w / span_sum;
        agg.avg_page_utilization = util_w / span_sum;
    }
    if (stall_n > 0)
        agg.decode_stall_mean_s = stall_w / stall_n;
    if (fetch_n > 0)
        agg.fetch_stall_mean_s = agg.fetch_stall_total_s / fetch_n;

    out.aggregate = agg;
    return out;
}

std::string
Cluster::admissionError(const serving::Request& r) const
{
    if (shard_of_.find(r.id) != shard_of_.end())
        return detail::concat("duplicate request id ", r.id,
                              " submitted to cluster");
    // Shards are identical replicas, so any shard's engine answers for
    // the whole cluster (the id is known to none of them — see above).
    return shards_.front()->admissionError(r);
}

void
Cluster::streamBegin(serving::TokenSink sink)
{
    BITDEC_ASSERT(!streaming_, "streamBegin while a stream is open");
    streaming_ = true;
    // Every shard streams into the same sink: events from different
    // shards interleave in shared-clock order (see streamTick), events
    // of one request always arrive in index order from its one shard.
    for (const auto& shard : shards_)
        shard->streamBegin(sink);
}

int
Cluster::streamSubmit(const serving::Request& r)
{
    BITDEC_ASSERT(streaming_, "streamSubmit without an open stream");
    BITDEC_ASSERT(shard_of_.find(r.id) == shard_of_.end(),
                  "duplicate request id ", r.id, " submitted to cluster");
    const int shard = router_.route(r);
    shard_of_[r.id] = shard;
    since_drain_.push_back(r.id);
    return shards_[static_cast<std::size_t>(shard)]->streamSubmit(r);
}

bool
Cluster::streamCancel(int id)
{
    BITDEC_ASSERT(streaming_, "streamCancel without an open stream");
    const auto it = shard_of_.find(id);
    if (it == shard_of_.end())
        return false;
    return shards_[static_cast<std::size_t>(it->second)]->streamCancel(id);
}

bool
Cluster::streamTick()
{
    BITDEC_ASSERT(streaming_, "streamTick without an open stream");
    // Advance the non-idle shard whose virtual clock is furthest behind:
    // the deterministic analogue of N replicas running concurrently —
    // token events merge in shared-clock order, ties break by shard
    // index.
    int behind = -1;
    double t = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < shards_.size(); s++) {
        if (shards_[s]->streamIdle())
            continue;
        const double c = shards_[s]->streamClock();
        if (c < t) {
            t = c;
            behind = static_cast<int>(s);
        }
    }
    if (behind < 0)
        return false;
    shards_[static_cast<std::size_t>(behind)]->streamTick();
    return !streamIdle();
}

bool
Cluster::streamIdle() const
{
    for (const auto& shard : shards_)
        if (!shard->streamIdle())
            return false;
    return true;
}

double
Cluster::streamClock() const
{
    // The merged stream sits at the slowest live shard's clock; with
    // everything idle, at the furthest clock any shard reached.
    double live = std::numeric_limits<double>::infinity();
    double done = 0;
    for (const auto& shard : shards_) {
        if (!shard->streamIdle())
            live = std::min(live, shard->streamClock());
        else
            done = std::max(done, shard->streamClock());
    }
    return std::isfinite(live) ? live : done;
}

serving::ServingMetrics
Cluster::streamSnapshot() const
{
    BITDEC_ASSERT(streaming_, "streamSnapshot without an open stream");
    std::vector<serving::ServingMetrics> per_shard(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); s++)
        per_shard[s] = shards_[s]->streamSnapshot();
    return aggregateRound(per_shard, since_drain_).aggregate;
}

serving::ServingMetrics
Cluster::streamEnd()
{
    BITDEC_ASSERT(streaming_, "streamEnd without an open stream");
    std::vector<serving::ServingMetrics> per_shard(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); s++)
        per_shard[s] = shards_[s]->streamEnd();
    last_ = aggregateRound(per_shard, since_drain_);
    since_drain_.clear();
    streaming_ = false;
    return last_.aggregate;
}

serving::ClientStats
Cluster::stats() const
{
    serving::ClientStats total;
    total.shards = static_cast<int>(shards_.size());
    for (const auto& shard : shards_) {
        const serving::ClientStats s = shard->stats();
        total.submitted += s.submitted;
        total.pending += s.pending;
        total.finished += s.finished;
        total.canceled += s.canceled;
        total.total_pool_pages += s.total_pool_pages;
    }
    return total;
}

} // namespace bitdec::cluster

namespace bitdec::serving {

std::unique_ptr<ServingClient>
makeServingClient(const sim::GpuArch& arch, const model::ModelConfig& model,
                  const EngineConfig& cfg, int shards)
{
    BITDEC_ASSERT(shards >= 1, "makeServingClient needs >= 1 shard, got ",
                  shards);
    if (shards == 1)
        return std::make_unique<EngineClient>(arch, model, cfg);
    cluster::ClusterConfig cc;
    cc.num_shards = shards;
    cc.engine = cfg;
    return std::make_unique<cluster::Cluster>(arch, model, cc);
}

} // namespace bitdec::serving
