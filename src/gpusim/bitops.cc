#include "gpusim/bitops.h"

namespace bitdec::sim {

std::uint32_t
prmt(std::uint32_t a, std::uint32_t b, std::uint32_t sel)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 4; i++)
        bytes[i] = static_cast<std::uint8_t>((a >> (8 * i)) & 0xFF);
    for (int i = 0; i < 4; i++)
        bytes[4 + i] = static_cast<std::uint8_t>((b >> (8 * i)) & 0xFF);

    std::uint32_t out = 0;
    for (int i = 0; i < 4; i++) {
        const std::uint32_t s = (sel >> (4 * i)) & 0xF;
        std::uint8_t byte = bytes[s & 0x7];
        if (s & 0x8) {
            // Replicate the sign bit of the selected byte.
            byte = (byte & 0x80) ? 0xFF : 0x00;
        }
        out |= static_cast<std::uint32_t>(byte) << (8 * i);
    }
    return out;
}

std::uint32_t
funnelShiftR(std::uint32_t lo, std::uint32_t hi, unsigned shift)
{
    shift = shift > 32 ? 32 : shift;
    if (shift == 0)
        return lo;
    if (shift == 32)
        return hi;
    const std::uint64_t wide =
        (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
    return static_cast<std::uint32_t>(wide >> shift);
}

} // namespace bitdec::sim
