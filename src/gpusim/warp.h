/**
 * @file
 * Warp-level functional primitives: per-lane variables and the shuffle /
 * vote intrinsics the Residual Kernel uses for min/max reductions.
 */
#ifndef BITDEC_GPUSIM_WARP_H
#define BITDEC_GPUSIM_WARP_H

#include <array>
#include <cstdint>
#include <functional>

#include "gpusim/fragment.h"

namespace bitdec::sim {

/** One value per lane of a warp. */
template <typename T>
using WarpVar = std::array<T, kWarpSize>;

/**
 * Functional __shfl_xor_sync with full mask: every lane receives the value
 * held by (lane ^ lane_mask).
 */
template <typename T>
WarpVar<T>
shflXor(const WarpVar<T>& v, int lane_mask)
{
    WarpVar<T> out{};
    for (int lane = 0; lane < kWarpSize; lane++) {
        out[static_cast<std::size_t>(lane)] =
            v[static_cast<std::size_t>(lane ^ lane_mask)];
    }
    return out;
}

/**
 * Butterfly reduction across a group of lanes using shfl_xor, exactly the
 * pattern the Residual Kernel issues: log2(width) exchange+combine steps.
 *
 * @param v      per-lane inputs
 * @param width  group width (power of two, <= 32); lanes reduce within
 *               aligned groups of this size
 * @param op     combine function (min, max, add, ...)
 * @return per-lane result; every lane of a group holds the group's value
 */
template <typename T, typename Op>
WarpVar<T>
butterflyReduce(WarpVar<T> v, int width, Op op)
{
    for (int mask = width / 2; mask >= 1; mask /= 2) {
        const WarpVar<T> other = shflXor(v, mask);
        for (int lane = 0; lane < kWarpSize; lane++) {
            v[static_cast<std::size_t>(lane)] =
                op(v[static_cast<std::size_t>(lane)],
                   other[static_cast<std::size_t>(lane)]);
        }
    }
    return v;
}

/** Functional __ballot_sync with full mask. */
std::uint32_t ballot(const WarpVar<bool>& pred);

} // namespace bitdec::sim

#endif // BITDEC_GPUSIM_WARP_H
