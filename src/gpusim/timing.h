/**
 * @file
 * Analytical kernel timing model.
 *
 * Every kernel in this library (BitDecoding's and the baselines') describes
 * the work one launch performs as a KernelWorkload: bytes moved, FLOPs per
 * pipe, CUDA-core instruction mix, shared-memory traffic, CTA/warp shape
 * and pipelining behaviour. resolveKernel() turns that into latency and
 * pipe-utilization statistics against a GpuArch.
 *
 * The model is a roofline with three refinements that the paper's results
 * hinge on:
 *  1. Occupancy: decode launches few CTAs; throughput scales with the
 *     fraction of SMs actually covered (why split-KV / query transformation
 *     matter).
 *  2. Warp-level overlap: CUDA-core work (dequantization) hides behind
 *     Tensor-Core/memory time only in proportion to the number of
 *     independent warps along N (the paper's Wn insight, Fig. 4/6 and
 *     Table III).
 *  3. Fusion: non-fused systems pay per-kernel launch overhead and round
 *     intermediate tensors through DRAM.
 */
#ifndef BITDEC_GPUSIM_TIMING_H
#define BITDEC_GPUSIM_TIMING_H

#include <string>
#include <vector>

#include "gpusim/arch.h"

namespace bitdec::sim {

/** CUDA-core scalar-op counts by category. */
struct CudaCoreOps
{
    double fma = 0; //!< fused multiply-adds (dequant scale/zero, GEMV FMA)
    double alu = 0; //!< integer/bit ops (lop3, shifts, pack, compare)
    double sfu = 0; //!< special-function ops (exp in softmax)

    /** Issue-slot-weighted op count (SFU ops cost ~4 CUDA-core slots). */
    double weighted() const { return fma + alu + 4.0 * sfu; }

    CudaCoreOps& operator+=(const CudaCoreOps& o);
};

/** Description of the work one kernel launch performs. */
struct KernelWorkload
{
    std::string label;

    double dram_read_bytes = 0;  //!< global-memory bytes read
    double dram_write_bytes = 0; //!< global-memory bytes written

    double tc_flops_fp16 = 0;    //!< Tensor-Core FLOPs with FP16 operands
    double tc_flops_lowbit = 0;  //!< Tensor-Core FLOPs at native low bits
    int lowbit_width = 4;        //!< operand width of tc_flops_lowbit

    CudaCoreOps cuda;            //!< CUDA-core op mix

    double smem_bytes = 0;             //!< shared-memory traffic (read+write)
    double smem_conflict_factor = 1.0; //!< >1 when accesses serialize

    /**
     * Sustained-DRAM-bandwidth derate (>= 1). CUDA-core GEMV kernels with
     * inline dequantization cannot keep the memory pipeline saturated the
     * way tiled Tensor-Core kernels do (load slots compete with ALU work,
     * occupancy is register-limited); profiled QServe/Atom-class kernels
     * sustain roughly half the streaming bandwidth.
     */
    double dram_derate = 1.0;

    int ctas = 1;          //!< thread blocks launched
    int warps_per_cta = 4; //!< resident warps per block
    int wn = 4;            //!< warps along the N (KV) dimension

    /** Fraction of CUDA-core work the pipeline may overlap with TC/memory. */
    double overlappable_cuda_fraction = 1.0;

    /** Pipeline fill/drain and sync overhead as a fraction of body time. */
    double pipeline_fill_overhead = 0.02;

    /**
     * When true, DRAM / Tensor-Core / shared-memory phases do not overlap
     * (no cp.async double buffering): the kernel pays their sum. Models the
     * "no software pipeline" ablation of Fig. 16.
     */
    bool serialize_pipes = false;
};

/** Resolved latency and utilization statistics for one kernel. */
struct KernelTiming
{
    double t_dram_s = 0;  //!< standalone DRAM time
    double t_tc_s = 0;    //!< standalone Tensor-Core time
    double t_cuda_s = 0;  //!< standalone CUDA-core time
    double t_smem_s = 0;  //!< standalone shared-memory time
    double total_s = 0;   //!< modeled kernel latency (no launch overhead)

    double occupancy = 1;        //!< fraction of SMs covered
    double tc_utilization = 0;   //!< TC busy fraction of total
    double mem_bw_utilization = 0; //!< DRAM busy fraction of total
    double cuda_utilization = 0; //!< CUDA-core busy fraction of total
    double mem_stall_frac = 0;   //!< stall fraction attributable to memory
    double exposed_cuda_s = 0;   //!< dequant/softmax time not hidden
};

/** Resolves one kernel workload against an architecture. */
KernelTiming resolveKernel(const GpuArch& arch, const KernelWorkload& wl);

/** Timing for a sequence of dependent kernel launches. */
struct SequenceTiming
{
    double total_s = 0;          //!< end-to-end time incl. launch overheads
    double launch_overhead_s = 0;
    std::vector<KernelTiming> kernels;

    /** Aggregate TC utilization across the sequence (time-weighted). */
    double tcUtilization() const;

    /** Aggregate DRAM utilization across the sequence (time-weighted). */
    double memUtilization() const;
};

/**
 * Resolves a dependent sequence of kernel launches (e.g. a non-fused
 * attention made of quant + matmul + softmax + matmul kernels).
 */
SequenceTiming resolveSequence(const GpuArch& arch,
                               const std::vector<KernelWorkload>& kernels);

/**
 * Warp-scheduler overlap efficiency for @p wn independent warps along N:
 * the fraction of overlappable CUDA-core work that hides behind
 * Tensor-Core/memory time. wn = 1 reproduces the serialized original
 * FlashAttention partitioning (Fig. 4a).
 */
double warpOverlapEfficiency(int wn);

} // namespace bitdec::sim

#endif // BITDEC_GPUSIM_TIMING_H
