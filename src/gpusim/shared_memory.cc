#include "gpusim/shared_memory.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace bitdec::sim {

int
xorSwizzleCol(int row, int col, int col_chunks)
{
    BITDEC_ASSERT(col_chunks > 0 && (col_chunks & (col_chunks - 1)) == 0,
                  "swizzle requires a power-of-two chunk count");
    return (col ^ (row % col_chunks)) % col_chunks;
}

int
smemConflictPhases(const std::vector<std::uint32_t>& byte_addrs)
{
    // bank -> set of distinct 4-byte word addresses requested in that bank
    std::map<int, std::set<std::uint32_t>> per_bank;
    for (std::uint32_t addr : byte_addrs) {
        const std::uint32_t word = addr / kSmemBankBytes;
        const int bank = static_cast<int>(word % kSmemBanks);
        per_bank[bank].insert(word);
    }
    int phases = 1;
    for (const auto& [bank, words] : per_bank)
        phases = std::max(phases, static_cast<int>(words.size()));
    return phases;
}

int
ldmatrixConflictPhases(int row_bytes, bool swizzled)
{
    // ldmatrix reads one 8x8 16-bit matrix per phase group: 8 rows of 16
    // bytes, i.e. four 4-byte words per row, all issued together. Each x4
    // group targets a different chunk column; conflicts are counted within
    // a group (hardware serializes bank collisions inside one matrix
    // transaction).
    const int chunk_bytes = 16;
    const int chunks_per_row = std::max(1, row_bytes / chunk_bytes);
    int worst = 1;
    for (int group = 0; group < 4; group++) {
        std::vector<std::uint32_t> addrs;
        for (int row = 0; row < 8; row++) {
            int chunk = group % chunks_per_row;
            if (swizzled)
                chunk = xorSwizzleCol(row, chunk, chunks_per_row);
            for (int word = 0; word < 4; word++) {
                addrs.push_back(static_cast<std::uint32_t>(
                    row * row_bytes + chunk * chunk_bytes + word * 4));
            }
        }
        worst = std::max(worst, smemConflictPhases(addrs));
    }
    return worst;
}

} // namespace bitdec::sim
