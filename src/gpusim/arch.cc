#include "gpusim/arch.h"

#include "common/logging.h"

namespace bitdec::sim {

const char*
toString(Generation gen)
{
    switch (gen) {
      case Generation::Ampere:
        return "Ampere";
      case Generation::Ada:
        return "Ada";
      case Generation::Hopper:
        return "Hopper";
      case Generation::Blackwell:
        return "Blackwell";
    }
    return "unknown";
}

double
GpuArch::tcFlops(int bits) const
{
    double peak = tc_fp16_tflops;
    if (bits <= 4 && tc_fp4_tflops > 0)
        peak = tc_fp4_tflops;
    else if (bits <= 8 && tc_fp8_tflops > 0)
        peak = tc_fp8_tflops;
    return peak * 1e12 * tc_efficiency;
}

double
GpuArch::cudaOps() const
{
    // FP16 CUDA-core ops dominate the dequant/FMA mix the kernels model.
    // Datasheet TFLOPS count an FMA as two FLOPs; the op counts in
    // CudaCoreOps count issue slots (FMA = 1), so halve the peak.
    const double tflops =
        cuda_fp16_tflops > 0 ? cuda_fp16_tflops : cuda_fp32_tflops;
    return tflops * 1e12 / 2.0 * cuda_efficiency;
}

namespace {

GpuArch
makeA100()
{
    GpuArch a;
    a.name = "A100";
    a.generation = Generation::Ampere;
    a.num_sms = 108;
    a.clock_ghz = 1.41;
    a.dram_gbs = 2039.0;
    a.dram_efficiency = 0.83;
    a.l2_mb = 40.0;
    a.hbm_gb = 40.0; // SXM4-40GB, the configuration the e2e experiments use
    a.tc_fp16_tflops = 312.0;
    a.tc_fp8_tflops = 0.0;
    a.tc_fp4_tflops = 0.0;
    a.cuda_fp32_tflops = 19.5;
    a.cuda_fp16_tflops = 78.0;
    a.tc_efficiency = 0.62;
    a.cuda_efficiency = 0.70;
    a.smem_kb_per_sm = 164.0;
    a.smem_bytes_per_clk = 128.0;
    a.max_warps_per_sm = 64;
    a.launch_overhead_us = 3.2;
    a.has_cp_async = true;
    a.has_wgmma = false;
    a.has_tma = false;
    a.has_mxfp4_mma = false;
    return a;
}

GpuArch
makeRTX4090()
{
    GpuArch a;
    a.name = "RTX4090";
    a.generation = Generation::Ada;
    a.num_sms = 128;
    a.clock_ghz = 2.52;
    a.dram_gbs = 1008.0;
    a.dram_efficiency = 0.85;
    a.l2_mb = 72.0;
    a.hbm_gb = 24.0;
    a.tc_fp16_tflops = 165.2;
    a.tc_fp8_tflops = 330.3;
    a.tc_fp4_tflops = 0.0;
    a.cuda_fp32_tflops = 82.6;
    a.cuda_fp16_tflops = 82.6;
    a.tc_efficiency = 0.60;
    a.cuda_efficiency = 0.72;
    a.smem_kb_per_sm = 100.0;
    a.smem_bytes_per_clk = 128.0;
    a.max_warps_per_sm = 48;
    a.launch_overhead_us = 2.8;
    a.has_cp_async = true;
    a.has_wgmma = false;
    a.has_tma = false;
    a.has_mxfp4_mma = false;
    return a;
}

GpuArch
makeH100()
{
    GpuArch a;
    a.name = "H100";
    a.generation = Generation::Hopper;
    a.num_sms = 132;
    a.clock_ghz = 1.83;
    a.dram_gbs = 3352.0;
    a.dram_efficiency = 0.83;
    a.l2_mb = 50.0;
    a.hbm_gb = 80.0;
    a.tc_fp16_tflops = 989.4;
    a.tc_fp8_tflops = 1978.9;
    a.tc_fp4_tflops = 0.0;
    a.cuda_fp32_tflops = 66.9;
    a.cuda_fp16_tflops = 133.8;
    a.tc_efficiency = 0.55;
    a.cuda_efficiency = 0.70;
    a.smem_kb_per_sm = 228.0;
    a.smem_bytes_per_clk = 128.0;
    a.max_warps_per_sm = 64;
    a.launch_overhead_us = 3.0;
    a.has_cp_async = true;
    a.has_wgmma = true;
    a.has_tma = true;
    a.has_mxfp4_mma = false;
    return a;
}

GpuArch
makeRTX5090()
{
    GpuArch a;
    a.name = "RTX5090";
    a.generation = Generation::Blackwell;
    a.num_sms = 170;
    a.clock_ghz = 2.41;
    a.dram_gbs = 1792.0;
    a.dram_efficiency = 0.85;
    a.l2_mb = 96.0;
    a.hbm_gb = 32.0;
    a.tc_fp16_tflops = 209.5;
    a.tc_fp8_tflops = 419.0;
    a.tc_fp4_tflops = 838.0;
    a.cuda_fp32_tflops = 104.8;
    a.cuda_fp16_tflops = 104.8;
    a.tc_efficiency = 0.60;
    a.cuda_efficiency = 0.72;
    a.smem_kb_per_sm = 100.0;
    a.smem_bytes_per_clk = 128.0;
    a.max_warps_per_sm = 48;
    a.launch_overhead_us = 2.6;
    a.has_cp_async = true;
    a.has_wgmma = false;
    a.has_tma = true;
    a.has_mxfp4_mma = true;
    return a;
}

GpuArch
makeRTXPro6000()
{
    GpuArch a;
    a.name = "RTXPro6000";
    a.generation = Generation::Blackwell;
    a.num_sms = 188;
    a.clock_ghz = 2.45;
    a.dram_gbs = 1792.0;
    a.dram_efficiency = 0.85;
    a.l2_mb = 128.0;
    a.hbm_gb = 96.0;
    a.tc_fp16_tflops = 251.9;
    a.tc_fp8_tflops = 503.8;
    a.tc_fp4_tflops = 1007.0;
    a.cuda_fp32_tflops = 125.9;
    a.cuda_fp16_tflops = 125.9;
    a.tc_efficiency = 0.60;
    a.cuda_efficiency = 0.72;
    a.smem_kb_per_sm = 100.0;
    a.smem_bytes_per_clk = 128.0;
    a.max_warps_per_sm = 48;
    a.launch_overhead_us = 2.6;
    a.has_cp_async = true;
    a.has_wgmma = false;
    a.has_tma = true;
    a.has_mxfp4_mma = true;
    return a;
}

} // namespace

const GpuArch&
archA100()
{
    static const GpuArch a = makeA100();
    return a;
}

const GpuArch&
archRTX4090()
{
    static const GpuArch a = makeRTX4090();
    return a;
}

const GpuArch&
archH100()
{
    static const GpuArch a = makeH100();
    return a;
}

const GpuArch&
archRTX5090()
{
    static const GpuArch a = makeRTX5090();
    return a;
}

const GpuArch&
archRTXPro6000()
{
    static const GpuArch a = makeRTXPro6000();
    return a;
}

const GpuArch&
archByName(const std::string& name)
{
    if (name == "A100")
        return archA100();
    if (name == "RTX4090")
        return archRTX4090();
    if (name == "H100")
        return archH100();
    if (name == "RTX5090")
        return archRTX5090();
    if (name == "RTXPro6000")
        return archRTXPro6000();
    BITDEC_FATAL("unknown GPU architecture: ", name);
}

} // namespace bitdec::sim
