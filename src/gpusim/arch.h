/**
 * @file
 * GPU architecture descriptions used by the timing model.
 *
 * Each GpuArch captures the first-order performance characteristics of a
 * real device: DRAM bandwidth, Tensor-Core and CUDA-core peak throughput,
 * SM count, shared-memory bandwidth, and which instruction families
 * (cp.async, wgmma/TMA, native MXFP4 MMA) are available. Peak numbers come
 * from vendor datasheets; effective-efficiency factors account for what
 * tuned kernels typically sustain.
 */
#ifndef BITDEC_GPUSIM_ARCH_H
#define BITDEC_GPUSIM_ARCH_H

#include <string>

namespace bitdec::sim {

/** GPU hardware generations relevant to the paper's evaluation. */
enum class Generation
{
    Ampere,   //!< SM80: mma + cp.async (A100)
    Ada,      //!< SM89: Ampere ISA with bigger L2 (RTX 4090)
    Hopper,   //!< SM90: wgmma + TMA + warp specialization (H100)
    Blackwell //!< SM100/SM120: native MXFP4/NVFP4 MMA (RTX 5090, RTX PRO 6000)
};

/** Returns a printable generation name. */
const char* toString(Generation gen);

/** Static description of one GPU model. */
struct GpuArch
{
    std::string name;          //!< marketing name, e.g. "A100"
    Generation generation;     //!< ISA generation

    int num_sms;               //!< streaming multiprocessors
    double clock_ghz;          //!< sustained SM clock
    double dram_gbs;           //!< peak DRAM bandwidth, GB/s
    double dram_efficiency;    //!< fraction of peak a tuned kernel sustains
    double l2_mb;              //!< L2 capacity, MB
    double hbm_gb;             //!< device memory capacity, GB

    double tc_fp16_tflops;     //!< dense Tensor-Core FP16 w/ FP32 accumulate
    double tc_fp8_tflops;      //!< dense FP8 Tensor-Core rate (0 if absent)
    double tc_fp4_tflops;      //!< dense FP4/MXFP4 rate (0 if absent)
    double cuda_fp32_tflops;   //!< CUDA-core FP32 FMA throughput
    double cuda_fp16_tflops;   //!< CUDA-core FP16 throughput (non-TC)
    double tc_efficiency;      //!< sustained fraction of TC peak in attention
    double cuda_efficiency;    //!< sustained fraction of CUDA-core peak

    double smem_kb_per_sm;     //!< shared memory per SM, KB
    double smem_bytes_per_clk; //!< shared bytes/cycle/SM (bank width total)
    int max_warps_per_sm;      //!< resident warp limit

    double launch_overhead_us; //!< per-kernel-launch host+device overhead

    bool has_cp_async;         //!< SM80+ asynchronous global->shared copies
    bool has_wgmma;            //!< SM90 warpgroup MMA (B operand from SMEM)
    bool has_tma;              //!< SM90 tensor memory accelerator
    bool has_mxfp4_mma;        //!< SM100/120 block-scaled FP4 MMA

    /** Effective DRAM bandwidth in bytes per second. */
    double dramBytesPerSec() const { return dram_gbs * 1e9 * dram_efficiency; }

    /** Effective Tensor-Core FLOP/s for the given operand precision. */
    double tcFlops(int bits) const;

    /** Effective CUDA-core scalar-op throughput (ops/s, FMA = 1 op). */
    double cudaOps() const;
};

/** Returns the preset for NVIDIA A100-SXM4-80GB. */
const GpuArch& archA100();

/** Returns the preset for NVIDIA GeForce RTX 4090. */
const GpuArch& archRTX4090();

/** Returns the preset for NVIDIA H100-SXM5. */
const GpuArch& archH100();

/** Returns the preset for NVIDIA GeForce RTX 5090. */
const GpuArch& archRTX5090();

/** Returns the preset for NVIDIA RTX PRO 6000 (Blackwell). */
const GpuArch& archRTXPro6000();

/** Looks an architecture up by name; fatal on unknown names. */
const GpuArch& archByName(const std::string& name);

} // namespace bitdec::sim

#endif // BITDEC_GPUSIM_ARCH_H
