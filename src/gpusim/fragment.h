/**
 * @file
 * PTX Tensor-Core fragment layouts and warp-level functional MMA emulation.
 *
 * The layout-induction technique at the heart of BitDecoding is a statement
 * about *which thread owns which matrix element* for a given instruction.
 * This module encodes the documented thread<->value mappings of
 * mma.sync.m16n8k16 / m16n8k8 and ldmatrix, and provides a functional MMA
 * that computes on the values threads actually hold. If registers hold
 * values at the wrong coordinates, the emulated MMA produces exactly the
 * wrong results hardware would — which is what the paper's "invalid layout"
 * failure mode looks like (Fig. 3).
 */
#ifndef BITDEC_GPUSIM_FRAGMENT_H
#define BITDEC_GPUSIM_FRAGMENT_H

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/half.h"
#include "common/tensor.h"

namespace bitdec::sim {

/** Number of lanes per warp on every modeled architecture. */
constexpr int kWarpSize = 32;

/** MMA instruction shapes used by the kernels. */
enum class MmaShape
{
    M16N8K8,  //!< mma.sync.aligned.m16n8k8.f16
    M16N8K16, //!< mma.sync.aligned.m16n8k16.f16 (the workhorse)
};

/** Operand roles within an MMA. */
enum class Operand { A, B, C };

/** A (row, col) coordinate inside a fragment tile. */
struct Coord
{
    int row;
    int col;

    bool operator==(const Coord&) const = default;
};

/**
 * Thread<->value mapping of one MMA operand fragment.
 *
 * coordOf() follows the PTX ISA tables: lanes are split into groups of four
 * (groupId = lane / 4, tig = lane % 4); each lane owns eltsPerLane()
 * 16-bit elements at instruction-defined interleaved coordinates.
 */
class FragmentLayout
{
  public:
    /** Builds the layout for @p op of instruction @p shape. */
    FragmentLayout(MmaShape shape, Operand op);

    /** Fragment tile height (rows of the logical matrix operand). */
    int rows() const { return rows_; }

    /** Fragment tile width. */
    int cols() const { return cols_; }

    /** Number of 16-bit elements each lane owns. */
    int eltsPerLane() const { return elts_per_lane_; }

    /** Instruction shape this layout describes. */
    MmaShape shape() const { return shape_; }

    /** Operand role this layout describes. */
    Operand operand() const { return op_; }

    /** Matrix coordinate held by (lane, elt). */
    Coord coordOf(int lane, int elt) const;

    /** Inverse mapping: which (lane, elt) holds coordinate (row, col). */
    std::pair<int, int> laneOf(int row, int col) const;

  private:
    MmaShape shape_;
    Operand op_;
    int rows_;
    int cols_;
    int elts_per_lane_;
};

/**
 * Values of one fragment across a warp: frag[lane][elt].
 *
 * @tparam T element type (Half for data fragments, float for accumulators).
 */
template <typename T>
using WarpFragment = std::vector<std::array<T, 8>>;

/** Allocates a zeroed warp fragment able to hold @p elts per lane. */
template <typename T>
WarpFragment<T>
makeFragment()
{
    return WarpFragment<T>(kWarpSize);
}

/**
 * Functional ldmatrix: loads an 8x8 tile of 16-bit values from a row-major
 * source into per-lane registers using the documented mapping
 * (lane i holds (row = i/4, col = 2*(i%4) + {0,1})).
 *
 * @param src        source tensor (rows x cols), e.g. a shared-memory tile
 * @param row0,col0  top-left corner of the 8x8 tile
 * @param trans      ldmatrix.trans: transposes the tile while loading
 * @param lane_vals  output: two 16-bit values per lane
 */
void ldmatrix8x8(const Tensor<Half>& src, int row0, int col0, bool trans,
                 std::array<std::array<Half, 2>, kWarpSize>& lane_vals);

/**
 * Loads an MMA operand fragment from a row-major tile via repeated
 * ldmatrix-style mapping, producing registers that satisfy the documented
 * mma.sync layout for that operand.
 *
 * @param layout fragment layout to satisfy
 * @param src    source tile; must be at least layout.rows() x layout.cols()
 *               starting at (row0, col0)
 */
WarpFragment<Half> loadFragment(const FragmentLayout& layout,
                                const Tensor<Half>& src, int row0, int col0);

/**
 * Stores an accumulator fragment back to a row-major tile using the C
 * layout (the inverse of loadFragment for Operand::C).
 */
void storeAccumFragment(const FragmentLayout& layout,
                        const WarpFragment<float>& frag, Tensor<float>& dst,
                        int row0, int col0);

/**
 * Functional mma.sync: D = A * B + C, computed from the values each lane
 * holds, interpreted through the instruction's layout. Accumulation is
 * FP32, matching mma.sync.*.f32.f16.f16.f32.
 *
 * The multiply reconstructs the logical operands via the layouts; callers
 * that populated registers in the wrong order get wrong products, exactly
 * as on hardware.
 */
WarpFragment<float> mmaSync(MmaShape shape, const WarpFragment<Half>& a,
                            const WarpFragment<Half>& b,
                            const WarpFragment<float>& c);

/**
 * Reconstructs the logical matrix an operand fragment represents.
 * Used by tests to check layout alignment element-by-element.
 */
Tensor<Half> fragmentToMatrix(const FragmentLayout& layout,
                              const WarpFragment<Half>& frag);

} // namespace bitdec::sim

#endif // BITDEC_GPUSIM_FRAGMENT_H
