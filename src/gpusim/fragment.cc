#include "gpusim/fragment.h"

#include "common/logging.h"

namespace bitdec::sim {

FragmentLayout::FragmentLayout(MmaShape shape, Operand op)
    : shape_(shape), op_(op), rows_(0), cols_(0), elts_per_lane_(0)
{
    switch (shape) {
      case MmaShape::M16N8K8:
        switch (op) {
          case Operand::A:
            rows_ = 16;
            cols_ = 8;
            elts_per_lane_ = 4;
            break;
          case Operand::B:
            rows_ = 8;
            cols_ = 8;
            elts_per_lane_ = 2;
            break;
          case Operand::C:
            rows_ = 16;
            cols_ = 8;
            elts_per_lane_ = 4;
            break;
        }
        break;
      case MmaShape::M16N8K16:
        switch (op) {
          case Operand::A:
            rows_ = 16;
            cols_ = 16;
            elts_per_lane_ = 8;
            break;
          case Operand::B:
            rows_ = 16;
            cols_ = 8;
            elts_per_lane_ = 4;
            break;
          case Operand::C:
            rows_ = 16;
            cols_ = 8;
            elts_per_lane_ = 4;
            break;
        }
        break;
    }
}

Coord
FragmentLayout::coordOf(int lane, int elt) const
{
    BITDEC_ASSERT(lane >= 0 && lane < kWarpSize, "lane out of range");
    BITDEC_ASSERT(elt >= 0 && elt < elts_per_lane_, "element out of range");

    const int group = lane / 4; // 0..7
    const int tig = lane % 4;   // thread index within the group

    if (op_ == Operand::A) {
        // a0,a1 cover (group, 2*tig + {0,1}); a2,a3 the +8-row copy;
        // for k16, a4..a7 repeat the pattern at col + 8.
        const int pair = elt / 2;      // which (row, k-block) quadrant
        const int within = elt % 2;    // low/high half of the 32-bit reg
        const int row = group + (pair % 2) * 8;
        const int col = tig * 2 + within + (pair / 2) * 8;
        return {row, col};
    }
    if (op_ == Operand::B) {
        // b0,b1 cover rows 2*tig + {0,1} of column 'group'; for k16,
        // b2,b3 cover the +8-row copy.
        const int row = tig * 2 + (elt % 2) + (elt / 2) * 8;
        const int col = group;
        return {row, col};
    }
    // C/D accumulator: c0,c1 at (group, 2*tig + {0,1}); c2,c3 at row + 8.
    const int row = group + (elt / 2) * 8;
    const int col = tig * 2 + (elt % 2);
    return {row, col};
}

std::pair<int, int>
FragmentLayout::laneOf(int row, int col) const
{
    BITDEC_ASSERT(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                  "fragment coordinate out of range");
    // Fragments are small; invert by search. Tests check bijectivity.
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int elt = 0; elt < elts_per_lane_; elt++) {
            const Coord c = coordOf(lane, elt);
            if (c.row == row && c.col == col)
                return {lane, elt};
        }
    }
    BITDEC_PANIC("fragment layout does not cover coordinate (", row, ",", col,
                 ")");
}

void
ldmatrix8x8(const Tensor<Half>& src, int row0, int col0, bool trans,
            std::array<std::array<Half, 2>, kWarpSize>& lane_vals)
{
    for (int lane = 0; lane < kWarpSize; lane++) {
        const int r = lane / 4;
        const int c = (lane % 4) * 2;
        for (int e = 0; e < 2; e++) {
            int rr = r;
            int cc = c + e;
            if (trans)
                std::swap(rr, cc);
            lane_vals[static_cast<std::size_t>(lane)]
                     [static_cast<std::size_t>(e)] =
                src.at(static_cast<std::size_t>(row0 + rr),
                       static_cast<std::size_t>(col0 + cc));
        }
    }
}

WarpFragment<Half>
loadFragment(const FragmentLayout& layout, const Tensor<Half>& src, int row0,
             int col0)
{
    WarpFragment<Half> frag = makeFragment<Half>();
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int elt = 0; elt < layout.eltsPerLane(); elt++) {
            const Coord c = layout.coordOf(lane, elt);
            frag[static_cast<std::size_t>(lane)]
                [static_cast<std::size_t>(elt)] =
                src.at(static_cast<std::size_t>(row0 + c.row),
                       static_cast<std::size_t>(col0 + c.col));
        }
    }
    return frag;
}

void
storeAccumFragment(const FragmentLayout& layout, const WarpFragment<float>& frag,
                   Tensor<float>& dst, int row0, int col0)
{
    BITDEC_ASSERT(layout.operand() == Operand::C,
                  "accumulator store requires a C layout");
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int elt = 0; elt < layout.eltsPerLane(); elt++) {
            const Coord c = layout.coordOf(lane, elt);
            dst.at(static_cast<std::size_t>(row0 + c.row),
                   static_cast<std::size_t>(col0 + c.col)) =
                frag[static_cast<std::size_t>(lane)]
                    [static_cast<std::size_t>(elt)];
        }
    }
}

WarpFragment<float>
mmaSync(MmaShape shape, const WarpFragment<Half>& a, const WarpFragment<Half>& b,
        const WarpFragment<float>& c)
{
    const FragmentLayout la(shape, Operand::A);
    const FragmentLayout lb(shape, Operand::B);
    const FragmentLayout lc(shape, Operand::C);

    const int m = la.rows();
    const int k = la.cols();
    const int n = lb.cols();

    // Reconstruct the logical operands from what lanes actually hold.
    Tensor<float> ma({static_cast<std::size_t>(m), static_cast<std::size_t>(k)});
    Tensor<float> mb({static_cast<std::size_t>(k), static_cast<std::size_t>(n)});
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int elt = 0; elt < la.eltsPerLane(); elt++) {
            const Coord co = la.coordOf(lane, elt);
            ma.at(static_cast<std::size_t>(co.row),
                  static_cast<std::size_t>(co.col)) =
                a[static_cast<std::size_t>(lane)]
                 [static_cast<std::size_t>(elt)].toFloat();
        }
        for (int elt = 0; elt < lb.eltsPerLane(); elt++) {
            const Coord co = lb.coordOf(lane, elt);
            mb.at(static_cast<std::size_t>(co.row),
                  static_cast<std::size_t>(co.col)) =
                b[static_cast<std::size_t>(lane)]
                 [static_cast<std::size_t>(elt)].toFloat();
        }
    }

    WarpFragment<float> d = makeFragment<float>();
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int elt = 0; elt < lc.eltsPerLane(); elt++) {
            const Coord co = lc.coordOf(lane, elt);
            float acc = c[static_cast<std::size_t>(lane)]
                         [static_cast<std::size_t>(elt)];
            for (int kk = 0; kk < k; kk++) {
                acc += ma.at(static_cast<std::size_t>(co.row),
                             static_cast<std::size_t>(kk)) *
                       mb.at(static_cast<std::size_t>(kk),
                             static_cast<std::size_t>(co.col));
            }
            d[static_cast<std::size_t>(lane)][static_cast<std::size_t>(elt)] =
                acc;
        }
    }
    return d;
}

Tensor<Half>
fragmentToMatrix(const FragmentLayout& layout, const WarpFragment<Half>& frag)
{
    Tensor<Half> m({static_cast<std::size_t>(layout.rows()),
                    static_cast<std::size_t>(layout.cols())});
    for (int lane = 0; lane < kWarpSize; lane++) {
        for (int elt = 0; elt < layout.eltsPerLane(); elt++) {
            const Coord c = layout.coordOf(lane, elt);
            m.at(static_cast<std::size_t>(c.row),
                 static_cast<std::size_t>(c.col)) =
                frag[static_cast<std::size_t>(lane)]
                    [static_cast<std::size_t>(elt)];
        }
    }
    return m;
}

} // namespace bitdec::sim
