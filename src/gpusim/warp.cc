#include "gpusim/warp.h"

namespace bitdec::sim {

std::uint32_t
ballot(const WarpVar<bool>& pred)
{
    std::uint32_t mask = 0;
    for (int lane = 0; lane < kWarpSize; lane++) {
        if (pred[static_cast<std::size_t>(lane)])
            mask |= 1u << lane;
    }
    return mask;
}

} // namespace bitdec::sim
