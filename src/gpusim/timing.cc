#include "gpusim/timing.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bitdec::sim {

CudaCoreOps&
CudaCoreOps::operator+=(const CudaCoreOps& o)
{
    fma += o.fma;
    alu += o.alu;
    sfu += o.sfu;
    return *this;
}

double
warpOverlapEfficiency(int wn)
{
    if (wn <= 1)
        return 0.0;
    // Each extra independent warp gives the scheduler another instruction
    // stream to hide dequantization latency behind MMA/memory. Saturates
    // quickly, as observed on hardware (Table III: 4 warps recover most).
    return static_cast<double>(wn - 1) / static_cast<double>(wn);
}

KernelTiming
resolveKernel(const GpuArch& arch, const KernelWorkload& wl)
{
    BITDEC_ASSERT(wl.ctas >= 1, "kernel must launch at least one CTA");
    KernelTiming t;

    // --- Occupancy: how much of the chip the launch covers. -------------
    // A decode CTA of W warps occupies one SM slice; fewer CTAs than SMs
    // leaves SMs idle and scales achievable compute/smem throughput.
    const double cta_cover =
        std::min(1.0, static_cast<double>(wl.ctas) /
                          static_cast<double>(arch.num_sms));
    // Very small CTAs (few warps) cannot saturate an SM's issue slots.
    const double warp_cover =
        std::min(1.0, static_cast<double>(wl.warps_per_cta) / 4.0);
    t.occupancy = cta_cover;

    // --- Standalone pipe times. -----------------------------------------
    const double dram_bytes = wl.dram_read_bytes + wl.dram_write_bytes;
    t.t_dram_s = dram_bytes * std::max(1.0, wl.dram_derate) /
                 arch.dramBytesPerSec();

    const double tc_rate_scale = std::max(1e-3, cta_cover * warp_cover);
    double t_tc = 0;
    if (wl.tc_flops_fp16 > 0)
        t_tc += wl.tc_flops_fp16 / (arch.tcFlops(16) * tc_rate_scale);
    if (wl.tc_flops_lowbit > 0) {
        t_tc += wl.tc_flops_lowbit /
                (arch.tcFlops(wl.lowbit_width) * tc_rate_scale);
    }
    t.t_tc_s = t_tc;

    const double cuda_rate = arch.cudaOps() * std::max(1e-3, cta_cover);
    t.t_cuda_s = wl.cuda.weighted() / cuda_rate;

    const double smem_rate = arch.smem_bytes_per_clk * arch.clock_ghz * 1e9 *
                             arch.num_sms * std::max(1e-3, cta_cover);
    t.t_smem_s = wl.smem_bytes * wl.smem_conflict_factor / smem_rate;

    // --- Overlap model. ---------------------------------------------------
    // DRAM, Tensor-Core and shared-memory traffic pipeline against each
    // other via cp.async / ldmatrix double buffering; CUDA-core work hides
    // behind them only to the extent the warp layout provides independent
    // warps (the paper's Wn insight).
    const double t_parallel =
        wl.serialize_pipes ? (t.t_dram_s + t.t_tc_s + t.t_smem_s)
                           : std::max({t.t_dram_s, t.t_tc_s, t.t_smem_s});

    const double overlap = warpOverlapEfficiency(wl.wn) *
                           std::clamp(wl.overlappable_cuda_fraction, 0.0, 1.0);
    const double cuda_hidable = t.t_cuda_s * overlap;
    const double cuda_hidden = std::min(cuda_hidable, t_parallel);
    t.exposed_cuda_s = t.t_cuda_s - cuda_hidden;

    const double body = t_parallel + t.exposed_cuda_s;
    t.total_s = body * (1.0 + wl.pipeline_fill_overhead);

    // --- Utilization statistics (for Figs. 4b / 15 / Table III). ---------
    if (t.total_s > 0) {
        // Fraction of the chip's peak Tensor-Core rate actually used:
        // busy time re-scaled by the launch's achievable rate fraction.
        t.tc_utilization = t.t_tc_s * tc_rate_scale / t.total_s;
        t.mem_bw_utilization = t.t_dram_s / t.total_s;
        t.cuda_utilization = t.t_cuda_s / t.total_s;
        // Stall time the memory system is responsible for: the part of the
        // critical path where neither compute pipe has work queued.
        const double compute_busy = std::max(t.t_tc_s, cuda_hidden);
        t.mem_stall_frac =
            std::max(0.0, t_parallel - compute_busy) / t.total_s;
    }
    return t;
}

SequenceTiming
resolveSequence(const GpuArch& arch, const std::vector<KernelWorkload>& kernels)
{
    SequenceTiming seq;
    for (const auto& wl : kernels) {
        seq.kernels.push_back(resolveKernel(arch, wl));
        seq.total_s += seq.kernels.back().total_s;
    }
    seq.launch_overhead_s =
        static_cast<double>(kernels.size()) * arch.launch_overhead_us * 1e-6;
    seq.total_s += seq.launch_overhead_s;
    return seq;
}

double
SequenceTiming::tcUtilization() const
{
    double busy = 0;
    for (const auto& k : kernels)
        busy += k.tc_utilization * k.total_s;
    return total_s > 0 ? busy / total_s : 0;
}

double
SequenceTiming::memUtilization() const
{
    double busy = 0;
    for (const auto& k : kernels)
        busy += k.mem_bw_utilization * k.total_s;
    return total_s > 0 ? busy / total_s : 0;
}

} // namespace bitdec::sim
