/**
 * @file
 * Bit-exact emulation of the PTX scalar bit-manipulation instructions the
 * fast-dequantization path relies on: lop3.b32 (arbitrary three-input
 * boolean LUT) and prmt.b32 (byte permute).
 */
#ifndef BITDEC_GPUSIM_BITOPS_H
#define BITDEC_GPUSIM_BITOPS_H

#include <cstdint>

namespace bitdec::sim {

/**
 * PTX lop3.b32: applies an arbitrary 3-input boolean function.
 *
 * The immediate @p lut is built exactly like on device: for inputs with
 * canonical values ta=0xF0, tb=0xCC, tc=0xAA, the LUT byte for a desired
 * expression f(a,b,c) is f(0xF0, 0xCC, 0xAA).
 *
 * @param a first operand
 * @param b second operand
 * @param c third operand
 * @param lut 8-bit truth table
 * @return bitwise result
 */
constexpr std::uint32_t
lop3(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint8_t lut)
{
    std::uint32_t out = 0;
    for (int bit = 0; bit < 32; bit++) {
        const std::uint32_t idx = (((a >> bit) & 1u) << 2) |
                                  (((b >> bit) & 1u) << 1) |
                                  ((c >> bit) & 1u);
        // LUT bit ordering follows the (0xF0, 0xCC, 0xAA) convention:
        // index built from (a,b,c) selects bit 'idx' of the table.
        out |= ((static_cast<std::uint32_t>(lut) >> idx) & 1u) << bit;
    }
    return out;
}

/** Builds a lop3 LUT immediate from canonical operand masks at compile time. */
constexpr std::uint8_t kLop3A = 0xF0;
constexpr std::uint8_t kLop3B = 0xCC;
constexpr std::uint8_t kLop3C = 0xAA;

/** LUT for (a & b) | c — the mask-then-merge idiom used in fast dequant. */
constexpr std::uint8_t kLutAndOr = (kLop3A & kLop3B) | kLop3C;

/**
 * PTX prmt.b32 (default mode): selects four bytes out of the eight bytes
 * of {lo = a, hi = b} according to the four nibble selectors in @p sel.
 * Selector bit 3 (0x8) replicates the sign bit of the chosen byte.
 */
std::uint32_t prmt(std::uint32_t a, std::uint32_t b, std::uint32_t sel);

/** Funnel shift right: (hi:lo) >> shift, low 32 bits (PTX shf.r.clamp). */
std::uint32_t funnelShiftR(std::uint32_t lo, std::uint32_t hi, unsigned shift);

} // namespace bitdec::sim

#endif // BITDEC_GPUSIM_BITOPS_H
