/**
 * @file
 * Shared-memory bank model with XOR swizzling.
 *
 * Models the 32-bank, 4-byte-per-bank shared memory of every NVIDIA
 * generation this library targets. Used to (i) verify that the Packing
 * Kernel's swizzled layouts are conflict-free (Eq. 2 in the paper:
 * col' = row ^ col) and (ii) feed the bank-conflict factor of the
 * timing model.
 */
#ifndef BITDEC_GPUSIM_SHARED_MEMORY_H
#define BITDEC_GPUSIM_SHARED_MEMORY_H

#include <cstdint>
#include <vector>

namespace bitdec::sim {

/** Number of shared-memory banks (all modeled generations). */
constexpr int kSmemBanks = 32;

/** Bytes per bank per cycle. */
constexpr int kSmemBankBytes = 4;

/**
 * XOR swizzle of Eq. 2: permutes the column of a (row, col) tile address so
 * that column-strided warp accesses hit distinct banks.
 *
 * @param row       tile row
 * @param col       tile column (in 128-bit / 8-half chunks, as on device)
 * @param col_chunks number of chunks per row (power of two)
 */
int xorSwizzleCol(int row, int col, int col_chunks);

/**
 * Counts the number of shared-memory transaction phases for one warp-wide
 * access: the maximum number of distinct 4-byte words any single bank must
 * serve (1 = conflict free). Accesses to the same word broadcast.
 *
 * @param byte_addrs per-lane byte addresses of a 4-byte access
 */
int smemConflictPhases(const std::vector<std::uint32_t>& byte_addrs);

/**
 * Convenience: phases for a warp reading 16-bit rows of an 8x8 ldmatrix
 * tile from a row-major shared buffer of @p row_bytes bytes per row,
 * optionally applying the XOR swizzle.
 */
int ldmatrixConflictPhases(int row_bytes, bool swizzled);

} // namespace bitdec::sim

#endif // BITDEC_GPUSIM_SHARED_MEMORY_H
