/**
 * @file
 * Wire protocol of the network front end (docs/NETWORK.md).
 *
 * Every message is one length-prefixed frame:
 *
 *     u32  payload_len   (little-endian, <= kMaxFrameBytes)
 *     u8   frame type    (FrameType)
 *     u8[payload_len]    payload, explicit little-endian fields
 *
 * Clients send SUBMIT / CANCEL / STATS; the server answers with HELLO
 * (once, on connect), SUBMIT_OK, a TOKEN stream, DONE or ERROR per
 * request, and STATS_JSON. All integers are serialized little-endian
 * regardless of host order; doubles travel as their IEEE-754 bit
 * pattern in a u64. Strings are u32 length + raw bytes.
 *
 * TOKEN frames carry the term each token folds into the request's
 * output_hash, so a client reproduces the final digest by folding
 * (h = h * 0x100000001B3 ^ fold starting from 0) and can detect any
 * lost or reordered frame by comparing against the DONE digest.
 */
#ifndef BITDEC_NET_PROTOCOL_H
#define BITDEC_NET_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bitdec::net {

/** Protocol revision; HELLO carries it, clients refuse a mismatch. */
constexpr std::uint32_t kProtocolVersion = 1;

/** Hard cap on one frame's payload — a malformed length prefix must
 *  never make the peer allocate unbounded memory. */
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/** Frame types. Client-to-server types are < 64. */
enum class FrameType : std::uint8_t
{
    Submit = 1,     //!< client: run this request
    Cancel = 2,     //!< client: cancel a submitted request
    Stats = 3,      //!< client: send me the ServingMetrics JSON

    Hello = 64,     //!< server: version + engine shape, sent on connect
    SubmitOk = 65,  //!< server: request admitted
    Token = 66,     //!< server: one generated token of one request
    Done = 67,      //!< server: request finished/canceled, final digests
    Error = 68,     //!< server: typed rejection (request- or frame-level)
    StatsJson = 69, //!< server: ServingMetrics::toJson of the live stream
};

/** Typed error codes carried by ERROR frames. */
enum class ErrorCode : std::uint8_t
{
    BadFrame = 1,       //!< unparseable/oversized/unknown frame
    DuplicateId = 2,    //!< request id already used on this server
    UnknownId = 3,      //!< CANCEL for an id the server never saw
    UnknownBackend = 4, //!< SUBMIT named an unregistered backend
    InvalidRequest = 5, //!< inadmissible shape (empty prompt, bad prefix…)
    OverCapacity = 6,   //!< request can never fit the server's page pool
    Busy = 7,           //!< admission cap reached, retry later
    Draining = 8,       //!< server is shutting down, not accepting work
};

/** Printable name of an error code. */
const char* toString(ErrorCode code);

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/** SUBMIT payload: the workload fields of serving::Request plus an
 *  optional backend name the server validates against its own. */
struct SubmitMsg
{
    std::int32_t id = 0;
    double arrival_s = -1; //!< virtual arrival; < 0 = "now" (server clock)
    std::int32_t prompt_tokens = 0;
    std::int32_t output_tokens = 0;
    std::uint64_t prefix_id = 0;
    std::int32_t prefix_tokens = 0;
    std::int32_t priority = 0;
    std::int32_t idle_after_tokens = 0;
    double idle_wake_s = -1;
    double deadline_s = -1;
    std::string backend; //!< "" = accept the server's configured backend
};

/** HELLO payload: enough engine shape for a client to reproduce the
 *  digests in-process (backend + page_size + cache_head_dim determine
 *  attn_hash; output_hash needs none of them). */
struct HelloMsg
{
    std::uint32_t version = kProtocolVersion;
    std::string backend;
    std::int32_t page_size = 0;
    std::int32_t cache_head_dim = 0;
    std::int32_t shards = 1;
};

/** TOKEN payload: one output token of one request. */
struct TokenMsg
{
    std::int32_t request_id = 0;
    std::int32_t index = 0;     //!< 0-based output token index
    std::uint64_t fold = 0;     //!< term folded into output_hash
    std::uint64_t output_hash = 0; //!< running digest after this token
    double clock_s = 0;         //!< virtual time the token appeared
};

/** DONE payload: final state of a request. */
struct DoneMsg
{
    std::int32_t request_id = 0;
    std::uint8_t finished = 0;     //!< 1 = Finished, 0 = Canceled
    std::uint8_t cancel_cause = 0; //!< serving::CancelCause as int
    std::int32_t generated = 0;
    std::uint64_t output_hash = 0;
    std::uint64_t attn_hash = 0;
    double first_token_s = -1;
    double finish_s = -1;
};

/** ERROR payload: typed code + the fail-fast message text. */
struct ErrorMsg
{
    std::int32_t request_id = 0; //!< 0 when not tied to a request
    ErrorCode code = ErrorCode::BadFrame;
    std::string message;
};

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/** Appends little-endian fields to a byte buffer. */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void f64(double v);
    void str(const std::string& s);

    const std::string& bytes() const { return buf_; }

  private:
    std::string buf_;
};

/** Bounds-checked little-endian reads; any overrun latches failed(). */
class WireReader
{
  public:
    WireReader(const char* data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit WireReader(const std::string& payload)
        : WireReader(payload.data(), payload.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    double f64();
    std::string str();

    //! True once any read ran past the payload (or a string length lied).
    bool failed() const { return failed_; }
    //! True when the whole payload was consumed and nothing overran.
    bool complete() const { return !failed_ && pos_ == size_; }

  private:
    const char* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/** Encodes one complete frame (length prefix + type + payload). */
std::string encodeFrame(FrameType type, const std::string& payload);

std::string encodeSubmit(const SubmitMsg& m);
std::string encodeCancel(std::int32_t request_id);
std::string encodeStats();
std::string encodeHello(const HelloMsg& m);
std::string encodeSubmitOk(std::int32_t request_id);
std::string encodeToken(const TokenMsg& m);
std::string encodeDone(const DoneMsg& m);
std::string encodeError(const ErrorMsg& m);
std::string encodeStatsJson(const std::string& json);

//! Each decoder fills @p out from a frame payload; false = malformed
//! (truncated, oversized string, or trailing garbage).
bool decodeSubmit(const std::string& payload, SubmitMsg& out);
bool decodeCancel(const std::string& payload, std::int32_t& request_id);
bool decodeHello(const std::string& payload, HelloMsg& out);
bool decodeSubmitOk(const std::string& payload, std::int32_t& request_id);
bool decodeToken(const std::string& payload, TokenMsg& out);
bool decodeDone(const std::string& payload, DoneMsg& out);
bool decodeError(const std::string& payload, ErrorMsg& out);

/**
 * Incremental frame parser: feed() raw bytes as they arrive, next()
 * pops complete frames in order. A declared payload length above
 * kMaxFrameBytes poisons the stream (bad() stays true; the connection
 * must be dropped — resynchronizing inside a byte stream is guesswork).
 */
class FrameAssembler
{
  public:
    void feed(const char* data, std::size_t size);

    /** Pops the next complete frame. @return false when no complete
     *  frame is buffered (or the stream is poisoned). */
    bool next(FrameType& type, std::string& payload);

    bool bad() const { return bad_; }
    std::size_t buffered() const { return buf_.size(); }

  private:
    std::string buf_;
    bool bad_ = false;
};

/** One fold step of the output-hash chain clients replay from TOKEN
 *  frames: h' = h * 0x100000001B3 ^ fold, starting from h = 0. */
inline std::uint64_t
foldOutputHash(std::uint64_t h, std::uint64_t fold)
{
    return h * 0x100000001B3ull ^ fold;
}

} // namespace bitdec::net

#endif // BITDEC_NET_PROTOCOL_H
