#include "net/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"

namespace bitdec::net {

bool
NetClient::connect(const std::string& host, int port, int max_retries,
                   int retry_delay_ms)
{
    close();
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        warn("net: cannot parse host '", host, "'");
        return false;
    }
    for (int attempt = 0;; attempt++) {
        fd_ = socket(AF_INET, SOCK_STREAM, 0);
        BITDEC_ASSERT(fd_ >= 0, "socket() failed: ", std::strerror(errno));
        if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0)
            break;
        ::close(fd_);
        fd_ = -1;
        if (attempt >= max_retries) {
            warn("net: cannot connect to ", host, ":", port, " after ",
                 attempt + 1, " attempts: ", std::strerror(errno));
            return false;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(retry_delay_ms));
    }

    NetEvent ev;
    if (!readEvent(ev) || ev.type != FrameType::Hello) {
        warn("net: server did not open with HELLO");
        close();
        return false;
    }
    if (hello_.version != kProtocolVersion) {
        warn("net: protocol version mismatch (server ", hello_.version,
             ", client ", kProtocolVersion, ")");
        close();
        return false;
    }
    return true;
}

void
NetClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
NetClient::sendAll(const std::string& bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            close();
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
NetClient::submit(const SubmitMsg& m)
{
    return connected() && sendAll(encodeSubmit(m));
}

bool
NetClient::cancel(std::int32_t request_id)
{
    return connected() && sendAll(encodeCancel(request_id));
}

bool
NetClient::requestStats()
{
    return connected() && sendAll(encodeStats());
}

bool
NetClient::readEvent(NetEvent& ev)
{
    FrameType type;
    std::string payload;
    while (!in_.next(type, payload)) {
        if (in_.bad() || !connected()) {
            close();
            return false;
        }
        char buf[65536];
        const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            close();
            return false;
        }
        in_.feed(buf, static_cast<std::size_t>(n));
    }

    ev = NetEvent{};
    ev.type = type;
    bool ok = true;
    switch (type) {
    case FrameType::Hello:
        ok = decodeHello(payload, hello_);
        break;
    case FrameType::SubmitOk:
        ok = decodeSubmitOk(payload, ev.request_id);
        break;
    case FrameType::Token:
        ok = decodeToken(payload, ev.token);
        if (ok) {
            ev.request_id = ev.token.request_id;
            Fold& f = folds_[ev.token.request_id];
            f.hash = foldOutputHash(f.hash, ev.token.fold);
            f.tokens++;
            if (ev.token.index != f.next_index)
                f.ordered = false;
            f.next_index = ev.token.index + 1;
        }
        break;
    case FrameType::Done:
        ok = decodeDone(payload, ev.done);
        if (ok) {
            ev.request_id = ev.done.request_id;
            Fold& f = folds_[ev.done.request_id];
            f.done = true;
            f.matches = f.ordered && f.tokens == ev.done.generated &&
                        f.hash == ev.done.output_hash;
        }
        break;
    case FrameType::Error:
        ok = decodeError(payload, ev.error);
        if (ok)
            ev.request_id = ev.error.request_id;
        break;
    case FrameType::StatsJson: {
        WireReader r(payload);
        ev.stats_json = r.str();
        ok = r.complete();
        break;
    }
    default:
        ok = false;
        break;
    }
    if (!ok) {
        warn("net: malformed frame of type ", static_cast<int>(type));
        close();
        return false;
    }
    return true;
}

bool
NetClient::streamDigestOk(std::int32_t request_id) const
{
    const auto it = folds_.find(request_id);
    return it != folds_.end() && it->second.done && it->second.matches;
}

int
NetClient::tokensReceived(std::int32_t request_id) const
{
    const auto it = folds_.find(request_id);
    return it == folds_.end() ? 0 : it->second.tokens;
}

} // namespace bitdec::net
