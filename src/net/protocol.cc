#include "net/protocol.h"

#include <cstring>

namespace bitdec::net {

const char*
toString(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadFrame:
        return "BAD_FRAME";
    case ErrorCode::DuplicateId:
        return "DUPLICATE_ID";
    case ErrorCode::UnknownId:
        return "UNKNOWN_ID";
    case ErrorCode::UnknownBackend:
        return "UNKNOWN_BACKEND";
    case ErrorCode::InvalidRequest:
        return "INVALID_REQUEST";
    case ErrorCode::OverCapacity:
        return "OVER_CAPACITY";
    case ErrorCode::Busy:
        return "BUSY";
    case ErrorCode::Draining:
        return "DRAINING";
    }
    return "UNKNOWN";
}

// ---------------------------------------------------------------------
// WireWriter / WireReader
// ---------------------------------------------------------------------

void
WireWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
WireWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
WireWriter::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(const std::string& s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
}

std::uint8_t
WireReader::u8()
{
    if (failed_ || pos_ + 1 > size_) {
        failed_ = true;
        return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t
WireReader::u32()
{
    if (failed_ || pos_ + 4 > size_) {
        failed_ = true;
        return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
WireReader::u64()
{
    if (failed_ || pos_ + 8 > size_) {
        failed_ = true;
        return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

double
WireReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    const std::uint32_t len = u32();
    if (failed_ || len > kMaxFrameBytes || pos_ + len > size_) {
        failed_ = true;
        return "";
    }
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
}

// ---------------------------------------------------------------------
// Frame encoders / decoders
// ---------------------------------------------------------------------

std::string
encodeFrame(FrameType type, const std::string& payload)
{
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.u8(static_cast<std::uint8_t>(type));
    std::string out = w.bytes();
    out.append(payload);
    return out;
}

std::string
encodeSubmit(const SubmitMsg& m)
{
    WireWriter w;
    w.i32(m.id);
    w.f64(m.arrival_s);
    w.i32(m.prompt_tokens);
    w.i32(m.output_tokens);
    w.u64(m.prefix_id);
    w.i32(m.prefix_tokens);
    w.i32(m.priority);
    w.i32(m.idle_after_tokens);
    w.f64(m.idle_wake_s);
    w.f64(m.deadline_s);
    w.str(m.backend);
    return encodeFrame(FrameType::Submit, w.bytes());
}

bool
decodeSubmit(const std::string& payload, SubmitMsg& out)
{
    WireReader r(payload);
    out.id = r.i32();
    out.arrival_s = r.f64();
    out.prompt_tokens = r.i32();
    out.output_tokens = r.i32();
    out.prefix_id = r.u64();
    out.prefix_tokens = r.i32();
    out.priority = r.i32();
    out.idle_after_tokens = r.i32();
    out.idle_wake_s = r.f64();
    out.deadline_s = r.f64();
    out.backend = r.str();
    return r.complete();
}

std::string
encodeCancel(std::int32_t request_id)
{
    WireWriter w;
    w.i32(request_id);
    return encodeFrame(FrameType::Cancel, w.bytes());
}

bool
decodeCancel(const std::string& payload, std::int32_t& request_id)
{
    WireReader r(payload);
    request_id = r.i32();
    return r.complete();
}

std::string
encodeStats()
{
    return encodeFrame(FrameType::Stats, "");
}

std::string
encodeHello(const HelloMsg& m)
{
    WireWriter w;
    w.u32(m.version);
    w.str(m.backend);
    w.i32(m.page_size);
    w.i32(m.cache_head_dim);
    w.i32(m.shards);
    return encodeFrame(FrameType::Hello, w.bytes());
}

bool
decodeHello(const std::string& payload, HelloMsg& out)
{
    WireReader r(payload);
    out.version = r.u32();
    out.backend = r.str();
    out.page_size = r.i32();
    out.cache_head_dim = r.i32();
    out.shards = r.i32();
    return r.complete();
}

std::string
encodeSubmitOk(std::int32_t request_id)
{
    WireWriter w;
    w.i32(request_id);
    return encodeFrame(FrameType::SubmitOk, w.bytes());
}

bool
decodeSubmitOk(const std::string& payload, std::int32_t& request_id)
{
    WireReader r(payload);
    request_id = r.i32();
    return r.complete();
}

std::string
encodeToken(const TokenMsg& m)
{
    WireWriter w;
    w.i32(m.request_id);
    w.i32(m.index);
    w.u64(m.fold);
    w.u64(m.output_hash);
    w.f64(m.clock_s);
    return encodeFrame(FrameType::Token, w.bytes());
}

bool
decodeToken(const std::string& payload, TokenMsg& out)
{
    WireReader r(payload);
    out.request_id = r.i32();
    out.index = r.i32();
    out.fold = r.u64();
    out.output_hash = r.u64();
    out.clock_s = r.f64();
    return r.complete();
}

std::string
encodeDone(const DoneMsg& m)
{
    WireWriter w;
    w.i32(m.request_id);
    w.u8(m.finished);
    w.u8(m.cancel_cause);
    w.i32(m.generated);
    w.u64(m.output_hash);
    w.u64(m.attn_hash);
    w.f64(m.first_token_s);
    w.f64(m.finish_s);
    return encodeFrame(FrameType::Done, w.bytes());
}

bool
decodeDone(const std::string& payload, DoneMsg& out)
{
    WireReader r(payload);
    out.request_id = r.i32();
    out.finished = r.u8();
    out.cancel_cause = r.u8();
    out.generated = r.i32();
    out.output_hash = r.u64();
    out.attn_hash = r.u64();
    out.first_token_s = r.f64();
    out.finish_s = r.f64();
    return r.complete();
}

std::string
encodeError(const ErrorMsg& m)
{
    WireWriter w;
    w.i32(m.request_id);
    w.u8(static_cast<std::uint8_t>(m.code));
    w.str(m.message);
    return encodeFrame(FrameType::Error, w.bytes());
}

bool
decodeError(const std::string& payload, ErrorMsg& out)
{
    WireReader r(payload);
    out.request_id = r.i32();
    out.code = static_cast<ErrorCode>(r.u8());
    out.message = r.str();
    return r.complete();
}

std::string
encodeStatsJson(const std::string& json)
{
    WireWriter w;
    w.str(json);
    return encodeFrame(FrameType::StatsJson, w.bytes());
}

// ---------------------------------------------------------------------
// FrameAssembler
// ---------------------------------------------------------------------

void
FrameAssembler::feed(const char* data, std::size_t size)
{
    if (bad_)
        return;
    buf_.append(data, size);
}

bool
FrameAssembler::next(FrameType& type, std::string& payload)
{
    if (bad_ || buf_.size() < 5)
        return false;
    WireReader r(buf_.data(), buf_.size());
    const std::uint32_t len = r.u32();
    if (len > kMaxFrameBytes) {
        bad_ = true; // poisoned: a byte stream cannot be resynchronized
        return false;
    }
    if (buf_.size() < 5u + len)
        return false;
    type = static_cast<FrameType>(static_cast<std::uint8_t>(buf_[4]));
    payload.assign(buf_, 5, len);
    buf_.erase(0, 5u + len);
    return true;
}

} // namespace bitdec::net
