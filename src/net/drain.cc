#include "net/drain.h"

#include <atomic>
#include <csignal>

namespace bitdec::net {

namespace {

std::atomic<bool> g_drain{false};

extern "C" void
onDrainSignal(int)
{
    // Async-signal-safe: set the flag, then restore the default
    // disposition so a second signal terminates a stuck drain.
    g_drain.store(true, std::memory_order_relaxed);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}

} // namespace

void
installDrainSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onDrainSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // interrupt blocking calls (poll) with EINTR
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
drainRequested()
{
    return g_drain.load(std::memory_order_relaxed);
}

void
requestDrainFlag()
{
    g_drain.store(true, std::memory_order_relaxed);
}

void
resetDrainFlag()
{
    g_drain.store(false, std::memory_order_relaxed);
}

} // namespace bitdec::net
