/**
 * @file
 * NetClient: the wire twin of ServingClient for drivers on the other
 * end of a socket.
 *
 * Blocking, single-connection: connect() (with retry while the server
 * is still binding), then interleave submit()/cancel()/requestStats()
 * with readEvent() — every server frame surfaces as one NetEvent. The
 * client folds each request's TOKEN stream through foldOutputHash and
 * compares against the DONE digest, so a dropped or reordered frame is
 * detected as a digest mismatch (streamDigestOk) rather than silently
 * accepted.
 */
#ifndef BITDEC_NET_CLIENT_H
#define BITDEC_NET_CLIENT_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/protocol.h"

namespace bitdec::net {

/** One decoded server frame. Only the member matching `type` is set. */
struct NetEvent
{
    FrameType type = FrameType::Hello;
    std::int32_t request_id = 0; //!< SubmitOk (and convenience for others)
    TokenMsg token;
    DoneMsg done;
    ErrorMsg error;
    std::string stats_json;
};

/** Blocking framed-protocol client over one TCP connection. */
class NetClient
{
  public:
    NetClient() = default;
    ~NetClient() { close(); }

    NetClient(const NetClient&) = delete;
    NetClient& operator=(const NetClient&) = delete;

    /**
     * Connects and reads the server HELLO. Retries a refused
     * connection (server still starting) every @p retry_delay_ms up to
     * @p max_retries times. @return false when the server never
     * answered or spoke the wrong protocol version.
     */
    bool connect(const std::string& host, int port, int max_retries = 50,
                 int retry_delay_ms = 100);

    bool connected() const { return fd_ >= 0; }
    const HelloMsg& hello() const { return hello_; }

    bool submit(const SubmitMsg& m);
    bool cancel(std::int32_t request_id);
    bool requestStats();

    /**
     * Blocks for the next server frame. TOKEN frames also advance the
     * request's client-side digest fold; DONE frames record whether the
     * fold matches the server's digest. @return false on EOF or a
     * malformed frame (the connection is closed either way).
     */
    bool readEvent(NetEvent& ev);

    /**
     * True when the folded TOKEN stream of @p request_id reproduced the
     * output_hash its DONE frame carried — the end-to-end proof that no
     * frame was lost or reordered. Canceled requests compare the fold
     * of the tokens that did arrive. False before DONE.
     */
    bool streamDigestOk(std::int32_t request_id) const;

    /** Tokens received so far for a request (0 when unknown). */
    int tokensReceived(std::int32_t request_id) const;

    void close();

  private:
    bool sendAll(const std::string& bytes);

    int fd_ = -1;
    HelloMsg hello_;
    FrameAssembler in_;

    struct Fold
    {
        std::uint64_t hash = 0;
        int tokens = 0;
        int next_index = 0;
        bool ordered = true; //!< every index arrived contiguously
        bool done = false;
        bool matches = false;
    };
    std::unordered_map<std::int32_t, Fold> folds_;
};

} // namespace bitdec::net

#endif // BITDEC_NET_CLIENT_H
