#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "backend/registry.h"
#include "common/logging.h"
#include "net/drain.h"
#include "serving/request.h"

namespace bitdec::net {

namespace {

void
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    BITDEC_ASSERT(flags >= 0, "fcntl(F_GETFL) failed: ",
                  std::strerror(errno));
    BITDEC_ASSERT(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                  "fcntl(F_SETFL, O_NONBLOCK) failed: ",
                  std::strerror(errno));
}

/** The registry's fail-fast text for an unknown backend name. */
std::string
unknownBackendMessage(const std::string& name)
{
    std::string known;
    for (const std::string& n :
         backend::BackendRegistry::instance().names()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    return detail::concat("unknown attention backend '", name,
                          "' (registered: ", known, ")");
}

} // namespace

Server::Server(serving::ServingClient& client, const ServerConfig& cfg,
               const ServerInfo& info)
    : client_(client), cfg_(cfg), info_(info)
{
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    BITDEC_ASSERT(listen_fd_ >= 0, "socket() failed: ",
                  std::strerror(errno));
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
    if (inet_pton(AF_INET, cfg_.bind_host.c_str(), &addr.sin_addr) != 1)
        BITDEC_FATAL("cannot parse bind host '", cfg_.bind_host, "'");
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0)
        BITDEC_FATAL("cannot bind ", cfg_.bind_host, ":", cfg_.port, ": ",
                     std::strerror(errno));
    BITDEC_ASSERT(listen(listen_fd_, cfg_.backlog) == 0,
                  "listen() failed: ", std::strerror(errno));
    setNonBlocking(listen_fd_);

    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
}

Server::~Server()
{
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
    for (const auto& c : conns_)
        if (c->fd >= 0)
            ::close(c->fd);
}

bool
Server::drainingNow() const
{
    return drain_.load(std::memory_order_relaxed) ||
           (cfg_.honor_signal_drain && drainRequested());
}

bool
Server::overWatermark() const
{
    for (const auto& c : conns_)
        if (c->out.size() >= cfg_.write_buffer_limit)
            return true;
    return false;
}

void
Server::enqueue(Conn& c, const std::string& bytes)
{
    c.out.append(bytes);
    std::size_t peak = peak_write_buffer_.load(std::memory_order_relaxed);
    while (c.out.size() > peak &&
           !peak_write_buffer_.compare_exchange_weak(
               peak, c.out.size(), std::memory_order_relaxed))
        ;
}

void
Server::sendError(Conn& c, std::int32_t id, ErrorCode code,
                  const std::string& message)
{
    ErrorMsg e;
    e.request_id = id;
    e.code = code;
    e.message = message;
    enqueue(c, encodeError(e));
}

void
Server::acceptNew()
{
    for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN (or transient error): nothing more to accept
        setNonBlocking(fd);
        if (cfg_.so_sndbuf > 0)
            setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg_.so_sndbuf,
                       sizeof(cfg_.so_sndbuf));
        auto c = std::make_unique<Conn>();
        c->fd = fd;
        HelloMsg h;
        h.backend = info_.backend;
        h.page_size = info_.page_size;
        h.cache_head_dim = info_.cache_head_dim;
        h.shards = info_.shards;
        enqueue(*c, encodeHello(h));
        conns_.push_back(std::move(c));
    }
}

void
Server::handleSubmit(Conn& c, const std::string& payload)
{
    SubmitMsg m;
    if (!decodeSubmit(payload, m)) {
        sendError(c, 0, ErrorCode::BadFrame, "malformed SUBMIT payload");
        c.closing = true;
        return;
    }
    if (drainingNow()) {
        sendError(c, m.id, ErrorCode::Draining,
                  "server is draining, not accepting new requests");
        return;
    }
    if (inflight_ >= cfg_.max_inflight) {
        busy_rejections_++;
        sendError(c, m.id, ErrorCode::Busy,
                  detail::concat("server is at its admission cap (",
                                 cfg_.max_inflight,
                                 " requests in flight), retry later"));
        return;
    }
    if (!m.backend.empty()) {
        // Typed twin of the CLI's fail-fast resolve: unknown names get
        // the registry's exact message; a known-but-different backend
        // cannot be honored mid-run (one engine, one backend).
        if (backend::BackendRegistry::instance().find(m.backend) ==
            nullptr) {
            sendError(c, m.id, ErrorCode::UnknownBackend,
                      unknownBackendMessage(m.backend));
            return;
        }
        if (m.backend != info_.backend) {
            sendError(c, m.id, ErrorCode::InvalidRequest,
                      detail::concat("server runs attention backend '",
                                     info_.backend,
                                     "', cannot serve a request for '",
                                     m.backend, "'"));
            return;
        }
    }

    serving::Request r;
    r.id = m.id;
    r.arrival_s = m.arrival_s >= 0
                      ? m.arrival_s
                      : std::max(client_.streamClock(), 0.0);
    r.prompt_tokens = m.prompt_tokens;
    r.output_tokens = m.output_tokens;
    r.prefix_id = m.prefix_id;
    r.prefix_tokens = m.prefix_tokens;
    r.priority = m.priority;
    r.idle_after_tokens = m.idle_after_tokens;
    r.idle_wake_s = m.idle_wake_s;
    r.deadline_s = m.deadline_s;

    const std::string err = client_.admissionError(r);
    if (!err.empty()) {
        // Same fail-fast message the in-process CLI dies with, as a
        // typed frame: duplicate ids and impossible-fit requests get
        // their own codes so clients can react without parsing text.
        ErrorCode code = ErrorCode::InvalidRequest;
        if (err.find("duplicate request id") != std::string::npos)
            code = ErrorCode::DuplicateId;
        else if (err.find("can never fit") != std::string::npos)
            code = ErrorCode::OverCapacity;
        sendError(c, m.id, code, err);
        return;
    }

    client_.streamSubmit(r);
    c.live.insert(m.id);
    c.owned.insert(m.id);
    conn_of_[m.id] = &c;
    inflight_++;
    enqueue(c, encodeSubmitOk(m.id));
}

void
Server::handleFrame(Conn& c, FrameType type, const std::string& payload)
{
    switch (type) {
    case FrameType::Submit:
        handleSubmit(c, payload);
        return;
    case FrameType::Cancel: {
        std::int32_t id = 0;
        if (!decodeCancel(payload, id)) {
            sendError(c, 0, ErrorCode::BadFrame,
                      "malformed CANCEL payload");
            c.closing = true;
            return;
        }
        if (c.owned.count(id) == 0) {
            sendError(c, id, ErrorCode::UnknownId,
                      detail::concat("request ", id,
                                     " was never submitted on this "
                                     "connection"));
            return;
        }
        // live and canceled -> DONE follows; already done -> the DONE
        // frame is on its way and the cancel simply lost the race. No
        // error either way.
        if (c.live.count(id) > 0)
            client_.streamCancel(id);
        return;
    }
    case FrameType::Stats:
        enqueue(c, encodeStatsJson(client_.streamSnapshot().toJson()));
        return;
    default:
        sendError(c, 0, ErrorCode::BadFrame,
                  detail::concat("unexpected frame type ",
                                 static_cast<int>(type)));
        c.closing = true;
        return;
    }
}

void
Server::readFrom(Conn& c)
{
    char buf[65536];
    for (;;) {
        const ssize_t n = recv(c.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            c.in.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        // EOF or hard error: stop reading; pending output still flushes,
        // live requests are canceled by dropConn once flushed/overdue.
        c.closing = true;
        break;
    }
    FrameType type;
    std::string payload;
    while (!c.closing && c.in.next(type, payload))
        handleFrame(c, type, payload);
    if (c.in.bad() && !c.closing) {
        sendError(c, 0, ErrorCode::BadFrame,
                  "oversized or corrupt frame; closing connection");
        c.closing = true;
    }
}

void
Server::flush(Conn& c)
{
    while (!c.out.empty()) {
        const ssize_t n =
            send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            c.out.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        c.out.clear(); // peer is gone; drop the backlog
        c.closing = true;
        return;
    }
}

void
Server::emitFinished()
{
    for (const auto& c : conns_) {
        for (auto it = c->live.begin(); it != c->live.end();) {
            const serving::Request* r = client_.poll(*it);
            BITDEC_ASSERT(r != nullptr, "live id ", *it,
                          " unknown to the serving client");
            if (!r->done()) {
                ++it;
                continue;
            }
            DoneMsg d;
            d.request_id = r->id;
            d.finished =
                r->state == serving::RequestState::Finished ? 1 : 0;
            d.cancel_cause = static_cast<std::uint8_t>(r->cancel_cause);
            d.generated = r->generated;
            d.output_hash = r->output_hash;
            d.attn_hash = r->attn_hash;
            d.first_token_s = r->first_token_s;
            d.finish_s = r->finish_s;
            enqueue(*c, encodeDone(d));
            conn_of_.erase(r->id);
            inflight_--;
            it = c->live.erase(it);
        }
    }
}

void
Server::pump()
{
    // Whole-pump backpressure: the engine's virtual clock is shared by
    // every request, so one slow reader over its write watermark pauses
    // the tick for everyone — bounded buffering beats fairness here,
    // and the pause lifts the moment the reader drains. The check runs
    // before every tick, so a connection overshoots its limit by at
    // most one tick's worth of token frames.
    for (int i = 0; i < cfg_.ticks_per_round; i++) {
        if (overWatermark() || client_.streamIdle())
            break;
        if (!client_.streamTick())
            break;
    }
    emitFinished();
}

void
Server::dropConn(std::size_t idx)
{
    Conn& c = *conns_[idx];
    // A vanished client cannot read its tokens: cancel its in-flight
    // requests so the engine stops spending budget on them.
    for (const int id : c.live) {
        client_.streamCancel(id);
        conn_of_.erase(id);
        inflight_--;
    }
    c.live.clear();
    ::close(c.fd);
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(idx));
}

serving::ServingMetrics
Server::run()
{
    client_.streamBegin([this](const serving::TokenEvent& ev) {
        const auto it = conn_of_.find(ev.request_id);
        if (it == conn_of_.end())
            return; // connection dropped mid-step; request is canceling
        TokenMsg t;
        t.request_id = ev.request_id;
        t.index = ev.index;
        t.fold = ev.fold;
        t.output_hash = ev.output_hash;
        t.clock_s = ev.clock_s;
        enqueue(*it->second, encodeToken(t));
    });

    inform("net: serving on ", cfg_.bind_host, ":", port_, " (backend ",
           info_.backend, ", ", info_.shards, " shard",
           info_.shards == 1 ? "" : "s", ")");

    bool announced_drain = false;
    for (;;) {
        const bool draining = drainingNow();
        if (draining && !announced_drain) {
            announced_drain = true;
            inform("net: drain requested — finishing ", inflight_,
                   " in-flight request", inflight_ == 1 ? "" : "s");
        }

        // Drain exit: nothing in flight, nothing buffered.
        if (draining && inflight_ == 0) {
            bool flushed = true;
            for (const auto& c : conns_)
                if (!c->out.empty())
                    flushed = false;
            if (flushed)
                break;
        }

        std::vector<pollfd> fds;
        fds.reserve(conns_.size() + 1);
        if (!draining)
            fds.push_back({listen_fd_, POLLIN, 0});
        for (const auto& c : conns_) {
            short ev = c->closing ? 0 : POLLIN;
            if (!c->out.empty())
                ev |= POLLOUT;
            fds.push_back({c->fd, ev, 0});
        }

        // Work to pump and room to buffer it: don't sleep in poll.
        const bool work_pending = !client_.streamIdle() && !overWatermark();
        const int timeout = work_pending ? 0 : cfg_.poll_interval_ms;
        poll(fds.data(), fds.size(), timeout); // EINTR: loop handles it

        std::size_t fi = 0;
        if (!draining) {
            if (fds[fi].revents & POLLIN)
                acceptNew();
            fi++;
        }
        for (std::size_t i = 0; i < conns_.size(); i++, fi++) {
            if (fds[fi].revents & (POLLIN | POLLHUP | POLLERR))
                if (!conns_[i]->closing)
                    readFrom(*conns_[i]);
        }

        pump();

        for (auto& c : conns_)
            flush(*c);

        for (std::size_t i = conns_.size(); i-- > 0;) {
            Conn& c = *conns_[i];
            if (c.closing && c.out.empty())
                dropConn(i);
        }
    }

    for (std::size_t i = conns_.size(); i-- > 0;)
        dropConn(i);
    const serving::ServingMetrics m = client_.streamEnd();
    inform("net: drained — ", m.num_requests, " requests served");
    return m;
}

} // namespace bitdec::net
