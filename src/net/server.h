/**
 * @file
 * The socket front end: a single-threaded poll loop that pumps a
 * ServingClient stream between rounds of network I/O.
 *
 * One acceptor + worker: non-blocking sockets, POSIX poll(), one
 * connection per client speaking the framed protocol (protocol.h).
 * Between poll rounds the loop advances the engine's virtual clock with
 * ServingClient::streamTick(); the token sink routes each TokenEvent to
 * its connection's write queue as a TOKEN frame. Because the socket
 * layer is only a driver over the deterministic stream API, the
 * per-request digests a client receives are byte-identical to the same
 * trace run through an in-process ServingClient.
 *
 * Backpressure: write queues are bounded (ServerConfig::
 * write_buffer_limit). While any connection with unread output sits
 * over the limit the pump pauses — the engine's clock is shared, so
 * pausing one request means pausing the tick — and resumes as soon as
 * the slow reader drains; the per-connection overshoot is at most one
 * tick's worth of token frames, never unbounded. New SUBMITs beyond the
 * admission cap (max_inflight) are shed with a typed BUSY error.
 *
 * Drain: requestDrain() (or SIGINT/SIGTERM via net/drain.h) stops the
 * acceptor, rejects further SUBMITs with DRAINING, finishes every
 * in-flight request, flushes all streams and returns the final
 * metrics.
 */
#ifndef BITDEC_NET_SERVER_H
#define BITDEC_NET_SERVER_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/protocol.h"
#include "serving/client.h"

namespace bitdec::net {

/** Socket/backpressure knobs of one Server. */
struct ServerConfig
{
    std::string bind_host = "127.0.0.1"; //!< loopback unless told otherwise
    int port = 0;                        //!< 0 = ephemeral (see port())
    int backlog = 64;
    //! Admission cap: SUBMITs beyond this many in-flight requests get a
    //! typed BUSY error instead of a queue slot.
    int max_inflight = 64;
    //! Per-connection write-queue watermark: the pump pauses while any
    //! connection's unsent bytes sit at or above this.
    std::size_t write_buffer_limit = 256 * 1024;
    //! Kernel send-buffer size (SO_SNDBUF) for accepted sockets; 0 keeps
    //! the OS default. Together with write_buffer_limit this bounds the
    //! total memory a slow reader can pin per connection.
    int so_sndbuf = 0;
    //! Engine ticks between poll rounds (pump granularity).
    int ticks_per_round = 64;
    //! Poll timeout while idle (ms); 0 while there is work to pump.
    int poll_interval_ms = 20;
    //! Also honor the process-wide SIGINT/SIGTERM drain flag.
    bool honor_signal_drain = true;
};

/** Engine shape advertised in the HELLO frame (what a client needs to
 *  reproduce digests in-process). */
struct ServerInfo
{
    std::string backend;
    int page_size = 0;
    int cache_head_dim = 0;
    int shards = 1;
};

/** The server. Owns the listen socket; borrows the ServingClient. */
class Server
{
  public:
    Server(serving::ServingClient& client, const ServerConfig& cfg,
           const ServerInfo& info);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** The bound port (resolves an ephemeral request). */
    int port() const { return port_; }

    /** Thread-safe drain trigger: the poll loop notices it within one
     *  poll interval and begins a graceful shutdown. */
    void requestDrain() { drain_.store(true, std::memory_order_relaxed); }

    /**
     * Runs accept/read/pump/write rounds until a drain completes:
     * every in-flight request finished, every stream flushed. Returns
     * the final stream metrics (the in-process drain() equivalent).
     */
    serving::ServingMetrics run();

    /** High-water mark of any connection's write queue, in bytes —
     *  the backpressure tests assert this stays bounded. */
    std::size_t peakWriteBuffer() const
    {
        return peak_write_buffer_.load(std::memory_order_relaxed);
    }

    /** Requests shed with BUSY since construction. */
    long busyRejections() const { return busy_rejections_; }

  private:
    struct Conn
    {
        int fd = -1;
        FrameAssembler in;
        std::string out;                  //!< bytes awaiting the socket
        std::unordered_set<int> live;     //!< this conn's in-flight ids
        std::unordered_set<int> owned;    //!< every id ever submitted here
        bool closing = false;             //!< flush out, then close
    };

    void acceptNew();
    void readFrom(Conn& c);
    void handleFrame(Conn& c, FrameType type, const std::string& payload);
    void handleSubmit(Conn& c, const std::string& payload);
    void sendError(Conn& c, std::int32_t id, ErrorCode code,
                   const std::string& message);
    void enqueue(Conn& c, const std::string& bytes);
    void flush(Conn& c);
    void pump();
    void emitFinished();
    void dropConn(std::size_t idx);
    bool overWatermark() const;
    bool drainingNow() const;

    serving::ServingClient& client_;
    ServerConfig cfg_;
    ServerInfo info_;
    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> drain_{false};
    std::vector<std::unique_ptr<Conn>> conns_;
    std::unordered_map<int, Conn*> conn_of_; //!< request id -> connection
    int inflight_ = 0;
    long busy_rejections_ = 0;
    std::atomic<std::size_t> peak_write_buffer_{0};
};

} // namespace bitdec::net

#endif // BITDEC_NET_SERVER_H
