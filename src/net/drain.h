/**
 * @file
 * Process-wide graceful-drain flag for SIGINT/SIGTERM.
 *
 * installDrainSignalHandlers() arms both signals once; the handler only
 * sets an atomic flag (async-signal-safe), which long-running loops —
 * the socket server's poll loop, the serving demos' pump loops — check
 * between rounds via drainRequested(). The second signal falls back to
 * the default disposition, so a stuck drain can still be killed with a
 * repeated Ctrl-C.
 */
#ifndef BITDEC_NET_DRAIN_H
#define BITDEC_NET_DRAIN_H

namespace bitdec::net {

/** Arms SIGINT/SIGTERM to request a graceful drain. Idempotent. */
void installDrainSignalHandlers();

/** True once SIGINT or SIGTERM was received (or requestDrainFlag()). */
bool drainRequested();

/** Programmatic equivalent of the signal, for tests. */
void requestDrainFlag();

/** Clears the flag (tests that drain more than once). */
void resetDrainFlag();

} // namespace bitdec::net

#endif // BITDEC_NET_DRAIN_H
