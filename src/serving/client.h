/**
 * @file
 * Narrow serving-client API: the only seam benches, examples and tests
 * use to drive a serving run.
 *
 * A ServingClient accepts requests (submit), exposes their state
 * (poll), supports pre-run cancellation (cancel), runs everything
 * submitted since the last drain to completion on the virtual clock
 * (drain) and reports queue/pool counters (stats). It deliberately
 * exposes none of the engine's internals — no scheduler, no cache, no
 * clock — so the same driver code runs against one Engine or a sharded
 * Cluster (src/cluster/) unchanged, and shard-count invariance of the
 * run digests is testable the same way thread-count invariance is.
 *
 * Execution model: the engine's clock is virtual, so a drain is a batch
 * simulation, not a live server — submit enqueues a copy of the
 * request, drain runs the whole submitted set to completion and returns
 * the run's ServingMetrics, and poll reads back the final per-request
 * state (timestamps, hashes, cancel cause). Submissions compose across
 * drains: each drain covers the requests submitted since the previous
 * one.
 */
#ifndef BITDEC_SERVING_CLIENT_H
#define BITDEC_SERVING_CLIENT_H

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gpusim/arch.h"
#include "model/model_config.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/request.h"

namespace bitdec::serving {

/** Aggregate queue/pool counters a ServingClient reports. */
struct ClientStats
{
    int submitted = 0; //!< requests accepted since construction
    int pending = 0;   //!< submitted but not yet drained (nor canceled)
    int finished = 0;  //!< requests that completed across all drains
    int canceled = 0;  //!< client cancels plus engine-side cancellations
    int shards = 1;    //!< engine replicas behind this client
    int total_pool_pages = 0; //!< hot KV pages across every shard
};

/**
 * The serving seam. Both the single-engine client (EngineClient) and
 * the sharded Cluster implement exactly this surface.
 */
class ServingClient
{
  public:
    virtual ~ServingClient() = default;

    /**
     * Accepts a request for the next drain. Only the workload fields
     * are read (id, arrival, lengths, prefix, priority, idle shape,
     * deadline); runtime fields are reset internally. Request ids must
     * be unique across the client's lifetime. @return the request id.
     */
    virtual int submit(const Request& r) = 0;

    /**
     * Read-only view of a submitted request — before its drain the
     * pending copy, afterwards the final state (timestamps, hashes,
     * cancel cause). Null for an unknown id. The pointer stays valid
     * until the client is destroyed.
     */
    virtual const Request* poll(int id) const = 0;

    /**
     * Cancels a pending request before its drain runs: it is marked
     * CANCELED with CancelCause::Client, excluded from the drain and
     * from the run's outputs_digest. @return false when the id is
     * unknown or the request already ran.
     */
    virtual bool cancel(int id) = 0;

    /**
     * Runs every pending request to completion on the virtual clock and
     * returns the run's metrics. Draining with nothing pending returns
     * empty metrics. Results are read back via poll().
     */
    virtual ServingMetrics drain() = 0;

    /** Aggregate counters; callable at any point. */
    virtual ClientStats stats() const = 0;

    // ------------------------------------------------------------------
    // Streaming surface: the incremental twin of drain(). A front end
    // (src/net/) opens a stream once, then interleaves submissions,
    // cancels and ticks while reading token events from the sink — the
    // engine executes the exact same operation sequence as a batch
    // drain, so per-request digests are byte-identical by construction.
    // Batch calls (submit/cancel/drain) and stream calls must not be
    // mixed while a stream is open.
    // ------------------------------------------------------------------

    /**
     * Why a request would be rejected, without terminating the process:
     * the exact message drain()/run() would fail fast with (duplicate
     * id, empty prompt, impossible fit, bad prefix/idle/deadline
     * shape), or an empty string when the request is admissible.
     */
    virtual std::string admissionError(const Request& r) const = 0;

    /**
     * Opens a stream. @p sink (may be empty) observes every generated
     * token as a TokenEvent in deterministic batch order.
     */
    virtual void streamBegin(TokenSink sink = {}) = 0;

    /**
     * Submits into the open stream. The request joins the run at its
     * arrival time even mid-pump (arrivals in the virtual future).
     * Fails fast on an inadmissible request — call admissionError
     * first to reject gracefully. @return the request id.
     */
    virtual int streamSubmit(const Request& r) = 0;

    /**
     * Cancels a live in-stream request (CancelCause::Client), freeing
     * its pages. @return false when the id is unknown to the stream or
     * the request already finished.
     */
    virtual bool streamCancel(int id) = 0;

    /**
     * Advances the open stream by one scheduler tick; token events fire
     * into the sink as decode progresses. @return false when every
     * submitted request has finished (the stream is idle).
     */
    virtual bool streamTick() = 0;

    /** True when the open stream has no unfinished requests. */
    virtual bool streamIdle() const = 0;

    /** The stream's virtual clock (next arrival before the first tick). */
    virtual double streamClock() const = 0;

    /** Metrics of the stream so far, without closing it. */
    virtual ServingMetrics streamSnapshot() const = 0;

    /**
     * Closes the stream and returns its metrics; requires streamIdle()
     * (pump streamTick() or cancel stragglers first). Results are read
     * back via poll(), same as after a drain.
     */
    virtual ServingMetrics streamEnd() = 0;
};

/** ServingClient over one Engine replica. */
class EngineClient final : public ServingClient
{
  public:
    EngineClient(const sim::GpuArch& arch, const model::ModelConfig& model,
                 const EngineConfig& cfg);

    int submit(const Request& r) override;
    const Request* poll(int id) const override;
    bool cancel(int id) override;
    ServingMetrics drain() override;
    ClientStats stats() const override;

    std::string admissionError(const Request& r) const override;
    void streamBegin(TokenSink sink = {}) override;
    int streamSubmit(const Request& r) override;
    bool streamCancel(int id) override;
    bool streamTick() override;
    bool streamIdle() const override;
    double streamClock() const override;
    ServingMetrics streamSnapshot() const override;
    ServingMetrics streamEnd() override;

  private:
    Engine engine_;
    //! All requests ever submitted; deque keeps poll() pointers stable.
    std::deque<Request> store_;
    std::unordered_map<int, std::size_t> index_; //!< id -> store_ slot
    std::vector<std::size_t> pending_;           //!< slots awaiting drain
    std::vector<std::size_t> stream_slots_;      //!< slots in the open stream
    bool streaming_ = false;
    int finished_ = 0;
    int canceled_ = 0;
};

/**
 * Factory for the common driver pattern: one shard returns a plain
 * EngineClient, more returns a Cluster (src/cluster/) of @p shards full
 * Engine replicas, each configured with @p cfg, fronted by the default
 * sticky prefix-aware router.
 */
std::unique_ptr<ServingClient>
makeServingClient(const sim::GpuArch& arch, const model::ModelConfig& model,
                  const EngineConfig& cfg, int shards = 1);

} // namespace bitdec::serving

#endif // BITDEC_SERVING_CLIENT_H
