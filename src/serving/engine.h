/**
 * @file
 * Continuous-batching serving engine on a virtual clock.
 *
 * Each tick the engine admits arrived requests (FCFS or priority-with-
 * aging, see SchedulerConfig::policy), asks the scheduler for the tick's
 * append plan (Scheduler::planTick) — one token per DECODE request plus
 * budget-shared prefill chunks, interleaved in the same tick under the
 * unified SchedulerConfig::prefill_chunk_tokens budget — executes it
 * against the functional paged KV cache, and advances the clock by the
 * step latency the analytical model charges for the configured system
 * (FP16 FlashDecoding, KIVI, QServe or BitDecoding). Because the budget
 * caps the tokens any tick can append, a 100K-token prompt prefills
 * across many bounded ticks instead of stalling every decoding request
 * for one monolithic multi-second tick; the gap between a request's
 * consecutive output tokens is reported as the decode-stall distribution
 * (ServingMetrics::decode_stall_*). Page-pool exhaustion mid-step
 * triggers preempt-and-recompute via the scheduler; no request is ever
 * dropped.
 *
 * Requests that declare a shared prefix (Request::prefix_id) ride the
 * cache's prefix index: the first request to prefill the prefix publishes
 * its packed pages, later admissions map them with a refcount bump and
 * skip straight past the shared tokens — saved prefill work shows up in
 * ServingMetrics::prefix_hit_tokens and in cheaper step latencies.
 * Divergence after a shared partially-filled page is handled by
 * copy-on-write inside the cache, and pinned prefix pages nobody maps are
 * evicted under pool pressure.
 *
 * Two concerns are deliberately decoupled:
 *  - Capacity is modeled in page *counts*: the pool size is derived from
 *    the device HBM budget and the system's KV bytes per token, so a 4-bit
 *    cache gets ~4x the pages of FP16 for the same device.
 *  - Content is modeled in a narrow functional cache (cache_head_dim wide,
 *    one representative head) so token data stays cheap to store while
 *    preemption/resume correctness remains observable: every decode token
 *    folds the previously cached key row into the request's output hash.
 */
#ifndef BITDEC_SERVING_ENGINE_H
#define BITDEC_SERVING_ENGINE_H

#include <functional>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "gpusim/arch.h"
#include "kvcache/paged_cache.h"
#include "kvcache/tiered_cache.h"
#include "model/decode_sim.h"
#include "model/model_config.h"
#include "serving/metrics.h"
#include "serving/request.h"
#include "serving/scheduler.h"

namespace bitdec::backend {
class AttentionBackend;
} // namespace bitdec::backend

namespace bitdec::serving {

/** Engine configuration. */
struct EngineConfig
{
    model::SystemKind system = model::SystemKind::BitDecoding;
    int bits = 4; //!< KV bit width for low-bit systems

    SchedulerConfig sched;

    int page_size = 64;     //!< tokens per KV page
    int num_pages = 0;      //!< pool size; 0 derives it from device HBM
    int cache_head_dim = 8; //!< functional cache width (content modeling)

    double max_clock_s = 1e6; //!< safety stop for runaway configurations

    /**
     * Per-step functional attention backend, by registry name (see
     * src/backend/ and `bench_serving_e2e --list-backends`). When
     * non-empty, every decode step resolves this backend and runs one
     * decode-attention batch over the decoding requests' page tables,
     * folding each output into the request's attn_hash. The name is
     * validated at engine construction: an unknown name is a fatal error
     * listing the registered backends (never a silent fallback), and the
     * backend must be able to serve the paged FP16 cache. Empty (the
     * default) skips the numeric work entirely.
     */
    std::string backend;
    exec::ThreadPool* pool = nullptr; //!< pool for the per-step attention
                                      //!< fan-out; null = inline

    /**
     * Cold KV tiers (host RAM / disk) layered under the hot page pool.
     * Empty tier list (the default) disables tiering: preemption drops
     * pages (recompute policy) and parked idle sessions hold hot pages
     * until pool pressure evicts them. With tiers configured, preemption
     * and idle parking offload packed pages instead, resume demand-
     * fetches them (plus lookahead prefetch) and decode is gated on full
     * residency — the clock pays the transfer, the digests never change.
     * TieredConfig::bytes_per_page == 0 derives the packed page size from
     * the model and bit width (the 4-bit page crosses tiers 4x denser
     * than FP16).
     */
    kv::TieredConfig tiered;

    /**
     * Fault-injection plan for chaos runs (empty = no injection, the
     * default). Faults fire on the tiered transfer/offload paths —
     * fetch failures, latency spikes, page corruption, transient
     * hot-alloc failures — at the schedule's rates, decided
     * deterministically from fault_seed, so a chaos run replays
     * bit-for-bit. The recovery contract: every injected fault is
     * detected (checksums, status codes) and recovered (retry with
     * backoff, then recompute from seeds) with the run's outputs_digest
     * byte-identical to a fault-free run of the same trace.
     */
    fault::FaultSchedule faults;
    std::uint64_t fault_seed = 0xB17DEC; //!< chaos-run identity

    /** Retry/backoff policy for transient cold-fetch failures. */
    fault::RetryPolicy retry;

    /**
     * Fails fast on out-of-range or contradictory fields, naming each
     * offender (matching the backend registry's fail-fast style: never
     * a silent clamp or fallback). Engine construction calls this once,
     * so every bad configuration dies at the same place with the same
     * message regardless of which bench, example or test built it.
     */
    void validate() const;
};

/**
 * One output token appended during a stream run, observed the moment the
 * tick that produced it completes (virtual clock already advanced). The
 * fold value is exactly the term the engine mixed into the request's
 * output_hash, so a remote observer can reproduce the final digest by
 * folding every event in index order:
 *   h = h * 0x100000001B3 ^ fold   (starting from h = 0).
 * A missed or reordered token frame therefore shows up as a digest
 * mismatch against DONE — this is what makes streamed delivery testable
 * byte-for-byte against an in-process run.
 */
struct TokenEvent
{
    int request_id = 0;
    int index = 0;             //!< output token index, 0-based, contiguous
    std::uint64_t fold = 0;    //!< term folded into output_hash
    std::uint64_t output_hash = 0; //!< running hash after this token
    double clock_s = 0;        //!< virtual time the token appeared
};

/** Per-token observer for stream runs; empty = no observation cost. */
using TokenSink = std::function<void(const TokenEvent&)>;

/** Continuous-batching serving engine. */
class Engine
{
  public:
    Engine(const sim::GpuArch& arch, const model::ModelConfig& model,
           const EngineConfig& cfg);

    /**
     * Runs @p requests to completion and returns the run's metrics.
     * Requests are mutated in place (timestamps, hashes, final states), so
     * callers can inspect per-request results afterwards. Every request
     * must individually fit the page pool; traces that cannot ever finish
     * are a fatal configuration error.
     *
     * Implemented on the stream API below (begin, add all in arrival
     * order, tick until idle, end), so a batch run and an incrementally
     * pumped run of the same trace execute the identical operation
     * sequence — same clock jumps, same digests, byte for byte.
     */
    ServingMetrics run(std::vector<Request>& requests);

    // ------------------------------------------------ stream pump API --
    //
    // The incremental face of run() for live front ends (src/net/): the
    // caller owns Request storage (pointers must stay valid until
    // streamEnd), feeds requests as they arrive, and advances the
    // virtual clock one scheduling round at a time. Between ticks it may
    // observe per-request state, cancel mid-flight requests, and snapshot
    // metrics. Mixing with run() mid-stream is an error.

    /** Starts an incremental run; @p sink observes every output token. */
    void streamBegin(TokenSink sink = {});

    /**
     * Non-fatal admission validation: the exact message run() would die
     * with for @p r (invalid lengths/prefix/idle/deadline shape, or a
     * request that can never fit the page pool), empty when admissible.
     * One source of truth, so a network front end rejects with the same
     * fail-fast text the CLI prints.
     */
    std::string admissionError(const Request& r) const;

    /**
     * Adds @p r to the live run. The request must pass admissionError
     * (checked; violations are fatal — remote callers check first) and
     * the pointer must outlive the stream. Arrivals earlier than the
     * current clock are admitted at the next tick.
     */
    void streamAdd(Request* r);

    /**
     * Advances the run by one scheduling round: arrivals, cancellations,
     * admission, one planned tick of appends (or one idle clock jump).
     * @return false when every added request is finished or canceled —
     * the stream is idle and the clock holds until more work arrives.
     */
    bool streamTick();

    /**
     * Mid-run cancel hook: cleanly cancels the live request @p id
     * (removed from the scheduler, pages freed, state CANCELED with
     * CancelCause::Client — whether queued, prefilling, decoding, parked
     * or preempted). @return false when the id is unknown or already
     * done.
     */
    bool streamCancel(int id);

    /** True when no added request still needs engine work. */
    bool streamIdle() const;

    /** Current virtual clock of the stream (first pending arrival before
     *  the first tick; the last batch run's final clock otherwise). */
    double streamClock() const;

    /** Metrics snapshot of the stream so far (finalized copy; the run
     *  keeps going). Powers the wire protocol's STATS frame. */
    ServingMetrics streamSnapshot() const;

    /** Ends the incremental run and returns its metrics. */
    ServingMetrics streamEnd();

    /** Page-pool size the engine operates with. */
    int numPages() const { return cache_.totalPages(); }

    /** Read-only view of the paged KV pool (prefix index, refcounts). */
    const kv::PagedHeadCache& cache() const { return cache_; }

    /** Read-only view of the tiered pool (occupancy, transfer stats). */
    const kv::TieredPagePool& tieredPool() const { return pool_; }

    /**
     * Pool pages a device budget affords: HBM minus weights, activations
     * and allocator overhead, divided by the system's per-page KV bytes
     * (all layers and KV heads). This is where a low-bit cache turns into
     * serving capacity.
     */
    static int derivePoolPages(const sim::GpuArch& arch,
                               const model::ModelConfig& model,
                               const EngineConfig& cfg);

  private:
    /** Writes token @p pos of request @p r into the cache (OOM is a bug:
     *  the step planner must have ensured headroom). */
    void appendToken(Request& r, int pos);

    /** Step latency charged for this tick's decode batch and prefill. */
    double stepLatency(int decode_batch, long decode_len_sum,
                       int prefill_tokens) const;

    /** cfg_.tiered with bytes_per_page derived from the model and bit
     *  width when unset (packed low-bit pages cross tiers). */
    kv::TieredConfig resolvedTieredConfig() const;

    /**
     * Demand-fetches the cold pages gating @p r this tick (a decoding
     * request needs its whole sequence, a prefilling one only the partial
     * page it appends into), charging transfer latency via
     * Request::fetch_ready_s. A sequence whose cold payload was dropped
     * is reset to recompute. @return pages still missing because the hot
     * pool ran dry (the caller adds them to its preemption demand).
     */
    int ensureResident(Request& r, double now, MetricsCollector& mc);

    /** Drops @p r's sequence for a from-scratch, digest-identical
     *  re-prefill (cold payload lost, or untiered idle eviction). */
    void dropToRecompute(Request& r);

    /**
     * Cleanly cancels @p r (graceful degradation): removes it from the
     * scheduler, frees its sequence and pages, stamps state CANCELED
     * with @p cause at time @p now. A canceled request folds nothing
     * into the run's outputs_digest.
     */
    void cancelRequest(Request& r, CancelCause cause, double now);

    /** Offloads (tiered) or drops (untiered) the pages of the
     *  least-recently-active parked idle session; false when none. */
    bool evictIdleVictim(double now);

    /** Sequence ids of the running batch (offload protection set). */
    std::vector<int> runningSeqs() const;

    /** Earliest pending completion deadline; +inf when none. */
    double nextDeadline() const;
    ServingMetrics finalizeMetrics() const;

    const sim::GpuArch& arch_;
    const model::ModelConfig& model_;
    EngineConfig cfg_;
    model::E2EConfig e2e_;
    kv::PagedHeadCache cache_;
    kv::TieredPagePool pool_;
    Scheduler sched_;
    //! Sequences offloaded and awaiting their resume fetch: resolves to
    //! a cold resume (pages fetched back) or a recompute (payload lost).
    std::unordered_set<int> pending_resume_;
    int cold_resumes_ = 0;
    int recompute_resumes_ = 0;
    //! Fault decisions for the tiered transfer paths (armed into pool_;
    //! an empty schedule decides "no fault" in one branch).
    fault::FaultInjector injector_;
    int fetch_retries_ = 0;        //!< transient-fault retries taken
    int recompute_recoveries_ = 0; //!< fault-driven recompute escalations
    int shed_requests_ = 0;        //!< admission-TTL cancellations
    int deadline_cancels_ = 0;     //!< deadline cancellations
    //! Resolved EngineConfig::backend; null when per-step attention is off.
    const backend::AttentionBackend* attn_backend_ = nullptr;

    // --- stream-run state (one run(), or one streamBegin..streamEnd) ---
    bool stream_active_ = false;
    TokenSink sink_;
    //! Live requests in arrival order (ties keep add order) — the
    //! stream-mode twin of run()'s sorted `order` vector.
    std::vector<Request*> live_;
    std::size_t next_arrival_ = 0; //!< first live_ slot not yet enqueued
    int finished_ = 0;             //!< done (finished or canceled) count
    double clock_ = 0;
    bool clock_started_ = false; //!< clock_ seeded from the first arrival
    double first_arrival_ = std::numeric_limits<double>::infinity();
    MetricsCollector mc_;
};

} // namespace bitdec::serving

#endif // BITDEC_SERVING_ENGINE_H
