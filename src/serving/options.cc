#include "serving/options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "backend/registry.h"
#include "common/logging.h"

namespace bitdec::serving {

namespace {

/** Strictly-parsed non-negative integer value of `--flag=<n>`. */
long
intValue(const char* flag, const char* text)
{
    char* end = nullptr;
    const long v = std::strtol(text, &end, 0);
    if (end == text || *end != '\0' || v < 0)
        BITDEC_FATAL(flag, "= needs a non-negative integer, got '", text,
                     "'");
    return v;
}

} // namespace

ServingOptions
ServingOptions::parse(int argc, char** argv)
{
    ServingOptions o;
    for (int i = 1; i < argc; i++) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--backend=", 10) == 0) {
            o.backend = arg + 10;
            if (o.backend.empty())
                BITDEC_FATAL("--backend= needs a name (see "
                             "--list-backends)");
        } else if (std::strcmp(arg, "--backend") == 0) {
            // Space-separated form would silently select the default
            // backend — the exact silent fallback this API forbids.
            BITDEC_FATAL("--backend takes its value with '=', e.g. "
                         "--backend=fused-paged");
        } else if (std::strcmp(arg, "--list-backends") == 0) {
            o.list_backends = true;
        } else if (std::strncmp(arg, "--list-backends=", 16) == 0) {
            o.list_backends = true;
            o.list_mode = arg + 16;
        } else if (std::strncmp(arg, "--faults=", 9) == 0) {
            o.fault_spec = arg + 9;
            if (o.fault_spec.empty())
                BITDEC_FATAL("--faults= needs a spec, e.g. "
                             "--faults=fetch=0.02,corrupt=0.01");
        } else if (std::strcmp(arg, "--faults") == 0) {
            BITDEC_FATAL("--faults takes its value with '=', e.g. "
                         "--faults=fetch=0.02,corrupt=0.01");
        } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
            char* end = nullptr;
            o.fault_seed = std::strtoull(arg + 13, &end, 0);
            if (end == arg + 13 || *end != '\0')
                BITDEC_FATAL("--fault-seed= needs an integer, got '",
                             arg + 13, "'");
            o.fault_seed_given = true;
        } else if (std::strcmp(arg, "--fault-seed") == 0) {
            BITDEC_FATAL("--fault-seed takes its value with '=', e.g. "
                         "--fault-seed=1337");
        } else if (std::strncmp(arg, "--shards=", 9) == 0) {
            o.shards = static_cast<int>(intValue("--shards", arg + 9));
            if (o.shards < 1)
                BITDEC_FATAL("--shards= needs at least 1, got '", arg + 9,
                             "'");
        } else if (std::strcmp(arg, "--shards") == 0) {
            BITDEC_FATAL("--shards takes its value with '=', e.g. "
                         "--shards=4");
        } else if (std::strcmp(arg, "--smoke") == 0) {
            o.smoke = true;
        } else if (std::strncmp(arg, "--port=", 7) == 0) {
            o.port = static_cast<int>(intValue("--port", arg + 7));
            if (o.port > 65535)
                BITDEC_FATAL("--port= must be <= 65535, got '", arg + 7,
                             "'");
            o.port_given = true;
        } else if (std::strcmp(arg, "--port") == 0) {
            BITDEC_FATAL("--port takes its value with '=', e.g. "
                         "--port=9178");
        } else if (std::strncmp(arg, "--hot-pool-pages=", 17) == 0) {
            o.hot_pool_pages =
                static_cast<int>(intValue("--hot-pool-pages", arg + 17));
            if (o.hot_pool_pages <= 0)
                BITDEC_FATAL("--hot-pool-pages= must be positive, got '",
                             arg + 17, "'");
        } else if (std::strncmp(arg, "--tier=", 7) == 0) {
            o.tier = arg + 7;
            if (o.tier != "host" && o.tier != "host,disk" &&
                o.tier != "none")
                BITDEC_FATAL("--tier= must be 'host', 'host,disk' or "
                             "'none', got '",
                             o.tier, "'");
        }
    }
    return o;
}

bool
ServingOptions::maybeListBackends() const
{
    if (!list_backends)
        return false;
    if (!list_mode.empty() && list_mode != "names" && list_mode != "fused")
        BITDEC_FATAL("unknown --list-backends mode '", list_mode,
                     "' (use --list-backends, =names or =fused)");
    auto& reg = backend::BackendRegistry::instance();
    // Every listing mode shows only what this host can run: a SIMD
    // sibling whose ISA is missing (or capped away by BITDEC_SIMD) never
    // appears, so scripted `--list-backends` loops stay executable.
    if (list_mode == "names" || list_mode == "fused") {
        const auto names =
            list_mode == "fused" ? reg.fusedNames() : reg.availableNames();
        for (const std::string& n : names)
            std::printf("%s\n", n.c_str());
        return true;
    }
    std::printf("registered attention backends "
                "(caches | formats | scenarios):\n%s",
                reg.capabilityMatrix(/*available_only=*/true).c_str());
    return true;
}

const backend::AttentionBackend&
ServingOptions::resolveBackend(const std::string& fallback) const
{
    return backend::BackendRegistry::instance().resolve(
        backend.empty() ? fallback : backend);
}

fault::FaultSchedule
ServingOptions::faultsOr(const std::string& default_spec) const
{
    return fault::FaultSchedule::parse(
        fault_spec.empty() ? default_spec : fault_spec);
}

} // namespace bitdec::serving
