#include "serving/trace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace bitdec::serving {

namespace {

/** Lognormal sample with the given median and log-space sigma, clamped. */
int
lognormalLength(Rng& rng, int median, double log_sigma, int lo, int hi)
{
    const double z = rng.normal();
    const double x = median * std::exp(log_sigma * z);
    const int n = static_cast<int>(std::lround(x));
    return std::clamp(n, lo, hi);
}

} // namespace

std::vector<Request>
generateTrace(const TraceConfig& cfg)
{
    BITDEC_ASSERT(cfg.num_requests > 0, "trace needs at least one request");
    BITDEC_ASSERT(cfg.arrival_rate_qps > 0, "arrival rate must be positive");
    BITDEC_ASSERT(cfg.num_priority_levels > 0,
                  "need at least one priority level");
    BITDEC_ASSERT(cfg.shared_prefix_tokens == 0 || cfg.shared_prefix_id != 0,
                  "a shared prefix needs a non-zero id");
    BITDEC_ASSERT(cfg.long_prompt_every == 0 || cfg.long_prompt_tokens > 0,
                  "long-prompt stragglers need a positive prompt length");

    Rng rng(cfg.seed);
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(cfg.num_requests));

    double clock = 0;
    for (int i = 0; i < cfg.num_requests; i++) {
        // Exponential inter-arrival gap; 1 - uniform() avoids log(0).
        clock += -std::log(1.0 - rng.uniform()) / cfg.arrival_rate_qps;

        Request r;
        r.id = i;
        r.arrival_s = clock;
        r.prompt_tokens = lognormalLength(rng, cfg.prompt_median,
                                          cfg.prompt_log_sigma,
                                          cfg.prompt_min, cfg.prompt_max);
        // Stragglers override the draw (which is still consumed above, so
        // the rest of the trace is unchanged) with a fixed long prompt.
        if (cfg.long_prompt_every > 0 &&
            (i + 1) % cfg.long_prompt_every == 0)
            r.prompt_tokens = cfg.long_prompt_tokens;
        r.output_tokens = lognormalLength(rng, cfg.output_median,
                                          cfg.output_log_sigma,
                                          cfg.output_min, cfg.output_max);
        if (cfg.shared_prefix_tokens > 0) {
            // Common system prompt ahead of the unique tail.
            r.prefix_id = cfg.shared_prefix_id;
            r.prefix_tokens = cfg.shared_prefix_tokens;
            r.prompt_tokens += cfg.shared_prefix_tokens;
        }
        r.priority = i % cfg.num_priority_levels;
        trace.push_back(r);
    }

    // Idle sessions: near-simultaneous early arrivals that prefill a
    // fixed context, emit one token, park, and wake staggered later. No
    // RNG draws — the main trace above is byte-identical with the knob
    // off.
    for (int i = 0; i < cfg.num_idle_sessions; i++) {
        BITDEC_ASSERT(cfg.idle_prompt_tokens > 0 &&
                      cfg.idle_output_tokens > 1,
                      "idle sessions need a prompt and >= 2 output tokens");
        Request r;
        r.id = cfg.num_requests + i;
        r.arrival_s = i * 1e-3;
        r.prompt_tokens = cfg.idle_prompt_tokens;
        r.output_tokens = cfg.idle_output_tokens;
        r.idle_after_tokens = 1;
        r.idle_wake_s = cfg.idle_wake_s + i * cfg.idle_wake_stagger_s;
        trace.push_back(r);
    }
    if (cfg.num_idle_sessions > 0)
        std::stable_sort(trace.begin(), trace.end(),
                         [](const Request& a, const Request& b) {
                             return a.arrival_s < b.arrival_s;
                         });
    return trace;
}

std::vector<Request>
smokeTrace()
{
    // (arrival_s, prompt, output) — arrivals land within 30 ms while each
    // request runs for ~100 ms and more of virtual time, so all eight are
    // in flight together: prefill overlaps decode and a small page pool is
    // guaranteed to hit exhaustion.
    static constexpr struct
    {
        double arrival;
        int prompt;
        int output;
    } kSmoke[] = {
        {0.000, 48, 24}, {0.002, 32, 16}, {0.004, 64, 16}, {0.006, 24, 32},
        {0.010, 96, 12}, {0.012, 16, 40}, {0.020, 40, 16}, {0.030, 160, 8},
    };

    std::vector<Request> trace;
    int id = 0;
    for (const auto& s : kSmoke) {
        Request r;
        r.id = id++;
        r.arrival_s = s.arrival;
        r.prompt_tokens = s.prompt;
        r.output_tokens = s.output;
        trace.push_back(r);
    }
    return trace;
}

} // namespace bitdec::serving
