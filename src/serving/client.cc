#include "serving/client.h"

#include <algorithm>

#include "common/logging.h"

namespace bitdec::serving {

namespace {

/** Fresh runtime state: a submit carries only the workload fields. */
Request
sanitized(const Request& r)
{
    Request c;
    c.id = r.id;
    c.arrival_s = r.arrival_s;
    c.prompt_tokens = r.prompt_tokens;
    c.output_tokens = r.output_tokens;
    c.prefix_id = r.prefix_id;
    c.prefix_tokens = r.prefix_tokens;
    c.priority = r.priority;
    c.idle_after_tokens = r.idle_after_tokens;
    c.idle_wake_s = r.idle_wake_s;
    c.deadline_s = r.deadline_s;
    return c;
}

} // namespace

EngineClient::EngineClient(const sim::GpuArch& arch,
                           const model::ModelConfig& model,
                           const EngineConfig& cfg)
    : engine_(arch, model, cfg)
{
}

int
EngineClient::submit(const Request& r)
{
    BITDEC_ASSERT(!streaming_, "batch submit while a stream is open");
    BITDEC_ASSERT(index_.find(r.id) == index_.end(),
                  "duplicate request id ", r.id, " submitted");
    store_.push_back(sanitized(r));
    index_[r.id] = store_.size() - 1;
    pending_.push_back(store_.size() - 1);
    return r.id;
}

const Request*
EngineClient::poll(int id) const
{
    const auto it = index_.find(id);
    return it == index_.end() ? nullptr : &store_[it->second];
}

bool
EngineClient::cancel(int id)
{
    BITDEC_ASSERT(!streaming_, "batch cancel while a stream is open — "
                               "use streamCancel");
    const auto it = index_.find(id);
    if (it == index_.end())
        return false;
    Request& r = store_[it->second];
    if (r.state != RequestState::Queued ||
        r.cancel_cause != CancelCause::None)
        return false; // already ran (or already canceled)
    r.state = RequestState::Canceled;
    r.cancel_cause = CancelCause::Client;
    canceled_++;
    return true;
}

ServingMetrics
EngineClient::drain()
{
    BITDEC_ASSERT(!streaming_, "drain while a stream is open");
    // Client-canceled requests never reach the engine; a drain with
    // nothing left to run is a no-op (the engine requires a non-empty
    // trace).
    std::vector<Request> batch;
    for (const std::size_t slot : pending_) {
        if (store_[slot].state == RequestState::Canceled)
            continue;
        batch.push_back(store_[slot]);
    }
    pending_.clear();
    if (batch.empty())
        return ServingMetrics{};

    // The engine sorts nothing itself: traces arrive by arrival time.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Request& a, const Request& b) {
                         return a.arrival_s < b.arrival_s;
                     });
    const ServingMetrics m = engine_.run(batch);
    for (const Request& done : batch) {
        store_[index_.at(done.id)] = done;
        if (done.state == RequestState::Finished)
            finished_++;
        else if (done.state == RequestState::Canceled)
            canceled_++; // shed or deadline: the engine's cancellation
    }
    return m;
}

ClientStats
EngineClient::stats() const
{
    ClientStats s;
    s.submitted = static_cast<int>(store_.size());
    for (const std::size_t slot : pending_)
        if (store_[slot].state == RequestState::Queued)
            s.pending++;
    for (const std::size_t slot : stream_slots_)
        if (!store_[slot].done())
            s.pending++;
    s.finished = finished_;
    s.canceled = canceled_;
    s.shards = 1;
    s.total_pool_pages = engine_.numPages();
    return s;
}

std::string
EngineClient::admissionError(const Request& r) const
{
    if (index_.find(r.id) != index_.end())
        return detail::concat("duplicate request id ", r.id, " submitted");
    return engine_.admissionError(sanitized(r));
}

void
EngineClient::streamBegin(TokenSink sink)
{
    BITDEC_ASSERT(!streaming_, "streamBegin while a stream is open");
    streaming_ = true;
    stream_slots_.clear();
    engine_.streamBegin(std::move(sink));
}

int
EngineClient::streamSubmit(const Request& r)
{
    BITDEC_ASSERT(streaming_, "streamSubmit without an open stream");
    BITDEC_ASSERT(index_.find(r.id) == index_.end(),
                  "duplicate request id ", r.id, " submitted");
    store_.push_back(sanitized(r));
    index_[r.id] = store_.size() - 1;
    stream_slots_.push_back(store_.size() - 1);
    // A deque never relocates elements on push_back, so the engine can
    // hold this pointer for the life of the stream while poll() reads
    // the same object live.
    engine_.streamAdd(&store_.back());
    return r.id;
}

bool
EngineClient::streamCancel(int id)
{
    BITDEC_ASSERT(streaming_, "streamCancel without an open stream");
    if (!engine_.streamCancel(id))
        return false;
    canceled_++;
    return true;
}

bool
EngineClient::streamTick()
{
    BITDEC_ASSERT(streaming_, "streamTick without an open stream");
    return engine_.streamTick();
}

bool
EngineClient::streamIdle() const
{
    return !streaming_ || engine_.streamIdle();
}

double
EngineClient::streamClock() const
{
    return engine_.streamClock();
}

ServingMetrics
EngineClient::streamSnapshot() const
{
    BITDEC_ASSERT(streaming_, "streamSnapshot without an open stream");
    return engine_.streamSnapshot();
}

ServingMetrics
EngineClient::streamEnd()
{
    BITDEC_ASSERT(streaming_, "streamEnd without an open stream");
    const ServingMetrics m = engine_.streamEnd();
    for (const std::size_t slot : stream_slots_) {
        const Request& r = store_[slot];
        if (r.state == RequestState::Finished)
            finished_++;
        else if (r.state == RequestState::Canceled &&
                 r.cancel_cause != CancelCause::Client)
            canceled_++; // client cancels were counted by streamCancel
    }
    stream_slots_.clear();
    streaming_ = false;
    return m;
}

} // namespace bitdec::serving
