#include "serving/client.h"

#include <algorithm>

#include "common/logging.h"

namespace bitdec::serving {

namespace {

/** Fresh runtime state: a submit carries only the workload fields. */
Request
sanitized(const Request& r)
{
    Request c;
    c.id = r.id;
    c.arrival_s = r.arrival_s;
    c.prompt_tokens = r.prompt_tokens;
    c.output_tokens = r.output_tokens;
    c.prefix_id = r.prefix_id;
    c.prefix_tokens = r.prefix_tokens;
    c.priority = r.priority;
    c.idle_after_tokens = r.idle_after_tokens;
    c.idle_wake_s = r.idle_wake_s;
    c.deadline_s = r.deadline_s;
    return c;
}

} // namespace

EngineClient::EngineClient(const sim::GpuArch& arch,
                           const model::ModelConfig& model,
                           const EngineConfig& cfg)
    : engine_(arch, model, cfg)
{
}

int
EngineClient::submit(const Request& r)
{
    BITDEC_ASSERT(index_.find(r.id) == index_.end(),
                  "duplicate request id ", r.id, " submitted");
    store_.push_back(sanitized(r));
    index_[r.id] = store_.size() - 1;
    pending_.push_back(store_.size() - 1);
    return r.id;
}

const Request*
EngineClient::poll(int id) const
{
    const auto it = index_.find(id);
    return it == index_.end() ? nullptr : &store_[it->second];
}

bool
EngineClient::cancel(int id)
{
    const auto it = index_.find(id);
    if (it == index_.end())
        return false;
    Request& r = store_[it->second];
    if (r.state != RequestState::Queued ||
        r.cancel_cause != CancelCause::None)
        return false; // already ran (or already canceled)
    r.state = RequestState::Canceled;
    r.cancel_cause = CancelCause::Client;
    canceled_++;
    return true;
}

ServingMetrics
EngineClient::drain()
{
    // Client-canceled requests never reach the engine; a drain with
    // nothing left to run is a no-op (the engine requires a non-empty
    // trace).
    std::vector<Request> batch;
    for (const std::size_t slot : pending_) {
        if (store_[slot].state == RequestState::Canceled)
            continue;
        batch.push_back(store_[slot]);
    }
    pending_.clear();
    if (batch.empty())
        return ServingMetrics{};

    // The engine sorts nothing itself: traces arrive by arrival time.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Request& a, const Request& b) {
                         return a.arrival_s < b.arrival_s;
                     });
    const ServingMetrics m = engine_.run(batch);
    for (const Request& done : batch) {
        store_[index_.at(done.id)] = done;
        if (done.state == RequestState::Finished)
            finished_++;
        else if (done.state == RequestState::Canceled)
            canceled_++; // shed or deadline: the engine's cancellation
    }
    return m;
}

ClientStats
EngineClient::stats() const
{
    ClientStats s;
    s.submitted = static_cast<int>(store_.size());
    for (const std::size_t slot : pending_)
        if (store_[slot].state == RequestState::Queued)
            s.pending++;
    s.finished = finished_;
    s.canceled = canceled_;
    s.shards = 1;
    s.total_pool_pages = engine_.numPages();
    return s;
}

} // namespace bitdec::serving
