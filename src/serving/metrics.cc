#include "serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace bitdec::serving {

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0;
    BITDEC_ASSERT(p >= 0 && p <= 100, "percentile out of range");
    std::sort(xs.begin(), xs.end());
    const auto n = static_cast<double>(xs.size());
    const auto rank = static_cast<std::size_t>(
        std::max(0.0, std::ceil(p / 100.0 * n) - 1.0));
    return xs[std::min(rank, xs.size() - 1)];
}

void
MetricsCollector::onStep(double step_s, int decode_batch, int prefill_tokens,
                         int used_pages, int total_pages)
{
    BITDEC_ASSERT(step_s >= 0, "negative step time");
    const double util =
        total_pages > 0 ? static_cast<double>(used_pages) / total_pages : 0;
    step_time_sum_ += step_s;
    decode_batch_weighted_ += step_s * decode_batch;
    page_util_weighted_ += step_s * util;
    peak_page_util_ = std::max(peak_page_util_, util);
    prefill_tokens_ += prefill_tokens;
}

void
MetricsCollector::onDecodeGap(double gap_s)
{
    BITDEC_ASSERT(gap_s > 0, "decode gap must be positive");
    decode_gaps_.push_back(gap_s);
}

void
MetricsCollector::onFinish(const Request& r)
{
    BITDEC_ASSERT(r.state == RequestState::Finished,
                  "onFinish expects a FINISHED request");
    ttft_.push_back(r.first_token_s - r.arrival_s);
    ttft_by_priority_[r.priority].push_back(r.first_token_s - r.arrival_s);
    if (r.output_tokens > 1)
        tpot_.push_back((r.finish_s - r.first_token_s) /
                        (r.output_tokens - 1));
    latency_.push_back(r.latency());
    generated_tokens_ += r.output_tokens;
    prefix_hit_tokens_ += r.prefix_hit_tokens;
    // Commutative fold: the digest depends on every request's token
    // content but not on completion order, so runs that preempt (small
    // pool) and runs that never do (large pool) must agree.
    outputs_digest_ ^= r.output_hash;
}

void
MetricsCollector::onFetchStall(double stall_s)
{
    BITDEC_ASSERT(stall_s >= 0, "negative fetch stall");
    fetch_stalls_.push_back(stall_s);
}

void
MetricsCollector::onTierTick(double step_s, const std::vector<int>& used_pages,
                             int resident_seqs)
{
    peak_resident_seqs_ = std::max(peak_resident_seqs_, resident_seqs);
    if (used_pages.empty())
        return;
    if (tier_used_weighted_.size() < used_pages.size()) {
        tier_used_weighted_.resize(used_pages.size(), 0);
        tier_peak_used_.resize(used_pages.size(), 0);
    }
    tier_time_sum_ += step_s;
    for (std::size_t t = 0; t < used_pages.size(); t++) {
        tier_used_weighted_[t] += step_s * used_pages[t];
        tier_peak_used_[t] = std::max(tier_peak_used_[t], used_pages[t]);
    }
}

void
MetricsCollector::setTierConfig(const std::vector<std::string>& names,
                                const std::vector<int>& capacity_pages)
{
    BITDEC_ASSERT(names.size() == capacity_pages.size(),
                  "tier name/capacity mismatch");
    tier_names_ = names;
    tier_capacity_pages_ = capacity_pages;
}

void
MetricsCollector::setTierStats(const kv::TieredStats& stats, int cold_resumes,
                               int recompute_resumes)
{
    tier_stats_ = stats;
    cold_resumes_ = cold_resumes;
    recompute_resumes_ = recompute_resumes;
}

void
MetricsCollector::setFaultStats(const fault::FaultStats& injected,
                                int fetch_retries, int recompute_recoveries,
                                int shed_requests, int deadline_cancels)
{
    fault_stats_ = injected;
    fetch_retries_ = fetch_retries;
    recompute_recoveries_ = recompute_recoveries;
    shed_requests_ = shed_requests;
    deadline_cancels_ = deadline_cancels;
}

ServingMetrics
MetricsCollector::finalize(double makespan_s, int preemptions,
                           long cow_copies) const
{
    ServingMetrics m;
    m.num_requests = static_cast<int>(latency_.size());
    m.preemptions = preemptions;
    m.makespan_s = makespan_s;
    if (makespan_s > 0) {
        m.sustained_tokens_per_s = generated_tokens_ / makespan_s;
        m.sustained_qps = m.num_requests / makespan_s;
    }

    const auto mean = [](const std::vector<double>& xs) {
        if (xs.empty())
            return 0.0;
        double s = 0;
        for (double x : xs)
            s += x;
        return s / static_cast<double>(xs.size());
    };

    m.ttft_mean_s = mean(ttft_);
    m.ttft_p50_s = percentile(ttft_, 50);
    m.ttft_p95_s = percentile(ttft_, 95);
    m.ttft_p99_s = percentile(ttft_, 99);

    m.tpot_mean_s = mean(tpot_);

    m.decode_stall_mean_s = mean(decode_gaps_);
    m.decode_stall_p50_s = percentile(decode_gaps_, 50);
    m.decode_stall_p99_s = percentile(decode_gaps_, 99);
    m.decode_stall_max_s = percentile(decode_gaps_, 100);

    m.latency_mean_s = mean(latency_);
    m.latency_p50_s = percentile(latency_, 50);
    m.latency_p95_s = percentile(latency_, 95);
    m.latency_p99_s = percentile(latency_, 99);

    if (step_time_sum_ > 0) {
        m.avg_decode_batch = decode_batch_weighted_ / step_time_sum_;
        m.avg_page_utilization = page_util_weighted_ / step_time_sum_;
    }
    m.peak_page_utilization = peak_page_util_;

    m.prefill_tokens = prefill_tokens_;
    m.prefix_hit_tokens = prefix_hit_tokens_;
    const double prefill_demand =
        static_cast<double>(prefill_tokens_ + prefix_hit_tokens_);
    if (prefill_demand > 0)
        m.prefix_hit_rate = prefix_hit_tokens_ / prefill_demand;
    m.cow_copies = cow_copies;

    for (const auto& [prio, xs] : ttft_by_priority_) {
        PriorityTtft p;
        p.priority = prio;
        p.count = static_cast<int>(xs.size());
        p.mean_s = mean(xs);
        p.p95_s = percentile(xs, 95);
        m.ttft_by_priority.push_back(p);
    }

    m.tier = tier_stats_;
    m.cold_resumes = cold_resumes_;
    m.recompute_resumes = recompute_resumes_;
    if (cold_resumes_ + recompute_resumes_ > 0)
        m.tier_hit_rate = static_cast<double>(cold_resumes_) /
                          (cold_resumes_ + recompute_resumes_);
    for (double s : fetch_stalls_)
        m.fetch_stall_total_s += s;
    m.fetch_stall_mean_s = mean(fetch_stalls_);
    m.fetch_stall_p99_s = percentile(fetch_stalls_, 99);
    m.fetch_stall_max_s = percentile(fetch_stalls_, 100);
    m.peak_resident_seqs = peak_resident_seqs_;
    for (std::size_t t = 0; t < tier_names_.size(); t++) {
        TierOccupancy occ;
        occ.name = tier_names_[t];
        occ.capacity_pages = tier_capacity_pages_[t];
        if (t < tier_used_weighted_.size() && tier_time_sum_ > 0)
            occ.avg_used_pages = tier_used_weighted_[t] / tier_time_sum_;
        if (t < tier_peak_used_.size())
            occ.peak_used_pages = tier_peak_used_[t];
        m.tiers.push_back(occ);
    }

    m.faults_injected = fault_stats_;
    m.fetch_retries = fetch_retries_;
    m.recompute_recoveries = recompute_recoveries_;
    m.shed_requests = shed_requests_;
    m.deadline_cancels = deadline_cancels_;

    m.outputs_digest = outputs_digest_;
    return m;
}

std::string
ServingMetrics::toJson(const std::string& indent) const
{
    std::ostringstream oss;
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(outputs_digest));
    const std::string in = indent + "  ";
    oss << "{\n";
    oss << in << "\"num_requests\": " << num_requests
        << ", \"preemptions\": " << preemptions << ", \"makespan_s\": "
        << makespan_s << ",\n";
    oss << in << "\"sustained_qps\": " << sustained_qps
        << ", \"sustained_tokens_per_s\": " << sustained_tokens_per_s
        << ",\n";
    oss << in << "\"ttft_mean_s\": " << ttft_mean_s << ", \"ttft_p50_s\": "
        << ttft_p50_s << ", \"ttft_p95_s\": " << ttft_p95_s
        << ", \"ttft_p99_s\": " << ttft_p99_s << ",\n";
    oss << in << "\"tpot_mean_s\": " << tpot_mean_s << ",\n";
    oss << in << "\"decode_stall_mean_s\": " << decode_stall_mean_s
        << ", \"decode_stall_p50_s\": " << decode_stall_p50_s
        << ", \"decode_stall_p99_s\": " << decode_stall_p99_s
        << ", \"decode_stall_max_s\": " << decode_stall_max_s << ",\n";
    oss << in << "\"latency_mean_s\": " << latency_mean_s
        << ", \"latency_p50_s\": " << latency_p50_s
        << ", \"latency_p95_s\": " << latency_p95_s
        << ", \"latency_p99_s\": " << latency_p99_s << ",\n";
    oss << in << "\"avg_decode_batch\": " << avg_decode_batch
        << ", \"avg_page_utilization\": " << avg_page_utilization
        << ", \"peak_page_utilization\": " << peak_page_utilization
        << ",\n";
    oss << in << "\"prefill_tokens\": " << prefill_tokens
        << ", \"prefix_hit_tokens\": " << prefix_hit_tokens
        << ", \"prefix_hit_rate\": " << prefix_hit_rate
        << ", \"cow_copies\": " << cow_copies << ",\n";
    oss << in << "\"tier\": {\"offloaded_pages\": " << tier.offloaded_pages
        << ", \"fetched_pages\": " << tier.fetched_pages
        << ", \"prefetched_pages\": " << tier.prefetched_pages
        << ", \"prefetch_hits\": " << tier.prefetch_hits
        << ", \"spilled_pages\": " << tier.spilled_pages
        << ", \"dropped_pages\": " << tier.dropped_pages
        << ", \"lru_drops\": " << tier.lru_drops
        << ", \"transfer_failures\": " << tier.transfer_failures
        << ", \"checksum_failures\": " << tier.checksum_failures
        << ", \"repaired_pages\": " << tier.repaired_pages
        << ", \"hedged_fetches\": " << tier.hedged_fetches << "},\n";
    oss << in << "\"cold_resumes\": " << cold_resumes
        << ", \"recompute_resumes\": " << recompute_resumes
        << ", \"tier_hit_rate\": " << tier_hit_rate
        << ", \"peak_resident_seqs\": " << peak_resident_seqs << ",\n";
    oss << in << "\"fetch_stall_total_s\": " << fetch_stall_total_s
        << ", \"fetch_stall_mean_s\": " << fetch_stall_mean_s
        << ", \"fetch_stall_p99_s\": " << fetch_stall_p99_s
        << ", \"fetch_stall_max_s\": " << fetch_stall_max_s << ",\n";
    oss << in << "\"tiers\": [";
    for (std::size_t t = 0; t < tiers.size(); t++)
        oss << (t > 0 ? ", " : "") << "{\"name\": \"" << tiers[t].name
            << "\", \"capacity_pages\": " << tiers[t].capacity_pages
            << ", \"avg_used_pages\": " << tiers[t].avg_used_pages
            << ", \"peak_used_pages\": " << tiers[t].peak_used_pages
            << "}";
    oss << "],\n";
    oss << in << "\"faults_injected\": {\"total\": "
        << faults_injected.total()
        << ", \"fetch_failures\": " << faults_injected.fetch_failures
        << ", \"latency_spikes\": " << faults_injected.latency_spikes
        << ", \"corrupted_pages\": " << faults_injected.corrupted_pages
        << ", \"alloc_failures\": " << faults_injected.alloc_failures
        << "},\n";
    oss << in << "\"fetch_retries\": " << fetch_retries
        << ", \"recompute_recoveries\": " << recompute_recoveries
        << ", \"shed_requests\": " << shed_requests
        << ", \"deadline_cancels\": " << deadline_cancels << ",\n";
    oss << in << "\"ttft_by_priority\": [";
    for (std::size_t p = 0; p < ttft_by_priority.size(); p++)
        oss << (p > 0 ? ", " : "") << "{\"priority\": "
            << ttft_by_priority[p].priority
            << ", \"count\": " << ttft_by_priority[p].count
            << ", \"mean_s\": " << ttft_by_priority[p].mean_s
            << ", \"p95_s\": " << ttft_by_priority[p].p95_s << "}";
    oss << "],\n";
    oss << in << "\"outputs_digest\": \"" << hex << "\"\n";
    oss << indent << "}";
    return oss.str();
}

std::string
ServingMetrics::report() const
{
    std::ostringstream oss;
    oss << "serving:   " << num_requests << " finished, makespan "
        << makespan_s << " s, " << sustained_qps << " req/s, "
        << sustained_tokens_per_s << " tok/s\n";
    oss << "latency:   ttft mean " << ttft_mean_s << " s (p95 " << ttft_p95_s
        << "), tpot " << tpot_mean_s << " s, decode-stall p99 "
        << decode_stall_p99_s << " s\n";
    oss << "pool:      util avg " << avg_page_utilization << " / peak "
        << peak_page_utilization << ", preemptions " << preemptions
        << ", cow " << cow_copies << "\n";
    if (!tiers.empty()) {
        oss << "tiered:    offloaded " << tier.offloaded_pages << ", fetched "
            << tier.fetched_pages << ", prefetched " << tier.prefetched_pages
            << " (hits " << tier.prefetch_hits << "), spilled "
            << tier.spilled_pages << ", dropped " << tier.dropped_pages
            << ", resumes " << cold_resumes << " cold / "
            << recompute_resumes << " recompute\n";
    }
    oss << "faults:    injected " << faults_injected.total() << " (fetch "
        << faults_injected.fetch_failures << ", spike "
        << faults_injected.latency_spikes << ", corrupt "
        << faults_injected.corrupted_pages << ", alloc "
        << faults_injected.alloc_failures << ")\n";
    oss << "recovery:  repaired pages " << tier.repaired_pages
        << ", hedged fetches " << tier.hedged_fetches
        << ", checksum failures " << tier.checksum_failures
        << ", transfer failures " << tier.transfer_failures << ", retries "
        << fetch_retries << ", recompute recoveries " << recompute_recoveries
        << "\n";
    oss << "degraded:  shed " << shed_requests << ", deadline cancels "
        << deadline_cancels << "\n";
    oss << "digest:    outputs 0x" << std::hex << outputs_digest << std::dec;
    return oss.str();
}

} // namespace bitdec::serving
