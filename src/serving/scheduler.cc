#include "serving/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace bitdec::serving {

Scheduler::Scheduler(const SchedulerConfig& cfg) : cfg_(cfg)
{
    BITDEC_ASSERT(cfg.max_batch > 0, "max_batch must be positive");
    BITDEC_ASSERT(cfg.prefill_chunk > 0, "prefill_chunk must be positive");
    BITDEC_ASSERT(cfg.reserve_pages >= 0, "reserve_pages must be >= 0");
}

void
Scheduler::enqueue(Request* r)
{
    BITDEC_ASSERT(r->state == RequestState::Queued,
                  "enqueue expects a QUEUED request");
    waiting_.push_back(r);
}

void
Scheduler::admit(kv::PagedHeadCache& cache)
{
    while (!waiting_.empty() &&
           static_cast<int>(running_.size()) < cfg_.max_batch) {
        Request* r = waiting_.front();
        const int need = cache.pagesFor(r->prefillTarget());
        if (cache.freePages() - cfg_.reserve_pages < need)
            break; // FCFS: the head blocks until it fits
        waiting_.pop_front();
        r->seq = cache.addSequence();
        r->prefilled = 0;
        r->state = RequestState::Prefill;
        running_.push_back(r);
    }
}

Request*
Scheduler::preemptVictim()
{
    if (running_.empty())
        return nullptr;
    return running_.back();
}

void
Scheduler::preempt(Request* r, kv::PagedHeadCache& cache)
{
    auto it = std::find(running_.begin(), running_.end(), r);
    BITDEC_ASSERT(it != running_.end(), "preempting a non-running request");
    running_.erase(it);
    if (r->seq >= 0) {
        cache.removeSequence(r->seq);
        r->seq = -1;
    }
    r->prefilled = 0;
    r->state = RequestState::Preempted;
    r->preemptions++;
    preemptions_++;
    // Front of the queue: the victim resumes before later arrivals, keeping
    // overall service order FCFS.
    waiting_.push_front(r);
}

void
Scheduler::finish(Request* r, kv::PagedHeadCache& cache)
{
    auto it = std::find(running_.begin(), running_.end(), r);
    BITDEC_ASSERT(it != running_.end(), "finishing a non-running request");
    running_.erase(it);
    if (r->seq >= 0) {
        cache.removeSequence(r->seq);
        r->seq = -1;
    }
    r->state = RequestState::Finished;
}

} // namespace bitdec::serving
