#include "serving/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace bitdec::serving {

const char*
toString(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::Fcfs:
        return "FCFS";
      case SchedPolicy::Priority:
        return "priority+aging";
    }
    return "unknown";
}

Scheduler::Scheduler(const SchedulerConfig& cfg) : cfg_(cfg)
{
    BITDEC_ASSERT(cfg.max_batch > 0, "max_batch must be positive");
    BITDEC_ASSERT(cfg.prefill_chunk_tokens >= 0,
                  "prefill_chunk_tokens must be >= 0 (0 = monolithic)");
    BITDEC_ASSERT(cfg.reserve_pages >= 0, "reserve_pages must be >= 0");
    BITDEC_ASSERT(cfg.aging_rate >= 0, "aging_rate must be >= 0");
    BITDEC_ASSERT(cfg.shed_after_s > 0,
                  "shed_after_s must be positive (inf disables shedding)");
}

void
Scheduler::enqueue(Request* r)
{
    BITDEC_ASSERT(r->state == RequestState::Queued,
                  "enqueue expects a QUEUED request");
    waiting_.push_back(r);
}

double
Scheduler::effectivePriority(const Request& r, double now) const
{
    const double waited = std::max(0.0, now - r.arrival_s);
    return r.priority + cfg_.aging_rate * waited;
}

std::size_t
Scheduler::pickCandidate(double now) const
{
    if (cfg_.policy == SchedPolicy::Fcfs)
        return 0;
    // Priority: argmax of effective priority; ties go to the earlier
    // queue position (arrival/requeue order), keeping selection stable.
    std::size_t best = 0;
    double best_p = effectivePriority(*waiting_[0], now);
    for (std::size_t i = 1; i < waiting_.size(); i++) {
        const double p = effectivePriority(*waiting_[i], now);
        if (p > best_p) {
            best = i;
            best_p = p;
        }
    }
    return best;
}

void
Scheduler::admit(kv::PagedHeadCache& cache, double now)
{
    while (!waiting_.empty() &&
           static_cast<int>(running_.size()) < cfg_.max_batch) {
        const std::size_t pick = pickCandidate(now);
        Request* r = waiting_[pick];

        // Resume path: the candidate still owns a sequence (preempted
        // with keep-pages, or a woken idle session). Budget the restore
        // of its offloaded holes plus its next append chunk; the content
        // already in the cache (hot or cold) is never re-prefilled.
        if (r->seq >= 0) {
            const int cached = cache.length(r->seq);
            int next = std::max(0, r->prefillTarget() - cached);
            if (cfg_.prefill_chunk_tokens > 0)
                next = std::min(next, cfg_.prefill_chunk_tokens);
            const int need = cache.missingPages(r->seq) +
                             cache.pagesNeededForAppend(r->seq, next);
            if (cache.freePages() - cfg_.reserve_pages < need)
                break; // blocks until the restore fits (no bypass)
            waiting_.erase(waiting_.begin() +
                           static_cast<std::ptrdiff_t>(pick));
            r->prefilled = cached;
            r->state = cached < r->prefillTarget() ? RequestState::Prefill
                                                   : RequestState::Decode;
            running_.push_back(r);
            continue;
        }

        // Prefix admission gate: when the candidate's shared prefix is not
        // yet published but a running request is prefilling it, hold
        // admission — mapping the pages once published is far cheaper than
        // cold-prefilling the same tokens in parallel. The gate opens as
        // soon as the prefix publishes or its publisher leaves the batch.
        if (cfg_.prefix_reuse && r->prefix_id != 0 && r->prefix_tokens > 0 &&
            cache.prefixTokens(r->prefix_id) == 0) {
            bool inflight = false;
            // Only a still-prefilling runner counts as an in-flight
            // publisher: one already decoding will never (re)publish, so
            // gating on it would stall admission for its whole decode.
            for (const Request* run : running_)
                inflight |= run->prefix_id == r->prefix_id &&
                            run->state == RequestState::Prefill;
            if (inflight)
                break;
        }

        // Shared-prefix hit: pages the index already holds are mapped, not
        // re-allocated. Only full prefix pages stay shared for the whole
        // lifetime; a partially-filled last page is re-allocated on first
        // divergent append (copy-on-write), so budget it as fresh.
        int hit = 0;
        if (cfg_.prefix_reuse && r->prefix_id != 0) {
            const int published = cache.prefixTokens(r->prefix_id);
            if (published > 0 && published <= r->prefix_tokens)
                hit = published;
        }
        // Chunk-granular admission: with chunking on, only the first
        // prefill chunk is budgeted — a partially-prefilled sequence
        // holds only the pages its chunks have filled, and later chunks
        // are paid for tick by tick (preemption absorbs mid-prefill
        // exhaustion). Monolithic mode budgets the whole target.
        int budget_tokens = r->prefillTarget();
        if (cfg_.prefill_chunk_tokens > 0)
            budget_tokens = std::min(budget_tokens,
                                     hit + cfg_.prefill_chunk_tokens);
        const int full_shared = hit / cache.pageSize();
        const int need = cache.pagesFor(budget_tokens) - full_shared;
        if (cache.freePages() - cfg_.reserve_pages < need)
            break; // the policy's pick blocks until it fits (no bypass)

        waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(pick));
        if (hit > 0) {
            r->seq = cache.addSequenceWithPrefix(r->prefix_id);
            r->prefilled = hit;
            r->prefix_hit_tokens += hit;
        } else {
            r->seq = cache.addSequence();
            r->prefilled = 0;
        }
        r->state = RequestState::Prefill;
        running_.push_back(r);
    }
}

TickPlan
Scheduler::planTick(double now) const
{
    TickPlan plan;
    plan.tokens.assign(running_.size(), 0);
    std::vector<std::size_t> prefills;
    for (std::size_t i = 0; i < running_.size(); i++) {
        const Request* r = running_[i];
        // Tier-fetch gate: a request whose cold pages are still in
        // flight appends nothing this tick.
        if (r->fetch_blocked || r->fetch_ready_s > now)
            continue;
        if (r->state == RequestState::Decode) {
            plan.decode_batch++;
            plan.tokens[i] = 1;
        } else if (r->prefillTarget() > r->prefilled) {
            prefills.push_back(i);
        }
    }
    if (prefills.empty())
        return plan;
    // Decode tokens are reserved off the top of the unified budget:
    // generation latency is what the budget protects, so decode is never
    // throttled. Prefilling requests then fair-share the remainder
    // (water-filling, earlier-admitted requests take the remainders):
    // an equal split rather than order-greedy, so a follower that mapped
    // a freshly published prefix loads its short tail alongside the
    // publisher's long prefill instead of queueing behind it.
    long budget = cfg_.prefill_chunk_tokens == 0
                      ? std::numeric_limits<long>::max()
                      : std::max<long>(0, cfg_.prefill_chunk_tokens -
                                             plan.decode_batch);
    while (budget > 0 && !prefills.empty()) {
        const long share = std::max<long>(
            1, budget / static_cast<long>(prefills.size()));
        std::vector<std::size_t> still_hungry;
        for (const std::size_t i : prefills) {
            const Request* r = running_[i];
            const long remaining =
                r->prefillTarget() - r->prefilled - plan.tokens[i];
            const long grant = std::min({remaining, share, budget});
            plan.tokens[i] += static_cast<int>(grant);
            plan.prefill_tokens += static_cast<int>(grant);
            budget -= grant;
            if (remaining > grant && budget > 0)
                still_hungry.push_back(i);
        }
        prefills = std::move(still_hungry);
    }
    return plan;
}

Request*
Scheduler::preemptVictim(const kv::PagedHeadCache& cache)
{
    // Prefer victims whose pages actually return to the pool, but fall
    // back to one whose pages are all shared: preempting it still removes
    // its planned appends from the step's page demand, which is what the
    // engine needs to make progress.
    Request* reclaimable = nullptr;
    Request* any = nullptr;
    // Scan oldest-to-newest with >= comparisons so the newest qualifying
    // request wins ties under both policies.
    for (Request* r : running_) {
        const bool frees = cache.reclaimablePages(r->seq) > 0;
        if (any == nullptr || cfg_.policy == SchedPolicy::Fcfs ||
            r->priority <= any->priority)
            any = r;
        if (frees && (reclaimable == nullptr ||
                      cfg_.policy == SchedPolicy::Fcfs ||
                      r->priority <= reclaimable->priority))
            reclaimable = r;
    }
    return reclaimable != nullptr ? reclaimable : any;
}

void
Scheduler::preempt(Request* r, kv::PagedHeadCache& cache, bool keep_pages)
{
    auto it = std::find(running_.begin(), running_.end(), r);
    BITDEC_ASSERT(it != running_.end(), "preempting a non-running request");
    running_.erase(it);
    if (!keep_pages) {
        // Recompute policy: drop everything; resume re-prefills.
        if (r->seq >= 0) {
            cache.removeSequence(r->seq);
            r->seq = -1;
        }
        r->prefilled = 0;
    }
    // keep_pages: the sequence survives for the caller to offload; the
    // resume path in admit() rebuilds prefilled from the cache length.
    r->state = RequestState::Preempted;
    r->preemptions++;
    preemptions_++;
    // Front of the queue: under Fcfs the victim resumes before later
    // arrivals, keeping overall service order FCFS; under Priority the
    // front position only breaks effective-priority ties.
    waiting_.push_front(r);
}

void
Scheduler::finish(Request* r, kv::PagedHeadCache& cache)
{
    auto it = std::find(running_.begin(), running_.end(), r);
    BITDEC_ASSERT(it != running_.end(), "finishing a non-running request");
    running_.erase(it);
    if (r->seq >= 0) {
        cache.removeSequence(r->seq);
        r->seq = -1;
    }
    r->state = RequestState::Finished;
}

bool
Scheduler::remove(Request* r)
{
    const auto wit = std::find(waiting_.begin(), waiting_.end(), r);
    if (wit != waiting_.end()) {
        waiting_.erase(wit);
        return true;
    }
    const auto rit = std::find(running_.begin(), running_.end(), r);
    if (rit != running_.end()) {
        running_.erase(rit);
        return true;
    }
    const auto iit = std::find(idle_.begin(), idle_.end(), r);
    if (iit != idle_.end()) {
        idle_.erase(iit);
        return true;
    }
    return false;
}

std::vector<Request*>
Scheduler::shedCandidates(double now) const
{
    std::vector<Request*> shed;
    if (!std::isfinite(cfg_.shed_after_s))
        return shed;
    for (Request* r : waiting_) {
        // Only never-admitted arrivals are sheddable: a preempted or
        // idle-parked request has work in flight worth keeping.
        if (r->seq < 0 && r->generated == 0 && r->preemptions == 0 &&
            now - r->arrival_s > cfg_.shed_after_s)
            shed.push_back(r);
    }
    return shed;
}

double
Scheduler::nextShedDeadline() const
{
    double t = std::numeric_limits<double>::infinity();
    if (!std::isfinite(cfg_.shed_after_s))
        return t;
    for (const Request* r : waiting_)
        if (r->seq < 0 && r->generated == 0 && r->preemptions == 0)
            t = std::min(t, r->arrival_s + cfg_.shed_after_s);
    return t;
}

void
Scheduler::parkIdle(Request* r)
{
    auto it = std::find(running_.begin(), running_.end(), r);
    BITDEC_ASSERT(it != running_.end(), "parking a non-running request");
    BITDEC_ASSERT(r->idle_after_tokens > 0, "request has no idle point");
    running_.erase(it);
    r->state = RequestState::Idle;
    idle_.push_back(r);
}

int
Scheduler::wakeIdle(double now)
{
    int woken = 0;
    for (std::size_t i = 0; i < idle_.size();) {
        Request* r = idle_[i];
        if (r->idle_wake_s <= now) {
            idle_.erase(idle_.begin() + static_cast<std::ptrdiff_t>(i));
            r->state = RequestState::Queued;
            waiting_.push_back(r);
            woken++;
        } else {
            i++;
        }
    }
    return woken;
}

double
Scheduler::nextIdleWake() const
{
    double t = std::numeric_limits<double>::infinity();
    for (const Request* r : idle_)
        t = std::min(t, r->idle_wake_s);
    return t;
}

} // namespace bitdec::serving
