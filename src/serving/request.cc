#include "serving/request.h"

namespace bitdec::serving {

const char*
toString(RequestState state)
{
    switch (state) {
      case RequestState::Queued:
        return "QUEUED";
      case RequestState::Prefill:
        return "PREFILL";
      case RequestState::Decode:
        return "DECODE";
      case RequestState::Preempted:
        return "PREEMPTED";
      case RequestState::Idle:
        return "IDLE";
      case RequestState::Finished:
        return "FINISHED";
      case RequestState::Canceled:
        return "CANCELED";
    }
    return "unknown";
}

const char*
toString(CancelCause cause)
{
    switch (cause) {
      case CancelCause::None:
        return "none";
      case CancelCause::Deadline:
        return "deadline";
      case CancelCause::Shed:
        return "shed";
      case CancelCause::Client:
        return "client";
    }
    return "unknown";
}

int
Request::cachedTokens() const
{
    switch (state) {
      case RequestState::Prefill:
        return prefilled;
      case RequestState::Decode:
        return prefillTarget();
      default:
        return 0;
    }
}

std::uint64_t
streamSeed(std::uint64_t stream_id, int token_index)
{
    // splitmix64 finalizer over the (stream, token) pair.
    std::uint64_t z = stream_id ^ static_cast<std::uint64_t>(token_index);
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
tokenSeed(int request_id, int token_index)
{
    return streamSeed(static_cast<std::uint64_t>(request_id) << 32,
                      token_index);
}

std::uint64_t
contentSeed(const Request& r, int pos)
{
    if (pos < r.prefix_tokens)
        return streamSeed(r.prefix_id * 0x9E3779B97F4A7C15ull, pos);
    return tokenSeed(r.id, pos);
}

} // namespace bitdec::serving
