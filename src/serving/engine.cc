#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "backend/registry.h"
#include "common/logging.h"

namespace bitdec::serving {

namespace {

/** Half in [-1, 1) derived from 8 bits of a token seed. */
Half
seedHalf(std::uint64_t seed, int lane)
{
    const auto byte = static_cast<double>((seed >> (8 * (lane % 8))) & 0xFF);
    return Half(static_cast<float>(byte / 128.0 - 1.0));
}

/** FNV-1a fold of a key row's bit patterns. */
std::uint64_t
hashKeyRow(const std::vector<Half>& row)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const Half& x : row) {
        h ^= x.bits();
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace

int
Engine::derivePoolPages(const sim::GpuArch& arch,
                        const model::ModelConfig& model,
                        const EngineConfig& cfg)
{
    model::E2EConfig e2e;
    e2e.system = cfg.system;
    e2e.bits = cfg.bits;
    const double budget =
        arch.hbm_gb * 1e9 -
        model::nonKvMemoryBytes(model, cfg.sched.max_batch, e2e);
    BITDEC_ASSERT(budget > 0, "model does not fit on ", arch.name);

    double bytes_per_token = model.kvBytesFp16(1);
    if (cfg.system != model::SystemKind::FlashDecodingFp16)
        bytes_per_token *= static_cast<double>(cfg.bits) / 16.0;
    const double tokens = budget / bytes_per_token;
    return std::max(1, static_cast<int>(tokens) / cfg.page_size);
}

Engine::Engine(const sim::GpuArch& arch, const model::ModelConfig& model,
               const EngineConfig& cfg)
    : arch_(arch),
      model_(model),
      cfg_(cfg),
      cache_(cfg.cache_head_dim, cfg.page_size,
             cfg.num_pages > 0 ? cfg.num_pages
                               : derivePoolPages(arch, model, cfg)),
      sched_(cfg.sched)
{
    e2e_.system = cfg_.system;
    e2e_.bits = cfg_.bits;
    e2e_.scenario = attn::Scenario::Serving;
    e2e_.page_size = cfg_.page_size;

    if (!cfg_.backend.empty()) {
        // Fail fast: an unknown name dies here listing every registered
        // backend, and a backend that cannot traverse the engine's paged
        // FP16 cache is rejected with its capability line — never a
        // silent fallback to some default path.
        backend::AttentionBackend& be =
            backend::BackendRegistry::instance().resolve(cfg_.backend);
        backend::requireServingCapable(be);
        attn_backend_ = &be;
    }
}

void
Engine::appendToken(Request& r, int pos)
{
    // Shared-prefix positions draw from the prefix stream, so a cold
    // prefill writes the exact bytes a prefix hit maps.
    const std::uint64_t seed = contentSeed(r, pos);
    std::vector<Half> k(static_cast<std::size_t>(cfg_.cache_head_dim));
    std::vector<Half> v(static_cast<std::size_t>(cfg_.cache_head_dim));
    for (int d = 0; d < cfg_.cache_head_dim; d++) {
        k[static_cast<std::size_t>(d)] = seedHalf(seed, d);
        v[static_cast<std::size_t>(d)] = seedHalf(~seed, d);
    }
    const bool ok = cache_.append(r.seq, k, v);
    BITDEC_ASSERT(ok, "append OOM after headroom planning");
}

double
Engine::stepLatency(int decode_batch, long decode_len_sum,
                    int prefill_tokens) const
{
    double t = 0;
    if (decode_batch > 0) {
        const int mean_len = static_cast<int>(
            decode_len_sum / decode_batch);
        t += model::decodeStepTime(arch_, model_, std::max(1, mean_len),
                                   decode_batch, e2e_)
                 .total_s;
    }
    if (prefill_tokens > 0) {
        // Compute-bound prefill: ~2 FLOPs per parameter per token.
        t += prefill_tokens * 2.0 * model_.params / arch_.tcFlops(16);
    }
    // A tick never takes less than one kernel launch.
    return std::max(t, arch_.launch_overhead_us * 1e-6);
}

ServingMetrics
Engine::run(std::vector<Request>& requests)
{
    BITDEC_ASSERT(!requests.empty(), "empty trace");
    for (const Request& r : requests) {
        if (r.prompt_tokens < 1 || r.output_tokens < 1)
            BITDEC_FATAL("request ", r.id, " needs a non-empty prompt and "
                         "output budget (got ", r.prompt_tokens, "/",
                         r.output_tokens, ")");
        if (r.prefix_tokens < 0 || r.prefix_tokens > r.prompt_tokens ||
            (r.prefix_tokens > 0 && r.prefix_id == 0))
            BITDEC_FATAL("request ", r.id, " has an invalid shared prefix (",
                         r.prefix_tokens, " of ", r.prompt_tokens,
                         " prompt tokens, id ", r.prefix_id, ")");
        if (cache_.pagesFor(r.prompt_tokens + r.output_tokens) +
                cfg_.sched.reserve_pages >
            cache_.totalPages())
            BITDEC_FATAL("request ", r.id, " (", r.prompt_tokens, "+",
                         r.output_tokens,
                         " tokens) can never fit the page pool of ",
                         cache_.totalPages(), " pages");
    }

    std::vector<Request*> order;
    order.reserve(requests.size());
    for (Request& r : requests)
        order.push_back(&r);
    std::stable_sort(order.begin(), order.end(),
                     [](const Request* a, const Request* b) {
                         return a->arrival_s < b->arrival_s;
                     });

    MetricsCollector mc;
    const double first_arrival = order.front()->arrival_s;
    const int n = static_cast<int>(order.size());
    std::size_t next_arrival = 0;
    int finished = 0;
    double clock = first_arrival;

    while (finished < n) {
        while (next_arrival < order.size() &&
               order[next_arrival]->arrival_s <= clock)
            sched_.enqueue(order[next_arrival++]);
        sched_.admit(cache_, clock);
        // An empty batch with waiters can mean the prefix index pins so
        // many pages the head does not fit: evict unmapped prefixes and
        // retry admission before jumping the clock.
        if (sched_.running().empty() && sched_.waitingCount() > 0 &&
            cache_.releaseUnusedPrefixes() > 0)
            sched_.admit(cache_, clock);

        if (sched_.running().empty()) {
            BITDEC_ASSERT(next_arrival < order.size(),
                          "scheduler stalled with work pending");
            clock = std::max(clock, order[next_arrival]->arrival_s);
            continue;
        }

        // Plan this tick's appends under the unified token budget;
        // preempt (policy order, reclaimable victims only) until they
        // fit, evicting unused shared prefixes before giving up. The
        // plan is recomputed after every preemption: the victim's
        // appends leave the demand and its budget share flows to the
        // surviving prefills.
        TickPlan plan;
        for (;;) {
            plan = sched_.planTick();
            const std::vector<Request*>& run = sched_.running();
            int pages_needed = 0;
            for (std::size_t i = 0; i < run.size(); i++)
                pages_needed +=
                    cache_.pagesNeededForAppend(run[i]->seq, plan.tokens[i]);
            if (pages_needed <= cache_.freePages())
                break;
            Request* victim = sched_.running().size() > 1
                                  ? sched_.preemptVictim(cache_)
                                  : nullptr;
            if (victim == nullptr) {
                // A single running request can't be preempted: reclaim
                // prefix pages nobody maps, then fall back to hard
                // eviction of the whole index and re-plan. Hard eviction
                // makes progress even when it frees no pages outright —
                // dropping the index's references un-shares the runner's
                // partial page, removing a planned CoW copy from the
                // step's demand.
                if (cache_.releaseUnusedPrefixes() == 0) {
                    BITDEC_ASSERT(cache_.numPrefixes() > 0,
                                  "page pool exhausted with no reclaimable "
                                  "victim and no evictable prefix");
                    cache_.releaseAllPrefixes();
                }
                continue;
            }
            sched_.preempt(victim, cache_);
        }

        // Execute the planned appends: budgeted prefill chunks and decode
        // tokens interleave inside the same tick (hybrid batching).
        long decode_len_sum = 0;
        const std::vector<Request*> batch = sched_.running();
        std::vector<Request*> decoded;
        for (std::size_t bi = 0; bi < batch.size(); bi++) {
            Request* r = batch[bi];
            if (r->state == RequestState::Prefill) {
                const int chunk = plan.tokens[bi];
                for (int i = 0; i < chunk; i++)
                    appendToken(*r, r->prefilled + i);
                r->prefilled += chunk;
                // Chunk-aware publication: the first request whose chunk
                // crosses the shared-prefix boundary publishes the packed
                // pages immediately — mid-prefill, possibly mid-page —
                // so followers map them while the publisher is still
                // loading its unique tail (no-op when already published;
                // republishes after an index eviction).
                if (cfg_.sched.prefix_reuse && r->prefix_id != 0 &&
                    r->prefix_tokens > 0 &&
                    r->prefilled >= r->prefix_tokens &&
                    cache_.prefixTokens(r->prefix_id) == 0)
                    cache_.publishPrefix(r->prefix_id, r->seq,
                                         r->prefix_tokens);
                if (r->prefilled == r->prefillTarget())
                    r->state = RequestState::Decode;
            } else {
                const int pos = r->prompt_tokens + r->generated;
                appendToken(*r, pos);
                // Fold the previously cached key row into the output: the
                // digest then certifies that preempt-and-recompute restored
                // the exact cache content, not just the right lengths.
                const std::uint64_t ctx =
                    hashKeyRow(cache_.tokenKey(r->seq, pos - 1));
                r->output_hash =
                    r->output_hash * 0x100000001B3ull ^
                    (tokenSeed(r->id, pos) ^ ctx);
                r->generated++;
                decode_len_sum += pos + 1;
                decoded.push_back(r);
            }
        }

        // Functional per-step attention: one backend decode batch over
        // each decoding sequence's page table, resolved by name through
        // the registry. Digests are folded sequentially in batch order,
        // so the hashes are identical for any thread count.
        if (attn_backend_ != nullptr && !decoded.empty()) {
            const float scale =
                1.0f / std::sqrt(static_cast<float>(cfg_.cache_head_dim));
            std::vector<Tensor<Half>> qs;
            qs.reserve(decoded.size());
            backend::DecodeBatch b;
            b.scale = scale;
            b.pool = cfg_.pool;
            for (const Request* r : decoded) {
                const int pos = r->prompt_tokens + r->generated - 1;
                const std::uint64_t seed =
                    tokenSeed(r->id, pos) ^ 0x5DEECE66Dull;
                Tensor<Half> q({1, static_cast<std::size_t>(
                                       cfg_.cache_head_dim)});
                for (int d = 0; d < cfg_.cache_head_dim; d++)
                    q.at(0, static_cast<std::size_t>(d)) = seedHalf(seed, d);
                qs.push_back(std::move(q));
            }
            for (std::size_t i = 0; i < decoded.size(); i++)
                b.items.push_back(
                    backend::pagedItem(qs[i], cache_, decoded[i]->seq));
            const std::vector<Tensor<float>> outs =
                attn_backend_->decodeStep(b);
            for (std::size_t i = 0; i < decoded.size(); i++)
                decoded[i]->attn_hash =
                    decoded[i]->attn_hash * 0x100000001B3ull ^
                    backend::fnv1aFold(outs[i], backend::kFnvOffset);
        }

        const double step_s = stepLatency(plan.decode_batch, decode_len_sum,
                                          plan.prefill_tokens);
        clock += step_s;
        BITDEC_ASSERT(clock < cfg_.max_clock_s,
                      "virtual clock exceeded max_clock_s");

        // Decode-stall samples: the gap between a request's consecutive
        // output tokens. A tick that also carried a huge prefill chunk
        // (or a preemption requeue) shows up here as a long gap.
        for (Request* r : decoded) {
            if (r->last_token_s >= 0)
                mc.onDecodeGap(clock - r->last_token_s);
            r->last_token_s = clock;
        }

        for (Request* r : batch) {
            if (r->state != RequestState::Decode)
                continue;
            if (r->first_token_s < 0 && r->generated > 0)
                r->first_token_s = clock;
            if (r->generated == r->output_tokens) {
                r->finish_s = clock;
                sched_.finish(r, cache_);
                mc.onFinish(*r);
                finished++;
            }
        }
        mc.onStep(step_s, plan.decode_batch, plan.prefill_tokens,
                  cache_.totalPages() - cache_.freePages(),
                  cache_.totalPages());
    }

    return mc.finalize(clock - first_arrival, sched_.preemptionCount(),
                       cache_.cowCopies());
}

} // namespace bitdec::serving
