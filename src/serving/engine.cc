#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "backend/registry.h"
#include "common/logging.h"

namespace bitdec::serving {

namespace {

/** Half in [-1, 1) derived from 8 bits of a token seed. */
Half
seedHalf(std::uint64_t seed, int lane)
{
    const auto byte = static_cast<double>((seed >> (8 * (lane % 8))) & 0xFF);
    return Half(static_cast<float>(byte / 128.0 - 1.0));
}

/** FNV-1a fold of a key row's bit patterns. */
std::uint64_t
hashKeyRow(const std::vector<Half>& row)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const Half& x : row) {
        h ^= x.bits();
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace

void
EngineConfig::validate() const
{
    if (page_size < 1)
        BITDEC_FATAL("EngineConfig.page_size must be >= 1, got ",
                     page_size);
    if (num_pages < 0)
        BITDEC_FATAL("EngineConfig.num_pages must be >= 0 (0 derives "
                     "from device HBM), got ",
                     num_pages);
    if (cache_head_dim < 1)
        BITDEC_FATAL("EngineConfig.cache_head_dim must be >= 1, got ",
                     cache_head_dim);
    if (max_clock_s <= 0)
        BITDEC_FATAL("EngineConfig.max_clock_s must be > 0, got ",
                     max_clock_s);
    if (system == model::SystemKind::FlashDecodingFp16) {
        if (bits != 16)
            BITDEC_FATAL("EngineConfig.bits must be 16 for ",
                         model::toString(system), ", got ", bits,
                         " (set system to a low-bit kind or bits to 16)");
    } else if (bits != 2 && bits != 4 && bits != 8) {
        BITDEC_FATAL("EngineConfig.bits must be 2, 4 or 8 for ",
                     model::toString(system), ", got ", bits);
    }
    if (sched.max_batch < 1)
        BITDEC_FATAL("SchedulerConfig.max_batch must be >= 1, got ",
                     sched.max_batch);
    if (sched.reserve_pages < 0)
        BITDEC_FATAL("SchedulerConfig.reserve_pages must be >= 0, got ",
                     sched.reserve_pages);
    if (sched.prefill_chunk_tokens < 0)
        BITDEC_FATAL("SchedulerConfig.prefill_chunk_tokens must be >= 0 "
                     "(0 = monolithic prefill), got ",
                     sched.prefill_chunk_tokens);
    if (sched.aging_rate < 0)
        BITDEC_FATAL("SchedulerConfig.aging_rate must be >= 0, got ",
                     sched.aging_rate);
    if (sched.shed_after_s <= 0)
        BITDEC_FATAL("SchedulerConfig.shed_after_s must be > 0 "
                     "(infinity disables shedding), got ",
                     sched.shed_after_s);
    if (tiered.prefetch_pages < 0)
        BITDEC_FATAL("TieredConfig.prefetch_pages must be >= 0, got ",
                     tiered.prefetch_pages);
    if (tiered.fetch_timeout_s <= 0)
        BITDEC_FATAL("TieredConfig.fetch_timeout_s must be > 0 "
                     "(infinity disables the timeout), got ",
                     tiered.fetch_timeout_s);
    for (const kv::TierSpec& t : tiered.tiers) {
        if (t.capacity_gb <= 0 || t.bandwidth_gbps <= 0 || t.latency_s < 0)
            BITDEC_FATAL("TierSpec '", t.name,
                         "' needs capacity_gb > 0, bandwidth_gbps > 0 "
                         "and latency_s >= 0 (got ",
                         t.capacity_gb, " GB, ", t.bandwidth_gbps,
                         " GB/s, ", t.latency_s, " s)");
    }
    // Faults fire only on the tiered transfer/offload paths: a storm
    // with no tiers underneath would silently never inject anything —
    // the contradictory combo this check turns into a loud error.
    if (!faults.empty() && tiered.tiers.empty())
        BITDEC_FATAL("EngineConfig.faults is set but TieredConfig.tiers "
                     "is empty: faults fire on tiered transfer paths, so "
                     "this storm would never inject (add a tier or clear "
                     "the schedule)");
    if (retry.max_fetch_retries < 0)
        BITDEC_FATAL("RetryPolicy.max_fetch_retries must be >= 0, got ",
                     retry.max_fetch_retries);
    if (retry.backoff_base_s < 0 || retry.backoff_mult < 1 ||
        retry.backoff_max_s < 0)
        BITDEC_FATAL("RetryPolicy backoff needs base >= 0, mult >= 1, "
                     "max >= 0 (got ",
                     retry.backoff_base_s, ", ", retry.backoff_mult, ", ",
                     retry.backoff_max_s, ")");
}

int
Engine::derivePoolPages(const sim::GpuArch& arch,
                        const model::ModelConfig& model,
                        const EngineConfig& cfg)
{
    model::E2EConfig e2e;
    e2e.system = cfg.system;
    e2e.bits = cfg.bits;
    const double budget =
        arch.hbm_gb * 1e9 -
        model::nonKvMemoryBytes(model, cfg.sched.max_batch, e2e);
    BITDEC_ASSERT(budget > 0, "model does not fit on ", arch.name);

    double bytes_per_token = model.kvBytesFp16(1);
    if (cfg.system != model::SystemKind::FlashDecodingFp16)
        bytes_per_token *= static_cast<double>(cfg.bits) / 16.0;
    const double tokens = budget / bytes_per_token;
    return std::max(1, static_cast<int>(tokens) / cfg.page_size);
}

kv::TieredConfig
Engine::resolvedTieredConfig() const
{
    kv::TieredConfig t = cfg_.tiered;
    if (!t.tiers.empty() && t.bytes_per_page <= 0) {
        // Packed page size: what actually crosses tiers is the low-bit
        // payload, so a 4-bit page is 4x denser than FP16 and the cold
        // tiers hold 4x the tokens per byte.
        double bytes_per_token = model_.kvBytesFp16(1);
        if (cfg_.system != model::SystemKind::FlashDecodingFp16)
            bytes_per_token *= static_cast<double>(cfg_.bits) / 16.0;
        t.bytes_per_page = bytes_per_token * cfg_.page_size;
    }
    return t;
}

namespace {

/** Validation gate for the ctor's initializer list: runs before any
 *  member (cache, pool, scheduler) consumes a field. */
const EngineConfig&
validated(const EngineConfig& cfg)
{
    cfg.validate();
    return cfg;
}

} // namespace

Engine::Engine(const sim::GpuArch& arch, const model::ModelConfig& model,
               const EngineConfig& cfg)
    : arch_(arch),
      model_(model),
      cfg_(validated(cfg)),
      cache_(cfg.cache_head_dim, cfg.page_size,
             cfg.num_pages > 0 ? cfg.num_pages
                               : derivePoolPages(arch, model, cfg)),
      pool_(cache_, resolvedTieredConfig()),
      sched_(cfg.sched),
      injector_(cfg.faults, cfg.fault_seed)
{
    pool_.setFaultInjector(&injector_);
    e2e_.system = cfg_.system;
    e2e_.bits = cfg_.bits;
    e2e_.scenario = attn::Scenario::Serving;
    e2e_.page_size = cfg_.page_size;

    if (!cfg_.backend.empty()) {
        // Fail fast: an unknown name dies here listing every registered
        // backend, and a backend that cannot traverse the engine's paged
        // FP16 cache is rejected with its capability line — never a
        // silent fallback to some default path.
        backend::AttentionBackend& be =
            backend::BackendRegistry::instance().resolve(cfg_.backend);
        backend::requireServingCapable(be);
        attn_backend_ = &be;
    }
}

void
Engine::appendToken(Request& r, int pos)
{
    // Shared-prefix positions draw from the prefix stream, so a cold
    // prefill writes the exact bytes a prefix hit maps.
    const std::uint64_t seed = contentSeed(r, pos);
    std::vector<Half> k(static_cast<std::size_t>(cfg_.cache_head_dim));
    std::vector<Half> v(static_cast<std::size_t>(cfg_.cache_head_dim));
    for (int d = 0; d < cfg_.cache_head_dim; d++) {
        k[static_cast<std::size_t>(d)] = seedHalf(seed, d);
        v[static_cast<std::size_t>(d)] = seedHalf(~seed, d);
    }
    const bool ok = cache_.append(r.seq, k, v);
    BITDEC_ASSERT(ok, "append OOM after headroom planning");
}

double
Engine::stepLatency(int decode_batch, long decode_len_sum,
                    int prefill_tokens) const
{
    double t = 0;
    if (decode_batch > 0) {
        const int mean_len = static_cast<int>(
            decode_len_sum / decode_batch);
        t += model::decodeStepTime(arch_, model_, std::max(1, mean_len),
                                   decode_batch, e2e_)
                 .total_s;
    }
    if (prefill_tokens > 0) {
        // Compute-bound prefill: ~2 FLOPs per parameter per token.
        t += prefill_tokens * 2.0 * model_.params / arch_.tcFlops(16);
    }
    // A tick never takes less than one kernel launch.
    return std::max(t, arch_.launch_overhead_us * 1e-6);
}

std::vector<int>
Engine::runningSeqs() const
{
    std::vector<int> seqs;
    for (const Request* r : sched_.running())
        if (r->seq >= 0)
            seqs.push_back(r->seq);
    return seqs;
}

void
Engine::dropToRecompute(Request& r)
{
    BITDEC_ASSERT(r.seq >= 0, "recompute without a sequence");
    pending_resume_.erase(r.seq);
    pool_.forgetSequence(r.seq);
    cache_.removeSequence(r.seq);
    r.seq = cache_.addSequence();
    r.prefilled = 0;
    r.state = RequestState::Prefill;
    r.fetch_blocked = false;
    r.fetch_retries = 0;
    r.fetch_ready_s = -std::numeric_limits<double>::infinity();
    recompute_resumes_++;
}

void
Engine::cancelRequest(Request& r, CancelCause cause, double now)
{
    sched_.remove(&r);
    if (r.seq >= 0) {
        pending_resume_.erase(r.seq);
        pool_.forgetSequence(r.seq);
        cache_.removeSequence(r.seq);
        r.seq = -1;
    }
    r.state = RequestState::Canceled;
    r.cancel_cause = cause;
    r.finish_s = now;
    if (cause == CancelCause::Deadline) {
        deadline_cancels_++;
        inform("serving: request ", r.id, " canceled — deadline ",
               r.deadline_s, " s passed at ", now, " s");
    } else if (cause == CancelCause::Client) {
        inform("serving: request ", r.id, " canceled by client at ", now,
               " s");
    } else {
        shed_requests_++;
        inform("serving: request ", r.id, " shed — queued since ",
               r.arrival_s, " s, still unadmitted at ", now, " s");
    }
}

int
Engine::ensureResident(Request& r, double now, MetricsCollector& mc)
{
    r.fetch_blocked = false;
    if (!pool_.enabled() || r.seq < 0 || !pool_.tracked(r.seq))
        return 0;
    if (cache_.missingPages(r.seq) == 0) {
        // Fully resident already (possibly via earlier prefetches).
        r.fetch_retries = 0;
        if (pending_resume_.erase(r.seq))
            cold_resumes_++;
        return 0;
    }
    if (pool_.contentLost(r.seq)) {
        // Cold payload was discarded under capacity pressure: recompute
        // from the request seeds — byte-identical by construction.
        dropToRecompute(r);
        return 0;
    }
    if (r.fetch_ready_s > now)
        return 0; // backing off a failed fetch: planTick gates the request
    const int len = cache_.length(r.seq);
    const int ps = cfg_.page_size;
    int first_page = 0;
    int last_page = -1;
    if (r.state == RequestState::Decode) {
        // Attention traverses the whole sequence: gate on full residency.
        last_page = (len - 1) / ps;
    } else if (len % ps != 0 && !cache_.pageResident(r.seq, len / ps)) {
        // Prefill appends into the partial last page only; earlier cold
        // pages ride the prefetch lookahead now and the decode gate later.
        first_page = last_page = len / ps;
    }
    if (last_page < 0 ||
        !pool_.isAnythingEmptyInRng(r.seq, first_page, last_page))
        return 0;
    const kv::FetchResult fr = pool_.fetchRange(
        r.seq, first_page * ps, std::min(len - 1, last_page * ps + ps - 1),
        now);
    if (fr.latency_s > 0) {
        r.fetch_ready_s = std::max(r.fetch_ready_s, now + fr.latency_s);
        mc.onFetchStall(fr.latency_s);
    }
    if (fr.status == kv::CacheStatus::ContentLost) {
        // The whole cold payload was discarded under capacity pressure:
        // recompute from the request seeds — byte-identical by
        // construction.
        dropToRecompute(r);
        return 0;
    }
    // Rebuild rot holes: a page that is neither hot-resident nor cold
    // lost its payload to uncorrectable corruption. Every surviving page
    // is checksum-verified good, so only the holes are recomputed — one
    // chunk-sized re-prefill against the restored prefix, charged on the
    // virtual clock, instead of dropping the whole sequence. The rebuilt
    // bytes equal the originals (seed-derived), so digests never move.
    int rebuilt_tokens = 0;
    bool rebuild_oom = false;
    const std::size_t row = static_cast<std::size_t>(cfg_.cache_head_dim);
    for (int i = first_page; i <= last_page && !rebuild_oom; i++) {
        if (cache_.pageResident(r.seq, i) || pool_.coldHas(r.seq, i))
            continue;
        const int page_tokens = std::min(len - i * ps, ps);
        std::vector<Half> k(static_cast<std::size_t>(ps) * row);
        std::vector<Half> v(static_cast<std::size_t>(ps) * row);
        for (int t = 0; t < page_tokens; t++) {
            const std::uint64_t seed = contentSeed(r, i * ps + t);
            for (int d = 0; d < cfg_.cache_head_dim; d++) {
                k[static_cast<std::size_t>(t) * row +
                  static_cast<std::size_t>(d)] = seedHalf(seed, d);
                v[static_cast<std::size_t>(t) * row +
                  static_cast<std::size_t>(d)] = seedHalf(~seed, d);
            }
        }
        if (cache_.restorePage(r.seq, i, k.data(), v.data()) !=
            kv::CacheStatus::Ok)
            rebuild_oom = true; // pool dry: free pages below, retry
        else
            rebuilt_tokens += page_tokens;
    }
    if (rebuilt_tokens > 0) {
        recompute_recoveries_++;
        const double cost =
            rebuilt_tokens * 2.0 * model_.params / arch_.tcFlops(16);
        r.fetch_ready_s = std::max(r.fetch_ready_s, now + cost);
        mc.onFetchStall(cost);
    }
    bool cold_left = false;
    for (int i = first_page; i <= last_page && !cold_left; i++)
        cold_left = pool_.coldHas(r.seq, i);
    if (fr.status == kv::CacheStatus::TransientFault ||
        (fr.status == kv::CacheStatus::CorruptionDetected && cold_left)) {
        // Failed or timed-out transfer (possibly alongside rebuilt rot
        // holes — corruption outranks TransientFault in the result):
        // back off exponentially on the virtual clock, escalate to
        // recompute once retries run out. The budget counts
        // *consecutive zero-progress* attempts — a long multi-page
        // fetch that restores a few pages per attempt is draining the
        // cold set, not stuck, and must not exhaust it.
        if (fr.restored > 0 || rebuilt_tokens > 0)
            r.fetch_retries = 0;
        r.fetch_retries++;
        fetch_retries_++;
        if (r.fetch_retries > cfg_.retry.max_fetch_retries) {
            warn("serving: request ", r.id, " exhausted ",
                 cfg_.retry.max_fetch_retries,
                 " fetch retries — recomputing from seeds");
            recompute_recoveries_++;
            dropToRecompute(r);
            return 0;
        }
        r.fetch_ready_s =
            std::max(r.fetch_ready_s,
                     now + fault::backoffDelay(cfg_.retry, r.fetch_retries));
        return 0;
    }
    int missing = 0;
    for (int i = first_page; i <= last_page; i++)
        missing += cache_.pageResident(r.seq, i) ? 0 : 1;
    if (missing > 0) {
        // Hot pool ran dry mid-restore: report the shortfall so the
        // preemption loop frees pages, then the fetch retries.
        r.fetch_blocked = true;
        return missing;
    }
    r.fetch_retries = 0;
    if (pending_resume_.erase(r.seq))
        cold_resumes_++;
    return 0;
}

bool
Engine::evictIdleVictim(double now)
{
    // Least-recently-active parked session whose pages would actually
    // free hot pool (refcount-1, still-resident pages).
    Request* victim = nullptr;
    for (Request* r : sched_.idleParked()) {
        if (r->seq < 0 || cache_.reclaimablePages(r->seq) == 0)
            continue;
        if (victim == nullptr || r->last_token_s < victim->last_token_s)
            victim = r;
    }
    if (victim == nullptr)
        return false;
    if (pool_.enabled()) {
        const kv::OffloadResult off =
            pool_.offloadSequence(victim->seq, now, runningSeqs());
        if (off.moved > 0)
            pending_resume_.insert(victim->seq);
        return off.moved > 0;
    }
    // Untiered fallback: drop the parked pages outright; the session
    // recomputes its context from seeds on wake (digest-identical).
    cache_.removeSequence(victim->seq);
    victim->seq = -1;
    victim->prefilled = 0;
    recompute_resumes_++;
    return true;
}

std::string
Engine::admissionError(const Request& r) const
{
    if (r.prompt_tokens < 1 || r.output_tokens < 1)
        return detail::concat("request ", r.id,
                              " needs a non-empty prompt and "
                              "output budget (got ",
                              r.prompt_tokens, "/", r.output_tokens, ")");
    if (r.prefix_tokens < 0 || r.prefix_tokens > r.prompt_tokens ||
        (r.prefix_tokens > 0 && r.prefix_id == 0))
        return detail::concat("request ", r.id,
                              " has an invalid shared prefix (",
                              r.prefix_tokens, " of ", r.prompt_tokens,
                              " prompt tokens, id ", r.prefix_id, ")");
    if (cache_.pagesFor(r.prompt_tokens + r.output_tokens) +
            cfg_.sched.reserve_pages >
        cache_.totalPages())
        return detail::concat("request ", r.id, " (", r.prompt_tokens, "+",
                              r.output_tokens,
                              " tokens) can never fit the page pool of ",
                              cache_.totalPages(), " pages");
    if (r.idle_after_tokens > 0 &&
        (r.idle_after_tokens >= r.output_tokens || r.idle_wake_s < 0))
        return detail::concat("request ", r.id, " parks after ",
                              r.idle_after_tokens, " of ", r.output_tokens,
                              " output tokens with wake time ",
                              r.idle_wake_s,
                              " — idle sessions need tokens left to "
                              "generate and a non-negative wake time");
    if (r.deadline_s > 0 && r.deadline_s <= r.arrival_s)
        return detail::concat("request ", r.id, " has deadline ",
                              r.deadline_s, " s at or before its arrival ",
                              r.arrival_s, " s");
    return "";
}

double
Engine::nextDeadline() const
{
    // Earliest completion deadline still pending: cancellations are
    // scheduling events, so idle-clock jumps must not skip past one.
    double t = std::numeric_limits<double>::infinity();
    for (const Request* r : live_)
        if (!r->done() && r->deadline_s > 0)
            t = std::min(t, r->deadline_s);
    return t;
}

void
Engine::streamBegin(TokenSink sink)
{
    BITDEC_ASSERT(!stream_active_, "streamBegin during an active stream");
    BITDEC_ASSERT(sched_.idle(),
                  "streamBegin with work left in the scheduler");
    stream_active_ = true;
    sink_ = std::move(sink);
    live_.clear();
    next_arrival_ = 0;
    finished_ = 0;
    clock_ = 0;
    clock_started_ = false;
    first_arrival_ = std::numeric_limits<double>::infinity();
    mc_ = MetricsCollector{};
}

void
Engine::streamAdd(Request* r)
{
    BITDEC_ASSERT(stream_active_, "streamAdd outside an active stream");
    const std::string err = admissionError(*r);
    if (!err.empty())
        BITDEC_FATAL(err);
    // Keep the not-yet-enqueued tail of live_ sorted by arrival (stable
    // for ties): mid-run submissions slot in exactly where a batch run
    // would have ordered them, so the two modes tick identically.
    const auto tail = live_.begin() + static_cast<std::ptrdiff_t>(
                                          next_arrival_);
    const auto it =
        std::upper_bound(tail, live_.end(), r,
                         [](const Request* a, const Request* b) {
                             return a->arrival_s < b->arrival_s;
                         });
    live_.insert(it, r);
    first_arrival_ = std::min(first_arrival_, r->arrival_s);
}

bool
Engine::streamCancel(int id)
{
    BITDEC_ASSERT(stream_active_, "streamCancel outside an active stream");
    for (Request* r : live_) {
        if (r->id != id)
            continue;
        if (r->done())
            return false;
        cancelRequest(*r, CancelCause::Client, clock_);
        finished_++;
        return true;
    }
    return false;
}

bool
Engine::streamIdle() const
{
    return !stream_active_ ||
           finished_ == static_cast<int>(live_.size());
}

double
Engine::streamClock() const
{
    if (!clock_started_ && next_arrival_ < live_.size())
        return live_[next_arrival_]->arrival_s;
    return clock_;
}

bool
Engine::streamTick()
{
    BITDEC_ASSERT(stream_active_, "streamTick outside an active stream");
    if (streamIdle())
        return false;
    if (!clock_started_) {
        clock_ = live_[next_arrival_]->arrival_s;
        clock_started_ = true;
    }
    {
        double& clock = clock_;
        MetricsCollector& mc = mc_;

        while (next_arrival_ < live_.size() &&
               live_[next_arrival_]->arrival_s <= clock) {
            Request* r = live_[next_arrival_++];
            if (!r->done()) // client-canceled before its arrival tick
                sched_.enqueue(r);
        }
        sched_.wakeIdle(clock);
        // Graceful degradation first: cancel requests whose deadline has
        // passed and shed arrivals the admission TTL gave up on, so the
        // batch and the pool never carry work nobody is waiting for.
        // (A deadline is validated to lie after its arrival, so every
        // expired request has already been enqueued.)
        for (Request* r : live_) {
            if (r->done() || r->deadline_s <= 0 || clock < r->deadline_s)
                continue;
            cancelRequest(*r, CancelCause::Deadline, clock);
            finished_++;
        }
        for (Request* r : sched_.shedCandidates(clock)) {
            cancelRequest(*r, CancelCause::Shed, clock);
            finished_++;
        }
        sched_.admit(cache_, clock);
        // An empty batch with waiters can mean the prefix index pins so
        // many pages the head does not fit: evict unmapped prefixes and
        // retry admission before jumping the clock. Parked idle sessions
        // can pin the pool the same way (untiered runs keep their pages
        // hot): evict them one by one until the head admits.
        if (sched_.running().empty() && sched_.waitingCount() > 0 &&
            cache_.releaseUnusedPrefixes() > 0)
            sched_.admit(cache_, clock);
        while (sched_.running().empty() && sched_.waitingCount() > 0 &&
               evictIdleVictim(clock))
            sched_.admit(cache_, clock);

        if (sched_.running().empty()) {
            double next_t = std::numeric_limits<double>::infinity();
            if (next_arrival_ < live_.size())
                next_t = live_[next_arrival_]->arrival_s;
            next_t = std::min(next_t, sched_.nextIdleWake());
            next_t = std::min(next_t, nextDeadline());
            next_t = std::min(next_t, sched_.nextShedDeadline());
            BITDEC_ASSERT(std::isfinite(next_t),
                          "scheduler stalled with work pending");
            clock = std::max(clock, next_t);
            return true;
        }

        // Plan this tick's appends under the unified token budget;
        // preempt (policy order, reclaimable victims only) until they
        // fit, evicting unused shared prefixes before giving up. The
        // plan is recomputed after every preemption: the victim's
        // appends leave the demand and its budget share flows to the
        // surviving prefills.
        TickPlan plan;
        for (;;) {
            // Resolve tier residency first: demand-fetch the cold pages
            // gating each runner (charging transfer latency on its
            // fetch_ready_s gate); pages a fetch could not restore for
            // lack of hot-pool room join this step's page demand.
            int fetch_backlog = 0;
            for (Request* r : sched_.running())
                fetch_backlog += ensureResident(*r, clock, mc);
            plan = sched_.planTick(clock);
            const std::vector<Request*>& run = sched_.running();
            int pages_needed = fetch_backlog;
            for (std::size_t i = 0; i < run.size(); i++)
                pages_needed +=
                    cache_.pagesNeededForAppend(run[i]->seq, plan.tokens[i]);
            if (pages_needed <= cache_.freePages())
                break;
            // Free pages, cheapest victims first: parked idle sessions
            // nobody is waiting on, then a running victim, then the
            // prefix index.
            if (evictIdleVictim(clock))
                continue;
            Request* victim = sched_.running().size() > 1
                                  ? sched_.preemptVictim(cache_)
                                  : nullptr;
            if (victim == nullptr) {
                // A single running request can't be preempted: reclaim
                // prefix pages nobody maps, then fall back to hard
                // eviction of the whole index and re-plan. Hard eviction
                // makes progress even when it frees no pages outright —
                // dropping the index's references un-shares the runner's
                // partial page, removing a planned CoW copy from the
                // step's demand.
                if (cache_.releaseUnusedPrefixes() > 0)
                    continue;
                if (cache_.numPrefixes() > 0) {
                    cache_.releaseAllPrefixes();
                    continue;
                }
                // Last resort: a runner blocked on its own resume fetch
                // while the pool is exhausted — recompute it from seeds
                // (frees its resident pages, keeps digests intact).
                Request* blocked = nullptr;
                for (Request* r : sched_.running())
                    if (r->fetch_blocked)
                        blocked = r;
                BITDEC_ASSERT(blocked != nullptr,
                              "page pool exhausted with no reclaimable "
                              "victim and no evictable prefix");
                dropToRecompute(*blocked);
                continue;
            }
            if (pool_.enabled()) {
                // Preempt -> offload: the victim's sequence survives in
                // the cold tiers and resumes digest-identical, no
                // recompute. Write-back is off the critical path (the
                // victim is leaving the batch), so no clock charge here;
                // the resume fetch pays the read latency.
                const int seq = victim->seq;
                sched_.preempt(victim, cache_, /*keep_pages=*/true);
                if (pool_.offloadSequence(seq, clock, runningSeqs()).moved >
                    0)
                    pending_resume_.insert(seq);
            } else {
                sched_.preempt(victim, cache_);
            }
        }

        // Every runner gated on an in-flight tier fetch: nothing can
        // append, so jump the clock to the earliest fetch-ready time
        // (or the next arrival/wake) instead of spinning.
        if (plan.decode_batch == 0 && plan.prefill_tokens == 0) {
            double next_t = std::numeric_limits<double>::infinity();
            for (const Request* r : sched_.running())
                if (r->fetch_ready_s > clock)
                    next_t = std::min(next_t, r->fetch_ready_s);
            if (next_arrival_ < live_.size())
                next_t = std::min(next_t, live_[next_arrival_]->arrival_s);
            next_t = std::min(next_t, sched_.nextIdleWake());
            next_t = std::min(next_t, nextDeadline());
            next_t = std::min(next_t, sched_.nextShedDeadline());
            BITDEC_ASSERT(std::isfinite(next_t),
                          "batch stalled with nothing to wait for");
            clock = std::max(clock, next_t);
            return true;
        }

        // Execute the planned appends: budgeted prefill chunks and decode
        // tokens interleave inside the same tick (hybrid batching).
        long decode_len_sum = 0;
        const std::vector<Request*> batch = sched_.running();
        std::vector<Request*> decoded;
        std::vector<std::uint64_t> folds; // parallel to decoded, for sink_
        for (std::size_t bi = 0; bi < batch.size(); bi++) {
            Request* r = batch[bi];
            if (r->state == RequestState::Prefill) {
                const int chunk = plan.tokens[bi];
                for (int i = 0; i < chunk; i++)
                    appendToken(*r, r->prefilled + i);
                r->prefilled += chunk;
                // Chunk-aware publication: the first request whose chunk
                // crosses the shared-prefix boundary publishes the packed
                // pages immediately — mid-prefill, possibly mid-page —
                // so followers map them while the publisher is still
                // loading its unique tail (no-op when already published;
                // republishes after an index eviction).
                if (cfg_.sched.prefix_reuse && r->prefix_id != 0 &&
                    r->prefix_tokens > 0 &&
                    r->prefilled >= r->prefix_tokens &&
                    cache_.prefixTokens(r->prefix_id) == 0 &&
                    !pool_.isAnythingEmptyInRng(
                        r->seq, 0, cache_.pagesFor(r->prefix_tokens) - 1))
                    cache_.publishPrefix(r->prefix_id, r->seq,
                                         r->prefix_tokens);
                if (r->prefilled == r->prefillTarget())
                    r->state = RequestState::Decode;
            } else if (plan.tokens[bi] > 0) {
                const int pos = r->prompt_tokens + r->generated;
                appendToken(*r, pos);
                // Fold the previously cached key row into the output: the
                // digest then certifies that preempt-and-recompute restored
                // the exact cache content, not just the right lengths.
                const std::uint64_t ctx =
                    hashKeyRow(cache_.tokenKey(r->seq, pos - 1));
                const std::uint64_t fold = tokenSeed(r->id, pos) ^ ctx;
                r->output_hash = r->output_hash * 0x100000001B3ull ^ fold;
                folds.push_back(fold);
                r->generated++;
                decode_len_sum += pos + 1;
                decoded.push_back(r);
                // The decode step read the whole sequence: refresh the
                // tier LRU clock and credit prefetched pages their hit.
                pool_.touchRange(r->seq, 0, pos, clock);
            }
        }

        // Functional per-step attention: one backend decode batch over
        // each decoding sequence's page table, resolved by name through
        // the registry. Digests are folded sequentially in batch order,
        // so the hashes are identical for any thread count.
        if (attn_backend_ != nullptr && !decoded.empty()) {
            const float scale =
                1.0f / std::sqrt(static_cast<float>(cfg_.cache_head_dim));
            std::vector<Tensor<Half>> qs;
            qs.reserve(decoded.size());
            backend::DecodeBatch b;
            b.scale = scale;
            b.pool = cfg_.pool;
            for (const Request* r : decoded) {
                const int pos = r->prompt_tokens + r->generated - 1;
                const std::uint64_t seed =
                    tokenSeed(r->id, pos) ^ 0x5DEECE66Dull;
                Tensor<Half> q({1, static_cast<std::size_t>(
                                       cfg_.cache_head_dim)});
                for (int d = 0; d < cfg_.cache_head_dim; d++)
                    q.at(0, static_cast<std::size_t>(d)) = seedHalf(seed, d);
                qs.push_back(std::move(q));
            }
            for (std::size_t i = 0; i < decoded.size(); i++)
                b.items.push_back(
                    backend::pagedItem(qs[i], cache_, decoded[i]->seq));
            const std::vector<Tensor<float>> outs =
                attn_backend_->decodeStep(b);
            for (std::size_t i = 0; i < decoded.size(); i++)
                decoded[i]->attn_hash =
                    decoded[i]->attn_hash * 0x100000001B3ull ^
                    backend::fnv1aFold(outs[i], backend::kFnvOffset);
        }

        const double step_s = stepLatency(plan.decode_batch, decode_len_sum,
                                          plan.prefill_tokens);
        clock += step_s;
        BITDEC_ASSERT(clock < cfg_.max_clock_s,
                      "virtual clock exceeded max_clock_s");

        // Decode-stall samples: the gap between a request's consecutive
        // output tokens. A tick that also carried a huge prefill chunk
        // (or a preemption requeue) shows up here as a long gap.
        for (Request* r : decoded) {
            if (r->last_token_s >= 0)
                mc.onDecodeGap(clock - r->last_token_s);
            r->last_token_s = clock;
        }

        // Emit token events in batch order once the step's clock is
        // final — a streaming front end sees each token stamped with
        // the virtual time it became available.
        if (sink_) {
            for (std::size_t i = 0; i < decoded.size(); i++) {
                TokenEvent ev;
                ev.request_id = decoded[i]->id;
                ev.index = decoded[i]->generated - 1;
                ev.fold = folds[i];
                ev.output_hash = decoded[i]->output_hash;
                ev.clock_s = clock;
                sink_(ev);
            }
        }

        for (Request* r : batch) {
            if (r->state != RequestState::Decode)
                continue;
            if (r->first_token_s < 0 && r->generated > 0)
                r->first_token_s = clock;
            if (r->generated == r->output_tokens) {
                r->finish_s = clock;
                pool_.forgetSequence(r->seq);
                pending_resume_.erase(r->seq);
                sched_.finish(r, cache_);
                mc.onFinish(*r);
                finished_++;
            }
        }

        // Park sessions that just hit their idle point: they leave the
        // batch keeping their sequence; a tiered pool offloads the pages
        // right away (write-back off the critical path), an untiered one
        // keeps them hot until pool pressure evicts them.
        for (Request* r : decoded) {
            if (r->state != RequestState::Decode ||
                r->idle_after_tokens <= 0 ||
                r->generated != r->idle_after_tokens)
                continue;
            sched_.parkIdle(r);
            if (pool_.enabled() &&
                pool_.offloadSequence(r->seq, clock, runningSeqs()).moved > 0)
                pending_resume_.insert(r->seq);
        }

        mc.onStep(step_s, plan.decode_batch, plan.prefill_tokens,
                  cache_.totalPages() - cache_.freePages(),
                  cache_.totalPages());
        std::vector<int> tier_used;
        for (int t = 0; t < pool_.numTiers(); t++)
            tier_used.push_back(pool_.tierUsedPages(t));
        // A sequence counts as resident when its full prompt context is
        // held somewhere (hot or cold) — complete and resumable without
        // recompute. Mid-prefill and content-lost sequences don't count.
        int resident_seqs = 0;
        for (const Request* r : live_)
            if (r->seq >= 0 && !pool_.contentLost(r->seq) &&
                cache_.length(r->seq) >= r->prompt_tokens)
                resident_seqs++;
        mc.onTierTick(step_s, tier_used, resident_seqs);
    }
    return true;
}

ServingMetrics
Engine::finalizeMetrics() const
{
    MetricsCollector mc = mc_;
    std::vector<std::string> tier_names;
    std::vector<int> tier_caps;
    for (int t = 0; t < pool_.numTiers(); t++) {
        tier_names.push_back(pool_.tierName(t));
        tier_caps.push_back(pool_.tierCapacityPages(t));
    }
    mc.setTierConfig(tier_names, tier_caps);
    mc.setTierStats(pool_.stats(), cold_resumes_, recompute_resumes_);
    mc.setFaultStats(injector_.stats(), fetch_retries_,
                     recompute_recoveries_, shed_requests_,
                     deadline_cancels_);
    const double makespan =
        clock_started_ ? clock_ - first_arrival_ : 0.0;
    return mc.finalize(makespan, sched_.preemptionCount(),
                       cache_.cowCopies());
}

ServingMetrics
Engine::streamSnapshot() const
{
    BITDEC_ASSERT(stream_active_,
                  "streamSnapshot outside an active stream");
    return finalizeMetrics();
}

ServingMetrics
Engine::streamEnd()
{
    BITDEC_ASSERT(stream_active_, "streamEnd outside an active stream");
    BITDEC_ASSERT(streamIdle(), "streamEnd with live requests — pump "
                                "streamTick until streamIdle first");
    ServingMetrics m;
    if (!live_.empty())
        m = finalizeMetrics();
    stream_active_ = false;
    sink_ = {};
    live_.clear();
    return m;
}

ServingMetrics
Engine::run(std::vector<Request>& requests)
{
    BITDEC_ASSERT(!requests.empty(), "empty trace");
    std::vector<Request*> order;
    order.reserve(requests.size());
    for (Request& r : requests)
        order.push_back(&r);
    std::stable_sort(order.begin(), order.end(),
                     [](const Request* a, const Request* b) {
                         return a->arrival_s < b->arrival_s;
                     });
    streamBegin();
    for (Request* r : order)
        streamAdd(r);
    while (streamTick()) {
    }
    return streamEnd();
}

} // namespace bitdec::serving
