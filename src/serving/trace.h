/**
 * @file
 * Deterministic synthetic workload generation for the serving engine.
 *
 * Arrival processes and length distributions follow the shapes serving
 * papers use: Poisson arrivals (exponential inter-arrival gaps) with
 * lognormal prompt and output lengths, all driven by the repo's portable
 * Rng so a (seed, config) pair names one exact trace on every platform.
 */
#ifndef BITDEC_SERVING_TRACE_H
#define BITDEC_SERVING_TRACE_H

#include <cstdint>
#include <vector>

#include "serving/request.h"

namespace bitdec::serving {

/** Parameters of one synthetic trace. */
struct TraceConfig
{
    std::uint64_t seed = 1;        //!< RNG seed; same seed -> same trace
    int num_requests = 64;         //!< requests to generate
    double arrival_rate_qps = 1.0; //!< Poisson arrival rate, requests/s

    int prompt_median = 1024;      //!< median prompt length (lognormal)
    double prompt_log_sigma = 0.5; //!< sigma of log(prompt length)
    int prompt_min = 16;
    int prompt_max = 131072;

    int output_median = 128;       //!< median output length (lognormal)
    double output_log_sigma = 0.4; //!< sigma of log(output length)
    int output_min = 4;
    int output_max = 4096;

    /**
     * When > 0, every request's prompt is a common system prompt of this
     * many tokens followed by its lognormal unique tail (prompt_median
     * etc. then describe the tail). Requests carry shared_prefix_id so
     * the engine can map the packed prefix pages instead of re-prefilling
     * them; set Scheduler's prefix_reuse=false for a content-identical
     * no-reuse baseline.
     */
    int shared_prefix_tokens = 0;
    std::uint64_t shared_prefix_id = 0x5EED5EED5EED5EEDull;

    /**
     * Priority classes: request i gets priority i % num_priority_levels
     * (all 0 for the default single level). Higher is more urgent.
     */
    int num_priority_levels = 1;

    /**
     * Long-prompt stragglers: when > 0, every long_prompt_every-th
     * request (ids every-1, 2*every-1, ...) gets a fixed prompt of
     * long_prompt_tokens tokens instead of its lognormal draw — the
     * head-of-line-blocking workload where 100K-token prompts land in
     * the middle of an active decode batch. The lognormal draw is still
     * consumed, so the rest of the trace (arrivals, other lengths) is
     * byte-identical to the long_prompt_every == 0 trace.
     */
    int long_prompt_every = 0;
    int long_prompt_tokens = 0; //!< prompt length of each straggler

    /**
     * Oversubscription knob: appends this many parked idle sessions to
     * the trace (ids continue after num_requests). Each arrives almost
     * immediately, prefills idle_prompt_tokens, generates one token,
     * then parks until its staggered wake time (idle_wake_s + i *
     * idle_wake_stagger_s) and finishes its remaining idle_output_tokens.
     * While parked the session's KV pages are pure capacity load — only
     * a tiered pool can hold many more of them than the hot pool fits.
     */
    int num_idle_sessions = 0;
    int idle_prompt_tokens = 2048; //!< context each idle session holds
    int idle_output_tokens = 8;    //!< output budget per idle session
    double idle_wake_s = 30.0;         //!< first wake time
    double idle_wake_stagger_s = 0.25; //!< wake spacing between sessions
};

/** Generates a Poisson/lognormal trace; requests come sorted by arrival. */
std::vector<Request> generateTrace(const TraceConfig& cfg);

/**
 * Fixed eight-request smoke trace (no RNG): short prompts, staggered
 * arrivals, one long-prompt straggler. Used by unit tests and quickstarts.
 */
std::vector<Request> smokeTrace();

} // namespace bitdec::serving

#endif // BITDEC_SERVING_TRACE_H
