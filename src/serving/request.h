/**
 * @file
 * Request lifecycle for the continuous-batching serving engine.
 *
 * A request arrives at a (virtual) wall-clock time with a prompt budget and
 * an output budget, moves QUEUED -> PREFILL -> DECODE -> FINISHED, and may
 * bounce through PREEMPTED when the page pool runs dry. Prefill is chunked:
 * a request can sit in PREFILL for many ticks, loading the scheduler's
 * budget share of its prompt each tick (see TickPlan), while other
 * requests decode in the same ticks. Preemption uses the recompute policy:
 * the sequence's pages are dropped and, on resume, the prompt plus every
 * token generated so far is prefilled again.
 */
#ifndef BITDEC_SERVING_REQUEST_H
#define BITDEC_SERVING_REQUEST_H

#include <cstdint>
#include <limits>

namespace bitdec::serving {

/** Lifecycle state of one request. */
enum class RequestState
{
    Queued,    //!< arrived, waiting for admission
    Prefill,   //!< admitted, prompt tokens entering the KV cache
    Decode,    //!< generating output tokens, one per engine step
    Preempted, //!< pages reclaimed under memory pressure; awaiting resume
    Idle,      //!< parked session: keeps its sequence (pages typically
               //!< offloaded to a cold tier) until idle_wake_s
    Finished,  //!< output budget met; sequence freed
    Canceled,  //!< deadline expired or load-shed; sequence freed, no
               //!< further engine work (graceful degradation)
};

/** Returns a printable state name. */
const char* toString(RequestState state);

/** Why a request was canceled (graceful-degradation bookkeeping). */
enum class CancelCause
{
    None,     //!< not canceled
    Deadline, //!< Request::deadline_s passed before the output completed
    Shed,     //!< admission TTL expired under load (never admitted)
    Client,   //!< canceled through ServingClient::cancel before its run
};

/** Returns a printable cancel-cause name. */
const char* toString(CancelCause cause);

/** One inference request flowing through the engine. */
struct Request
{
    int id = 0;            //!< dense id, also the seed of its token stream
    double arrival_s = 0;  //!< virtual-clock arrival time
    int prompt_tokens = 0; //!< prompt length
    int output_tokens = 0; //!< output budget (decode steps to run)

    /**
     * Non-zero when the first prefix_tokens prompt tokens are a shared
     * system prompt: their content derives from the prefix id's token
     * stream (not the request's), so every request naming the same
     * prefix_id writes byte-identical prefix pages and the scheduler may
     * map already-packed pages instead of re-prefilling them.
     */
    std::uint64_t prefix_id = 0;
    int prefix_tokens = 0; //!< shared-prefix length (<= prompt_tokens)
    int priority = 0;      //!< scheduling priority; higher is more urgent

    /**
     * Idle-session shape: when idle_after_tokens > 0 the request parks
     * (leaves the batch, state IDLE) once that many output tokens have
     * been generated, and resumes at virtual time idle_wake_s. A tiered
     * engine offloads the parked sequence's pages to the cold tiers; an
     * untiered engine keeps them hot until pool pressure drops them
     * (recompute on wake). 0 = never parks.
     */
    int idle_after_tokens = 0;
    double idle_wake_s = -1; //!< wake time of a parked session

    /**
     * Completion deadline (absolute virtual time). A request not
     * FINISHED when the clock passes this is cleanly canceled — removed
     * from the scheduler, pages freed, state CANCELED — at the engine's
     * next scheduling point. <= 0 (the default) means no deadline.
     * Canceled requests do not fold into the run's outputs_digest.
     */
    double deadline_s = -1;

    // --- runtime state, owned by the scheduler/engine ---
    RequestState state = RequestState::Queued;
    int seq = -1;          //!< PagedHeadCache sequence id; -1 when none
    int prefilled = 0;     //!< tokens of the current prefill target in cache
    int generated = 0;     //!< output tokens produced so far
    int preemptions = 0;   //!< times this request lost its pages
    long prefix_hit_tokens = 0; //!< prefill tokens skipped via shared
                                //!< pages, summed over (re-)admissions

    /**
     * Tier-fetch gate: the request may not append before this virtual
     * time — the engine sets it to clock + transfer latency when cold
     * pages are restored for the request (see TieredPagePool::fetchRange),
     * and Scheduler::planTick plans 0 tokens for a still-gated request.
     */
    double fetch_ready_s = -std::numeric_limits<double>::infinity();
    /**
     * True while a demand fetch could not complete because the hot pool
     * had no free pages: the engine counts the missing pages into its
     * preemption demand and retries the fetch once pages free up.
     */
    bool fetch_blocked = false;
    /**
     * Consecutive transient-fault fetch failures (injected transfer
     * failure, timeout or alloc fault). Each failure backs the request
     * off exponentially via fetch_ready_s; the engine resets the counter
     * on a successful fetch and escalates to recompute when it exceeds
     * RetryPolicy::max_fetch_retries.
     */
    int fetch_retries = 0;
    //! Why the request was canceled; None while live or finished.
    CancelCause cancel_cause = CancelCause::None;

    double first_token_s = -1; //!< when the first output token appeared
    double last_token_s = -1;  //!< when the most recent output token
                               //!< appeared; successive gaps are the
                               //!< decode-stall samples (virtual seconds)
    double finish_s = -1;      //!< when the output budget was met
    std::uint64_t output_hash = 0; //!< checksum of the generated KV stream
    std::uint64_t attn_hash = 0;   //!< checksum of per-step attention
                                   //!< outputs (EngineConfig::backend set)

    /**
     * Tokens the current prefill phase must load: the prompt plus, after a
     * preemption, every output token already generated (recompute policy).
     */
    int prefillTarget() const { return prompt_tokens + generated; }

    /** Tokens this request holds in the cache right now. */
    int cachedTokens() const;

    /** True once the request needs no further engine work. */
    bool done() const
    {
        return state == RequestState::Finished ||
               state == RequestState::Canceled;
    }

    /** End-to-end latency; only valid when done(). */
    double latency() const { return finish_s - arrival_s; }
};

/**
 * Deterministic token-content hash for an arbitrary 64-bit stream id.
 * Shared prefixes are token streams named by their prefix_id, so every
 * request sharing a prefix writes identical prefix content.
 */
std::uint64_t streamSeed(std::uint64_t stream_id, int token_index);

/**
 * Deterministic token-content hash: the K/V vector written for token
 * @p token_index of request @p request_id derives from this value alone, so
 * preempt-and-recompute reproduces the identical cache content.
 */
std::uint64_t tokenSeed(int request_id, int token_index);

/**
 * Content seed of prompt/output position @p pos of request @p r: the
 * shared-prefix stream for pos < prefix_tokens, the request's own stream
 * otherwise. Independent of whether prefix *reuse* is enabled — a cold
 * prefill writes exactly the bytes a prefix hit would have mapped, which
 * is what makes cold-run and hit-run digests comparable.
 */
std::uint64_t contentSeed(const Request& r, int pos);

} // namespace bitdec::serving

#endif // BITDEC_SERVING_REQUEST_H
