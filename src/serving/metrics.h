/**
 * @file
 * Serving-quality metrics: TTFT, TPOT, request-latency percentiles,
 * sustained throughput, page-pool utilization and preemption counts.
 *
 * The collector ingests one sample per engine step plus one record per
 * finished request and folds them into a ServingMetrics summary at the end
 * of a run.
 */
#ifndef BITDEC_SERVING_METRICS_H
#define BITDEC_SERVING_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "kvcache/tiered_cache.h"
#include "serving/request.h"

namespace bitdec::serving {

/** TTFT summary of one priority class. */
struct PriorityTtft
{
    int priority = 0;   //!< static priority of the class
    int count = 0;      //!< finished requests in the class
    double mean_s = 0;  //!< mean time to first token
    double p95_s = 0;   //!< p95 time to first token
};

/** Occupancy summary of one cold KV tier over a run. */
struct TierOccupancy
{
    std::string name;       //!< TierSpec::name
    int capacity_pages = 0; //!< pages the tier can hold
    double avg_used_pages = 0;  //!< time-weighted mean pages held
    int peak_used_pages = 0;    //!< max pages held at any step
};

/** Summary of one serving run. */
struct ServingMetrics
{
    int num_requests = 0;  //!< requests that finished
    int preemptions = 0;   //!< total preempt-and-recompute events
    double makespan_s = 0; //!< first arrival to last completion

    double sustained_tokens_per_s = 0; //!< generated tokens / makespan
    double sustained_qps = 0;          //!< finished requests / makespan

    double ttft_mean_s = 0; //!< time to first output token
    double ttft_p50_s = 0;
    double ttft_p95_s = 0;
    double ttft_p99_s = 0;

    double tpot_mean_s = 0; //!< time per output token after the first

    /**
     * Decode-stall distribution: gaps between consecutive output tokens
     * of the same request (virtual seconds), sampled across every
     * decoding request and step. A monolithic long prefill sharing a
     * tick with the decode batch — or a preemption requeue — shows up
     * as a long gap; chunked prefill bounds the tail. Zero when no
     * request produced two or more tokens.
     */
    double decode_stall_mean_s = 0;
    double decode_stall_p50_s = 0;
    double decode_stall_p99_s = 0;
    double decode_stall_max_s = 0;

    double latency_mean_s = 0; //!< arrival -> completion
    double latency_p50_s = 0;
    double latency_p95_s = 0;
    double latency_p99_s = 0;

    double avg_decode_batch = 0;       //!< mean decoding requests per step
    double avg_page_utilization = 0;   //!< mean fraction of pool in use
    double peak_page_utilization = 0;  //!< max fraction of pool in use

    // --- shared-prefix reuse ---
    long prefill_tokens = 0;    //!< prefill tokens actually appended
    long prefix_hit_tokens = 0; //!< prefill tokens skipped via shared pages
    double prefix_hit_rate = 0; //!< hits / (hits + appended prefill)
    long cow_copies = 0;        //!< copy-on-write page copies performed

    // --- tiered KV cache (all zero/empty when tiering is off) ---
    kv::TieredStats tier; //!< cumulative page-transfer counters
    int cold_resumes = 0;      //!< resumes completed by fetching cold pages
    int recompute_resumes = 0; //!< resumes that had to recompute (content
                               //!< dropped under cold-capacity pressure)
    /** Fraction of resumes served from the cold tiers instead of
     *  recomputing: cold / (cold + recompute); 0 when no resumes. */
    double tier_hit_rate = 0;
    /**
     * Fetch-stall distribution: virtual seconds a request was gated on a
     * cold->hot page transfer before it could append again; one sample
     * per fetch operation that charged latency.
     */
    double fetch_stall_total_s = 0;
    double fetch_stall_mean_s = 0;
    double fetch_stall_p99_s = 0;
    double fetch_stall_max_s = 0;
    /**
     * Peak sequences whose full prompt context was held at one time —
     * anywhere, hot pool or cold tiers, but complete and resumable
     * without recompute. The capacity headline a tiered pool buys: an
     * untiered run can only hold as many full contexts as the hot pool
     * fits, a tiered run is bounded by hot + cold. (Sequences admitted
     * but still mid-prefill, or whose cold payload was dropped, do not
     * count.)
     */
    int peak_resident_seqs = 0;
    /** Per-tier occupancy, fastest first; empty when tiering is off. */
    std::vector<TierOccupancy> tiers;

    // --- fault injection & recovery (all zero when faults are off) ---
    fault::FaultStats faults_injected; //!< faults fired, by kind
    int fetch_retries = 0;       //!< transient-fault fetch retries taken
    /** Fault-driven recompute escalations: corruption detections plus
     *  retry exhaustions that fell back to dropToRecompute. A subset of
     *  recompute_resumes (which also counts capacity-pressure drops). */
    int recompute_recoveries = 0;
    int shed_requests = 0;   //!< requests canceled by the admission TTL
    int deadline_cancels = 0; //!< requests canceled past their deadline

    /** Per-priority TTFT, ascending by priority; one entry per class. */
    std::vector<PriorityTtft> ttft_by_priority;

    /** Commutative fold of every request's output hash (determinism). */
    std::uint64_t outputs_digest = 0;

    /**
     * Human-readable multi-line summary: throughput, latency, pool and
     * tier counters, and the fault/recovery block (faults injected by
     * kind, checksum/transfer failures, retries, recompute recoveries,
     * shed and deadline cancellations). One call site for operators and
     * the chaos demos — the bench JSON carries the same fields.
     */
    std::string report() const;

    /**
     * Stable machine-readable JSON object (one line-broken object, no
     * trailing newline): every metric above under its snake_case field
     * name, digests as 16-hex-digit strings, tier and fault blocks
     * included even when zero. All BENCH_*.json records embed this
     * instead of hand-formatting, so the tiered, fault and cluster
     * benches emit identical key names and a dashboard parses every
     * record with one schema. @p indent prefixes each line (nesting).
     */
    std::string toJson(const std::string& indent = "  ") const;
};

/**
 * Nearest-rank percentile of @p xs for @p p in [0, 100]; 0 when empty.
 * The input is copied and sorted internally.
 */
double percentile(std::vector<double> xs, double p);

/** Accumulates per-step and per-request observations during a run. */
class MetricsCollector
{
  public:
    /**
     * Records one engine step.
     * @param step_s          virtual time the step consumed
     * @param decode_batch    requests that produced a token this step
     * @param prefill_tokens  prompt tokens appended (cold prefill) this step
     * @param used_pages      pool pages allocated after the step
     * @param total_pages     pool size
     */
    void onStep(double step_s, int decode_batch, int prefill_tokens,
                int used_pages, int total_pages);

    /**
     * Records one decode-stall sample: the virtual-time gap (seconds,
     * > 0) between two consecutive output tokens of the same request.
     * Called once per decoding request per step, from the second output
     * token on (the first token's wait is TTFT, not a stall).
     */
    void onDecodeGap(double gap_s);

    /** Records a finished request (state must be FINISHED). */
    void onFinish(const Request& r);

    /**
     * Records one fetch-stall sample: the virtual time a request spent
     * gated on a cold->hot transfer (one sample per charged fetch).
     */
    void onFetchStall(double stall_s);

    /**
     * Records per-tier occupancy and resident-sequence count for one
     * step of @p step_s virtual seconds. Call with an empty @p used_pages
     * when tiering is off — the resident-sequence peak is still tracked.
     */
    void onTierTick(double step_s, const std::vector<int>& used_pages,
                    int resident_seqs);

    /** Declares the cold-tier layout (names + page capacities). */
    void setTierConfig(const std::vector<std::string>& names,
                       const std::vector<int>& capacity_pages);

    /** Hands over the pool's cumulative counters and resume outcomes. */
    void setTierStats(const kv::TieredStats& stats, int cold_resumes,
                      int recompute_resumes);

    /**
     * Hands over the run's fault-injection and recovery counters: the
     * injector's fired-fault stats plus the engine's retry, recovery and
     * graceful-degradation tallies.
     */
    void setFaultStats(const fault::FaultStats& injected, int fetch_retries,
                       int recompute_recoveries, int shed_requests,
                       int deadline_cancels);

    /**
     * Produces the summary.
     * @param makespan_s  first arrival to last completion
     * @param preemptions total preemptions the scheduler performed
     * @param cow_copies  copy-on-write page copies the cache performed
     */
    ServingMetrics finalize(double makespan_s, int preemptions,
                            long cow_copies = 0) const;

  private:
    std::vector<double> ttft_;
    std::vector<double> tpot_;
    std::vector<double> decode_gaps_;
    std::vector<double> latency_;
    std::map<int, std::vector<double>> ttft_by_priority_;
    std::uint64_t outputs_digest_ = 0;
    long generated_tokens_ = 0;
    long prefill_tokens_ = 0;
    long prefix_hit_tokens_ = 0;

    double step_time_sum_ = 0;
    double decode_batch_weighted_ = 0; //!< time-weighted decode batch
    double page_util_weighted_ = 0;    //!< time-weighted pool utilization
    double peak_page_util_ = 0;

    std::vector<double> fetch_stalls_;
    std::vector<std::string> tier_names_;
    std::vector<int> tier_capacity_pages_;
    std::vector<double> tier_used_weighted_; //!< time-weighted pages held
    std::vector<int> tier_peak_used_;
    double tier_time_sum_ = 0;
    kv::TieredStats tier_stats_;
    int cold_resumes_ = 0;
    int recompute_resumes_ = 0;
    int peak_resident_seqs_ = 0;
    fault::FaultStats fault_stats_;
    int fetch_retries_ = 0;
    int recompute_recoveries_ = 0;
    int shed_requests_ = 0;
    int deadline_cancels_ = 0;
};

} // namespace bitdec::serving

#endif // BITDEC_SERVING_METRICS_H
