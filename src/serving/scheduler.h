/**
 * @file
 * Pluggable continuous-batching scheduler over the paged KV cache.
 *
 * The scheduler owns the waiting queue and the running batch, with two
 * admission policies:
 *
 *  - Fcfs: first-come-first-served with no queue jumping. The head of the
 *    queue blocks admission until the page pool has headroom for its
 *    admission budget (plus a configurable reserve that absorbs decode
 *    growth).
 *  - Priority: highest effective priority first, where effective priority
 *    is the request's static priority plus an aging credit proportional to
 *    its waiting time — so low-priority requests cannot starve. The
 *    selected candidate blocks admission until it fits (no bypass), which
 *    keeps aging meaningful.
 *
 * Prefill is chunked and budgeted: planTick() hands the engine one append
 * plan per tick in which every decoding request gets exactly one token and
 * the prefilling requests fair-share what is left of the unified per-tick
 * token budget (SchedulerConfig::prefill_chunk_tokens) — the
 * piggyback/hybrid batching that keeps a 100K-token prefill from stalling
 * the decode batch for seconds. With chunking on, admission budgets pages
 * for only the first chunk of a request's prefill (the cache allocates
 * page-by-page as chunks land), so a long prompt no longer blocks the
 * queue until its entire prompt fits; with chunking off
 * (prefill_chunk_tokens == 0) the whole prefill target is budgeted and
 * executed in a single tick (monolithic prefill).
 *
 * Admission is prefix-aware: when a request names a published shared
 * prefix, the already-packed prefix pages are mapped into its fresh
 * sequence (refcount bump, no re-prefill) and only the pages for the
 * remaining tokens are budgeted. A request whose prefix is still being
 * prefilled by a running request is held back (admission gate) so bursty
 * arrivals sharing a system prompt do not cold-prefill it N times in
 * parallel.
 *
 * When the pool runs dry mid-step the engine asks for a preemption victim;
 * victims are chosen among running requests by (policy order) x
 * (reclaimable pages): under Fcfs the most recently admitted request, under
 * Priority the lowest-priority one, preferring requests whose pages are not
 * all shared (those actually return pages to the pool). The victim loses
 * its pages (recompute policy) and rejoins the waiting queue; no request is
 * ever dropped.
 */
#ifndef BITDEC_SERVING_SCHEDULER_H
#define BITDEC_SERVING_SCHEDULER_H

#include <deque>
#include <limits>
#include <vector>

#include "kvcache/paged_cache.h"
#include "serving/request.h"

namespace bitdec::serving {

/** Admission/preemption ordering policy. */
enum class SchedPolicy
{
    Fcfs,     //!< strict arrival order; preempt newest-admitted first
    Priority, //!< priority with aging; preempt lowest-priority first
};

/** Returns a printable policy name. */
const char* toString(SchedPolicy policy);

/** Scheduler policy knobs. */
struct SchedulerConfig
{
    int max_batch = 64;    //!< cap on concurrently running requests
    int reserve_pages = 0; //!< pages kept free at admission time

    /**
     * Unified per-tick token budget (tokens/tick). Each tick, every
     * decoding request consumes one budget token first; prefilling
     * requests then split the remainder in admission order, so total
     * appended tokens per tick never exceed this bound and the step
     * latency a huge prefill charges is capped. 0 disables chunking:
     * every prefill loads its whole remaining target in one tick
     * (monolithic prefill — the head-of-line-blocking baseline).
     */
    int prefill_chunk_tokens = 2048;

    SchedPolicy policy = SchedPolicy::Fcfs;

    /**
     * Priority points a waiting request gains per second of queueing
     * (Priority policy only). With rate a > 0 a request of priority p
     * overtakes one of priority q after (q - p) / a seconds of extra
     * waiting; 0 disables aging (pure static priority).
     */
    double aging_rate = 0.1;

    /** Map published shared-prefix pages on admission (off = always
     *  cold-prefill; token content is unaffected, only page sharing). */
    bool prefix_reuse = true;

    /**
     * Admission TTL (seconds of queue wait) for load shedding: a request
     * still waiting for its *first* admission after this long is shed —
     * canceled instead of served — so that when fault pressure or
     * oversubscription keeps the pool starved, the queue degrades by
     * dropping the tail instead of growing every request's latency
     * without bound. Requests that were already admitted (preempted or
     * idle-parked resumes) are never shed: their work is not thrown
     * away. Infinite (the default) disables shedding.
     */
    double shed_after_s = std::numeric_limits<double>::infinity();
};

/**
 * One engine tick's append plan, parallel to Scheduler::running().
 * tokens[i] is how many tokens running()[i] appends this tick: exactly 1
 * for a DECODE request, its budget share (possibly 0 when the budget is
 * exhausted by earlier requests) for a PREFILL request.
 */
struct TickPlan
{
    std::vector<int> tokens; //!< appends per running request, batch order
    int decode_batch = 0;    //!< requests producing one output token
    int prefill_tokens = 0;  //!< total prompt tokens appended this tick
};

/** Continuous-batching scheduler with pluggable admission order. */
class Scheduler
{
  public:
    explicit Scheduler(const SchedulerConfig& cfg);

    /** Adds a newly arrived request to the tail of the waiting queue. */
    void enqueue(Request* r);

    /**
     * Admits waiting requests in policy order while the batch has a slot
     * and the pool has headroom for the candidate's admission budget:
     * its whole remaining prefill target when chunking is off, only its
     * first prefill chunk when chunking is on (shared-prefix pages it can
     * map are never re-budgeted). Stops at the first candidate that does
     * not fit (no skipping). Admitted requests get a fresh cache
     * sequence — prefix pages mapped when available — and enter PREFILL.
     *
     * A candidate that still owns a sequence (seq >= 0: preempted with
     * keep-pages, or a woken idle session) resumes instead: no fresh
     * sequence, and its budget is the pages to restore its offloaded
     * holes (PagedHeadCache::missingPages) plus its next append chunk. It
     * re-enters PREFILL when prefill was interrupted, DECODE otherwise.
     * @param now virtual-clock time, used for priority aging.
     */
    void admit(kv::PagedHeadCache& cache, double now = 0);

    /**
     * Plans this tick's appends under the unified token budget: decode
     * requests are reserved one token each first, then prefilling
     * requests fair-share the remaining prefill_chunk_tokens budget
     * (equal water-filling split; earlier-admitted requests take the
     * remainders, and budget a finished prefill cannot use cascades to
     * the still-hungry ones). A prefilling request may be planned 0
     * tokens on a tick where decode consumes the whole budget — it
     * stalls for the tick but is never starved, because decoding
     * requests retire and return their budget share. Pure function of
     * the current batch: the engine re-plans after every preemption.
     *
     * Tier-fetch gating: a request whose cold-page fetch is still in
     * flight (Request::fetch_blocked, or fetch_ready_s > @p now) is
     * planned 0 tokens — it waits for its pages without holding the
     * batch's budget. The default @p now gates only on fetch_blocked.
     */
    TickPlan
    planTick(double now = std::numeric_limits<double>::infinity()) const;

    /**
     * Picks the preemption victim among running requests: policy order
     * (Fcfs: newest admitted; Priority: lowest static priority, newest
     * admitted among ties), preferring requests with reclaimable pages.
     * When every running request holds only shared pages the policy-order
     * victim is returned anyway — preempting it frees no pages but does
     * drop its planned appends from the step's demand. Returns nullptr
     * only for an empty batch.
     */
    Request* preemptVictim(const kv::PagedHeadCache& cache);

    /**
     * Preempts @p r and puts it at the front of the waiting queue. With
     * @p keep_pages false (the recompute policy) its pages are freed and
     * prefill progress reset — resume re-loads prompt + generated tokens.
     * With @p keep_pages true the sequence survives intact: the caller
     * offloads its pages to a cold tier (TieredPagePool) and admit()
     * resumes it via the seq >= 0 path, digests untouched.
     */
    void preempt(Request* r, kv::PagedHeadCache& cache,
                 bool keep_pages = false);

    /** Retires a finished request and frees its sequence. */
    void finish(Request* r, kv::PagedHeadCache& cache);

    /**
     * Removes @p r from whichever container holds it (waiting queue,
     * running batch or idle set) without touching its sequence — the
     * engine's cancellation path frees pages itself. @return true when
     * the request was found (false: it was not scheduled at all).
     */
    bool remove(Request* r);

    /**
     * Requests eligible for load shedding at time @p now: waiting,
     * never admitted (no sequence, no progress) and queued longer than
     * SchedulerConfig::shed_after_s. The engine cancels them; this
     * method only identifies them (and returns empty when shedding is
     * disabled).
     */
    std::vector<Request*> shedCandidates(double now) const;

    /**
     * Earliest virtual time at which a currently waiting, never-admitted
     * request crosses the shed TTL; +inf when shedding is disabled or
     * nothing qualifies. Engines include this in their idle-clock jumps
     * so a shed event is processed at its exact time.
     */
    double nextShedDeadline() const;

    // ------------------------------------------------- idle sessions --

    /**
     * Parks a running request (state IDLE): it leaves the batch but keeps
     * its sequence; the engine typically offloads the pages right after.
     * wakeIdle() re-queues it at Request::idle_wake_s.
     */
    void parkIdle(Request* r);

    /** Moves parked requests whose wake time has come back to the
     *  waiting queue (state QUEUED, sequence kept). @return woken. */
    int wakeIdle(double now);

    /** Parked idle sessions, in park order. */
    const std::vector<Request*>& idleParked() const { return idle_; }

    /** Earliest wake time among parked sessions; +inf when none. */
    double nextIdleWake() const;

    /** Running batch in admission order. */
    const std::vector<Request*>& running() const { return running_; }

    /** Requests waiting for admission (or re-admission). */
    int waitingCount() const { return static_cast<int>(waiting_.size()); }

    /** True when nothing is running, waiting or parked. */
    bool idle() const
    {
        return running_.empty() && waiting_.empty() && idle_.empty();
    }

    /** Total preemptions performed so far. */
    int preemptionCount() const { return preemptions_; }

    /** Effective priority of a waiting request at time @p now. */
    double effectivePriority(const Request& r, double now) const;

  private:
    /** Index into waiting_ of the next candidate under the policy. */
    std::size_t pickCandidate(double now) const;

    SchedulerConfig cfg_;
    std::deque<Request*> waiting_;
    std::vector<Request*> running_;
    std::vector<Request*> idle_;
    int preemptions_ = 0;
};

} // namespace bitdec::serving

#endif // BITDEC_SERVING_SCHEDULER_H
