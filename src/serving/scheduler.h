/**
 * @file
 * FCFS continuous-batching scheduler over the paged KV cache.
 *
 * The scheduler owns the waiting queue and the running batch. Admission is
 * first-come-first-served with no queue jumping: a request is admitted only
 * when the page pool has headroom for its whole prefill target (plus a
 * configurable reserve that absorbs decode growth). When the pool runs dry
 * mid-step the engine asks for a preemption victim; the most recently
 * admitted request loses its pages (recompute policy) and rejoins the
 * *front* of the waiting queue, so overall service order stays FCFS and no
 * request is ever dropped.
 */
#ifndef BITDEC_SERVING_SCHEDULER_H
#define BITDEC_SERVING_SCHEDULER_H

#include <deque>
#include <vector>

#include "kvcache/paged_cache.h"
#include "serving/request.h"

namespace bitdec::serving {

/** Scheduler policy knobs. */
struct SchedulerConfig
{
    int max_batch = 64;       //!< cap on concurrently running requests
    int reserve_pages = 0;    //!< pages kept free at admission time
    int prefill_chunk = 2048; //!< prompt tokens loaded per request per step
};

/** FCFS continuous-batching scheduler. */
class Scheduler
{
  public:
    explicit Scheduler(const SchedulerConfig& cfg);

    /** Adds a newly arrived request to the tail of the waiting queue. */
    void enqueue(Request* r);

    /**
     * Admits waiting requests in FCFS order while the batch has a slot and
     * the pool has headroom for the candidate's full prefill target. Stops
     * at the first request that does not fit (no skipping). Admitted
     * requests get a fresh cache sequence and enter PREFILL.
     */
    void admit(kv::PagedHeadCache& cache);

    /**
     * Picks the preemption victim: the most recently admitted running
     * request. Returns nullptr when the batch is empty.
     */
    Request* preemptVictim();

    /**
     * Preempts @p r: frees its pages, resets its prefill progress (the
     * recompute policy re-loads prompt + generated tokens on resume) and
     * puts it at the front of the waiting queue.
     */
    void preempt(Request* r, kv::PagedHeadCache& cache);

    /** Retires a finished request and frees its sequence. */
    void finish(Request* r, kv::PagedHeadCache& cache);

    /** Running batch in admission order. */
    const std::vector<Request*>& running() const { return running_; }

    /** Requests waiting for admission (or re-admission). */
    int waitingCount() const { return static_cast<int>(waiting_.size()); }

    /** True when nothing is running and nothing is waiting. */
    bool idle() const { return running_.empty() && waiting_.empty(); }

    /** Total preemptions performed so far. */
    int preemptionCount() const { return preemptions_; }

  private:
    SchedulerConfig cfg_;
    std::deque<Request*> waiting_;
    std::vector<Request*> running_;
    int preemptions_ = 0;
};

} // namespace bitdec::serving

#endif // BITDEC_SERVING_SCHEDULER_H
