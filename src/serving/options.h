/**
 * @file
 * One CLI surface for every serving-aware binary.
 *
 * bench_cpu_hotpath, bench_serving_e2e and examples/serving_throughput
 * used to carry three diverging copies of the backend/fault flag
 * parsing; ServingOptions::parse is the single implementation, so a
 * flag added here (like --shards) appears in every binary with the same
 * grammar and the same fail-fast messages.
 *
 * Flags:
 *   --backend=<name>          per-step attention backend (registry name)
 *   --list-backends[=mode]    print registered backends and exit
 *                             (default: capability matrix; =names or
 *                             =fused: bare names, machine-readable)
 *   --faults=<spec>           fault-injection storm, FaultSchedule grammar
 *   --fault-seed=<n>          chaos decision seed
 *   --shards=<n>              engine replicas behind the ServingClient
 *   --smoke                   CI gate mode (subset of runs, hard pass/fail)
 *   --port=<n>                TCP port (bitdec_server/bitdec_client;
 *                             0 = ephemeral on the server)
 *   --hot-pool-pages=<n>      hot KV pool size for tiered scenarios
 *   --tier=<layout>           cold tiers: host | host,disk | none
 *
 * Unknown arguments are left for the caller; malformed values for the
 * flags above die immediately naming the flag (never a silent default).
 */
#ifndef BITDEC_SERVING_OPTIONS_H
#define BITDEC_SERVING_OPTIONS_H

#include <cstdint>
#include <string>

#include "fault/fault.h"

namespace bitdec::backend {
class AttentionBackend;
} // namespace bitdec::backend

namespace bitdec::serving {

/** Parsed command-line options shared by the serving binaries. */
struct ServingOptions
{
    std::string backend;   //!< --backend=<name>; empty = caller's default
    bool list_backends = false; //!< --list-backends[=mode] was given
    std::string list_mode;      //!< "" (matrix), "names" or "fused"

    std::string fault_spec;       //!< --faults=<spec>; empty = no override
    std::uint64_t fault_seed = 0; //!< --fault-seed=<n>
    bool fault_seed_given = false;

    int shards = 1;     //!< --shards=<n> engine replicas
    bool smoke = false; //!< --smoke CI gate mode

    int port = 9178;        //!< --port=<n>; 0 = ephemeral (bitdec_server)
    bool port_given = false;

    int hot_pool_pages = 2048;      //!< --hot-pool-pages=<n>
    std::string tier = "host,disk"; //!< --tier=host|host,disk|none

    /** Scans argv; unrelated arguments are ignored, malformed values
     *  for known flags are fatal. */
    static ServingOptions parse(int argc, char** argv);

    /**
     * Handles --list-backends: prints the capability matrix (default) or
     * bare names (=names / =fused — CI loops its perf gates over exactly
     * the =fused set). @return true when the caller should exit.
     */
    bool maybeListBackends() const;

    /** Resolves --backend (or @p fallback when absent) through the
     *  registry; unknown names die listing every registered backend. */
    const backend::AttentionBackend&
    resolveBackend(const std::string& fallback) const;

    /** The storm to run: --faults when given, @p default_spec otherwise. */
    fault::FaultSchedule faultsOr(const std::string& default_spec) const;
};

} // namespace bitdec::serving

#endif // BITDEC_SERVING_OPTIONS_H
