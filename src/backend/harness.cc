#include "backend/harness.h"

#include "attention/reference.h"
#include "common/logging.h"
#include "common/rng.h"

namespace bitdec::backend {

namespace {

void
randomize(Tensor<Half>& t, Rng& rng)
{
    for (std::size_t i = 0; i < t.numel(); i++)
        t[i] = Half(rng.uniformRange(-1.f, 1.f));
}

/** The backend's native structure: the lowest Binding bit it supports. */
Binding
nativeBinding(const BackendCapabilities& caps)
{
    for (Binding b : {Binding::Fp16Contiguous, Binding::PackedLowBit,
                      Binding::PagedFp16, Binding::QuantizedMatrices,
                      Binding::MxBlocks})
        if (caps.supportsBinding(b))
            return b;
    BITDEC_PANIC("backend declares no bindings");
}

} // namespace

DecodeFixture::DecodeFixture(const AttentionBackend& be,
                             const FixtureConfig& cfg)
    : cfg_(cfg),
      binding_(nativeBinding(be.capabilities())),
      k_({static_cast<std::size_t>(cfg.context),
          static_cast<std::size_t>(cfg.head_dim)}),
      v_({static_cast<std::size_t>(cfg.context),
          static_cast<std::size_t>(cfg.head_dim)}),
      q_({static_cast<std::size_t>(cfg.gq),
          static_cast<std::size_t>(cfg.head_dim)})
{
    Rng rng(cfg.seed);
    randomize(k_, rng);
    randomize(v_, rng);
    randomize(q_, rng);

    const int d = cfg.head_dim;
    DecodeItem item;
    switch (binding_) {
    case Binding::Fp16Contiguous: {
        fp16_ = std::make_unique<kv::Fp16HeadCache>(d);
        std::vector<Half> kr(static_cast<std::size_t>(d));
        std::vector<Half> vr(static_cast<std::size_t>(d));
        for (int t = 0; t < cfg.context; t++) {
            for (int c = 0; c < d; c++) {
                kr[static_cast<std::size_t>(c)] =
                    k_.at(static_cast<std::size_t>(t),
                          static_cast<std::size_t>(c));
                vr[static_cast<std::size_t>(c)] =
                    v_.at(static_cast<std::size_t>(t),
                          static_cast<std::size_t>(c));
            }
            fp16_->append(kr, vr);
        }
        item = fp16Item(q_, *fp16_);
        break;
    }
    case Binding::PackedLowBit: {
        core::BitDecodingConfig bd;
        bd.quant.bits = cfg.bits;
        decoder_ = std::make_unique<core::HeadDecoder>(d, bd);
        decoder_->prefill(k_, v_);
        item = packedItem(q_, decoder_->cache());
        break;
    }
    case Binding::PagedFp16: {
        paged_ = std::make_unique<kv::PagedHeadCache>(
            d, cfg.page_size, cfg.context / cfg.page_size + 2);
        seq_ = paged_->addSequence();
        std::vector<Half> kr(static_cast<std::size_t>(d));
        std::vector<Half> vr(static_cast<std::size_t>(d));
        for (int t = 0; t < cfg.context; t++) {
            for (int c = 0; c < d; c++) {
                kr[static_cast<std::size_t>(c)] =
                    k_.at(static_cast<std::size_t>(t),
                          static_cast<std::size_t>(c));
                vr[static_cast<std::size_t>(c)] =
                    v_.at(static_cast<std::size_t>(t),
                          static_cast<std::size_t>(c));
            }
            const bool ok = paged_->append(seq_, kr, vr);
            BITDEC_ASSERT(ok, "fixture page pool sized too small");
        }
        item = pagedItem(q_, *paged_, seq_);
        break;
    }
    case Binding::QuantizedMatrices: {
        // KIVI's configuration: keys channel-wise, values tensor-wise.
        kq_ = std::make_unique<quant::QuantizedMatrix>(quant::quantizeMatrix(
            k_, cfg.bits, quant::Granularity::ChannelWise, 32));
        vq_ = std::make_unique<quant::QuantizedMatrix>(quant::quantizeMatrix(
            v_, cfg.bits, quant::Granularity::TensorWise, 32));
        item = quantizedItem(q_, *kq_, *vq_);
        break;
    }
    case Binding::MxBlocks: {
        mx_ = std::make_unique<core::MxKvCache>(
            core::mxEncodeKv(k_, v_, cfg.mx_kind));
        item = mxItem(q_, *mx_);
        break;
    }
    }
    batch_.items.push_back(item);
}

Tensor<float>
DecodeFixture::referenceOutput(float scale) const
{
    switch (binding_) {
    case Binding::Fp16Contiguous:
    case Binding::PagedFp16:
        return attn::referenceAttention(q_, k_, v_, scale);
    case Binding::PackedLowBit: {
        Tensor<Half> kd, vd;
        decoder_->cache().dequantizeAll(kd, vd);
        return attn::referenceAttention(q_, kd, vd, scale);
    }
    case Binding::QuantizedMatrices:
        return attn::referenceAttention(q_, quant::dequantizeMatrix(*kq_),
                                        quant::dequantizeMatrix(*vq_), scale);
    case Binding::MxBlocks:
        break;
    }
    BITDEC_PANIC("no flat-tensor reference for the MX binding");
}

} // namespace bitdec::backend
