/**
 * @file
 * `mx`: the Blackwell native block-scaled path — attention with K/V (and
 * P, re-quantized after softmax) in an MX format, consuming a
 * pre-encoded core::MxKvCache.
 */
#include "backend/registry.h"
#include "core/bitdecoding.h"

namespace bitdec::backend {

namespace {

class MxBackend : public AttentionBackend
{
  public:
    const char* name() const override { return "mx"; }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::MxBlocks);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Mx);
        caps.scenarios = scenarioBit(attn::Scenario::Single) |
                         scenarioBit(attn::Scenario::Batches);
        return caps;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool* inner) {
            return core::mxAttention(*it.q, *it.mx, batch.scale,
                                     /*requantize_p=*/true, inner);
        });
    }
};

BITDEC_REGISTER_BACKEND(MxBackend);

} // namespace

int
linkMxBackends()
{
    return 0;
}

} // namespace bitdec::backend
