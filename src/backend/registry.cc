#include "backend/registry.h"

#include "common/logging.h"

namespace bitdec::backend {

// Defined in each builtin adapter translation unit. instance() calls
// them (opaque to the optimizer, so the calls cannot be elided) to force
// those TUs — and their self-registering static initializers — into
// static-library links that would otherwise drop them as unreferenced.
int linkFp16Backends();
int linkLowbitBackends();
int linkPagedBackends();
int linkMxBackends();
int linkSimdBackends();

BackendRegistry&
BackendRegistry::instance()
{
    static BackendRegistry registry;
    static const int anchors = linkFp16Backends() + linkLowbitBackends() +
                               linkPagedBackends() + linkMxBackends() +
                               linkSimdBackends();
    (void)anchors;
    return registry;
}

void
BackendRegistry::add(std::unique_ptr<AttentionBackend> backend)
{
    BITDEC_ASSERT(backend != nullptr, "null backend");
    const std::string name = backend->name();
    if (backends_.count(name) > 0)
        BITDEC_FATAL("attention backend '", name, "' is already registered");
    backends_[name] = std::move(backend);
}

AttentionBackend&
BackendRegistry::resolve(const std::string& name) const
{
    const auto it = backends_.find(name);
    if (it == backends_.end()) {
        std::string known;
        for (const auto& [n, b] : backends_) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        BITDEC_FATAL("unknown attention backend '", name,
                     "' (registered: ", known, ")");
    }
    if (!it->second->available())
        BITDEC_FATAL("attention backend '", name,
                     "' is unavailable on this host: ",
                     it->second->unavailableReason());
    return *it->second;
}

const AttentionBackend*
BackendRegistry::find(const std::string& name) const
{
    const auto it = backends_.find(name);
    return it == backends_.end() ? nullptr : it->second.get();
}

AttentionBackend&
BackendRegistry::resolveCapable(const ResolveQuery& query) const
{
    AttentionBackend* best = nullptr;
    bool best_fused = false;
    // Map order = name order, so the first fused (or first overall) match
    // is the deterministic winner.
    for (const auto& [name, b] : backends_) {
        if (!b->available())
            continue;
        const BackendCapabilities caps = b->capabilities();
        if (!caps.supportsCache(query.cache) ||
            !caps.supportsFormat(query.format) ||
            !caps.supportsScenario(query.scenario))
            continue;
        if (best == nullptr || (caps.fused_hot_path && !best_fused)) {
            best = b.get();
            best_fused = caps.fused_hot_path;
        }
    }
    if (best == nullptr)
        BITDEC_FATAL("no registered backend supports (",
                     toString(query.cache), ", ", toString(query.format),
                     ", ", attn::toString(query.scenario),
                     ")\ncapability matrix:\n", capabilityMatrix());
    return *best;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto& [n, b] : backends_)
        out.push_back(n);
    return out;
}

std::vector<std::string>
BackendRegistry::availableNames() const
{
    std::vector<std::string> out;
    for (const auto& [n, b] : backends_)
        if (b->available())
            out.push_back(n);
    return out;
}

std::vector<std::string>
BackendRegistry::fusedNames() const
{
    std::vector<std::string> out;
    for (const auto& [n, b] : backends_)
        if (b->capabilities().fused_hot_path && b->available())
            out.push_back(n);
    return out;
}

std::string
BackendRegistry::capabilityMatrix(bool available_only) const
{
    std::string out;
    for (const auto& [n, b] : backends_) {
        if (available_only && !b->available())
            continue;
        out += "  ";
        out += n;
        out.append(n.size() < 20 ? 20 - n.size() : 1, ' ');
        out += describe(b->capabilities());
        out += "\n";
    }
    return out;
}

} // namespace bitdec::backend
