#include "backend/attention_backend.h"

#include <cstring>

#include "common/logging.h"
#include "exec/thread_pool.h"

namespace bitdec::backend {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

} // namespace

const char*
toString(CacheKind k)
{
    switch (k) {
    case CacheKind::Contiguous: return "contiguous";
    case CacheKind::Paged: return "paged";
    }
    return "?";
}

const char*
toString(QuantFormat f)
{
    switch (f) {
    case QuantFormat::Fp16: return "fp16";
    case QuantFormat::Int4: return "int4";
    case QuantFormat::Int2: return "int2";
    case QuantFormat::Mx: return "mx";
    }
    return "?";
}

const char*
toString(Binding b)
{
    switch (b) {
    case Binding::Fp16Contiguous: return "fp16-contiguous";
    case Binding::PackedLowBit: return "packed-lowbit";
    case Binding::PagedFp16: return "paged-fp16";
    case Binding::QuantizedMatrices: return "quantized-matrices";
    case Binding::MxBlocks: return "mx-blocks";
    }
    return "?";
}

std::string
describe(const BackendCapabilities& caps)
{
    std::string s;
    const auto append = [&s](const char* name) {
        if (!s.empty() && s.back() != ' ')
            s += ",";
        s += name;
    };
    for (CacheKind k : {CacheKind::Contiguous, CacheKind::Paged})
        if (caps.supportsCache(k))
            append(toString(k));
    s += " | ";
    for (QuantFormat f : {QuantFormat::Fp16, QuantFormat::Int4,
                          QuantFormat::Int2, QuantFormat::Mx})
        if (caps.supportsFormat(f))
            append(toString(f));
    s += " | ";
    for (attn::Scenario sc :
         {attn::Scenario::Single, attn::Scenario::Batches,
          attn::Scenario::Pages, attn::Scenario::Serving})
        if (caps.supportsScenario(sc))
            append(attn::toString(sc));
    if (caps.fused_hot_path)
        s += " | fused";
    return s;
}

Binding
DecodeItem::binding() const
{
    BITDEC_ASSERT(q != nullptr, "decode item has no query tile");
    int bound = 0;
    Binding b = Binding::Fp16Contiguous;
    if (fp16 != nullptr) {
        b = Binding::Fp16Contiguous;
        bound++;
    }
    if (packed != nullptr) {
        b = Binding::PackedLowBit;
        bound++;
    }
    if (paged != nullptr) {
        b = Binding::PagedFp16;
        bound++;
    }
    if (kq != nullptr || vq != nullptr) {
        BITDEC_ASSERT(kq != nullptr && vq != nullptr,
                      "quantized binding needs both K and V matrices");
        b = Binding::QuantizedMatrices;
        bound++;
    }
    if (mx != nullptr) {
        b = Binding::MxBlocks;
        bound++;
    }
    BITDEC_ASSERT(bound == 1, "decode item must bind exactly one cache "
                  "structure (got ", bound, ")");
    return b;
}

DecodeItem
fp16Item(const Tensor<Half>& q, const kv::Fp16HeadCache& cache)
{
    DecodeItem it;
    it.q = &q;
    it.fp16 = &cache;
    return it;
}

DecodeItem
packedItem(const Tensor<Half>& q, const kv::PackedHeadCache& cache)
{
    DecodeItem it;
    it.q = &q;
    it.packed = &cache;
    return it;
}

DecodeItem
pagedItem(const Tensor<Half>& q, const kv::PagedHeadCache& cache, int seq)
{
    DecodeItem it;
    it.q = &q;
    it.paged = &cache;
    it.seq = seq;
    return it;
}

DecodeItem
quantizedItem(const Tensor<Half>& q, const quant::QuantizedMatrix& kq,
              const quant::QuantizedMatrix& vq)
{
    DecodeItem it;
    it.q = &q;
    it.kq = &kq;
    it.vq = &vq;
    return it;
}

DecodeItem
mxItem(const Tensor<Half>& q, const core::MxKvCache& kv)
{
    DecodeItem it;
    it.q = &q;
    it.mx = &kv;
    return it;
}

DecodePlan
AttentionBackend::plan(const attn::DecodeShape& shape) const
{
    const BackendCapabilities caps = capabilities();
    DecodePlan p;
    if (!caps.supportsScenario(shape.scenario)) {
        p.reason = std::string("backend '") + name() +
                   "' does not support scenario " +
                   attn::toString(shape.scenario);
        return p;
    }
    if (attn::isPaged(shape.scenario) &&
        !caps.supportsCache(CacheKind::Paged)) {
        p.reason = std::string("backend '") + name() +
                   "' traverses only contiguous caches, but scenario " +
                   attn::toString(shape.scenario) + " pages the KV";
        return p;
    }
    p.supported = true;
    p.chunking = "single pass over the cache";
    return p;
}

void
AttentionBackend::requireBindings(const DecodeBatch& batch) const
{
    const BackendCapabilities caps = capabilities();
    for (const DecodeItem& it : batch.items) {
        const Binding b = it.binding();
        if (!caps.supportsBinding(b))
            BITDEC_FATAL("backend '", name(), "' cannot consume a ",
                         toString(b), " item (capabilities: ",
                         describe(caps), ")");
    }
}

void
requireServingCapable(const AttentionBackend& be)
{
    const BackendCapabilities caps = be.capabilities();
    if (!caps.supportsBinding(Binding::PagedFp16) ||
        !caps.supportsScenario(attn::Scenario::Serving))
        BITDEC_FATAL("backend '", be.name(),
                     "' cannot serve the engine's paged FP16 cache "
                     "(capabilities: ", describe(caps),
                     "); pick one supporting paged fp16 + Serving, "
                     "e.g. 'fused-paged'");
}

std::uint64_t
fnv1aFold(const Tensor<float>& t, std::uint64_t h)
{
    for (std::size_t i = 0; i < t.numel(); i++) {
        std::uint32_t bits;
        std::memcpy(&bits, &t[i], sizeof(bits));
        h ^= bits;
        h *= kFnvPrime;
    }
    return h;
}

std::vector<Tensor<float>>
runBatch(const DecodeBatch& batch,
         const std::function<Tensor<float>(const DecodeItem&,
                                           exec::ThreadPool*)>& kernel)
{
    // A batch of one has no outer fan-out; hand the pool to the kernel so
    // its KV chunks still parallelize. (Safe: parallelFor(n == 1) runs
    // inline, outside any pool task.)
    exec::ThreadPool* inner = batch.items.size() == 1 ? batch.pool : nullptr;
    std::vector<Tensor<float>> outs(batch.items.size());
    exec::parallelFor(batch.pool, batch.items.size(), [&](std::size_t i) {
        outs[i] = kernel(batch.items[i], inner);
    });
    return outs;
}

std::uint64_t
AttentionBackend::digest(const DecodeBatch& batch) const
{
    const std::vector<Tensor<float>> outs = decodeStep(batch);
    std::uint64_t h = kFnvOffset;
    for (const Tensor<float>& o : outs)
        h = fnv1aFold(o, h);
    return h;
}

} // namespace bitdec::backend
