/**
 * @file
 * Low-bit contiguous backends: `fused-packed` (BitDecoding's tile-fused
 * hot path over the induced-layout packed cache) and the two
 * dequant-then-compute baselines, `kivi` (separated kernels) and
 * `qserve` (CUDA-core fused GEMVs). The baselines consume the
 * pre-packing QuantizedMatrix pair; `fused-packed` consumes the packed
 * cache with its per-block dequant LUTs.
 */
#include "attention/kivi_baseline.h"
#include "attention/qserve_baseline.h"
#include "backend/registry.h"
#include "core/packing_kernel.h"
#include "kvcache/kv_cache.h"
#include "layout/tile.h"
#include "quant/int_quant.h"

namespace bitdec::backend {

namespace {

/** BitDecoding's fused packed-cache hot path. */
class FusedPackedBackend : public AttentionBackend
{
  public:
    const char* name() const override { return "fused-packed"; }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::PackedLowBit);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Int4) |
                             static_cast<unsigned>(QuantFormat::Int2);
        caps.scenarios = kContiguousScenarios;
        caps.fused_hot_path = true;
        return caps;
    }

    DecodePlan plan(const attn::DecodeShape& shape) const override
    {
        DecodePlan p = AttentionBackend::plan(shape);
        if (!p.supported)
            return p;
        // Chunk = kChunkBlocks residual blocks of the default KC-4
        // tiling (Eq. 1); caches packed with other configs scale Nr
        // accordingly.
        p.kv_chunk = core::kChunkBlocks *
                     layout::residualBlockSize(layout::WarpTiling{}, 4);
        p.splits = (shape.seq_len + p.kv_chunk - 1) / p.kv_chunk;
        p.chunking = "4 packed blocks per partial + FP16 residual tail, "
                     "partials merged in block order";
        return p;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool* inner) {
            return core::fusedPackedAttention(*it.q, *it.packed, batch.scale,
                                              inner);
        });
    }
};

/** KIVI: dequantize-everything-then-dense-attention (five kernels). */
class KiviBackend : public AttentionBackend
{
  public:
    const char* name() const override { return "kivi"; }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::QuantizedMatrices);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Int4) |
                             static_cast<unsigned>(QuantFormat::Int2);
        caps.scenarios = kContiguousScenarios;
        return caps;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool*) {
            return attn::kiviAttention(*it.q, *it.kq, *it.vq, batch.scale);
        });
    }
};

/** QServe/Atom: fused CUDA-core GEMVs, one query head at a time. */
class QServeBackend : public AttentionBackend
{
  public:
    const char* name() const override { return "qserve"; }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::QuantizedMatrices);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous);
        // W4A8KV4: the modeled system is 4-bit only.
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Int4);
        caps.scenarios = kContiguousScenarios;
        return caps;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool*) {
            return attn::cudaCoreFusedAttention(*it.q, *it.kq, *it.vq,
                                                batch.scale);
        });
    }
};

BITDEC_REGISTER_BACKEND(FusedPackedBackend);
BITDEC_REGISTER_BACKEND(KiviBackend);
BITDEC_REGISTER_BACKEND(QServeBackend);

} // namespace

int
linkLowbitBackends()
{
    return 0;
}

} // namespace bitdec::backend
