/**
 * @file
 * String-keyed registry of attention backends with self-registration and
 * capability-based resolution.
 *
 * Builtin backends register themselves from static initializers in their
 * own translation units (BITDEC_REGISTER_BACKEND); the registry instance
 * anchors those units into static-library links. Resolution failures are
 * fatal with the full list of registered names (resolve) or the whole
 * capability matrix (resolveCapable) — there is deliberately no silent
 * fallback to a default backend.
 */
#ifndef BITDEC_BACKEND_REGISTRY_H
#define BITDEC_BACKEND_REGISTRY_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/attention_backend.h"

namespace bitdec::backend {

/** Capability query: what the caller's cache and workload look like. */
struct ResolveQuery
{
    CacheKind cache = CacheKind::Contiguous;
    QuantFormat format = QuantFormat::Fp16;
    attn::Scenario scenario = attn::Scenario::Single;
};

/** Process-wide backend registry (Meyers singleton). */
class BackendRegistry
{
  public:
    /** The process-wide instance; constructed on first use. */
    static BackendRegistry& instance();

    /**
     * Registers a backend under its name(). Duplicate names are a fatal
     * error: two kernels silently shadowing each other under one key is
     * exactly the ad-hoc wiring this API removes.
     */
    void add(std::unique_ptr<AttentionBackend> backend);

    /**
     * Returns the backend registered under @p name; unknown names are a
     * fatal error listing every registered name, and a backend that is
     * unavailable on this host (e.g. an AVX-512 sibling on an AVX2-only
     * CPU, or a level disabled by BITDEC_SIMD) is a fatal error naming
     * the reason (fail fast — never fall back to a default).
     */
    AttentionBackend& resolve(const std::string& name) const;

    /** Like resolve(), but returns nullptr for unknown names. */
    const AttentionBackend* find(const std::string& name) const;

    /**
     * Resolves the best backend for a capability query, skipping backends
     * unavailable on this host. Among matches the fused hot paths win;
     * ties break to the lexicographically smallest name, so resolution is
     * deterministic. No match is a fatal error printing the query and the
     * full capability matrix.
     */
    AttentionBackend& resolveCapable(const ResolveQuery& query) const;

    /** Registered names, sorted (including host-unavailable backends). */
    std::vector<std::string> names() const;

    /** Names available on this host, sorted. */
    std::vector<std::string> availableNames() const;

    /** Names of the fused hot-path backends available on this host (the
     *  CI perf-gate set), sorted. */
    std::vector<std::string> fusedNames() const;

    /** Multi-line capability matrix (listings, error messages);
     *  @p available_only drops backends this host cannot run. */
    std::string capabilityMatrix(bool available_only = false) const;

    /** Number of registered backends. */
    int size() const { return static_cast<int>(backends_.size()); }

  private:
    BackendRegistry() = default;

    std::map<std::string, std::unique_ptr<AttentionBackend>> backends_;
};

/**
 * Self-registers @p BackendClass (default-constructed) with the registry
 * from a static initializer. Use at namespace scope in the backend's
 * translation unit.
 */
#define BITDEC_REGISTER_BACKEND(BackendClass) \
    static const bool bitdec_registered_##BackendClass = [] { \
        ::bitdec::backend::BackendRegistry::instance().add( \
            std::make_unique<BackendClass>()); \
        return true; \
    }()

} // namespace bitdec::backend

#endif // BITDEC_BACKEND_REGISTRY_H
