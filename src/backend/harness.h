/**
 * @file
 * Decode fixture: builds, from one seeded random K/V/Q stream, whatever
 * cache structure a backend consumes and binds a ready-to-run
 * DecodeBatch. This is the glue the benches, tests and examples used to
 * duplicate per entry point — construct caches by hand for each kernel
 * family — collapsed behind the capability mask.
 */
#ifndef BITDEC_BACKEND_HARNESS_H
#define BITDEC_BACKEND_HARNESS_H

#include <memory>

#include "backend/attention_backend.h"
#include "core/bitdecoding.h"
#include "kvcache/kv_cache.h"
#include "kvcache/paged_cache.h"
#include "quant/int_quant.h"

namespace bitdec::backend {

/**
 * Workload shape one fixture realizes. The quantized-matrices binding
 * (kivi/qserve) groups channel-wise along the sequence and tensor-wise
 * along the hidden dim, so it needs context and head_dim divisible by
 * the group size (32).
 */
struct FixtureConfig
{
    int context = 4096;          //!< KV tokens
    int head_dim = 128;          //!< d
    int gq = 8;                  //!< query rows (group size)
    int page_size = 64;          //!< paged binding: tokens per page
    int bits = 4;                //!< low-bit bindings: 4 or 2
    std::uint64_t seed = 2026;   //!< content stream seed
    quant::MxKind mx_kind = quant::MxKind::MXFP4;
};

/**
 * Owns the K/V/Q content and the one cache structure the given backend
 * natively consumes (the lowest Binding bit it supports), bound into a
 * single-item DecodeBatch. Two fixtures with equal configs hold
 * bitwise-equal content regardless of backend, so cross-backend parity
 * checks compare like with like.
 */
class DecodeFixture
{
  public:
    DecodeFixture(const AttentionBackend& be, const FixtureConfig& cfg);

    // Not movable: batch_ holds pointers into the fixture's own members,
    // so a relocation would leave the bound items dangling. Construct in
    // place (std::optional::emplace, map::try_emplace) instead.
    DecodeFixture(DecodeFixture&&) = delete;
    DecodeFixture& operator=(DecodeFixture&&) = delete;

    /** The bound single-item batch; copy it to set a pool. */
    const DecodeBatch& batch() const { return batch_; }

    /** The binding the fixture realized. */
    Binding binding() const { return binding_; }

    /** Raw FP16 keys fed into the cache, [context x d]. */
    const Tensor<Half>& keys() const { return k_; }

    /** Raw FP16 values. */
    const Tensor<Half>& values() const { return v_; }

    /** Query tile, [gq x d]. */
    const Tensor<Half>& query() const { return q_; }

    /**
     * FP32 reference attention over the content the fixture actually
     * bound: raw K/V for FP16 bindings, the dequantized round trip for
     * the low-bit ones. Panics for the MX binding (block-scale semantics
     * have no flat-tensor equivalent; use mxAttention parity instead).
     */
    Tensor<float> referenceOutput(float scale) const;

  private:
    FixtureConfig cfg_;
    Binding binding_;
    Tensor<Half> k_;
    Tensor<Half> v_;
    Tensor<Half> q_;

    std::unique_ptr<kv::Fp16HeadCache> fp16_;
    std::unique_ptr<core::HeadDecoder> decoder_; //!< owns the packed cache
    std::unique_ptr<kv::PagedHeadCache> paged_;
    int seq_ = -1;
    std::unique_ptr<quant::QuantizedMatrix> kq_;
    std::unique_ptr<quant::QuantizedMatrix> vq_;
    std::unique_ptr<core::MxKvCache> mx_;

    DecodeBatch batch_;
};

} // namespace bitdec::backend

#endif // BITDEC_BACKEND_HARNESS_H
