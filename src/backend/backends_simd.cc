/**
 * @file
 * SIMD sibling backends: `fused-fp16-avx2`, `fused-packed-avx2`,
 * `fused-paged-avx2` and their `-avx512` variants. Each is the scalar
 * twin's hot loops re-executed through an ISA kernel table
 * (src/exec/simd/) with identical chunking and merge order, so its
 * digest is bitwise identical to the twin's for any thread count.
 *
 * Availability gates on exec::simd::levelEnabled(): a sibling whose ISA
 * the CPU/OS lacks — or that `BITDEC_SIMD` caps away — is hidden from
 * listings and capability resolution, and resolving it by name is fatal
 * with the detected-feature list. The capability masks are copied from
 * the twins, so every registry query that matches a twin also matches
 * its available siblings (the twin still wins ties by name order).
 */
#include "backend/registry.h"
#include "core/packing_kernel.h"
#include "exec/simd/simd_attention.h"
#include "kvcache/kv_cache.h"
#include "kvcache/paged_cache.h"
#include "layout/tile.h"

namespace bitdec::backend {

namespace {

namespace simd = exec::simd;

/** name() storage: "<base>-avx2" / "<base>-avx512", built once. */
std::string
siblingName(const char* base, simd::Level level)
{
    return std::string(base) + "-" + simd::toString(level);
}

/** The shared availability surface of every SIMD sibling. */
template <simd::Level L>
class SimdSiblingBackend : public AttentionBackend
{
  public:
    bool available() const override { return simd::levelEnabled(L); }

    std::string unavailableReason() const override
    {
        return simd::unavailableReason(L);
    }

    const char* simdLevel() const override { return simd::toString(L); }
};

/** SIMD twin of fused-fp16. */
template <simd::Level L>
class FusedFp16SimdBackend : public SimdSiblingBackend<L>
{
  public:
    const char* name() const override
    {
        static const std::string n = siblingName("fused-fp16", L);
        return n.c_str();
    }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::Fp16Contiguous);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Fp16);
        caps.scenarios = kContiguousScenarios;
        caps.fused_hot_path = true;
        return caps;
    }

    DecodePlan plan(const attn::DecodeShape& shape) const override
    {
        DecodePlan p = AttentionBackend::plan(shape);
        if (!p.supported)
            return p;
        p.kv_chunk = exec::kChunkTokens;
        p.splits = (shape.seq_len + exec::kChunkTokens - 1) /
                   exec::kChunkTokens;
        p.chunking = "128-token chunks, partials merged in chunk order";
        return p;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        this->requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool* inner) {
            return simd::fusedFp16AttentionSimd(*it.q, *it.fp16, batch.scale,
                                                L, inner);
        });
    }
};

/** SIMD twin of fused-packed. */
template <simd::Level L>
class FusedPackedSimdBackend : public SimdSiblingBackend<L>
{
  public:
    const char* name() const override
    {
        static const std::string n = siblingName("fused-packed", L);
        return n.c_str();
    }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::PackedLowBit);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Int4) |
                             static_cast<unsigned>(QuantFormat::Int2);
        caps.scenarios = kContiguousScenarios;
        caps.fused_hot_path = true;
        return caps;
    }

    DecodePlan plan(const attn::DecodeShape& shape) const override
    {
        DecodePlan p = AttentionBackend::plan(shape);
        if (!p.supported)
            return p;
        p.kv_chunk = core::kChunkBlocks *
                     layout::residualBlockSize(layout::WarpTiling{}, 4);
        p.splits = (shape.seq_len + p.kv_chunk - 1) / p.kv_chunk;
        p.chunking = "4 packed blocks per partial + FP16 residual tail, "
                     "partials merged in block order";
        return p;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        this->requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool* inner) {
            return core::fusedPackedAttentionSimd(*it.q, *it.packed,
                                                  batch.scale, L, inner);
        });
    }
};

/** SIMD twin of fused-paged (serving-capable). */
template <simd::Level L>
class FusedPagedSimdBackend : public SimdSiblingBackend<L>
{
  public:
    const char* name() const override
    {
        static const std::string n = siblingName("fused-paged", L);
        return n.c_str();
    }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::PagedFp16);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Paged);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Fp16);
        caps.scenarios = scenarioBit(attn::Scenario::Pages) |
                         scenarioBit(attn::Scenario::Serving);
        caps.fused_hot_path = true;
        return caps;
    }

    DecodePlan plan(const attn::DecodeShape& shape) const override
    {
        DecodePlan p = AttentionBackend::plan(shape);
        if (!p.supported)
            return p;
        p.kv_chunk = shape.page_size;
        p.splits = (shape.seq_len + shape.page_size - 1) / shape.page_size;
        p.chunking = "one page per partial, partials merged in page order";
        return p;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        this->requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool* inner) {
            return simd::fusedPagedAttentionSimd(*it.q, *it.paged, it.seq,
                                                 batch.scale, L, inner);
        });
    }
};

using FusedFp16Avx2 = FusedFp16SimdBackend<simd::Level::Avx2>;
using FusedFp16Avx512 = FusedFp16SimdBackend<simd::Level::Avx512>;
using FusedPackedAvx2 = FusedPackedSimdBackend<simd::Level::Avx2>;
using FusedPackedAvx512 = FusedPackedSimdBackend<simd::Level::Avx512>;
using FusedPagedAvx2 = FusedPagedSimdBackend<simd::Level::Avx2>;
using FusedPagedAvx512 = FusedPagedSimdBackend<simd::Level::Avx512>;

BITDEC_REGISTER_BACKEND(FusedFp16Avx2);
BITDEC_REGISTER_BACKEND(FusedFp16Avx512);
BITDEC_REGISTER_BACKEND(FusedPackedAvx2);
BITDEC_REGISTER_BACKEND(FusedPackedAvx512);
BITDEC_REGISTER_BACKEND(FusedPagedAvx2);
BITDEC_REGISTER_BACKEND(FusedPagedAvx512);

} // namespace

int
linkSimdBackends()
{
    return 0;
}

} // namespace bitdec::backend
