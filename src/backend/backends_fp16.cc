/**
 * @file
 * FP16 backends: the `reference` oracle, the `flash` FlashDecoding
 * baseline, and the `fused-fp16` execution-backend hot path. All three
 * consume contiguous FP16 caches; `reference` additionally gathers paged
 * sequences, which makes it the slow-but-trustworthy serving oracle.
 */
#include "attention/flash_decoding.h"
#include "attention/reference.h"
#include "backend/registry.h"
#include "common/logging.h"
#include "exec/fused_attention.h"
#include "kvcache/kv_cache.h"
#include "kvcache/paged_cache.h"

namespace bitdec::backend {

namespace {

/** Split count of the flash backend; fixed, so merges are reproducible. */
constexpr int kFlashSplits = 4;

/** [len x d] copy of the live rows (keys()/values() carry capacity). */
Tensor<Half>
liveRows(const Tensor<Half>& storage, int len, int d)
{
    Tensor<Half> out({static_cast<std::size_t>(len),
                      static_cast<std::size_t>(d)});
    for (std::size_t i = 0; i < out.numel(); i++)
        out[i] = storage[i];
    return out;
}

/** FP32 reference attention over one item's gathered FP16 content. */
class ReferenceBackend : public AttentionBackend
{
  public:
    const char* name() const override { return "reference"; }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::Fp16Contiguous) |
                        static_cast<unsigned>(Binding::PagedFp16);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous) |
                           static_cast<unsigned>(CacheKind::Paged);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Fp16);
        caps.scenarios = kAllScenarios;
        return caps;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool*) {
            if (it.binding() == Binding::PagedFp16) {
                const Tensor<Half> k = it.paged->gatherKeys(it.seq);
                const Tensor<Half> v = it.paged->gatherValues(it.seq);
                if (k.numel() == 0) {
                    Tensor<float> zero({it.q->dim(0), it.q->dim(1)});
                    zero.fill(0.f);
                    return zero;
                }
                return attn::referenceAttention(*it.q, k, v, batch.scale);
            }
            const int len = it.fp16->length();
            if (len == 0) {
                Tensor<float> zero({it.q->dim(0), it.q->dim(1)});
                zero.fill(0.f);
                return zero;
            }
            const int d = it.fp16->headDim();
            return attn::referenceAttention(*it.q,
                                            liveRows(it.fp16->keys(), len, d),
                                            liveRows(it.fp16->values(), len,
                                                     d),
                                            batch.scale);
        });
    }
};

/** FlashDecoding-v2: split-KV online softmax over a contiguous cache. */
class FlashBackend : public AttentionBackend
{
  public:
    const char* name() const override { return "flash"; }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::Fp16Contiguous);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Fp16);
        caps.scenarios = kContiguousScenarios;
        return caps;
    }

    DecodePlan plan(const attn::DecodeShape& shape) const override
    {
        DecodePlan p = AttentionBackend::plan(shape);
        if (!p.supported)
            return p;
        p.splits = kFlashSplits;
        p.kv_chunk = (shape.seq_len + kFlashSplits - 1) / kFlashSplits;
        p.chunking = "fixed 4-way split-KV, LSE-combined in split order";
        return p;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool* inner) {
            return attn::flashDecodingAttention(*it.q, *it.fp16, batch.scale,
                                                kFlashSplits, inner);
        });
    }
};

/** Tile-fused FP16 hot path of the CPU execution backend. */
class FusedFp16Backend : public AttentionBackend
{
  public:
    const char* name() const override { return "fused-fp16"; }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::Fp16Contiguous);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Contiguous);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Fp16);
        caps.scenarios = kContiguousScenarios;
        caps.fused_hot_path = true;
        return caps;
    }

    DecodePlan plan(const attn::DecodeShape& shape) const override
    {
        DecodePlan p = AttentionBackend::plan(shape);
        if (!p.supported)
            return p;
        p.kv_chunk = exec::kChunkTokens;
        p.splits = (shape.seq_len + exec::kChunkTokens - 1) /
                   exec::kChunkTokens;
        p.chunking = "128-token chunks, partials merged in chunk order";
        return p;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool* inner) {
            return exec::fusedFp16Attention(*it.q, *it.fp16, batch.scale,
                                            inner);
        });
    }
};

BITDEC_REGISTER_BACKEND(ReferenceBackend);
BITDEC_REGISTER_BACKEND(FlashBackend);
BITDEC_REGISTER_BACKEND(FusedFp16Backend);

} // namespace

// Link anchor called by BackendRegistry::instance(): keeps this TU (and
// its self-registering static initializers) in static-library links.
int
linkFp16Backends()
{
    return 0;
}

} // namespace bitdec::backend
