/**
 * @file
 * The unified decode-attention backend interface.
 *
 * BitDecoding's core systems claim is that one decoding loop can swap
 * low-bit KV layouts and kernels behind the same decode step. This module
 * is that seam: every functional decode path in the repo — the reference
 * oracle, FlashDecoding, the fused FP16/paged/packed hot paths, the
 * KIVI/QServe baselines and the Blackwell MX path — is an
 * `AttentionBackend` registered by name in the `BackendRegistry`
 * (registry.h). The serving engine, the benches and the examples resolve
 * backends through the registry instead of hard-coding kernel entry
 * points, so adding a backend is one self-registering translation unit.
 *
 * Digest contract: a backend's chunking and merge order are part of its
 * identity. For a fixed batch, `decodeStep` must return bitwise-identical
 * outputs for any thread pool (including none) — fixed KV chunk sizes,
 * partials merged sequentially in chunk order, batch fan-out with one
 * task per item. `digest()` folds the outputs in item order, so equal
 * digests mean equal bytes, and two backends with equal chunking (e.g.
 * `fused-fp16` at chunk 128 vs `fused-paged` at page size 128) must
 * digest identically over identical cache content.
 */
#ifndef BITDEC_BACKEND_ATTENTION_BACKEND_H
#define BITDEC_BACKEND_ATTENTION_BACKEND_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attention/workloads.h"
#include "common/half.h"
#include "common/tensor.h"

namespace bitdec::kv {
class Fp16HeadCache;
class PackedHeadCache;
class PagedHeadCache;
} // namespace bitdec::kv

namespace bitdec::quant {
struct QuantizedMatrix;
} // namespace bitdec::quant

namespace bitdec::core {
struct MxKvCache;
} // namespace bitdec::core

namespace bitdec::exec {
class ThreadPool;
} // namespace bitdec::exec

namespace bitdec::backend {

/** Coarse cache organization a backend can traverse. */
enum class CacheKind : unsigned
{
    Contiguous = 1u << 0, //!< one growing [len x d] region per head
    Paged = 1u << 1,      //!< page-table indirection over a shared pool
};

/** KV storage format a backend can consume. */
enum class QuantFormat : unsigned
{
    Fp16 = 1u << 0, //!< half-precision K/V
    Int4 = 1u << 1, //!< 4-bit quantized K/V
    Int2 = 1u << 2, //!< 2-bit quantized K/V
    Mx = 1u << 3,   //!< block-scaled MX formats (MXFP4/NVFP4/...)
};

/**
 * Concrete cache structure a DecodeItem binds. Finer than CacheKind x
 * QuantFormat: two 4-bit containers (the induced-layout packed cache and
 * the pre-packing QuantizedMatrix pair) are different structures even
 * though they share the coarse axes.
 */
enum class Binding : unsigned
{
    Fp16Contiguous = 1u << 0,    //!< kv::Fp16HeadCache
    PackedLowBit = 1u << 1,      //!< kv::PackedHeadCache (induced layout)
    PagedFp16 = 1u << 2,         //!< kv::PagedHeadCache + sequence id
    QuantizedMatrices = 1u << 3, //!< quant::QuantizedMatrix K/V pair
    MxBlocks = 1u << 4,          //!< core::MxKvCache
};

/** Printable names (capability matrix, error messages). */
const char* toString(CacheKind k);
const char* toString(QuantFormat f);
const char* toString(Binding b);

/** One scenario's capability bit. */
constexpr unsigned
scenarioBit(attn::Scenario s)
{
    return 1u << static_cast<unsigned>(s);
}

/** Every scenario (the reference oracle's coverage). */
constexpr unsigned kAllScenarios =
    scenarioBit(attn::Scenario::Single) | scenarioBit(attn::Scenario::Batches) |
    scenarioBit(attn::Scenario::Pages) | scenarioBit(attn::Scenario::Serving);

/** The contiguous-cache scenarios (no page-table traversal). */
constexpr unsigned kContiguousScenarios =
    scenarioBit(attn::Scenario::Single) | scenarioBit(attn::Scenario::Batches);

/**
 * What one backend supports. The registry resolves capability queries
 * over (cache kind, quant format, scenario); `bindings` is the concrete
 * structure check `decodeStep` enforces per item.
 */
struct BackendCapabilities
{
    unsigned bindings = 0;      //!< Binding mask decodeStep consumes
    unsigned cache_kinds = 0;   //!< CacheKind mask
    unsigned quant_formats = 0; //!< QuantFormat mask
    unsigned scenarios = 0;     //!< attn::Scenario mask (scenarioBit)
    /**
     * True for the tile-fused execution-backend hot paths whose perf the
     * CI smoke gate (`bench_cpu_hotpath --smoke --backend=<name>`) holds
     * to a speedup floor over the legacy emulated kernel.
     */
    bool fused_hot_path = false;

    /** True when every bit of @p mask is supported on that axis. */
    bool supportsCache(CacheKind k) const
    {
        return (cache_kinds & static_cast<unsigned>(k)) != 0;
    }
    bool supportsFormat(QuantFormat f) const
    {
        return (quant_formats & static_cast<unsigned>(f)) != 0;
    }
    bool supportsScenario(attn::Scenario s) const
    {
        return (scenarios & scenarioBit(s)) != 0;
    }
    bool supportsBinding(Binding b) const
    {
        return (bindings & static_cast<unsigned>(b)) != 0;
    }
};

/** One-line "caches | formats | scenarios" summary for listings. */
std::string describe(const BackendCapabilities& caps);

/**
 * One decode work item: a query tile bound to exactly one cache
 * structure. Pointers must stay valid for the duration of the call; use
 * the factory functions, not direct field fills.
 */
struct DecodeItem
{
    const Tensor<Half>* q = nullptr; //!< [gq x d] transformed queries

    const kv::Fp16HeadCache* fp16 = nullptr;
    const kv::PackedHeadCache* packed = nullptr;
    const kv::PagedHeadCache* paged = nullptr;
    int seq = -1; //!< sequence id for the paged binding
    const quant::QuantizedMatrix* kq = nullptr;
    const quant::QuantizedMatrix* vq = nullptr;
    const core::MxKvCache* mx = nullptr;

    /** The one structure this item binds; panics when none/ambiguous. */
    Binding binding() const;
};

/** Binds a query tile to a contiguous FP16 cache. */
DecodeItem fp16Item(const Tensor<Half>& q, const kv::Fp16HeadCache& cache);

/** Binds a query tile to a packed low-bit cache. */
DecodeItem packedItem(const Tensor<Half>& q, const kv::PackedHeadCache& cache);

/** Binds a query tile to one sequence of a paged FP16 pool. */
DecodeItem pagedItem(const Tensor<Half>& q, const kv::PagedHeadCache& cache,
                     int seq);

/** Binds a query tile to a pre-packing quantized K/V matrix pair. */
DecodeItem quantizedItem(const Tensor<Half>& q,
                         const quant::QuantizedMatrix& kq,
                         const quant::QuantizedMatrix& vq);

/** Binds a query tile to an MX block-scaled K/V cache. */
DecodeItem mxItem(const Tensor<Half>& q, const core::MxKvCache& kv);

/**
 * One decode step's full batch. Every backend consumes this one shape:
 * the serving engine hands it all decoding requests of a tick, the
 * benches a single item, `model::batchedFusedDecode` one item per
 * (sequence, head).
 */
struct DecodeBatch
{
    std::vector<DecodeItem> items;
    float scale = 1.0f;               //!< logit scale
    exec::ThreadPool* pool = nullptr; //!< optional; null = inline
};

/**
 * How a backend would execute one decode shape. Chunking is part of the
 * digest contract: two runs with the same plan produce the same bytes.
 */
struct DecodePlan
{
    bool supported = false;
    std::string reason;   //!< why not, when unsupported
    int kv_chunk = 0;     //!< fixed KV tokens per partial (0 = one pass)
    int splits = 1;       //!< partial states merged sequentially in order
    std::string chunking; //!< human-readable chunk/merge contract
};

/**
 * Abstract decode-attention backend. Implementations adapt one kernel
 * family; they live in src/backend/backends_*.cc and self-register with
 * the BackendRegistry under their `name()`.
 */
class AttentionBackend
{
  public:
    virtual ~AttentionBackend() = default;

    /** Registry key, e.g. "fused-paged". */
    virtual const char* name() const = 0;

    /** What this backend supports (resolution + listings). */
    virtual BackendCapabilities capabilities() const = 0;

    /**
     * True when this host can execute the backend right now. The SIMD
     * siblings return false when the CPU/OS lacks their ISA or
     * `BITDEC_SIMD` caps the level below it; everything else is always
     * available. The registry hides unavailable backends from listings
     * and capability resolution, and resolving one by name is fatal.
     */
    virtual bool available() const { return true; }

    /** Why available() is false (empty when it is true). */
    virtual std::string unavailableReason() const { return {}; }

    /** SIMD level the hot loops run at: "scalar", "avx2" or "avx512".
     *  Recorded in the bench JSON next to the detected CPU features. */
    virtual const char* simdLevel() const { return "scalar"; }

    /**
     * Chunking/split decisions for one decode shape. The default derives
     * support from capabilities() (scenario bit, paged-cache requirement)
     * and reports a single-pass plan.
     */
    virtual DecodePlan plan(const attn::DecodeShape& shape) const;

    /**
     * Runs one decode step for every item of the batch and returns the
     * [gq x d] outputs in item order.
     *
     * Contract:
     *  - every item's binding must be in capabilities().bindings — a
     *    mismatch is a fatal error naming the backend and both sides;
     *  - outputs are bitwise identical for any batch.pool (fixed chunk
     *    sizes, sequential merges, one task per item);
     *  - a single-item batch hands the pool to the kernel's KV chunks
     *    instead of the (empty) batch fan-out.
     */
    virtual std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const = 0;

    /**
     * Deterministic digest of decodeStep(batch): FNV-1a over the output
     * float bit patterns, folded in item order. Equal digests certify
     * bitwise-equal outputs; backends with equal chunking must digest
     * identically over identical cache content.
     */
    std::uint64_t digest(const DecodeBatch& batch) const;

  protected:
    /** Panics unless every item's binding is supported (clear message). */
    void requireBindings(const DecodeBatch& batch) const;
};

/** FNV-1a fold of a float tensor's bit patterns into @p h. */
std::uint64_t fnv1aFold(const Tensor<float>& t, std::uint64_t h);

/**
 * Fatal unless @p be can run the serving engine's per-step attention
 * (paged FP16 binding + Serving scenario). One shared check for the
 * engine constructor and the backend-selecting benches, so the error
 * wording can never drift between them.
 */
void requireServingCapable(const AttentionBackend& be);

/**
 * Shared batch fan-out of the backend adapters: one task per item across
 * @p batch.pool (each inner kernel serial), except a single-item batch,
 * which hands the pool to the kernel's KV chunks instead. Bitwise
 * identical either way because every kernel is thread-count invariant.
 */
std::vector<Tensor<float>> runBatch(
    const DecodeBatch& batch,
    const std::function<Tensor<float>(const DecodeItem&, exec::ThreadPool*)>&
        kernel);

/** FNV-1a offset basis shared by the digest helpers. */
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;

} // namespace bitdec::backend

#endif // BITDEC_BACKEND_ATTENTION_BACKEND_H
