/**
 * @file
 * `fused-paged`: decode attention straight over the paged KV pool
 * (page-table indirection, no gather copies) — the serving engine's
 * per-step functional attention backend.
 */
#include "backend/registry.h"
#include "exec/fused_attention.h"
#include "kvcache/paged_cache.h"

namespace bitdec::backend {

namespace {

class FusedPagedBackend : public AttentionBackend
{
  public:
    const char* name() const override { return "fused-paged"; }

    BackendCapabilities capabilities() const override
    {
        BackendCapabilities caps;
        caps.bindings = static_cast<unsigned>(Binding::PagedFp16);
        caps.cache_kinds = static_cast<unsigned>(CacheKind::Paged);
        caps.quant_formats = static_cast<unsigned>(QuantFormat::Fp16);
        caps.scenarios = scenarioBit(attn::Scenario::Pages) |
                         scenarioBit(attn::Scenario::Serving);
        caps.fused_hot_path = true;
        return caps;
    }

    DecodePlan plan(const attn::DecodeShape& shape) const override
    {
        DecodePlan p = AttentionBackend::plan(shape);
        if (!p.supported)
            return p;
        p.kv_chunk = shape.page_size;
        p.splits = (shape.seq_len + shape.page_size - 1) / shape.page_size;
        p.chunking = "one page per partial, partials merged in page order";
        return p;
    }

    std::vector<Tensor<float>> decodeStep(
        const DecodeBatch& batch) const override
    {
        requireBindings(batch);
        return runBatch(batch, [&batch](const DecodeItem& it,
                                        exec::ThreadPool* inner) {
            return exec::fusedPagedAttention(*it.q, *it.paged, it.seq,
                                             batch.scale, inner);
        });
    }
};

BITDEC_REGISTER_BACKEND(FusedPagedBackend);

} // namespace

int
linkPagedBackends()
{
    return 0;
}

} // namespace bitdec::backend
