#include "kvcache/residency.h"

#include "common/logging.h"

namespace bitdec::kv {

namespace {

constexpr int kBitsPerByte = 8;

std::size_t
bytesFor(int bits)
{
    return static_cast<std::size_t>((bits + kBitsPerByte - 1) / kBitsPerByte);
}

} // namespace

void
ResidencyBitmap::resizeBits(int bits)
{
    BITDEC_ASSERT(bits >= 0, "bitmap size must be >= 0");
    // Clear any tail bits of the old final byte that fall outside the old
    // size before growing, so stale storage never reads as resident.
    if (bits > size_bits_) {
        for (int i = size_bits_; i < bits && i < static_cast<int>(
                                                    buff_.size()) *
                                                    kBitsPerByte;
             i++)
            buff_[static_cast<std::size_t>(i / kBitsPerByte)] &=
                static_cast<std::uint8_t>(~(1u << (i % kBitsPerByte)));
    }
    buff_.resize(bytesFor(bits), 0);
    size_bits_ = bits;
    checkComplete();
}

void
ResidencyBitmap::setBit(int i)
{
    BITDEC_ASSERT(i >= 0 && i < size_bits_, "bit ", i, " out of range");
    buff_[static_cast<std::size_t>(i / kBitsPerByte)] |=
        static_cast<std::uint8_t>(1u << (i % kBitsPerByte));
    checkComplete();
}

void
ResidencyBitmap::clearBit(int i)
{
    BITDEC_ASSERT(i >= 0 && i < size_bits_, "bit ", i, " out of range");
    buff_[static_cast<std::size_t>(i / kBitsPerByte)] &=
        static_cast<std::uint8_t>(~(1u << (i % kBitsPerByte)));
    complete_ = false;
}

bool
ResidencyBitmap::testBit(int i) const
{
    BITDEC_ASSERT(i >= 0 && i < size_bits_, "bit ", i, " out of range");
    return (buff_[static_cast<std::size_t>(i / kBitsPerByte)] >>
            (i % kBitsPerByte)) &
           1u;
}

bool
ResidencyBitmap::isAnythingEmptyInRng(int first, int last) const
{
    BITDEC_ASSERT(first >= 0 && first <= last && last < size_bits_,
                  "bad residency range [", first, ", ", last, "] of ",
                  size_bits_, " bits");
    for (int i = first; i <= last; i++)
        if (!testBit(i))
            return true;
    return false;
}

int
ResidencyBitmap::countSetInRng(int first, int last) const
{
    if (size_bits_ == 0)
        return 0;
    BITDEC_ASSERT(first >= 0 && first <= last && last < size_bits_,
                  "bad residency range [", first, ", ", last, "] of ",
                  size_bits_, " bits");
    int n = 0;
    for (int i = first; i <= last; i++)
        n += testBit(i) ? 1 : 0;
    return n;
}

void
ResidencyBitmap::touch(double now)
{
    access_time_ = now;
    access_count_++;
}

void
ResidencyBitmap::checkComplete()
{
    complete_ = size_bits_ == 0 || !isAnythingEmptyInRng(0, size_bits_ - 1);
}

} // namespace bitdec::kv
