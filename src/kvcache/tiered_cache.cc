#include "kvcache/tiered_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace bitdec::kv {

namespace {

constexpr double kGb = 1e9;

} // namespace

std::uint64_t
TieredPagePool::pageChecksum(const std::vector<Half>& k,
                             const std::vector<Half>& v)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const Half& x : k) {
        h ^= x.bits();
        h *= 0x100000001B3ull;
    }
    for (const Half& x : v) {
        h ^= x.bits();
        h *= 0x100000001B3ull;
    }
    return h;
}

PageEcc
TieredPagePool::pageEcc(const std::vector<Half>& k, const std::vector<Half>& v)
{
    PageEcc e;
    std::uint32_t i = 1; // 1-based: a zero index parity means "no half"
    for (const std::vector<Half>* buf : {&k, &v}) {
        for (const Half& x : *buf) {
            const std::uint16_t bits = x.bits();
            e.column ^= bits;
            for (int b = 0; b < 16; b++)
                if (bits & (1u << b))
                    e.index[static_cast<std::size_t>(b)] ^= i;
            i++;
        }
    }
    return e;
}

bool
TieredPagePool::tryRepairPage(ColdPage& page)
{
    const PageEcc cur = pageEcc(page.k, page.v);
    const std::uint16_t d =
        static_cast<std::uint16_t>(page.ecc.column ^ cur.column);
    if (!std::has_single_bit(d))
        return false; // zero or several flipped bit positions: unlocatable
    const int b = std::countr_zero(d);
    const std::uint32_t idx = page.ecc.index[static_cast<std::size_t>(b)] ^
                              cur.index[static_cast<std::size_t>(b)];
    const std::size_t total = page.k.size() + page.v.size();
    if (idx < 1 || idx > total)
        return false; // inconsistent syndrome: more rot than it can name
    const std::size_t flat = idx - 1;
    std::vector<Half>& buf = flat < page.k.size() ? page.k : page.v;
    Half& x = buf[flat < page.k.size() ? flat : flat - page.k.size()];
    x = Half::fromBits(static_cast<std::uint16_t>(x.bits() ^ (1u << b)));
    // The checksum is the final arbiter: a repair that does not re-verify
    // is discarded like any other corruption.
    return pageChecksum(page.k, page.v) == page.checksum;
}

TieredPagePool::TieredPagePool(PagedHeadCache& hot, const TieredConfig& cfg)
    : hot_(hot),
      tiers_(cfg.tiers),
      prefetch_pages_(cfg.prefetch_pages),
      bytes_per_page_(cfg.bytes_per_page),
      fetch_timeout_s_(cfg.fetch_timeout_s),
      hedge_after_mult_(cfg.hedge_after_mult)
{
    BITDEC_ASSERT(fetch_timeout_s_ > 0, "fetch timeout must be positive");
    BITDEC_ASSERT(hedge_after_mult_ >= 1,
                  "hedge threshold below the modeled cost would hedge "
                  "every transfer");
    BITDEC_ASSERT(prefetch_pages_ >= 0, "prefetch lookahead must be >= 0");
    BITDEC_ASSERT(tiers_.empty() || bytes_per_page_ > 0,
                  "tiered pool needs bytes_per_page to size its tiers");
    for (const auto& t : tiers_) {
        BITDEC_ASSERT(t.capacity_gb > 0 && t.bandwidth_gbps > 0,
                      "tier '", t.name, "' needs positive capacity/bandwidth");
        tier_capacity_pages_.push_back(static_cast<int>(
            t.capacity_gb * kGb / bytes_per_page_));
        BITDEC_ASSERT(tier_capacity_pages_.back() > 0,
                      "tier '", t.name, "' holds zero pages");
        tier_used_pages_.push_back(0);
    }
}

void
TieredPagePool::syncRecord(int seq, Parked& rec)
{
    const int pages = static_cast<int>(hot_.pageTable(seq).size());
    rec.hot_bits.resizeBits(pages);
    for (int i = 0; i < pages; i++) {
        if (hot_.pageResident(seq, i))
            rec.hot_bits.setBit(i);
        else
            rec.hot_bits.clearBit(i);
    }
}

double
TieredPagePool::transferCost(int t, int pages) const
{
    if (pages <= 0)
        return 0;
    const auto& tier = tiers_.at(static_cast<std::size_t>(t));
    return tier.latency_s +
           static_cast<double>(pages) * bytes_per_page_ /
               (tier.bandwidth_gbps * kGb);
}

bool
TieredPagePool::dropLruVictim(int seq, const std::vector<int>& protect)
{
    int victim = -1;
    double oldest = std::numeric_limits<double>::infinity();
    for (const auto& [id, rec] : parked_) {
        if (id == seq || rec.cold.empty())
            continue;
        if (std::find(protect.begin(), protect.end(), id) != protect.end())
            continue;
        if (rec.last_access < oldest) {
            oldest = rec.last_access;
            victim = id;
        }
    }
    if (victim < 0)
        return false;
    auto& rec = parked_.at(victim);
    stats_.dropped_pages += static_cast<long>(rec.cold.size());
    dropColdPayload(rec); // engine recomputes the victim from seeds
    stats_.lru_drops++;
    inform("tiered: cold tiers full — LRU-dropped seq ", victim,
           "'s payload (recompute on resume)");
    return true;
}

void
TieredPagePool::dropColdPayload(Parked& rec)
{
    for (const auto& [idx, page] : rec.cold)
        tier_used_pages_[static_cast<std::size_t>(page.tier)]--;
    rec.cold.clear();
    rec.prefetched_resident.clear();
    rec.lost = true;
}

int
TieredPagePool::makeColdRoom(int seq, const std::vector<int>& protect)
{
    for (;;) {
        // Fast path: the fastest tier has room.
        if (tier_used_pages_[0] < tier_capacity_pages_[0])
            return 0;
        // Tier 0 full. If tier 1 has room, spill the LRU sequence's
        // tier-0 pages down a level so the new (hotter) payload lands on
        // the fast tier; if nothing is spillable, place directly on
        // tier 1.
        if (numTiers() > 1 && tier_used_pages_[1] < tier_capacity_pages_[1]) {
            int victim = -1;
            double oldest = std::numeric_limits<double>::infinity();
            for (const auto& [id, rec] : parked_) {
                bool has_t0 = false;
                for (const auto& [idx, page] : rec.cold)
                    has_t0 |= page.tier == 0;
                if (has_t0 && rec.last_access < oldest) {
                    oldest = rec.last_access;
                    victim = id;
                }
            }
            if (victim < 0 || victim == seq)
                return 1; // own pages are the LRU: store straight to disk
            auto& rec = parked_.at(victim);
            for (auto& [idx, page] : rec.cold) {
                if (page.tier != 0)
                    continue;
                page.tier = 1;
                tier_used_pages_[0]--;
                tier_used_pages_[1]++;
                stats_.spilled_pages++;
                if (tier_used_pages_[0] < tier_capacity_pages_[0] ||
                    tier_used_pages_[1] >= tier_capacity_pages_[1])
                    break;
            }
            continue; // retry placement with the freed room
        }
        // Every tier full: drop a whole parked sequence, or give up.
        if (!dropLruVictim(seq, protect))
            return -1;
    }
}

OffloadResult
TieredPagePool::offloadSequence(int seq, double now,
                                const std::vector<int>& protect)
{
    OffloadResult res;
    if (!enabled()) {
        res.status = CacheStatus::Disabled;
        return res;
    }
    auto& rec = parked_[seq];
    syncRecord(seq, rec);
    const int pages = static_cast<int>(hot_.pageTable(seq).size());
    const std::size_t payload = static_cast<std::size_t>(hot_.pageSize()) *
                                static_cast<std::size_t>(hot_.headDim());
    std::vector<int> moved_per_tier(tier_used_pages_.size(), 0);
    for (int i = 0; i < pages; i++) {
        if (!hot_.pageResident(seq, i))
            continue; // already cold (or lost)
        const int phys = hot_.pageTable(seq)[static_cast<std::size_t>(i)];
        if (hot_.pageRefCount(phys) > 1)
            continue; // shared prefix / CoW partial: pinned hot
        ColdPage cold;
        cold.k.resize(payload);
        cold.v.resize(payload);
        hot_.evictPage(seq, i, cold.k.data(), cold.v.data());
        rec.hot_bits.clearBit(i);
        // A page leaving the hot pool can no longer satisfy the read its
        // prefetch anticipated — forget the pending-hit marker, or a
        // later fetch of the same page would double-count the hit.
        rec.prefetched_resident.erase(i);
        res.moved++;
        const int tier = makeColdRoom(seq, protect);
        if (tier < 0) {
            // Nowhere to put the payload: hot page is freed regardless,
            // the sequence recomputes from seeds on resume.
            rec.lost = true;
            res.dropped++;
            stats_.dropped_pages++;
            continue;
        }
        // Integrity stamps, taken over the exact bytes that cross tiers:
        // the FNV checksum detects rot, the ECC syndrome locates a single
        // flipped bit for in-place repair. Fault injection mutates the
        // payload *after* both stamps — the corruption model is "storage
        // rotted the page", and the resume fetch must catch it.
        cold.checksum = pageChecksum(cold.k, cold.v);
        cold.ecc = pageEcc(cold.k, cold.v);
        if (injector_ != nullptr &&
            injector_->roll(fault::FaultKind::PageCorruption, now,
                            static_cast<std::uint64_t>(seq),
                            static_cast<std::uint64_t>(i))) {
            Rng flip(fault::mixCoords(injector_->seed() ^ 0xB17F11Bull,
                                      fault::FaultKind::PageCorruption,
                                      static_cast<std::uint64_t>(seq),
                                      static_cast<std::uint64_t>(i)));
            const auto flipBit = [&](std::uint64_t lane, std::uint32_t b) {
                std::vector<Half>& buf = lane < payload ? cold.k : cold.v;
                Half& x = buf[static_cast<std::size_t>(lane % payload)];
                x = Half::fromBits(
                    static_cast<std::uint16_t>(x.bits() ^ (1u << b)));
            };
            const std::uint64_t lane = flip.uniformInt(2 * payload);
            const std::uint32_t b1 =
                static_cast<std::uint32_t>(flip.uniformInt(16));
            flipBit(lane, b1);
            if (flip.uniform() < injector_->multibitFraction()) {
                // Second flip at a guaranteed-different bit position:
                // the column syndrome then differs in two bits, which
                // the single-bit decoder refuses — uncorrectable by
                // construction, exercising the recompute path.
                const std::uint64_t lane2 = flip.uniformInt(2 * payload);
                const std::uint32_t b2 =
                    (b1 + 1 +
                     static_cast<std::uint32_t>(flip.uniformInt(15))) %
                    16;
                flipBit(lane2, b2);
            }
        }
        cold.tier = tier;
        tier_used_pages_[static_cast<std::size_t>(tier)]++;
        moved_per_tier[static_cast<std::size_t>(tier)]++;
        rec.cold[i] = std::move(cold);
        stats_.offloaded_pages++;
    }
    for (int t = 0; t < numTiers(); t++)
        res.writeback_s +=
            transferCost(t, moved_per_tier[static_cast<std::size_t>(t)]);
    if (res.dropped > 0) {
        res.status = CacheStatus::ContentLost;
        warn("tiered: no cold room for ", res.dropped, " page(s) of seq ",
             seq, " — payload dropped, sequence recomputes on resume");
    }
    rec.last_access = now;
    rec.hot_bits.touch(now);
    return res;
}

FetchResult
TieredPagePool::fetchRange(int seq, int first_tok, int last_tok, double now)
{
    FetchResult res;
    if (!enabled()) {
        res.status = CacheStatus::Disabled;
        return res;
    }
    if (!tracked(seq)) {
        res.status = CacheStatus::NotTracked;
        return res;
    }
    auto& rec = parked_.at(seq);
    syncRecord(seq, rec);
    if (rec.lost) {
        res.status = CacheStatus::ContentLost;
        return res;
    }
    if (rec.cold.empty())
        return res; // fully resident: nothing to move
    const int pages = static_cast<int>(hot_.pageTable(seq).size());
    if (pages == 0)
        return res;
    const int ps = hot_.pageSize();
    const int first_page = std::max(0, first_tok / ps);
    const int last_page = std::min(pages - 1, last_tok / ps);
    BITDEC_ASSERT(first_page <= last_page, "empty fetch range");
    // Demand window first, then up to prefetch_pages_ more cold pages of
    // the same sequence, nearest to the demand range first (lookahead in
    // both directions: a resumed prefill's cold pages sit *behind* the
    // append point, a gated decode's ahead of the last chunk restored).
    std::vector<int> wanted;
    for (int i = first_page; i <= last_page; i++)
        if (rec.cold.count(i))
            wanted.push_back(i);
    const int demand = static_cast<int>(wanted.size());
    for (int dist = 1, budget = prefetch_pages_;
         budget > 0 && (first_page - dist >= 0 || last_page + dist < pages);
         dist++) {
        if (first_page - dist >= 0 && rec.cold.count(first_page - dist)) {
            wanted.push_back(first_page - dist);
            budget--;
        }
        if (budget > 0 && last_page + dist < pages &&
            rec.cold.count(last_page + dist)) {
            wanted.push_back(last_page + dist);
            budget--;
        }
    }
    // Fault-decision coordinate: one counter per fetchRange call, so a
    // retried fetch re-rolls every per-page fault instead of hitting the
    // same deterministic failure forever.
    const std::uint64_t attempt = ++fetch_attempts_;
    std::vector<int> moved_per_tier(tier_used_pages_.size(), 0);
    bool saw_corruption = false;
    for (std::size_t w = 0; w < wanted.size(); w++) {
        const int i = wanted[w];
        const auto it = rec.cold.find(i);
        const int tier = it->second.tier;
        // A transient per-page fault skips the page but keeps draining
        // the rest of the batch: one bad page must not abort hundreds of
        // good transfers, or a long fetch would retry itself to death.
        if (injector_ != nullptr &&
            injector_->roll(fault::FaultKind::HotAllocFailure, now, attempt,
                            static_cast<std::uint64_t>(i))) {
            // Transient allocator hiccup: distinct from genuine pool
            // exhaustion — freeing pages won't help, backing off will.
            stats_.transfer_failures++;
            inform("tiered: transient hot-pool allocation failure restoring "
                   "seq ", seq, " page ", i, " (retry with backoff)");
            res.status = CacheStatus::TransientFault;
            continue;
        }
        if (injector_ != nullptr &&
            injector_->roll(fault::FaultKind::FetchFailure, now, attempt,
                            static_cast<std::uint64_t>(i))) {
            stats_.transfer_failures++;
            inform("tiered: fetch of seq ", seq, " page ", i, " from ",
                   tierName(tier), " failed (retry with backoff)");
            res.status = CacheStatus::TransientFault;
            continue;
        }
        if (injector_ != nullptr &&
            injector_->roll(fault::FaultKind::LatencySpike, now, attempt,
                            static_cast<std::uint64_t>(i))) {
            const double base = transferCost(tier, 1);
            double spiked = base * injector_->spikeMultiplier();
            if (std::isfinite(hedge_after_mult_)) {
                // Hedged read: once the transfer has stalled for
                // hedge_after_mult x its modeled cost, a duplicate
                // request goes out and the page completes at whichever
                // finishes first. The hedge peeks its own spike fate
                // (not a new injected fault), so storms can defeat it.
                const bool hedge_spiked = injector_->peek(
                    fault::FaultKind::LatencySpike, now, attempt,
                    static_cast<std::uint64_t>(i), /*hedge=*/1);
                const double hedged =
                    hedge_after_mult_ * base +
                    base * (hedge_spiked ? injector_->spikeMultiplier()
                                         : 1.0);
                if (hedged < spiked) {
                    spiked = hedged;
                    stats_.hedged_fetches++;
                }
            }
            if (spiked > fetch_timeout_s_) {
                // Abandon rather than absorb a pathological stall: the
                // backoff delay is bounded, the spike is not.
                stats_.transfer_failures++;
                warn("tiered: fetch of seq ", seq, " page ", i, " from ",
                     tierName(tier), " timed out (", spiked, " s > ",
                     fetch_timeout_s_, " s)");
                res.status = CacheStatus::TransientFault;
                continue;
            }
            res.latency_s += spiked - base; // extra over the modeled cost
        }
        if (pageChecksum(it->second.k, it->second.v) !=
            it->second.checksum) {
            if (tryRepairPage(it->second)) {
                // Single-bit rot: the syndrome located the flipped bit
                // and the corrected payload re-verified. Restore as if
                // nothing happened.
                stats_.repaired_pages++;
                inform("tiered: single-bit rot on seq ", seq, " page ", i,
                       " from ", tierName(tier),
                       " corrected in place (ECC)");
            } else {
                // Multi-bit rot the ECC cannot locate. Only *this* page
                // is poison — every other page is checksum-verified — so
                // only this page is dropped, leaving a hole that is
                // neither hot nor cold. The caller rebuilds exactly that
                // page from seeds (digest-identical), a chunk-sized
                // recompute instead of a whole-sequence one.
                stats_.checksum_failures++;
                warn("tiered: uncorrectable corruption on seq ", seq,
                     " page ", i, " from ", tierName(tier),
                     " — page dropped, caller rebuilds it from seeds");
                tier_used_pages_[static_cast<std::size_t>(tier)]--;
                rec.cold.erase(it);
                saw_corruption = true;
                continue;
            }
        }
        const CacheStatus rs =
            hot_.restorePage(seq, i, it->second.k.data(),
                             it->second.v.data());
        if (rs != CacheStatus::Ok) {
            res.status = rs; // hot pool dry: caller frees pages, retries
            break;
        }
        rec.hot_bits.setBit(i);
        tier_used_pages_[static_cast<std::size_t>(tier)]--;
        moved_per_tier[static_cast<std::size_t>(tier)]++;
        if (static_cast<int>(w) >= demand) {
            rec.prefetched_resident.insert(i);
            stats_.prefetched_pages++;
        } else {
            stats_.fetched_pages++;
        }
        rec.cold.erase(it);
        res.restored++;
    }
    for (int t = 0; t < numTiers(); t++)
        res.latency_s +=
            transferCost(t, moved_per_tier[static_cast<std::size_t>(t)]);
    // Corruption outranks any transient skip in the same call: the
    // caller must learn about the holes it has to rebuild, or they
    // would masquerade as retriable pages and never heal.
    if (saw_corruption)
        res.status = CacheStatus::CorruptionDetected;
    rec.last_access = now;
    rec.hot_bits.touch(now);
    return res;
}

bool
TieredPagePool::coldHas(int seq, int page) const
{
    const auto it = parked_.find(seq);
    return it != parked_.end() && it->second.cold.count(page) > 0;
}

void
TieredPagePool::touchRange(int seq, int first_tok, int last_tok, double now)
{
    const auto it = parked_.find(seq);
    if (it == parked_.end())
        return;
    auto& rec = it->second;
    const int ps = hot_.pageSize();
    const int first_page = std::max(0, first_tok / ps);
    const int last_page = last_tok / ps;
    for (int i = first_page; i <= last_page; i++) {
        if (rec.prefetched_resident.erase(i))
            stats_.prefetch_hits++; // first real read of a prefetched page
    }
    rec.last_access = now;
    rec.hot_bits.touch(now);
}

void
TieredPagePool::forgetSequence(int seq)
{
    const auto it = parked_.find(seq);
    if (it == parked_.end())
        return;
    for (const auto& [idx, page] : it->second.cold)
        tier_used_pages_[static_cast<std::size_t>(page.tier)]--;
    parked_.erase(it);
}

bool
TieredPagePool::fullyResident(int seq) const
{
    const auto it = parked_.find(seq);
    if (it == parked_.end())
        return true;
    return hot_.missingPages(seq) == 0;
}

bool
TieredPagePool::isAnythingEmptyInRng(int seq, int first_page,
                                     int last_page) const
{
    const auto it = parked_.find(seq);
    if (it == parked_.end())
        return false;
    const int pages = static_cast<int>(hot_.pageTable(seq).size());
    first_page = std::max(0, first_page);
    last_page = std::min(pages - 1, last_page);
    for (int i = first_page; i <= last_page; i++)
        if (!hot_.pageResident(seq, i))
            return true;
    return false;
}

int
TieredPagePool::coldPages(int seq) const
{
    const auto it = parked_.find(seq);
    return it == parked_.end() ? 0 : static_cast<int>(it->second.cold.size());
}

bool
TieredPagePool::contentLost(int seq) const
{
    const auto it = parked_.find(seq);
    return it != parked_.end() && it->second.lost;
}

const std::string&
TieredPagePool::tierName(int t) const
{
    return tiers_.at(static_cast<std::size_t>(t)).name;
}

int
TieredPagePool::tierCapacityPages(int t) const
{
    return tier_capacity_pages_.at(static_cast<std::size_t>(t));
}

int
TieredPagePool::tierUsedPages(int t) const
{
    return tier_used_pages_.at(static_cast<std::size_t>(t));
}

} // namespace bitdec::kv
