#include "kvcache/tiered_cache.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace bitdec::kv {

namespace {

constexpr double kGb = 1e9;

} // namespace

TieredPagePool::TieredPagePool(PagedHeadCache& hot, const TieredConfig& cfg)
    : hot_(hot),
      tiers_(cfg.tiers),
      prefetch_pages_(cfg.prefetch_pages),
      bytes_per_page_(cfg.bytes_per_page)
{
    BITDEC_ASSERT(prefetch_pages_ >= 0, "prefetch lookahead must be >= 0");
    BITDEC_ASSERT(tiers_.empty() || bytes_per_page_ > 0,
                  "tiered pool needs bytes_per_page to size its tiers");
    for (const auto& t : tiers_) {
        BITDEC_ASSERT(t.capacity_gb > 0 && t.bandwidth_gbps > 0,
                      "tier '", t.name, "' needs positive capacity/bandwidth");
        tier_capacity_pages_.push_back(static_cast<int>(
            t.capacity_gb * kGb / bytes_per_page_));
        BITDEC_ASSERT(tier_capacity_pages_.back() > 0,
                      "tier '", t.name, "' holds zero pages");
        tier_used_pages_.push_back(0);
    }
}

void
TieredPagePool::syncRecord(int seq, Parked& rec)
{
    const int pages = static_cast<int>(hot_.pageTable(seq).size());
    rec.hot_bits.resizeBits(pages);
    for (int i = 0; i < pages; i++) {
        if (hot_.pageResident(seq, i))
            rec.hot_bits.setBit(i);
        else
            rec.hot_bits.clearBit(i);
    }
}

double
TieredPagePool::transferCost(int t, int pages) const
{
    if (pages <= 0)
        return 0;
    const auto& tier = tiers_.at(static_cast<std::size_t>(t));
    return tier.latency_s +
           static_cast<double>(pages) * bytes_per_page_ /
               (tier.bandwidth_gbps * kGb);
}

bool
TieredPagePool::dropLruVictim(int seq, const std::vector<int>& protect)
{
    int victim = -1;
    double oldest = std::numeric_limits<double>::infinity();
    for (const auto& [id, rec] : parked_) {
        if (id == seq || rec.cold.empty())
            continue;
        if (std::find(protect.begin(), protect.end(), id) != protect.end())
            continue;
        if (rec.last_access < oldest) {
            oldest = rec.last_access;
            victim = id;
        }
    }
    if (victim < 0)
        return false;
    auto& rec = parked_.at(victim);
    for (const auto& [idx, page] : rec.cold) {
        tier_used_pages_[static_cast<std::size_t>(page.tier)]--;
        stats_.dropped_pages++;
    }
    rec.cold.clear();
    rec.prefetched_resident.clear();
    rec.lost = true; // engine recomputes the victim from seeds on resume
    stats_.lru_drops++;
    return true;
}

int
TieredPagePool::makeColdRoom(int seq, const std::vector<int>& protect)
{
    for (;;) {
        // Fast path: the fastest tier has room.
        if (tier_used_pages_[0] < tier_capacity_pages_[0])
            return 0;
        // Tier 0 full. If tier 1 has room, spill the LRU sequence's
        // tier-0 pages down a level so the new (hotter) payload lands on
        // the fast tier; if nothing is spillable, place directly on
        // tier 1.
        if (numTiers() > 1 && tier_used_pages_[1] < tier_capacity_pages_[1]) {
            int victim = -1;
            double oldest = std::numeric_limits<double>::infinity();
            for (const auto& [id, rec] : parked_) {
                bool has_t0 = false;
                for (const auto& [idx, page] : rec.cold)
                    has_t0 |= page.tier == 0;
                if (has_t0 && rec.last_access < oldest) {
                    oldest = rec.last_access;
                    victim = id;
                }
            }
            if (victim < 0 || victim == seq)
                return 1; // own pages are the LRU: store straight to disk
            auto& rec = parked_.at(victim);
            for (auto& [idx, page] : rec.cold) {
                if (page.tier != 0)
                    continue;
                page.tier = 1;
                tier_used_pages_[0]--;
                tier_used_pages_[1]++;
                stats_.spilled_pages++;
                if (tier_used_pages_[0] < tier_capacity_pages_[0] ||
                    tier_used_pages_[1] >= tier_capacity_pages_[1])
                    break;
            }
            continue; // retry placement with the freed room
        }
        // Every tier full: drop a whole parked sequence, or give up.
        if (!dropLruVictim(seq, protect))
            return -1;
    }
}

int
TieredPagePool::offloadSequence(int seq, double now,
                                const std::vector<int>& protect,
                                double* writeback_s)
{
    if (!enabled())
        return 0;
    auto& rec = parked_[seq];
    syncRecord(seq, rec);
    const int pages = static_cast<int>(hot_.pageTable(seq).size());
    const std::size_t payload = static_cast<std::size_t>(hot_.pageSize()) *
                                static_cast<std::size_t>(hot_.headDim());
    std::vector<int> moved_per_tier(tier_used_pages_.size(), 0);
    int moved = 0;
    for (int i = 0; i < pages; i++) {
        if (!hot_.pageResident(seq, i))
            continue; // already cold (or lost)
        const int phys = hot_.pageTable(seq)[static_cast<std::size_t>(i)];
        if (hot_.pageRefCount(phys) > 1)
            continue; // shared prefix / CoW partial: pinned hot
        ColdPage cold;
        cold.k.resize(payload);
        cold.v.resize(payload);
        hot_.evictPage(seq, i, cold.k.data(), cold.v.data());
        rec.hot_bits.clearBit(i);
        moved++;
        const int tier = makeColdRoom(seq, protect);
        if (tier < 0) {
            // Nowhere to put the payload: hot page is freed regardless,
            // the sequence recomputes from seeds on resume.
            rec.lost = true;
            stats_.dropped_pages++;
            continue;
        }
        cold.tier = tier;
        tier_used_pages_[static_cast<std::size_t>(tier)]++;
        moved_per_tier[static_cast<std::size_t>(tier)]++;
        rec.cold[i] = std::move(cold);
        stats_.offloaded_pages++;
    }
    if (writeback_s) {
        for (int t = 0; t < numTiers(); t++)
            *writeback_s +=
                transferCost(t, moved_per_tier[static_cast<std::size_t>(t)]);
    }
    rec.last_access = now;
    rec.hot_bits.touch(now);
    return moved;
}

int
TieredPagePool::fetchRange(int seq, int first_tok, int last_tok, double now,
                           double* latency_s)
{
    if (!enabled() || !tracked(seq))
        return 0;
    auto& rec = parked_.at(seq);
    syncRecord(seq, rec);
    if (rec.lost || rec.cold.empty())
        return 0;
    const int pages = static_cast<int>(hot_.pageTable(seq).size());
    if (pages == 0)
        return 0;
    const int ps = hot_.pageSize();
    const int first_page = std::max(0, first_tok / ps);
    const int last_page = std::min(pages - 1, last_tok / ps);
    BITDEC_ASSERT(first_page <= last_page, "empty fetch range");
    // Demand window first, then up to prefetch_pages_ more cold pages of
    // the same sequence, nearest to the demand range first (lookahead in
    // both directions: a resumed prefill's cold pages sit *behind* the
    // append point, a gated decode's ahead of the last chunk restored).
    std::vector<int> wanted;
    for (int i = first_page; i <= last_page; i++)
        if (rec.cold.count(i))
            wanted.push_back(i);
    const int demand = static_cast<int>(wanted.size());
    for (int dist = 1, budget = prefetch_pages_;
         budget > 0 && (first_page - dist >= 0 || last_page + dist < pages);
         dist++) {
        if (first_page - dist >= 0 && rec.cold.count(first_page - dist)) {
            wanted.push_back(first_page - dist);
            budget--;
        }
        if (budget > 0 && last_page + dist < pages &&
            rec.cold.count(last_page + dist)) {
            wanted.push_back(last_page + dist);
            budget--;
        }
    }
    std::vector<int> moved_per_tier(tier_used_pages_.size(), 0);
    int restored = 0;
    for (std::size_t w = 0; w < wanted.size(); w++) {
        const int i = wanted[w];
        const auto it = rec.cold.find(i);
        if (!hot_.restorePage(seq, i, it->second.k.data(),
                              it->second.v.data()))
            break; // hot pool exhausted: caller frees pages and retries
        rec.hot_bits.setBit(i);
        tier_used_pages_[static_cast<std::size_t>(it->second.tier)]--;
        moved_per_tier[static_cast<std::size_t>(it->second.tier)]++;
        if (static_cast<int>(w) >= demand) {
            rec.prefetched_resident.insert(i);
            stats_.prefetched_pages++;
        } else {
            stats_.fetched_pages++;
        }
        rec.cold.erase(it);
        restored++;
    }
    if (latency_s) {
        for (int t = 0; t < numTiers(); t++)
            *latency_s +=
                transferCost(t, moved_per_tier[static_cast<std::size_t>(t)]);
    }
    rec.last_access = now;
    rec.hot_bits.touch(now);
    return restored;
}

void
TieredPagePool::touchRange(int seq, int first_tok, int last_tok, double now)
{
    const auto it = parked_.find(seq);
    if (it == parked_.end())
        return;
    auto& rec = it->second;
    const int ps = hot_.pageSize();
    const int first_page = std::max(0, first_tok / ps);
    const int last_page = last_tok / ps;
    for (int i = first_page; i <= last_page; i++) {
        if (rec.prefetched_resident.erase(i))
            stats_.prefetch_hits++; // first real read of a prefetched page
    }
    rec.last_access = now;
    rec.hot_bits.touch(now);
}

void
TieredPagePool::forgetSequence(int seq)
{
    const auto it = parked_.find(seq);
    if (it == parked_.end())
        return;
    for (const auto& [idx, page] : it->second.cold)
        tier_used_pages_[static_cast<std::size_t>(page.tier)]--;
    parked_.erase(it);
}

bool
TieredPagePool::fullyResident(int seq) const
{
    const auto it = parked_.find(seq);
    if (it == parked_.end())
        return true;
    return hot_.missingPages(seq) == 0;
}

bool
TieredPagePool::isAnythingEmptyInRng(int seq, int first_page,
                                     int last_page) const
{
    const auto it = parked_.find(seq);
    if (it == parked_.end())
        return false;
    const int pages = static_cast<int>(hot_.pageTable(seq).size());
    first_page = std::max(0, first_page);
    last_page = std::min(pages - 1, last_page);
    for (int i = first_page; i <= last_page; i++)
        if (!hot_.pageResident(seq, i))
            return true;
    return false;
}

int
TieredPagePool::coldPages(int seq) const
{
    const auto it = parked_.find(seq);
    return it == parked_.end() ? 0 : static_cast<int>(it->second.cold.size());
}

bool
TieredPagePool::contentLost(int seq) const
{
    const auto it = parked_.find(seq);
    return it != parked_.end() && it->second.lost;
}

const std::string&
TieredPagePool::tierName(int t) const
{
    return tiers_.at(static_cast<std::size_t>(t)).name;
}

int
TieredPagePool::tierCapacityPages(int t) const
{
    return tier_capacity_pages_.at(static_cast<std::size_t>(t));
}

int
TieredPagePool::tierUsedPages(int t) const
{
    return tier_used_pages_.at(static_cast<std::size_t>(t));
}

} // namespace bitdec::kv
