#include "kvcache/paged_cache.h"

#include "common/logging.h"

namespace bitdec::kv {

PageAllocator::PageAllocator(int num_pages)
    : total_(num_pages), refs_(static_cast<std::size_t>(num_pages), 0)
{
    BITDEC_ASSERT(num_pages > 0, "page pool must be non-empty");
    free_.reserve(static_cast<std::size_t>(num_pages));
    // Hand out low page ids first: push high ids so pop_back yields low.
    for (int p = num_pages - 1; p >= 0; p--)
        free_.push_back(p);
}

std::optional<int>
PageAllocator::allocate()
{
    if (free_.empty())
        return std::nullopt;
    const int page = free_.back();
    free_.pop_back();
    refs_[static_cast<std::size_t>(page)] = 1;
    return page;
}

void
PageAllocator::retain(int page)
{
    BITDEC_ASSERT(page >= 0 && page < total_, "bad page id");
    BITDEC_ASSERT(refs_[static_cast<std::size_t>(page)] > 0,
                  "retain of free page ", page);
    refs_[static_cast<std::size_t>(page)]++;
}

void
PageAllocator::release(int page)
{
    BITDEC_ASSERT(page >= 0 && page < total_, "bad page id");
    BITDEC_ASSERT(refs_[static_cast<std::size_t>(page)] > 0,
                  "double free of page ", page);
    if (--refs_[static_cast<std::size_t>(page)] == 0)
        free_.push_back(page);
}

int
PageAllocator::refCount(int page) const
{
    BITDEC_ASSERT(page >= 0 && page < total_, "bad page id");
    return refs_[static_cast<std::size_t>(page)];
}

PagedHeadCache::PagedHeadCache(int head_dim, int page_size, int num_pages)
    : head_dim_(head_dim),
      page_size_(page_size),
      allocator_(num_pages),
      k_pool_({static_cast<std::size_t>(num_pages),
               static_cast<std::size_t>(page_size),
               static_cast<std::size_t>(head_dim)}),
      v_pool_({static_cast<std::size_t>(num_pages),
               static_cast<std::size_t>(page_size),
               static_cast<std::size_t>(head_dim)})
{
    BITDEC_ASSERT(head_dim > 0 && page_size > 0, "bad paged cache shape");
}

int
PagedHeadCache::addSequence()
{
    for (std::size_t i = 0; i < seqs_.size(); i++) {
        if (!seqs_[i].live) {
            seqs_[i] = Sequence{true, 0, {}};
            return static_cast<int>(i);
        }
    }
    seqs_.push_back(Sequence{true, 0, {}});
    return static_cast<int>(seqs_.size()) - 1;
}

int
PagedHeadCache::addSequenceWithPrefix(std::uint64_t key)
{
    const auto it = prefixes_.find(key);
    BITDEC_ASSERT(it != prefixes_.end(), "unknown prefix key ", key);
    const int seq = addSequence();
    auto& s = seqs_.at(static_cast<std::size_t>(seq));
    for (int p : it->second.pages) {
        allocator_.retain(p);
        s.pages.push_back(p);
    }
    s.len = it->second.tokens;
    return seq;
}

void
PagedHeadCache::removeSequence(int seq)
{
    auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    for (int p : s.pages)
        if (p != kNoPage)
            allocator_.release(p);
    s = Sequence{};
}

bool
PagedHeadCache::append(int seq, const std::vector<Half>& k,
                       const std::vector<Half>& v)
{
    auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    BITDEC_ASSERT(static_cast<int>(k.size()) == head_dim_ &&
                  static_cast<int>(v.size()) == head_dim_,
                  "K/V vector length must equal head_dim");
    const int slot = s.len % page_size_;
    if (slot == 0) {
        const auto page = allocator_.allocate();
        if (!page)
            return false; // OOM: caller decides (evict / reject)
        s.pages.push_back(*page);
    } else if (s.pages.back() == kNoPage) {
        BITDEC_ASSERT(false, "append through offloaded page of seq ", seq,
                      " — restorePage first");
        return false;
    } else if (allocator_.refCount(s.pages.back()) > 1) {
        // Copy-on-write: the partially-filled last page is shared (prefix
        // index or sibling sequences). Copy the filled slots into a fresh
        // page so this sequence's divergence stays private.
        const auto page = allocator_.allocate();
        if (!page)
            return false;
        const std::size_t src = static_cast<std::size_t>(s.pages.back());
        const std::size_t dst = static_cast<std::size_t>(*page);
        const std::size_t row = static_cast<std::size_t>(head_dim_);
        for (int t = 0; t < slot; t++) {
            const std::size_t st = static_cast<std::size_t>(t);
            for (std::size_t d = 0; d < row; d++) {
                k_pool_.at(dst, st, d) = k_pool_.at(src, st, d);
                v_pool_.at(dst, st, d) = v_pool_.at(src, st, d);
            }
        }
        allocator_.release(s.pages.back());
        s.pages.back() = *page;
        cow_copies_++;
    }
    const std::size_t page = static_cast<std::size_t>(s.pages.back());
    for (int d = 0; d < head_dim_; d++) {
        k_pool_.at(page, static_cast<std::size_t>(slot),
                   static_cast<std::size_t>(d)) = k[static_cast<std::size_t>(d)];
        v_pool_.at(page, static_cast<std::size_t>(slot),
                   static_cast<std::size_t>(d)) = v[static_cast<std::size_t>(d)];
    }
    s.len++;
    return true;
}

bool
PagedHeadCache::publishPrefix(std::uint64_t key, int seq, int tokens)
{
    BITDEC_ASSERT(key != 0, "prefix key 0 is reserved for 'no prefix'");
    if (prefixes_.count(key))
        return false; // first publisher wins
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    BITDEC_ASSERT(tokens > 0 && tokens <= s.len,
                  "prefix of ", tokens, " tokens exceeds sequence length ",
                  s.len);
    PrefixEntry e;
    e.tokens = tokens;
    const int pages = pagesFor(tokens);
    e.pages.assign(s.pages.begin(), s.pages.begin() + pages);
    for (int p : e.pages)
        allocator_.retain(p);
    prefixes_.emplace(key, std::move(e));
    return true;
}

int
PagedHeadCache::prefixTokens(std::uint64_t key) const
{
    const auto it = prefixes_.find(key);
    return it == prefixes_.end() ? 0 : it->second.tokens;
}

int
PagedHeadCache::prefixPages(std::uint64_t key) const
{
    const auto it = prefixes_.find(key);
    return it == prefixes_.end() ? 0
                                 : static_cast<int>(it->second.pages.size());
}

void
PagedHeadCache::dropPrefix(std::uint64_t key)
{
    const auto it = prefixes_.find(key);
    BITDEC_ASSERT(it != prefixes_.end(), "unknown prefix key ", key);
    for (int p : it->second.pages)
        allocator_.release(p);
    prefixes_.erase(it);
}

int
PagedHeadCache::releaseUnusedPrefixes()
{
    int freed = 0;
    for (auto it = prefixes_.begin(); it != prefixes_.end();) {
        bool unused = true;
        for (int p : it->second.pages)
            unused &= allocator_.refCount(p) == 1;
        if (unused) {
            freed += static_cast<int>(it->second.pages.size());
            for (int p : it->second.pages)
                allocator_.release(p);
            it = prefixes_.erase(it);
        } else {
            ++it;
        }
    }
    return freed;
}

int
PagedHeadCache::releaseAllPrefixes()
{
    int freed = 0;
    for (auto& [key, entry] : prefixes_) {
        for (int p : entry.pages) {
            const bool last = allocator_.refCount(p) == 1;
            allocator_.release(p);
            freed += last ? 1 : 0;
        }
    }
    prefixes_.clear();
    return freed;
}

int
PagedHeadCache::reclaimablePages(int seq) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    int n = 0;
    for (int p : s.pages)
        n += (p != kNoPage && allocator_.refCount(p) == 1) ? 1 : 0;
    return n;
}

void
PagedHeadCache::evictPage(int seq, int idx, Half* k_out, Half* v_out)
{
    auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    BITDEC_ASSERT(idx >= 0 && idx < static_cast<int>(s.pages.size()),
                  "bad logical page index ", idx);
    const int page = s.pages[static_cast<std::size_t>(idx)];
    BITDEC_ASSERT(page != kNoPage, "page ", idx, " already offloaded");
    BITDEC_ASSERT(allocator_.refCount(page) == 1,
                  "evicting shared page ", page, " (refcount > 1)");
    const std::size_t n = static_cast<std::size_t>(page_size_) *
                          static_cast<std::size_t>(head_dim_);
    const Half* k_src = pageKeyData(page);
    const Half* v_src = pageValueData(page);
    for (std::size_t i = 0; i < n; i++) {
        k_out[i] = k_src[i];
        v_out[i] = v_src[i];
    }
    allocator_.release(page);
    s.pages[static_cast<std::size_t>(idx)] = kNoPage;
}

CacheStatus
PagedHeadCache::restorePage(int seq, int idx, const Half* k, const Half* v)
{
    auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    BITDEC_ASSERT(idx >= 0 && idx < static_cast<int>(s.pages.size()),
                  "bad logical page index ", idx);
    BITDEC_ASSERT(s.pages[static_cast<std::size_t>(idx)] == kNoPage,
                  "restore into mapped page ", idx);
    const auto page = allocator_.allocate();
    if (!page) // hot pool exhausted: caller frees pages and retries
        return CacheStatus::HotPoolExhausted;
    const std::size_t n = static_cast<std::size_t>(page_size_) *
                          static_cast<std::size_t>(head_dim_);
    Half* k_dst = k_pool_.data() + static_cast<std::size_t>(*page) * n;
    Half* v_dst = v_pool_.data() + static_cast<std::size_t>(*page) * n;
    for (std::size_t i = 0; i < n; i++) {
        k_dst[i] = k[i];
        v_dst[i] = v[i];
    }
    s.pages[static_cast<std::size_t>(idx)] = *page;
    return CacheStatus::Ok;
}

bool
PagedHeadCache::pageResident(int seq, int idx) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    BITDEC_ASSERT(idx >= 0 && idx < static_cast<int>(s.pages.size()),
                  "bad logical page index ", idx);
    return s.pages[static_cast<std::size_t>(idx)] != kNoPage;
}

int
PagedHeadCache::missingPages(int seq) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    int n = 0;
    for (int p : s.pages)
        n += p == kNoPage ? 1 : 0;
    return n;
}

int
PagedHeadCache::length(int seq) const
{
    return seqs_.at(static_cast<std::size_t>(seq)).len;
}

const std::vector<int>&
PagedHeadCache::pageTable(int seq) const
{
    return seqs_.at(static_cast<std::size_t>(seq)).pages;
}

std::vector<Half>
PagedHeadCache::tokenKey(int seq, int t) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    BITDEC_ASSERT(t >= 0 && t < s.len, "token index out of range");
    const std::size_t page = static_cast<std::size_t>(
        s.pages[static_cast<std::size_t>(t / page_size_)]);
    const std::size_t slot = static_cast<std::size_t>(t % page_size_);
    std::vector<Half> key(static_cast<std::size_t>(head_dim_));
    for (int d = 0; d < head_dim_; d++)
        key[static_cast<std::size_t>(d)] =
            k_pool_.at(page, slot, static_cast<std::size_t>(d));
    return key;
}

const Half*
PagedHeadCache::pageKeyData(int page) const
{
    BITDEC_ASSERT(page >= 0 && page < allocator_.totalPages(), "bad page id");
    return k_pool_.data() + static_cast<std::size_t>(page) *
                                static_cast<std::size_t>(page_size_) *
                                static_cast<std::size_t>(head_dim_);
}

const Half*
PagedHeadCache::pageValueData(int page) const
{
    BITDEC_ASSERT(page >= 0 && page < allocator_.totalPages(), "bad page id");
    return v_pool_.data() + static_cast<std::size_t>(page) *
                                static_cast<std::size_t>(page_size_) *
                                static_cast<std::size_t>(head_dim_);
}

int
PagedHeadCache::pagesFor(int tokens) const
{
    return (tokens + page_size_ - 1) / page_size_;
}

int
PagedHeadCache::pagesToGrow(int from_tokens, int to_tokens) const
{
    BITDEC_ASSERT(from_tokens >= 0 && from_tokens <= to_tokens,
                  "bad growth range ", from_tokens, " -> ", to_tokens);
    return pagesFor(to_tokens) - pagesFor(from_tokens);
}

int
PagedHeadCache::pagesNeededForAppend(int seq, int extra) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    int needed = pagesToGrow(s.len, s.len + extra);
    // Writing into a shared partially-filled page costs one CoW page. An
    // offloaded (kNoPage) last page costs nothing here: restorePage must
    // fill the hole before the append, and that restore is budgeted
    // separately via missingPages().
    if (extra > 0 && s.len % page_size_ != 0 && s.pages.back() != kNoPage &&
        allocator_.refCount(s.pages.back()) > 1)
        needed++;
    return needed;
}

bool
PagedHeadCache::hasHeadroom(int current_len, int extra_tokens) const
{
    return allocator_.freePages() >=
           pagesToGrow(current_len, current_len + extra_tokens);
}

std::vector<int>
PagedHeadCache::liveSequences() const
{
    std::vector<int> live;
    for (std::size_t i = 0; i < seqs_.size(); i++)
        if (seqs_[i].live)
            live.push_back(static_cast<int>(i));
    return live;
}

int
PagedHeadCache::numLive() const
{
    int n = 0;
    for (const auto& s : seqs_)
        n += s.live ? 1 : 0;
    return n;
}

Tensor<Half>
PagedHeadCache::gatherKeys(int seq) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    Tensor<Half> out({static_cast<std::size_t>(s.len),
                      static_cast<std::size_t>(head_dim_)});
    for (int t = 0; t < s.len; t++) {
        const std::size_t page =
            static_cast<std::size_t>(s.pages[static_cast<std::size_t>(
                t / page_size_)]);
        const std::size_t slot = static_cast<std::size_t>(t % page_size_);
        for (int d = 0; d < head_dim_; d++) {
            out.at(static_cast<std::size_t>(t), static_cast<std::size_t>(d)) =
                k_pool_.at(page, slot, static_cast<std::size_t>(d));
        }
    }
    return out;
}

Tensor<Half>
PagedHeadCache::gatherValues(int seq) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    Tensor<Half> out({static_cast<std::size_t>(s.len),
                      static_cast<std::size_t>(head_dim_)});
    for (int t = 0; t < s.len; t++) {
        const std::size_t page =
            static_cast<std::size_t>(s.pages[static_cast<std::size_t>(
                t / page_size_)]);
        const std::size_t slot = static_cast<std::size_t>(t % page_size_);
        for (int d = 0; d < head_dim_; d++) {
            out.at(static_cast<std::size_t>(t), static_cast<std::size_t>(d)) =
                v_pool_.at(page, slot, static_cast<std::size_t>(d));
        }
    }
    return out;
}

} // namespace bitdec::kv
