#include "kvcache/paged_cache.h"

#include "common/logging.h"

namespace bitdec::kv {

PageAllocator::PageAllocator(int num_pages)
    : total_(num_pages), allocated_(static_cast<std::size_t>(num_pages), false)
{
    BITDEC_ASSERT(num_pages > 0, "page pool must be non-empty");
    free_.reserve(static_cast<std::size_t>(num_pages));
    // Hand out low page ids first: push high ids so pop_back yields low.
    for (int p = num_pages - 1; p >= 0; p--)
        free_.push_back(p);
}

std::optional<int>
PageAllocator::allocate()
{
    if (free_.empty())
        return std::nullopt;
    const int page = free_.back();
    free_.pop_back();
    allocated_[static_cast<std::size_t>(page)] = true;
    return page;
}

void
PageAllocator::release(int page)
{
    BITDEC_ASSERT(page >= 0 && page < total_, "bad page id");
    BITDEC_ASSERT(allocated_[static_cast<std::size_t>(page)],
                  "double free of page ", page);
    allocated_[static_cast<std::size_t>(page)] = false;
    free_.push_back(page);
}

PagedHeadCache::PagedHeadCache(int head_dim, int page_size, int num_pages)
    : head_dim_(head_dim),
      page_size_(page_size),
      allocator_(num_pages),
      k_pool_({static_cast<std::size_t>(num_pages),
               static_cast<std::size_t>(page_size),
               static_cast<std::size_t>(head_dim)}),
      v_pool_({static_cast<std::size_t>(num_pages),
               static_cast<std::size_t>(page_size),
               static_cast<std::size_t>(head_dim)})
{
    BITDEC_ASSERT(head_dim > 0 && page_size > 0, "bad paged cache shape");
}

int
PagedHeadCache::addSequence()
{
    for (std::size_t i = 0; i < seqs_.size(); i++) {
        if (!seqs_[i].live) {
            seqs_[i] = Sequence{true, 0, {}};
            return static_cast<int>(i);
        }
    }
    seqs_.push_back(Sequence{true, 0, {}});
    return static_cast<int>(seqs_.size()) - 1;
}

void
PagedHeadCache::removeSequence(int seq)
{
    auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    for (int p : s.pages)
        allocator_.release(p);
    s = Sequence{};
}

bool
PagedHeadCache::append(int seq, const std::vector<Half>& k,
                       const std::vector<Half>& v)
{
    auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    BITDEC_ASSERT(static_cast<int>(k.size()) == head_dim_ &&
                  static_cast<int>(v.size()) == head_dim_,
                  "K/V vector length must equal head_dim");
    const int slot = s.len % page_size_;
    if (slot == 0) {
        const auto page = allocator_.allocate();
        if (!page)
            return false; // OOM: caller decides (evict / reject)
        s.pages.push_back(*page);
    }
    const std::size_t page = static_cast<std::size_t>(s.pages.back());
    for (int d = 0; d < head_dim_; d++) {
        k_pool_.at(page, static_cast<std::size_t>(slot),
                   static_cast<std::size_t>(d)) = k[static_cast<std::size_t>(d)];
        v_pool_.at(page, static_cast<std::size_t>(slot),
                   static_cast<std::size_t>(d)) = v[static_cast<std::size_t>(d)];
    }
    s.len++;
    return true;
}

int
PagedHeadCache::length(int seq) const
{
    return seqs_.at(static_cast<std::size_t>(seq)).len;
}

const std::vector<int>&
PagedHeadCache::pageTable(int seq) const
{
    return seqs_.at(static_cast<std::size_t>(seq)).pages;
}

std::vector<Half>
PagedHeadCache::tokenKey(int seq, int t) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    BITDEC_ASSERT(s.live, "sequence not live");
    BITDEC_ASSERT(t >= 0 && t < s.len, "token index out of range");
    const std::size_t page = static_cast<std::size_t>(
        s.pages[static_cast<std::size_t>(t / page_size_)]);
    const std::size_t slot = static_cast<std::size_t>(t % page_size_);
    std::vector<Half> key(static_cast<std::size_t>(head_dim_));
    for (int d = 0; d < head_dim_; d++)
        key[static_cast<std::size_t>(d)] =
            k_pool_.at(page, slot, static_cast<std::size_t>(d));
    return key;
}

const Half*
PagedHeadCache::pageKeyData(int page) const
{
    BITDEC_ASSERT(page >= 0 && page < allocator_.totalPages(), "bad page id");
    return k_pool_.data() + static_cast<std::size_t>(page) *
                                static_cast<std::size_t>(page_size_) *
                                static_cast<std::size_t>(head_dim_);
}

const Half*
PagedHeadCache::pageValueData(int page) const
{
    BITDEC_ASSERT(page >= 0 && page < allocator_.totalPages(), "bad page id");
    return v_pool_.data() + static_cast<std::size_t>(page) *
                                static_cast<std::size_t>(page_size_) *
                                static_cast<std::size_t>(head_dim_);
}

int
PagedHeadCache::pagesFor(int tokens) const
{
    return (tokens + page_size_ - 1) / page_size_;
}

bool
PagedHeadCache::hasHeadroom(int current_len, int extra_tokens) const
{
    const int needed =
        pagesFor(current_len + extra_tokens) - pagesFor(current_len);
    return allocator_.freePages() >= needed;
}

std::vector<int>
PagedHeadCache::liveSequences() const
{
    std::vector<int> live;
    for (std::size_t i = 0; i < seqs_.size(); i++)
        if (seqs_[i].live)
            live.push_back(static_cast<int>(i));
    return live;
}

int
PagedHeadCache::numLive() const
{
    int n = 0;
    for (const auto& s : seqs_)
        n += s.live ? 1 : 0;
    return n;
}

Tensor<Half>
PagedHeadCache::gatherKeys(int seq) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    Tensor<Half> out({static_cast<std::size_t>(s.len),
                      static_cast<std::size_t>(head_dim_)});
    for (int t = 0; t < s.len; t++) {
        const std::size_t page =
            static_cast<std::size_t>(s.pages[static_cast<std::size_t>(
                t / page_size_)]);
        const std::size_t slot = static_cast<std::size_t>(t % page_size_);
        for (int d = 0; d < head_dim_; d++) {
            out.at(static_cast<std::size_t>(t), static_cast<std::size_t>(d)) =
                k_pool_.at(page, slot, static_cast<std::size_t>(d));
        }
    }
    return out;
}

Tensor<Half>
PagedHeadCache::gatherValues(int seq) const
{
    const auto& s = seqs_.at(static_cast<std::size_t>(seq));
    Tensor<Half> out({static_cast<std::size_t>(s.len),
                      static_cast<std::size_t>(head_dim_)});
    for (int t = 0; t < s.len; t++) {
        const std::size_t page =
            static_cast<std::size_t>(s.pages[static_cast<std::size_t>(
                t / page_size_)]);
        const std::size_t slot = static_cast<std::size_t>(t % page_size_);
        for (int d = 0; d < head_dim_; d++) {
            out.at(static_cast<std::size_t>(t), static_cast<std::size_t>(d)) =
                v_pool_.at(page, slot, static_cast<std::size_t>(d));
        }
    }
    return out;
}

} // namespace bitdec::kv
