/**
 * @file
 * Tiered KV-cache pool: host/disk offload for cold low-bit pages.
 *
 * Layers the bounded hot tier (the PagedHeadCache's PageAllocator pool)
 * over one or two simulated cold tiers — host RAM and disk — each with a
 * configurable capacity and virtual-clock transfer cost. What crosses
 * tiers is the *packed* low-bit payload: a 4-bit page costs 1/4 the bytes
 * of its FP16 form, so the offload tiers hold 4x the tokens per byte
 * (the BitDecoding density argument applied to capacity instead of
 * bandwidth).
 *
 * Responsibilities:
 *  - offloadSequence: evict a parked sequence's exclusively-owned pages
 *    to the fastest cold tier with room (spilling host -> disk LRU-wise),
 *    leaving kNoPage holes in the hot page table. Shared-prefix pages and
 *    CoW partials (refcount > 1) are pinned hot and never torn.
 *  - fetchRange: demand-restore the pages covering a token range plus a
 *    lookahead window (prefetch) on sequence resume, charging per-tier
 *    base latency + bytes/bandwidth on the caller's virtual clock.
 *  - Residency tracking per sequence via ResidencyBitmap (xrootd
 *    CacheFileInfo style): the engine gates decode on
 *    isAnythingEmptyInRng over the sequence's whole page range.
 *  - LRU whole-sequence drops when every cold tier is full: the victim's
 *    cold payload is discarded and the sequence marked content-lost; the
 *    engine recomputes it from the request seeds on resume (digests are
 *    position-determined, so recompute is byte-identical).
 */
#ifndef BITDEC_KVCACHE_TIERED_CACHE_H
#define BITDEC_KVCACHE_TIERED_CACHE_H

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/half.h"
#include "fault/fault.h"
#include "kvcache/paged_cache.h"
#include "kvcache/residency.h"
#include "kvcache/status.h"

namespace bitdec::kv {

/** One cold tier: capacity plus a linear transfer-cost model. */
struct TierSpec
{
    std::string name = "host"; //!< reporting label
    double capacity_gb = 1.0;  //!< packed-byte capacity
    double bandwidth_gbps = 32.0; //!< GB/s for page payload transfer
    double latency_s = 10e-6;  //!< per-operation base latency
};

/** Tiered-pool configuration. An empty tier list disables tiering. */
struct TieredConfig
{
    std::vector<TierSpec> tiers; //!< fastest first (host, then disk)
    int prefetch_pages = 4;      //!< lookahead pages per demand fetch
    /**
     * Packed bytes per page crossing tiers (whole-model, all heads).
     * Low-bit systems pass fp16_bytes * bits/16 — the 4x density win.
     */
    double bytes_per_page = 0;

    /**
     * Per-page fetch timeout (virtual seconds): a transfer whose spiked
     * cost exceeds this is abandoned as a transient fault instead of
     * stalling the request for the full spike — the engine's
     * retry-with-backoff picks it up. Only a fault-injected LatencySpike
     * can trip it; the modeled base cost never times out. Infinite (the
     * default) disables the timeout.
     */
    double fetch_timeout_s = std::numeric_limits<double>::infinity();

    /**
     * Hedged reads (the tail-at-scale defense): once a spike-stalled
     * transfer has taken this many multiples of its modeled cost, a
     * duplicate request is issued and the page completes at whichever
     * finishes first. The hedge rolls its own spike fate from a
     * distinct coordinate, so a dense storm can still defeat it.
     * Infinity disables hedging.
     */
    double hedge_after_mult = 4.0;
};

/** Transfer counters, cumulative over the pool's lifetime. */
struct TieredStats
{
    long offloaded_pages = 0;  //!< hot -> cold evictions
    long fetched_pages = 0;    //!< demand cold -> hot restores
    long prefetched_pages = 0; //!< lookahead cold -> hot restores
    long prefetch_hits = 0;    //!< prefetched pages later actually read
    long spilled_pages = 0;    //!< tier-0 -> tier-1 spills
    long dropped_pages = 0;    //!< cold payloads discarded (capacity)
    long lru_drops = 0;        //!< whole sequences content-dropped
    long transfer_failures = 0; //!< fetches failed/timed out (transient)
    long checksum_failures = 0; //!< uncorrectable corruption on restore
    long repaired_pages = 0;    //!< single-bit rot corrected in place
    long hedged_fetches = 0;    //!< spiked transfers rescued by a hedge
};

/**
 * Hamming-style syndrome over a page payload, stored next to the FNV-1a
 * checksum when a page goes cold. The checksum *detects* rot end-to-end;
 * the syndrome *locates* a single flipped bit so it can be corrected in
 * place (the simulator's stand-in for the ECC every real cold store
 * wears): `column` is the XOR of every half's bit pattern — after a
 * single flip it differs in exactly the flipped bit position b — and
 * `index[b]` is the XOR of the 1-based payload indices of every half
 * with bit b set, so the syndrome difference names the flipped half
 * directly. Multi-bit rot leaves an inconsistent syndrome and stays
 * uncorrectable: detected, dropped, recomputed.
 */
struct PageEcc
{
    std::uint16_t column = 0; //!< XOR of every half's 16-bit pattern
    std::array<std::uint32_t, 16> index{}; //!< per-bit index parity
};

/** Outcome of TieredPagePool::offloadSequence. */
struct OffloadResult
{
    int moved = 0;          //!< pages moved out of the hot pool
    int dropped = 0;        //!< payloads discarded for lack of cold room
    double writeback_s = 0; //!< virtual-clock cost of the write-back
    //! Ok, Disabled, or ContentLost when any payload was dropped.
    CacheStatus status = CacheStatus::Ok;
};

/** Outcome of TieredPagePool::fetchRange. */
struct FetchResult
{
    int restored = 0;     //!< pages restored into the hot pool
    double latency_s = 0; //!< virtual-clock cost of the transfers
    /**
     * Ok when every wanted page was restored; HotPoolExhausted,
     * TransientFault, CorruptionDetected, ContentLost, NotTracked or
     * Disabled otherwise (see status.h for the recovery each implies).
     */
    CacheStatus status = CacheStatus::Ok;
};

/**
 * Host/disk offload layer over one PagedHeadCache.
 *
 * The pool tracks a record per offloaded ("parked") sequence: a residency
 * bitmap over its logical pages, the cold payload of each non-resident
 * page, and LRU access bookkeeping. The engine owns the policy of *when*
 * to offload (preemption, idle parking) and *when* to fetch (resume);
 * this class owns placement, capacity accounting and transfer cost.
 */
class TieredPagePool
{
  public:
    TieredPagePool(PagedHeadCache& hot, const TieredConfig& cfg);

    /** True when at least one cold tier is configured. */
    bool enabled() const { return !tiers_.empty(); }

    /**
     * Offloads every exclusively-owned resident page of @p seq to cold
     * storage, stamping each payload with an FNV-1a checksum that the
     * resume fetch verifies. Pages with refcount > 1 (shared prefixes,
     * CoW partials) stay hot. When the cold tiers are full, other
     * unprotected parked sequences are LRU-dropped to make room; as a
     * last resort the payload is discarded and @p seq marked
     * content-lost (OffloadResult::dropped, status ContentLost).
     *
     * @param protect sequence ids that must not be LRU-dropped (the
     *                engine's currently-running set)
     */
    OffloadResult offloadSequence(int seq, double now,
                                  const std::vector<int>& protect);

    /**
     * Restores the cold pages covering tokens [@p first_tok, @p last_tok]
     * of @p seq, plus up to prefetch_pages further cold pages nearest to
     * the range in either direction (lookahead). Each page's checksum is
     * verified before it re-enters the hot pool: single-bit rot is
     * corrected in place via the page ECC; an uncorrectable mismatch
     * drops just that page — leaving a hole (see coldHas) the caller
     * rebuilds from seeds — and reports CorruptionDetected, which
     * outranks TransientFault in the same call. A transient per-page
     * fault (failed or timed-out transfer, alloc hiccup) skips that
     * page but keeps restoring the rest: the result is TransientFault
     * with a partial restored count, and the caller's
     * retry-with-backoff picks up the stragglers. Only hot-pool
     * exhaustion stops the loop outright (freeing pages is on the
     * caller).
     */
    FetchResult fetchRange(int seq, int first_tok, int last_tok, double now);

    /**
     * Arms fault injection on the transfer and offload paths (null
     * disarms). The pool consults the injector per page moved: fetch
     * failures, latency spikes and transient hot-alloc failures on
     * fetchRange, bit corruption on offloadSequence. The injector must
     * outlive the pool's use of it.
     */
    void setFaultInjector(fault::FaultInjector* injector)
    {
        injector_ = injector;
    }

    /**
     * FNV-1a fold of a page payload's K and V bit patterns — the
     * integrity stamp offloadSequence stores and fetchRange verifies.
     */
    static std::uint64_t pageChecksum(const std::vector<Half>& k,
                                      const std::vector<Half>& v);

    /** Hamming-style syndrome of a page payload (see PageEcc). */
    static PageEcc pageEcc(const std::vector<Half>& k,
                           const std::vector<Half>& v);

    /**
     * Records a read of tokens [@p first_tok, @p last_tok]: refreshes the
     * LRU clock and counts first touches of prefetched pages as prefetch
     * hits (each restored page is counted at most once).
     */
    void touchRange(int seq, int first_tok, int last_tok, double now);

    /** Drops all tracking and cold payload of @p seq (finish/abort). */
    void forgetSequence(int seq);

    /** True when the pool holds state for @p seq. */
    bool tracked(int seq) const { return parked_.count(seq) > 0; }

    /** True when no page of @p seq is offloaded. */
    bool fullyResident(int seq) const;

    /**
     * True when any logical page in [@p first_page, @p last_page] of
     * @p seq is non-resident (the engine's decode gate).
     */
    bool isAnythingEmptyInRng(int seq, int first_page, int last_page) const;

    /** Cold (offloaded) pages currently held for @p seq. */
    int coldPages(int seq) const;

    /**
     * True when logical page @p page of @p seq holds a cold payload. A
     * tracked page that is neither hot-resident nor cold is a *hole*
     * (its payload was dropped as uncorrectably corrupt): no fetch can
     * restore it — the caller rebuilds it from seeds.
     */
    bool coldHas(int seq, int page) const;

    /**
     * True when @p seq's cold payload was discarded under capacity
     * pressure: fetch is impossible, the engine must recompute the
     * sequence from scratch (digest-identical by construction).
     */
    bool contentLost(int seq) const;

    /** Number of configured cold tiers. */
    int numTiers() const { return static_cast<int>(tiers_.size()); }

    /** Reporting label of cold tier @p t. */
    const std::string& tierName(int t) const;

    /** Page capacity of cold tier @p t (packed bytes / bytes_per_page). */
    int tierCapacityPages(int t) const;

    /** Pages currently held in cold tier @p t. */
    int tierUsedPages(int t) const;

    /** Cumulative transfer counters. */
    const TieredStats& stats() const { return stats_; }

  private:
    struct ColdPage
    {
        int tier = 0;
        std::vector<Half> k, v; //!< page payload, page_size x head_dim
        std::uint64_t checksum = 0; //!< FNV-1a stamp taken at offload
        PageEcc ecc; //!< syndrome for single-bit repair, same vintage
    };

    struct Parked
    {
        ResidencyBitmap hot_bits; //!< set = resident in the hot pool
        std::unordered_map<int, ColdPage> cold; //!< logical idx -> payload
        //! pages restored by lookahead, awaiting their first real read
        std::unordered_set<int> prefetched_resident;
        double last_access = 0;
        bool lost = false; //!< cold payload discarded; recompute on resume
    };

    /** Resizes/refreshes a record's bitmap against the hot page table. */
    void syncRecord(int seq, Parked& rec);

    /**
     * Makes room for one more cold page: spill tier-0 -> tier-1, then
     * LRU-drop unprotected parked sequences. @return destination tier,
     * or -1 when nothing can be freed (payload must be dropped).
     */
    int makeColdRoom(int seq, const std::vector<int>& protect);

    /** Discards all cold payload of the LRU victim; true on success. */
    bool dropLruVictim(int seq, const std::vector<int>& protect);

    /** Discards @p rec's cold payload and marks it content-lost. */
    void dropColdPayload(Parked& rec);

    /**
     * Attempts in-place repair of a checksum-mismatched page via its
     * stored syndrome: true when exactly one bit had flipped and the
     * corrected payload re-verifies against the checksum.
     */
    static bool tryRepairPage(ColdPage& page);

    /** Virtual-clock cost of moving @p pages pages to/from tier @p t. */
    double transferCost(int t, int pages) const;

    PagedHeadCache& hot_;
    std::vector<TierSpec> tiers_;
    std::vector<int> tier_capacity_pages_;
    std::vector<int> tier_used_pages_;
    int prefetch_pages_;
    double bytes_per_page_;
    double fetch_timeout_s_;
    double hedge_after_mult_;
    std::unordered_map<int, Parked> parked_;
    TieredStats stats_;
    fault::FaultInjector* injector_ = nullptr;
    //! Monotonic fetch-attempt counter, a fault-decision coordinate: the
    //! same page re-rolls its faults on every retry (otherwise a
    //! deterministic injector would fail the same fetch forever).
    std::uint64_t fetch_attempts_ = 0;
};

} // namespace bitdec::kv

#endif // BITDEC_KVCACHE_TIERED_CACHE_H
