/**
 * @file
 * Per-sequence page-residency bitmap for the tiered KV cache.
 *
 * One bit per logical KV page of a sequence: set = the page is resident
 * in the hot pool, clear = the page lives in a cold tier (or nowhere, if
 * its cold copy was dropped). The shape follows the xrootd file-cache
 * `CacheFileInfo` exemplar: a packed bit buffer with set/test/resize, a
 * range query (`isAnythingEmptyInRng`) the engine uses to gate decode on
 * full residency, and access time/count bookkeeping that the tiered
 * pool's LRU eviction reads.
 */
#ifndef BITDEC_KVCACHE_RESIDENCY_H
#define BITDEC_KVCACHE_RESIDENCY_H

#include <cstdint>
#include <vector>

namespace bitdec::kv {

/** Packed residency bitmap with access bookkeeping. */
class ResidencyBitmap
{
  public:
    /**
     * Grows or shrinks to @p bits bits. Existing bits keep their value;
     * new bits start clear (a fresh page is not resident until set).
     */
    void resizeBits(int bits);

    /** Marks page @p i resident. */
    void setBit(int i);

    /** Marks page @p i non-resident. */
    void clearBit(int i);

    /** True when page @p i is resident. */
    bool testBit(int i) const;

    /**
     * True when any page in the inclusive range [@p first, @p last] is
     * non-resident. The engine gates a decode step on
     * `!isAnythingEmptyInRng(0, lastPage)`: attention traverses the whole
     * sequence, so one cold page stalls the step.
     */
    bool isAnythingEmptyInRng(int first, int last) const;

    /** Resident pages in the inclusive range [@p first, @p last]. */
    int countSetInRng(int first, int last) const;

    /** Resident pages over the whole bitmap. */
    int countSet() const { return countSetInRng(0, size_bits_ - 1); }

    /** Bits currently tracked. */
    int sizeInBits() const { return size_bits_; }

    /** True when every tracked page is resident (or the map is empty). */
    bool isComplete() const { return complete_; }

    /** Records one access at virtual time @p now. */
    void touch(double now);

    /** Virtual time of the most recent touch (0 before any). */
    double accessTime() const { return access_time_; }

    /** Number of touches so far. */
    int accessCount() const { return access_count_; }

  private:
    void checkComplete();

    std::vector<std::uint8_t> buff_;
    int size_bits_ = 0;
    bool complete_ = true; //!< cached full-residency flag
    double access_time_ = 0;
    int access_count_ = 0;
};

} // namespace bitdec::kv

#endif // BITDEC_KVCACHE_RESIDENCY_H
