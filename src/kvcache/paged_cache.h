/**
 * @file
 * PagedAttention-style KV-cache page management (the "Pages" evaluation
 * setting). A fixed pool of fixed-size token pages is shared by all
 * sequences; each sequence maps logical token blocks to physical pages.
 *
 * Pages are reference counted so a fully-packed prompt prefix can be
 * mapped into many sequences at once (shared-prefix reuse): a prefix
 * index keyed by caller-chosen ids pins the pages of a published prefix,
 * new sequences map them with a refcount bump instead of re-writing the
 * tokens, and a page is returned to the free list only on its last
 * release. Writes into a shared partially-filled page go through
 * copy-on-write, so divergence after the common prefix never corrupts
 * another sequence's view.
 */
#ifndef BITDEC_KVCACHE_PAGED_CACHE_H
#define BITDEC_KVCACHE_PAGED_CACHE_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/half.h"
#include "common/tensor.h"
#include "kvcache/status.h"

namespace bitdec::kv {

/** Fixed-pool page allocator with a free list and per-page refcounts. */
class PageAllocator
{
  public:
    /** @param num_pages total physical pages in the pool */
    explicit PageAllocator(int num_pages);

    /**
     * Allocates one page with refcount 1; std::nullopt when the pool is
     * exhausted (OOM).
     */
    std::optional<int> allocate();

    /** Adds one reference to an allocated page (shared mapping). */
    void retain(int page);

    /**
     * Drops one reference; the page returns to the free list when the
     * last reference goes away.
     */
    void release(int page);

    /** References currently held on a page (0 = free). */
    int refCount(int page) const;

    /** Pages currently free. */
    int freePages() const { return static_cast<int>(free_.size()); }

    /** Total pool size. */
    int totalPages() const { return total_; }

  private:
    int total_;
    std::vector<int> free_;
    std::vector<int> refs_;
};

/**
 * Paged FP16 KV storage for one head across many sequences.
 *
 * Functional model: physical pages live in one big tensor pool; the page
 * table provides the logical->physical indirection that the paged kernels
 * traverse. Low-bit paged caches reuse the same table over packed pages.
 */
class PagedHeadCache
{
  public:
    /**
     * Page-table entry of a logical page whose payload has been evicted
     * to a cold tier (see src/kvcache/tiered_cache.h). A sequence with
     * kNoPage holes stays live — its length and shared pages are intact —
     * but the holes must be restored (restorePage) before anything reads
     * or appends through them.
     */
    static constexpr int kNoPage = -1;

    /**
     * @param head_dim  per-head hidden size
     * @param page_size tokens per page
     * @param num_pages physical pool size
     */
    PagedHeadCache(int head_dim, int page_size, int num_pages);

    /** Registers a new sequence; returns its id. */
    int addSequence();

    /**
     * Registers a new sequence that starts with the pages of a published
     * prefix mapped in (refcounts bumped, no data copied). The sequence
     * begins at length prefixTokens(key). The key must be published.
     */
    int addSequenceWithPrefix(std::uint64_t key);

    /** Removes a sequence and drops its page references. */
    void removeSequence(int seq);

    /**
     * Appends one token to a sequence. Appending into a partially-filled
     * page that other sequences (or the prefix index) still reference
     * copies it first (copy-on-write).
     * @return false when the page pool is exhausted (OOM).
     */
    bool append(int seq, const std::vector<Half>& k,
                const std::vector<Half>& v);

    // ------------------------------------------------ shared prefixes --

    /**
     * Publishes the first @p tokens tokens of @p seq as a reusable prefix
     * under @p key. The index itself retains the covering pages, so the
     * prefix outlives the publishing sequence. A partially-filled last
     * page may be shared: consumers append through copy-on-write.
     * @return false when @p key is already published (no-op).
     */
    bool publishPrefix(std::uint64_t key, int seq, int tokens);

    /** Tokens a published prefix provides; 0 when @p key is unknown. */
    int prefixTokens(std::uint64_t key) const;

    /** Pages a published prefix pins; 0 when @p key is unknown. */
    int prefixPages(std::uint64_t key) const;

    /** Unpublishes @p key, dropping the index's page references. */
    void dropPrefix(std::uint64_t key);

    /**
     * Unpublishes every prefix no live sequence maps anymore (all page
     * refcounts == 1, i.e. only the index pins them). Called by engines
     * under page-pool pressure. @return pages returned to the free list.
     */
    int releaseUnusedPrefixes();

    /**
     * Unpublishes every prefix, mapped or not (hard eviction under
     * extreme pool pressure). Sequences that mapped a prefix keep their
     * own page references, so only pages held by nothing else — e.g. a
     * partial page orphaned by copy-on-write divergence — actually free.
     * Future arrivals cold-prefill until a prefix republishes.
     * @return pages returned to the free list.
     */
    int releaseAllPrefixes();

    /** Number of published prefixes. */
    int numPrefixes() const { return static_cast<int>(prefixes_.size()); }

    /**
     * Pages of @p seq that freeing the sequence would actually return to
     * the pool (refcount 1: not pinned by the prefix index or mapped by
     * another sequence). Preemption victims are chosen by this.
     */
    int reclaimablePages(int seq) const;

    // ------------------------------------------------- tiered offload --

    /**
     * Evicts logical page @p idx of @p seq to caller-owned storage: copies
     * the page's K/V payload into @p k_out / @p v_out (each
     * pageSize() x headDim() halves, row-major by slot), releases the
     * physical page and leaves a kNoPage hole in the page table. Only
     * exclusively-owned pages (refcount 1) may be evicted — shared-prefix
     * pages and CoW-shared partials are pinned hot by construction.
     */
    void evictPage(int seq, int idx, Half* k_out, Half* v_out);

    /**
     * Fills the kNoPage hole at logical page @p idx of @p seq: allocates a
     * fresh physical page, copies @p k / @p v payloads back in and maps it.
     * @return Ok, or HotPoolExhausted when no free page is available (the
     *         caller frees pages and retries).
     */
    CacheStatus restorePage(int seq, int idx, const Half* k, const Half* v);

    /** True when logical page @p idx of @p seq is mapped (not a hole). */
    bool pageResident(int seq, int idx) const;

    /** References held on physical page @p page (sequences + prefix index). */
    int pageRefCount(int page) const { return allocator_.refCount(page); }

    /** Number of kNoPage holes in a sequence's page table. */
    int missingPages(int seq) const;

    /** Copy-on-write page copies performed so far (stats/tests). */
    long cowCopies() const { return cow_copies_; }

    /** Tokens stored for a sequence. */
    int length(int seq) const;

    /** Physical page list of a sequence (logical order). */
    const std::vector<int>& pageTable(int seq) const;

    /**
     * Gathers a sequence's keys into a contiguous [len x d] matrix.
     * An empty sequence yields a [0 x d] tensor (numel() == 0).
     */
    Tensor<Half> gatherKeys(int seq) const;

    /** Gathers a sequence's values; [0 x d] for an empty sequence. */
    Tensor<Half> gatherValues(int seq) const;

    /** Reads the key vector of one stored token (0 <= t < length(seq)). */
    std::vector<Half> tokenKey(int seq, int t) const;

    /**
     * Raw storage of one physical key page: [page_size x head_dim] halves,
     * row-major by slot. The fused paged kernels read pages in place —
     * no gatherKeys/gatherValues copy of the whole sequence.
     */
    const Half* pageKeyData(int page) const;

    /** Raw storage of one physical value page. */
    const Half* pageValueData(int page) const;

    /** Per-head hidden size. */
    int headDim() const { return head_dim_; }

    /** Tokens per page. */
    int pageSize() const { return page_size_; }

    /** Pages still free in the pool. */
    int freePages() const { return allocator_.freePages(); }

    /** Total physical pages in the pool. */
    int totalPages() const { return allocator_.totalPages(); }

    /** Pages required to hold @p tokens tokens (ceiling). */
    int pagesFor(int tokens) const;

    /**
     * Fresh pages a sequence must allocate to grow from @p from_tokens to
     * @p to_tokens tokens (0 <= from <= to), assuming its partial last
     * page is private. This is the chunk-granular reservation primitive:
     * a partially-prefilled sequence holds only the pages its chunks have
     * filled, so admitting its next chunk costs pagesToGrow(len,
     * len + chunk) — not pagesFor(whole prompt). For a live sequence with
     * possibly-shared pages, use pagesNeededForAppend instead.
     */
    int pagesToGrow(int from_tokens, int to_tokens) const;

    /**
     * Fresh pool pages appending @p extra tokens to @p seq will consume,
     * including the copy-on-write page when the sequence's partially
     * filled last page is shared. Step planners budget with this;
     * @p extra == 0 (a prefill stalled for the tick) costs nothing.
     */
    int pagesNeededForAppend(int seq, int extra) const;

    /**
     * True when the free pool can absorb @p extra_tokens more tokens for a
     * sequence currently @p current_len tokens long (partial last pages
     * already allocated are accounted for). Convenience for callers growing
     * one sequence; batch planners aggregate pagesFor() deltas directly.
     */
    bool hasHeadroom(int current_len, int extra_tokens) const;

    /** Ids of all live sequences, in ascending id order. */
    std::vector<int> liveSequences() const;

    /** Number of live sequences. */
    int numLive() const;

  private:
    struct Sequence
    {
        bool live = false;
        int len = 0;
        std::vector<int> pages;
    };

    struct PrefixEntry
    {
        std::vector<int> pages; //!< retained by the index itself
        int tokens = 0;
    };

    int head_dim_;
    int page_size_;
    PageAllocator allocator_;
    // Pool layout: [page][slot][d] for K and V.
    Tensor<Half> k_pool_;
    Tensor<Half> v_pool_;
    std::vector<Sequence> seqs_;
    std::unordered_map<std::uint64_t, PrefixEntry> prefixes_;
    long cow_copies_ = 0;
};

} // namespace bitdec::kv

#endif // BITDEC_KVCACHE_PAGED_CACHE_H
