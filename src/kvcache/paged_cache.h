/**
 * @file
 * PagedAttention-style KV-cache page management (the "Pages" evaluation
 * setting). A fixed pool of fixed-size token pages is shared by all
 * sequences; each sequence maps logical token blocks to physical pages.
 */
#ifndef BITDEC_KVCACHE_PAGED_CACHE_H
#define BITDEC_KVCACHE_PAGED_CACHE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/half.h"
#include "common/tensor.h"

namespace bitdec::kv {

/** Fixed-pool page allocator with a free list. */
class PageAllocator
{
  public:
    /** @param num_pages total physical pages in the pool */
    explicit PageAllocator(int num_pages);

    /** Allocates one page; std::nullopt when the pool is exhausted (OOM). */
    std::optional<int> allocate();

    /** Returns a page to the pool. */
    void release(int page);

    /** Pages currently free. */
    int freePages() const { return static_cast<int>(free_.size()); }

    /** Total pool size. */
    int totalPages() const { return total_; }

  private:
    int total_;
    std::vector<int> free_;
    std::vector<bool> allocated_;
};

/**
 * Paged FP16 KV storage for one head across many sequences.
 *
 * Functional model: physical pages live in one big tensor pool; the page
 * table provides the logical->physical indirection that the paged kernels
 * traverse. Low-bit paged caches reuse the same table over packed pages.
 */
class PagedHeadCache
{
  public:
    /**
     * @param head_dim  per-head hidden size
     * @param page_size tokens per page
     * @param num_pages physical pool size
     */
    PagedHeadCache(int head_dim, int page_size, int num_pages);

    /** Registers a new sequence; returns its id. */
    int addSequence();

    /** Removes a sequence and frees its pages. */
    void removeSequence(int seq);

    /**
     * Appends one token to a sequence.
     * @return false when the page pool is exhausted (OOM).
     */
    bool append(int seq, const std::vector<Half>& k,
                const std::vector<Half>& v);

    /** Tokens stored for a sequence. */
    int length(int seq) const;

    /** Physical page list of a sequence (logical order). */
    const std::vector<int>& pageTable(int seq) const;

    /**
     * Gathers a sequence's keys into a contiguous [len x d] matrix.
     * An empty sequence yields a [0 x d] tensor (numel() == 0).
     */
    Tensor<Half> gatherKeys(int seq) const;

    /** Gathers a sequence's values; [0 x d] for an empty sequence. */
    Tensor<Half> gatherValues(int seq) const;

    /** Reads the key vector of one stored token (0 <= t < length(seq)). */
    std::vector<Half> tokenKey(int seq, int t) const;

    /**
     * Raw storage of one physical key page: [page_size x head_dim] halves,
     * row-major by slot. The fused paged kernels read pages in place —
     * no gatherKeys/gatherValues copy of the whole sequence.
     */
    const Half* pageKeyData(int page) const;

    /** Raw storage of one physical value page. */
    const Half* pageValueData(int page) const;

    /** Per-head hidden size. */
    int headDim() const { return head_dim_; }

    /** Tokens per page. */
    int pageSize() const { return page_size_; }

    /** Pages still free in the pool. */
    int freePages() const { return allocator_.freePages(); }

    /** Total physical pages in the pool. */
    int totalPages() const { return allocator_.totalPages(); }

    /** Pages required to hold @p tokens tokens (ceiling). */
    int pagesFor(int tokens) const;

    /**
     * True when the free pool can absorb @p extra_tokens more tokens for a
     * sequence currently @p current_len tokens long (partial last pages
     * already allocated are accounted for). Convenience for callers growing
     * one sequence; batch planners aggregate pagesFor() deltas directly.
     */
    bool hasHeadroom(int current_len, int extra_tokens) const;

    /** Ids of all live sequences, in ascending id order. */
    std::vector<int> liveSequences() const;

    /** Number of live sequences. */
    int numLive() const;

  private:
    struct Sequence
    {
        bool live = false;
        int len = 0;
        std::vector<int> pages;
    };

    int head_dim_;
    int page_size_;
    PageAllocator allocator_;
    // Pool layout: [page][slot][d] for K and V.
    Tensor<Half> k_pool_;
    Tensor<Half> v_pool_;
    std::vector<Sequence> seqs_;
};

} // namespace bitdec::kv

#endif // BITDEC_KVCACHE_PAGED_CACHE_H
